# Tiers:
#   make test     — tier-1 (the gate every PR must keep green)
#   make check    — tier-2: gofmt + vet + race-enabled tests (catches data
#                   races in the parallel analysis engine) + the doc-comment
#                   gate (internal/doccheck fails on undocumented exported
#                   API) + the result-cache acceptance tests under -race
#                   (cached Reports byte-identical to fresh across
#                   strict/lenient × row/columnar × sharded; N concurrent
#                   identical uploads coalesce onto one pipeline run) + the
#                   property tests that pin the indexed clustering kernels
#                   to their brute-force references + a short fuzz run over
#                   the trace decoder (row and columnar paths) + a build of
#                   every example the docs reference + the benchmark
#                   regression gate (benchjson -gate fails on any >10%
#                   ns/op or B/op regression between the two newest
#                   BENCH_<date>.json snapshots from the same runner)
#   make chaos    — the fault-injection suite under the race detector:
#                   full traces driven through the batch, streaming and
#                   HTTP analysis paths with truncation, bit-flips, short
#                   reads, transient errors and stalls injected (also part
#                   of make check)
#   make bench    — run the benchmark suite and record a trajectory
#                   snapshot in BENCH_<date>.json via cmd/benchjson (which
#                   also diffs against the previous snapshot)
#   make benchmem — memory tier: just the streaming-vs-batch allocation
#                   comparison, recorded in BENCH_MEM_<date>.json
#   make e2e-dist — distributed end-to-end: an in-process foldsvc
#                   coordinator fanning shards out to 3 in-process workers
#                   must reproduce the local single-pass Report and
#                   survive worker loss (degraded report, not a 500)
#   make e2e-diff — cross-run diff end-to-end over HTTP: /v1/diff by
#                   upload, by cached digest reference (zero re-analysis)
#                   and with a degraded side, under the race detector
#   make e2e-session — live-session end-to-end under the race detector:
#                   journaled appends, crash recovery to a report
#                   deep-equal to an uninterrupted run, SSE resume via
#                   Last-Event-ID with no duplicated or skipped
#                   snapshots, drain, budgets and the client helper
#                   (also part of make check)
#   make bench-diff — run just BenchmarkDiff (needs BENCH_SCALE=large)
#                   and fold it into today's BENCH snapshot via
#                   benchjson -merge

GO        ?= go
DATE      := $(shell date +%Y-%m-%d)
# Narrow or speed up a bench run: make bench BENCH=AnalyzePipeline BENCHTIME=1x
BENCH     ?= .
BENCHTIME ?= 1s
FUZZTIME  ?= 10s
# BENCH_SCALE=large unlocks the expensive baselines: the quadratic
# AutoEps/Silhouette reference kernels at n=100k and the end-to-end
# clustering of a ~100k-burst trace (tracegen -preset bench-large).
BENCH_SCALE ?=

.PHONY: build test check chaos bench benchmem e2e-dist e2e-diff e2e-session bench-diff

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

check:
	@fmt=$$(gofmt -l .); if [ -n "$$fmt" ]; then echo "gofmt needed:"; echo "$$fmt"; exit 1; fi
	$(GO) vet ./...
	$(GO) test -count 1 ./internal/doccheck
	$(GO) test -race ./...
	$(GO) test -race -count 1 -run 'TestCacheEquivalence|TestCacheSingleflight' ./internal/foldsvc/
	$(GO) test -run 'Property' -count 1 ./internal/cluster
	$(GO) test -run '^$$' -fuzz FuzzReadFrom$$ -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzReadFromLenient -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzReadIntoBlock -fuzztime $(FUZZTIME) ./internal/trace
	$(GO) build ./examples/...
	$(GO) run ./cmd/benchjson -gate -tol 10 -cur newest
	$(MAKE) chaos
	$(MAKE) e2e-session

chaos:
	$(GO) test -race -count 1 ./internal/faultinject/

e2e-session:
	$(GO) test -race -count 1 -run 'TestSession|TestClientSession|TestSubscriber|TestChunks' ./internal/session/ ./internal/foldsvc/

bench:
	BENCH_SCALE=$(BENCH_SCALE) $(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -timeout 60m . \
		| BENCH_SCALE=$(BENCH_SCALE) $(GO) run ./cmd/benchjson -out BENCH_$(DATE).json

e2e-dist:
	$(GO) test -race -count 1 -run 'TestE2EDist|TestDist' ./internal/foldsvc/

e2e-diff:
	$(GO) test -race -count 1 -run 'TestDiff' ./internal/foldsvc/ ./internal/diff/

bench-diff:
	BENCH_SCALE=large $(GO) test -run '^$$' -bench BenchmarkDiff -benchmem -benchtime $(BENCHTIME) -timeout 60m . \
		| BENCH_SCALE=large $(GO) run ./cmd/benchjson -merge -out BENCH_$(DATE).json

benchmem:
	$(GO) test -run '^$$' -bench StreamVsBatchMemory -benchmem -benchtime 3x -timeout 30m . \
		| $(GO) run ./cmd/benchjson -out BENCH_MEM_$(DATE).json
