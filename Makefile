# Tiers:
#   make test   — tier-1 (the gate every PR must keep green)
#   make check  — tier-2: vet + race-enabled tests (catches data races in
#                 the parallel analysis engine)
#   make bench  — run the benchmark suite and record a trajectory
#                 snapshot in BENCH_<date>.json via cmd/benchjson

GO        ?= go
DATE      := $(shell date +%Y-%m-%d)
# Narrow or speed up a bench run: make bench BENCH=AnalyzePipeline BENCHTIME=1x
BENCH     ?= .
BENCHTIME ?= 1s

.PHONY: build test check bench

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -timeout 60m . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(DATE).json
