# Tiers:
#   make test     — tier-1 (the gate every PR must keep green)
#   make check    — tier-2: vet + race-enabled tests (catches data races in
#                   the parallel analysis engine) + a short fuzz run over
#                   the trace decoder
#   make bench    — run the benchmark suite and record a trajectory
#                   snapshot in BENCH_<date>.json via cmd/benchjson
#   make benchmem — memory tier: just the streaming-vs-batch allocation
#                   comparison, recorded in BENCH_MEM_<date>.json

GO        ?= go
DATE      := $(shell date +%Y-%m-%d)
# Narrow or speed up a bench run: make bench BENCH=AnalyzePipeline BENCHTIME=1x
BENCH     ?= .
BENCHTIME ?= 1s
FUZZTIME  ?= 10s

.PHONY: build test check bench benchmem

build:
	$(GO) build ./...

test:
	$(GO) build ./... && $(GO) test ./...

check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -fuzz FuzzReadFrom -fuzztime $(FUZZTIME) ./internal/trace

bench:
	$(GO) test -run '^$$' -bench '$(BENCH)' -benchmem -benchtime $(BENCHTIME) -timeout 60m . \
		| $(GO) run ./cmd/benchjson -out BENCH_$(DATE).json

benchmem:
	$(GO) test -run '^$$' -bench StreamVsBatchMemory -benchmem -benchtime 3x -timeout 30m . \
		| $(GO) run ./cmd/benchjson -out BENCH_MEM_$(DATE).json
