package repro

// The benchmark harness: one benchmark per table (T1–T6) and figure
// (F1–F6) of the reconstructed evaluation — each regenerates its artifact
// end to end (simulate → trace → cluster → fold → report) — plus
// micro-benchmarks of the load-bearing algorithms.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benches use a reduced environment (4 ranks, 60
// iterations) so a full sweep stays in the tens of seconds; `cmd/report`
// regenerates the full-size artifacts.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand/v2"
	"os"
	"runtime"
	"sync"
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/diff"
	"repro/internal/experiments"
	"repro/internal/fit"
	"repro/internal/folding"
	"repro/internal/rescache"
	"repro/internal/sim"
	"repro/internal/trace"
)

func benchEnv() experiments.Env {
	return experiments.Env{Ranks: 4, Iters: 60, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table/figure ---

func BenchmarkF1Clustering(b *testing.B)     { benchExperiment(b, "F1") }
func BenchmarkT1ClusterQuality(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkF2Folding(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkF3Rates(b *testing.B)          { benchExperiment(b, "F3") }
func BenchmarkT2Accuracy(b *testing.B)       { benchExperiment(b, "T2") }
func BenchmarkT3Overhead(b *testing.B)       { benchExperiment(b, "T3") }
func BenchmarkF4PeriodSweep(b *testing.B)    { benchExperiment(b, "F4") }
func BenchmarkF5InstanceSweep(b *testing.B)  { benchExperiment(b, "F5") }
func BenchmarkF6Callstack(b *testing.B)      { benchExperiment(b, "F6") }
func BenchmarkT4FitAblation(b *testing.B)    { benchExperiment(b, "T4") }
func BenchmarkT5PruneAblation(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkT6Imbalance(b *testing.B)      { benchExperiment(b, "T6") }
func BenchmarkT7Noise(b *testing.B)          { benchExperiment(b, "T7") }
func BenchmarkF7IterationFold(b *testing.B)  { benchExperiment(b, "F7") }
func BenchmarkF8Spectral(b *testing.B)       { benchExperiment(b, "F8") }

// --- micro-benchmarks of the load-bearing pieces ---

// BenchmarkSimulator measures raw trace-generation throughput.
func BenchmarkSimulator(b *testing.B) {
	app := apps.NewStencil(50)
	cfg := apps.DefaultTraceConfig(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := sim.Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Events) + len(tr.Samples)))
	}
}

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	app := apps.NewStencil(100)
	tr, err := sim.Run(apps.DefaultTraceConfig(8), app)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTraceEncode measures binary serialization.
func BenchmarkTraceEncode(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkTraceDecode measures binary deserialization.
func BenchmarkTraceDecode(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadFrom(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeStream compares the two stream-decode hot paths over
// one encoded trace: row (one Record at a time via Next) and columnar
// (arena-backed column blocks via NextBlock, no per-record struct).
func BenchmarkDecodeStream(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	b.Run("row", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sr, err := trace.NewStreamReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			var rec trace.Record
			for {
				if err := sr.Next(&rec); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("columnar", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		blk := trace.NewColBlock(256)
		defer blk.Release()
		for i := 0; i < b.N; i++ {
			sr, err := trace.NewStreamReader(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			for {
				if err := sr.NextBlock(blk); err != nil {
					if err == io.EOF {
						break
					}
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkAnalyzeEndToEnd runs the full streaming analysis (decode →
// extract → cluster → attach) over the encoded bench-large trace on both
// hot paths. This is the headline comparison for the columnar engine:
// identical Reports (TestColumnarEquivalence), different ns/op, B/op and
// allocs/op. The silhouette is sampled (it would otherwise be >90% of
// the run and has its own benchmarks) so the decode/extract/attach path
// under comparison carries the time. Needs BENCH_SCALE=large; simulation
// and encoding sit outside the timer.
func BenchmarkAnalyzeEndToEnd(b *testing.B) {
	if !benchScaleLarge() {
		b.Skip("set BENCH_SCALE=large to analyze the bench-large trace end to end")
	}
	app, err := apps.ByName(apps.BenchLargeApp, apps.BenchLargeIters)
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(apps.BenchLargeRanks)
	cfg.Seed = apps.BenchLargeSeed
	tr, err := sim.Run(cfg, app)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	for _, path := range []core.HotPath{core.PathRow, core.PathColumnar} {
		b.Run(path.String(), func(b *testing.B) {
			b.SetBytes(int64(len(raw)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := core.Options{Columnar: path}
				opts.Cluster.SilhouetteSample = 256
				if _, err := core.AnalyzeStream(bytes.NewReader(raw), opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAnalyzeCached prices the content-addressed result cache on
// the bench-large trace at the rescache boundary the daemon uses:
//
//   - cold: empty cache, so GetOrCompute digests the bytes and runs the
//     full streaming analysis + JSON encode — the miss path.
//   - warm: the same lookup against a warm cache — digest, key build,
//     sharded-LRU hit. The ≥100× ns/op and allocs/op gap versus cold is
//     the headline win the cache exists for.
//   - coalesced-8: 8 concurrent identical requests against an empty
//     cache; singleflight runs ONE analysis and the other 7 share it,
//     so ns/op tracks cold (one run), not 8×cold.
//
// Needs BENCH_SCALE=large; simulation and encoding sit outside the
// timer.
func BenchmarkAnalyzeCached(b *testing.B) {
	if !benchScaleLarge() {
		b.Skip("set BENCH_SCALE=large to exercise the result cache on the bench-large trace")
	}
	app, err := apps.ByName(apps.BenchLargeApp, apps.BenchLargeIters)
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(apps.BenchLargeRanks)
	cfg.Seed = apps.BenchLargeSeed
	tr, err := sim.Run(cfg, app)
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	opts := core.Options{}
	opts.Cluster.SilhouetteSample = 256
	fp := opts.Fingerprint()
	analyze := func(ctx context.Context) (rescache.Result, error) {
		rep, err := core.AnalyzeStreamContext(ctx, bytes.NewReader(raw), opts)
		if err != nil {
			return rescache.Result{}, err
		}
		data, err := json.Marshal(rep)
		if err != nil {
			return rescache.Result{}, err
		}
		return rescache.Result{Data: append(data, '\n')}, nil
	}

	b.Run("cold", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := rescache.New(rescache.Config{})
			key := rescache.Key("report", trace.DigestBytes(raw), fp)
			if _, _, err := c.GetOrCompute(context.Background(), key, analyze); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warm", func(b *testing.B) {
		c := rescache.New(rescache.Config{})
		if _, _, err := c.GetOrCompute(context.Background(),
			rescache.Key("report", trace.DigestBytes(raw), fp), analyze); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			key := rescache.Key("report", trace.DigestBytes(raw), fp)
			v, st, err := c.GetOrCompute(context.Background(), key, analyze)
			if err != nil || st != rescache.Hit || len(v) == 0 {
				b.Fatalf("expected a warm hit, got status %v err %v", st, err)
			}
		}
	})
	b.Run("coalesced-8", func(b *testing.B) {
		b.SetBytes(int64(len(raw)))
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c := rescache.New(rescache.Config{})
			key := rescache.Key("report", trace.DigestBytes(raw), fp)
			var wg sync.WaitGroup
			for j := 0; j < 8; j++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					if _, _, err := c.GetOrCompute(context.Background(), key, analyze); err != nil {
						b.Error(err)
					}
				}()
			}
			wg.Wait()
		}
	})
}

// BenchmarkAnalyzeSharded runs the batch analysis through the map/reduce
// algebra at increasing shard counts over the bench-large trace. The
// Report is identical at every count (TestShardedEquivalence); the
// benchmark prices the decomposition itself — per-shard pipeline set-up,
// the joint merge sort, and the reduce-side clustering — against the
// single-pass baseline (1shards ≙ Analyze). Needs BENCH_SCALE=large;
// simulation sits outside the timer.
func BenchmarkAnalyzeSharded(b *testing.B) {
	if !benchScaleLarge() {
		b.Skip("set BENCH_SCALE=large to analyze the bench-large trace sharded")
	}
	app, err := apps.ByName(apps.BenchLargeApp, apps.BenchLargeIters)
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(apps.BenchLargeRanks)
	cfg.Seed = apps.BenchLargeSeed
	tr, err := sim.Run(cfg, app)
	if err != nil {
		b.Fatal(err)
	}

	for _, n := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("%dshards", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				opts := core.Options{}
				opts.Cluster.SilhouetteSample = 256
				if _, err := core.AnalyzeSharded(tr, n, core.ShardTime, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBurstExtract measures burst extraction over a full trace.
func BenchmarkBurstExtract(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := burst.Extract(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBSCAN measures density clustering of 10k 3-D points.
func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	points := make([][]float64, 10_000)
	for i := range points {
		c := float64(i % 5)
		points[i] = []float64{
			c/5 + 0.01*rng.NormFloat64(),
			c/5 + 0.01*rng.NormFloat64(),
			0.5 + 0.01*rng.NormFloat64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.DBSCAN(points, 0.05, 4)
	}
}

// BenchmarkKMeans measures the baseline clusterer on the same workload.
func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	points := make([][]float64, 10_000)
	for i := range points {
		c := float64(i % 5)
		points[i] = []float64{c/5 + 0.01*rng.NormFloat64(), c/5 + 0.01*rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans(points, 5, 1, 50)
	}
}

// benchInstances synthesizes folding input: n instances with s samples.
func benchInstances(n, s int) []folding.Instance {
	rng := rand.New(rand.NewPCG(3, 4))
	shape := counters.ExpDecay(3, 0.2)
	out := make([]folding.Instance, n)
	var clock trace.Time
	for i := range out {
		d := trace.Time(1_000_000)
		in := folding.Instance{Start: clock, End: clock + d}
		in.Totals[counters.TotIns] = 10_000_000
		for j := 0; j < s; j++ {
			x := rng.Float64()
			var sm trace.Sample
			sm.Time = in.Start + trace.Time(x*float64(d))
			sm.Counters[counters.TotIns] = int64(1e7 * shape.Integral(x))
			in.Samples = append(in.Samples, sm)
		}
		out[i] = in
		clock += d
	}
	return out
}

// BenchmarkFold measures the core folding reconstruction (1000 instances,
// 2 samples each).
func BenchmarkFold(b *testing.B) {
	instances := benchInstances(1000, 2)
	cfg := folding.Config{Counter: counters.TotIns}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := folding.Fold(instances, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFoldStacks measures call-stack folding.
func BenchmarkFoldStacks(b *testing.B) {
	instances := benchInstances(1000, 3)
	for i := range instances {
		for j := range instances[i].Samples {
			instances[i].Samples[j].Stack = []uint32{uint32(j%3) + 1, 9}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		folding.FoldStacks(instances, 50)
	}
}

// BenchmarkIsotonic measures PAVA on 100k points.
func BenchmarkIsotonic(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	pts := make([]fit.Point, 100_000)
	for i := range pts {
		x := float64(i) / 100_000
		pts[i] = fit.Point{X: x, Y: x + 0.1*rng.NormFloat64(), W: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fit.Isotonic(pts)
	}
}

// BenchmarkPCHIP measures construction + 10k evaluations.
func BenchmarkPCHIP(b *testing.B) {
	xs := make([]float64, 101)
	ys := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) / 100
		ys[i] = xs[i] * xs[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := fit.NewPCHIP(xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10_000; j++ {
			p.Eval(float64(j) / 10_000)
		}
	}
}

// BenchmarkAnalyzePipeline measures the full Analyze pipeline on a
// moderate trace with the engine pinned to one worker — the sequential
// baseline the parallel variant is judged against.
func BenchmarkAnalyzePipeline(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(tr, core.Options{Parallelism: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnalyzePipelineParallel is the same pipeline saturating all
// cores (the default Options). Compare against BenchmarkAnalyzePipeline
// in BENCH_<date>.json to read the speedup; on a 1-core runner the two
// should be within noise of each other (the fan-out costs nothing when
// there is nothing to fan onto).
func BenchmarkAnalyzePipelineParallel(b *testing.B) {
	tr := benchTrace(b)
	opts := core.Options{Parallelism: runtime.GOMAXPROCS(0)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(tr, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStreamVsBatchMemory compares the allocation footprint of the
// two analysis paths on the same encoded 200-iteration stencil trace.
// "batch" decodes the full trace and runs Analyze — allocations scale
// with the record count. "stream" runs AnalyzeStream over the bytes
// record by record through pooled blocks; "stream/online" adds
// train-then-classify and incremental folding, so its allocations scale
// with bursts and bins rather than records. Compare B/op across the
// three sub-benchmarks in BENCH_MEM_<date>.json.
func BenchmarkStreamVsBatchMemory(b *testing.B) {
	tr, err := sim.Run(apps.DefaultTraceConfig(8), apps.NewStencil(200))
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()

	b.Run("batch", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			tr, err := trace.ReadFrom(bytes.NewReader(raw))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.Analyze(tr, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeStream(bytes.NewReader(raw), core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream/online", func(b *testing.B) {
		opts := core.Options{Stream: core.StreamOptions{Online: true}}
		b.ReportAllocs()
		b.SetBytes(int64(len(raw)))
		for i := 0; i < b.N; i++ {
			if _, err := core.AnalyzeStream(bytes.NewReader(raw), opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// benchClusteredPoints builds a labeled point set sized so the O(n²)
// silhouette dominates.
func benchClusteredPoints(n int) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(7, 8))
	points := make([][]float64, n)
	assign := make([]int, n)
	for i := range points {
		c := i % 5
		points[i] = []float64{
			float64(c)/5 + 0.01*rng.NormFloat64(),
			float64(c)/5 + 0.01*rng.NormFloat64(),
			0.5 + 0.01*rng.NormFloat64(),
		}
		assign[i] = c + 1
	}
	return points, assign
}

// benchScaleLarge reports whether the expensive large-scale baselines
// were requested (`make bench BENCH_SCALE=large`). The quadratic
// reference kernels at n=100k take minutes per op, so they stay off the
// default sweep; the indexed kernels run at every n unconditionally.
func benchScaleLarge() bool { return os.Getenv("BENCH_SCALE") == "large" }

// benchSizes are the point counts the clustering-kernel benchmarks
// sweep; names like "10k" key the BENCH_<date>.json trajectory.
var benchSizes = []struct {
	n    int
	name string
}{{1000, "1k"}, {10_000, "10k"}, {100_000, "100k"}}

// BenchmarkSilhouette sweeps the silhouette kernel across sizes and
// exactness: "exact" is the per-cluster sum decomposition (bit-identical
// to the historical all-pairs scan), "sampled256" caps every cluster at
// 256 strided members (O(n·K·S)). exact-100k needs BENCH_SCALE=large.
func BenchmarkSilhouette(b *testing.B) {
	for _, sz := range benchSizes {
		points, assign := benchClusteredPoints(sz.n)
		b.Run("exact-"+sz.name, func(b *testing.B) {
			if sz.n >= 100_000 && !benchScaleLarge() {
				b.Skip("quadratic at n=100k; set BENCH_SCALE=large")
			}
			for i := 0; i < b.N; i++ {
				cluster.SilhouetteSampled(points, assign, 0, 1)
			}
		})
		b.Run("sampled256-"+sz.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				cluster.SilhouetteSampled(points, assign, 256, 1)
			}
		})
	}
}

// BenchmarkAutoEps sweeps k-dist eps selection across sizes and neighbor
// search: "brute" scans all pairs with a bounded heap per row, "kd"
// queries the k-d tree. Both return bit-identical eps, so the ratio is
// pure index speedup. brute-100k needs BENCH_SCALE=large.
func BenchmarkAutoEps(b *testing.B) {
	modes := []struct {
		mode cluster.IndexMode
		name string
	}{{cluster.IndexBrute, "brute"}, {cluster.IndexKDTree, "kd"}}
	for _, sz := range benchSizes {
		points, _ := benchClusteredPoints(sz.n)
		for _, m := range modes {
			b.Run(m.name+"-"+sz.name, func(b *testing.B) {
				if m.mode == cluster.IndexBrute && sz.n >= 100_000 && !benchScaleLarge() {
					b.Skip("quadratic at n=100k; set BENCH_SCALE=large")
				}
				for i := 0; i < b.N; i++ {
					cluster.AutoEpsMode(points, 4, 1, m.mode)
				}
			})
		}
	}
}

// benchUniformPoints spreads n points uniformly over the unit cube —
// the bounded-density regime the DBSCAN grid is built for (the blob set
// from benchClusteredPoints would put thousands of points in one cell
// and measure the scan, not the index).
func benchUniformPoints(n int) [][]float64 {
	rng := rand.New(rand.NewPCG(9, 10))
	points := make([][]float64, n)
	for i := range points {
		points[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64()}
	}
	return points
}

// BenchmarkDBSCANIndex measures one steady-state neighbor query against
// the packed-coordinate grid, with eps sized for ~20 expected neighbors
// at every n. The grid is built and the append buffer grown before the
// timer starts, so allocs/op reports the steady state — the contract is
// 0 B/op.
func BenchmarkDBSCANIndex(b *testing.B) {
	for _, sz := range benchSizes {
		points := benchUniformPoints(sz.n)
		eps := math.Cbrt(20.0 * 6 / math.Pi / float64(sz.n))
		b.Run(sz.name, func(b *testing.B) {
			g := cluster.NewNeighborGrid(points, eps)
			var buf []int32
			for i := range points {
				buf = g.Append(i, buf[:0])
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				buf = g.Append(i%sz.n, buf[:0])
			}
		})
	}
}

// BenchmarkClusterTraceLarge runs the full clustering stage (normalize,
// auto-eps, DBSCAN, sampled silhouette) over the bench-large preset
// trace — ~100k kept bursts from 32 stencil ranks — the end-to-end
// workload the indexed kernels exist for. Needs BENCH_SCALE=large; the
// trace is simulated outside the timer.
func BenchmarkClusterTraceLarge(b *testing.B) {
	if !benchScaleLarge() {
		b.Skip("set BENCH_SCALE=large to simulate and cluster the ~100k-burst trace")
	}
	app, err := apps.ByName(apps.BenchLargeApp, apps.BenchLargeIters)
	if err != nil {
		b.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(apps.BenchLargeRanks)
	cfg.Seed = apps.BenchLargeSeed
	tr, err := sim.Run(cfg, app)
	if err != nil {
		b.Fatal(err)
	}
	all, err := burst.Extract(tr)
	if err != nil {
		b.Fatal(err)
	}
	kept, _ := burst.Filter{MinDuration: 50_000}.Apply(all)
	b.Logf("clustering %d kept bursts", len(kept))
	ccfg := cluster.Config{UseIPC: true, Parallelism: 1, SilhouetteSample: 256}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.ClusterBursts(kept, ccfg)
	}
}

// BenchmarkDiff prices the cross-run differential analysis
// (internal/diff) on the bench-large preset: the baseline run against a
// perturbed re-run (20% slowdown injected into every sweep iteration),
// both analyzed outside the timer. What is measured is exactly the
// diff-specific work — raw-space centroid matching, resampling both
// runs' folded curves onto the common grid, divergence localization and
// the significance guard — i.e. the marginal cost of a /v1/diff answer
// once both sides are cache hits. Needs BENCH_SCALE=large.
func BenchmarkDiff(b *testing.B) {
	if !benchScaleLarge() {
		b.Skip("set BENCH_SCALE=large to diff two bench-large analyses")
	}
	analyzeRun := func(seed uint64, perturb sim.PerturbConfig) *core.Report {
		app, err := apps.ByName(apps.BenchLargeApp, apps.BenchLargeIters)
		if err != nil {
			b.Fatal(err)
		}
		cfg := apps.DefaultTraceConfig(apps.BenchLargeRanks)
		cfg.Seed = seed
		cfg.Perturb = perturb
		tr, err := sim.Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		opts := core.Options{}
		opts.Cluster.SilhouetteSample = 256
		rep, err := core.Analyze(tr, opts)
		if err != nil {
			b.Fatal(err)
		}
		return rep
	}
	repA := analyzeRun(apps.BenchLargeSeed, sim.PerturbConfig{})
	repB := analyzeRun(apps.BenchLargeSeed+1, sim.PerturbConfig{
		Factor: 1.2, Fraction: 1, Kernel: "jacobi_sweep", At: 0.6, Seed: 7,
	})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := diff.Compare(repA, repB, diff.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if len(d.Matched) == 0 {
			b.Fatal("diff matched no phases")
		}
	}
}
