package repro

// The benchmark harness: one benchmark per table (T1–T6) and figure
// (F1–F6) of the reconstructed evaluation — each regenerates its artifact
// end to end (simulate → trace → cluster → fold → report) — plus
// micro-benchmarks of the load-bearing algorithms.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The experiment benches use a reduced environment (4 ranks, 60
// iterations) so a full sweep stays in the tens of seconds; `cmd/report`
// regenerates the full-size artifacts.

import (
	"bytes"
	"math/rand/v2"
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/experiments"
	"repro/internal/fit"
	"repro/internal/folding"
	"repro/internal/sim"
	"repro/internal/trace"
)

func benchEnv() experiments.Env {
	return experiments.Env{Ranks: 4, Iters: 60, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	env := benchEnv()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(env); err != nil {
			b.Fatal(err)
		}
	}
}

// --- one benchmark per table/figure ---

func BenchmarkF1Clustering(b *testing.B)     { benchExperiment(b, "F1") }
func BenchmarkT1ClusterQuality(b *testing.B) { benchExperiment(b, "T1") }
func BenchmarkF2Folding(b *testing.B)        { benchExperiment(b, "F2") }
func BenchmarkF3Rates(b *testing.B)          { benchExperiment(b, "F3") }
func BenchmarkT2Accuracy(b *testing.B)       { benchExperiment(b, "T2") }
func BenchmarkT3Overhead(b *testing.B)       { benchExperiment(b, "T3") }
func BenchmarkF4PeriodSweep(b *testing.B)    { benchExperiment(b, "F4") }
func BenchmarkF5InstanceSweep(b *testing.B)  { benchExperiment(b, "F5") }
func BenchmarkF6Callstack(b *testing.B)      { benchExperiment(b, "F6") }
func BenchmarkT4FitAblation(b *testing.B)    { benchExperiment(b, "T4") }
func BenchmarkT5PruneAblation(b *testing.B)  { benchExperiment(b, "T5") }
func BenchmarkT6Imbalance(b *testing.B)      { benchExperiment(b, "T6") }
func BenchmarkT7Noise(b *testing.B)          { benchExperiment(b, "T7") }
func BenchmarkF7IterationFold(b *testing.B)  { benchExperiment(b, "F7") }
func BenchmarkF8Spectral(b *testing.B)       { benchExperiment(b, "F8") }

// --- micro-benchmarks of the load-bearing pieces ---

// BenchmarkSimulator measures raw trace-generation throughput.
func BenchmarkSimulator(b *testing.B) {
	app := apps.NewStencil(50)
	cfg := apps.DefaultTraceConfig(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := sim.Run(cfg, app)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(tr.Events) + len(tr.Samples)))
	}
}

func benchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	app := apps.NewStencil(100)
	tr, err := sim.Run(apps.DefaultTraceConfig(8), app)
	if err != nil {
		b.Fatal(err)
	}
	return tr
}

// BenchmarkTraceEncode measures binary serialization.
func BenchmarkTraceEncode(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := tr.Write(&buf); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// BenchmarkTraceDecode measures binary deserialization.
func BenchmarkTraceDecode(b *testing.B) {
	tr := benchTrace(b)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.ReadFrom(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBurstExtract measures burst extraction over a full trace.
func BenchmarkBurstExtract(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := burst.Extract(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDBSCAN measures density clustering of 10k 3-D points.
func BenchmarkDBSCAN(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	points := make([][]float64, 10_000)
	for i := range points {
		c := float64(i % 5)
		points[i] = []float64{
			c/5 + 0.01*rng.NormFloat64(),
			c/5 + 0.01*rng.NormFloat64(),
			0.5 + 0.01*rng.NormFloat64(),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.DBSCAN(points, 0.05, 4)
	}
}

// BenchmarkKMeans measures the baseline clusterer on the same workload.
func BenchmarkKMeans(b *testing.B) {
	rng := rand.New(rand.NewPCG(1, 2))
	points := make([][]float64, 10_000)
	for i := range points {
		c := float64(i % 5)
		points[i] = []float64{c/5 + 0.01*rng.NormFloat64(), c/5 + 0.01*rng.NormFloat64()}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cluster.KMeans(points, 5, 1, 50)
	}
}

// benchInstances synthesizes folding input: n instances with s samples.
func benchInstances(n, s int) []folding.Instance {
	rng := rand.New(rand.NewPCG(3, 4))
	shape := counters.ExpDecay(3, 0.2)
	out := make([]folding.Instance, n)
	var clock trace.Time
	for i := range out {
		d := trace.Time(1_000_000)
		in := folding.Instance{Start: clock, End: clock + d}
		in.Totals[counters.TotIns] = 10_000_000
		for j := 0; j < s; j++ {
			x := rng.Float64()
			var sm trace.Sample
			sm.Time = in.Start + trace.Time(x*float64(d))
			sm.Counters[counters.TotIns] = int64(1e7 * shape.Integral(x))
			in.Samples = append(in.Samples, sm)
		}
		out[i] = in
		clock += d
	}
	return out
}

// BenchmarkFold measures the core folding reconstruction (1000 instances,
// 2 samples each).
func BenchmarkFold(b *testing.B) {
	instances := benchInstances(1000, 2)
	cfg := folding.Config{Counter: counters.TotIns}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := folding.Fold(instances, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFoldStacks measures call-stack folding.
func BenchmarkFoldStacks(b *testing.B) {
	instances := benchInstances(1000, 3)
	for i := range instances {
		for j := range instances[i].Samples {
			instances[i].Samples[j].Stack = []uint32{uint32(j%3) + 1, 9}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		folding.FoldStacks(instances, 50)
	}
}

// BenchmarkIsotonic measures PAVA on 100k points.
func BenchmarkIsotonic(b *testing.B) {
	rng := rand.New(rand.NewPCG(5, 6))
	pts := make([]fit.Point, 100_000)
	for i := range pts {
		x := float64(i) / 100_000
		pts[i] = fit.Point{X: x, Y: x + 0.1*rng.NormFloat64(), W: 1}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fit.Isotonic(pts)
	}
}

// BenchmarkPCHIP measures construction + 10k evaluations.
func BenchmarkPCHIP(b *testing.B) {
	xs := make([]float64, 101)
	ys := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i) / 100
		ys[i] = xs[i] * xs[i]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := fit.NewPCHIP(xs, ys)
		if err != nil {
			b.Fatal(err)
		}
		for j := 0; j < 10_000; j++ {
			p.Eval(float64(j) / 10_000)
		}
	}
}

// BenchmarkAnalyzePipeline measures the full Analyze pipeline on a
// moderate trace.
func BenchmarkAnalyzePipeline(b *testing.B) {
	tr := benchTrace(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Analyze(tr, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
