// Command benchjson converts `go test -bench` output into a
// machine-readable benchmark-trajectory snapshot, so successive PRs can
// diff performance (ns/op, B/op, allocs/op per benchmark) instead of
// eyeballing terminal scrollback.
//
// It reads the benchmark text from stdin, echoes it to stderr (so a
// piped run stays watchable), and writes a JSON file:
//
//	go test -run '^$' -bench . -benchmem | benchjson -out BENCH_2026-08-05.json
//
// After writing, it diffs the new entries against the most recent prior
// BENCH_<date>.json with the same name prefix in the output directory
// (override with -prev, disable with -prev none) and prints the
// per-benchmark trajectory to stderr.
//
// The snapshot records the runner (goos/goarch/CPU count/go version)
// because ns/op from a 1-core container and a 64-core server are not
// comparable; trajectory tooling should group by runner fingerprint.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (the -N suffix; 1 when
	// absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the recorded timing.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MBPerS, BytesPerOp and AllocsPerOp are present only when the run
	// reported them (-benchmem, b.SetBytes).
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full trajectory record for one benchmark run.
type Snapshot struct {
	Date       string  `json:"date"`
	GoVersion  string  `json:"go_version"`
	GOOS       string  `json:"goos"`
	GOARCH     string  `json:"goarch"`
	NumCPU     int     `json:"num_cpu"`
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFold-8   100   12345678 ns/op   54.21 MB/s   2345 B/op   67 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseLine extracts a benchmark Entry from one line of `go test -bench`
// output; ok is false for non-benchmark lines (headers, PASS, pkg path).
func parseLine(line string) (Entry, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Entry{}, false
	}
	e := Entry{Name: m[1], Procs: 1}
	if m[2] != "" {
		e.Procs, _ = strconv.Atoi(m[2])
	}
	e.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
	e.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
	if m[5] != "" {
		v, _ := strconv.ParseFloat(m[5], 64)
		e.MBPerS = &v
	}
	if m[6] != "" {
		v, _ := strconv.ParseInt(m[6], 10, 64)
		e.BytesPerOp = &v
	}
	if m[7] != "" {
		v, _ := strconv.ParseInt(m[7], 10, 64)
		e.AllocsPerOp = &v
	}
	return e, true
}

// snapName matches the snapshot naming scheme, capturing the free-form
// prefix and the ISO date: BENCH_2026-08-05.json → ("BENCH_", "2026-08-05").
var snapName = regexp.MustCompile(`^(.*?)(\d{4}-\d{2}-\d{2})\.json$`)

// findPrev locates the most recent snapshot older than outPath that
// follows the same <prefix><YYYY-MM-DD>.json naming scheme in the same
// directory. Returns "" when outPath doesn't follow the scheme or no
// prior snapshot exists. ISO dates sort lexicographically, so "older"
// and "most recent" are plain string comparisons.
func findPrev(outPath string) string {
	m := snapName.FindStringSubmatch(filepath.Base(outPath))
	if m == nil {
		return ""
	}
	prefix, date := m[1], m[2]
	dir := filepath.Dir(outPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best := ""
	for _, e := range entries {
		em := snapName.FindStringSubmatch(e.Name())
		if em == nil || em[1] != prefix || em[2] >= date {
			continue
		}
		if best == "" || em[2] > bestDate(best) {
			best = e.Name()
		}
	}
	if best == "" {
		return ""
	}
	return filepath.Join(dir, best)
}

func bestDate(name string) string { return snapName.FindStringSubmatch(name)[2] }

// diffLines renders the per-benchmark trajectory between two snapshots:
// new ns/op against prior ns/op (with relative change) and B/op when
// both runs recorded allocations. Benchmarks are matched by name and
// GOMAXPROCS; entries only in prev are dropped, entries only in cur are
// marked new.
func diffLines(prev, cur *Snapshot) []string {
	entryKey := func(e Entry) string { return fmt.Sprintf("%s@%d", e.Name, e.Procs) }
	prevBy := make(map[string]Entry, len(prev.Benchmarks))
	for _, e := range prev.Benchmarks {
		prevBy[entryKey(e)] = e
	}
	var lines []string
	for _, e := range cur.Benchmarks {
		p, ok := prevBy[entryKey(e)]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-48s %14.0f ns/op  (new)", e.Name, e.NsPerOp))
			continue
		}
		l := fmt.Sprintf("  %-48s %14.0f ns/op  (was %.0f", e.Name, e.NsPerOp, p.NsPerOp)
		if p.NsPerOp > 0 {
			l += fmt.Sprintf(", %+.1f%%", 100*(e.NsPerOp-p.NsPerOp)/p.NsPerOp)
		}
		l += ")"
		if e.BytesPerOp != nil && p.BytesPerOp != nil {
			l += fmt.Sprintf("  %d B/op (was %d)", *e.BytesPerOp, *p.BytesPerOp)
		}
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return lines
}

// readSnapshot loads a prior trajectory snapshot.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func main() {
	out := flag.String("out", "",
		"output JSON path (default BENCH_<today>.json)")
	prev := flag.String("prev", "",
		"prior snapshot to diff against (default: newest older BENCH_<date>.json beside -out; \"none\" disables)")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}

	snap := Snapshot{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if e, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin (pipe `go test -bench` output in)"))
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)

	prevPath := *prev
	if prevPath == "" {
		prevPath = findPrev(*out)
	}
	if prevPath == "" || prevPath == "none" {
		return
	}
	prevSnap, err := readSnapshot(prevPath)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: trajectory vs %s (%s, %d CPU):\n",
		prevPath, prevSnap.GoVersion, prevSnap.NumCPU)
	if prevSnap.NumCPU != snap.NumCPU || prevSnap.GOARCH != snap.GOARCH {
		fmt.Fprintln(os.Stderr, "benchjson: warning: runner fingerprint differs — deltas are not apples-to-apples")
	}
	for _, l := range diffLines(prevSnap, &snap) {
		fmt.Fprintln(os.Stderr, l)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
