// Command benchjson converts `go test -bench` output into a
// machine-readable benchmark-trajectory snapshot, so successive PRs can
// diff performance (ns/op, B/op, allocs/op per benchmark) instead of
// eyeballing terminal scrollback.
//
// It reads the benchmark text from stdin, echoes it to stderr (so a
// piped run stays watchable), and writes a JSON file:
//
//	go test -run '^$' -bench . -benchmem | benchjson -out BENCH_2026-08-05.json
//
// After writing, it diffs the new entries against the most recent prior
// BENCH_<date>.json with the same name prefix in the output directory
// (override with -prev, disable with -prev none) and prints the
// per-benchmark trajectory to stderr.
//
// The snapshot records the runner (goos/goarch/CPU count/CPU model/go
// version) because ns/op from a 1-core container and a 64-core server
// are not comparable; trajectory tooling should group by runner
// fingerprint. The CPU model comes from the `cpu:` header that `go test
// -bench` prints, so it reflects the machine the benchmarks actually ran
// on even when benchjson itself runs elsewhere.
//
// With -gate, benchjson is a regression gate: any benchmark whose ns/op
// or B/op worsened by more than -tol percent against the prior snapshot
// makes it exit nonzero. Standalone gate mode takes an existing snapshot
// instead of stdin —
//
//	benchjson -gate -tol 10 -cur newest
//
// — loading the newest <prefix><date>.json in -dir and comparing it with
// its predecessor. The gate skips (exit 0, with a notice) when either
// snapshot is missing or the runner fingerprints differ — including the
// CPU model, since a container rescheduled onto a different host makes
// every ns/op delta meaningless, and the workload scale (-scale,
// mirroring BENCH_SCALE) when both snapshots record one — so fresh
// checkouts and machine moves don't fail `make check`.
//
// With -merge, new entries fold into an existing -out snapshot instead
// of overwriting it — matching name@procs entries are replaced, new ones
// appended — so a follow-up run of gated benchmarks (e.g. the
// BENCH_SCALE=large tier) can ride in the day's snapshot:
//
//	BENCH_SCALE=large go test -run '^$' -bench AnalyzeSharded -benchmem \
//	    | benchjson -merge -out BENCH_2026-08-08.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Entry is one benchmark result line.
type Entry struct {
	// Name is the benchmark name without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Procs is the GOMAXPROCS the benchmark ran at (the -N suffix; 1 when
	// absent).
	Procs int `json:"procs"`
	// Iterations is b.N for the recorded timing.
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// MBPerS, BytesPerOp and AllocsPerOp are present only when the run
	// reported them (-benchmem, b.SetBytes).
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  *int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp *int64   `json:"allocs_per_op,omitempty"`
}

// Snapshot is the full trajectory record for one benchmark run.
type Snapshot struct {
	Date      string `json:"date"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
	// CPU is the processor model from the `cpu:` header of the bench
	// output (empty for snapshots that predate its recording).
	CPU string `json:"cpu,omitempty"`
	// Scale is the workload scale the benchmarks ran at (the -scale flag,
	// mirroring BENCH_SCALE; empty for default-scale runs and for
	// snapshots that predate its recording). Part of the gate fingerprint:
	// two snapshots with different non-empty scales are not comparable.
	Scale      string  `json:"scale,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkFold-8   100   12345678 ns/op   54.21 MB/s   2345 B/op   67 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) MB/s)?(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// parseLine extracts a benchmark Entry from one line of `go test -bench`
// output; ok is false for non-benchmark lines (headers, PASS, pkg path).
func parseLine(line string) (Entry, bool) {
	m := benchLine.FindStringSubmatch(line)
	if m == nil {
		return Entry{}, false
	}
	e := Entry{Name: m[1], Procs: 1}
	if m[2] != "" {
		e.Procs, _ = strconv.Atoi(m[2])
	}
	e.Iterations, _ = strconv.ParseInt(m[3], 10, 64)
	e.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
	if m[5] != "" {
		v, _ := strconv.ParseFloat(m[5], 64)
		e.MBPerS = &v
	}
	if m[6] != "" {
		v, _ := strconv.ParseInt(m[6], 10, 64)
		e.BytesPerOp = &v
	}
	if m[7] != "" {
		v, _ := strconv.ParseInt(m[7], 10, 64)
		e.AllocsPerOp = &v
	}
	return e, true
}

// cpuLine matches the `cpu: <model>` header go test prints before the
// benchmark lines.
var cpuLine = regexp.MustCompile(`^cpu: (.+)$`)

// snapName matches the snapshot naming scheme, capturing the free-form
// prefix and the ISO date: BENCH_2026-08-05.json → ("BENCH_", "2026-08-05").
var snapName = regexp.MustCompile(`^(.*?)(\d{4}-\d{2}-\d{2})\.json$`)

// findPrev locates the most recent snapshot older than outPath that
// follows the same <prefix><YYYY-MM-DD>.json naming scheme in the same
// directory. Returns "" when outPath doesn't follow the scheme or no
// prior snapshot exists. ISO dates sort lexicographically, so "older"
// and "most recent" are plain string comparisons.
func findPrev(outPath string) string {
	m := snapName.FindStringSubmatch(filepath.Base(outPath))
	if m == nil {
		return ""
	}
	prefix, date := m[1], m[2]
	dir := filepath.Dir(outPath)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best := ""
	for _, e := range entries {
		em := snapName.FindStringSubmatch(e.Name())
		if em == nil || em[1] != prefix || em[2] >= date {
			continue
		}
		if best == "" || em[2] > bestDate(best) {
			best = e.Name()
		}
	}
	if best == "" {
		return ""
	}
	return filepath.Join(dir, best)
}

func bestDate(name string) string { return snapName.FindStringSubmatch(name)[2] }

// newestSnap returns the path of the newest <prefix><YYYY-MM-DD>.json in
// dir, or "" when none exists.
func newestSnap(dir, prefix string) string {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return ""
	}
	best := ""
	for _, e := range entries {
		m := snapName.FindStringSubmatch(e.Name())
		if m == nil || m[1] != prefix {
			continue
		}
		if best == "" || m[2] > bestDate(best) {
			best = e.Name()
		}
	}
	if best == "" {
		return ""
	}
	return filepath.Join(dir, best)
}

// gateCheck compares cur against prev and returns one line per benchmark
// whose ns/op or B/op regressed by more than tol percent. Benchmarks are
// matched by name and GOMAXPROCS; unmatched entries never fail the gate
// (new benchmarks have no baseline). Metrics with a zero or missing
// baseline are skipped — a percentage against zero is meaningless.
func gateCheck(prev, cur *Snapshot, tol float64) []string {
	entryKey := func(e Entry) string { return fmt.Sprintf("%s@%d", e.Name, e.Procs) }
	prevBy := make(map[string]Entry, len(prev.Benchmarks))
	for _, e := range prev.Benchmarks {
		prevBy[entryKey(e)] = e
	}
	var out []string
	for _, e := range cur.Benchmarks {
		p, ok := prevBy[entryKey(e)]
		if !ok {
			continue
		}
		if p.NsPerOp > 0 {
			if pct := 100 * (e.NsPerOp - p.NsPerOp) / p.NsPerOp; pct > tol {
				out = append(out, fmt.Sprintf("  %s: ns/op %+.1f%% (%.0f -> %.0f)",
					entryKey(e), pct, p.NsPerOp, e.NsPerOp))
			}
		}
		if e.BytesPerOp != nil && p.BytesPerOp != nil && *p.BytesPerOp > 0 {
			if pct := 100 * float64(*e.BytesPerOp-*p.BytesPerOp) / float64(*p.BytesPerOp); pct > tol {
				out = append(out, fmt.Sprintf("  %s: B/op %+.1f%% (%d -> %d)",
					entryKey(e), pct, *p.BytesPerOp, *e.BytesPerOp))
			}
		}
	}
	sort.Strings(out)
	return out
}

// runGate applies gateCheck between two loaded snapshots and reports the
// verdict; it returns the process exit code.
func runGate(prevPath, curPath string, prev, cur *Snapshot, tol float64) int {
	if prev.NumCPU != cur.NumCPU || prev.GOARCH != cur.GOARCH || prev.CPU != cur.CPU {
		fmt.Fprintf(os.Stderr,
			"benchjson: gate skipped: runner fingerprint changed (%s/%d CPU/%q -> %s/%d CPU/%q)\n",
			prev.GOARCH, prev.NumCPU, prev.CPU, cur.GOARCH, cur.NumCPU, cur.CPU)
		return 0
	}
	// A scale change means different workloads behind the same benchmark
	// names; an empty side (default scale, or a snapshot predating the
	// field) stays comparable so legacy snapshots keep gating.
	if prev.Scale != "" && cur.Scale != "" && prev.Scale != cur.Scale {
		fmt.Fprintf(os.Stderr,
			"benchjson: gate skipped: workload scale changed (%q -> %q)\n", prev.Scale, cur.Scale)
		return 0
	}
	offenders := gateCheck(prev, cur, tol)
	if len(offenders) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: gate FAILED: %d regression(s) > %.0f%% vs %s:\n",
			len(offenders), tol, prevPath)
		for _, l := range offenders {
			fmt.Fprintln(os.Stderr, l)
		}
		return 1
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate passed: %s within %.0f%% of %s\n",
		curPath, tol, prevPath)
	return 0
}

// gateStandalone is the -gate -cur mode: load an existing snapshot (or
// the newest one) and gate it against its predecessor, with graceful
// skips when there is nothing to compare.
func gateStandalone(curArg, dir, prefix string, tol float64) int {
	curPath := curArg
	if curArg == "newest" {
		curPath = newestSnap(dir, prefix)
		if curPath == "" {
			fmt.Fprintf(os.Stderr, "benchjson: gate skipped: no %s<date>.json in %s\n", prefix, dir)
			return 0
		}
	}
	cur, err := readSnapshot(curPath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(os.Stderr, "benchjson: gate skipped: %s does not exist\n", curPath)
			return 0
		}
		fatal(err)
	}
	prevPath := findPrev(curPath)
	if prevPath == "" {
		fmt.Fprintf(os.Stderr, "benchjson: gate skipped: no snapshot older than %s\n", curPath)
		return 0
	}
	prev, err := readSnapshot(prevPath)
	if err != nil {
		fatal(err)
	}
	return runGate(prevPath, curPath, prev, cur, tol)
}

// diffLines renders the per-benchmark trajectory between two snapshots:
// new ns/op against prior ns/op (with relative change) and B/op when
// both runs recorded allocations. Benchmarks are matched by name and
// GOMAXPROCS; entries only in prev are dropped, entries only in cur are
// marked new.
func diffLines(prev, cur *Snapshot) []string {
	entryKey := func(e Entry) string { return fmt.Sprintf("%s@%d", e.Name, e.Procs) }
	prevBy := make(map[string]Entry, len(prev.Benchmarks))
	for _, e := range prev.Benchmarks {
		prevBy[entryKey(e)] = e
	}
	var lines []string
	for _, e := range cur.Benchmarks {
		p, ok := prevBy[entryKey(e)]
		if !ok {
			lines = append(lines, fmt.Sprintf("  %-48s %14.0f ns/op  (new)", e.Name, e.NsPerOp))
			continue
		}
		l := fmt.Sprintf("  %-48s %14.0f ns/op  (was %.0f", e.Name, e.NsPerOp, p.NsPerOp)
		if p.NsPerOp > 0 {
			l += fmt.Sprintf(", %+.1f%%", 100*(e.NsPerOp-p.NsPerOp)/p.NsPerOp)
		}
		l += ")"
		if e.BytesPerOp != nil && p.BytesPerOp != nil {
			l += fmt.Sprintf("  %d B/op (was %d)", *e.BytesPerOp, *p.BytesPerOp)
		}
		lines = append(lines, l)
	}
	sort.Strings(lines)
	return lines
}

// mergeInto folds the fresh entries into the snapshot already at path:
// matching name@procs entries are replaced, new ones appended, the rest
// kept. The merged snapshot keeps the existing file's recorded scale —
// riders from a different scale (e.g. BENCH_SCALE=large-only benchmarks
// joining a default-scale snapshot) must not re-label entries they did
// not measure. A missing file degrades to a plain write; a runner
// fingerprint mismatch is an error, since mixing machines in one
// snapshot would poison every later gate comparison.
func mergeInto(path string, fresh *Snapshot) (*Snapshot, error) {
	base, err := readSnapshot(path)
	if os.IsNotExist(err) {
		return fresh, nil
	}
	if err != nil {
		return nil, err
	}
	if base.NumCPU != fresh.NumCPU || base.GOARCH != fresh.GOARCH ||
		(base.CPU != "" && fresh.CPU != "" && base.CPU != fresh.CPU) {
		return nil, fmt.Errorf(
			"cannot merge into %s: runner fingerprint differs (%s/%d CPU/%q vs %s/%d CPU/%q)",
			path, base.GOARCH, base.NumCPU, base.CPU, fresh.GOARCH, fresh.NumCPU, fresh.CPU)
	}
	entryKey := func(e Entry) string { return fmt.Sprintf("%s@%d", e.Name, e.Procs) }
	incoming := make(map[string]Entry, len(fresh.Benchmarks))
	for _, e := range fresh.Benchmarks {
		incoming[entryKey(e)] = e
	}
	merged := *base
	merged.Date = fresh.Date
	merged.Benchmarks = make([]Entry, 0, len(base.Benchmarks)+len(fresh.Benchmarks))
	for _, e := range base.Benchmarks {
		if ne, ok := incoming[entryKey(e)]; ok {
			e = ne
			delete(incoming, entryKey(e))
		}
		merged.Benchmarks = append(merged.Benchmarks, e)
	}
	// Append the genuinely new entries in their measured order.
	for _, e := range fresh.Benchmarks {
		if _, ok := incoming[entryKey(e)]; ok {
			merged.Benchmarks = append(merged.Benchmarks, e)
		}
	}
	return &merged, nil
}

// readSnapshot loads a prior trajectory snapshot.
func readSnapshot(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func main() {
	out := flag.String("out", "",
		"output JSON path (default BENCH_<today>.json)")
	prev := flag.String("prev", "",
		"prior snapshot to diff against (default: newest older BENCH_<date>.json beside -out; \"none\" disables)")
	gate := flag.Bool("gate", false,
		"fail (exit 1) when any benchmark regresses more than -tol percent vs the prior snapshot")
	tol := flag.Float64("tol", 10,
		"regression tolerance for -gate, in percent of ns/op or B/op")
	cur := flag.String("cur", "",
		"standalone gate mode: gate this existing snapshot (\"newest\" picks the newest -prefix file in -dir) instead of reading stdin")
	dir := flag.String("dir", ".",
		"directory searched by -cur newest")
	prefix := flag.String("prefix", "BENCH_",
		"snapshot filename prefix matched by -cur newest")
	merge := flag.Bool("merge", false,
		"fold the new entries into an existing -out snapshot (matched by name and GOMAXPROCS) instead of overwriting it; the runner fingerprint must match")
	scale := flag.String("scale", os.Getenv("BENCH_SCALE"),
		"workload scale recorded in the snapshot's gate fingerprint (default $BENCH_SCALE)")
	flag.Parse()
	if *cur != "" {
		os.Exit(gateStandalone(*cur, *dir, *prefix, *tol))
	}
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}

	snap := Snapshot{
		Date:      time.Now().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Scale:     *scale,
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(os.Stderr, line)
		if m := cpuLine.FindStringSubmatch(line); m != nil {
			snap.CPU = m[1]
		}
		if e, ok := parseLine(line); ok {
			snap.Benchmarks = append(snap.Benchmarks, e)
		}
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(snap.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found on stdin (pipe `go test -bench` output in)"))
	}
	if *merge {
		merged, err := mergeInto(*out, &snap)
		if err != nil {
			fatal(err)
		}
		snap = *merged
	}

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(&snap); err != nil {
		fatal(err)
	}
	if err := f.Close(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(snap.Benchmarks), *out)

	prevPath := *prev
	if prevPath == "" {
		prevPath = findPrev(*out)
	}
	if prevPath == "" || prevPath == "none" {
		return
	}
	prevSnap, err := readSnapshot(prevPath)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: trajectory vs %s (%s, %d CPU):\n",
		prevPath, prevSnap.GoVersion, prevSnap.NumCPU)
	if prevSnap.NumCPU != snap.NumCPU || prevSnap.GOARCH != snap.GOARCH || prevSnap.CPU != snap.CPU {
		fmt.Fprintln(os.Stderr, "benchjson: warning: runner fingerprint differs — deltas are not apples-to-apples")
	}
	for _, l := range diffLines(prevSnap, &snap) {
		fmt.Fprintln(os.Stderr, l)
	}
	if *gate {
		os.Exit(runGate(prevPath, *out, prevSnap, &snap, *tol))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
