package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
)

func TestParseLineFull(t *testing.T) {
	e, ok := parseLine("BenchmarkFold-8   \t     100\t  12345678 ns/op\t  54.21 MB/s\t  2345 B/op\t   67 allocs/op")
	if !ok {
		t.Fatal("full line not parsed")
	}
	if e.Name != "BenchmarkFold" || e.Procs != 8 || e.Iterations != 100 || e.NsPerOp != 12345678 {
		t.Fatalf("parsed %+v", e)
	}
	if e.MBPerS == nil || *e.MBPerS != 54.21 {
		t.Fatalf("MB/s = %v", e.MBPerS)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 2345 {
		t.Fatalf("B/op = %v", e.BytesPerOp)
	}
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 67 {
		t.Fatalf("allocs/op = %v", e.AllocsPerOp)
	}
}

func TestParseLineMinimal(t *testing.T) {
	// No -P suffix (GOMAXPROCS=1 runs omit it), no -benchmem columns,
	// fractional ns/op.
	e, ok := parseLine("BenchmarkSilhouette \t    5\t 240531872.4 ns/op")
	if !ok {
		t.Fatal("minimal line not parsed")
	}
	if e.Name != "BenchmarkSilhouette" || e.Procs != 1 || e.Iterations != 5 {
		t.Fatalf("parsed %+v", e)
	}
	if e.NsPerOp != 240531872.4 {
		t.Fatalf("ns/op = %g", e.NsPerOp)
	}
	if e.MBPerS != nil || e.BytesPerOp != nil || e.AllocsPerOp != nil {
		t.Fatalf("optional columns invented: %+v", e)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t12.3s",
		"",
		"--- BENCH: BenchmarkFold-8",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise line parsed as benchmark: %q", line)
		}
	}
}

func TestFindPrev(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "BENCH_2026-08-06.json")

	// No candidates yet.
	if got := findPrev(out); got != "" {
		t.Fatalf("empty dir: findPrev = %q, want \"\"", got)
	}
	// Picks the newest strictly-older snapshot with the same prefix; the
	// out file itself, newer dates, other prefixes and non-scheme names
	// are all ignored.
	touch("BENCH_2026-08-01.json")
	touch("BENCH_2026-08-05.json")
	touch("BENCH_2026-08-06.json")
	touch("BENCH_2026-08-07.json")
	touch("OTHER_2026-08-05.json")
	touch("notes.json")
	if got := findPrev(out); got != filepath.Join(dir, "BENCH_2026-08-05.json") {
		t.Fatalf("findPrev = %q", got)
	}
	// An out path outside the naming scheme has no trajectory.
	if got := findPrev(filepath.Join(dir, "results.json")); got != "" {
		t.Fatalf("non-scheme out: findPrev = %q, want \"\"", got)
	}
}

func TestDiffLines(t *testing.T) {
	i64 := func(v int64) *int64 { return &v }
	prev := &Snapshot{Benchmarks: []Entry{
		{Name: "BenchmarkAutoEps/kd-10k", Procs: 1, NsPerOp: 2e8, BytesPerOp: i64(4096)},
		{Name: "BenchmarkGone", Procs: 1, NsPerOp: 5},
	}}
	cur := &Snapshot{Benchmarks: []Entry{
		{Name: "BenchmarkAutoEps/kd-10k", Procs: 1, NsPerOp: 1e8, BytesPerOp: i64(0)},
		{Name: "BenchmarkDBSCANIndex/10k", Procs: 1, NsPerOp: 3e6},
	}}
	lines := diffLines(prev, cur)
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "-50.0%") {
		t.Fatalf("halved ns/op not reported as -50.0%%:\n%s", joined)
	}
	if !strings.Contains(joined, "0 B/op (was 4096)") {
		t.Fatalf("B/op delta missing:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkDBSCANIndex/10k") || !strings.Contains(joined, "(new)") {
		t.Fatalf("new benchmark not marked:\n%s", joined)
	}
	if strings.Contains(joined, "BenchmarkGone") {
		t.Fatalf("removed benchmark leaked into diff:\n%s", joined)
	}
}

func TestDiffLinesZeroBaseline(t *testing.T) {
	// A zero prior ns/op must not divide by zero.
	prev := &Snapshot{Benchmarks: []Entry{{Name: "BenchmarkX", Procs: 1, NsPerOp: 0}}}
	cur := &Snapshot{Benchmarks: []Entry{{Name: "BenchmarkX", Procs: 1, NsPerOp: 10}}}
	lines := diffLines(prev, cur)
	if len(lines) != 1 || strings.Contains(lines[0], "%") {
		t.Fatalf("zero baseline mishandled: %v", lines)
	}
}

func TestGateCheck(t *testing.T) {
	i64 := func(v int64) *int64 { return &v }
	prev := &Snapshot{Benchmarks: []Entry{
		{Name: "BenchmarkStable", Procs: 1, NsPerOp: 100, BytesPerOp: i64(1000)},
		{Name: "BenchmarkSlower", Procs: 1, NsPerOp: 100},
		{Name: "BenchmarkFatter", Procs: 4, NsPerOp: 100, BytesPerOp: i64(1000)},
		{Name: "BenchmarkZeroBase", Procs: 1, NsPerOp: 0, BytesPerOp: i64(0)},
		{Name: "BenchmarkGone", Procs: 1, NsPerOp: 1},
	}}
	cur := &Snapshot{Benchmarks: []Entry{
		// Within tolerance (+9% ns/op, −10% B/op) — must pass.
		{Name: "BenchmarkStable", Procs: 1, NsPerOp: 109, BytesPerOp: i64(900)},
		// +25% ns/op — offender.
		{Name: "BenchmarkSlower", Procs: 1, NsPerOp: 125},
		// ns/op flat, +50% B/op — offender.
		{Name: "BenchmarkFatter", Procs: 4, NsPerOp: 100, BytesPerOp: i64(1500)},
		// Zero baselines never divide.
		{Name: "BenchmarkZeroBase", Procs: 1, NsPerOp: 50, BytesPerOp: i64(64)},
		// No baseline at all — new benchmarks never fail the gate.
		{Name: "BenchmarkNew", Procs: 1, NsPerOp: 1e9},
	}}
	got := gateCheck(prev, cur, 10)
	if len(got) != 2 {
		t.Fatalf("got %d offenders: %v", len(got), got)
	}
	joined := strings.Join(got, "\n")
	if !strings.Contains(joined, "BenchmarkSlower@1: ns/op +25.0%") {
		t.Errorf("ns/op regression missing:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkFatter@4: B/op +50.0%") {
		t.Errorf("B/op regression missing:\n%s", joined)
	}
	if strings.Contains(joined, "Stable") || strings.Contains(joined, "ZeroBase") || strings.Contains(joined, "New") {
		t.Errorf("false offender:\n%s", joined)
	}

	// A looser tolerance clears everything.
	if got := gateCheck(prev, cur, 60); len(got) != 0 {
		t.Fatalf("tol=60 still flags: %v", got)
	}
}

func TestGateStandalone(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// The fingerprint must match the test runner for the gate to engage.
	fp := func(bench string) string {
		return `{"goarch":"` + runtime.GOARCH + `","num_cpu":` + strconv.Itoa(runtime.NumCPU()) +
			`,"benchmarks":[` + bench + `]}`
	}

	// No snapshots at all: skip, exit 0.
	if code := gateStandalone("newest", dir, "BENCH_", 10); code != 0 {
		t.Fatalf("empty dir: exit %d, want 0", code)
	}
	// One snapshot, no predecessor: skip.
	write("BENCH_2026-08-07.json", fp(`{"name":"BenchmarkX","procs":1,"ns_per_op":100}`))
	if code := gateStandalone("newest", dir, "BENCH_", 10); code != 0 {
		t.Fatalf("no predecessor: exit %d, want 0", code)
	}
	// A newer snapshot that regressed 50%: gate fails.
	write("BENCH_2026-08-08.json", fp(`{"name":"BenchmarkX","procs":1,"ns_per_op":150}`))
	if code := gateStandalone("newest", dir, "BENCH_", 10); code != 1 {
		t.Fatalf("regression: exit %d, want 1", code)
	}
	// The same pair under a 60% tolerance passes.
	if code := gateStandalone("newest", dir, "BENCH_", 60); code != 0 {
		t.Fatalf("tol=60: exit %d, want 0", code)
	}
	// A fingerprint change (different CPU count) skips the gate.
	write("BENCH_2026-08-09.json",
		`{"goarch":"`+runtime.GOARCH+`","num_cpu":`+strconv.Itoa(runtime.NumCPU()+7)+
			`,"benchmarks":[{"name":"BenchmarkX","procs":1,"ns_per_op":900}]}`)
	if code := gateStandalone("newest", dir, "BENCH_", 10); code != 0 {
		t.Fatalf("fingerprint change: exit %d, want 0", code)
	}
	// A CPU-model change alone (the container landing on a different
	// host) also skips — including against a predecessor that predates
	// cpu recording entirely.
	write("BENCH_2026-08-10.json",
		`{"goarch":"`+runtime.GOARCH+`","num_cpu":`+strconv.Itoa(runtime.NumCPU()+7)+
			`,"cpu":"Intel(R) Xeon(R) Processor @ 2.70GHz","benchmarks":[{"name":"BenchmarkX","procs":1,"ns_per_op":9000}]}`)
	if code := gateStandalone("newest", dir, "BENCH_", 10); code != 0 {
		t.Fatalf("cpu model change: exit %d, want 0", code)
	}
	// An explicit missing -cur path skips rather than erroring.
	if code := gateStandalone(filepath.Join(dir, "BENCH_2031-01-01.json"), dir, "BENCH_", 10); code != 0 {
		t.Fatalf("missing cur: exit %d, want 0", code)
	}
}

func TestGateSkipsScaleChange(t *testing.T) {
	dir := t.TempDir()
	write := func(name, scale, ns string) {
		t.Helper()
		body := `{"goarch":"` + runtime.GOARCH + `","num_cpu":` + strconv.Itoa(runtime.NumCPU()) +
			`,"scale":"` + scale + `","benchmarks":[{"name":"BenchmarkX","procs":1,"ns_per_op":` + ns + `}]}`
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Different non-empty scales: the same benchmark name measures a
	// different workload, so a 10x "regression" must skip, not fail.
	write("BENCH_2026-08-07.json", "", "100")
	write("BENCH_2026-08-08.json", "large", "1000")
	write("BENCH_2026-08-09.json", "small", "100")
	if code := gateStandalone(filepath.Join(dir, "BENCH_2026-08-09.json"), dir, "BENCH_", 10); code != 0 {
		t.Fatalf("scale change: exit %d, want 0", code)
	}
	// An empty side stays comparable — legacy snapshots keep gating.
	if code := gateStandalone(filepath.Join(dir, "BENCH_2026-08-08.json"), dir, "BENCH_", 10); code != 1 {
		t.Fatalf("empty-scale baseline: exit %d, want 1 (regression must still gate)", code)
	}
}

func TestMergeInto(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_2026-08-08.json")
	fresh := &Snapshot{
		Date:   "2026-08-08T12:00:00Z",
		GOARCH: runtime.GOARCH,
		NumCPU: runtime.NumCPU(),
		Scale:  "large",
		Benchmarks: []Entry{
			{Name: "BenchmarkShared", Procs: 1, NsPerOp: 50},
			{Name: "BenchmarkRider", Procs: 1, NsPerOp: 7},
		},
	}

	// Missing file: merge degrades to a plain write of the fresh snapshot.
	got, err := mergeInto(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if got != fresh {
		t.Fatal("missing base should pass the fresh snapshot through")
	}

	base := `{"date":"2026-08-08T10:00:00Z","goarch":"` + runtime.GOARCH +
		`","num_cpu":` + strconv.Itoa(runtime.NumCPU()) + `,"benchmarks":[` +
		`{"name":"BenchmarkShared","procs":1,"ns_per_op":100},` +
		`{"name":"BenchmarkKeep","procs":1,"ns_per_op":3}]}`
	if err := os.WriteFile(path, []byte(base), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err = mergeInto(path, fresh)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Benchmarks) != 3 {
		t.Fatalf("merged %d entries, want 3: %+v", len(got.Benchmarks), got.Benchmarks)
	}
	byName := map[string]float64{}
	for _, e := range got.Benchmarks {
		byName[e.Name] = e.NsPerOp
	}
	if byName["BenchmarkShared"] != 50 {
		t.Errorf("shared entry not replaced: %v", byName["BenchmarkShared"])
	}
	if byName["BenchmarkKeep"] != 3 || byName["BenchmarkRider"] != 7 {
		t.Errorf("kept/appended entries wrong: %v", byName)
	}
	if got.Scale != "" {
		t.Errorf("merge re-labeled the base snapshot's scale to %q", got.Scale)
	}
	if got.Date != fresh.Date {
		t.Errorf("merge kept the stale date %q", got.Date)
	}

	// A different runner must refuse to merge.
	alien := *fresh
	alien.NumCPU = fresh.NumCPU + 7
	if _, err := mergeInto(path, &alien); err == nil {
		t.Fatal("merged across a runner fingerprint change")
	}
}

func TestParseLineSubBenchmark(t *testing.T) {
	e, ok := parseLine("BenchmarkAnalyzePipeline/ranks=16-4         \t      10\t 103456789 ns/op")
	if !ok {
		t.Fatal("sub-benchmark not parsed")
	}
	if e.Name != "BenchmarkAnalyzePipeline/ranks=16" || e.Procs != 4 {
		t.Fatalf("parsed %+v", e)
	}
}
