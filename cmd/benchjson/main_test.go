package main

import "testing"

func TestParseLineFull(t *testing.T) {
	e, ok := parseLine("BenchmarkFold-8   \t     100\t  12345678 ns/op\t  54.21 MB/s\t  2345 B/op\t   67 allocs/op")
	if !ok {
		t.Fatal("full line not parsed")
	}
	if e.Name != "BenchmarkFold" || e.Procs != 8 || e.Iterations != 100 || e.NsPerOp != 12345678 {
		t.Fatalf("parsed %+v", e)
	}
	if e.MBPerS == nil || *e.MBPerS != 54.21 {
		t.Fatalf("MB/s = %v", e.MBPerS)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 2345 {
		t.Fatalf("B/op = %v", e.BytesPerOp)
	}
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 67 {
		t.Fatalf("allocs/op = %v", e.AllocsPerOp)
	}
}

func TestParseLineMinimal(t *testing.T) {
	// No -P suffix (GOMAXPROCS=1 runs omit it), no -benchmem columns,
	// fractional ns/op.
	e, ok := parseLine("BenchmarkSilhouette \t    5\t 240531872.4 ns/op")
	if !ok {
		t.Fatal("minimal line not parsed")
	}
	if e.Name != "BenchmarkSilhouette" || e.Procs != 1 || e.Iterations != 5 {
		t.Fatalf("parsed %+v", e)
	}
	if e.NsPerOp != 240531872.4 {
		t.Fatalf("ns/op = %g", e.NsPerOp)
	}
	if e.MBPerS != nil || e.BytesPerOp != nil || e.AllocsPerOp != nil {
		t.Fatalf("optional columns invented: %+v", e)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t12.3s",
		"",
		"--- BENCH: BenchmarkFold-8",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise line parsed as benchmark: %q", line)
		}
	}
}

func TestParseLineSubBenchmark(t *testing.T) {
	e, ok := parseLine("BenchmarkAnalyzePipeline/ranks=16-4         \t      10\t 103456789 ns/op")
	if !ok {
		t.Fatal("sub-benchmark not parsed")
	}
	if e.Name != "BenchmarkAnalyzePipeline/ranks=16" || e.Procs != 4 {
		t.Fatalf("parsed %+v", e)
	}
}
