package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLineFull(t *testing.T) {
	e, ok := parseLine("BenchmarkFold-8   \t     100\t  12345678 ns/op\t  54.21 MB/s\t  2345 B/op\t   67 allocs/op")
	if !ok {
		t.Fatal("full line not parsed")
	}
	if e.Name != "BenchmarkFold" || e.Procs != 8 || e.Iterations != 100 || e.NsPerOp != 12345678 {
		t.Fatalf("parsed %+v", e)
	}
	if e.MBPerS == nil || *e.MBPerS != 54.21 {
		t.Fatalf("MB/s = %v", e.MBPerS)
	}
	if e.BytesPerOp == nil || *e.BytesPerOp != 2345 {
		t.Fatalf("B/op = %v", e.BytesPerOp)
	}
	if e.AllocsPerOp == nil || *e.AllocsPerOp != 67 {
		t.Fatalf("allocs/op = %v", e.AllocsPerOp)
	}
}

func TestParseLineMinimal(t *testing.T) {
	// No -P suffix (GOMAXPROCS=1 runs omit it), no -benchmem columns,
	// fractional ns/op.
	e, ok := parseLine("BenchmarkSilhouette \t    5\t 240531872.4 ns/op")
	if !ok {
		t.Fatal("minimal line not parsed")
	}
	if e.Name != "BenchmarkSilhouette" || e.Procs != 1 || e.Iterations != 5 {
		t.Fatalf("parsed %+v", e)
	}
	if e.NsPerOp != 240531872.4 {
		t.Fatalf("ns/op = %g", e.NsPerOp)
	}
	if e.MBPerS != nil || e.BytesPerOp != nil || e.AllocsPerOp != nil {
		t.Fatalf("optional columns invented: %+v", e)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"pkg: repro",
		"PASS",
		"ok  \trepro\t12.3s",
		"",
		"--- BENCH: BenchmarkFold-8",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("noise line parsed as benchmark: %q", line)
		}
	}
}

func TestFindPrev(t *testing.T) {
	dir := t.TempDir()
	touch := func(name string) {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out := filepath.Join(dir, "BENCH_2026-08-06.json")

	// No candidates yet.
	if got := findPrev(out); got != "" {
		t.Fatalf("empty dir: findPrev = %q, want \"\"", got)
	}
	// Picks the newest strictly-older snapshot with the same prefix; the
	// out file itself, newer dates, other prefixes and non-scheme names
	// are all ignored.
	touch("BENCH_2026-08-01.json")
	touch("BENCH_2026-08-05.json")
	touch("BENCH_2026-08-06.json")
	touch("BENCH_2026-08-07.json")
	touch("OTHER_2026-08-05.json")
	touch("notes.json")
	if got := findPrev(out); got != filepath.Join(dir, "BENCH_2026-08-05.json") {
		t.Fatalf("findPrev = %q", got)
	}
	// An out path outside the naming scheme has no trajectory.
	if got := findPrev(filepath.Join(dir, "results.json")); got != "" {
		t.Fatalf("non-scheme out: findPrev = %q, want \"\"", got)
	}
}

func TestDiffLines(t *testing.T) {
	i64 := func(v int64) *int64 { return &v }
	prev := &Snapshot{Benchmarks: []Entry{
		{Name: "BenchmarkAutoEps/kd-10k", Procs: 1, NsPerOp: 2e8, BytesPerOp: i64(4096)},
		{Name: "BenchmarkGone", Procs: 1, NsPerOp: 5},
	}}
	cur := &Snapshot{Benchmarks: []Entry{
		{Name: "BenchmarkAutoEps/kd-10k", Procs: 1, NsPerOp: 1e8, BytesPerOp: i64(0)},
		{Name: "BenchmarkDBSCANIndex/10k", Procs: 1, NsPerOp: 3e6},
	}}
	lines := diffLines(prev, cur)
	if len(lines) != 2 {
		t.Fatalf("got %d lines: %v", len(lines), lines)
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "-50.0%") {
		t.Fatalf("halved ns/op not reported as -50.0%%:\n%s", joined)
	}
	if !strings.Contains(joined, "0 B/op (was 4096)") {
		t.Fatalf("B/op delta missing:\n%s", joined)
	}
	if !strings.Contains(joined, "BenchmarkDBSCANIndex/10k") || !strings.Contains(joined, "(new)") {
		t.Fatalf("new benchmark not marked:\n%s", joined)
	}
	if strings.Contains(joined, "BenchmarkGone") {
		t.Fatalf("removed benchmark leaked into diff:\n%s", joined)
	}
}

func TestDiffLinesZeroBaseline(t *testing.T) {
	// A zero prior ns/op must not divide by zero.
	prev := &Snapshot{Benchmarks: []Entry{{Name: "BenchmarkX", Procs: 1, NsPerOp: 0}}}
	cur := &Snapshot{Benchmarks: []Entry{{Name: "BenchmarkX", Procs: 1, NsPerOp: 10}}}
	lines := diffLines(prev, cur)
	if len(lines) != 1 || strings.Contains(lines[0], "%") {
		t.Fatalf("zero baseline mishandled: %v", lines)
	}
}

func TestParseLineSubBenchmark(t *testing.T) {
	e, ok := parseLine("BenchmarkAnalyzePipeline/ranks=16-4         \t      10\t 103456789 ns/op")
	if !ok {
		t.Fatal("sub-benchmark not parsed")
	}
	if e.Name != "BenchmarkAnalyzePipeline/ranks=16" || e.Procs != 4 {
		t.Fatalf("parsed %+v", e)
	}
}
