// Command burstcluster extracts computation bursts from a trace and
// clusters them, printing the discovered application structure and
// optionally writing the scatter data for plotting.
//
// With -stream the trace is consumed record by record through the
// streaming pipeline (stdin when -in is empty), never materializing it:
// tracegen -o - | burstcluster -stream.
//
// Usage:
//
//	burstcluster -in stencil.uvt [-min-duration 50] [-eps 0] [-minpts 4] [-scatter scatter.tsv]
//	burstcluster -stream [-in stencil.uvt] [...]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "input trace file (required unless -stream, which defaults to stdin)")
		minDur = flag.Float64("min-duration", 50, "burst duration filter in µs")
		eps    = flag.Float64("eps", 0, "DBSCAN eps in normalized space (0 = automatic)")
		minPts = flag.Int("minpts", 4, "DBSCAN minPts")
		noIPC  = flag.Bool("no-ipc", false, "cluster in 2-D (duration × instructions) instead of 3-D")
		scout  = flag.String("scatter", "", "write burst scatter TSV (duration_us, ipc, cluster)")
		par    = flag.Int("parallel", 0, "clustering worker count (0 = all cores, 1 = sequential); output is identical either way")
		knn    = flag.String("knn", "auto", "k-dist neighbor search for automatic eps: auto, kdtree, brute (eps is identical either way)")
		silN   = flag.Int("sil-sample", 0, "cap per-cluster members in the silhouette kernel (0 = exact; >0 trades exactness for O(n·K·S) cost)")
		stream = flag.Bool("stream", false, "consume the trace record-by-record (stdin when -in is empty or \"-\")")
	)
	flag.Parse()
	index, err := cluster.ParseIndexMode(*knn)
	if err != nil {
		fatal(err)
	}
	ccfg := cluster.Config{Eps: *eps, MinPts: *minPts, UseIPC: !*noIPC,
		Parallelism: *par, Index: index, SilhouetteSample: *silN}

	var (
		app      string
		nAll     int
		kept     []burst.Burst
		coverage float64
		res      cluster.Result
	)
	if *stream {
		r, closeIn, err := openInput(*in)
		if err != nil {
			fatal(err)
		}
		sr, err := trace.NewStreamReader(r)
		if err != nil {
			fatal(err)
		}
		// The pipeline's burst path is all this tool needs: skip sample
		// attachment entirely.
		out, err := pipeline.Run(sr, pipeline.Config{
			MinBurstDuration: trace.Time(*minDur * 1e3),
			Cluster:          ccfg,
			NoSamples:        true,
		})
		closeIn()
		if err != nil {
			fatal(err)
		}
		app, nAll, kept, coverage, res = out.Meta.App, out.Bursts, out.Kept, out.CoverageKept, out.Clustering
	} else {
		if *in == "" {
			fatal(fmt.Errorf("missing -in"))
		}
		tr, err := trace.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		all, err := burst.Extract(tr)
		if err != nil {
			fatal(err)
		}
		kept, _ = burst.Filter{MinDuration: trace.Time(*minDur * 1e3)}.Apply(all)
		res = cluster.ClusterBursts(kept, ccfg)
		app, nAll, coverage = tr.Meta.App, len(all), burst.Coverage(kept, all)
	}

	fmt.Printf("%s: %d bursts (%d filtered, %.1f%% time kept), K=%d, eps=%.4f, silhouette=%.3f\n",
		app, nAll, nAll-len(kept), 100*coverage,
		res.K, res.Eps, res.Silhouette)
	fmt.Printf("cluster time coverage: %.1f%%\n\n", 100*cluster.ClusterTimeCoverage(kept, res.Assign))

	tb := &report.Table{
		Title:  "Detected computation phases",
		Header: []string{"cluster", "instances", "total_time_s", "mean_duration_ms", "mean_IPC"},
	}
	type agg struct {
		n   int
		tot trace.Time
		ipc float64
	}
	byCluster := map[int]*agg{}
	for i, b := range kept {
		c := res.Assign[i]
		a := byCluster[c]
		if a == nil {
			a = &agg{}
			byCluster[c] = a
		}
		a.n++
		a.tot += b.Duration()
		a.ipc += b.IPC()
	}
	for c := 1; c <= res.K; c++ {
		a := byCluster[c]
		if a == nil {
			continue
		}
		tb.AddRow(fmt.Sprintf("Cluster %d", c), a.n,
			float64(a.tot)/1e9, float64(a.tot)/float64(a.n)/1e6, a.ipc/float64(a.n))
	}
	if a := byCluster[cluster.Noise]; a != nil {
		tb.AddRow("noise", a.n, float64(a.tot)/1e9, float64(a.tot)/float64(a.n)/1e6, a.ipc/float64(a.n))
	}
	fmt.Print(tb.Format())

	if *scout != "" {
		rows := make([][]string, 0, len(kept))
		for i, b := range kept {
			rows = append(rows, []string{
				fmt.Sprintf("%g", float64(b.Duration())/1e3),
				fmt.Sprintf("%g", b.IPC()),
				fmt.Sprintf("%d", res.Assign[i]),
			})
		}
		if err := report.WriteTSV(*scout, []string{"duration_us", "ipc", "cluster"}, rows); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s\n", *scout)
	}
}

// openInput resolves the streaming input: stdin when path is empty or
// "-", the named file otherwise.
func openInput(path string) (io.Reader, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "burstcluster:", err)
	os.Exit(1)
}
