// Command fold runs the full analysis pipeline on a trace — burst
// extraction, clustering, folding, call-stack folding — and reports each
// detected phase's internal evolution, with ASCII curve previews and the
// heuristic advice the methodology derives.
//
// With -stream the trace is analyzed record by record as it is read —
// from stdin by default, so tracegen output can be piped straight in
// without ever materializing the trace:
//
//	tracegen -app stencil -o - | fold -stream
//
// Adding -online bounds memory regardless of trace length: phases are
// classified on the fly from a training prefix and samples are folded
// incrementally instead of being retained.
//
// Usage:
//
//	fold -in stencil.uvt [-counter PAPI_TOT_INS] [-bins 100] [-model binned+pchip]
//	     [-phases 5] [-curves out_dir] [-iterations] [-lenient]
//	     [-shards 4] [-shard-mode time|rank]
//	     [-model-out phases.model | -model-in phases.model]
//	fold -stream [-in stencil.uvt] [-online] [-train 512] [-stages] [-lenient]
//
// -shards runs the batch analysis through the sharded map/reduce
// algebra (split, map each shard to a mergeable partial, reduce); the
// report is identical for every shard count and mode — the flag exists
// to exercise and benchmark the distributed decomposition locally.
//
// -model-out saves the cluster model trained on this trace so later
// runs can classify against it with -model-in, skipping training
// entirely — train once, classify repeatedly.
//
// -lenient salvages damaged traces: undecodable records are skipped at
// the decoder, validation failures are tolerated, and the analysis is
// reported as DEGRADED with every concession itemized, instead of
// aborting on the first fault.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	var (
		in         = flag.String("in", "", "input trace file (required unless -stream, which defaults to stdin)")
		counter    = flag.String("counter", "", "restrict folding to one PAPI counter name (default: all)")
		bins       = flag.Int("bins", 100, "folded-curve grid resolution")
		model      = flag.String("model", "binned+pchip", "fit model: binned+pchip, kernel, binned")
		phases     = flag.Int("phases", 5, "maximum phases to analyze")
		curves     = flag.String("curves", "", "directory to write per-phase folded-curve TSVs")
		iterations = flag.Bool("iterations", false, "fold whole iterations (EvIteration markers) instead of clustered bursts")
		par        = flag.Int("parallel", 0, "analysis worker count (0 = all cores, 1 = sequential); output is identical either way")
		knn        = flag.String("knn", "auto", "k-dist neighbor search for automatic eps: auto, kdtree, brute (output is identical either way)")
		silN       = flag.Int("sil-sample", 0, "cap per-cluster members in the silhouette kernel (0 = exact)")
		stream     = flag.Bool("stream", false, "analyze the trace record-by-record as it is read (stdin when -in is empty or \"-\")")
		online     = flag.Bool("online", false, "with -stream: bounded-memory analysis (train-then-classify, incremental folding)")
		train      = flag.Int("train", 0, "with -online: training-prefix length in bursts (0 = default 512)")
		stages     = flag.Bool("stages", false, "with -stream: print per-stage pipeline metrics")
		lenient    = flag.Bool("lenient", false, "salvage damaged traces: skip undecodable records, tolerate validation failures, and report the degradation instead of aborting")
		shards     = flag.Int("shards", 1, "analyze through the map/reduce algebra over this many shards (output is identical for any count)")
		shardMode  = flag.String("shard-mode", "time", "how -shards splits the trace: time (window slices) or rank (rank groups)")
		modelOut   = flag.String("model-out", "", "write the trained cluster model to this file after analyzing")
		modelIn    = flag.String("model-in", "", "classify against a previously saved cluster model instead of training one")
	)
	flag.Parse()

	opts := core.Options{MaxPhases: *phases, Parallelism: *par, Lenient: *lenient}
	index, err := cluster.ParseIndexMode(*knn)
	if err != nil {
		fatal(err)
	}
	opts.Cluster.Index = index
	opts.Cluster.SilhouetteSample = *silN
	opts.Fold.Bins = *bins
	switch *model {
	case "binned+pchip":
		opts.Fold.Model = folding.ModelBinnedPCHIP
	case "kernel":
		opts.Fold.Model = folding.ModelKernel
	case "binned":
		opts.Fold.Model = folding.ModelBinned
	default:
		fatal(fmt.Errorf("unknown model %q", *model))
	}
	if *counter != "" {
		c, err := counters.ParseCounter(*counter)
		if err != nil {
			fatal(err)
		}
		opts.Counters = []counters.Counter{c}
	}

	shMode, err := core.ParseShardMode(*shardMode)
	if err != nil {
		fatal(err)
	}
	if (*modelIn != "" || *modelOut != "") && (*stream || *iterations) {
		fatal(fmt.Errorf("-model-in/-model-out need the batch clustering pipeline and cannot be combined with -stream or -iterations"))
	}

	var rep *core.Report
	if *stream {
		if *iterations {
			fatal(fmt.Errorf("-iterations needs the full trace and cannot be combined with -stream"))
		}
		if *shards > 1 {
			fatal(fmt.Errorf("-shards needs the full trace and cannot be combined with -stream"))
		}
		opts.Stream = core.StreamOptions{Online: *online, TrainBursts: *train}
		r, closeIn, err := openInput(*in)
		if err != nil {
			fatal(err)
		}
		rep, err = core.AnalyzeStream(r, opts)
		closeIn()
		if err != nil {
			fatal(err)
		}
	} else {
		if *online {
			fatal(fmt.Errorf("-online requires -stream"))
		}
		if *in == "" {
			fatal(fmt.Errorf("missing -in"))
		}
		var tr *trace.Trace
		var decodeStats trace.DecodeStats
		var err error
		if *lenient {
			tr, decodeStats, err = trace.ReadFileLenient(*in)
		} else {
			tr, err = trace.ReadFile(*in)
		}
		if err != nil {
			fatal(err)
		}
		if *iterations {
			if *shards > 1 {
				fatal(fmt.Errorf("-iterations folds the whole trace and cannot be combined with -shards"))
			}
			foldIterations(tr, *counter, *bins)
			return
		}
		// AnalyzeSharded with one shard is exactly Analyze — the algebra
		// guarantees the report is identical for every shard count.
		if *modelIn != "" || *modelOut != "" {
			rep, err = analyzeWithModel(tr, *shards, shMode, opts, *modelIn, *modelOut)
		} else {
			rep, err = core.AnalyzeSharded(tr, *shards, shMode, opts)
		}
		if err != nil {
			fatal(err)
		}
		if *lenient {
			rep.NoteDecode(decodeStats)
		}
	}

	mode := ""
	if rep.Online {
		mode = " (online classification)"
	}
	fmt.Printf("%s: %d ranks, %d bursts (%d filtered), %d phases detected%s\n\n",
		rep.App, rep.Ranks, rep.Bursts, rep.Filtered, rep.Clustering.K, mode)
	if rep.TrainErr != "" {
		fmt.Printf("online training failed: %s — no phases classified\n\n", rep.TrainErr)
	}
	if rep.Degraded {
		fmt.Println("DEGRADED analysis — results carry concessions:")
		for _, w := range rep.Warnings {
			fmt.Println("  !", w)
		}
		fmt.Println()
	}
	if *stages {
		printStages(rep)
	}

	for _, ph := range rep.Phases {
		fmt.Printf("── Phase %d ─ %d instances, %.3f s total, mean %.3f ms, IPC %.2f",
			ph.ClusterID, ph.Instances, float64(ph.TotalTime)/1e9, ph.MeanDuration/1e6, ph.MeanIPC)
		if ph.ImbalanceFactor > 0 {
			fmt.Printf(", imbalance %.2f", ph.ImbalanceFactor)
		}
		fmt.Println()

		cs := make([]counters.Counter, 0, len(ph.Folds))
		for c := range ph.Folds {
			cs = append(cs, c)
		}
		sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
		for _, c := range cs {
			f := ph.Folds[c]
			if rep.Online {
				fmt.Printf("\n%s: folded incrementally from %d instances (%d pruned)\n",
					c, f.Instances, f.Pruned)
			} else {
				fmt.Printf("\n%s: %d points folded from %d instances (%d pruned)\n",
					c, len(f.Points), f.Instances, f.Pruned)
			}
			fmt.Print(report.ASCIIPlot(
				fmt.Sprintf("  instantaneous %s rate (per µs) over normalized time", c),
				f.Grid, scale(f.Rate, 1e3), 72, 12))
			if len(f.Breakpoints) > 0 {
				fmt.Printf("  sub-phase boundaries at x = %v\n", f.Breakpoints)
			}
			if *curves != "" {
				path := filepath.Join(*curves, fmt.Sprintf("phase%d_%s.tsv", ph.ClusterID, c))
				err := report.WriteSeriesTSV(path, []report.Series{
					{Name: "cumulative", X: f.Grid, Y: f.Cumulative},
					{Name: "rate_per_us", X: f.Grid, Y: scale(f.Rate, 1e3)},
				})
				if err != nil {
					fatal(err)
				}
			}
		}
		for c, err := range ph.FoldErrors {
			fmt.Printf("%s: not folded (%v)\n", c, err)
		}
		if ph.Stacks != nil && len(ph.Stacks.Regions) > 0 {
			fmt.Printf("\ncall-stack folding (%d samples): regions ", ph.Stacks.Samples)
			for i, id := range ph.Stacks.Regions {
				if i > 0 {
					fmt.Print(", ")
				}
				fmt.Print(rep.Meta.RegionName(id))
			}
			fmt.Println()
			if trs := ph.Stacks.Transitions(); len(trs) > 0 {
				fmt.Printf("region transitions at x = %v\n", trs)
			}
		}
		if len(ph.Advice) > 0 {
			fmt.Println("\nadvice:")
			for _, a := range ph.Advice {
				fmt.Println("  •", a)
			}
		}
		fmt.Println()
	}
}

// analyzeWithModel runs the batch analysis through the map/reduce
// algebra with an explicit cluster model: either classify against a
// model saved earlier (-model-in, skipping training entirely) or train
// one from this trace's partials and optionally persist it
// (-model-out) for later runs — the memoized-intermediate path the
// service-side result cache exercises.
func analyzeWithModel(tr *trace.Trace, shards int, mode core.ShardMode, opts core.Options, inPath, outPath string) (*core.Report, error) {
	shs := core.Split(tr, shards, mode)
	parts := make([]*core.Partial, len(shs))
	for i := range shs {
		p, err := core.MapShard(shs[i], opts)
		if err != nil {
			return nil, fmt.Errorf("map shard %d: %w", i, err)
		}
		parts[i] = p
	}
	var model *cluster.Model
	if inPath != "" {
		data, err := os.ReadFile(inPath)
		if err != nil {
			return nil, err
		}
		model, err = cluster.DecodeModel(data)
		if err != nil {
			return nil, fmt.Errorf("decode model %s: %w", inPath, err)
		}
	} else {
		var err error
		model, err = core.TrainModelFromPartials(parts, opts)
		if err != nil {
			return nil, fmt.Errorf("train model: %w", err)
		}
	}
	if outPath != "" {
		data, err := model.Encode()
		if err != nil {
			return nil, fmt.Errorf("encode model: %w", err)
		}
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return nil, err
		}
	}
	return core.Reduce(parts, model, opts)
}

// openInput resolves the streaming input: stdin when path is empty or
// "-", the named file otherwise.
func openInput(path string) (io.Reader, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// printStages renders the pipeline's per-stage metrics.
func printStages(rep *core.Report) {
	fmt.Println("pipeline stages:")
	for _, m := range rep.Pipeline {
		fmt.Printf("  %-9s in=%-9d out=%-7d", m.Stage, m.RecordsIn, m.RecordsOut)
		if m.Bytes > 0 {
			fmt.Printf(" bytes=%-9d", m.Bytes)
		}
		fmt.Printf(" wall=%s\n", m.Wall.Round(10*time.Microsecond))
	}
	fmt.Println()
}

// foldIterations runs marker-driven iteration folding instead of the
// clustering pipeline.
func foldIterations(tr *trace.Trace, counterName string, bins int) {
	instances, err := folding.InstancesFromIterations(tr)
	if err != nil {
		fatal(err)
	}
	cs := []counters.Counter{counters.TotIns}
	if counterName != "" {
		c, err := counters.ParseCounter(counterName)
		if err != nil {
			fatal(err)
		}
		cs = []counters.Counter{c}
	}
	fmt.Printf("%s: folding %d whole iterations\n\n", tr.Meta.App, len(instances))
	for _, c := range cs {
		res, err := folding.Fold(instances, folding.Config{Counter: c, Bins: bins})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s over one iteration (mean %.2f ms):\n", c, res.MeanDuration/1e6)
		fmt.Print(report.ASCIIPlot("  cumulative", res.Grid, res.Cumulative, 72, 12))
		fmt.Print(report.ASCIIPlot("  rate (per µs)", res.Grid, scale(res.Rate, 1e3), 72, 12))
		if len(res.Breakpoints) > 0 {
			fmt.Printf("  compute/wait boundaries at x = %v\n", res.Breakpoints)
		}
	}
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fold:", err)
	os.Exit(1)
}
