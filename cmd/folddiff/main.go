// Command folddiff compares two runs of (nominally) the same
// application: it analyzes both inputs through the standard pipeline,
// matches the detected phases across the runs by cluster-centroid
// similarity, and reports where inside each matched phase the behavior
// diverged — per-phase duration/occurrence deltas, per-counter shape
// and rate deltas with the normalized-time window of maximum
// divergence, and a significance guard against run-to-run noise.
//
// Each input is either a trace (.uvt) or an already-analyzed report
// (the JSON core.Report that fold -json consumers and foldsvc produce);
// report inputs skip re-analysis entirely. With -stream, trace inputs
// are analyzed record by record ("-" reads one side from stdin).
//
// Usage:
//
//	folddiff [flags] runA.uvt runB.uvt
//	folddiff -json baseline.report.json regression.uvt
//	tracegen -o - -perturb 1.2 | folddiff runA.uvt -stream -
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/diff"
	"repro/internal/trace"
)

func main() {
	var (
		stream    = flag.Bool("stream", false, "analyze trace inputs record-by-record (\"-\" reads that side from stdin)")
		lenient   = flag.Bool("lenient", false, "salvage damaged traces: analyze whatever decodes and mark the diff degraded")
		shards    = flag.Int("shards", 1, "analyze trace inputs through the map/reduce algebra over this many shards (output is identical for any count)")
		shardMode = flag.String("shard-mode", "time", "how -shards splits the traces: time (window slices) or rank (rank groups)")
		modelIn   = flag.String("model-in", "", "classify both traces against a previously saved cluster model instead of training per run")
		phases    = flag.Int("phases", 5, "maximum phases to analyze per run")
		counter   = flag.String("counter", "", "restrict folding to one PAPI counter name (default: all)")
		par       = flag.Int("parallel", 0, "analysis worker count (0 = all cores, 1 = sequential); output is identical either way")
		bins      = flag.Int("bins", 100, "common normalized-time grid resolution for the delta curves")
		radius    = flag.Float64("match-radius", 0, "centroid capture radius for cross-run phase matching (0 = default 0.75)")
		sigma     = flag.Float64("sigma", 0, "significance multiplier over the folded clouds' standard error (0 = default 3)")
		noise     = flag.Float64("noise-floor", 0, "minimum shape divergence (fraction of phase total) ever considered significant (0 = default 0.02)")
		jsonOut   = flag.Bool("json", false, "emit the diff report as JSON instead of the human tables")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fatal(fmt.Errorf("need exactly two inputs (traces or saved reports), got %d", flag.NArg()))
	}

	opts := core.Options{MaxPhases: *phases, Parallelism: *par, Lenient: *lenient}
	if *counter != "" {
		c, err := counters.ParseCounter(*counter)
		if err != nil {
			fatal(err)
		}
		opts.Counters = []counters.Counter{c}
	}
	shMode, err := core.ParseShardMode(*shardMode)
	if err != nil {
		fatal(err)
	}
	var model *cluster.Model
	if *modelIn != "" {
		if *stream {
			fatal(fmt.Errorf("-model-in needs the batch clustering pipeline and cannot be combined with -stream"))
		}
		data, err := os.ReadFile(*modelIn)
		if err != nil {
			fatal(err)
		}
		model, err = cluster.DecodeModel(data)
		if err != nil {
			fatal(fmt.Errorf("decode model %s: %w", *modelIn, err))
		}
	}

	repA := analyzeInput(flag.Arg(0), *stream, *shards, shMode, model, opts)
	repB := analyzeInput(flag.Arg(1), *stream, *shards, shMode, model, opts)

	d, err := diff.Compare(repA, repB, diff.Options{
		Bins:        *bins,
		MatchRadius: *radius,
		SigmaK:      *sigma,
		NoiseFloor:  *noise,
	})
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(d); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Print(d.Format())
}

// analyzeInput turns one CLI argument into a Report: a saved JSON
// report is loaded as-is; a trace is analyzed through the selected
// pipeline ("-" streams from stdin).
func analyzeInput(path string, stream bool, shards int, shMode core.ShardMode, model *cluster.Model, opts core.Options) *core.Report {
	if path != "-" {
		if rep, ok := loadReport(path); ok {
			return rep
		}
	}

	if stream {
		r, closeIn, err := openInput(path)
		if err != nil {
			fatal(err)
		}
		rep, err := core.AnalyzeStream(r, opts)
		closeIn()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name(path), err))
		}
		return rep
	}
	if path == "-" {
		fatal(fmt.Errorf("stdin input needs -stream"))
	}

	var tr *trace.Trace
	var decodeStats trace.DecodeStats
	var err error
	if opts.Lenient {
		tr, decodeStats, err = trace.ReadFileLenient(path)
	} else {
		tr, err = trace.ReadFile(path)
	}
	if err != nil {
		fatal(err)
	}
	var rep *core.Report
	if model != nil {
		rep, err = analyzeWithModel(tr, shards, shMode, model, opts)
	} else {
		rep, err = core.AnalyzeSharded(tr, shards, shMode, opts)
	}
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if opts.Lenient {
		rep.NoteDecode(decodeStats)
	}
	return rep
}

// loadReport tries to read path as a saved JSON core.Report. ok is
// false when the file is not JSON (i.e. a binary trace).
func loadReport(path string) (*core.Report, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) == 0 || trimmed[0] != '{' {
		return nil, false
	}
	var rep core.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		fatal(fmt.Errorf("%s looks like JSON but does not decode as a report: %w", path, err))
	}
	if rep.App == "" && len(rep.Phases) == 0 {
		fatal(fmt.Errorf("%s decodes as JSON but carries no analysis (not a saved report?)", path))
	}
	return &rep, true
}

// analyzeWithModel classifies a trace against a shared, pre-trained
// cluster model through the map/reduce algebra — both runs see the
// same phase definitions, which pins cross-run cluster ids.
func analyzeWithModel(tr *trace.Trace, shards int, mode core.ShardMode, model *cluster.Model, opts core.Options) (*core.Report, error) {
	shs := core.Split(tr, shards, mode)
	parts := make([]*core.Partial, len(shs))
	for i := range shs {
		p, err := core.MapShard(shs[i], opts)
		if err != nil {
			return nil, fmt.Errorf("map shard %d: %w", i, err)
		}
		parts[i] = p
	}
	return core.Reduce(parts, model, opts)
}

// openInput resolves a streaming input: stdin for "-", the named file
// otherwise.
func openInput(path string) (io.Reader, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

func name(path string) string {
	if path == "" || path == "-" {
		return "stdin"
	}
	return path
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "folddiff:", err)
	os.Exit(1)
}
