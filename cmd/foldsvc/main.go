// Command foldsvc is the long-running analysis daemon: it serves the
// same trace analysis the fold CLI runs, over HTTP, with observability
// built in — Prometheus-text metrics, structured logs, pprof, request
// deadlines and graceful shutdown.
//
// Endpoints:
//
//	POST /v1/analyze    analyze an uploaded trace stream; the response is
//	                    the JSON core.Report. Query parameters map the
//	                    CLI knobs: online, train, parallel, phases, bins,
//	                    model, counter, knn, sil_sample, stack_bins,
//	                    min_pts, min_burst_us, lenient. With
//	                    ?path=rel/trace.uvt (and -path-root set) the
//	                    trace is read from a local file instead of the
//	                    body. ?lenient=1 salvages damaged uploads and
//	                    returns a Degraded report instead of a 400.
//	                    Results are cached content-addressed (trace
//	                    digest + analysis options); the Cache-Status
//	                    response header says hit, miss or coalesced, and
//	                    ?nocache=1 bypasses the cache for one request.
//	POST /v1/partial    worker half of a distributed analysis: map one
//	                    shard (?shard=i&shards=n&mode=time|rank) of the
//	                    uploaded trace to a mergeable JSON core.Partial.
//	POST /v1/session    open a live analysis session (same query knobs as
//	                    /v1/analyze, fixed for the session's life); the
//	                    response carries the session id. With -session-dir
//	                    every append is write-ahead journaled and sessions
//	                    survive a daemon crash or restart.
//	POST /v1/session/{id}/append
//	                    stream one trace chunk into the session (?seq=N
//	                    makes retries idempotent); acknowledged only after
//	                    the journal write.
//	GET  /v1/session/{id}/events
//	                    SSE stream of evolving Report snapshots with
//	                    monotonic event ids; reconnect with Last-Event-ID
//	                    to resume without duplicates or gaps.
//	GET  /v1/session/{id}
//	                    JSON session status.
//	GET  /metrics       Prometheus text exposition
//	GET  /healthz       liveness probe
//	GET  /debug/pprof/  runtime profiling
//
// With -workers the daemon becomes a coordinator: /v1/analyze splits
// each upload into -shards shards, fans them out to the worker daemons'
// /v1/partial routes (consistent-hash routing on the trace digest, one
// failover per shard, circuit breaker per worker), reduces the partials
// locally, and answers with the same JSON core.Report — degraded with
// per-shard warnings when a shard is lost, never a whole-request 500:
//
//	foldsvc -addr :9001 & foldsvc -addr :9002 &
//	foldsvc -addr :8080 -workers http://localhost:9001,http://localhost:9002
//
// A typical session:
//
//	foldsvc -addr :8080 &
//	tracegen -app stencil -o - | curl -sS --data-binary @- \
//	    'http://localhost:8080/v1/analyze?online=1' | jq .Clustering.K
//
// Caching: the daemon keeps a content-addressed result cache
// (-cache-max-bytes in memory, optionally persisted under -cache-dir so
// warm results survive restarts). Traces are immutable and the pipeline
// deterministic, so entries never expire; concurrent identical uploads
// coalesce onto a single analysis.
//
// Robustness: uploads beyond -max-body get 413; more than -jobs
// concurrent analyses get 429 with Retry-After; every request is
// panic-recovered; a cancelled client or an expired -deadline stops the
// analysis pipeline mid-stream; an upload that goes quiet for -stall
// without disconnecting gets 408; SIGINT/SIGTERM drain in-flight
// requests for up to -drain before the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/foldsvc"
	"repro/internal/obs"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		jobs     = flag.Int("jobs", 0, "max concurrent analyses before 429 backpressure (0 = GOMAXPROCS)")
		par      = flag.Int("parallel", 0, "default per-analysis worker count (0 = all cores); requests override with ?parallel=")
		maxBody  = flag.Int64("max-body", 256<<20, "max uploaded trace size in bytes (413 beyond)")
		deadline = flag.Duration("deadline", 0, "per-request analysis deadline (0 = none)")
		stall    = flag.Duration("stall", 0, "fail an analysis whose pipeline makes no progress for this long (408; 0 disables the watchdog)")
		drain    = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget for in-flight requests")
		pathRoot = flag.String("path-root", "", "directory ?path= trace references resolve under (empty disables local-path analysis)")
		cacheMax = flag.Int64("cache-max-bytes", 256<<20, "in-memory result-cache budget in bytes (0 disables caching)")
		cacheDir = flag.String("cache-dir", "", "directory for the persistent result-cache tier (empty = memory only)")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		logJSON  = flag.Bool("log-json", false, "log JSON instead of text")
		workers  = flag.String("workers", "", "comma-separated worker base URLs; non-empty switches /v1/analyze into coordinator mode (fan out shards, reduce locally)")
		shards   = flag.Int("shards", 0, "shards per coordinated analysis (0 = one per worker)")
		shardMd  = flag.String("shard-mode", "time", "how the coordinator splits uploads: time (window slices) or rank (rank groups)")
		sessDir  = flag.String("session-dir", "", "directory for live-session write-ahead journals (empty = sessions are memory-only and die with the process)")
		sessTTL  = flag.Duration("session-ttl", 15*time.Minute, "evict live sessions with no appends for this long")
		sessMax  = flag.Int64("session-max-bytes", 64<<20, "per-session appended-byte budget (429 beyond)")
		sessTot  = flag.Int64("sessions-max-bytes", 256<<20, "appended-byte budget across all live sessions (429 beyond)")
		sessHB   = flag.Duration("session-heartbeat", 15*time.Second, "SSE keepalive interval for /v1/session/{id}/events")
	)
	flag.Parse()

	mode, err := core.ParseShardMode(*shardMd)
	if err != nil {
		fatal(err)
	}
	var workerURLs []string
	if *workers != "" {
		for _, w := range strings.Split(*workers, ",") {
			if w = strings.TrimSpace(w); w != "" {
				workerURLs = append(workerURLs, w)
			}
		}
	}

	cacheBytes := *cacheMax
	if cacheBytes == 0 {
		// The flag's 0 means "no cache"; the Config field's 0 means "use
		// the default budget", so translate.
		cacheBytes = -1
	}

	logger := obs.NewLogger(os.Stderr, obs.ParseLevel(*logLevel), *logJSON)
	srv := foldsvc.NewServer(foldsvc.Config{
		MaxBody:       *maxBody,
		Jobs:          *jobs,
		Parallelism:   *par,
		Deadline:      *deadline,
		Stall:         *stall,
		PathRoot:      *pathRoot,
		CacheMaxBytes: cacheBytes,
		CacheDir:      *cacheDir,
		Logger:        logger,
		Workers:       workerURLs,
		Shards:        *shards,
		ShardMode:     mode,

		SessionDir:       *sessDir,
		SessionTTL:       *sessTTL,
		SessionMaxBytes:  *sessMax,
		SessionsMaxBytes: *sessTot,
		SessionHeartbeat: *sessHB,
	})

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	logger.Info("foldsvc listening", "addr", *addr, "jobs", srv.Capacity(),
		"max_body", *maxBody, "deadline", *deadline)

	select {
	case err := <-errc:
		fatal(err)
	case <-ctx.Done():
	}

	// Graceful drain: flip into drain mode first — admission routes
	// answer 503 + Retry-After, live sessions flush their journals and
	// send a final "end" event to SSE subscribers — then let in-flight
	// requests finish within the drain budget and cut the remainder
	// loose.
	logger.Info("shutting down", "drain", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	srv.StartDrain(dctx)
	if err := hs.Shutdown(dctx); err != nil {
		logger.Warn("drain budget exceeded, closing", "err", err)
		hs.Close()
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
	logger.Info("foldsvc stopped")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "foldsvc:", err)
	os.Exit(1)
}
