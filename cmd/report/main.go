// Command report regenerates the reconstructed evaluation: every table
// (T1–T7) and figure (F1–F8) of EXPERIMENTS.md, written under -out.
//
// With -stream it instead renders an analysis report for a trace
// consumed record by record (stdin when -in is empty), so tracegen
// output can be piped straight in: tracegen -o - | report -stream.
//
// Usage:
//
//	report -out out [-ranks 16] [-iters 200] [-seed 1] [-only T2]
//	report -stream [-in stencil.uvt] [-online] [-lenient]
//
// -lenient (with -stream) salvages damaged traces: undecodable records
// are skipped and the report is rendered DEGRADED with the concessions
// listed, instead of aborting on the first fault.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/report"
)

func main() {
	var (
		out     = flag.String("out", "out", "output directory")
		ranks   = flag.Int("ranks", 16, "simulated MPI ranks")
		iters   = flag.Int("iters", 200, "application iterations")
		seed    = flag.Uint64("seed", 1, "simulator seed")
		only    = flag.String("only", "", "run a single experiment id (e.g. T2, F4)")
		stream  = flag.Bool("stream", false, "render an analysis report for a streamed trace instead of running experiments")
		in      = flag.String("in", "", "with -stream: input trace file (stdin when empty or \"-\")")
		online  = flag.Bool("online", false, "with -stream: bounded-memory analysis (train-then-classify, incremental folding)")
		lenient = flag.Bool("lenient", false, "with -stream: salvage damaged traces and render a DEGRADED report instead of aborting")
	)
	flag.Parse()
	if *stream {
		streamReport(*in, *online, *lenient)
		return
	}
	env := experiments.Env{Ranks: *ranks, Iters: *iters, Seed: *seed}

	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		art, err := e.Run(env)
		if err != nil {
			fatal(err)
		}
		if err := art.Save(*out); err != nil {
			fatal(err)
		}
		printArtifact(art, time.Since(start))
		return
	}

	for _, e := range experiments.All() {
		start := time.Now()
		art, err := e.Run(env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := art.Save(*out); err != nil {
			fatal(err)
		}
		printArtifact(art, time.Since(start))
	}
	fmt.Printf("\nall experiments written to %s/\n", *out)
}

func printArtifact(a *experiments.Artifact, dur time.Duration) {
	fmt.Printf("── %s (%.1fs)\n", a.ID, dur.Seconds())
	if a.Table != nil {
		fmt.Print(a.Table.Format())
	}
	for _, n := range a.Notes {
		fmt.Println("note:", n)
	}
	for name := range a.Figures {
		fmt.Printf("figure data: %s_%s.tsv\n", a.ID, name)
	}
	fmt.Println()
}

// streamReport analyzes a record stream and renders the result as a
// single text report: summary, per-stage pipeline metrics, and a table
// of the detected phases.
func streamReport(in string, online, lenient bool) {
	r := io.Reader(os.Stdin)
	if in != "" && in != "-" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	opts := core.Options{Stream: core.StreamOptions{Online: online}, Lenient: lenient}
	rep, err := core.AnalyzeStream(r, opts)
	if err != nil {
		fatal(err)
	}

	mode := "exact"
	if rep.Online {
		mode = "online"
	}
	fmt.Printf("%s: %d ranks, %.3f s, %d events / %d samples / %d comms (%s streaming analysis)\n",
		rep.App, rep.Ranks, float64(rep.Meta.Duration)/1e9,
		rep.Records.Events, rep.Records.Samples, rep.Records.Comms, mode)
	fmt.Printf("%d bursts (%d filtered, %.1f%% time kept), K=%d, cluster time coverage %.1f%%, SPMD score %.2f\n\n",
		rep.Bursts, rep.Filtered, 100*rep.CoverageKept,
		rep.Clustering.K, 100*rep.ClusterTimeCoverage, rep.SPMDScore)
	if rep.TrainErr != "" {
		fmt.Printf("online training failed: %s — no phases classified\n\n", rep.TrainErr)
	}
	if rep.Degraded {
		fmt.Println("DEGRADED analysis — results carry concessions:")
		for _, w := range rep.Warnings {
			fmt.Println("  !", w)
		}
		fmt.Println()
	}

	st := &report.Table{
		Title:  "Pipeline stages",
		Header: []string{"stage", "records_in", "records_out", "bytes", "wall_ms"},
	}
	for _, m := range rep.Pipeline {
		st.AddRow(m.Stage, m.RecordsIn, m.RecordsOut, m.Bytes,
			float64(m.Wall.Microseconds())/1e3)
	}
	fmt.Print(st.Format())
	fmt.Println()

	if len(rep.Phases) == 0 {
		fmt.Println("no phases detected")
		return
	}
	tb := &report.Table{
		Title:  "Detected computation phases",
		Header: []string{"phase", "instances", "total_time_s", "mean_ms", "IPC", "folded_counters", "advice"},
	}
	for _, ph := range rep.Phases {
		cs := make([]string, 0, len(ph.Folds))
		for c := range ph.Folds {
			cs = append(cs, c.String())
		}
		sort.Strings(cs)
		folded := ""
		for i, c := range cs {
			if i > 0 {
				folded += ","
			}
			folded += c
		}
		tb.AddRow(fmt.Sprintf("Phase %d", ph.ClusterID), ph.Instances,
			float64(ph.TotalTime)/1e9, ph.MeanDuration/1e6, ph.MeanIPC,
			folded, len(ph.Advice))
	}
	fmt.Print(tb.Format())
	for _, ph := range rep.Phases {
		for _, a := range ph.Advice {
			fmt.Printf("phase %d: %s\n", ph.ClusterID, a)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
