// Command report regenerates the reconstructed evaluation: every table
// (T1–T6) and figure (F1–F6) of EXPERIMENTS.md, written under -out.
//
// Usage:
//
//	report -out out [-ranks 16] [-iters 200] [-seed 1] [-only T2]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	var (
		out   = flag.String("out", "out", "output directory")
		ranks = flag.Int("ranks", 16, "simulated MPI ranks")
		iters = flag.Int("iters", 200, "application iterations")
		seed  = flag.Uint64("seed", 1, "simulator seed")
		only  = flag.String("only", "", "run a single experiment id (e.g. T2, F4)")
	)
	flag.Parse()
	env := experiments.Env{Ranks: *ranks, Iters: *iters, Seed: *seed}

	if *only != "" {
		e, err := experiments.ByID(*only)
		if err != nil {
			fatal(err)
		}
		start := time.Now()
		art, err := e.Run(env)
		if err != nil {
			fatal(err)
		}
		if err := art.Save(*out); err != nil {
			fatal(err)
		}
		printArtifact(art, time.Since(start))
		return
	}

	for _, e := range experiments.All() {
		start := time.Now()
		art, err := e.Run(env)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", e.ID, err))
		}
		if err := art.Save(*out); err != nil {
			fatal(err)
		}
		printArtifact(art, time.Since(start))
	}
	fmt.Printf("\nall experiments written to %s/\n", *out)
}

func printArtifact(a *experiments.Artifact, dur time.Duration) {
	fmt.Printf("── %s (%.1fs)\n", a.ID, dur.Seconds())
	if a.Table != nil {
		fmt.Print(a.Table.Format())
	}
	for _, n := range a.Notes {
		fmt.Println("note:", n)
	}
	for name := range a.Figures {
		fmt.Printf("figure data: %s_%s.tsv\n", a.ID, name)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "report:", err)
	os.Exit(1)
}
