// Command tracegen runs one of the built-in synthetic applications under
// the simulator and writes the resulting trace, optionally also in the
// Paraver-style text format. With -o - the encoded trace goes to stdout
// (status to stderr), so it can be piped straight into a streaming
// consumer: tracegen -app stencil -o - | fold -stream. Adding
// -pace 50000 paces the stdout stream to about that many records per
// second of wall-clock time, emulating a live application feeding a
// consumer in real time.
//
// Usage:
//
//	tracegen -app stencil -ranks 16 -iters 200 -o stencil.uvt [-prv] [-period 20] [-seed 1]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/paraver"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	var (
		appName = flag.String("app", "stencil", "application: "+strings.Join(apps.Names(), ", "))
		preset  = flag.String("preset", "", "named workload preset overriding -app/-ranks/-iters ("+apps.BenchLargeName+": ~100k bursts for the large-scale benchmarks)")
		ranks   = flag.Int("ranks", 16, "number of MPI ranks")
		iters   = flag.Int("iters", 200, "main-loop iterations")
		seed    = flag.Uint64("seed", 1, "simulator seed")
		period  = flag.Float64("period", 20, "sampling period in ms (0 disables sampling)")
		fine    = flag.Bool("fine", false, "use the fine-grain reference configuration (50 µs)")
		out     = flag.String("o", "", "output trace file (default <app>.uvt)")
		prv     = flag.Bool("prv", false, "also write <out>.prv and <out>.pcf (Paraver-style text)")
		pace    = flag.Float64("pace", 0, "with -o -, pace stdout emission to about this many records/s instead of writing at full speed (0 = no pacing); exercises live consumers")

		perturb       = flag.Float64("perturb", 0, "slow selected iterations' kernel instances by this factor (0 disables; e.g. 1.5 = 50% slower)")
		perturbFrac   = flag.Float64("perturb-frac", 0.5, "fraction of iterations perturbed (selection is seeded, not a prefix)")
		perturbKernel = flag.String("perturb-kernel", "", "restrict perturbation to one kernel name (empty = all kernels)")
		perturbAt     = flag.Float64("perturb-at", 0.6, "normalized position inside the instance where the stall is inserted")
		perturbSeed   = flag.Uint64("perturb-seed", 1, "iteration-selection seed (independent of -seed)")
	)
	flag.Parse()

	switch *preset {
	case "":
	case apps.BenchLargeName:
		*appName, *ranks, *iters = apps.BenchLargeApp, apps.BenchLargeRanks, apps.BenchLargeIters
	default:
		fatal(fmt.Errorf("unknown preset %q (want %s)", *preset, apps.BenchLargeName))
	}
	if err := validateShape(*ranks, *iters); err != nil {
		fatal(err)
	}

	app, err := apps.ByName(*appName, *iters)
	if err != nil {
		fatal(err)
	}
	var cfg sim.Config
	if *fine {
		cfg = apps.FineTraceConfig(*ranks)
	} else {
		cfg = apps.DefaultTraceConfig(*ranks)
		cfg.Sampling.Period = trace.Time(*period * 1e6)
	}
	cfg.Seed = *seed
	if *perturb != 0 {
		cfg.Perturb = sim.PerturbConfig{
			Factor:   *perturb,
			Fraction: *perturbFrac,
			Kernel:   *perturbKernel,
			At:       *perturbAt,
			Seed:     *perturbSeed,
		}
	}

	tr, err := sim.Run(cfg, app)
	if err != nil {
		fatal(err)
	}
	path := *out
	if path == "" {
		path = *appName + ".uvt"
	}
	if path == "-" {
		if *prv {
			fatal(fmt.Errorf("-prv needs a file path, not stdout"))
		}
		if *pace < 0 {
			fatal(fmt.Errorf("-pace must be >= 0 (got %g)", *pace))
		}
		if *pace > 0 {
			if err := writePaced(tr, os.Stdout, *pace); err != nil {
				fatal(err)
			}
		} else if err := tr.Write(os.Stdout); err != nil {
			fatal(err)
		}
		st := tr.Stats()
		fmt.Fprintf(os.Stderr, "wrote trace to stdout: %d ranks, %.3f s virtual time, %d events, %d samples, %d comms\n",
			tr.Meta.Ranks, float64(st.Duration)/1e9, st.Events, st.Samples, st.Comms)
		return
	}
	if *pace > 0 {
		fatal(fmt.Errorf("-pace works with -o - (stdout streaming) only"))
	}
	if err := tr.WriteFile(path); err != nil {
		fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("wrote %s: %d ranks, %.3f s virtual time, %d events, %d samples, %d comms\n",
		path, tr.Meta.Ranks, float64(st.Duration)/1e9, st.Events, st.Samples, st.Comms)

	if *prv {
		if err := writePRV(tr, path); err != nil {
			fatal(err)
		}
	}
}

// writePaced emits the encoded trace in wall-clock-paced slices so the
// whole stream lasts about records/rate seconds — a cheap stand-in for
// a live application when exercising streaming consumers (fold -stream,
// live analysis sessions). Pacing is byte-proportional over the encoded
// form; the receiving decoder sees the same bytes either way.
func writePaced(tr *trace.Trace, w io.Writer, rate float64) error {
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		return err
	}
	st := tr.Stats()
	records := float64(st.Events + st.Samples + st.Comms)
	total := time.Duration(records / rate * float64(time.Second))
	const tick = 50 * time.Millisecond
	steps := int(total / tick)
	data := buf.Bytes()
	if steps < 1 {
		_, err := w.Write(data)
		return err
	}
	chunk := (len(data) + steps - 1) / steps
	if chunk < 1 {
		chunk = 1
	}
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		if _, err := w.Write(data[off:end]); err != nil {
			return err
		}
		if end < len(data) {
			time.Sleep(tick)
		}
	}
	return nil
}

// validateShape rejects impossible workload shapes up front, with an
// error naming the flag, instead of letting the simulator fail
// obscurely (or spin) on a zero or negative size.
func validateShape(ranks, iters int) error {
	if ranks < 1 {
		return fmt.Errorf("-ranks must be >= 1 (got %d)", ranks)
	}
	if iters < 1 {
		return fmt.Errorf("-iters must be >= 1 (got %d)", iters)
	}
	return nil
}

func writePRV(tr *trace.Trace, base string) error {
	prvPath := base + ".prv"
	f, err := os.Create(prvPath)
	if err != nil {
		return err
	}
	if err := paraver.Encode(f, tr); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	pcfPath := base + ".pcf"
	g, err := os.Create(pcfPath)
	if err != nil {
		return err
	}
	if err := paraver.EncodePCF(g, tr); err != nil {
		g.Close()
		return err
	}
	if err := g.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s and %s\n", prvPath, pcfPath)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "tracegen:", err)
	os.Exit(1)
}
