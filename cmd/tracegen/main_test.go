package main

import (
	"strings"
	"testing"
)

func TestValidateShape(t *testing.T) {
	cases := []struct {
		name         string
		ranks, iters int
		wantErr      string // substring; "" means valid
	}{
		{"ok", 4, 100, ""},
		{"min", 1, 1, ""},
		{"zero ranks", 0, 100, "-ranks"},
		{"negative ranks", -3, 100, "-ranks"},
		{"zero iters", 4, 0, "-iters"},
		{"negative iters", 4, -7, "-iters"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateShape(tc.ranks, tc.iters)
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("validateShape(%d, %d) = %v, want nil", tc.ranks, tc.iters, err)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateShape(%d, %d) accepted an impossible shape", tc.ranks, tc.iters)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Errorf("error %q does not name the offending flag %s", err, tc.wantErr)
			}
		})
	}
}
