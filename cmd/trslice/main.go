// Command trslice extracts a time window from a trace (e.g. the steady
// state after initialization), writing a new re-based trace.
//
// Usage:
//
//	trslice -in app.uvt -from 2.5s -to 10s -o steady.uvt
//	tracegen -app stencil -o - | trslice -stream -from 2.5s -to 10s -o steady.uvt
//
// Windows accept "s", "ms", "us"/"µs" and "ns" suffixes (bare numbers are
// seconds).
//
// With -stream the input is decoded record by record as it is read —
// from stdin when -in is empty or "-" — so tracegen output pipes
// straight in; the written slice is byte-identical to the batch path's.
// -lenient salvages damaged inputs: undecodable records are skipped,
// validation failures are tolerated with a warning, and the salvage
// tally is printed instead of aborting on the first fault.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "input trace file (required unless -stream, which defaults to stdin)")
		from    = flag.String("from", "0", "window start (e.g. 2.5s, 300ms)")
		to      = flag.String("to", "", "window end (default: trace end)")
		out     = flag.String("o", "", "output trace file (required)")
		stream  = flag.Bool("stream", false, "decode the trace record-by-record as it is read (stdin when -in is empty or \"-\")")
		lenient = flag.Bool("lenient", false, "salvage damaged traces: skip undecodable records, tolerate validation failures, and report the salvage tally instead of aborting")
	)
	flag.Parse()
	if *out == "" {
		fatal(fmt.Errorf("missing -o"))
	}
	if *in == "" && !*stream {
		fatal(fmt.Errorf("missing -in (or use -stream to read stdin)"))
	}

	tr, stats, err := readInput(*in, *stream, *lenient)
	if err != nil {
		fatal(err)
	}
	if *lenient && stats.Degraded() {
		fmt.Fprintf(os.Stderr, "trslice: salvaged a damaged trace: %d records dropped, truncated=%v, bad sections=%d\n",
			stats.Dropped(), stats.Truncated, stats.BadSections)
	}
	f, err := parseTime(*from)
	if err != nil {
		fatal(fmt.Errorf("bad -from: %w", err))
	}
	t := tr.Meta.Duration
	if *to != "" {
		t, err = parseTime(*to)
		if err != nil {
			fatal(fmt.Errorf("bad -to: %w", err))
		}
	}
	sl := tr.Slice(f, t)
	if err := sl.Validate(); err != nil {
		if !*lenient {
			fatal(fmt.Errorf("sliced trace invalid: %w", err))
		}
		fmt.Fprintf(os.Stderr, "trslice: sliced trace failed validation (%v); writing anyway\n", err)
	}
	if err := sl.WriteFile(*out); err != nil {
		fatal(err)
	}
	st := sl.Stats()
	fmt.Printf("wrote %s: window [%s, %s) → %.3f s, %d events, %d samples, %d comms\n",
		*out, *from, *to, float64(st.Duration)/1e9, st.Events, st.Samples, st.Comms)
}

// readInput materializes the input trace: a whole-file read on the batch
// path, a record-by-record collect over the streaming decoder with
// -stream. Both paths produce the same Trace, so the written slice is
// byte-identical either way; only the salvage stats source differs.
func readInput(path string, stream, lenient bool) (*trace.Trace, trace.DecodeStats, error) {
	if !stream {
		if lenient {
			return trace.ReadFileLenient(path)
		}
		tr, err := trace.ReadFile(path)
		return tr, trace.DecodeStats{}, err
	}
	r, closeIn, err := openInput(path)
	if err != nil {
		return nil, trace.DecodeStats{}, err
	}
	defer closeIn()
	mode := trace.Strict
	if lenient {
		mode = trace.Lenient
	}
	sr, err := trace.NewStreamReaderMode(r, mode)
	if err != nil {
		return nil, trace.DecodeStats{}, err
	}
	tr, err := collect(sr)
	return tr, sr.Stats(), err
}

// collect drains a record stream into an in-memory Trace, copying the
// reused sample-stack storage.
func collect(sr *trace.StreamReader) (*trace.Trace, error) {
	tr := &trace.Trace{Meta: *sr.Meta()}
	var rec trace.Record
	for {
		err := sr.Next(&rec)
		if err == io.EOF {
			return tr, nil
		}
		if err != nil {
			return nil, err
		}
		switch rec.Kind {
		case trace.KindEvent:
			tr.Events = append(tr.Events, rec.Event)
		case trace.KindSample:
			s := rec.Sample
			s.Stack = append([]uint32(nil), rec.Sample.Stack...)
			tr.Samples = append(tr.Samples, s)
		case trace.KindComm:
			tr.Comms = append(tr.Comms, rec.Comm)
		}
	}
}

// openInput resolves the streaming input: stdin when path is empty or
// "-", the named file otherwise.
func openInput(path string) (io.Reader, func(), error) {
	if path == "" || path == "-" {
		return os.Stdin, func() {}, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	return f, func() { f.Close() }, nil
}

// parseTime converts a human time string to virtual nanoseconds.
func parseTime(s string) (trace.Time, error) {
	mult := 1e9 // bare numbers are seconds
	switch {
	case strings.HasSuffix(s, "ns"):
		s, mult = strings.TrimSuffix(s, "ns"), 1
	case strings.HasSuffix(s, "us"):
		s, mult = strings.TrimSuffix(s, "us"), 1e3
	case strings.HasSuffix(s, "µs"):
		s, mult = strings.TrimSuffix(s, "µs"), 1e3
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), 1e6
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), 1e9
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative time %q", s)
	}
	return trace.Time(v * mult), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trslice:", err)
	os.Exit(1)
}
