// Command trslice extracts a time window from a trace (e.g. the steady
// state after initialization), writing a new re-based trace.
//
// Usage:
//
//	trslice -in app.uvt -from 2.5s -to 10s -o steady.uvt
//
// Windows accept "s", "ms", "us"/"µs" and "ns" suffixes (bare numbers are
// seconds).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/trace"
)

func main() {
	var (
		in   = flag.String("in", "", "input trace file (required)")
		from = flag.String("from", "0", "window start (e.g. 2.5s, 300ms)")
		to   = flag.String("to", "", "window end (default: trace end)")
		out  = flag.String("o", "", "output trace file (required)")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		fatal(fmt.Errorf("missing -in or -o"))
	}
	tr, err := trace.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	f, err := parseTime(*from)
	if err != nil {
		fatal(fmt.Errorf("bad -from: %w", err))
	}
	t := tr.Meta.Duration
	if *to != "" {
		t, err = parseTime(*to)
		if err != nil {
			fatal(fmt.Errorf("bad -to: %w", err))
		}
	}
	sl := tr.Slice(f, t)
	if err := sl.Validate(); err != nil {
		fatal(fmt.Errorf("sliced trace invalid: %w", err))
	}
	if err := sl.WriteFile(*out); err != nil {
		fatal(err)
	}
	st := sl.Stats()
	fmt.Printf("wrote %s: window [%s, %s) → %.3f s, %d events, %d samples, %d comms\n",
		*out, *from, *to, float64(st.Duration)/1e9, st.Events, st.Samples, st.Comms)
}

// parseTime converts a human time string to virtual nanoseconds.
func parseTime(s string) (trace.Time, error) {
	mult := 1e9 // bare numbers are seconds
	switch {
	case strings.HasSuffix(s, "ns"):
		s, mult = strings.TrimSuffix(s, "ns"), 1
	case strings.HasSuffix(s, "us"):
		s, mult = strings.TrimSuffix(s, "us"), 1e3
	case strings.HasSuffix(s, "µs"):
		s, mult = strings.TrimSuffix(s, "µs"), 1e3
	case strings.HasSuffix(s, "ms"):
		s, mult = strings.TrimSuffix(s, "ms"), 1e6
	case strings.HasSuffix(s, "s"):
		s, mult = strings.TrimSuffix(s, "s"), 1e9
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, err
	}
	if v < 0 {
		return 0, fmt.Errorf("negative time %q", s)
	}
	return trace.Time(v * mult), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trslice:", err)
	os.Exit(1)
}
