package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// TestStreamMatchesBatch locks the -stream flag's contract: slicing a
// trace decoded record-by-record writes the exact bytes the whole-file
// batch path writes.
func TestStreamMatchesBatch(t *testing.T) {
	app, err := apps.ByName("stencil", 30)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(3), app)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.uvt")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}

	batch, _, err := readInput(path, false, false)
	if err != nil {
		t.Fatal(err)
	}
	streamed, stats, err := readInput(path, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded() {
		t.Fatalf("clean input reported salvage: %+v", stats)
	}

	from, to := tr.Meta.Duration/4, tr.Meta.Duration*3/4
	var bb, sb bytes.Buffer
	if err := batch.Slice(from, to).Write(&bb); err != nil {
		t.Fatal(err)
	}
	if err := streamed.Slice(from, to).Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bb.Bytes(), sb.Bytes()) {
		t.Fatalf("stream path wrote %d bytes differing from the batch path's %d",
			sb.Len(), bb.Len())
	}
}

// TestStreamLenientSalvages checks that -stream -lenient survives a
// truncated input and reports the damage.
func TestStreamLenientSalvages(t *testing.T) {
	app, err := apps.ByName("stencil", 30)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(2), app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cut.uvt")
	if err := os.WriteFile(path, buf.Bytes()[:buf.Len()*3/5], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, _, err := readInput(path, true, false); err == nil {
		t.Fatal("strict stream decoded a truncated trace")
	}
	got, stats, err := readInput(path, true, true)
	if err != nil {
		t.Fatalf("lenient stream failed: %v", err)
	}
	if !stats.Truncated {
		t.Errorf("truncation unreported: %+v", stats)
	}
	kept := len(got.Events) + len(got.Samples) + len(got.Comms)
	total := len(tr.Events) + len(tr.Samples) + len(tr.Comms)
	if kept == 0 || kept >= total {
		t.Errorf("salvaged %d of %d records, want a proper prefix", kept, total)
	}
	if got.Meta.App != tr.Meta.App {
		t.Errorf("metadata lost in salvage: %q", got.Meta.App)
	}
	var sink bytes.Buffer
	if err := got.Slice(0, got.Meta.Duration).Write(&sink); err != nil {
		t.Errorf("salvaged slice does not encode: %v", err)
	}
}
