// Command trstats prints a trace's flat profile and detected temporal
// structure — the quick first look an analyst takes before folding.
//
// Usage:
//
//	trstats -in stencil.uvt
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/profile"
	"repro/internal/structure"
	"repro/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "", "input trace file (required)")
		minDur = flag.Float64("min-duration", 50, "burst duration filter in µs")
	)
	flag.Parse()
	if *in == "" {
		fatal(fmt.Errorf("missing -in"))
	}
	tr, err := trace.ReadFile(*in)
	if err != nil {
		fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("%s: %d ranks, %.3f s, %d events, %d samples, %d comms\n\n",
		tr.Meta.App, tr.Meta.Ranks, float64(st.Duration)/1e9, st.Events, st.Samples, st.Comms)

	p, err := profile.Compute(tr)
	if err != nil {
		fatal(err)
	}
	fmt.Print(p.Format())

	its := structure.Iterations(tr)
	if its.Count > 0 {
		agree := ""
		if !its.RanksAgree {
			agree = " (ranks disagree!)"
		}
		fmt.Printf("\niterations: %d%s, mean %.3f ms, CV %.1f%%\n",
			its.Count, agree, its.MeanDuration/1e6, 100*its.CV)
	}

	all, err := burst.Extract(tr)
	if err != nil {
		fatal(err)
	}
	kept, _ := burst.Filter{MinDuration: trace.Time(*minDur * 1e3)}.Apply(all)
	if len(kept) == 0 {
		fmt.Println("\nno bursts after filtering — nothing to structure")
		return
	}
	res := cluster.ClusterBursts(kept, cluster.Config{UseIPC: true})
	fmt.Printf("\n%d bursts in %d phases; repetition structure:\n", len(kept), res.K)
	for _, l := range structure.DetectLoops(structure.Sequences(kept)) {
		fmt.Println("  " + l.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trstats:", err)
	os.Exit(1)
}
