// Command trstats prints a trace's flat profile and detected temporal
// structure — the quick first look an analyst takes before folding.
//
// With -stream the trace is consumed record by record through the
// streaming pipeline (stdin when -in is empty), never materializing it:
// tracegen -o - | trstats -stream.
//
// Usage:
//
//	trstats -in stencil.uvt [-lenient]
//	trstats -stream [-in stencil.uvt] [-lenient]
//
// -lenient salvages damaged traces: undecodable records are skipped
// and the dropped-record summary is printed, instead of aborting.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/structure"
	"repro/internal/trace"
)

func main() {
	var (
		in      = flag.String("in", "", "input trace file (required unless -stream, which defaults to stdin)")
		minDur  = flag.Float64("min-duration", 50, "burst duration filter in µs")
		stream  = flag.Bool("stream", false, "consume the trace record-by-record (stdin when -in is empty or \"-\")")
		lenient = flag.Bool("lenient", false, "salvage damaged traces: skip undecodable records and report what was dropped instead of aborting")
	)
	flag.Parse()
	if *stream {
		streamStats(*in, *minDur, *lenient)
		return
	}
	if *in == "" {
		fatal(fmt.Errorf("missing -in"))
	}
	var tr *trace.Trace
	var err error
	if *lenient {
		var st trace.DecodeStats
		tr, st, err = trace.ReadFileLenient(*in)
		if err == nil {
			printSalvage(st)
		}
	} else {
		tr, err = trace.ReadFile(*in)
	}
	if err != nil {
		fatal(err)
	}
	st := tr.Stats()
	fmt.Printf("%s: %d ranks, %.3f s, %d events, %d samples, %d comms\n\n",
		tr.Meta.App, tr.Meta.Ranks, float64(st.Duration)/1e9, st.Events, st.Samples, st.Comms)

	p, err := profile.Compute(tr)
	if err != nil {
		fatal(err)
	}
	fmt.Print(p.Format())

	printIterations(structure.Iterations(tr))

	all, err := burst.Extract(tr)
	if err != nil {
		fatal(err)
	}
	kept, _ := burst.Filter{MinDuration: trace.Time(*minDur * 1e3)}.Apply(all)
	printStructure(kept, cluster.ClusterBursts(kept, cluster.Config{UseIPC: true}).K, nil)
}

// streamStats produces the same first look from a record stream via the
// analysis pipeline, skipping sample attachment (this tool never needs
// the samples).
func streamStats(in string, minDur float64, lenient bool) {
	r := io.Reader(os.Stdin)
	if in != "" && in != "-" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		r = f
	}
	mode := trace.Strict
	if lenient {
		mode = trace.Lenient
	}
	sr, err := trace.NewStreamReaderMode(r, mode)
	if err != nil {
		fatal(err)
	}
	out, err := pipeline.Run(sr, pipeline.Config{
		MinBurstDuration: trace.Time(minDur * 1e3),
		Cluster:          cluster.Config{UseIPC: true},
		NoSamples:        true,
		Lenient:          lenient,
	})
	if err != nil {
		fatal(err)
	}
	if out.Decode != nil {
		printSalvage(*out.Decode)
	}
	fmt.Printf("%s: %d ranks, %.3f s, %d events, %d samples, %d comms\n\n",
		out.Meta.App, out.Meta.Ranks, float64(out.Meta.Duration)/1e9,
		out.Records.Events, out.Records.Samples, out.Records.Comms)
	switch {
	case out.Profile != nil:
		fmt.Print(out.Profile.Format())
	case lenient:
		// A salvaged trace often cannot profile (e.g. a rank truncated
		// mid-MPI); degrade instead of aborting — the structural stats
		// below still stand.
		fmt.Printf("  ! flat profile unavailable: %s\n", out.ProfileErr)
	default:
		fatal(fmt.Errorf("%s", out.ProfileErr))
	}
	printIterations(out.Iterations)
	printStructure(out.Kept, out.Clustering.K, out.Loops)
}

// printSalvage reports what a lenient decode had to drop.
func printSalvage(st trace.DecodeStats) {
	if !st.Degraded() {
		return
	}
	fmt.Println("DEGRADED trace — salvage decoding made concessions:")
	for _, w := range st.Warnings() {
		fmt.Println("  !", w)
	}
	fmt.Println()
}

func printIterations(its structure.IterationStats) {
	if its.Count > 0 {
		agree := ""
		if !its.RanksAgree {
			agree = " (ranks disagree!)"
		}
		fmt.Printf("\niterations: %d%s, mean %.3f ms, CV %.1f%%\n",
			its.Count, agree, its.MeanDuration/1e6, 100*its.CV)
	}
}

// printStructure prints the phase count and repetition structure; loops
// may be precomputed (streaming) or derived here from the kept bursts.
func printStructure(kept []burst.Burst, k int, loops []structure.Loop) {
	if len(kept) == 0 {
		fmt.Println("\nno bursts after filtering — nothing to structure")
		return
	}
	if loops == nil {
		loops = structure.DetectLoops(structure.Sequences(kept))
	}
	fmt.Printf("\n%d bursts in %d phases; repetition structure:\n", len(kept), k)
	for _, l := range loops {
		fmt.Println("  " + l.String())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "trstats:", err)
	os.Exit(1)
}
