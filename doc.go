// Package repro reproduces "Unveiling Internal Evolution of Parallel
// Application Computation Phases" (Servat, Llort, Giménez, Huck, Labarta;
// ICPP 2011): an automated trace-analysis methodology that combines
// computation-burst clustering (structure detection) with *folding* —
// projecting coarse-grain samples from many instances of a repetitive
// phase into one synthetic instance to reconstruct the phase's fine-grain
// internal evolution without fine-grain overhead.
//
// The repository layout:
//
//	internal/trace      trace data model, binary I/O, validation
//	internal/paraver    Paraver-style .prv/.pcf text encoding
//	internal/counters   synthetic PAPI counters and evolution shapes
//	internal/kernels    computation-kernel models (ground truth)
//	internal/sim        deterministic message-passing simulator
//	internal/burst      computation-burst extraction
//	internal/cluster    DBSCAN burst clustering (+ k-means baseline)
//	internal/parallel   bounded fan-out, chunked reduce, buffer pool
//	internal/fit        PAVA, monotone cubic Hermite, kernel smoothing
//	internal/folding    the paper's core contribution
//	internal/profile    flat profiles (compute/MPI split, load balance)
//	internal/structure  loop detection, SPMD score, iteration stats
//	internal/spectral   marker-free period detection
//	internal/online     streaming classifier + incremental folder
//	internal/core       the analysis pipeline (Analyze, parallel by
//	                    default with a byte-identical-output guarantee;
//	                    Options.Parallelism bounds the workers)
//	internal/apps       the evaluation applications (+ wavefront)
//	internal/experiments every table/figure of the evaluation
//	cmd/...             tracegen, trstats, trslice, burstcluster, fold, report
//	examples/...        runnable walkthroughs
//
// See README.md for usage, DESIGN.md for the system inventory and
// EXPERIMENTS.md for the paper-vs-measured record.
package repro
