// CG walkthrough: counter-rate drift (cache warm-up) inside a phase.
//
// The conjugate-gradient solver's SpMV kernel misses the L2 cache heavily
// while its working set streams in, then settles. An aggregate profile
// reports one average miss rate and hides the transient. This example
// folds the SpMV phase's L2 misses from coarse sampling, shows the
// reconstructed miss-rate ramp, compares a coarse-sampling fold against a
// fine-grain reference fold (the paper's comparison), and demonstrates
// reading a trace back from disk — the workflow a tool user follows.
//
// Run with:
//
//	go run ./examples/cg
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	const ranks, iters = 16, 200

	// Generate the coarse trace, write it to disk and read it back — the
	// persistent-trace workflow.
	dir, err := os.MkdirTemp("", "cg-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "cg.uvt")

	app := apps.NewCG(iters)
	tr0, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		log.Fatal(err)
	}
	if err := tr0.WriteFile(path); err != nil {
		log.Fatal(err)
	}
	tr, err := trace.ReadFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace round-tripped through %s (%d samples)\n\n", path, len(tr.Samples))

	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	spmv := findPhase(rep, 5 /* spmv oracle id */)
	if spmv == nil {
		log.Fatal("spmv phase not found")
	}
	f := spmv.Folds[counters.L2DCM]
	if f == nil {
		log.Fatalf("L2 fold: %v", spmv.FoldErrors)
	}

	fmt.Print(report.ASCIIPlot("L2 miss rate per µs inside SpMV (folded from 20 ms sampling)",
		f.Grid, scale(f.Rate, 1e3), 72, 12))
	fmt.Printf("\n%.0f%% of L2 misses happen in the first 20%% of the phase\n",
		100*f.Cumulative[len(f.Cumulative)/5])

	// The paper's comparison: coarse-sampling folding vs a fine-grain
	// sampling reference of the same run.
	trFine, err := sim.Run(apps.FineTraceConfig(ranks), apps.NewCG(iters))
	if err != nil {
		log.Fatal(err)
	}
	repFine, err := core.Analyze(trFine, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	spmvFine := findPhase(repFine, 5)
	if spmvFine == nil {
		log.Fatal("fine spmv phase not found")
	}
	ff := spmvFine.Folds[counters.L2DCM]
	d := folding.MeanAbsDiffResults(f, ff)
	fmt.Printf("coarse fold vs fine-grain reference: %.2f%% absolute mean difference (claim: < 5%%)\n",
		100*d)

	truth := app.Kernels()[0].ShapeOf(counters.L2DCM)
	fmt.Printf("coarse fold vs analytic ground truth: %.2f%%\n\n", 100*f.MeanAbsDiff(truth))

	fmt.Println("advice:")
	for _, a := range spmv.Advice {
		fmt.Println("  •", a)
	}
}

func findPhase(rep *core.Report, oracle int64) *core.Phase {
	var best *core.Phase
	for i := range rep.Phases {
		ph := &rep.Phases[i]
		if ph.MajorityOracle == oracle && (best == nil || ph.Instances > best.Instances) {
			best = ph
		}
	}
	return best
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}
