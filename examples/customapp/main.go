// Customapp: defining your own workload against the public API.
//
// The three built-in applications cover the evaluation, but the library
// is meant to be used on *your* code: implement sim.App — declare kernel
// models (durations, counter totals, internal evolution shapes, imbalance)
// and drive the Rank API — and the whole pipeline (trace, clustering,
// folding, advice) works unchanged. This example builds a two-phase
// "ocean model" with a seasonal workload cycle and a master-worker I/O
// phase every 10th step, then shows the analysis catching all of it.
//
// Run with:
//
//	go run ./examples/customapp
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/sim"
)

// ocean is a toy ocean-circulation model: barotropic + baroclinic solves
// each step, and a serialized I/O gather every 10th step.
type ocean struct {
	iters      int
	barotropic *kernels.Kernel
	baroclinic *kernels.Kernel
	ioPack     *kernels.Kernel
}

func newOcean(iters int) *ocean {
	barotropic := &kernels.Kernel{
		Name:         "barotropic_solve",
		ID:           1,
		MeanDuration: 3_000_000,
		NoiseCV:      0.03,
	}
	barotropic.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 24_000_000,
		// 2-D solver: a smooth acceleration as the residual shrinks.
		Shape: counters.ExpDecay(-0.6, 0.4),
	}
	barotropic.Counters[counters.L1DCM] = kernels.CounterSpec{
		Total: 700_000,
		Shape: counters.ExpDecay(2, 0.25),
	}

	baroclinic := &kernels.Kernel{
		Name:         "baroclinic_levels",
		ID:           2,
		MeanDuration: 6_000_000,
		NoiseCV:      0.04,
		// Deeper columns near the equator: linear rank ramp.
		Imbalance: kernels.Linear(0.25),
	}
	baroclinic.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 55_000_000,
		Shape: counters.Piecewise(
			counters.Segment{Width: 0.7, Area: 0.8}, // level sweep
			counters.Segment{Width: 0.3, Area: 0.2}, // vertical mixing
		),
	}
	baroclinic.Counters[counters.L1DCM] = kernels.CounterSpec{Total: 1_500_000}
	baroclinic.Regions = []kernels.RegionSpan{
		{UpTo: 0.7, Name: "level_sweep"},
		{UpTo: 1.0, Name: "vertical_mixing"},
	}

	ioPack := &kernels.Kernel{
		Name:         "io_pack",
		ID:           3,
		MeanDuration: 1_000_000,
		NoiseCV:      0.05,
	}
	ioPack.Counters[counters.TotIns] = kernels.CounterSpec{Total: 2_000_000}

	return &ocean{iters: iters, barotropic: barotropic, baroclinic: baroclinic, ioPack: ioPack}
}

func (o *ocean) Name() string { return "ocean" }
func (o *ocean) Kernels() []*kernels.Kernel {
	return []*kernels.Kernel{o.barotropic, o.baroclinic, o.ioPack}
}

func (o *ocean) Run(r *sim.Rank) {
	for it := 0; it < o.iters; it++ {
		r.Iteration(it + 1)
		r.Compute(o.barotropic)
		r.Allreduce(8)
		r.Compute(o.baroclinic)
		next := (r.Rank() + 1) % r.Ranks()
		prev := (r.Rank() + r.Ranks() - 1) % r.Ranks()
		r.Sendrecv(next, 32<<10, prev, 11, 11)
		if it%10 == 9 {
			// Every 10th step: gather to rank 0 for output.
			r.Compute(o.ioPack)
			if r.Rank() == 0 {
				for src := 1; src < r.Ranks(); src++ {
					r.Recv(src, 99)
				}
			} else {
				r.Send(0, 256<<10, 99)
			}
			r.Barrier()
		}
	}
}

func main() {
	app := newOcean(120)
	cfg := sim.DefaultConfig(8)
	tr, err := sim.Run(cfg, app)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("detected %d phases (SPMD score shown per structure below)\n", rep.Clustering.K)
	for _, ph := range rep.Phases {
		fmt.Printf("\nphase %d: %d instances, mean %.2f ms, imbalance %.2f\n",
			ph.ClusterID, ph.Instances, ph.MeanDuration/1e6, ph.ImbalanceFactor)
		if f := ph.Folds[counters.TotIns]; f != nil {
			fmt.Print(report.ASCIIPlot("  instruction rate (per µs)",
				f.Grid, scale(f.Rate, 1e3), 60, 8))
		}
		for _, a := range ph.Advice {
			fmt.Println("  •", a)
		}
	}

	// The master-worker I/O episode makes rank 0 structurally different
	// from the workers (its gather produces extra bursts), dropping the
	// SPMD score well below 1. The loop detector still recovers the
	// dominant [baroclinic, barotropic] body; the I/O episodes show up as
	// the match fraction staying below 100%.
	fmt.Printf("\nSPMD score: %.3f (rank 0 diverges at I/O steps)\n", rep.SPMDScore)
	for _, l := range rep.Loops {
		if l.Rank <= 1 {
			fmt.Println("structure:", l)
		}
	}
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}
