// NBody walkthrough: load imbalance inside one cluster.
//
// The n-body force computation is one cluster — every rank executes the
// same code — yet ranks near the middle of the domain decomposition carry
// up to 50% more particles. Aggregate profiles hide this: the cluster's
// mean looks fine. This example uses the per-rank statistics and per-rank
// folding of the forces phase to expose the imbalance and quantify the
// wasted wait time at the following reduction.
//
// Run with:
//
//	go run ./examples/nbody
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/sim"
)

func main() {
	const ranks, iters = 16, 150
	app := apps.NewNBody(iters)
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ph := rep.Phases[0] // forces
	fmt.Printf("forces phase: %d instances, imbalance factor %.2f\n\n", ph.Instances, ph.ImbalanceFactor)

	fmt.Println("mean instance duration per rank (ms):")
	var maxD float64
	for _, d := range ph.RankMeanDuration {
		if d > maxD {
			maxD = d
		}
	}
	for r, d := range ph.RankMeanDuration {
		bar := int(d / maxD * 50)
		fmt.Printf("  rank %2d  %6.2f  |%s\n", r, d/1e6, strings.Repeat("#", bar))
	}

	// Wait-time estimate: at each Allreduce every rank waits for the
	// slowest; the wasted time is (max - own) summed over instances.
	var wasted, total float64
	for _, d := range ph.RankMeanDuration {
		wasted += (maxD - d) * float64(iters)
		total += d * float64(iters)
	}
	fmt.Printf("\nestimated wait time at the reduction: %.2f s (%.1f%% of forces compute)\n",
		wasted/1e9, 100*wasted/total)

	// Per-rank folding: the internal evolution is the same shape on every
	// rank — the imbalance is in volume, not in structure. Fold the
	// slowest and fastest ranks separately to show it.
	fmt.Println("\nper-rank folding (internal shape comparison):")
	slow, fast := extremeRanks(ph)
	for _, r := range []int32{fast, slow} {
		var subset []folding.Instance
		for _, in := range ph.FoldInstances {
			if in.Rank == r {
				subset = append(subset, in)
			}
		}
		res, err := folding.Fold(subset, folding.Config{Counter: counters.TotIns})
		if err != nil {
			fmt.Printf("  rank %d: %v\n", r, err)
			continue
		}
		fmt.Printf("  rank %2d: mean %.2f ms, %.0f MIPS mean rate, front-half share %.1f%%\n",
			r, res.MeanDuration/1e6, res.MeanTotal/res.MeanDuration*1e3,
			100*res.Cumulative[len(res.Cumulative)/2])
	}
	fmt.Println("  → same internal shape, different volume: repartition, don't restructure")

	fmt.Println("\nadvice:")
	for _, a := range ph.Advice {
		fmt.Println("  •", a)
	}
}

func extremeRanks(ph core.Phase) (slow, fast int32) {
	var maxD, minD float64
	first := true
	for r, d := range ph.RankMeanDuration {
		if d == 0 {
			continue
		}
		if first || d > maxD {
			maxD = d
			slow = int32(r)
		}
		if first || d < minD {
			minD = d
			fast = int32(r)
		}
		first = false
	}
	return slow, fast
}
