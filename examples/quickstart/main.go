// Quickstart: the five-minute tour of the library.
//
// It simulates a small iterative application with coarse (20 ms) sampling,
// runs the automated analysis pipeline — burst clustering to detect the
// application's structure, folding to reconstruct the internal evolution
// of each phase — and prints what was unveiled.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	// 1. Get a trace. Normally this comes from a measurement tool; here we
	//    simulate a 100-iteration stencil solver on 8 ranks, sampled every
	//    20 ms — far too coarse to see inside any single 5 ms kernel
	//    instance.
	app := apps.NewStencil(100)
	cfg := apps.DefaultTraceConfig(8)
	tr, err := sim.Run(cfg, app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trace: %.2f s of virtual execution, %d samples total (%.1f per rank)\n",
		float64(tr.Meta.Duration)/1e9, len(tr.Samples),
		float64(len(tr.Samples))/float64(tr.Meta.Ranks))

	// 2. Analyze: clustering detects the phases, folding reconstructs
	//    their internals from the pooled coarse samples.
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("detected %d computation phases covering %.1f%% of compute time\n\n",
		rep.Clustering.K, 100*rep.ClusterTimeCoverage)

	// 3. Inspect the dominant phase.
	ph := rep.Phases[0]
	fmt.Printf("phase 1: %d instances, mean %.2f ms, IPC %.2f\n",
		ph.Instances, ph.MeanDuration/1e6, ph.MeanIPC)

	f := ph.Folds[counters.TotIns]
	if f == nil {
		log.Fatalf("folding failed: %v", ph.FoldErrors)
	}
	fmt.Printf("folded %d samples from %d instances into one synthetic instance\n",
		len(f.Points), f.Instances)
	fmt.Print(report.ASCIIPlot("instruction rate inside the phase (MIPS)",
		f.Grid, scale(f.Rate, 1e3), 72, 12))
	if len(f.Breakpoints) > 0 {
		fmt.Printf("sub-phase boundaries detected at normalized time %v\n", f.Breakpoints)
	}

	// 4. The methodology's output: automated advice.
	fmt.Println("\nadvice:")
	for _, a := range ph.Advice {
		fmt.Println("  •", a)
	}
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}
