// Service walkthrough: drive a foldsvc daemon end to end from Go.
//
// It starts the analysis service in-process (the same *server the
// `foldsvc` binary runs), generates a trace with the simulator, uploads
// it over HTTP exactly as a remote client would, and prints the phases
// the service unveiled plus a few of its own metrics. No ports are
// hard-coded and nothing is left running, so it works anywhere:
//
//	go run ./examples/service
//
// To talk to a real daemon instead, start one and use curl — see
// examples/service/README.md for the command-by-command version.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"repro/internal/apps"
	"repro/internal/foldsvc"
	"repro/internal/sim"
)

func main() {
	// 1. A service to talk to. The foldsvc binary serves the same
	//    handler on a real port; here an httptest server keeps the
	//    example self-contained.
	svc := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{}))
	defer svc.Close()
	fmt.Println("service listening at", svc.URL)

	// 2. A trace to analyze. Normally this is a file a measurement tool
	//    wrote; here the simulator produces one in memory.
	app, err := apps.ByName("stencil", 150)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(8), app)
	if err != nil {
		log.Fatal(err)
	}
	var trace bytes.Buffer
	if err := tr.Write(&trace); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated trace: %d bytes\n", trace.Len())

	// 3. POST it. Query parameters are the analysis knobs — this run
	//    restricts folding to the instruction counter and caps phases.
	resp, err := http.Post(
		svc.URL+"/v1/analyze?counter=PAPI_TOT_INS&phases=3", // nolint: bodyclose
		"application/octet-stream", &trace)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		log.Fatalf("analyze: %s: %s", resp.Status, body)
	}

	// 4. The response is the JSON core.Report. Decode just what this
	//    walkthrough prints; a real client would decode into
	//    core.Report directly.
	var rep struct {
		App    string
		Ranks  int
		Bursts int
		Phases []struct {
			Instances int
			MeanIPC   float64
		}
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %s on %d ranks: %d bursts, %d phases\n",
		rep.App, rep.Ranks, rep.Bursts, len(rep.Phases))
	for i, ph := range rep.Phases {
		fmt.Printf("  phase %d: %d instances, mean IPC %.2f\n",
			i+1, ph.Instances, ph.MeanIPC)
	}

	// 5. The daemon watched itself do it. Scrape a few of its metrics.
	mresp, err := http.Get(svc.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer mresp.Body.Close()
	metrics, err := io.ReadAll(mresp.Body)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("service metrics after one request:")
	for _, line := range strings.Split(string(metrics), "\n") {
		if strings.HasPrefix(line, "foldsvc_analyze_") ||
			strings.HasPrefix(line, "foldsvc_requests_total") {
			fmt.Println("  " + line)
		}
	}
}
