// Stencil walkthrough: unveiling sub-phases hidden inside one burst.
//
// The stencil app's main computation — a 5 ms Jacobi sweep — looks like a
// single opaque burst to instrumentation-only tools: MPI probes bracket
// it, but nothing inside is monitored. This example shows the full
// methodology recovering its three internal sub-phases (dense update,
// memory-bound boundary fix-up, residual computation) from 20 ms sampling,
// then validates the reconstruction against the simulator's analytic
// ground truth, reproducing the paper's < 5% headline on this app.
//
// Run with:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	const ranks, iters = 16, 200
	app := apps.NewStencil(iters)

	fmt.Println("=== generating trace (coarse 20 ms sampling) ===")
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f s virtual time, %d samples (%.1f per rank)\n\n",
		float64(tr.Meta.Duration)/1e9, len(tr.Samples), float64(len(tr.Samples))/float64(ranks))

	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ph := rep.Phases[0]
	fmt.Printf("dominant phase: %d instances of mean %.2f ms\n", ph.Instances, ph.MeanDuration/1e6)
	fmt.Printf("a single instance contains %.2f samples on average — folding pools %d\n\n",
		avgSamples(ph), totalSamples(ph))

	// Folded views of instructions and L1 misses.
	for _, c := range []counters.Counter{counters.TotIns, counters.L1DCM} {
		f := ph.Folds[c]
		if f == nil {
			log.Fatalf("%s: %v", c, ph.FoldErrors[c])
		}
		fmt.Print(report.ASCIIPlot(
			fmt.Sprintf("%s rate per µs inside the sweep", c),
			f.Grid, scale(f.Rate, 1e3), 72, 10))
		fmt.Println()
	}

	// Validate against the analytic ground truth (the advantage of a
	// simulated substrate: the paper could only compare against very fine
	// sampling).
	truth := app.Kernels()[0] // jacobi_sweep
	fmt.Println("=== validation vs analytic ground truth ===")
	for _, c := range []counters.Counter{counters.TotIns, counters.FPOps, counters.L1DCM, counters.L2DCM} {
		f := ph.Folds[c]
		if f == nil {
			continue
		}
		d := f.MeanAbsDiff(truth.ShapeOf(c))
		marker := "✓"
		if d >= 0.05 {
			marker = "✗"
		}
		fmt.Printf("  %-14s absolute mean difference %.2f%%  %s (< 5%% claim)\n", c, 100*d, marker)
	}

	fmt.Println("\n=== what the analyst is told ===")
	for _, a := range ph.Advice {
		fmt.Println("  •", a)
	}
}

func avgSamples(ph core.Phase) float64 {
	n := 0
	for _, in := range ph.FoldInstances {
		n += len(in.Samples)
	}
	if len(ph.FoldInstances) == 0 {
		return 0
	}
	return float64(n) / float64(len(ph.FoldInstances))
}

func totalSamples(ph core.Phase) int {
	n := 0
	for _, in := range ph.FoldInstances {
		n += len(in.Samples)
	}
	return n
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}
