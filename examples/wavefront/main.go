// Wavefront walkthrough: folding a pipelined (non-collective) code, and a
// non-monotone internal rate.
//
// The wavefront solver pipelines blocking sends/receives down a rank
// chain, so phase instances start at staggered times on every rank — the
// sampling clock decorrelates from phase starts "for free", which is
// exactly the property folding exploits. The block kernel's instruction
// rate oscillates (two diagonal passes), a shape that aggregate counters
// flatten completely; the folded derivative recovers both humps.
//
// Run with:
//
//	go run ./examples/wavefront
package main

import (
	"fmt"
	"log"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/report"
	"repro/internal/sim"
)

func main() {
	const ranks, iters = 8, 150
	app := apps.NewWavefront(iters)
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("flat profile:\n%s\n", rep.Profile.Format())
	fmt.Println("repetition structure (verified before folding):")
	for _, l := range rep.Loops {
		fmt.Println("  " + l.String())
	}
	fmt.Printf("iterations: %d, mean %.2f ms (CV %.1f%%)\n\n",
		rep.Iterations.Count, rep.Iterations.MeanDuration/1e6, 100*rep.Iterations.CV)

	ph := rep.Phases[0] // the sweep blocks
	f := ph.Folds[counters.TotIns]
	if f == nil {
		log.Fatalf("fold failed: %v", ph.FoldErrors)
	}
	fmt.Printf("sweep-block phase: %d instances folded into %d points\n",
		f.Instances, len(f.Points))
	fmt.Print(report.ASCIIPlot("instruction rate (MIPS) — note the two diagonal passes",
		f.Grid, scale(f.Rate, 1e3), 72, 14))

	truth := app.Kernels()[0].ShapeOf(counters.TotIns)
	fmt.Printf("\nreconstruction vs ground truth: %.3f%% absolute mean difference\n",
		100*f.MeanAbsDiff(truth))

	// Pipeline stagger: the first block instance of each rank starts
	// later than its upstream neighbour's.
	first := map[int32]float64{}
	for _, in := range ph.FoldInstances {
		t := float64(in.Start) / 1e6
		if v, ok := first[in.Rank]; !ok || t < v {
			first[in.Rank] = t
		}
	}
	// The last rank's two blocks merge into one double-length burst (no
	// MPI between them), which clusters separately — it has no instances
	// in this phase, so print only the ranks that do.
	fmt.Printf("pipeline stagger (first block per rank, ms):")
	for r := int32(0); r < ranks; r++ {
		if t, ok := first[r]; ok {
			fmt.Printf(" %0.2f", t)
		} else {
			fmt.Printf(" —")
		}
	}
	fmt.Println()
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}
