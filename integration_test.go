package repro

// End-to-end integration test: the complete tool-user workflow across
// every subsystem — simulate, persist, reload, window, merge, profile,
// analyze, fold, and validate against ground truth — in one pass.

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/paraver"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/spectral"
	"repro/internal/structure"
	"repro/internal/trace"
)

func TestEndToEndWorkflow(t *testing.T) {
	const ranks, iters = 8, 120

	// 1. Measure: simulate the stencil under coarse sampling.
	app := apps.NewStencil(iters)
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Persist and reload through both formats.
	path := filepath.Join(t.TempDir(), "run.uvt")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	tr, err = trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var prv bytes.Buffer
	if err := paraver.Encode(&prv, tr); err != nil {
		t.Fatal(err)
	}
	if _, err := paraver.Decode(bytes.NewReader(prv.Bytes())); err != nil {
		t.Fatal(err)
	}

	// 3. Per-rank split + merge must reproduce the trace.
	merged, err := trace.Merge(tr.SplitByRank())
	if err != nil {
		t.Fatal(err)
	}
	if len(merged.Events) != len(tr.Events) || len(merged.Samples) != len(tr.Samples) {
		t.Fatal("split+merge lost records")
	}

	// 4. Window into the steady state (drop the first and last 10%).
	d := tr.Meta.Duration
	steady := tr.Slice(d/10, d-d/10)
	if err := steady.Validate(); err != nil {
		t.Fatal(err)
	}

	// 5. First look: flat profile and marker statistics.
	prof, err := profile.Compute(steady)
	if err != nil {
		t.Fatal(err)
	}
	if f := prof.MPIFraction(); f <= 0 || f >= 0.5 {
		t.Fatalf("MPI fraction = %g", f)
	}
	if its := structure.Iterations(steady); its.Count < iters*7/10 {
		t.Fatalf("steady-state iterations = %d", its.Count)
	}

	// 6. Marker-free period detection agrees with the iteration markers.
	bursts, err := burst.Extract(steady)
	if err != nil {
		t.Fatal(err)
	}
	period, _, err := spectral.DetectIterations(steady, bursts)
	if err != nil {
		t.Fatal(err)
	}
	markers := structure.Iterations(steady)
	if rel := (float64(period) - markers.MeanDuration) / markers.MeanDuration; rel > 0.1 || rel < -0.1 {
		t.Fatalf("spectral period off by %.1f%%", 100*rel)
	}

	// 7. Full analysis on the windowed trace.
	rep, err := core.Analyze(steady, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clustering.K < 2 {
		t.Fatalf("K = %d", rep.Clustering.K)
	}
	// Window cuts truncate each rank's sequence differently and a few
	// lognormal-tail bursts get demoted to noise, so even a perfectly
	// SPMD code lands slightly below 1 here.
	if rep.SPMDScore < 0.85 {
		t.Fatalf("SPMD score = %g", rep.SPMDScore)
	}
	ph := rep.Phases[0]
	f := ph.Folds[counters.TotIns]
	if f == nil {
		t.Fatalf("fold failed: %v", ph.FoldErrors)
	}

	// 8. The reconstruction matches the analytic ground truth within the
	// paper's headline bound — through the whole persist/slice pipeline.
	truth := app.Kernels()[0].ShapeOf(counters.TotIns)
	if diff := f.MeanAbsDiff(truth); diff > 0.05 {
		t.Fatalf("end-to-end fold diff = %.4f", diff)
	}
	if d := f.Diagnose(); d.SuspectAliasing {
		t.Fatalf("coverage diagnostics tripped: %+v", d)
	}
	if len(ph.Advice) == 0 {
		t.Fatal("no advice produced")
	}
}
