// Package apps defines the three synthetic-but-structured parallel
// applications the evaluation analyzes, standing in for the paper's three
// production codes (which are proprietary Fortran/C MPI applications we
// cannot run under a Go harness). Each app reproduces one behaviour class
// the folding methodology is designed to expose:
//
//   - Stencil: an iterative halo-exchange Jacobi solver whose main sweep
//     hides three sub-phases with different compute densities — folding
//     must recover the internal structure of a single opaque burst.
//   - NBody: a force computation with per-rank load imbalance plus a cheap
//     integration phase — per-rank folding exposes imbalance inside one
//     cluster.
//   - CG: a conjugate-gradient-style solver whose SpMV has a strong
//     cache-warm-up miss ramp — folding must recover a counter-rate drift
//     (L2 misses concentrated early in the phase).
package apps

import (
	"fmt"

	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// App extends sim.App with the iteration count used by the run loops.
type App interface {
	sim.App
	Iterations() int
}

// ByName returns the named application ("stencil", "nbody" or "cg").
func ByName(name string, iters int) (App, error) {
	switch name {
	case "stencil":
		return NewStencil(iters), nil
	case "nbody":
		return NewNBody(iters), nil
	case "cg":
		return NewCG(iters), nil
	case "wavefront":
		return NewWavefront(iters), nil
	}
	return nil, fmt.Errorf("apps: unknown application %q (want stencil, nbody, cg or wavefront)", name)
}

// Names lists the available applications. The first three form the
// evaluation trio (see DESIGN.md); wavefront is an additional pipelined
// workload used by the examples.
func Names() []string { return []string{"stencil", "nbody", "cg", "wavefront"} }

// All instantiates the three evaluation applications with the same
// iteration count.
func All(iters int) []App {
	return []App{NewStencil(iters), NewNBody(iters), NewCG(iters)}
}

// ---------------------------------------------------------------------------
// Stencil

// Stencil is an iterative Jacobi-style halo-exchange solver.
type Stencil struct {
	iters int
	sweep *kernels.Kernel
	pack  *kernels.Kernel
}

// NewStencil builds the stencil app with the given iteration count.
func NewStencil(iters int) *Stencil {
	sweep := &kernels.Kernel{
		Name:         "jacobi_sweep",
		ID:           1,
		MeanDuration: 5_000_000, // 5 ms
		NoiseCV:      0.03,
	}
	// Three internal sub-phases: the dense stencil update, a memory-bound
	// boundary fix-up, and the residual computation.
	sweep.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 50_000_000,
		Shape: counters.Piecewise(
			counters.Segment{Width: 0.55, Area: 0.68},
			counters.Segment{Width: 0.25, Area: 0.12},
			counters.Segment{Width: 0.20, Area: 0.20},
		),
	}
	sweep.Counters[counters.FPOps] = kernels.CounterSpec{
		Total: 28_000_000,
		Shape: counters.Piecewise(
			counters.Segment{Width: 0.55, Area: 0.75},
			counters.Segment{Width: 0.25, Area: 0.05},
			counters.Segment{Width: 0.20, Area: 0.20},
		),
	}
	sweep.Counters[counters.L1DCM] = kernels.CounterSpec{
		Total: 1_200_000,
		Shape: counters.ExpDecay(2.5, 0.2),
	}
	sweep.Counters[counters.L2DCM] = kernels.CounterSpec{
		Total: 180_000,
		Shape: counters.ExpDecay(4, 0.15),
	}
	sweep.Regions = []kernels.RegionSpan{
		{UpTo: 0.55, Name: "stencil_update"},
		{UpTo: 0.80, Name: "boundary_fix"},
		{UpTo: 1.00, Name: "residual"},
	}

	pack := &kernels.Kernel{
		Name:         "halo_pack",
		ID:           2,
		MeanDuration: 300_000, // 300 µs
		NoiseCV:      0.05,
	}
	pack.Counters[counters.TotIns] = kernels.CounterSpec{Total: 900_000}
	pack.Counters[counters.L1DCM] = kernels.CounterSpec{Total: 60_000, Shape: counters.Linear(1.5, 0.5)}
	pack.Counters[counters.FPOps] = kernels.CounterSpec{Total: 10_000}

	return &Stencil{iters: iters, sweep: sweep, pack: pack}
}

// Name implements sim.App.
func (a *Stencil) Name() string { return "stencil" }

// Iterations returns the configured iteration count.
func (a *Stencil) Iterations() int { return a.iters }

// Kernels implements sim.App.
func (a *Stencil) Kernels() []*kernels.Kernel { return []*kernels.Kernel{a.sweep, a.pack} }

// Run implements sim.App: per iteration, pack halos, exchange with both
// ring neighbours, run the sweep, and reduce the residual.
func (a *Stencil) Run(r *sim.Rank) {
	n := r.Ranks()
	up := (r.Rank() + 1) % n
	down := (r.Rank() + n - 1) % n
	const halo = 16 << 10 // 16 KiB: eager
	for it := 0; it < a.iters; it++ {
		r.Iteration(it + 1)
		r.Compute(a.pack)
		if n > 1 {
			r.Sendrecv(up, halo, down, 100, 100)
			r.Sendrecv(down, halo, up, 101, 101)
		}
		r.Compute(a.sweep)
		r.Allreduce(8)
	}
}

// ---------------------------------------------------------------------------
// NBody

// NBody is a particle force computation with load imbalance.
type NBody struct {
	iters     int
	forces    *kernels.Kernel
	integrate *kernels.Kernel
}

// NewNBody builds the n-body app with the given iteration count.
func NewNBody(iters int) *NBody {
	forces := &kernels.Kernel{
		Name:         "forces",
		ID:           3,
		MeanDuration: 8_000_000, // 8 ms
		NoiseCV:      0.05,
		// Interaction counts vary per step, smearing the per-rank work
		// levels into one connected cluster (as real particle codes do).
		WorkNoiseCV: 0.06,
		Imbalance:   kernels.Triangular(0.5),
	}
	// The force loop walks a cell list sorted by interaction count, so the
	// instruction rate decreases across the phase.
	forces.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 120_000_000,
		Shape: counters.Linear(1.6, 0.4),
	}
	forces.Counters[counters.FPOps] = kernels.CounterSpec{
		Total: 90_000_000,
		Shape: counters.Linear(1.7, 0.3),
	}
	forces.Counters[counters.L1DCM] = kernels.CounterSpec{
		Total: 2_400_000,
		Shape: counters.Linear(0.6, 1.4), // misses grow as cells get sparser
	}
	forces.Counters[counters.L2DCM] = kernels.CounterSpec{
		Total: 300_000,
		Shape: counters.Linear(0.5, 1.5),
	}
	forces.Regions = []kernels.RegionSpan{
		{UpTo: 0.70, Name: "near_field"},
		{UpTo: 1.00, Name: "far_field"},
	}

	integrate := &kernels.Kernel{
		Name:         "integrate",
		ID:           4,
		MeanDuration: 1_200_000, // 1.2 ms
		NoiseCV:      0.03,
	}
	integrate.Counters[counters.TotIns] = kernels.CounterSpec{Total: 10_000_000}
	integrate.Counters[counters.FPOps] = kernels.CounterSpec{Total: 6_000_000}
	integrate.Counters[counters.L1DCM] = kernels.CounterSpec{Total: 150_000}

	return &NBody{iters: iters, forces: forces, integrate: integrate}
}

// Name implements sim.App.
func (a *NBody) Name() string { return "nbody" }

// Iterations returns the configured iteration count.
func (a *NBody) Iterations() int { return a.iters }

// Kernels implements sim.App.
func (a *NBody) Kernels() []*kernels.Kernel { return []*kernels.Kernel{a.forces, a.integrate} }

// Run implements sim.App.
func (a *NBody) Run(r *sim.Rank) {
	for it := 0; it < a.iters; it++ {
		r.Iteration(it + 1)
		r.Compute(a.forces)
		r.Allreduce(16) // energy + virial
		r.Compute(a.integrate)
		r.Bcast(0, 4096) // refreshed decomposition parameters
	}
}

// ---------------------------------------------------------------------------
// CG

// CG is a conjugate-gradient-style sparse solver.
type CG struct {
	iters   int
	spmv    *kernels.Kernel
	axpy    *kernels.Kernel
	precond *kernels.Kernel
}

// NewCG builds the CG app with the given iteration count.
func NewCG(iters int) *CG {
	spmv := &kernels.Kernel{
		Name:         "spmv",
		ID:           5,
		MeanDuration: 4_000_000, // 4 ms
		NoiseCV:      0.04,
	}
	spmv.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 30_000_000,
		Shape: counters.Piecewise(
			counters.Segment{Width: 0.30, Area: 0.22, Shape: counters.Linear(0.7, 1.3)},
			counters.Segment{Width: 0.70, Area: 0.78},
		),
	}
	spmv.Counters[counters.FPOps] = kernels.CounterSpec{Total: 16_000_000}
	// The irregular gather misses hard until the working set is resident.
	spmv.Counters[counters.L2DCM] = kernels.CounterSpec{
		Total: 800_000,
		Shape: counters.ExpDecay(6, 0.2),
	}
	spmv.Counters[counters.L1DCM] = kernels.CounterSpec{
		Total: 3_000_000,
		Shape: counters.ExpDecay(2, 0.3),
	}
	spmv.Regions = []kernels.RegionSpan{
		{UpTo: 0.30, Name: "gather"},
		{UpTo: 1.00, Name: "multiply"},
	}

	axpy := &kernels.Kernel{
		Name:         "axpy",
		ID:           6,
		MeanDuration: 900_000, // 0.9 ms
		NoiseCV:      0.03,
	}
	axpy.Counters[counters.TotIns] = kernels.CounterSpec{Total: 7_000_000}
	axpy.Counters[counters.FPOps] = kernels.CounterSpec{Total: 5_000_000}
	axpy.Counters[counters.L1DCM] = kernels.CounterSpec{Total: 400_000}

	precond := &kernels.Kernel{
		Name:         "precond",
		ID:           7,
		MeanDuration: 1_500_000, // 1.5 ms
		NoiseCV:      0.04,
	}
	precond.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 13_000_000,
		Shape: counters.ExpDecay(1.5, 0.3), // forward solve denser than back-substitution
	}
	precond.Counters[counters.FPOps] = kernels.CounterSpec{Total: 8_000_000}
	precond.Counters[counters.L1DCM] = kernels.CounterSpec{Total: 500_000}

	return &CG{iters: iters, spmv: spmv, axpy: axpy, precond: precond}
}

// Name implements sim.App.
func (a *CG) Name() string { return "cg" }

// Iterations returns the configured iteration count.
func (a *CG) Iterations() int { return a.iters }

// Kernels implements sim.App.
func (a *CG) Kernels() []*kernels.Kernel {
	return []*kernels.Kernel{a.spmv, a.axpy, a.precond}
}

// Run implements sim.App: the classic preconditioned CG iteration
// skeleton, two dot-product reductions per iteration.
func (a *CG) Run(r *sim.Rank) {
	for it := 0; it < a.iters; it++ {
		r.Iteration(it + 1)
		r.Compute(a.spmv)
		r.Allreduce(8) // dot(p, Ap)
		r.Compute(a.axpy)
		r.Compute(a.precond)
		r.Allreduce(8) // dot(r, z)
	}
}

// DefaultTraceConfig returns the simulator configuration the evaluation
// uses unless an experiment overrides it: 16 ranks, 20 ms coarse sampling.
func DefaultTraceConfig(ranks int) sim.Config {
	cfg := sim.DefaultConfig(ranks)
	return cfg
}

// FineTraceConfig returns the fine-grain-sampling reference configuration:
// the same machine sampled every 50 µs (400× finer), with the same
// per-sample cost — the expensive baseline folding replaces.
func FineTraceConfig(ranks int) sim.Config {
	cfg := sim.DefaultConfig(ranks)
	cfg.Sampling.Period = 50_000
	return cfg
}

// UninstrumentedConfig returns the zero-observation configuration used to
// measure overhead dilation.
func UninstrumentedConfig(ranks int) sim.Config {
	cfg := sim.DefaultConfig(ranks)
	cfg.Sampling.Period = 0
	cfg.Instr.EventOverhead = 0
	cfg.Instr.Oracle = false
	return cfg
}
