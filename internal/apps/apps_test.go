package apps

import (
	"testing"

	"repro/internal/burst"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestByName(t *testing.T) {
	for _, name := range Names() {
		app, err := ByName(name, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if app.Name() != name {
			t.Fatalf("app name = %q, want %q", app.Name(), name)
		}
		if app.Iterations() != 3 {
			t.Fatalf("%s iterations = %d", name, app.Iterations())
		}
		for _, k := range app.Kernels() {
			if err := k.Validate(); err != nil {
				t.Fatalf("%s kernel: %v", name, err)
			}
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown app accepted")
	}
	if len(All(2)) != 3 {
		t.Fatal("All should return 3 apps")
	}
}

func TestAppsRunAndProduceExpectedBursts(t *testing.T) {
	const ranks, iters = 4, 5
	wantPerIter := map[string]int{
		// pack + the ~100ns sliver between the two Sendrecvs + sweep.
		"stencil": 3,
		// forces + integrate.
		"nbody": 2,
		// spmv | allreduce | axpy+precond (one burst: no MPI in between).
		"cg": 2,
	}

	for _, app := range All(iters) {
		cfg := DefaultTraceConfig(ranks)
		tr, err := sim.Run(cfg, app)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		bursts, err := burst.Extract(tr)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		want := wantPerIter[app.Name()] * ranks * iters
		if len(bursts) != want {
			t.Fatalf("%s: bursts = %d, want %d", app.Name(), len(bursts), want)
		}
		// Iteration markers present on every rank.
		iterEvents := 0
		for _, e := range tr.Events {
			if e.Type == trace.EvIteration {
				iterEvents++
			}
		}
		if iterEvents != ranks*iters {
			t.Fatalf("%s: iteration events = %d, want %d", app.Name(), iterEvents, ranks*iters)
		}
	}
}

func TestConfigsDiffer(t *testing.T) {
	d := DefaultTraceConfig(8)
	f := FineTraceConfig(8)
	u := UninstrumentedConfig(8)
	if f.Sampling.Period >= d.Sampling.Period {
		t.Fatal("fine config must sample faster")
	}
	if u.Sampling.Period != 0 || u.Instr.EventOverhead != 0 {
		t.Fatal("uninstrumented config must disable observation")
	}
}

func TestNBodyImbalanceVisible(t *testing.T) {
	app := NewNBody(3)
	cfg := UninstrumentedConfig(8)
	cfg.Instr.Oracle = true
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	bursts, err := burst.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Middle ranks' forces bursts must be longer than edge ranks'.
	var edge, mid float64
	var nEdge, nMid int
	for _, b := range bursts {
		if b.OracleID != 3 {
			continue
		}
		d := float64(b.Duration())
		switch b.Rank {
		case 0, 7:
			edge += d
			nEdge++
		case 3, 4:
			mid += d
			nMid++
		}
	}
	if nEdge == 0 || nMid == 0 {
		t.Fatal("missing forces bursts")
	}
	if mid/float64(nMid) < 1.2*edge/float64(nEdge) {
		t.Fatalf("imbalance not visible: mid %.0f vs edge %.0f", mid/float64(nMid), edge/float64(nEdge))
	}
}
