package apps

// Bench-large preset: the tracegen configuration the large-scale
// benchmarks use (`make bench BENCH_SCALE=large`, tracegen -preset
// bench-large). 32 stencil ranks over 1600 iterations emit two kept
// computation bursts per rank per iteration (halo pack + sweep), i.e.
// ~100k clustered points — enough to exercise the indexed clustering
// kernels at the scale the sublinear paths are built for. Keeping the
// numbers here, next to the app definitions, lets the CLI and the bench
// harness generate the identical workload without sharing files.
const (
	BenchLargeApp   = "stencil"
	BenchLargeRanks = 32
	BenchLargeIters = 1600
	BenchLargeSeed  = 1
)

// BenchLargeName is the -preset spelling tracegen accepts.
const BenchLargeName = "bench-large"
