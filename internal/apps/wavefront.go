package apps

import (
	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/sim"
)

// Wavefront is a Sweep3D-style pipelined solver: each iteration performs a
// forward and a backward sweep along a 1-D rank pipeline, where every rank
// waits for its upstream neighbour's block boundary, computes its own
// block, and forwards to the downstream neighbour. It exercises blocking
// point-to-point chains (the other apps are collective-dominated) and
// produces the staggered burst pattern characteristic of wavefront codes.
// The block kernel's instruction rate oscillates (two diagonal passes per
// block), giving folding a non-monotone-rate shape to reconstruct.
type Wavefront struct {
	iters int
	block *kernels.Kernel
}

// NewWavefront builds the wavefront app with the given iteration count.
func NewWavefront(iters int) *Wavefront {
	block := &kernels.Kernel{
		Name:         "sweep_block",
		ID:           8,
		MeanDuration: 2_500_000, // 2.5 ms
		NoiseCV:      0.04,
	}
	block.Counters[counters.TotIns] = kernels.CounterSpec{
		Total: 22_000_000,
		Shape: counters.Sine(0.45, 2), // two diagonal passes per block
	}
	block.Counters[counters.FPOps] = kernels.CounterSpec{
		Total: 15_000_000,
		Shape: counters.Sine(0.45, 2),
	}
	block.Counters[counters.L1DCM] = kernels.CounterSpec{
		Total: 900_000,
		Shape: counters.ExpDecay(1.2, 0.3),
	}
	block.Counters[counters.L2DCM] = kernels.CounterSpec{
		Total: 120_000,
		Shape: counters.ExpDecay(2, 0.25),
	}
	block.Regions = []kernels.RegionSpan{
		{UpTo: 0.5, Name: "diag_pass_1"},
		{UpTo: 1.0, Name: "diag_pass_2"},
	}
	return &Wavefront{iters: iters, block: block}
}

// Name implements sim.App.
func (a *Wavefront) Name() string { return "wavefront" }

// Iterations returns the configured iteration count.
func (a *Wavefront) Iterations() int { return a.iters }

// Kernels implements sim.App.
func (a *Wavefront) Kernels() []*kernels.Kernel { return []*kernels.Kernel{a.block} }

// Run implements sim.App: forward sweep down the pipeline, backward sweep
// up, then a residual reduction.
func (a *Wavefront) Run(r *sim.Rank) {
	const (
		tagFwd   = 300
		tagBwd   = 301
		boundary = 8 << 10 // 8 KiB block boundary: eager
	)
	n, id := r.Ranks(), r.Rank()
	for it := 0; it < a.iters; it++ {
		r.Iteration(it + 1)
		// Forward sweep: 0 → n-1.
		if id > 0 {
			r.Recv(id-1, tagFwd)
		}
		r.Compute(a.block)
		if id < n-1 {
			r.Send(id+1, boundary, tagFwd)
		}
		// Backward sweep: n-1 → 0.
		if id < n-1 {
			r.Recv(id+1, tagBwd)
		}
		r.Compute(a.block)
		if id > 0 {
			r.Send(id-1, boundary, tagBwd)
		}
		r.Allreduce(8)
	}
}
