package apps

import (
	"testing"

	"repro/internal/burst"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestWavefrontRuns(t *testing.T) {
	const ranks, iters = 8, 30
	app := NewWavefront(iters)
	tr, err := sim.Run(DefaultTraceConfig(ranks), app)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	bursts, err := burst.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Two sweep blocks per rank per iteration — except the last rank,
	// which has no MPI call between its forward and backward blocks, so
	// they merge into one (double-length) burst.
	blocks := 0
	for _, b := range bursts {
		if b.OracleID == 8 {
			blocks++
		}
	}
	if want := 2*ranks*iters - iters; blocks != want {
		t.Fatalf("sweep blocks = %d, want %d", blocks, want)
	}
}

func TestWavefrontPipelineStagger(t *testing.T) {
	// The forward sweep serializes the pipeline: rank r's first block
	// cannot start before rank r-1's first block finished (plus latency).
	app := NewWavefront(3)
	cfg := UninstrumentedConfig(4)
	cfg.Instr.Oracle = true
	cfg.Instr.EventOverhead = 0
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	bursts, err := burst.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	firstBlockStart := map[int32]trace.Time{}
	for _, b := range bursts {
		if b.OracleID != 8 {
			continue
		}
		if _, ok := firstBlockStart[b.Rank]; !ok {
			firstBlockStart[b.Rank] = b.Start
		}
	}
	for r := int32(1); r < 4; r++ {
		if firstBlockStart[r] <= firstBlockStart[r-1] {
			t.Fatalf("no pipeline stagger: rank %d starts at %d, rank %d at %d",
				r, firstBlockStart[r], r-1, firstBlockStart[r-1])
		}
	}
}

func TestWavefrontFoldingRecoversSineRate(t *testing.T) {
	const ranks, iters = 8, 150
	app := NewWavefront(iters)
	tr, err := sim.Run(DefaultTraceConfig(ranks), app)
	if err != nil {
		t.Fatal(err)
	}
	bursts, err := burst.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := burst.Filter{MinDuration: 50_000}.Apply(bursts)
	// All sweep blocks are one phase; build instances directly from the
	// oracle (this test targets folding, not clustering).
	attached := burst.AttachSamples(tr, kept)
	for i := range kept {
		if kept[i].OracleID == 8 {
			kept[i].Cluster = 1
		}
	}
	instances := folding.InstancesFromBursts(kept, attached, 1)
	res, err := folding.Fold(instances, folding.Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	truth := app.Kernels()[0].ShapeOf(counters.TotIns)
	if d := res.MeanAbsDiff(truth); d > 0.02 {
		t.Fatalf("sine-rate fold diff = %.4f", d)
	}
	// The rate must actually oscillate: two maxima above and one minimum
	// below the mean rate.
	mean := res.MeanTotal / res.MeanDuration
	above, below := 0, 0
	prevAbove := res.Rate[5] > mean
	for i := 6; i < len(res.Rate)-5; i++ {
		nowAbove := res.Rate[i] > mean
		if nowAbove != prevAbove {
			if nowAbove {
				above++
			} else {
				below++
			}
			prevAbove = nowAbove
		}
	}
	if above+below < 3 {
		t.Fatalf("folded rate does not oscillate (crossings=%d)", above+below)
	}
}
