// Package burst extracts computation bursts from traces. A computation
// burst is the interval a rank spends outside MPI between two consecutive
// instrumented MPI calls — the opaque region whose internal structure the
// folding mechanism unveils. Each burst carries the hardware-counter
// deltas between the probe readings at its boundaries, the raw material
// for burst clustering.
package burst

import (
	"fmt"
	"sort"

	"repro/internal/counters"
	"repro/internal/trace"
)

// Burst is one computation interval on one rank.
type Burst struct {
	// Rank is the MPI rank the burst executed on.
	Rank int32
	// Index is the burst's per-rank sequence number, starting at 0.
	Index int
	// Start and End delimit the burst: End - Start is the duration.
	Start, End trace.Time
	// Delta holds the hardware-counter increments over the burst, read
	// from the probe snapshots at its boundaries.
	Delta counters.Values
	// Base holds the absolute counter snapshot at Start; samples inside
	// the burst normalize against it (sample - Base) / Delta.
	Base counters.Values
	// OracleID is the ground-truth kernel identity (from EvOracle events
	// inside the burst), 0 when unavailable. It is used only for
	// validation, never by the analysis itself.
	OracleID int64
	// Cluster is the cluster id assigned by clustering: 0 means noise or
	// not yet clustered, 1..K are clusters ordered by total time.
	Cluster int
}

// Duration returns the burst length.
func (b *Burst) Duration() trace.Time { return b.End - b.Start }

// Instructions returns the completed-instruction delta.
func (b *Burst) Instructions() int64 { return b.Delta[counters.TotIns] }

// IPC returns instructions per cycle over the burst.
func (b *Burst) IPC() float64 { return b.Delta.IPC() }

// Extractor is the incremental burst extraction state machine: feed it
// the trace's events in time order and it yields each computation burst
// the moment the closing MPI enter arrives. It is the unit of work behind
// Extract and the streaming pipeline's extraction stage, so both paths
// run identical logic.
type Extractor struct {
	states []extractState
}

type extractState struct {
	boundary    trace.Time
	baseline    counters.Values
	hasBaseline bool
	inMPI       bool
	oracle      int64
	index       int
}

// NewExtractor creates an extractor for a trace with the given rank
// count.
func NewExtractor(ranks int) (*Extractor, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("burst: trace has no ranks")
	}
	x := &Extractor{states: make([]extractState, ranks)}
	for i := range x.states {
		x.states[i].hasBaseline = true // trace start: time 0, zero counters
	}
	return x, nil
}

// Add feeds one event. When the event closes a burst, the burst is
// returned with ok true. A burst opens at the trace start or at an MPI
// exit and closes at the next MPI enter on the same rank; bursts need
// counter snapshots on both delimiting probes (the trace-start baseline
// is zero) and bursts of zero duration are skipped.
func (x *Extractor) Add(e *trace.Event) (b Burst, ok bool, err error) {
	if int(e.Rank) >= len(x.states) || e.Rank < 0 {
		return b, false, fmt.Errorf("burst: event rank %d out of range", e.Rank)
	}
	st := &x.states[e.Rank]
	switch e.Type {
	case trace.EvOracle:
		if e.Value != 0 && st.oracle == 0 {
			st.oracle = e.Value
		}
	case trace.EvMPI:
		if e.Value != 0 {
			// MPI enter closes the current burst.
			if !st.inMPI && st.hasBaseline && e.HasCounters && e.Time > st.boundary {
				b = Burst{
					Rank:     e.Rank,
					Index:    st.index,
					Start:    st.boundary,
					End:      e.Time,
					Delta:    e.Counters.Sub(st.baseline),
					Base:     st.baseline,
					OracleID: st.oracle,
				}
				ok = true
				st.index++
			}
			st.inMPI = true
			st.oracle = 0
		} else {
			// MPI exit opens the next burst.
			st.inMPI = false
			st.boundary = e.Time
			st.baseline = e.Counters
			st.hasBaseline = e.HasCounters
			st.oracle = 0
		}
	}
	return b, ok, nil
}

// Sort orders bursts in the global (Start, Rank) order Extract
// guarantees. The sort is stable, so per-rank sequence order is
// preserved.
func Sort(bursts []Burst) {
	sort.SliceStable(bursts, func(i, j int) bool {
		if bursts[i].Start != bursts[j].Start {
			return bursts[i].Start < bursts[j].Start
		}
		return bursts[i].Rank < bursts[j].Rank
	})
}

// Extract walks the trace and returns every computation burst, in global
// (Start, Rank) order. It is a thin batch wrapper over Extractor.
func Extract(tr *trace.Trace) ([]Burst, error) {
	x, err := NewExtractor(tr.Meta.Ranks)
	if err != nil {
		return nil, err
	}
	var out []Burst
	for i := range tr.Events {
		b, ok, err := x.Add(&tr.Events[i])
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, b)
		}
	}
	Sort(out)
	return out, nil
}

// Filter drops bursts that are too short to be meaningful computation
// phases, as the clustering tooling the paper builds on does.
type Filter struct {
	// MinDuration drops bursts shorter than this.
	MinDuration trace.Time
}

// Apply partitions bursts into kept and dropped according to the filter.
func (f Filter) Apply(bursts []Burst) (kept, dropped []Burst) {
	for _, b := range bursts {
		if b.Duration() < f.MinDuration {
			dropped = append(dropped, b)
		} else {
			kept = append(kept, b)
		}
	}
	return kept, dropped
}

// TotalTime sums the durations of the bursts.
func TotalTime(bursts []Burst) trace.Time {
	var t trace.Time
	for i := range bursts {
		t += bursts[i].Duration()
	}
	return t
}

// Coverage returns the fraction of total burst time that the kept subset
// retains; it quantifies how much computation a duration filter preserves.
func Coverage(kept, all []Burst) float64 {
	tot := TotalTime(all)
	if tot == 0 {
		return 0
	}
	return float64(TotalTime(kept)) / float64(tot)
}

// AttachSamples returns, for each burst, the trace samples falling inside
// [Start, End), in time order. The i-th result slice corresponds to
// bursts[i]. Sample slices alias the trace's sample storage.
func AttachSamples(tr *trace.Trace, bursts []Burst) [][]trace.Sample {
	// Group samples per rank (already globally time-sorted).
	perRank := make([][]trace.Sample, tr.Meta.Ranks)
	for _, s := range tr.Samples {
		if int(s.Rank) < len(perRank) {
			perRank[s.Rank] = append(perRank[s.Rank], s)
		}
	}
	// Group burst indices per rank, preserving their per-rank time order.
	burstIdx := make([][]int, tr.Meta.Ranks)
	for i := range bursts {
		r := bursts[i].Rank
		if int(r) < len(burstIdx) {
			burstIdx[r] = append(burstIdx[r], i)
		}
	}
	out := make([][]trace.Sample, len(bursts))
	for r := range burstIdx {
		samples := perRank[r]
		si := 0
		for _, bi := range burstIdx[r] {
			b := &bursts[bi]
			for si < len(samples) && samples[si].Time < b.Start {
				si++
			}
			lo := si
			for si < len(samples) && samples[si].Time < b.End {
				si++
			}
			if si > lo {
				out[bi] = samples[lo:si]
			}
		}
	}
	return out
}

// Summary aggregates bursts for reports.
type Summary struct {
	Count         int
	TotalDuration trace.Time
	MeanDuration  float64
	MeanIPC       float64
}

// Summarize computes aggregate statistics over a burst set.
func Summarize(bursts []Burst) Summary {
	s := Summary{Count: len(bursts)}
	if len(bursts) == 0 {
		return s
	}
	var ipcSum float64
	for i := range bursts {
		s.TotalDuration += bursts[i].Duration()
		ipcSum += bursts[i].IPC()
	}
	s.MeanDuration = float64(s.TotalDuration) / float64(len(bursts))
	s.MeanIPC = ipcSum / float64(len(bursts))
	return s
}
