package burst

import (
	"testing"

	"repro/internal/counters"
	"repro/internal/kernels"
	"repro/internal/sim"
	"repro/internal/trace"
)

// buildTrace constructs a two-rank trace with known bursts:
//
//	rank 0: [0,100) compute(ins 1000) | MPI [100,120] | [120,300) compute(ins 4000) | MPI [300,310]
//	rank 1: [0, 50) compute(ins  500) | MPI [ 50,120] | [120,200) compute(ins 1600) | MPI [200,210]
func buildTrace(t *testing.T) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder("bursts", 2)
	// rank 0
	b.Event(0, 10, trace.EvOracle, 7)
	b.Event(0, 90, trace.EvOracle, 0)
	b.EventC(0, 100, trace.EvMPI, int64(trace.MPIBarrier), []int64{1000, 200, 10, 1, 100})
	b.EventC(0, 120, trace.EvMPI, 0, []int64{1000, 240, 10, 1, 100})
	b.Event(0, 130, trace.EvOracle, 8)
	b.Event(0, 290, trace.EvOracle, 0)
	b.EventC(0, 300, trace.EvMPI, int64(trace.MPIAllreduce), []int64{5000, 600, 40, 4, 500})
	b.EventC(0, 310, trace.EvMPI, 0, []int64{5000, 620, 40, 4, 500})
	// rank 1
	b.EventC(1, 50, trace.EvMPI, int64(trace.MPIBarrier), []int64{500, 100, 5, 0, 50})
	b.EventC(1, 120, trace.EvMPI, 0, []int64{500, 240, 5, 0, 50})
	b.EventC(1, 200, trace.EvMPI, int64(trace.MPIAllreduce), []int64{2100, 400, 21, 2, 210})
	b.EventC(1, 210, trace.EvMPI, 0, []int64{2100, 420, 21, 2, 210})
	// samples
	b.Sample(0, 50, []int64{400, 100, 4, 0, 40}, []uint32{1})
	b.Sample(0, 200, []int64{2500, 400, 22, 2, 250}, []uint32{1})
	b.Sample(1, 150, []int64{1100, 300, 11, 1, 110}, nil)
	return b.Build()
}

func TestExtractBasic(t *testing.T) {
	tr := buildTrace(t)
	bursts, err := Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 4 {
		t.Fatalf("bursts = %d, want 4", len(bursts))
	}
	// Global order: (0, rank0), (0, rank1)... starts: r0@0, r1@0, r1@120, r0@120
	b0 := bursts[0] // rank 0, [0,100)
	if b0.Rank != 0 || b0.Start != 0 || b0.End != 100 || b0.Index != 0 {
		t.Fatalf("burst0 = %+v", b0)
	}
	if b0.Instructions() != 1000 {
		t.Fatalf("burst0 ins = %d", b0.Instructions())
	}
	if b0.OracleID != 7 {
		t.Fatalf("burst0 oracle = %d", b0.OracleID)
	}
	b1 := bursts[1] // rank 1, [0,50)
	if b1.Rank != 1 || b1.End != 50 || b1.Instructions() != 500 {
		t.Fatalf("burst1 = %+v", b1)
	}
	// Second bursts use deltas from exit snapshots.
	var r0b2 *Burst
	for i := range bursts {
		if bursts[i].Rank == 0 && bursts[i].Index == 1 {
			r0b2 = &bursts[i]
		}
	}
	if r0b2 == nil {
		t.Fatal("rank 0 second burst missing")
	}
	if r0b2.Start != 120 || r0b2.End != 300 {
		t.Fatalf("r0 burst2 bounds = [%d,%d)", r0b2.Start, r0b2.End)
	}
	if r0b2.Instructions() != 4000 {
		t.Fatalf("r0 burst2 ins = %d", r0b2.Instructions())
	}
	if r0b2.OracleID != 8 {
		t.Fatalf("r0 burst2 oracle = %d", r0b2.OracleID)
	}
	if ipc := r0b2.IPC(); ipc != 4000.0/360.0 {
		t.Fatalf("r0 burst2 IPC = %g", ipc)
	}
}

func TestExtractSkipsZeroDuration(t *testing.T) {
	b := trace.NewBuilder("z", 1)
	b.EventC(0, 100, trace.EvMPI, int64(trace.MPIBarrier), []int64{10})
	b.EventC(0, 120, trace.EvMPI, 0, []int64{10})
	// Next MPI call immediately: zero-length burst at 120.
	b.EventC(0, 120, trace.EvMPI, int64(trace.MPIBarrier), []int64{10})
	b.EventC(0, 130, trace.EvMPI, 0, []int64{10})
	tr := b.Build()
	bursts, err := Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(bursts) != 1 {
		t.Fatalf("bursts = %d, want 1 (zero-length skipped)", len(bursts))
	}
}

func TestExtractRequiresCounters(t *testing.T) {
	b := trace.NewBuilder("nc", 1)
	b.Event(0, 100, trace.EvMPI, int64(trace.MPIBarrier)) // no counters
	b.Event(0, 120, trace.EvMPI, 0)
	b.EventC(0, 200, trace.EvMPI, int64(trace.MPIBarrier), []int64{50})
	b.EventC(0, 230, trace.EvMPI, 0, []int64{50})
	tr := b.Build()
	bursts, err := Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	// First burst dropped (closing probe has no counters); burst [120,200)
	// dropped too (opening probe has no counters); only [230,...] would
	// need another MPI enter, so exactly zero complete bursts with
	// counters... wait: burst [120,200) opens at uncountered exit.
	if len(bursts) != 0 {
		t.Fatalf("bursts = %d, want 0", len(bursts))
	}
}

func TestFilterApplyAndCoverage(t *testing.T) {
	tr := buildTrace(t)
	bursts, err := Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	kept, dropped := Filter{MinDuration: 90}.Apply(bursts)
	if len(kept) != 2 || len(dropped) != 2 {
		t.Fatalf("kept/dropped = %d/%d", len(kept), len(dropped))
	}
	for _, d := range dropped {
		if d.Duration() >= 90 {
			t.Fatalf("dropped burst too long: %+v", d)
		}
	}
	cov := Coverage(kept, bursts)
	want := float64(100+180) / float64(100+50+180+80)
	if cov != want {
		t.Fatalf("coverage = %g, want %g", cov, want)
	}
	if Coverage(nil, nil) != 0 {
		t.Fatal("empty coverage should be 0")
	}
}

func TestAttachSamples(t *testing.T) {
	tr := buildTrace(t)
	bursts, err := Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	att := AttachSamples(tr, bursts)
	if len(att) != len(bursts) {
		t.Fatalf("attach len = %d", len(att))
	}
	for i, b := range bursts {
		for _, s := range att[i] {
			if s.Rank != b.Rank || s.Time < b.Start || s.Time >= b.End {
				t.Fatalf("sample %+v outside burst %+v", s, b)
			}
		}
	}
	// rank 0 first burst has the sample at t=50; second at t=200.
	var n0, n1 int
	for i, b := range bursts {
		if b.Rank == 0 && b.Index == 0 {
			n0 = len(att[i])
		}
		if b.Rank == 0 && b.Index == 1 {
			n1 = len(att[i])
		}
	}
	if n0 != 1 || n1 != 1 {
		t.Fatalf("rank0 burst samples = %d, %d; want 1, 1", n0, n1)
	}
}

func TestSummarize(t *testing.T) {
	tr := buildTrace(t)
	bursts, _ := Extract(tr)
	s := Summarize(bursts)
	if s.Count != 4 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.TotalDuration != 410 {
		t.Fatalf("total = %d", s.TotalDuration)
	}
	if s.MeanDuration != 102.5 {
		t.Fatalf("mean = %g", s.MeanDuration)
	}
	if Summarize(nil).Count != 0 {
		t.Fatal("empty summary")
	}
}

func TestExtractOnSimulatedTrace(t *testing.T) {
	// End-to-end: bursts from a simulated run must match the kernels the
	// ranks computed, with oracle identity and per-kernel instruction
	// totals.
	kA := &kernels.Kernel{Name: "A", ID: 1, MeanDuration: 200_000}
	kA.Counters[counters.TotIns] = kernels.CounterSpec{Total: 300_000}
	kB := &kernels.Kernel{Name: "B", ID: 2, MeanDuration: 500_000}
	kB.Counters[counters.TotIns] = kernels.CounterSpec{Total: 2_000_000}

	app := &burstApp{ks: []*kernels.Kernel{kA, kB}}
	cfg := sim.DefaultConfig(4)
	cfg.Sampling.Period = 0
	cfg.Instr.EventOverhead = 0
	cfg.Sampling.Overhead = 0
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	bursts, err := Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	// 4 ranks × 3 iterations × 2 kernels = 24 bursts.
	if len(bursts) != 24 {
		t.Fatalf("bursts = %d, want 24", len(bursts))
	}
	for _, b := range bursts {
		switch b.OracleID {
		case 1:
			if b.Duration() != 200_000 || b.Instructions() != 300_000 {
				t.Fatalf("kernel A burst wrong: %+v", b)
			}
		case 2:
			if b.Duration() != 500_000 || b.Instructions() != 2_000_000 {
				t.Fatalf("kernel B burst wrong: %+v", b)
			}
		default:
			t.Fatalf("burst without oracle: %+v", b)
		}
	}
}

type burstApp struct {
	ks []*kernels.Kernel
}

func (a *burstApp) Name() string               { return "bursts" }
func (a *burstApp) Kernels() []*kernels.Kernel { return a.ks }
func (a *burstApp) Run(r *sim.Rank) {
	for i := 0; i < 3; i++ {
		r.Compute(a.ks[0])
		r.Barrier()
		r.Compute(a.ks[1])
		r.Allreduce(8)
	}
}
