package cluster

import (
	"fmt"
	"log/slog"
	"math"
	"sort"

	"repro/internal/burst"
	"repro/internal/parallel"
)

// Config parameterizes burst clustering.
type Config struct {
	// Eps is the DBSCAN neighborhood radius in normalized feature space;
	// 0 selects it automatically from the k-dist curve (see AutoEps).
	Eps float64
	// MinPts is the DBSCAN density threshold; 0 defaults to 4 (the usual
	// choice for 2-3 dimensional spaces).
	MinPts int
	// UseIPC adds IPC as a third feature dimension alongside log duration
	// and log instructions.
	UseIPC bool
	// MinClusterShare demotes clusters holding less than this fraction of
	// the clustered bursts to noise (default 0.01). Heavy-tailed duration
	// noise produces tiny outlying shards that DBSCAN dutifully groups;
	// they are measurement debris, not application phases.
	MinClusterShare float64
	// Parallelism bounds the workers used by the heavy kernels
	// (AutoEps, Silhouette) and DBSCAN's neighbor precomputation; 0
	// selects GOMAXPROCS, 1 forces sequential execution. The clustering
	// result is identical for every value.
	Parallelism int
	// Index selects the neighbor-search implementation behind AutoEps's
	// k-dist scan. IndexAuto (the zero value) uses the k-d tree at or
	// above indexAutoMin points and the brute-force scan below;
	// IndexBrute and IndexKDTree force one path. Both produce
	// bit-identical eps for every input — the tree search is exact — so
	// this is purely a performance knob.
	Index IndexMode
	// SilhouetteSample caps how many members of each cluster contribute
	// to a point's silhouette distance means. 0 (the default) keeps the
	// exact all-members computation; a positive value S deterministically
	// subsamples clusters larger than S (evenly strided member lists),
	// reducing the kernel from O(n²) to O(n·K·S) at the cost of an
	// approximate coefficient (see SilhouetteSampled).
	SilhouetteSample int
	// Logger, when non-nil, receives a structured record per clustering
	// run (point count, chosen eps, K, silhouette) so long-running
	// services can watch parameter selection live. It never affects the
	// result.
	Logger *slog.Logger
}

// IndexMode selects the neighbor-search implementation for the
// parameter-selection kernels.
type IndexMode int

const (
	// IndexAuto picks the k-d tree at or above indexAutoMin points and
	// brute force below, where the tree's build cost is not yet repaid.
	IndexAuto IndexMode = iota
	// IndexBrute forces the O(n²) reference scan.
	IndexBrute
	// IndexKDTree forces the indexed O(n log n) scan.
	IndexKDTree
)

// indexAutoMin is the point count at which IndexAuto switches from the
// brute-force scan to the k-d tree.
const indexAutoMin = 512

// String names the mode as the CLIs spell it (-knn flag values).
func (m IndexMode) String() string {
	switch m {
	case IndexAuto:
		return "auto"
	case IndexBrute:
		return "brute"
	case IndexKDTree:
		return "kdtree"
	}
	return fmt.Sprintf("IndexMode(%d)", int(m))
}

// ParseIndexMode parses a -knn flag value ("auto", "brute", "kdtree").
func ParseIndexMode(s string) (IndexMode, error) {
	switch s {
	case "auto", "":
		return IndexAuto, nil
	case "brute":
		return IndexBrute, nil
	case "kdtree", "kd", "tree":
		return IndexKDTree, nil
	}
	return IndexAuto, fmt.Errorf("cluster: unknown index mode %q (want auto, brute or kdtree)", s)
}

// Result is the outcome of clustering a burst set.
type Result struct {
	// Assign maps each input burst to a cluster id: 0 = noise, 1..K are
	// clusters ordered by decreasing total burst time.
	Assign []int
	// K is the number of clusters found (excluding noise).
	K int
	// Eps and MinPts are the effective DBSCAN parameters.
	Eps    float64
	MinPts int
	// Features is the normalized feature matrix used (for plots).
	Features [][]float64
	// Silhouette is the mean silhouette coefficient over clustered points
	// (NaN when fewer than 2 clusters).
	Silhouette float64
}

// Features computes the clustering feature matrix for bursts: log10
// duration, log10 instructions, and optionally IPC, min-max normalized to
// [0,1] per dimension. Non-positive durations/instruction counts clamp to
// 1 before the log.
func Features(bursts []burst.Burst, useIPC bool) [][]float64 {
	flat, dim := featuresFlat(bursts, useIPC)
	return rowsOf(flat, dim)
}

// featuresFlat is the columnar core of Features: the same per-burst
// arithmetic and the same min-max normalization, but the matrix lives in
// one row-major allocation instead of a slice per burst. Downstream
// kernels that index rows (DBSCAN, silhouette) wrap it with rowsOf; the
// k-d tree bulk-loads the flat array directly.
func featuresFlat(bursts []burst.Burst, useIPC bool) ([]float64, int) {
	dim := 2
	if useIPC {
		dim = 3
	}
	flat := make([]float64, len(bursts)*dim)
	for i := range bursts {
		d := float64(bursts[i].Duration())
		if d < 1 {
			d = 1
		}
		ins := float64(bursts[i].Instructions())
		if ins < 1 {
			ins = 1
		}
		row := flat[i*dim : (i+1)*dim]
		row[0] = math.Log10(d)
		row[1] = math.Log10(ins)
		if useIPC {
			row[2] = bursts[i].IPC()
		}
	}
	normalizeFlat(flat, dim)
	return flat, dim
}

// rowsOf builds capacity-capped row headers over a row-major flat
// matrix, giving the [][]float64 shape the row-oriented kernels expect
// in a single header allocation.
func rowsOf(flat []float64, dim int) [][]float64 {
	if dim <= 0 {
		return nil
	}
	n := len(flat) / dim
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = flat[i*dim : (i+1)*dim : (i+1)*dim]
	}
	return rows
}

// normalizeFlat min-max scales each column of the row-major matrix to
// [0,1] in place — the same per-dimension scan order and arithmetic as
// Normalize, so both layouts produce bit-identical values.
func normalizeFlat(flat []float64, dim int) {
	if len(flat) == 0 || dim <= 0 {
		return
	}
	n := len(flat) / dim
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			v := flat[i*dim+d]
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		for i := 0; i < n; i++ {
			if span == 0 {
				flat[i*dim+d] = 0
			} else {
				flat[i*dim+d] = (flat[i*dim+d] - lo) / span
			}
		}
	}
}

// Normalize min-max scales each column of the matrix to [0,1] in place.
// Constant columns become 0.
func Normalize(m [][]float64) {
	if len(m) == 0 {
		return
	}
	dim := len(m[0])
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range m {
			if row[d] < lo {
				lo = row[d]
			}
			if row[d] > hi {
				hi = row[d]
			}
		}
		span := hi - lo
		for _, row := range m {
			if span == 0 {
				row[d] = 0
			} else {
				row[d] = (row[d] - lo) / span
			}
		}
	}
}

// AutoEps estimates the DBSCAN eps from the k-dist distribution: the
// distance of each point to its k-th nearest neighbor is computed and the
// 99th percentile returned, so that ≥99% of points are core points at the
// chosen radius. Compared with the classic knee-of-the-sorted-curve rule,
// the high percentile is robust to the heavy-tailed densities that
// lognormal duration noise produces — the knee rule lands in the dense
// bulk and fragments each phase into shards.
func AutoEps(points [][]float64, k int) float64 {
	return AutoEpsMode(points, k, 0, IndexAuto)
}

// AutoEpsP is AutoEps with an explicit worker bound: the k-dist scan is
// row-partitioned onto at most parallelism workers (0 = GOMAXPROCS).
// Every row's k-dist is computed independently and written to its own
// slot, so the returned eps is identical for every worker count.
func AutoEpsP(points [][]float64, k, parallelism int) float64 {
	return AutoEpsMode(points, k, parallelism, IndexAuto)
}

// AutoEpsMode is AutoEpsP with an explicit neighbor-search mode. The
// indexed path queries a k-d tree with a bounded max-heap per point —
// O(n log n) total instead of the brute scan's O(n²) — and both paths
// finish with a quickselect of the 99th percentile rather than a full
// sort. Because the tree search is exact and sqrt is monotone, every
// mode returns bit-identical eps on the same input, for every
// parallelism (the *Property* tests in knn_test.go enforce this).
func AutoEpsMode(points [][]float64, k, parallelism int, mode IndexMode) float64 {
	n := len(points)
	if n == 0 {
		return 0.1
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return 0.1
	}
	kd := make([]float64, n)
	if mode == IndexKDTree || (mode == IndexAuto && n >= indexAutoMin) {
		tree := NewKDTree(points)
		parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
			heap := parallel.GetFloat64(k)
			defer parallel.PutFloat64(heap)
			for i := lo; i < hi; i++ {
				kd[i] = tree.KNearestDist(i, k, heap)
			}
		})
	} else {
		parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
			heap := parallel.GetFloat64(k)
			defer parallel.PutFloat64(heap)
			for i := lo; i < hi; i++ {
				h := heap[:0]
				pi := points[i]
				for j := range points {
					if i != j {
						h = pushBounded(h, dist2(pi, points[j]), k)
					}
				}
				kd[i] = math.Sqrt(h[0])
			}
		})
	}
	return epsFromKDists(kd)
}

// autoEpsFlat is AutoEpsMode over a row-major flat matrix — the
// zero-copy path from featuresFlat. The k-d tree bulk-loads the array
// without per-row headers; the brute path scans contiguous row views, so
// both layouts return bit-identical eps.
func autoEpsFlat(flat []float64, dim, k, parallelism int, mode IndexMode) float64 {
	if dim <= 0 {
		return 0.1
	}
	n := len(flat) / dim
	if n == 0 {
		return 0.1
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return 0.1
	}
	kd := make([]float64, n)
	if mode == IndexKDTree || (mode == IndexAuto && n >= indexAutoMin) {
		tree := NewKDTreeFlat(flat, dim)
		parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
			heap := parallel.GetFloat64(k)
			defer parallel.PutFloat64(heap)
			for i := lo; i < hi; i++ {
				kd[i] = tree.KNearestDist(i, k, heap)
			}
		})
	} else {
		parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
			heap := parallel.GetFloat64(k)
			defer parallel.PutFloat64(heap)
			for i := lo; i < hi; i++ {
				h := heap[:0]
				pi := flat[i*dim : (i+1)*dim]
				for j := 0; j < n; j++ {
					if i != j {
						jo := j * dim
						h = pushBounded(h, dist2(pi, flat[jo:jo+dim]), k)
					}
				}
				kd[i] = math.Sqrt(h[0])
			}
		})
	}
	return epsFromKDists(kd)
}

// epsFromKDists finishes both AutoEps layouts: the 99th-percentile
// k-dist via quickselect, floored at 1e-3 so a degenerate point set
// (all duplicates) still yields a usable radius.
func epsFromKDists(kd []float64) float64 {
	n := len(kd)
	// The clamp is redundant for n >= 1 (n*99/100 <= n-1) but guards
	// the invariant explicitly for tiny n.
	idx := n * 99 / 100
	if idx > n-1 {
		idx = n - 1
	}
	eps := quantileSelect(kd, idx)
	if eps <= 0 {
		eps = 1e-3
	}
	return eps
}

// ClusterBursts runs the full burst-clustering pipeline: feature
// extraction, parameter selection, DBSCAN, and renumbering of clusters by
// decreasing total burst time. The input bursts' Cluster fields are set.
func ClusterBursts(bursts []burst.Burst, cfg Config) Result {
	res := Result{MinPts: cfg.MinPts, Eps: cfg.Eps}
	if res.MinPts == 0 {
		res.MinPts = 4
	}
	if len(bursts) == 0 {
		return res
	}
	flat, dim := featuresFlat(bursts, cfg.UseIPC)
	res.Features = rowsOf(flat, dim)
	if res.Eps == 0 {
		res.Eps = autoEpsFlat(flat, dim, res.MinPts, cfg.Parallelism, cfg.Index)
	}
	raw := DBSCANP(res.Features, res.Eps, res.MinPts, cfg.Parallelism)

	// Demote sub-scale shards to noise.
	share := cfg.MinClusterShare
	if share == 0 {
		share = 0.01
	}
	if share > 0 {
		sizes := map[int]int{}
		for _, c := range raw {
			if c != Noise {
				sizes[c]++
			}
		}
		minSize := int(share * float64(len(raw)))
		for i, c := range raw {
			if c != Noise && sizes[c] < minSize {
				raw[i] = Noise
			}
		}
	}

	// Rank clusters by total time, renumber 1..K.
	totals := map[int]int64{}
	for i, c := range raw {
		if c != Noise {
			totals[c] += int64(bursts[i].Duration())
		}
	}
	ids := make([]int, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if totals[ids[a]] != totals[ids[b]] {
			return totals[ids[a]] > totals[ids[b]]
		}
		return ids[a] < ids[b]
	})
	remap := map[int]int{Noise: Noise}
	for newID, oldID := range ids {
		remap[oldID] = newID + 1
	}
	res.Assign = make([]int, len(raw))
	for i, c := range raw {
		res.Assign[i] = remap[c]
		bursts[i].Cluster = remap[c]
	}
	res.K = len(ids)
	res.Silhouette = SilhouetteSampled(res.Features, res.Assign, cfg.SilhouetteSample, cfg.Parallelism)
	if cfg.Logger != nil {
		cfg.Logger.Info("clustered bursts", "bursts", len(bursts),
			"eps", res.Eps, "min_pts", res.MinPts, "clusters", res.K,
			"silhouette", res.Silhouette)
	}
	return res
}

// Silhouette computes the mean silhouette coefficient over all clustered
// (non-noise) points. It returns NaN when fewer than two clusters exist.
func Silhouette(points [][]float64, assign []int) float64 {
	return SilhouetteP(points, assign, 0)
}

// SilhouetteP is Silhouette with an explicit worker bound (0 =
// GOMAXPROCS). Each clustered point's coefficient is an independent scan,
// so the point set is chunk-partitioned across workers; the per-point
// coefficients land in an indexed slice and are summed in point order,
// making the result identical for every worker count. This is the exact
// path (SilhouetteSampled with sample 0).
func SilhouetteP(points [][]float64, assign []int, parallelism int) float64 {
	return SilhouetteSampled(points, assign, 0, parallelism)
}

// SilhouetteSampled computes the mean silhouette coefficient with the
// per-point work decomposed into per-cluster distance sums: one pass
// over the (possibly subsampled) member lists accumulates Σ d(i, C) for
// every cluster C, from which a(i) = Σ d(i, own)/(|own|−1) and
// b(i) = min over other C of Σ d(i, C)/|C| follow directly.
//
// sample <= 0 is the exact mode: all members participate and the result
// is bit-identical to the classic all-pairs definition (the edge tests
// lock its exact values). sample = S > 0 deterministically subsamples
// every cluster larger than S to S evenly strided members (stride
// spacing over the index-ordered member list, independent of the worker
// count), making the kernel O(n·K·S) instead of O(n²). The sampled
// coefficient is an approximation of the exact one: each mean distance
// is estimated from S members, so on blob-like clusters the error of the
// mean coefficient is typically under a few percent at S >= 64 and
// shrinks as 1/√S; it is NOT exact, and callers that report silhouette
// as a locked quality metric must keep sample at 0.
func SilhouetteSampled(points [][]float64, assign []int, sample, parallelism int) float64 {
	// Dense-number the clusters in ascending id order; member lists keep
	// point-index order so every distance sum accumulates in a fixed
	// order regardless of parallelism.
	dense := map[int]int{}
	var ids []int
	for _, c := range assign {
		if c == Noise {
			continue
		}
		if _, ok := dense[c]; !ok {
			dense[c] = 0
			ids = append(ids, c)
		}
	}
	if len(ids) < 2 {
		return math.NaN()
	}
	sort.Ints(ids)
	for di, id := range ids {
		dense[id] = di
	}
	members := make([][]int, len(ids))
	var clustered []int
	for i, c := range assign {
		if c == Noise {
			continue
		}
		members[dense[c]] = append(members[dense[c]], i)
		clustered = append(clustered, i)
	}

	// Optional deterministic subsample: evenly strided member picks.
	eval := members
	if sample > 0 {
		eval = make([][]int, len(members))
		for c, mem := range members {
			if len(mem) <= sample {
				eval[c] = mem
				continue
			}
			sub := make([]int, sample)
			for t := 0; t < sample; t++ {
				sub[t] = mem[t*len(mem)/sample]
			}
			eval[c] = sub
		}
	}

	nc := len(ids)
	coeff := make([]float64, len(clustered))
	parallel.ForEachChunk(len(clustered), parallelism, func(lo, hi int) {
		sums := parallel.GetFloat64(nc)
		defer parallel.PutFloat64(sums)
		for ci := lo; ci < hi; ci++ {
			i := clustered[ci]
			own := dense[assign[i]]
			for c := range sums {
				sums[c] = 0
			}
			selfSeen := false
			for c, mem := range eval {
				for _, j := range mem {
					if j == i {
						selfSeen = true
						continue
					}
					sums[c] += math.Sqrt(dist2(points[i], points[j]))
				}
			}
			// a = mean distance to own cluster's (sampled) members.
			var a float64
			na := len(eval[own])
			if selfSeen {
				na--
			}
			if na > 0 {
				a = sums[own] / float64(na)
			}
			// b = min over other clusters of mean distance.
			b := math.Inf(1)
			for c := range eval {
				if c == own {
					continue
				}
				if m := sums[c] / float64(len(eval[c])); m < b {
					b = m
				}
			}
			if den := math.Max(a, b); den > 0 {
				coeff[ci] = (b - a) / den
			}
		}
	})
	var sum float64
	for _, s := range coeff {
		sum += s
	}
	return sum / float64(len(clustered))
}

// ClusterTimeCoverage returns the fraction of total burst time assigned to
// non-noise clusters — the paper reports its clusters covering the bulk of
// computation time.
func ClusterTimeCoverage(bursts []burst.Burst, assign []int) float64 {
	if len(bursts) != len(assign) {
		panic(fmt.Sprintf("cluster: %d bursts vs %d assignments", len(bursts), len(assign)))
	}
	type sums struct{ tot, cov int64 }
	// Integer sums are order-independent, so the chunked reduction is
	// deterministic for any worker count.
	s := parallel.Reduce(len(bursts), 0,
		func() sums { return sums{} },
		func(a sums, i int) sums {
			d := int64(bursts[i].Duration())
			a.tot += d
			if assign[i] != Noise {
				a.cov += d
			}
			return a
		},
		func(a, b sums) sums { return sums{a.tot + b.tot, a.cov + b.cov} })
	if s.tot == 0 {
		return 0
	}
	return float64(s.cov) / float64(s.tot)
}
