package cluster

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/burst"
	"repro/internal/parallel"
)

// Config parameterizes burst clustering.
type Config struct {
	// Eps is the DBSCAN neighborhood radius in normalized feature space;
	// 0 selects it automatically from the k-dist curve (see AutoEps).
	Eps float64
	// MinPts is the DBSCAN density threshold; 0 defaults to 4 (the usual
	// choice for 2-3 dimensional spaces).
	MinPts int
	// UseIPC adds IPC as a third feature dimension alongside log duration
	// and log instructions.
	UseIPC bool
	// MinClusterShare demotes clusters holding less than this fraction of
	// the clustered bursts to noise (default 0.01). Heavy-tailed duration
	// noise produces tiny outlying shards that DBSCAN dutifully groups;
	// they are measurement debris, not application phases.
	MinClusterShare float64
	// Parallelism bounds the workers used by the quadratic kernels
	// (AutoEps, Silhouette) and DBSCAN's neighbor precomputation; 0
	// selects GOMAXPROCS, 1 forces sequential execution. The clustering
	// result is identical for every value.
	Parallelism int
}

// Result is the outcome of clustering a burst set.
type Result struct {
	// Assign maps each input burst to a cluster id: 0 = noise, 1..K are
	// clusters ordered by decreasing total burst time.
	Assign []int
	// K is the number of clusters found (excluding noise).
	K int
	// Eps and MinPts are the effective DBSCAN parameters.
	Eps    float64
	MinPts int
	// Features is the normalized feature matrix used (for plots).
	Features [][]float64
	// Silhouette is the mean silhouette coefficient over clustered points
	// (NaN when fewer than 2 clusters).
	Silhouette float64
}

// Features computes the clustering feature matrix for bursts: log10
// duration, log10 instructions, and optionally IPC, min-max normalized to
// [0,1] per dimension. Non-positive durations/instruction counts clamp to
// 1 before the log.
func Features(bursts []burst.Burst, useIPC bool) [][]float64 {
	dim := 2
	if useIPC {
		dim = 3
	}
	out := make([][]float64, len(bursts))
	for i := range bursts {
		d := float64(bursts[i].Duration())
		if d < 1 {
			d = 1
		}
		ins := float64(bursts[i].Instructions())
		if ins < 1 {
			ins = 1
		}
		row := make([]float64, dim)
		row[0] = math.Log10(d)
		row[1] = math.Log10(ins)
		if useIPC {
			row[2] = bursts[i].IPC()
		}
		out[i] = row
	}
	Normalize(out)
	return out
}

// Normalize min-max scales each column of the matrix to [0,1] in place.
// Constant columns become 0.
func Normalize(m [][]float64) {
	if len(m) == 0 {
		return
	}
	dim := len(m[0])
	for d := 0; d < dim; d++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range m {
			if row[d] < lo {
				lo = row[d]
			}
			if row[d] > hi {
				hi = row[d]
			}
		}
		span := hi - lo
		for _, row := range m {
			if span == 0 {
				row[d] = 0
			} else {
				row[d] = (row[d] - lo) / span
			}
		}
	}
}

// AutoEps estimates the DBSCAN eps from the k-dist distribution: the
// distance of each point to its k-th nearest neighbor is computed and the
// 99th percentile returned, so that ≥99% of points are core points at the
// chosen radius. Compared with the classic knee-of-the-sorted-curve rule,
// the high percentile is robust to the heavy-tailed densities that
// lognormal duration noise produces — the knee rule lands in the dense
// bulk and fragments each phase into shards.
func AutoEps(points [][]float64, k int) float64 {
	return AutoEpsP(points, k, 0)
}

// AutoEpsP is AutoEps with an explicit worker bound: the O(n²) k-dist
// scan is row-partitioned onto at most parallelism workers (0 =
// GOMAXPROCS). Every row's k-dist is computed independently and written
// to its own slot, so the returned eps is identical for every worker
// count.
func AutoEpsP(points [][]float64, k, parallelism int) float64 {
	n := len(points)
	if n == 0 {
		return 0.1
	}
	if k >= n {
		k = n - 1
	}
	if k < 1 {
		return 0.1
	}
	kd := make([]float64, n)
	parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
		buf := parallel.GetFloat64(n - 1)
		defer parallel.PutFloat64(buf)
		for i := lo; i < hi; i++ {
			dists := buf[:0]
			for j := range points {
				if i != j {
					dists = append(dists, math.Sqrt(dist2(points[i], points[j])))
				}
			}
			sort.Float64s(dists)
			kd[i] = dists[k-1]
		}
	})
	sort.Float64s(kd)
	eps := kd[n*99/100]
	if eps <= 0 {
		eps = 1e-3
	}
	return eps
}

// ClusterBursts runs the full burst-clustering pipeline: feature
// extraction, parameter selection, DBSCAN, and renumbering of clusters by
// decreasing total burst time. The input bursts' Cluster fields are set.
func ClusterBursts(bursts []burst.Burst, cfg Config) Result {
	res := Result{MinPts: cfg.MinPts, Eps: cfg.Eps}
	if res.MinPts == 0 {
		res.MinPts = 4
	}
	if len(bursts) == 0 {
		return res
	}
	res.Features = Features(bursts, cfg.UseIPC)
	if res.Eps == 0 {
		res.Eps = AutoEpsP(res.Features, res.MinPts, cfg.Parallelism)
	}
	raw := DBSCANP(res.Features, res.Eps, res.MinPts, cfg.Parallelism)

	// Demote sub-scale shards to noise.
	share := cfg.MinClusterShare
	if share == 0 {
		share = 0.01
	}
	if share > 0 {
		sizes := map[int]int{}
		for _, c := range raw {
			if c != Noise {
				sizes[c]++
			}
		}
		minSize := int(share * float64(len(raw)))
		for i, c := range raw {
			if c != Noise && sizes[c] < minSize {
				raw[i] = Noise
			}
		}
	}

	// Rank clusters by total time, renumber 1..K.
	totals := map[int]int64{}
	for i, c := range raw {
		if c != Noise {
			totals[c] += int64(bursts[i].Duration())
		}
	}
	ids := make([]int, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if totals[ids[a]] != totals[ids[b]] {
			return totals[ids[a]] > totals[ids[b]]
		}
		return ids[a] < ids[b]
	})
	remap := map[int]int{Noise: Noise}
	for newID, oldID := range ids {
		remap[oldID] = newID + 1
	}
	res.Assign = make([]int, len(raw))
	for i, c := range raw {
		res.Assign[i] = remap[c]
		bursts[i].Cluster = remap[c]
	}
	res.K = len(ids)
	res.Silhouette = SilhouetteP(res.Features, res.Assign, cfg.Parallelism)
	return res
}

// Silhouette computes the mean silhouette coefficient over all clustered
// (non-noise) points. It returns NaN when fewer than two clusters exist.
func Silhouette(points [][]float64, assign []int) float64 {
	return SilhouetteP(points, assign, 0)
}

// SilhouetteP is Silhouette with an explicit worker bound (0 =
// GOMAXPROCS). Each clustered point's coefficient is an independent O(n)
// scan, so the point set is chunk-partitioned across workers; the
// per-point coefficients land in an indexed slice and are summed in point
// order, making the result identical for every worker count.
func SilhouetteP(points [][]float64, assign []int, parallelism int) float64 {
	// Group point indices by cluster and list clustered points in index
	// order.
	groups := map[int][]int{}
	var clustered []int
	for i, c := range assign {
		if c != Noise {
			groups[c] = append(groups[c], i)
			clustered = append(clustered, i)
		}
	}
	if len(groups) < 2 {
		return math.NaN()
	}
	coeff := make([]float64, len(clustered))
	parallel.ForEachChunk(len(clustered), parallelism, func(lo, hi int) {
		for ci := lo; ci < hi; ci++ {
			i := clustered[ci]
			c := assign[i]
			members := groups[c]
			// a = mean distance to own cluster.
			var a float64
			if len(members) > 1 {
				for _, j := range members {
					if i != j {
						a += math.Sqrt(dist2(points[i], points[j]))
					}
				}
				a /= float64(len(members) - 1)
			}
			// b = min over other clusters of mean distance.
			b := math.Inf(1)
			for oc, others := range groups {
				if oc == c {
					continue
				}
				var m float64
				for _, j := range others {
					m += math.Sqrt(dist2(points[i], points[j]))
				}
				m /= float64(len(others))
				if m < b {
					b = m
				}
			}
			if den := math.Max(a, b); den > 0 {
				coeff[ci] = (b - a) / den
			}
		}
	})
	var sum float64
	for _, s := range coeff {
		sum += s
	}
	return sum / float64(len(clustered))
}

// ClusterTimeCoverage returns the fraction of total burst time assigned to
// non-noise clusters — the paper reports its clusters covering the bulk of
// computation time.
func ClusterTimeCoverage(bursts []burst.Burst, assign []int) float64 {
	if len(bursts) != len(assign) {
		panic(fmt.Sprintf("cluster: %d bursts vs %d assignments", len(bursts), len(assign)))
	}
	type sums struct{ tot, cov int64 }
	// Integer sums are order-independent, so the chunked reduction is
	// deterministic for any worker count.
	s := parallel.Reduce(len(bursts), 0,
		func() sums { return sums{} },
		func(a sums, i int) sums {
			d := int64(bursts[i].Duration())
			a.tot += d
			if assign[i] != Noise {
				a.cov += d
			}
			return a
		},
		func(a, b sums) sums { return sums{a.tot + b.tot, a.cov + b.cov} })
	if s.tot == 0 {
		return 0
	}
	return float64(s.cov) / float64(s.tot)
}
