package cluster

import (
	"math"
	"testing"

	"repro/internal/burst"
)

// These tests lock exact values for the quadratic kernels (AutoEps,
// Silhouette) on hand-computable inputs, so the parallel implementations
// are verified against the sequential semantics, and pin the edge cases —
// all-noise, single cluster, duplicate points — that a chunked rewrite
// could silently change.

func TestSilhouetteExactTwoPairs(t *testing.T) {
	// Two vertical pairs 10 apart. By symmetry every point has
	// a = 1 (its pair partner) and b = (10 + sqrt(101))/2.
	pts := [][]float64{{0, 0}, {0, 1}, {10, 0}, {10, 1}}
	assign := []int{1, 1, 2, 2}
	b := (10 + math.Sqrt(101)) / 2
	want := (b - 1) / b
	if got := Silhouette(pts, assign); math.Abs(got-want) > 1e-12 {
		t.Fatalf("silhouette = %.15f, want %.15f", got, want)
	}
}

func TestSilhouetteDuplicatePointsPerfect(t *testing.T) {
	// Each cluster collapses to one location: a = 0, b = 1 → s = 1 exactly
	// for every point.
	pts := [][]float64{{0, 0}, {0, 0}, {0, 0}, {1, 0}, {1, 0}, {1, 0}}
	assign := []int{1, 1, 1, 2, 2, 2}
	if got := Silhouette(pts, assign); got != 1 {
		t.Fatalf("duplicate-cluster silhouette = %g, want exactly 1", got)
	}
}

func TestSilhouetteAllPointsIdentical(t *testing.T) {
	// Every point identical across two clusters: a = b = 0, the 0/0
	// coefficient is defined as 0.
	pts := [][]float64{{0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}, {0.5, 0.5}}
	assign := []int{1, 1, 2, 2}
	if got := Silhouette(pts, assign); got != 0 {
		t.Fatalf("identical-points silhouette = %g, want exactly 0", got)
	}
}

func TestSilhouetteAllNoiseAndSingleCluster(t *testing.T) {
	pts := [][]float64{{0, 0}, {1, 0}, {2, 0}}
	if got := Silhouette(pts, []int{0, 0, 0}); !math.IsNaN(got) {
		t.Fatalf("all-noise silhouette = %g, want NaN", got)
	}
	if got := Silhouette(pts, []int{1, 1, 1}); !math.IsNaN(got) {
		t.Fatalf("single-cluster silhouette = %g, want NaN", got)
	}
	// Two clusters where one is pure noise is still a single cluster.
	if got := Silhouette(pts, []int{1, 1, 0}); !math.IsNaN(got) {
		t.Fatalf("cluster+noise silhouette = %g, want NaN", got)
	}
}

func TestSilhouetteIgnoresNoisePoints(t *testing.T) {
	// A far-away noise point must not shift any clustered point's b.
	pts := [][]float64{{0, 0}, {0, 1}, {10, 0}, {10, 1}}
	assign := []int{1, 1, 2, 2}
	base := Silhouette(pts, assign)
	withNoise := Silhouette(
		append(pts, []float64{1e6, 1e6}),
		append(append([]int{}, assign...), Noise))
	if base != withNoise {
		t.Fatalf("noise point changed silhouette: %g vs %g", base, withNoise)
	}
}

func TestSilhouetteParallelMatchesSequential(t *testing.T) {
	pts, labels := blobs(4, 50, 3, 0.05, 11)
	Normalize(pts)
	// Mark a few points noise so the noise-skipping paths run too.
	assign := append([]int{}, labels...)
	for i := 0; i < len(assign); i += 17 {
		assign[i] = Noise
	}
	seq := SilhouetteP(pts, assign, 1)
	for _, p := range []int{2, 3, 8, 32} {
		if par := SilhouetteP(pts, assign, p); par != seq {
			t.Fatalf("p=%d: silhouette %.17g != sequential %.17g", p, par, seq)
		}
	}
}

func TestAutoEpsExactLine(t *testing.T) {
	// 1-D line {0,1,2,3}, k=2: k-dists are {2,1,1,2}; the 99th-percentile
	// index is 4*99/100 = 3 → eps = 2 exactly.
	pts := [][]float64{{0}, {1}, {2}, {3}}
	if got := AutoEps(pts, 2); got != 2 {
		t.Fatalf("AutoEps = %g, want exactly 2", got)
	}
}

func TestAutoEpsDuplicatePointsFloor(t *testing.T) {
	// All-duplicate points: every k-dist is 0, and the positive floor must
	// kick in at exactly 1e-3.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if got := AutoEps(pts, 3); got != 1e-3 {
		t.Fatalf("duplicate-points AutoEps = %g, want exactly 1e-3", got)
	}
}

func TestAutoEpsParallelMatchesSequential(t *testing.T) {
	pts, _ := blobs(3, 60, 3, 0.04, 21)
	Normalize(pts)
	seq := AutoEpsP(pts, 4, 1)
	for _, p := range []int{2, 3, 8, 32} {
		if par := AutoEpsP(pts, 4, p); par != seq {
			t.Fatalf("p=%d: AutoEps %.17g != sequential %.17g", p, par, seq)
		}
	}
}

func TestDBSCANParallelMatchesSequential(t *testing.T) {
	pts, _ := blobs(3, 80, 2, 0.05, 31)
	// Outliers exercise the noise path.
	pts = append(pts, []float64{50, 50}, []float64{-40, 12})
	seq := DBSCANP(pts, 0.2, 4, 1)
	for _, p := range []int{2, 4, 16} {
		par := DBSCANP(pts, 0.2, 4, p)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("p=%d: point %d assigned %d, sequential %d", p, i, par[i], seq[i])
			}
		}
	}
}

func TestClusterBurstsParallelismInvariant(t *testing.T) {
	bursts := makeBursts()
	seq := ClusterBursts(append([]burst.Burst(nil), bursts...), Config{UseIPC: true, Parallelism: 1})
	par := ClusterBursts(append([]burst.Burst(nil), bursts...), Config{UseIPC: true, Parallelism: 8})
	if seq.K != par.K || seq.Eps != par.Eps || seq.Silhouette != par.Silhouette {
		t.Fatalf("header mismatch: seq K=%d eps=%.17g sil=%.17g, par K=%d eps=%.17g sil=%.17g",
			seq.K, seq.Eps, seq.Silhouette, par.K, par.Eps, par.Silhouette)
	}
	for i := range seq.Assign {
		if seq.Assign[i] != par.Assign[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, seq.Assign[i], par.Assign[i])
		}
	}
}

// TestClusterBurstsIndexInvariant extends the determinism guarantee to
// the index knob: the full pipeline result — eps, K, silhouette, every
// assignment — must be bit-identical for every neighbor-search mode at
// every parallelism, because the k-d tree path is exact.
func TestClusterBurstsIndexInvariant(t *testing.T) {
	bursts := makeBursts()
	base := ClusterBursts(append([]burst.Burst(nil), bursts...), Config{UseIPC: true, Parallelism: 1})
	for _, mode := range []IndexMode{IndexAuto, IndexBrute, IndexKDTree} {
		for _, par := range []int{1, 8} {
			got := ClusterBursts(append([]burst.Burst(nil), bursts...),
				Config{UseIPC: true, Parallelism: par, Index: mode})
			if got.K != base.K || got.Eps != base.Eps || got.Silhouette != base.Silhouette {
				t.Fatalf("mode=%v par=%d: K=%d eps=%.17g sil=%.17g, want K=%d eps=%.17g sil=%.17g",
					mode, par, got.K, got.Eps, got.Silhouette, base.K, base.Eps, base.Silhouette)
			}
			for i := range base.Assign {
				if got.Assign[i] != base.Assign[i] {
					t.Fatalf("mode=%v par=%d: assignment %d differs: %d vs %d",
						mode, par, i, got.Assign[i], base.Assign[i])
				}
			}
		}
	}
}
