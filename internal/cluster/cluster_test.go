package cluster

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/burst"
	"repro/internal/counters"
	"repro/internal/trace"
)

// blobs generates g Gaussian blobs of m points each in dim dimensions,
// returning points and true labels (1..g).
func blobs(g, m, dim int, spread float64, seed uint64) ([][]float64, []int) {
	rng := rand.New(rand.NewPCG(seed, 99))
	centers := make([][]float64, g)
	for i := range centers {
		centers[i] = make([]float64, dim)
		for d := range centers[i] {
			centers[i][d] = float64(i) + 0.1*rng.Float64()
		}
	}
	var pts [][]float64
	var labels []int
	for i, c := range centers {
		for j := 0; j < m; j++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = c[d] + spread*rng.NormFloat64()
			}
			pts = append(pts, p)
			labels = append(labels, i+1)
		}
	}
	return pts, labels
}

// agreement checks that two labelings induce the same partition.
func agreement(a, b []int) bool {
	mapAB := map[int]int{}
	mapBA := map[int]int{}
	for i := range a {
		if x, ok := mapAB[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := mapBA[b[i]]; ok && x != a[i] {
			return false
		}
		mapAB[a[i]] = b[i]
		mapBA[b[i]] = a[i]
	}
	return true
}

func TestDBSCANSeparatesBlobs(t *testing.T) {
	pts, labels := blobs(3, 60, 2, 0.03, 1)
	assign := DBSCAN(pts, 0.15, 4)
	// All points should be clustered (dense blobs, wide separation).
	for i, c := range assign {
		if c == Noise {
			t.Fatalf("point %d classified as noise", i)
		}
	}
	if !agreement(assign, labels) {
		t.Fatal("DBSCAN partition does not match ground truth")
	}
}

func TestDBSCANMarksOutliersNoise(t *testing.T) {
	pts, _ := blobs(2, 50, 2, 0.02, 2)
	// Add isolated outliers far away.
	pts = append(pts, []float64{10, 10}, []float64{-5, 7}, []float64{20, -3})
	assign := DBSCAN(pts, 0.15, 4)
	for i := len(pts) - 3; i < len(pts); i++ {
		if assign[i] != Noise {
			t.Fatalf("outlier %d assigned to cluster %d", i, assign[i])
		}
	}
}

func TestDBSCANEmptyAndPanics(t *testing.T) {
	if got := DBSCAN(nil, 0.1, 4); got != nil {
		t.Fatal("empty input should return nil")
	}
	for name, f := range map[string]func(){
		"eps":    func() { DBSCAN([][]float64{{1}}, 0, 4) },
		"minPts": func() { DBSCAN([][]float64{{1}}, 0.1, 0) },
		"dim":    func() { DBSCAN([][]float64{{1}, {1, 2}}, 0.1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestDBSCANSinglePoint(t *testing.T) {
	assign := DBSCAN([][]float64{{0.5, 0.5}}, 0.1, 1)
	if assign[0] != 1 {
		t.Fatalf("single point with minPts=1 should form a cluster, got %d", assign[0])
	}
	assign = DBSCAN([][]float64{{0.5, 0.5}}, 0.1, 2)
	if assign[0] != Noise {
		t.Fatalf("single point with minPts=2 should be noise, got %d", assign[0])
	}
}

func TestDBSCANChainConnectivity(t *testing.T) {
	// A dense chain of points should form one cluster through
	// density-reachability even though the ends are far apart.
	var pts [][]float64
	for i := 0; i < 100; i++ {
		pts = append(pts, []float64{float64(i) * 0.05, 0})
	}
	assign := DBSCAN(pts, 0.06, 2)
	for _, c := range assign {
		if c != 1 {
			t.Fatalf("chain split: %v", assign)
		}
	}
}

func TestNormalize(t *testing.T) {
	m := [][]float64{{0, 10}, {5, 10}, {10, 10}}
	Normalize(m)
	if m[0][0] != 0 || m[1][0] != 0.5 || m[2][0] != 1 {
		t.Fatalf("col0 = %v %v %v", m[0][0], m[1][0], m[2][0])
	}
	// Constant column → 0.
	if m[0][1] != 0 || m[2][1] != 0 {
		t.Fatalf("constant col = %v %v", m[0][1], m[2][1])
	}
	Normalize(nil) // must not panic
}

func TestAutoEpsFindsUsableValue(t *testing.T) {
	pts, _ := blobs(3, 50, 2, 0.03, 3)
	Normalize(pts)
	eps := AutoEps(pts, 4)
	if eps <= 0 || eps > 0.5 {
		t.Fatalf("AutoEps = %g outside plausible range", eps)
	}
	assign := DBSCAN(pts, eps, 4)
	k := 0
	for _, c := range assign {
		if c > k {
			k = c
		}
	}
	if k != 3 {
		t.Fatalf("auto-eps DBSCAN found %d clusters, want 3", k)
	}
}

func TestAutoEpsDegenerate(t *testing.T) {
	if eps := AutoEps(nil, 4); eps != 0.1 {
		t.Fatalf("empty AutoEps = %g", eps)
	}
	if eps := AutoEps([][]float64{{1, 1}}, 4); eps != 0.1 {
		t.Fatalf("single-point AutoEps = %g", eps)
	}
	// All identical points: k-dist all zero.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if eps := AutoEps(pts, 2); eps <= 0 {
		t.Fatalf("identical-points AutoEps = %g", eps)
	}
}

// makeBursts builds bursts in two obvious groups: short/low-IPC and
// long/high-IPC, plus one extreme outlier.
func makeBursts() []burst.Burst {
	var out []burst.Burst
	for i := 0; i < 40; i++ {
		var d counters.Values
		d[counters.TotIns] = 1_000_000 + int64(i)*500
		d[counters.TotCyc] = 2_000_000
		out = append(out, burst.Burst{
			Rank: int32(i % 4), Start: trace.Time(i * 1000), End: trace.Time(i*1000 + 100),
			Delta: d, OracleID: 1,
		})
	}
	for i := 0; i < 40; i++ {
		var d counters.Values
		d[counters.TotIns] = 80_000_000 + int64(i)*10_000
		d[counters.TotCyc] = 40_000_000
		out = append(out, burst.Burst{
			Rank: int32(i % 4), Start: trace.Time(100_000 + i*20_000), End: trace.Time(100_000 + i*20_000 + 10_000),
			Delta: d, OracleID: 2,
		})
	}
	var d counters.Values
	d[counters.TotIns] = 1
	d[counters.TotCyc] = 1
	out = append(out, burst.Burst{Rank: 0, Start: 0, End: 1, Delta: d})
	return out
}

func TestClusterBurstsFindsPhases(t *testing.T) {
	bursts := makeBursts()
	res := ClusterBursts(bursts, Config{UseIPC: true})
	if res.K < 2 {
		t.Fatalf("K = %d, want >= 2", res.K)
	}
	// Every burst with the same oracle id must land in the same cluster.
	byOracle := map[int64]int{}
	for i, b := range bursts {
		if b.OracleID == 0 {
			continue
		}
		if prev, ok := byOracle[b.OracleID]; ok && prev != res.Assign[i] {
			t.Fatalf("oracle %d split across clusters %d and %d", b.OracleID, prev, res.Assign[i])
		}
		byOracle[b.OracleID] = res.Assign[i]
	}
	// Cluster 1 must be the one with the most total time (the long bursts).
	if byOracle[2] != 1 {
		t.Fatalf("dominant phase got cluster %d, want 1", byOracle[2])
	}
	// Bursts' Cluster fields must be set.
	for i := range bursts {
		if bursts[i].Cluster != res.Assign[i] {
			t.Fatal("burst Cluster field not assigned")
		}
	}
	if cov := ClusterTimeCoverage(bursts, res.Assign); cov < 0.95 {
		t.Fatalf("coverage = %g, want > 0.95", cov)
	}
	if math.IsNaN(res.Silhouette) || res.Silhouette < 0.5 {
		t.Fatalf("silhouette = %g, want well-separated", res.Silhouette)
	}
}

func TestClusterBurstsEmpty(t *testing.T) {
	res := ClusterBursts(nil, Config{})
	if res.K != 0 || res.Assign != nil {
		t.Fatalf("empty result = %+v", res)
	}
	if res.MinPts != 4 {
		t.Fatalf("default MinPts = %d", res.MinPts)
	}
}

func TestSilhouetteKnownValues(t *testing.T) {
	// Two tight, distant pairs: silhouette ≈ 1.
	pts := [][]float64{{0, 0}, {0, 0.01}, {5, 5}, {5, 5.01}}
	assign := []int{1, 1, 2, 2}
	if s := Silhouette(pts, assign); s < 0.99 {
		t.Fatalf("silhouette = %g, want ≈ 1", s)
	}
	// Single cluster → NaN.
	if s := Silhouette(pts, []int{1, 1, 1, 1}); !math.IsNaN(s) {
		t.Fatalf("single-cluster silhouette = %g, want NaN", s)
	}
	// All noise → NaN.
	if s := Silhouette(pts, []int{0, 0, 0, 0}); !math.IsNaN(s) {
		t.Fatalf("all-noise silhouette = %g, want NaN", s)
	}
}

func TestClusterTimeCoveragePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ClusterTimeCoverage(make([]burst.Burst, 2), []int{1})
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	pts, labels := blobs(3, 60, 2, 0.03, 7)
	assign := KMeans(pts, 3, 42, 100)
	if !agreement(assign, labels) {
		t.Fatal("k-means partition does not match ground truth on easy blobs")
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := blobs(3, 40, 2, 0.05, 8)
	a := KMeans(pts, 3, 5, 50)
	b := KMeans(pts, 3, 5, 50)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("k-means not deterministic for fixed seed")
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if got := KMeans(nil, 3, 1, 10); got != nil {
		t.Fatal("empty input")
	}
	// k > n clamps.
	assign := KMeans([][]float64{{0}, {1}}, 5, 1, 10)
	if len(assign) != 2 {
		t.Fatalf("assign len = %d", len(assign))
	}
	for _, c := range assign {
		if c < 1 {
			t.Fatal("k-means must assign every point")
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic for k<1")
			}
		}()
		KMeans([][]float64{{0}}, 0, 1, 10)
	}()
}

func TestFeaturesShape(t *testing.T) {
	bursts := makeBursts()
	f2 := Features(bursts, false)
	if len(f2) != len(bursts) || len(f2[0]) != 2 {
		t.Fatalf("2D features shape wrong")
	}
	f3 := Features(bursts, true)
	if len(f3[0]) != 3 {
		t.Fatalf("3D features shape wrong")
	}
	for _, row := range f3 {
		for d, v := range row {
			if v < 0 || v > 1 {
				t.Fatalf("feature dim %d = %g outside [0,1]", d, v)
			}
		}
	}
}
