// Package cluster implements density-based clustering of computation
// bursts, following the burst-clustering methodology the paper builds on:
// bursts are characterized by aggregate metrics (log duration, log
// completed instructions, IPC), min-max normalized, and grouped with
// DBSCAN so that each resulting cluster corresponds to one repeated
// computation phase of the application. A k-means baseline and cluster
// quality metrics (silhouette) are provided for comparison and reporting.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Noise is the assignment id DBSCAN gives to points in no cluster.
const Noise = 0

// DBSCAN clusters points (rows of equal dimension) with parameters eps
// (neighborhood radius, Euclidean) and minPts (minimum neighborhood size
// including the point itself to be a core point). The result assigns
// cluster ids 1..K in discovery order and Noise (0) to noise points.
//
// A uniform grid with cell side eps indexes the points, so neighborhood
// queries inspect only 3^d adjacent cells; with the 2-3 dimensional,
// min-max-normalized spaces used for bursts this makes DBSCAN near-linear.
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	return DBSCANP(points, eps, minPts, 0)
}

// DBSCANP is DBSCAN with an explicit worker bound (0 = GOMAXPROCS). The
// per-point neighbor lists — the dominant cost — are precomputed
// concurrently against the read-only grid index; the cluster-expansion
// pass that consumes them is inherently sequential (its queue order
// defines the cluster ids) and walks the precomputed lists, so the
// assignment is identical to the sequential algorithm's for every worker
// count. The precomputation holds all n neighbor lists at once, the same
// O(total neighbor count) the expansion pass would touch anyway.
func DBSCANP(points [][]float64, eps float64, minPts, parallelism int) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	if eps <= 0 {
		panic(fmt.Sprintf("cluster: non-positive eps %g", eps))
	}
	if minPts < 1 {
		panic(fmt.Sprintf("cluster: minPts %d < 1", minPts))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("cluster: point %d has dimension %d, want %d", i, len(p), dim))
		}
	}

	idx := newGridIndex(points, eps)
	neighbors := make([][]int, n)
	parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			neighbors[i] = idx.neighbors(i)
		}
	})

	assign := make([]int, n) // 0 = unvisited/noise
	visited := make([]bool, n)
	nextCluster := 0
	var queue []int

	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		if len(neighbors[i]) < minPts {
			continue // noise (may be claimed by a cluster later)
		}
		nextCluster++
		assign[i] = nextCluster
		queue = append(queue[:0], neighbors[i]...)
		for qi := 0; qi < len(queue); qi++ {
			j := queue[qi]
			if !visited[j] {
				visited[j] = true
				if len(neighbors[j]) >= minPts {
					queue = append(queue, neighbors[j]...)
				}
			}
			if assign[j] == Noise {
				assign[j] = nextCluster
			}
		}
	}
	return assign
}

// gridIndex hashes points into cells of side eps for neighborhood queries.
type gridIndex struct {
	points [][]float64
	eps    float64
	dim    int
	cells  map[string][]int
	keyBuf []int64
}

func newGridIndex(points [][]float64, eps float64) *gridIndex {
	g := &gridIndex{
		points: points,
		eps:    eps,
		dim:    len(points[0]),
		cells:  make(map[string][]int, len(points)),
		keyBuf: make([]int64, len(points[0])),
	}
	for i, p := range points {
		k := g.cellKey(p, nil)
		g.cells[k] = append(g.cells[k], i)
	}
	return g
}

// cellKey encodes a point's cell coordinates (plus an optional offset per
// dimension) as a compact string map key.
func (g *gridIndex) cellKey(p []float64, off []int64) string {
	buf := make([]byte, 0, g.dim*9)
	for d := 0; d < g.dim; d++ {
		c := int64(math.Floor(p[d] / g.eps))
		if off != nil {
			c += off[d]
		}
		for b := 0; b < 8; b++ {
			buf = append(buf, byte(c>>(8*b)))
		}
		buf = append(buf, ':')
	}
	return string(buf)
}

// neighbors returns indices of all points within eps of point i, including
// i itself.
func (g *gridIndex) neighbors(i int) []int {
	p := g.points[i]
	eps2 := g.eps * g.eps
	var out []int
	off := make([]int64, g.dim)
	var walk func(d int)
	walk = func(d int) {
		if d == g.dim {
			for _, j := range g.cells[g.cellKey(p, off)] {
				if dist2(p, g.points[j]) <= eps2 {
					out = append(out, j)
				}
			}
			return
		}
		for _, o := range [3]int64{-1, 0, 1} {
			off[d] = o
			walk(d + 1)
		}
	}
	walk(0)
	return out
}

func dist2(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}
