// Package cluster implements density-based clustering of computation
// bursts, following the burst-clustering methodology the paper builds on:
// bursts are characterized by aggregate metrics (log duration, log
// completed instructions, IPC), min-max normalized, and grouped with
// DBSCAN so that each resulting cluster corresponds to one repeated
// computation phase of the application. A k-means baseline and cluster
// quality metrics (silhouette) are provided for comparison and reporting.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/parallel"
)

// Noise is the assignment id DBSCAN gives to points in no cluster.
const Noise = 0

// maxGridDim bounds the dimensionality the grid index supports: a probe
// inspects 3^dim cells, so past a handful of dimensions the grid is
// worthless anyway and DBSCANP falls back to brute-force neighbor scans.
const maxGridDim = 16

// DBSCAN clusters points (rows of equal dimension) with parameters eps
// (neighborhood radius, Euclidean) and minPts (minimum neighborhood size
// including the point itself to be a core point). The result assigns
// cluster ids 1..K in discovery order and Noise (0) to noise points.
//
// A uniform grid with cell side eps indexes the points, so neighborhood
// queries inspect only 3^d adjacent cells; with the 2-3 dimensional,
// min-max-normalized spaces used for bursts this makes DBSCAN near-linear.
func DBSCAN(points [][]float64, eps float64, minPts int) []int {
	return DBSCANP(points, eps, minPts, 0)
}

// DBSCANP is DBSCAN with an explicit worker bound (0 = GOMAXPROCS). The
// per-point neighbor lists — the dominant cost — are precomputed
// concurrently against the read-only grid index into a CSR adjacency
// (one counting pass, one fill pass, both chunk-parallel); the
// cluster-expansion pass that consumes them is inherently sequential
// (its queue order defines the cluster ids) and walks the precomputed
// lists, so the assignment is identical to the sequential algorithm's
// for every worker count. The CSR arrays and the expansion queue come
// from pooled buffers and every neighbor query appends into
// preallocated storage, so the precompute pass allocates nothing in
// steady state beyond the grid's own hash table.
func DBSCANP(points [][]float64, eps float64, minPts, parallelism int) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	if eps <= 0 {
		panic(fmt.Sprintf("cluster: non-positive eps %g", eps))
	}
	if minPts < 1 {
		panic(fmt.Sprintf("cluster: minPts %d < 1", minPts))
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			panic(fmt.Sprintf("cluster: point %d has dimension %d, want %d", i, len(p), dim))
		}
	}

	var grid *NeighborGrid
	if dim <= maxGridDim {
		grid = NewNeighborGrid(points, eps)
	}

	// Pass 1: per-point neighbor counts (including the point itself).
	counts := parallel.GetInt32(n)
	defer parallel.PutInt32(counts)
	parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if grid != nil {
				counts[i] = int32(grid.Count(i))
			} else {
				counts[i] = int32(bruteNeighborCount(points, i, eps))
			}
		}
	})

	// Prefix sums → CSR offsets; pass 2 fills the flat adjacency.
	offsets := parallel.GetInt(n + 1)
	defer parallel.PutInt(offsets)
	offsets[0] = 0
	for i := 0; i < n; i++ {
		offsets[i+1] = offsets[i] + int(counts[i])
	}
	adj := parallel.GetInt32(offsets[n])
	defer parallel.PutInt32(adj)
	parallel.ForEachChunk(n, parallelism, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out := adj[offsets[i]:offsets[i]:offsets[i+1]]
			if grid != nil {
				grid.Append(i, out)
			} else {
				bruteNeighborAppend(points, i, eps, out)
			}
		}
	})

	assign := make([]int, n) // 0 = unvisited/noise
	visited := make([]bool, n)
	nextCluster := 0
	queue := parallel.GetInt32(0)
	defer parallel.PutInt32(queue)

	for i := 0; i < n; i++ {
		if visited[i] {
			continue
		}
		visited[i] = true
		if offsets[i+1]-offsets[i] < minPts {
			continue // noise (may be claimed by a cluster later)
		}
		nextCluster++
		assign[i] = nextCluster
		queue = append(queue[:0], adj[offsets[i]:offsets[i+1]]...)
		for qi := 0; qi < len(queue); qi++ {
			j := int(queue[qi])
			if !visited[j] {
				visited[j] = true
				if offsets[j+1]-offsets[j] >= minPts {
					queue = append(queue, adj[offsets[j]:offsets[j+1]]...)
				}
			}
			if assign[j] == Noise {
				assign[j] = nextCluster
			}
		}
	}
	return assign
}

// NeighborGrid is the spatial index behind DBSCAN's neighborhood
// queries: points hashed into uniform cells of side eps, cell
// coordinates kept as packed int64 vectors in an open-addressing table
// (power-of-two sized, linear probing, load factor <= 1/2), and the
// points of each cell chained through a single next[] array — no
// per-cell allocation, no string keys. Queries probe the 3^dim cells
// adjacent to the query point's cell; Append writes matches into a
// caller-provided buffer, so steady-state queries are allocation-free.
// The index is immutable after construction and safe for concurrent
// queries.
type NeighborGrid struct {
	points [][]float64
	eps    float64
	dim    int
	mask   uint32
	coords []int64 // cell coordinates per slot (dim values each)
	head   []int32 // first point of the slot's chain; -1 = empty slot
	next   []int32 // next point in the same cell; -1 = end of chain
	pow3   int
}

// NewNeighborGrid indexes points into eps-cells. All points must share
// one dimension, which must not exceed maxGridDim (16); eps must be
// positive.
func NewNeighborGrid(points [][]float64, eps float64) *NeighborGrid {
	g := &NeighborGrid{points: points, eps: eps}
	if len(points) == 0 {
		return g
	}
	g.dim = len(points[0])
	if g.dim > maxGridDim {
		panic(fmt.Sprintf("cluster: NeighborGrid dimension %d exceeds %d", g.dim, maxGridDim))
	}
	g.pow3 = 1
	for d := 0; d < g.dim; d++ {
		g.pow3 *= 3
	}
	size := 8
	for size < 2*len(points) {
		size <<= 1
	}
	g.mask = uint32(size - 1)
	g.coords = make([]int64, size*g.dim)
	g.head = make([]int32, size)
	for i := range g.head {
		g.head[i] = -1
	}
	g.next = make([]int32, len(points))
	// Insert in descending index order, prepending to each cell's chain,
	// so chains list their points in ascending index order.
	var cbuf [maxGridDim]int64
	for i := len(points) - 1; i >= 0; i-- {
		g.cellCoords(points[i], cbuf[:g.dim])
		slot := g.findOrInsert(cbuf[:g.dim])
		g.next[i] = g.head[slot]
		g.head[slot] = int32(i)
	}
	return g
}

// cellCoords writes the integer cell coordinates of p into out.
func (g *NeighborGrid) cellCoords(p []float64, out []int64) {
	for d := range out {
		out[d] = int64(math.Floor(p[d] / g.eps))
	}
}

// hashCells mixes a cell coordinate vector into a table hash
// (splitmix64-style finalizer per coordinate).
func hashCells(cs []int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, c := range cs {
		x := uint64(c) + h
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		h = x ^ (x >> 31)
	}
	return h
}

// findOrInsert returns the table slot for cell cs, claiming an empty
// slot (and recording the coordinates) on first sight. Build-time only.
func (g *NeighborGrid) findOrInsert(cs []int64) uint32 {
	slot := uint32(hashCells(cs)) & g.mask
	for {
		if g.head[slot] == -1 {
			copy(g.coords[int(slot)*g.dim:], cs)
			return slot
		}
		if g.slotMatches(slot, cs) {
			return slot
		}
		slot = (slot + 1) & g.mask
	}
}

// find returns the first point of cell cs's chain, or -1 when the cell
// is unoccupied.
func (g *NeighborGrid) find(cs []int64) int32 {
	slot := uint32(hashCells(cs)) & g.mask
	for {
		h := g.head[slot]
		if h == -1 {
			return -1
		}
		if g.slotMatches(slot, cs) {
			return h
		}
		slot = (slot + 1) & g.mask
	}
}

func (g *NeighborGrid) slotMatches(slot uint32, cs []int64) bool {
	stored := g.coords[int(slot)*g.dim : int(slot+1)*g.dim]
	for d := range cs {
		if stored[d] != cs[d] {
			return false
		}
	}
	return true
}

// Count returns how many points lie within eps of points[i], including
// i itself. Allocation-free.
func (g *NeighborGrid) Count(i int) int {
	p := g.points[i]
	eps2 := g.eps * g.eps
	var base, cur [maxGridDim]int64
	g.cellCoords(p, base[:g.dim])
	n := 0
	for c := 0; c < g.pow3; c++ {
		x := c
		for d := 0; d < g.dim; d++ {
			cur[d] = base[d] + int64(x%3) - 1
			x /= 3
		}
		for j := g.find(cur[:g.dim]); j != -1; j = g.next[j] {
			if dist2(p, g.points[j]) <= eps2 {
				n++
			}
		}
	}
	return n
}

// Append appends the indices of all points within eps of points[i]
// (including i itself) to out and returns the extended slice. With
// sufficient capacity in out the query performs no allocation.
func (g *NeighborGrid) Append(i int, out []int32) []int32 {
	p := g.points[i]
	eps2 := g.eps * g.eps
	var base, cur [maxGridDim]int64
	g.cellCoords(p, base[:g.dim])
	for c := 0; c < g.pow3; c++ {
		x := c
		for d := 0; d < g.dim; d++ {
			cur[d] = base[d] + int64(x%3) - 1
			x /= 3
		}
		for j := g.find(cur[:g.dim]); j != -1; j = g.next[j] {
			if dist2(p, g.points[j]) <= eps2 {
				out = append(out, j)
			}
		}
	}
	return out
}

// bruteNeighborCount and bruteNeighborAppend are the O(n) per-query
// fallback for dimensions beyond maxGridDim.
func bruteNeighborCount(points [][]float64, i int, eps float64) int {
	eps2 := eps * eps
	n := 0
	for j := range points {
		if dist2(points[i], points[j]) <= eps2 {
			n++
		}
	}
	return n
}

func bruteNeighborAppend(points [][]float64, i int, eps float64, out []int32) []int32 {
	eps2 := eps * eps
	for j := range points {
		if dist2(points[i], points[j]) <= eps2 {
			out = append(out, int32(j))
		}
	}
	return out
}

func dist2(a, b []float64) float64 {
	var s float64
	for d := range a {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}
