package cluster_test

import (
	"fmt"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/trace"
)

// ExampleClusterBursts discovers the structure of a burst population with
// two kinds of computation: many long compute-dense bursts and many short
// memory-bound ones.
func ExampleClusterBursts() {
	var bursts []burst.Burst
	for i := 0; i < 50; i++ {
		var d counters.Values
		d[counters.TotIns] = 40_000_000 + int64(i)*10_000
		d[counters.TotCyc] = 10_000_000
		bursts = append(bursts, burst.Burst{
			Rank:  int32(i % 4),
			Start: trace.Time(i * 10_000_000),
			End:   trace.Time(i*10_000_000 + 4_000_000),
			Delta: d,
		})
		var s counters.Values
		s[counters.TotIns] = 500_000 + int64(i)*1_000
		s[counters.TotCyc] = 1_250_000
		bursts = append(bursts, burst.Burst{
			Rank:  int32(i % 4),
			Start: trace.Time(i*10_000_000 + 4_500_000),
			End:   trace.Time(i*10_000_000 + 5_000_000),
			Delta: s,
		})
	}
	res := cluster.ClusterBursts(bursts, cluster.Config{UseIPC: true})
	fmt.Printf("clusters: %d\n", res.K)
	fmt.Printf("cluster of a long burst: %d\n", bursts[0].Cluster)
	fmt.Printf("cluster of a short burst: %d\n", bursts[1].Cluster)
	// Output:
	// clusters: 2
	// cluster of a long burst: 1
	// cluster of a short burst: 2
}
