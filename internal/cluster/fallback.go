package cluster

import (
	"sort"

	"repro/internal/burst"
)

// QuantileFallback is the degraded-mode substitute for DBSCAN: it splits
// bursts into at most parts groups at duration-quantile boundaries, so an
// analysis whose density clustering degenerates to zero clusters (sparse
// salvaged data, pathological eps) still yields a usable phase structure
// instead of an empty report. Groups are renumbered 1..K by decreasing
// total burst time — the same contract as ClusterBursts — and every burst
// is assigned (no noise). Eps/MinPts are zero and Silhouette is left 0
// (not computed): the fallback makes no density claim.
func QuantileFallback(bursts []burst.Burst, parts int) Result {
	if parts < 2 {
		parts = 2
	}
	res := Result{}
	n := len(bursts)
	if n == 0 {
		return res
	}

	durs := make([]float64, n)
	for i := range bursts {
		durs[i] = float64(bursts[i].Duration())
	}
	sorted := append([]float64(nil), durs...)
	sort.Float64s(sorted)

	// Quantile edges; duplicates collapse so identical durations never
	// straddle a boundary (and K shrinks accordingly).
	edges := make([]float64, 0, parts-1)
	for q := 1; q < parts; q++ {
		e := sorted[q*n/parts]
		if len(edges) == 0 || e > edges[len(edges)-1] {
			edges = append(edges, e)
		}
	}

	raw := make([]int, n)
	for i, d := range durs {
		g := 0
		for _, e := range edges {
			if d >= e {
				g++
			}
		}
		raw[i] = g
	}

	// Rank groups by total time, renumber 1..K (ClusterBursts contract).
	totals := map[int]int64{}
	for i, g := range raw {
		totals[g] += int64(bursts[i].Duration())
	}
	ids := make([]int, 0, len(totals))
	for id := range totals {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		if totals[ids[a]] != totals[ids[b]] {
			return totals[ids[a]] > totals[ids[b]]
		}
		return ids[a] < ids[b]
	})
	remap := make(map[int]int, len(ids))
	for newID, oldID := range ids {
		remap[oldID] = newID + 1
	}
	res.Assign = make([]int, n)
	for i, g := range raw {
		res.Assign[i] = remap[g]
		bursts[i].Cluster = remap[g]
	}
	res.K = len(ids)
	res.Features = Features(bursts, false)
	return res
}
