package cluster

import (
	"testing"

	"repro/internal/burst"
	"repro/internal/trace"
)

func fallbackBursts(durations []int64) []burst.Burst {
	bs := make([]burst.Burst, len(durations))
	for i, d := range durations {
		bs[i].Rank = 0
		bs[i].Start = 0
		bs[i].End = trace.Time(d)
	}
	return bs
}

func TestQuantileFallbackSplitsByDuration(t *testing.T) {
	bs := fallbackBursts([]int64{10, 12, 11, 1000, 1100, 1050})
	res := QuantileFallback(bs, 2)
	if res.K != 2 {
		t.Fatalf("K = %d, want 2", res.K)
	}
	// The long-duration group dominates total time, so it must be
	// cluster 1; all bursts are assigned (no noise).
	for i, a := range res.Assign {
		if a == Noise {
			t.Fatalf("burst %d left as noise", i)
		}
		if a != bs[i].Cluster {
			t.Fatalf("Assign[%d]=%d but bursts[%d].Cluster=%d", i, a, i, bs[i].Cluster)
		}
	}
	for i, d := range []int64{10, 12, 11} {
		_ = d
		if res.Assign[i] != 2 {
			t.Errorf("short burst %d assigned %d, want 2", i, res.Assign[i])
		}
	}
	for i := 3; i < 6; i++ {
		if res.Assign[i] != 1 {
			t.Errorf("long burst %d assigned %d, want 1", i, res.Assign[i])
		}
	}
	if res.Silhouette != 0 {
		t.Errorf("fallback silhouette = %v, want 0 (not computed)", res.Silhouette)
	}
}

func TestQuantileFallbackUniformDurations(t *testing.T) {
	// Identical durations collapse every quantile edge: one group.
	bs := fallbackBursts([]int64{50, 50, 50, 50})
	res := QuantileFallback(bs, 3)
	if res.K != 1 {
		t.Fatalf("K = %d, want 1", res.K)
	}
	for i, a := range res.Assign {
		if a != 1 {
			t.Fatalf("Assign[%d] = %d, want 1", i, a)
		}
	}
}

func TestQuantileFallbackEmpty(t *testing.T) {
	res := QuantileFallback(nil, 2)
	if res.K != 0 || len(res.Assign) != 0 {
		t.Fatalf("empty fallback: %+v", res)
	}
}
