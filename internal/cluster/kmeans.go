package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
)

// KMeans clusters points into k groups with Lloyd's algorithm and
// k-means++ seeding, as the baseline the burst-clustering line of work
// compares DBSCAN against (k-means needs k a priori and splits non-convex
// phases, which is why DBSCAN won). Ids are 1..k; every point is assigned
// (k-means has no noise concept). The run is deterministic given seed.
func KMeans(points [][]float64, k int, seed uint64, maxIter int) []int {
	n := len(points)
	if n == 0 {
		return nil
	}
	if k < 1 {
		panic(fmt.Sprintf("cluster: k = %d < 1", k))
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 100
	}
	dim := len(points[0])
	rng := rand.New(rand.NewPCG(seed, 0x6b6d65616e73)) // "kmeans"

	// k-means++ seeding.
	centers := make([][]float64, 0, k)
	first := rng.IntN(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	minD := make([]float64, n)
	for i := range minD {
		minD[i] = dist2(points[i], centers[0])
	}
	for len(centers) < k {
		var total float64
		for _, d := range minD {
			total += d
		}
		var pick int
		if total <= 0 {
			pick = rng.IntN(n)
		} else {
			r := rng.Float64() * total
			acc := 0.0
			for i, d := range minD {
				acc += d
				if acc >= r {
					pick = i
					break
				}
			}
		}
		c := append([]float64(nil), points[pick]...)
		centers = append(centers, c)
		for i := range minD {
			if d := dist2(points[i], c); d < minD[i] {
				minD[i] = d
			}
		}
	}

	assign := make([]int, n)
	counts := make([]int, k)
	sums := make([][]float64, k)
	for c := range sums {
		sums[c] = make([]float64, dim)
	}
	for iter := 0; iter < maxIter; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c, ctr := range centers {
				if d := dist2(p, ctr); d < bestD {
					bestD, best = d, c
				}
			}
			if assign[i] != best+1 {
				assign[i] = best + 1
				changed = true
			}
		}
		if !changed && iter > 0 {
			break
		}
		for c := range centers {
			counts[c] = 0
			for d := range sums[c] {
				sums[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i] - 1
			counts[c]++
			for d := range p {
				sums[c][d] += p[d]
			}
		}
		for c := range centers {
			if counts[c] == 0 {
				continue // keep the old center for empty clusters
			}
			for d := range centers[c] {
				centers[c][d] = sums[c][d] / float64(counts[c])
			}
		}
	}
	return assign
}
