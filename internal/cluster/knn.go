// k-nearest-neighbor search for the clustering parameter kernels.
//
// AutoEps's k-dist scan is the wall-time gatekeeper of the whole
// pipeline: brute force it is O(n²) distance evaluations, which PR 1
// could only spread across cores. The k-d tree here gives the same
// k-dist values exactly — the bounded max-heap tracks squared distances
// and sqrt is monotone, so the k-th-nearest distance is bit-identical to
// the brute-force reference — while visiting O(log n + k) points per
// query on the low-dimensional, min-max-normalized burst feature spaces.
package cluster

import (
	"fmt"
	"math"
)

// KDTree is a balanced k-d tree over a fixed point set, built once and
// queried for exact k-nearest-neighbor distances. The tree is laid out
// implicitly in a permutation of the point indices: the node of the
// subtree spanning idx[lo:hi) sits at the middle slot, with its
// splitting axis (the axis of maximum spread, ties to the lowest axis)
// recorded per node. Construction is deterministic — coordinate ties
// break on point index — so identical inputs always build identical
// trees. Queries are read-only and safe for concurrent use.
type KDTree struct {
	// Exactly one of the two storages is set: rows references the
	// caller's per-point slices (NewKDTree), coords is one row-major
	// array of n*dim values (NewKDTreeFlat). Neither is ever copied.
	rows   [][]float64
	coords []float64
	dim    int
	idx    []int32
	axes   []int8
}

// NewKDTree builds the tree in O(n log n). The points are referenced,
// not copied, and must not be mutated while the tree is in use.
func NewKDTree(points [][]float64) *KDTree {
	t := &KDTree{rows: points}
	if len(points) == 0 {
		return t
	}
	t.dim = len(points[0])
	t.finish(len(points))
	return t
}

// NewKDTreeFlat builds the tree over a row-major coordinate array of
// len(coords)/dim points — the bulk-load entry point for columnar
// feature matrices. coords is referenced, not copied, and must not be
// mutated while the tree is in use.
func NewKDTreeFlat(coords []float64, dim int) *KDTree {
	t := &KDTree{coords: coords, dim: dim}
	if len(coords) == 0 || dim <= 0 {
		t.coords, t.dim = nil, 0
		return t
	}
	t.finish(len(coords) / dim)
	return t
}

// finish allocates the index/axis permutation for n points and builds.
func (t *KDTree) finish(n int) {
	t.idx = make([]int32, n)
	for i := range t.idx {
		t.idx[i] = int32(i)
	}
	t.axes = make([]int8, n)
	t.build(0, n)
}

// at returns point j's coordinates. The storage branch is taken the same
// way for the life of a tree, so it predicts perfectly in query loops.
func (t *KDTree) at(j int32) []float64 {
	if t.rows != nil {
		return t.rows[j]
	}
	o := int(j) * t.dim
	return t.coords[o : o+t.dim]
}

// coord returns coordinate d of point j.
func (t *KDTree) coord(j int32, d int) float64 {
	if t.rows != nil {
		return t.rows[j][d]
	}
	return t.coords[int(j)*t.dim+d]
}

// build recursively partitions idx[lo:hi): the median point along the
// range's max-spread axis lands at the middle slot, smaller points to
// its left, larger to its right. The right half is handled by the loop
// so recursion depth stays O(log n) even on adversarial inputs.
func (t *KDTree) build(lo, hi int) {
	for hi-lo > 1 {
		axis := t.spreadAxis(lo, hi)
		mid := (lo + hi) / 2
		t.selectNth(lo, hi, mid, axis)
		t.axes[mid] = int8(axis)
		t.build(lo, mid)
		lo = mid + 1
	}
}

// spreadAxis returns the axis with the largest coordinate spread over
// idx[lo:hi), preferring the lowest axis on ties.
func (t *KDTree) spreadAxis(lo, hi int) int {
	best, bestSpread := 0, math.Inf(-1)
	for d := 0; d < t.dim; d++ {
		mn, mx := math.Inf(1), math.Inf(-1)
		for _, j := range t.idx[lo:hi] {
			v := t.coord(j, d)
			if v < mn {
				mn = v
			}
			if v > mx {
				mx = v
			}
		}
		if s := mx - mn; s > bestSpread {
			best, bestSpread = d, s
		}
	}
	return best
}

// less orders points by coordinate on axis, breaking ties by index so
// the ordering is total and the build deterministic.
func (t *KDTree) less(a, b int32, axis int) bool {
	va, vb := t.coord(a, axis), t.coord(b, axis)
	if va != vb {
		return va < vb
	}
	return a < b
}

// selectNth partially orders idx[lo:hi) so that slot nth holds its
// rank-nth element under less — quickselect with a median-of-three
// pivot, falling back to insertion sort on small ranges.
func (t *KDTree) selectNth(lo, hi, nth, axis int) {
	idx := t.idx
	for hi-lo > 8 {
		mid := lo + (hi-lo)/2
		if t.less(idx[mid], idx[lo], axis) {
			idx[mid], idx[lo] = idx[lo], idx[mid]
		}
		if t.less(idx[hi-1], idx[lo], axis) {
			idx[hi-1], idx[lo] = idx[lo], idx[hi-1]
		}
		if t.less(idx[hi-1], idx[mid], axis) {
			idx[hi-1], idx[mid] = idx[mid], idx[hi-1]
		}
		pivot := idx[hi-1]
		store := lo
		for i := lo; i < hi-1; i++ {
			if t.less(idx[i], pivot, axis) {
				idx[i], idx[store] = idx[store], idx[i]
				store++
			}
		}
		idx[store], idx[hi-1] = idx[hi-1], idx[store]
		switch {
		case nth == store:
			return
		case nth < store:
			hi = store
		default:
			lo = store + 1
		}
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && t.less(idx[j], idx[j-1], axis); j-- {
			idx[j], idx[j-1] = idx[j-1], idx[j]
		}
	}
}

// KNearestDist returns the Euclidean distance from points[i] to its k-th
// nearest other point (1 <= k < n). scratch, when it has capacity >= k,
// is used as the candidate heap so steady-state queries allocate
// nothing. The result is exact: subtrees are pruned only when every
// point they could hold is provably at least as far as the current k-th
// candidate, so the returned distance is bit-identical to sorting all
// n-1 distances and taking the k-th.
func (t *KDTree) KNearestDist(i, k int, scratch []float64) float64 {
	n := len(t.idx)
	if k < 1 || k >= n {
		panic(fmt.Sprintf("cluster: KNearestDist k=%d outside [1, %d)", k, n))
	}
	var heap []float64
	if cap(scratch) >= k {
		heap = scratch[:0]
	} else {
		heap = make([]float64, 0, k)
	}
	heap = t.knnRange(0, n, t.at(int32(i)), int32(i), k, heap)
	return math.Sqrt(heap[0])
}

// knnRange descends the subtree over idx[lo:hi), keeping the k smallest
// squared distances to p (excluding point skip) in a bounded max-heap.
// The near child is searched first so the heap bound tightens before the
// far child's pruning test.
func (t *KDTree) knnRange(lo, hi int, p []float64, skip int32, k int, heap []float64) []float64 {
	mid := (lo + hi) / 2
	j := t.idx[mid]
	if j != skip {
		heap = pushBounded(heap, dist2(p, t.at(j)), k)
	}
	if hi-lo == 1 {
		return heap
	}
	axis := int(t.axes[mid])
	delta := p[axis] - t.coord(j, axis)
	nearLo, nearHi, farLo, farHi := lo, mid, mid+1, hi
	if delta > 0 {
		nearLo, nearHi, farLo, farHi = mid+1, hi, lo, mid
	}
	if nearLo < nearHi {
		heap = t.knnRange(nearLo, nearHi, p, skip, k, heap)
	}
	if farLo < farHi && (len(heap) < k || delta*delta < heap[0]) {
		heap = t.knnRange(farLo, farHi, p, skip, k, heap)
	}
	return heap
}

// pushBounded inserts v into the max-heap h keeping only the k smallest
// values; h[0] is the largest retained value (the running k-th
// smallest). Values equal to the current maximum are dropped — they
// cannot change the k-th order statistic.
func pushBounded(h []float64, v float64, k int) []float64 {
	if len(h) < k {
		h = append(h, v)
		c := len(h) - 1
		for c > 0 {
			parent := (c - 1) / 2
			if h[parent] >= h[c] {
				break
			}
			h[parent], h[c] = h[c], h[parent]
			c = parent
		}
		return h
	}
	if v >= h[0] {
		return h
	}
	h[0] = v
	c := 0
	for {
		l := 2*c + 1
		if l >= len(h) {
			break
		}
		big := l
		if r := l + 1; r < len(h) && h[r] > h[l] {
			big = r
		}
		if h[c] >= h[big] {
			break
		}
		h[c], h[big] = h[big], h[c]
		c = big
	}
	return h
}

// quantileSelect returns the value at sorted rank nth (0-based) of xs,
// partially reordering xs in place — an O(n) alternative to a full sort
// for a single order statistic. The three-way partition keeps masses of
// duplicate values (all-identical k-dists from duplicate points) linear
// instead of degrading quadratically. nth is clamped to [0, len(xs)-1];
// xs must be non-empty and free of NaNs.
func quantileSelect(xs []float64, nth int) float64 {
	lo, hi := 0, len(xs)
	if nth < 0 {
		nth = 0
	}
	if nth > len(xs)-1 {
		nth = len(xs) - 1
	}
	for hi-lo > 8 {
		pivot := median3(xs[lo], xs[lo+(hi-lo)/2], xs[hi-1])
		lt, i, gt := lo, lo, hi
		for i < gt {
			switch {
			case xs[i] < pivot:
				xs[i], xs[lt] = xs[lt], xs[i]
				lt++
				i++
			case xs[i] > pivot:
				gt--
				xs[i], xs[gt] = xs[gt], xs[i]
			default:
				i++
			}
		}
		switch {
		case nth < lt:
			hi = lt
		case nth >= gt:
			lo = gt
		default:
			return pivot
		}
	}
	for i := lo + 1; i < hi; i++ {
		for j := i; j > lo && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
	return xs[nth]
}

// median3 returns the median of three values.
func median3(a, b, c float64) float64 {
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}
