package cluster

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

// Property tests: the indexed kernels must agree with their brute-force
// references on randomized inputs (fixed seeds). `make check` runs these
// explicitly in addition to the ordinary test pass.

// propPoints generates a randomized point set mixing dense blobs,
// uniform background noise, and exact duplicates — the shapes that break
// naive spatial indexes (ties, empty cells, heavy cells).
func propPoints(rng *rand.Rand, n, dim int) [][]float64 {
	pts := make([][]float64, 0, n)
	for len(pts) < n {
		switch rng.IntN(4) {
		case 0: // uniform background
			p := make([]float64, dim)
			for d := range p {
				p[d] = rng.Float64()
			}
			pts = append(pts, p)
		case 1, 2: // dense blob
			c := make([]float64, dim)
			for d := range c {
				c[d] = rng.Float64()
			}
			m := 1 + rng.IntN(20)
			for j := 0; j < m && len(pts) < n; j++ {
				p := make([]float64, dim)
				for d := range p {
					p[d] = c[d] + 0.02*rng.NormFloat64()
				}
				pts = append(pts, p)
			}
		case 3: // exact duplicates
			p := make([]float64, dim)
			for d := range p {
				p[d] = rng.Float64()
			}
			m := 1 + rng.IntN(5)
			for j := 0; j < m && len(pts) < n; j++ {
				pts = append(pts, p)
			}
		}
	}
	return pts
}

// bruteKDist is the O(n) reference: sort all distances from point i and
// take the k-th.
func bruteKDist(pts [][]float64, i, k int) float64 {
	dists := make([]float64, 0, len(pts)-1)
	for j := range pts {
		if j != i {
			dists = append(dists, math.Sqrt(dist2(pts[i], pts[j])))
		}
	}
	sort.Float64s(dists)
	return dists[k-1]
}

func TestKNNPropertyMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 7))
	for trial := 0; trial < 15; trial++ {
		n := 30 + rng.IntN(250)
		dim := 1 + rng.IntN(3)
		pts := propPoints(rng, n, dim)
		tree := NewKDTree(pts)
		scratch := make([]float64, 0, 16)
		for _, k := range []int{1, 2, 4, 9} {
			if k >= n {
				continue
			}
			for i := 0; i < n; i++ {
				want := bruteKDist(pts, i, k)
				got := tree.KNearestDist(i, k, scratch)
				if got != want {
					t.Fatalf("trial %d n=%d dim=%d: point %d k=%d: tree %.17g != brute %.17g",
						trial, n, dim, i, k, got, want)
				}
			}
		}
	}
}

func TestAutoEpsPropertyIndexedMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 13))
	for trial := 0; trial < 6; trial++ {
		// Above indexAutoMin so IndexAuto exercises the tree path too.
		n := indexAutoMin + rng.IntN(600)
		dim := 2 + rng.IntN(2)
		pts := propPoints(rng, n, dim)
		Normalize(pts)
		k := 2 + rng.IntN(5)
		want := AutoEpsMode(pts, k, 1, IndexBrute)
		for _, mode := range []IndexMode{IndexKDTree, IndexAuto} {
			for _, par := range []int{1, 3, 8} {
				if got := AutoEpsMode(pts, k, par, mode); got != want {
					t.Fatalf("trial %d n=%d dim=%d k=%d mode=%v par=%d: eps %.17g != brute %.17g",
						trial, n, dim, k, mode, par, got, want)
				}
			}
		}
	}
}

func TestNeighborGridPropertyMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 77))
	for trial := 0; trial < 12; trial++ {
		n := 20 + rng.IntN(200)
		dim := 1 + rng.IntN(3)
		pts := propPoints(rng, n, dim)
		eps := 0.02 + 0.3*rng.Float64()
		g := NewNeighborGrid(pts, eps)
		var buf []int32
		for i := 0; i < n; i++ {
			want := bruteNeighborAppend(pts, i, eps, nil)
			buf = g.Append(i, buf[:0])
			if g.Count(i) != len(buf) {
				t.Fatalf("trial %d: point %d Count %d != len(Append) %d", trial, i, g.Count(i), len(buf))
			}
			got := append([]int32(nil), buf...)
			sort.Slice(got, func(a, b int) bool { return got[a] < got[b] })
			if len(got) != len(want) {
				t.Fatalf("trial %d: point %d grid found %d neighbors, brute %d", trial, i, len(got), len(want))
			}
			for x := range got {
				if got[x] != want[x] {
					t.Fatalf("trial %d: point %d neighbor sets differ: grid %v brute %v", trial, i, got, want)
				}
			}
		}
	}
}

func TestSilhouettePropertySampled(t *testing.T) {
	pts, assign := blobs(4, 120, 3, 0.03, 17)
	Normalize(pts)
	exact := SilhouetteP(pts, assign, 1)

	// A sample bound at or above every cluster size must take the exact
	// path through the same code and reproduce the value bitwise.
	if full := SilhouetteSampled(pts, assign, 120, 1); full != exact {
		t.Fatalf("full-sample silhouette %.17g != exact %.17g", full, exact)
	}
	// A genuine subsample approximates the exact coefficient (documented
	// tolerance: a few percent at S >= 64 on blob-like clusters).
	sampled := SilhouetteSampled(pts, assign, 64, 1)
	if math.IsNaN(sampled) || sampled < -1 || sampled > 1 {
		t.Fatalf("sampled silhouette %.17g outside [-1, 1]", sampled)
	}
	if math.Abs(sampled-exact) > 0.05 {
		t.Fatalf("sampled silhouette %.6f deviates from exact %.6f by more than 0.05", sampled, exact)
	}
	// The sampled path must stay parallelism-invariant bitwise.
	for _, par := range []int{2, 3, 8} {
		if got := SilhouetteSampled(pts, assign, 64, par); got != sampled {
			t.Fatalf("p=%d: sampled silhouette %.17g != sequential %.17g", par, got, sampled)
		}
	}
}

func TestQuantileSelectPropertyMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewPCG(31, 3))
	for trial := 0; trial < 40; trial++ {
		n := 1 + rng.IntN(300)
		xs := make([]float64, n)
		for i := range xs {
			if rng.IntN(3) == 0 {
				xs[i] = float64(rng.IntN(4)) // masses of duplicates
			} else {
				xs[i] = rng.Float64()
			}
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		for _, nth := range []int{0, n / 2, n - 1, n * 99 / 100} {
			work := append([]float64(nil), xs...)
			if got := quantileSelect(work, nth); got != sorted[nth] {
				t.Fatalf("trial %d n=%d nth=%d: quickselect %.17g != sorted %.17g", trial, n, nth, got, sorted[nth])
			}
		}
	}
}

func TestQuantileSelectClamps(t *testing.T) {
	xs := []float64{3, 1, 2}
	if got := quantileSelect(append([]float64(nil), xs...), -5); got != 1 {
		t.Fatalf("clamped low rank = %g, want 1", got)
	}
	if got := quantileSelect(append([]float64(nil), xs...), 99); got != 3 {
		t.Fatalf("clamped high rank = %g, want 3", got)
	}
}

// TestAutoEpsTinyN guards the percentile index clamp and the k clamp on
// the smallest meaningful inputs, across every index mode.
func TestAutoEpsTinyN(t *testing.T) {
	for _, mode := range []IndexMode{IndexAuto, IndexBrute, IndexKDTree} {
		// n=2: k clamps to 1, percentile index 2*99/100 = 1 <= n-1.
		pts := [][]float64{{0, 0}, {3, 4}}
		if got := AutoEpsMode(pts, 5, 1, mode); got != 5 {
			t.Fatalf("mode %v: n=2 AutoEps = %g, want 5", mode, got)
		}
		// n=3 on a line: k=1 dists are {1,1,2}; index 2 → 2.
		pts = [][]float64{{0}, {1}, {3}}
		if got := AutoEpsMode(pts, 1, 1, mode); got != 2 {
			t.Fatalf("mode %v: n=3 AutoEps = %g, want 2", mode, got)
		}
	}
	// Degenerate inputs keep the documented fallbacks for every mode.
	for _, mode := range []IndexMode{IndexAuto, IndexBrute, IndexKDTree} {
		if got := AutoEpsMode(nil, 4, 1, mode); got != 0.1 {
			t.Fatalf("mode %v: empty AutoEps = %g, want 0.1", mode, got)
		}
		if got := AutoEpsMode([][]float64{{1}}, 4, 1, mode); got != 0.1 {
			t.Fatalf("mode %v: single-point AutoEps = %g, want 0.1", mode, got)
		}
	}
}

// TestDBSCANHighDimFallback drives the brute-force neighbor path used
// when the dimensionality exceeds what the grid probes.
func TestDBSCANHighDimFallback(t *testing.T) {
	dim := maxGridDim + 1
	var pts [][]float64
	for g := 0; g < 2; g++ {
		for j := 0; j < 6; j++ {
			p := make([]float64, dim)
			for d := range p {
				p[d] = float64(g)*10 + 0.01*float64(j)
			}
			pts = append(pts, p)
		}
	}
	assign := DBSCAN(pts, 1, 4)
	for i := 1; i < 6; i++ {
		if assign[i] != assign[0] || assign[i] == Noise {
			t.Fatalf("group 0 split: %v", assign)
		}
	}
	for i := 7; i < 12; i++ {
		if assign[i] != assign[6] || assign[i] == Noise {
			t.Fatalf("group 1 split: %v", assign)
		}
	}
	if assign[0] == assign[6] {
		t.Fatalf("distant groups merged: %v", assign)
	}
}

func TestParseIndexMode(t *testing.T) {
	for s, want := range map[string]IndexMode{
		"auto": IndexAuto, "": IndexAuto, "brute": IndexBrute,
		"kdtree": IndexKDTree, "kd": IndexKDTree, "tree": IndexKDTree,
	} {
		got, err := ParseIndexMode(s)
		if err != nil || got != want {
			t.Fatalf("ParseIndexMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseIndexMode("bogus"); err == nil {
		t.Fatal("expected error for unknown mode")
	}
}
