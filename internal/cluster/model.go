package cluster

import (
	"encoding/json"
	"fmt"
	"math"

	"repro/internal/burst"
	"repro/internal/trace"
)

// Model is a clustering made first-class: the artifact a coordinator
// trains once and broadcasts so every shard classifies bursts against
// the same phase definitions. It captures the effective DBSCAN
// parameters, the trained assignment as an exact raw-feature lookup
// (classifying a training burst returns its training label, bit for
// bit), and raw-space centroids as the generalization for bursts the
// training never saw. A Model serializes to stable JSON (Encode /
// DecodeModel) and merges with models trained independently on other
// shards (Merge).
type Model struct {
	// UseIPC records whether the third (IPC) feature dimension is active.
	UseIPC bool
	// K, Eps, MinPts and Silhouette mirror the training clustering's
	// Result fields.
	K          int
	Eps        float64
	MinPts     int
	Silhouette float64
	// Training retains the training bursts (with Cluster set) so Merge
	// can retrain exactly on the pooled set; Compact drops them.
	Training []burst.Burst
	// Centroids summarize each cluster in raw feature space for
	// classifying unseen bursts.
	Centroids []Centroid

	// idIndex recalls training bursts by identity ((Start, Rank) is a
	// strict total order over a trace's bursts), so classifying a burst
	// the model was trained on returns its training label bit for bit.
	// index recalls by raw feature vector for bursts that are numerically
	// identical to a training burst without being the same burst.
	idIndex map[burstKey]int
	index   map[[3]float64]int
}

// burstKey is a burst's identity within one trace.
type burstKey struct {
	start trace.Time
	rank  int32
}

// Centroid is one cluster's raw-feature-space summary.
type Centroid struct {
	// ID is the cluster id (1..K).
	ID int
	// Mean is the cluster's mean raw feature vector (log10 duration,
	// log10 instructions, IPC; the IPC slot is 0 when UseIPC is false).
	Mean [3]float64
	// Radius2 is the squared capture radius: the maximum squared distance
	// of a member from Mean, widened by a 2.25x slack factor.
	Radius2 float64
	// Count is the number of training bursts in the cluster.
	Count int
}

// centroidSlack widens each centroid's capture radius beyond its
// farthest training member, so near-miss bursts from other shards still
// land in the phase instead of degrading to noise.
const centroidSlack = 2.25

// rawFeature computes a burst's unnormalized feature vector — the same
// per-burst arithmetic as Features before min-max scaling, so it is a
// normalization-independent (and therefore shard-independent) key.
func rawFeature(b *burst.Burst, useIPC bool) [3]float64 {
	d := float64(b.Duration())
	if d < 1 {
		d = 1
	}
	ins := float64(b.Instructions())
	if ins < 1 {
		ins = 1
	}
	f := [3]float64{math.Log10(d), math.Log10(ins), 0}
	if useIPC {
		f[2] = b.IPC()
	}
	return f
}

// TrainModel clusters the given bursts (ClusterBursts on a private copy;
// the input is not mutated) and packages the outcome as a broadcastable
// Model.
func TrainModel(bursts []burst.Burst, cfg Config) *Model {
	train := append([]burst.Burst(nil), bursts...)
	res := ClusterBursts(train, cfg)
	m := &Model{
		UseIPC:     cfg.UseIPC,
		K:          res.K,
		Eps:        res.Eps,
		MinPts:     res.MinPts,
		Silhouette: res.Silhouette,
		Training:   train,
	}
	m.buildCentroids()
	m.buildIndex()
	return m
}

// buildCentroids derives per-cluster raw-space means and capture radii
// from the training bursts.
func (m *Model) buildCentroids() {
	m.Centroids = nil
	if m.K == 0 {
		return
	}
	sums := make([][3]float64, m.K+1)
	counts := make([]int, m.K+1)
	for i := range m.Training {
		id := m.Training[i].Cluster
		if id <= 0 || id > m.K {
			continue
		}
		f := rawFeature(&m.Training[i], m.UseIPC)
		for d := 0; d < 3; d++ {
			sums[id][d] += f[d]
		}
		counts[id]++
	}
	for id := 1; id <= m.K; id++ {
		if counts[id] == 0 {
			continue
		}
		var c Centroid
		c.ID = id
		c.Count = counts[id]
		for d := 0; d < 3; d++ {
			c.Mean[d] = sums[id][d] / float64(counts[id])
		}
		m.Centroids = append(m.Centroids, c)
	}
	for i := range m.Training {
		id := m.Training[i].Cluster
		for ci := range m.Centroids {
			if m.Centroids[ci].ID != id {
				continue
			}
			f := rawFeature(&m.Training[i], m.UseIPC)
			if d2 := dist3(f, m.Centroids[ci].Mean); d2 > m.Centroids[ci].Radius2 {
				m.Centroids[ci].Radius2 = d2
			}
		}
	}
	for ci := range m.Centroids {
		m.Centroids[ci].Radius2 *= centroidSlack
	}
}

// buildIndex (re)builds the exact-recall lookups from Training. For
// duplicate feature vectors the first occurrence wins, which is
// deterministic because training bursts are kept in canonical order;
// the identity index has no duplicates by construction.
func (m *Model) buildIndex() {
	m.idIndex, m.index = nil, nil
	if len(m.Training) == 0 {
		return
	}
	m.idIndex = make(map[burstKey]int, len(m.Training))
	m.index = make(map[[3]float64]int, len(m.Training))
	for i := range m.Training {
		b := &m.Training[i]
		m.idIndex[burstKey{b.Start, b.Rank}] = b.Cluster
		f := rawFeature(b, m.UseIPC)
		if _, ok := m.index[f]; !ok {
			m.index[f] = b.Cluster
		}
	}
}

func dist3(a, b [3]float64) float64 {
	var s float64
	for d := 0; d < 3; d++ {
		diff := a[d] - b[d]
		s += diff * diff
	}
	return s
}

// CentroidDist2 returns the squared raw-feature-space distance between
// two centroid means.
func CentroidDist2(a, b Centroid) float64 { return dist3(a.Mean, b.Mean) }

// MatchCentroid finds the nearest centroid in pool whose capture radius
// (or c's own) contains c's mean — the similarity rule Merge uses to
// decide that two independently trained clusters are the same phase.
// Entries for which skip returns true are ignored (nil skips nothing).
// It returns the pool index and squared distance, or (-1, +Inf) when no
// centroid captures c.
func MatchCentroid(c Centroid, pool []Centroid, skip func(int) bool) (int, float64) {
	best, bestD2 := -1, math.Inf(1)
	for i := range pool {
		if skip != nil && skip(i) {
			continue
		}
		d2 := dist3(c.Mean, pool[i].Mean)
		if d2 <= math.Max(c.Radius2, pool[i].Radius2) && d2 < bestD2 {
			best, bestD2 = i, d2
		}
	}
	return best, bestD2
}

// Classify maps a burst to a cluster id: a burst the model was trained
// on (same (Start, Rank) identity, or failing that the same raw feature
// vector) returns its training label exactly; otherwise the nearest
// centroid whose capture radius contains the burst wins; otherwise
// Noise. It does not mutate the burst.
func (m *Model) Classify(b *burst.Burst) int {
	if id, ok := m.idIndex[burstKey{b.Start, b.Rank}]; ok {
		return id
	}
	f := rawFeature(b, m.UseIPC)
	if id, ok := m.index[f]; ok {
		return id
	}
	best, bestD2 := Noise, math.Inf(1)
	for ci := range m.Centroids {
		d2 := dist3(f, m.Centroids[ci].Mean)
		if d2 <= m.Centroids[ci].Radius2 && d2 < bestD2 {
			best, bestD2 = m.Centroids[ci].ID, d2
		}
	}
	return best
}

// Compact drops the retained training bursts (and with them the exact
// lookups), leaving only the centroid summary — the form to broadcast
// when the training set is large. A compacted model classifies
// approximately and merges via centroid matching only.
func (m *Model) Compact() {
	m.Training = nil
	m.idIndex = nil
	m.index = nil
}

// Encode serializes the model to deterministic JSON. A NaN silhouette
// (fewer than 2 clusters) is encoded as a flag, since JSON has no NaN.
func (m *Model) Encode() ([]byte, error) {
	w := modelWire{
		UseIPC: m.UseIPC, K: m.K, Eps: m.Eps, MinPts: m.MinPts,
		Silhouette: m.Silhouette, Training: m.Training, Centroids: m.Centroids,
	}
	if math.IsNaN(w.Silhouette) {
		w.Silhouette, w.SilhouetteNaN = 0, true
	}
	return json.Marshal(w)
}

// DecodeModel deserializes a model produced by Encode and rebuilds its
// exact-match index.
func DecodeModel(data []byte) (*Model, error) {
	var w modelWire
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("cluster: decode model: %w", err)
	}
	m := &Model{
		UseIPC: w.UseIPC, K: w.K, Eps: w.Eps, MinPts: w.MinPts,
		Silhouette: w.Silhouette, Training: w.Training, Centroids: w.Centroids,
	}
	if w.SilhouetteNaN {
		m.Silhouette = math.NaN()
	}
	m.buildIndex()
	return m, nil
}

// modelWire is the stable serialized form of a Model.
type modelWire struct {
	UseIPC        bool
	K             int
	Eps           float64
	MinPts        int
	Silhouette    float64
	SilhouetteNaN bool          `json:",omitempty"`
	Training      []burst.Burst `json:",omitempty"`
	Centroids     []Centroid    `json:",omitempty"`
}

// Merge combines models trained independently on different shards. When
// every input retains its training bursts the merge is exact: the pools
// are concatenated, re-sorted into canonical order and retrained under
// cfg, which reproduces the single-pass clustering bit for bit (feature
// normalization runs over the full pooled set). When any input was
// compacted the merge degrades to centroid matching: centroids whose
// means fall within each other's capture radii are averaged together
// (count-weighted), the rest are appended as new clusters, and the
// silhouette becomes NaN because no pooled feature matrix exists.
func Merge(models []*Model, cfg Config) (*Model, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("cluster: no models to merge")
	}
	exact := true
	for _, m := range models {
		if m == nil {
			return nil, fmt.Errorf("cluster: nil model in merge")
		}
		if m.Training == nil {
			exact = false
		}
		if m.UseIPC != models[0].UseIPC {
			return nil, fmt.Errorf("cluster: merging models with different feature spaces")
		}
	}
	if exact {
		var pool []burst.Burst
		for _, m := range models {
			pool = append(pool, m.Training...)
		}
		burst.Sort(pool)
		return TrainModel(pool, cfg), nil
	}

	base := models[0]
	merged := &Model{
		UseIPC: base.UseIPC, Eps: base.Eps, MinPts: base.MinPts,
		Silhouette: math.NaN(),
		Centroids:  append([]Centroid(nil), base.Centroids...),
	}
	nextID := 0
	for _, c := range merged.Centroids {
		if c.ID > nextID {
			nextID = c.ID
		}
	}
	for _, m := range models[1:] {
		for _, c := range m.Centroids {
			bi, _ := MatchCentroid(c, merged.Centroids, nil)
			if bi < 0 {
				nextID++
				nc := c
				nc.ID = nextID
				merged.Centroids = append(merged.Centroids, nc)
				continue
			}
			t := &merged.Centroids[bi]
			total := float64(t.Count + c.Count)
			for d := 0; d < 3; d++ {
				t.Mean[d] = (t.Mean[d]*float64(t.Count) + c.Mean[d]*float64(c.Count)) / total
			}
			t.Count += c.Count
			t.Radius2 = math.Max(t.Radius2, c.Radius2)
		}
	}
	merged.K = len(merged.Centroids)
	return merged, nil
}
