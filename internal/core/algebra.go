// The mergeable-report algebra: analysis = Reduce(map(MapShard, shards)).
// MapShard runs the extraction half of the pipeline over one shard of a
// trace and captures everything mergeable in a Partial; Reduce folds the
// partials back together, resolves phases (by clustering the pooled
// bursts or classifying them against a broadcast cluster.Model) and
// assembles the public Report. Analyze, AnalyzeStream and the online
// path are thin compositions over this algebra; TestShardedEquivalence
// locks Reduce(MapShard...) deep-equal (bit-identical floats) with the
// single-pass path for any shard count.
package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/structure"
	"repro/internal/trace"
)

// Partial is one shard's mergeable analysis state: the kept burst set
// with attached samples, the flat-profile fragment, decode/degraded
// stats and the per-stage metrics. Exact-mode partials serialize to
// JSON (the foldsvc coordinator ships them between daemons); partials
// from the fused online path carry in-memory folding accumulators and
// must be reduced in-process.
type Partial struct {
	// Spec places the shard in its split; Reduce uses it to detect
	// missing shards when a degraded coordinator drops one.
	Spec ShardSpec
	// Meta is the shard's metadata (rank count and duration are the whole
	// trace's — shards share the virtual timeline).
	Meta trace.Metadata
	// Records counts the records this shard consumed, by kind.
	Records pipeline.RecordCounts
	// Bursts counts extracted (pre-filter) bursts; RankBursts the same
	// per rank, which Reduce uses to rebase Burst.Index across shards.
	Bursts     int
	RankBursts []int
	// KeptTime and AllTime are the burst-time sums behind the coverage
	// fraction, mergeable by addition.
	KeptTime, AllTime trace.Time
	// Kept holds the shard's surviving bursts in canonical (Start, Rank)
	// order; Attached holds, per kept burst, its samples.
	Kept     []burst.Burst
	Attached [][]trace.Sample
	// Marks holds per-rank iteration marker times.
	Marks map[int32][]trace.Time
	// Profile is the mergeable flat-profile fragment (nil on fused online
	// partials, which resolve the profile in the pipeline instead).
	Profile *profile.Partial
	// Decode summarizes what a lenient decode of this shard dropped.
	Decode *trace.DecodeStats `json:",omitempty"`
	// Warnings carries shard-local degradations in pipeline order.
	Warnings []string `json:",omitempty"`
	// Stages carries the shard's per-stage pipeline metrics.
	Stages []pipeline.Metrics

	// Online marks a fused single-shard partial from the bounded-memory
	// path. Its phases are already resolved: Clustering, TrainErr, the
	// folded snapshots in OnlinePhases and the finished profile travel
	// through instead of mergeable state. Online partials do not
	// serialize (fold accumulators hold error values and live samples);
	// Reduce accepts exactly one, in-process.
	Online        bool                  `json:",omitempty"`
	TrainErr      string                `json:",omitempty"`
	Clustering    *cluster.Result       `json:"-"`
	OnlineProfile *profile.Profile      `json:"-"`
	ProfileErr    string                `json:",omitempty"`
	OnlinePhases  []pipeline.PhaseFolds `json:"-"`
}

// MapShard extracts one shard's Partial from an in-memory shard (batch
// convenience over MapShardContext).
func MapShard(sh Shard, opts Options) (*Partial, error) {
	return MapShardContext(context.Background(), trace.NewTraceSource(sh.Trace), sh.Spec, opts)
}

// MapShardContext runs the map half of the analysis algebra over one
// shard's record stream: decode, burst extraction, duration filtering,
// sample attachment and the profile fragment — but no phase resolution,
// which belongs to Reduce where every shard's bursts are visible. With
// opts.Stream.Online set the spec must be the whole trace (Count 1) and
// the pipeline runs fused: the returned Partial carries the resolved
// online analysis for Reduce to assemble.
func MapShardContext(ctx context.Context, src trace.Source, spec ShardSpec, opts Options) (*Partial, error) {
	opts.setDefaults()
	cfg := opts.pipelineConfig()
	if opts.Stream.Online {
		if spec.Count > 1 {
			return nil, fmt.Errorf("core: online analysis cannot be sharded")
		}
	} else {
		cfg.Partial = true
		cfg.Resume = spec.Resume
	}
	out, err := pipeline.RunContext(ctx, src, cfg)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := &Partial{
		Spec:       spec,
		Meta:       out.Meta,
		Records:    out.Records,
		Bursts:     out.Bursts,
		RankBursts: out.RankBursts,
		KeptTime:   out.KeptTime,
		AllTime:    out.AllTime,
		Kept:       out.Kept,
		Attached:   out.Attached,
		Marks:      out.Marks,
		Profile:    out.ProfilePartial,
		Decode:     out.Decode,
		Warnings:   out.Warnings,
		Stages:     out.Stages,
	}
	if opts.Stream.Online {
		cl := out.Clustering
		p.Online = true
		p.TrainErr = out.TrainErr
		p.Clustering = &cl
		p.OnlineProfile = out.Profile
		p.ProfileErr = out.ProfileErr
		p.OnlinePhases = out.OnlinePhases
	}
	return p, nil
}

// TrainModelFromPartials trains a broadcastable cluster.Model on the
// pooled kept bursts of the given partials — the train-once step of the
// train-then-broadcast flow. Classifying the same partials' bursts
// against the returned model reproduces the pooled clustering exactly.
func TrainModelFromPartials(parts []*Partial, opts Options) (*cluster.Model, error) {
	opts.setDefaults()
	var pool []burst.Burst
	for _, p := range parts {
		if p == nil {
			continue
		}
		if p.Online {
			return nil, fmt.Errorf("core: cannot train a model from online partials")
		}
		pool = append(pool, p.Kept...)
	}
	burst.Sort(pool)
	cl := opts.Cluster
	if cl.Logger == nil {
		cl.Logger = opts.Logger
	}
	return cluster.TrainModel(pool, cl), nil
}

// Reduce folds shard partials into the final Report. With model == nil
// the pooled kept bursts are clustered from scratch (for a single
// whole-trace partial this reproduces the seed single-pass analysis bit
// for bit); with a model each burst is classified against it instead —
// the broadcast flow, which also reproduces the single-pass result
// exactly when the model was trained on these partials' pooled bursts.
// nil entries in parts (skipped shards) are ignored; Spec gaps among the
// survivors mark the report degraded only through what the caller adds —
// Reduce itself just withholds the cross-shard profile, whose boundary
// handoffs need every shard.
func Reduce(parts []*Partial, model *cluster.Model, opts Options) (*Report, error) {
	opts.setDefaults()
	alive := make([]*Partial, 0, len(parts))
	for _, p := range parts {
		if p != nil {
			alive = append(alive, p)
		}
	}
	if len(alive) == 0 {
		return nil, fmt.Errorf("core: no partials to reduce")
	}
	if alive[0].Online {
		if len(alive) != 1 {
			return nil, fmt.Errorf("core: online partials cannot be merged")
		}
		if model != nil {
			return nil, fmt.Errorf("core: online partials cannot be classified against a model")
		}
		return assemble(outcomeFromOnline(alive[0]), opts), nil
	}
	ranks := alive[0].Meta.Ranks
	for _, p := range alive {
		if p.Online {
			return nil, fmt.Errorf("core: cannot mix online and exact partials")
		}
		if p.Meta.Ranks != ranks {
			return nil, fmt.Errorf("core: partial rank counts differ (%d vs %d)", p.Meta.Ranks, ranks)
		}
	}
	out := mergePartials(alive, model, opts)
	return assemble(out, opts), nil
}

// mergePartials folds exact-mode partials into the pipeline.Outcome the
// report assembler consumes, resolving phases over the pooled bursts.
func mergePartials(parts []*Partial, model *cluster.Model, opts Options) *pipeline.Outcome {
	first := parts[0]
	ranks := first.Meta.Ranks
	out := &pipeline.Outcome{Meta: first.Meta}

	total := 0
	for _, p := range parts {
		total += len(p.Kept)
	}
	kept := make([]burst.Burst, 0, total)
	att := make([][]trace.Sample, 0, total)
	marks := map[int32][]trace.Time{}
	offsets := make([]int, ranks)
	var keptTime, allTime trace.Time
	var profs []*profile.Partial
	var decode *trace.DecodeStats

	for _, p := range parts {
		base := len(kept)
		kept = append(kept, p.Kept...)
		// Rebase shard-local burst indices to whole-trace per-rank indices.
		for i := base; i < len(kept); i++ {
			if r := int(kept[i].Rank); r >= 0 && r < ranks {
				kept[i].Index += offsets[r]
			}
		}
		if len(p.Attached) == len(p.Kept) {
			att = append(att, p.Attached...)
		} else {
			att = append(att, make([][]trace.Sample, len(p.Kept))...)
		}
		for r := 0; r < ranks && r < len(p.RankBursts); r++ {
			offsets[r] += p.RankBursts[r]
		}
		for r, ts := range p.Marks {
			marks[r] = append(marks[r], ts...)
		}
		out.Records.Events += p.Records.Events
		out.Records.Samples += p.Records.Samples
		out.Records.Comms += p.Records.Comms
		out.Bursts += p.Bursts
		keptTime += p.KeptTime
		allTime += p.AllTime
		if p.Profile != nil {
			profs = append(profs, p.Profile)
		}
		if p.Decode != nil {
			if decode == nil {
				decode = &trace.DecodeStats{}
			}
			decode.Add(*p.Decode)
		}
		out.Warnings = append(out.Warnings, p.Warnings...)
	}

	// Canonical (Start, Rank) order — a strict total order over a trace's
	// bursts, so the permutation (applied to bursts and their attached
	// samples together) is unique.
	sort.Sort(&keptByStartRank{kept, att})

	out.Kept = kept
	out.Attached = att
	out.KeptTime, out.AllTime = keptTime, allTime
	out.RankBursts = offsets
	out.Marks = marks
	if allTime > 0 {
		out.CoverageKept = float64(keptTime) / float64(allTime)
	}
	out.Iterations = structure.IterationsFromMarks(marks)
	out.Decode = decode
	out.Stages = mergeStages(parts)

	// Phase resolution over the pooled bursts: the reduce half of what
	// pipeline.finalize does in a single-pass run.
	cl := opts.Cluster
	if cl.Logger == nil {
		cl.Logger = opts.Logger
	}
	if len(kept) > 0 {
		if model != nil {
			assign := make([]int, len(kept))
			for i := range kept {
				id := model.Classify(&kept[i])
				kept[i].Cluster = id
				assign[i] = id
			}
			out.Clustering = cluster.Result{
				Assign: assign, K: model.K, Eps: model.Eps,
				MinPts: model.MinPts, Silhouette: model.Silhouette,
				Features: cluster.Features(kept, model.UseIPC),
			}
			if out.Clustering.K == 0 && opts.Lenient {
				reduceFallback(out, kept, "model classification found no phases", opts)
			}
		} else {
			out.Clustering = cluster.ClusterBursts(kept, cl)
			if out.Clustering.K == 0 && opts.Lenient {
				reduceFallback(out, kept, "clustering found no phases", opts)
			}
		}
		if len(out.Clustering.Assign) == len(kept) {
			out.ClusterTimeCoverage = cluster.ClusterTimeCoverage(kept, out.Clustering.Assign)
		}
		seqs := structure.Sequences(kept)
		out.Loops = structure.DetectLoops(seqs)
		out.SPMDScore = structure.SPMDScore(seqs)
	}
	patchClusterStage(out.Stages, kept)

	// The flat profile needs every shard: each boundary handoff (open MPI
	// call, carried compute baseline) is settled between neighbours.
	if covered(parts) && len(profs) == len(parts) {
		if prof, err := profile.Merge(profs, first.Meta.Duration); err == nil {
			out.Profile = prof
		} else {
			out.ProfileErr = err.Error()
		}
	} else {
		out.ProfileErr = "profile unavailable: not every shard survived"
	}
	return out
}

// reduceFallback mirrors the pipeline's lenient degraded-mode split when
// phase resolution at reduce time finds nothing.
func reduceFallback(out *pipeline.Outcome, kept []burst.Burst, why string, opts Options) {
	out.Clustering = cluster.QuantileFallback(kept, 2)
	out.Warnings = append(out.Warnings, fmt.Sprintf(
		"%s; fell back to a duration-quantile split (%d phases over %d bursts)",
		why, out.Clustering.K, len(kept)))
	if opts.Logger != nil {
		opts.Logger.Info("clustering fallback", "why", why,
			"phases", out.Clustering.K, "bursts", len(kept))
	}
}

// covered reports whether the partials form a complete split: specs
// 0..Count-1 all present, with a consistent count.
func covered(parts []*Partial) bool {
	count := parts[0].Spec.Count
	if count < 1 || len(parts) != count {
		return false
	}
	seen := make([]bool, count)
	for _, p := range parts {
		if p.Spec.Count != count || p.Spec.Index < 0 || p.Spec.Index >= count || seen[p.Spec.Index] {
			return false
		}
		seen[p.Spec.Index] = true
	}
	return true
}

// mergeStages sums per-stage metrics across shards (stage lists match —
// every shard ran the same stages). Wall keeps the slowest shard's time,
// since shards run concurrently; the patched cluster RecordsOut is
// filled by patchClusterStage after phase resolution.
func mergeStages(parts []*Partial) []pipeline.Metrics {
	merged := append([]pipeline.Metrics(nil), parts[0].Stages...)
	for _, p := range parts[1:] {
		if len(p.Stages) != len(merged) {
			continue
		}
		for i := range merged {
			merged[i].RecordsIn += p.Stages[i].RecordsIn
			merged[i].RecordsOut += p.Stages[i].RecordsOut
			merged[i].Bytes += p.Stages[i].Bytes
			if p.Stages[i].Wall > merged[i].Wall {
				merged[i].Wall = p.Stages[i].Wall
			}
		}
	}
	return merged
}

// patchClusterStage fills the cluster stage's RecordsOut — the non-noise
// burst count, which the map phase cannot know — after reduce-time phase
// resolution, matching what a single-pass run tallies in finalize.
func patchClusterStage(stages []pipeline.Metrics, kept []burst.Burst) {
	for i := range stages {
		if stages[i].Stage != "cluster" {
			continue
		}
		var n int64
		for j := range kept {
			if kept[j].Cluster != cluster.Noise {
				n++
			}
		}
		stages[i].RecordsOut = n
		return
	}
}

// outcomeFromOnline rebuilds the pipeline outcome a fused online partial
// captured, recomputing the burst-derived aggregates from the carried
// bursts (same pure functions over the same inputs, so bit-identical to
// the fused run).
func outcomeFromOnline(p *Partial) *pipeline.Outcome {
	out := &pipeline.Outcome{
		Meta:         p.Meta,
		Records:      p.Records,
		Bursts:       p.Bursts,
		Kept:         p.Kept,
		Attached:     p.Attached,
		Online:       true,
		TrainErr:     p.TrainErr,
		Stages:       p.Stages,
		Decode:       p.Decode,
		Warnings:     p.Warnings,
		Profile:      p.OnlineProfile,
		ProfileErr:   p.ProfileErr,
		Iterations:   structure.IterationsFromMarks(p.Marks),
		KeptTime:     p.KeptTime,
		AllTime:      p.AllTime,
		RankBursts:   p.RankBursts,
		Marks:        p.Marks,
		OnlinePhases: p.OnlinePhases,
	}
	if p.Clustering != nil {
		out.Clustering = *p.Clustering
	}
	if p.AllTime > 0 {
		out.CoverageKept = float64(p.KeptTime) / float64(p.AllTime)
	}
	if len(p.Kept) > 0 {
		if len(out.Clustering.Assign) == len(p.Kept) {
			out.ClusterTimeCoverage = cluster.ClusterTimeCoverage(p.Kept, out.Clustering.Assign)
		}
		seqs := structure.Sequences(p.Kept)
		out.Loops = structure.DetectLoops(seqs)
		out.SPMDScore = structure.SPMDScore(seqs)
	}
	return out
}

// keptByStartRank sorts bursts and their attached-sample slices by the
// canonical (Start, Rank) order in lockstep.
type keptByStartRank struct {
	b []burst.Burst
	a [][]trace.Sample
}

func (s *keptByStartRank) Len() int { return len(s.b) }
func (s *keptByStartRank) Less(i, j int) bool {
	if s.b[i].Start != s.b[j].Start {
		return s.b[i].Start < s.b[j].Start
	}
	return s.b[i].Rank < s.b[j].Rank
}
func (s *keptByStartRank) Swap(i, j int) {
	s.b[i], s.b[j] = s.b[j], s.b[i]
	s.a[i], s.a[j] = s.a[j], s.a[i]
}

// AnalyzeSharded is Analyze decomposed over the algebra: Split the trace
// into n shards, MapShard each, Reduce with no model. The Report is
// deep-equal to Analyze's for every n and mode (TestShardedEquivalence).
func AnalyzeSharded(tr *trace.Trace, n int, mode ShardMode, opts Options) (*Report, error) {
	return AnalyzeShardedContext(context.Background(), tr, n, mode, opts)
}

// AnalyzeShardedContext is AnalyzeSharded under a context.
func AnalyzeShardedContext(ctx context.Context, tr *trace.Trace, n int, mode ShardMode, opts Options) (*Report, error) {
	opts.setDefaults()
	var valWarn string
	if err := tr.Validate(); err != nil {
		if !opts.Lenient {
			return nil, fmt.Errorf("core: %w", err)
		}
		valWarn = fmt.Sprintf("trace failed validation (%v); analyzing anyway", err)
	}
	shards := Split(tr, n, mode)
	parts := make([]*Partial, len(shards))
	for i, sh := range shards {
		p, err := MapShardContext(ctx, trace.NewTraceSource(sh.Trace), sh.Spec, opts)
		if err != nil {
			return nil, err
		}
		parts[i] = p
	}
	rep, err := Reduce(parts, nil, opts)
	if err != nil {
		return nil, err
	}
	if valWarn != "" {
		rep.Warnings = append([]string{valWarn}, rep.Warnings...)
		rep.Degraded = true
	}
	return rep, nil
}
