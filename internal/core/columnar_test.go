package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// TestColumnarEquivalence is the columnar hot path's central contract:
// for every example application, analysis over structure-of-arrays
// blocks (the default) produces a Report deep-equal — bit-identical
// floats included — to the row-path reference, for batch analysis,
// exact streaming, and online streaming.
func TestColumnarEquivalence(t *testing.T) {
	for _, name := range apps.Names() {
		app, err := apps.ByName(name, 60)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		enc := buf.Bytes()

		// Batch.
		row, err := Analyze(tr, Options{Columnar: PathRow})
		if err != nil {
			t.Fatal(err)
		}
		col, err := Analyze(tr, Options{Columnar: PathColumnar})
		if err != nil {
			t.Fatal(err)
		}
		normalizeReport(row, col)
		if !reflect.DeepEqual(row, col) {
			t.Fatalf("%s: batch columnar Report differs from row path", name)
		}

		// Exact streaming.
		row, err = AnalyzeStream(bytes.NewReader(enc), Options{Columnar: PathRow})
		if err != nil {
			t.Fatal(err)
		}
		col, err = AnalyzeStream(bytes.NewReader(enc), Options{Columnar: PathColumnar})
		if err != nil {
			t.Fatal(err)
		}
		normalizeReport(row, col)
		if !reflect.DeepEqual(row, col) {
			t.Fatalf("%s: streaming columnar Report differs from row path", name)
		}

		// Online streaming.
		opts := func(h HotPath) Options {
			return Options{Columnar: h, Stream: StreamOptions{Online: true, TrainBursts: 64}}
		}
		row, err = AnalyzeStream(bytes.NewReader(enc), opts(PathRow))
		if err != nil {
			t.Fatal(err)
		}
		col, err = AnalyzeStream(bytes.NewReader(enc), opts(PathColumnar))
		if err != nil {
			t.Fatal(err)
		}
		normalizeReport(row, col)
		if !reflect.DeepEqual(row, col) {
			t.Fatalf("%s: online columnar Report differs from row path", name)
		}
	}
}

// TestColumnarEquivalenceLenient pins the salvage path: a truncated and
// a bit-flipped encoding must salvage to deep-equal Reports — identical
// DecodeStats included — on both hot paths.
func TestColumnarEquivalenceLenient(t *testing.T) {
	app, err := apps.ByName("stencil", 60)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()

	damaged := map[string][]byte{
		"truncated": enc[: len(enc)*3/5 : len(enc)*3/5],
	}
	flip := append([]byte(nil), enc...)
	flip[len(flip)/2] ^= 0x40
	damaged["bitflip"] = flip

	for dn, data := range damaged {
		row, err := AnalyzeStream(bytes.NewReader(data), Options{Lenient: true, Columnar: PathRow})
		if err != nil {
			t.Fatalf("%s: lenient row analysis failed: %v", dn, err)
		}
		col, err := AnalyzeStream(bytes.NewReader(data), Options{Lenient: true, Columnar: PathColumnar})
		if err != nil {
			t.Fatalf("%s: lenient columnar analysis failed: %v", dn, err)
		}
		if row.Decode == nil || col.Decode == nil {
			t.Fatalf("%s: missing DecodeStats (row %v, columnar %v)", dn, row.Decode, col.Decode)
		}
		if *row.Decode != *col.Decode {
			t.Fatalf("%s: DecodeStats diverged: row %+v, columnar %+v", dn, *row.Decode, *col.Decode)
		}
		normalizeReport(row, col)
		if !reflect.DeepEqual(row, col) {
			t.Fatalf("%s: lenient columnar Report differs from row path", dn)
		}
	}
}
