// Package core is the analysis front-end — the public entry point a tool
// user drives. Analyze consumes a trace (and AnalyzeStream an encoded
// trace stream) and produces, per detected computation phase: the folded
// internal evolution of each hardware counter, the folded call-stack
// view, per-rank balance statistics, and heuristic performance advice,
// mirroring the paper's automated methodology (burst clustering for
// structure detection + folding for fine-grain insight). Both entry
// points run the same internal/pipeline stages, so batch and streaming
// analysis cannot drift apart.
package core

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"time"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/profile"
	"repro/internal/structure"
	"repro/internal/trace"
)

// Options parameterizes the pipeline. The zero value selects sensible
// defaults for every knob.
type Options struct {
	// MinBurstDuration filters bursts shorter than this before clustering
	// (default 50 µs).
	MinBurstDuration trace.Time
	// Cluster configures burst clustering.
	Cluster cluster.Config
	// Fold configures folding; Fold.Counter is ignored (Counters below
	// selects what is folded).
	Fold folding.Config
	// Counters lists the counters to fold per phase (default TOT_INS,
	// FP_OPS, L1_DCM, L2_DCM).
	Counters []counters.Counter
	// StackBins sets the call-stack folding resolution (default 50).
	StackBins int
	// MaxPhases bounds how many clusters (by total time) are analyzed in
	// depth (default 5).
	MaxPhases int
	// Parallelism bounds the worker count for per-phase analysis and
	// per-counter folding, and is forwarded to clustering when
	// Cluster.Parallelism is unset. 0 selects runtime.GOMAXPROCS(0);
	// 1 forces a fully sequential pipeline. The Report is deep-equal for
	// every value (see TestAnalyzeParallelDeterminism).
	Parallelism int
	// Stream configures the streaming-specific behavior.
	Stream StreamOptions
	// Lenient selects degraded-tolerant analysis for imperfect traces:
	// AnalyzeStream decodes in salvage mode (undecodable records are
	// dropped and tallied in Report.Decode instead of aborting), Analyze
	// tolerates a trace that fails validation, and a clustering that finds
	// no phases falls back to a duration-quantile split. Every concession
	// is itemized in Report.Warnings and flips Report.Degraded.
	Lenient bool
	// StallTimeout fails an analysis whose pipeline makes no progress for
	// this long with an error wrapping pipeline.ErrStalled (0 disables
	// the watchdog). It guards services against uploads that go quiet
	// without disconnecting; size it well above the longest clustering
	// pause expected for the trace sizes served.
	StallTimeout time.Duration
	// Logger receives live structured progress from the analysis —
	// per-stage completions at debug level, clustering and training
	// outcomes at info level — so a service can observe a run before the
	// Report exists. nil disables logging; the Report is identical either
	// way.
	Logger *slog.Logger
	// Columnar selects the record representation of the pipeline's hot
	// path. The zero value PathColumnar decodes records straight into
	// structure-of-arrays column blocks; PathRow is the original
	// record-at-a-time reference path. The Report is deep-equal either
	// way (see TestColumnarEquivalence) — the knob exists so the row
	// path stays exercisable as the reference implementation.
	Columnar HotPath
}

// HotPath selects the record representation the analysis pipeline
// iterates. The zero value is the columnar path.
type HotPath int

const (
	// PathColumnar streams structure-of-arrays trace.ColBlock batches
	// through the pipeline (the default).
	PathColumnar HotPath = iota
	// PathRow streams []trace.Record batches — the reference
	// implementation the columnar path is validated against.
	PathRow
)

// String names the hot path for logs and flags.
func (h HotPath) String() string {
	switch h {
	case PathColumnar:
		return "columnar"
	case PathRow:
		return "row"
	}
	return fmt.Sprintf("HotPath(%d)", int(h))
}

// StreamOptions selects how much the analysis may buffer. The zero value
// is exact mode: kept bursts and their samples are retained until the
// end of the event section so clustering and folding see exactly what a
// batch run sees, and the Report is deep-equal to Analyze's.
type StreamOptions struct {
	// Online switches to bounded-memory analysis: a centroid classifier
	// is trained on the first TrainBursts kept bursts and assigns the
	// rest as they arrive, and samples are folded incrementally per phase
	// instead of being retained. Memory then scales with bursts + bins
	// rather than records, at the cost of approximate phase assignments.
	// Phases in the resulting Report carry no FoldInstances.
	Online bool
	// TrainBursts is the online training-prefix length (default 512).
	TrainBursts int
}

// pipelineConfig translates Options into the pipeline's configuration.
func (o *Options) pipelineConfig() pipeline.Config {
	return pipeline.Config{
		MinBurstDuration: o.MinBurstDuration,
		Cluster:          o.Cluster,
		Fold:             o.Fold,
		Counters:         o.Counters,
		StackBins:        o.StackBins,
		MaxPhases:        o.MaxPhases,
		Parallelism:      o.Parallelism,
		Online:           o.Stream.Online,
		TrainBursts:      o.Stream.TrainBursts,
		Lenient:          o.Lenient,
		StallTimeout:     o.StallTimeout,
		Logger:           o.Logger,
		Columnar:         o.Columnar == PathColumnar,
	}
}

func (o *Options) setDefaults() {
	if o.MinBurstDuration == 0 {
		o.MinBurstDuration = 50_000
	}
	if len(o.Counters) == 0 {
		o.Counters = []counters.Counter{
			counters.TotIns, counters.FPOps, counters.L1DCM, counters.L2DCM,
		}
	}
	if o.StackBins == 0 {
		o.StackBins = 50
	}
	if o.MaxPhases == 0 {
		o.MaxPhases = 5
	}
	if o.Parallelism <= 0 {
		o.Parallelism = runtime.GOMAXPROCS(0)
	}
	if o.Cluster.Parallelism == 0 {
		o.Cluster.Parallelism = o.Parallelism
	}
	// The pipeline always clusters in the full 3-D space (log duration,
	// log instructions, IPC); experiments wanting 2-D call the cluster
	// package directly.
	o.Cluster.UseIPC = true
}

// Phase is the analysis of one detected computation phase (cluster).
type Phase struct {
	// ClusterID is the phase's cluster id (1 = most computation time).
	ClusterID int
	// Instances is the number of burst instances in the phase.
	Instances int
	// FoldInstances retains the folding instances (bursts + attached
	// samples) so callers can re-fold with different configurations
	// (ablations) without re-running the pipeline. It is an in-memory
	// handle, not part of the serialized Report (the daemon would
	// otherwise ship every retained sample to the client).
	FoldInstances []folding.Instance `json:"-"`
	// TotalTime is the summed duration of all instances.
	TotalTime trace.Time
	// MeanDuration is the mean instance duration in ns.
	MeanDuration float64
	// MeanIPC is the mean instructions-per-cycle over instances.
	MeanIPC float64
	// MeanInstructions is the mean instruction total per instance,
	// aggregated from the burst counters. Unlike the folded views it
	// survives phases too short to fold, which makes it the robust
	// second axis when rebuilding the phase's raw-feature centroid for
	// cross-run matching (internal/diff).
	MeanInstructions float64
	// Folds maps each requested counter to its folded reconstruction;
	// counters that could not be folded are listed in FoldErrors instead.
	Folds map[counters.Counter]*folding.Result
	// FoldErrors records per-counter folding failures (e.g. a counter
	// that never increments in this phase). Like FoldInstances it is an
	// in-memory handle: error values do not survive a JSON round trip
	// (they marshal as {} and cannot unmarshal), so the serialized Report
	// carries the same information as strings in Warnings instead.
	FoldErrors map[counters.Counter]error `json:"-"`
	// Stacks is the folded call-stack view (nil when no samples carry
	// stacks).
	Stacks *folding.StackResult
	// RankMeanDuration is each rank's mean instance duration (ns); 0 for
	// ranks with no instances.
	RankMeanDuration []float64
	// ImbalanceFactor is max over ranks of RankMeanDuration divided by
	// the mean (1 = perfectly balanced).
	ImbalanceFactor float64
	// MajorityOracle and OraclePurity validate clustering against ground
	// truth when the trace carries oracle events: the most common true
	// kernel id among instances and the fraction of instances having it.
	MajorityOracle int64
	OraclePurity   float64
	// Advice lists heuristic performance observations for this phase.
	Advice []string
	// Warnings itemizes this phase's analysis concessions: counters whose
	// fold failed to fit, or — if the phase's analysis panicked — the
	// recovered panic (the rest of the report is unaffected either way).
	Warnings []string `json:",omitempty"`
}

// Report is the full analysis of a trace.
type Report struct {
	// App is the traced application name.
	App string
	// Ranks is the rank count.
	Ranks int
	// Meta is the trace metadata the analysis ran against.
	Meta trace.Metadata
	// Records counts the trace records the analysis consumed, by kind.
	Records pipeline.RecordCounts
	// Online reports whether the bounded-memory streaming path produced
	// this analysis (see StreamOptions); TrainErr records a failed online
	// classifier training (the report then has zero phases).
	Online   bool
	TrainErr string
	// Pipeline carries the per-stage metrics (records in/out, bytes, wall
	// time) of the analysis run, in stage order.
	Pipeline []pipeline.Metrics
	// Bursts is the number of bursts extracted; Filtered the number
	// dropped by the duration filter.
	Bursts, Filtered int
	// CoverageKept is the fraction of computation time the filter kept.
	CoverageKept float64
	// Clustering is the raw clustering result over the kept bursts.
	Clustering cluster.Result
	// ClusterTimeCoverage is the fraction of kept burst time inside
	// non-noise clusters.
	ClusterTimeCoverage float64
	// Profile is the flat MPI/compute profile of the trace; ProfileErr
	// records why it is nil when profiling failed (empty otherwise).
	Profile    *profile.Profile
	ProfileErr string
	// Iterations summarizes the main-loop iteration markers.
	Iterations structure.IterationStats
	// Loops is the detected per-rank repetition structure of the phase
	// sequence (folding's "iterative application" precondition, verified).
	Loops []structure.Loop
	// SPMDScore is the cross-rank phase-sequence consistency (1 = all
	// ranks execute identical sequences).
	SPMDScore float64
	// Phases analyzes the top clusters by total time.
	Phases []Phase
	// Degraded reports that the analysis completed with concessions —
	// salvage decoding dropped records, a phase's analysis panicked, the
	// clustering fell back to a quantile split, or the input trace failed
	// validation — each itemized in Warnings. Per-counter fold-fit
	// failures alone (Phase.FoldErrors/Phase.Warnings) do not set it;
	// they are routine on counters that never tick in a phase.
	Degraded bool `json:",omitempty"`
	// Warnings itemizes every report-level degradation in a stable order:
	// decode salvage first, then pipeline fallbacks, then phase failures.
	Warnings []string `json:",omitempty"`
	// Decode summarizes what lenient (salvage) decoding dropped; nil
	// unless the trace was decoded with Options.Lenient set (or the stats
	// were folded in via NoteDecode).
	Decode *trace.DecodeStats `json:",omitempty"`
}

// NoteDecode folds a lenient decode's salvage summary into the report —
// for batch tools that decoded the trace themselves (ReadFileLenient)
// before calling Analyze; the streaming path records this automatically.
func (r *Report) NoteDecode(st trace.DecodeStats) {
	r.Decode = &st
	if st.Degraded() {
		r.Warnings = append(st.Warnings(), r.Warnings...)
		r.Degraded = true
	}
}

// Analyze runs the full pipeline on an in-memory trace. It streams the
// trace through the same stage implementations AnalyzeStream uses, so
// the two are equivalent by construction (and verified deep-equal by
// TestAnalyzeStreamEquivalence). It is AnalyzeContext with a background
// context.
func Analyze(tr *trace.Trace, opts Options) (*Report, error) {
	return AnalyzeContext(context.Background(), tr, opts)
}

// AnalyzeContext is Analyze under a context: cancelling ctx stops the
// pipeline stages at the next block boundary and returns ctx.Err()
// (possibly wrapped; test with errors.Is). The analysis daemon uses
// this to bound each request by its deadline and to abandon work when
// the client disconnects.
func AnalyzeContext(ctx context.Context, tr *trace.Trace, opts Options) (*Report, error) {
	opts.setDefaults()
	var valWarn string
	if err := tr.Validate(); err != nil {
		if !opts.Lenient {
			return nil, fmt.Errorf("core: %w", err)
		}
		valWarn = fmt.Sprintf("trace failed validation (%v); analyzing anyway", err)
	}
	// One whole-trace shard through the map/reduce algebra — the identity
	// split, so batch analysis and sharded analysis cannot drift apart.
	p, err := MapShardContext(ctx, trace.NewTraceSource(tr), WholeSpec(), opts)
	if err != nil {
		return nil, err
	}
	rep, err := Reduce([]*Partial{p}, nil, opts)
	if err != nil {
		return nil, err
	}
	if valWarn != "" {
		rep.Warnings = append([]string{valWarn}, rep.Warnings...)
		rep.Degraded = true
	}
	return rep, nil
}

// assemble turns a pipeline outcome into the public Report.
func assemble(out *pipeline.Outcome, opts Options) *Report {
	rep := &Report{
		App:                 out.Meta.App,
		Ranks:               out.Meta.Ranks,
		Meta:                out.Meta,
		Records:             out.Records,
		Online:              out.Online,
		TrainErr:            out.TrainErr,
		Pipeline:            out.Stages,
		Bursts:              out.Bursts,
		Filtered:            out.Bursts - len(out.Kept),
		CoverageKept:        out.CoverageKept,
		Clustering:          out.Clustering,
		ClusterTimeCoverage: out.ClusterTimeCoverage,
		Profile:             out.Profile,
		ProfileErr:          out.ProfileErr,
		Iterations:          out.Iterations,
		Loops:               out.Loops,
		SPMDScore:           out.SPMDScore,
	}
	// Roll the pipeline's degradations up into the report: salvage-decode
	// stats first, then pipeline-level warnings (clustering fallbacks).
	if out.Decode != nil {
		rep.NoteDecode(*out.Decode)
	}
	if len(out.Warnings) > 0 {
		rep.Warnings = append(rep.Warnings, out.Warnings...)
		rep.Degraded = true
	}
	// Silhouette is NaN for degenerate clusterings (<2 clusters, as the
	// quantile fallback can produce); sanitize so the Report stays JSON-
	// encodable (encoding/json rejects NaN).
	if math.IsNaN(rep.Clustering.Silhouette) {
		rep.Clustering.Silhouette = 0
	}
	if out.Online {
		assembleOnline(rep, out, opts)
		rep.Warnings = BoundWarnings(rep.Warnings)
		return rep
	}
	kept := out.Kept
	nPhases := rep.Clustering.K
	if nPhases > opts.MaxPhases {
		nPhases = opts.MaxPhases
	}
	if nPhases > 0 {
		// Each phase is analyzed independently against the read-only burst
		// and sample sets and written to its own pre-sized slot, so the
		// fan-out preserves ordering and determinism exactly. A panic in
		// one phase's analysis is contained to its slot: the phase comes
		// back as a stub carrying the recovered panic, the report is
		// marked degraded, and every other phase is unaffected.
		rep.Phases = make([]Phase, nPhases)
		panics := make([]string, nPhases)
		parallel.ForEach(nPhases, opts.Parallelism, func(idx int) {
			cid := idx + 1
			defer func() {
				if r := recover(); r != nil {
					panics[idx] = fmt.Sprintf("%v", r)
					rep.Phases[idx] = failedPhase(cid, panics[idx])
				}
			}()
			instances := folding.InstancesFromBursts(kept, out.Attached, cid)
			rep.Phases[idx] = analyzePhase(&out.Meta, kept, instances, cid, opts)
		})
		notePhasePanics(rep, panics)
	}
	rep.Warnings = BoundWarnings(rep.Warnings)
	return rep
}

// failedPhase is the stub slot a panicked phase analysis leaves behind.
func failedPhase(cid int, msg string) Phase {
	return Phase{
		ClusterID: cid,
		Warnings:  []string{fmt.Sprintf("phase analysis failed: %s", msg)},
	}
}

// notePhasePanics folds recovered per-phase panics into the report-level
// warnings (in phase order, so the report stays deterministic).
func notePhasePanics(rep *Report, panics []string) {
	for idx, msg := range panics {
		if msg == "" {
			continue
		}
		rep.Warnings = append(rep.Warnings, fmt.Sprintf(
			"phase %d analysis failed and was skipped: %s", idx+1, msg))
		rep.Degraded = true
	}
}

func analyzePhase(meta *trace.Metadata, kept []burst.Burst, instances []folding.Instance, cid int, opts Options) Phase {
	ph := Phase{
		ClusterID:     cid,
		FoldInstances: instances,
		Folds:         make(map[counters.Counter]*folding.Result),
		FoldErrors:    make(map[counters.Counter]error),
	}
	aggregatePhase(&ph, meta, kept, cid)

	// Fold every requested counter. Each fold reads the shared instances
	// and produces an independent Result, so the counters fan out onto
	// workers; results land in indexed slots and the maps are filled in
	// counter order afterwards.
	folds := make([]*folding.Result, len(opts.Counters))
	foldErrs := make([]error, len(opts.Counters))
	parallel.ForEach(len(opts.Counters), opts.Parallelism, func(i int) {
		cfg := opts.Fold
		cfg.Counter = opts.Counters[i]
		folds[i], foldErrs[i] = folding.Fold(instances, cfg)
	})
	for i, c := range opts.Counters {
		if foldErrs[i] != nil {
			ph.FoldErrors[c] = foldErrs[i]
			ph.Warnings = append(ph.Warnings, fmt.Sprintf("fold %s: %v", c, foldErrs[i]))
			continue
		}
		ph.Folds[c] = folds[i]
	}

	// Fold call stacks.
	st := folding.FoldStacks(instances, opts.StackBins)
	if st.Samples > 0 {
		ph.Stacks = st
	}

	ph.Advice = advise(meta, &ph)
	return ph
}

// aggregatePhase fills the burst-derived statistics of phase cid —
// instance counts, durations, IPC, per-rank balance, oracle purity. It
// is shared by the offline assembly and the streaming assembly, which
// differ only in where the folded views come from.
func aggregatePhase(ph *Phase, meta *trace.Metadata, kept []burst.Burst, cid int) {
	oracleCount := map[int64]int{}
	var ipcSum, insSum float64
	rankSum := parallel.GetFloat64(meta.Ranks)
	defer parallel.PutFloat64(rankSum)
	rankN := make([]int, meta.Ranks)
	for i := range kept {
		if kept[i].Cluster != cid {
			continue
		}
		ph.Instances++
		d := kept[i].Duration()
		ph.TotalTime += d
		ipcSum += kept[i].IPC()
		insSum += float64(kept[i].Instructions())
		rankSum[kept[i].Rank] += float64(d)
		rankN[kept[i].Rank]++
		if kept[i].OracleID != 0 {
			oracleCount[kept[i].OracleID]++
		}
	}
	if ph.Instances > 0 {
		ph.MeanDuration = float64(ph.TotalTime) / float64(ph.Instances)
		ph.MeanIPC = ipcSum / float64(ph.Instances)
		ph.MeanInstructions = insSum / float64(ph.Instances)
	}
	ph.RankMeanDuration = make([]float64, meta.Ranks)
	var rankMeanSum float64
	var rankCount int
	maxRank := 0.0
	for r := range rankSum {
		if rankN[r] > 0 {
			ph.RankMeanDuration[r] = rankSum[r] / float64(rankN[r])
			rankMeanSum += ph.RankMeanDuration[r]
			rankCount++
			if ph.RankMeanDuration[r] > maxRank {
				maxRank = ph.RankMeanDuration[r]
			}
		}
	}
	if rankCount > 0 && rankMeanSum > 0 {
		ph.ImbalanceFactor = maxRank / (rankMeanSum / float64(rankCount))
	}
	totalOracle := 0
	for id, n := range oracleCount {
		totalOracle += n
		if n > oracleCount[ph.MajorityOracle] {
			ph.MajorityOracle = id
		}
	}
	if totalOracle > 0 {
		ph.OraclePurity = float64(oracleCount[ph.MajorityOracle]) / float64(totalOracle)
	}
}

// advise derives heuristic performance observations from a phase analysis,
// the kind of suggestions the paper draws from folded views.
func advise(meta *trace.Metadata, ph *Phase) []string {
	var out []string

	if ph.ImbalanceFactor > 1.15 {
		out = append(out, fmt.Sprintf(
			"load imbalance: slowest rank averages %.0f%% of the mean instance duration — consider repartitioning",
			100*ph.ImbalanceFactor))
	}

	if f, ok := ph.Folds[counters.L1DCM]; ok {
		if front := f.Cumulative[len(f.Cumulative)/5]; front > 0.4 {
			out = append(out, fmt.Sprintf(
				"cache warm-up: %.0f%% of L1 misses occur in the first 20%% of the phase — blocking or software prefetch may help",
				100*front))
		}
	}
	if f, ok := ph.Folds[counters.L2DCM]; ok {
		if front := f.Cumulative[len(f.Cumulative)/5]; front > 0.4 {
			out = append(out, fmt.Sprintf(
				"working-set establishment: %.0f%% of L2 misses occur in the first 20%% of the phase",
				100*front))
		}
	}

	if f, ok := ph.Folds[counters.TotIns]; ok && len(f.Breakpoints) > 0 {
		out = append(out, fmt.Sprintf(
			"internal structure: instruction rate changes at normalized time %s — the phase hides %d sub-phases",
			formatBreaks(f.Breakpoints), len(f.Breakpoints)+1))
		// Identify the slowest sub-phase by mean rate between breakpoints.
		lo := 0.0
		edges := append(append([]float64{}, f.Breakpoints...), 1)
		slowLo, slowHi, slowRate := 0.0, 1.0, math.Inf(1)
		for _, hi := range edges {
			r := meanRateBetween(f, lo, hi)
			if r < slowRate {
				slowRate, slowLo, slowHi = r, lo, hi
			}
			lo = hi
		}
		overall := f.MeanTotal / f.MeanDuration
		if slowRate < 0.6*overall {
			out = append(out, fmt.Sprintf(
				"bottleneck sub-phase: [%.2f, %.2f] runs at %.0f%% of the phase's mean instruction rate — a memory-bound candidate",
				slowLo, slowHi, 100*slowRate/overall))
		}
	}

	if ph.Stacks != nil {
		if trs := ph.Stacks.Transitions(); len(trs) > 0 {
			names := make([]string, 0, len(ph.Stacks.Regions))
			for _, id := range ph.Stacks.Regions {
				names = append(names, meta.RegionName(id))
			}
			out = append(out, fmt.Sprintf(
				"call-stack folding attributes the phase to %d regions (%s) with transitions at %s",
				len(names), joinMax(names, 4), formatBreaks(trs)))
		}
		// Combined attribution: which region retires the instructions, and
		// is its instruction share out of line with its time share?
		if f, ok := ph.Folds[counters.TotIns]; ok {
			attr := folding.AttributeRegions(f, ph.Stacks)
			timeShare := regionTimeShares(ph.Stacks)
			for _, id := range ph.Stacks.Regions {
				ins, tm := attr[id], timeShare[id]
				if tm > 0.1 && ins > 0 && ins < 0.6*tm {
					out = append(out, fmt.Sprintf(
						"region %s retires %.0f%% of the instructions in %.0f%% of the time — the phase's low-efficiency stretch",
						meta.RegionName(id), 100*ins, 100*tm))
				}
			}
		}
	}

	// Derived-metric evolution: a rising misses-per-kilo-instruction curve
	// inside the phase means its tail is increasingly memory-bound.
	if fi, fm := ph.Folds[counters.TotIns], ph.Folds[counters.L1DCM]; fi != nil && fm != nil {
		if mki, err := folding.RatioCurve(fm, fi, 1000); err == nil {
			front := meanFinite(mki[:len(mki)/4])
			back := meanFinite(mki[3*len(mki)/4:])
			if front > 0 && back > 2*front {
				out = append(out, fmt.Sprintf(
					"memory pressure grows inside the phase: MKI rises from %.1f to %.1f — data reuse degrades toward the end",
					front, back))
			}
		}
	}

	// Coverage diagnostics: warn when the folded positions betray a
	// sampling clock correlated with the phase (the reconstruction would
	// interpolate blindly across the gaps).
	// Counter-id order, not map order: which counter the warning names
	// must not vary run to run.
	for c := counters.Counter(0); c < counters.NumCounters; c++ {
		f, ok := ph.Folds[c]
		if !ok {
			continue
		}
		if d := f.Diagnose(); d.SuspectAliasing {
			out = append(out, fmt.Sprintf(
				"warning: %s fold coverage is non-uniform (KS %.2f, max gap %.0f%% of the axis) — sampling may be correlated with phase starts; change the period or add jitter",
				c, d.KS, 100*d.MaxGap))
			break // one warning suffices; all counters share positions
		}
	}

	if ph.OraclePurity > 0 && ph.OraclePurity < 0.9 {
		out = append(out, fmt.Sprintf(
			"warning: cluster mixes kernels (oracle purity %.0f%%) — consider tightening clustering parameters",
			100*ph.OraclePurity))
	}
	return out
}

func meanFinite(xs []float64) float64 {
	var sum float64
	n := 0
	for _, x := range xs {
		if !math.IsNaN(x) && !math.IsInf(x, 0) {
			sum += x
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// regionTimeShares returns each region's fraction of the phase's stack
// samples — a proxy for its share of the phase's time.
func regionTimeShares(st *folding.StackResult) map[uint32]float64 {
	out := make(map[uint32]float64, len(st.Regions))
	if st.Bins == 0 {
		return out
	}
	occupied := 0
	for b := 0; b < st.Bins; b++ {
		if st.Dominant[b] != 0 {
			occupied++
		}
	}
	if occupied == 0 {
		return out
	}
	for b := 0; b < st.Bins; b++ {
		for ri, id := range st.Regions {
			out[id] += st.Share[b][ri] / float64(occupied)
		}
	}
	return out
}

func meanRateBetween(f *folding.Result, lo, hi float64) float64 {
	var sum float64
	var n int
	for i, x := range f.Grid {
		if x >= lo && x <= hi {
			sum += f.Rate[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

func formatBreaks(bs []float64) string {
	s := ""
	for i, b := range bs {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%.2f", b)
	}
	return s
}

func joinMax(names []string, max int) string {
	sort.Strings(names)
	if len(names) > max {
		names = names[:max]
	}
	s := ""
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += n
	}
	return s
}
