package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/counters"
	"repro/internal/sim"
	"repro/internal/trace"
)

// analyzeApp runs an app under the default evaluation configuration and
// analyzes the trace.
func analyzeApp(t *testing.T, name string, iters int) *Report {
	t.Helper()
	app, err := apps.ByName(name, iters)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(8)
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestAnalyzeStencilFindsStructure(t *testing.T) {
	rep := analyzeApp(t, "stencil", 120)
	if rep.App != "stencil" || rep.Ranks != 8 {
		t.Fatalf("report header = %q/%d", rep.App, rep.Ranks)
	}
	// Two real phases (sweep + pack); the inter-sendrecv slivers are
	// filtered.
	if rep.Clustering.K < 2 {
		t.Fatalf("K = %d, want >= 2", rep.Clustering.K)
	}
	if rep.Filtered == 0 {
		t.Fatal("expected the tiny inter-exchange bursts to be filtered")
	}
	if rep.CoverageKept < 0.99 {
		t.Fatalf("filter discarded real computation: coverage = %g", rep.CoverageKept)
	}
	if rep.ClusterTimeCoverage < 0.95 {
		t.Fatalf("cluster coverage = %g", rep.ClusterTimeCoverage)
	}
	if len(rep.Phases) == 0 {
		t.Fatal("no phases analyzed")
	}
	// Phase 1 must be the sweep (dominant time), pure per oracle.
	p1 := rep.Phases[0]
	if p1.ClusterID != 1 {
		t.Fatalf("first phase id = %d", p1.ClusterID)
	}
	if p1.MajorityOracle != 1 { // jacobi_sweep kernel ID
		t.Fatalf("phase 1 oracle = %d, want 1 (jacobi_sweep)", p1.MajorityOracle)
	}
	if p1.OraclePurity < 0.99 {
		t.Fatalf("phase 1 purity = %g", p1.OraclePurity)
	}
	// 8 ranks × 120 iters = 960 sweep instances; DBSCAN may shed a few
	// lognormal-tail instances as noise.
	if p1.Instances < 930 || p1.Instances > 960 {
		t.Fatalf("phase 1 instances = %d, want ≈ 960", p1.Instances)
	}
	// The TOT_INS fold must exist and closely match the analytic shape.
	f, ok := p1.Folds[counters.TotIns]
	if !ok {
		t.Fatalf("TOT_INS fold missing (errors: %v)", p1.FoldErrors)
	}
	app := apps.NewStencil(1)
	shape := app.Kernels()[0].ShapeOf(counters.TotIns)
	if d := f.MeanAbsDiff(shape); d > 0.05 {
		t.Fatalf("TOT_INS fold diff = %.4f, want < 0.05 (the paper's headline)", d)
	}
	// Sub-phase structure detected (3 segments → >= 1 breakpoint).
	if len(f.Breakpoints) == 0 {
		t.Fatal("no sub-phase breakpoints detected in the sweep")
	}
	// Stacks folded and attributed to the three source regions.
	if p1.Stacks == nil || len(p1.Stacks.Regions) < 3 {
		t.Fatalf("stack folding incomplete: %+v", p1.Stacks)
	}
	// Advice mentions the internal structure.
	joined := strings.Join(p1.Advice, " | ")
	if !strings.Contains(joined, "sub-phase") && !strings.Contains(joined, "internal structure") {
		t.Fatalf("advice lacks structure insight: %v", p1.Advice)
	}
}

func TestAnalyzeNBodyReportsImbalance(t *testing.T) {
	rep := analyzeApp(t, "nbody", 100)
	if len(rep.Phases) == 0 {
		t.Fatal("no phases")
	}
	p1 := rep.Phases[0]
	if p1.MajorityOracle != 3 { // forces kernel
		t.Fatalf("dominant phase oracle = %d, want 3", p1.MajorityOracle)
	}
	if p1.ImbalanceFactor < 1.15 {
		t.Fatalf("imbalance factor = %g, want > 1.15", p1.ImbalanceFactor)
	}
	found := false
	for _, a := range p1.Advice {
		if strings.Contains(a, "imbalance") {
			found = true
		}
	}
	if !found {
		t.Fatalf("advice lacks imbalance: %v", p1.Advice)
	}
	// Triangular imbalance: middle ranks slowest.
	if p1.RankMeanDuration[3] <= p1.RankMeanDuration[0] {
		t.Fatal("rank mean durations do not show the triangular pattern")
	}
}

func TestAnalyzeCGReportsCacheWarmup(t *testing.T) {
	rep := analyzeApp(t, "cg", 120)
	if len(rep.Phases) == 0 {
		t.Fatal("no phases")
	}
	// Find the dominant spmv phase (oracle 5, most instances).
	var spmv *Phase
	for i := range rep.Phases {
		if rep.Phases[i].MajorityOracle == 5 &&
			(spmv == nil || rep.Phases[i].Instances > spmv.Instances) {
			spmv = &rep.Phases[i]
		}
	}
	if spmv == nil {
		t.Fatalf("no spmv phase found among %d phases", len(rep.Phases))
	}
	f, ok := spmv.Folds[counters.L2DCM]
	if !ok {
		t.Fatalf("L2 fold missing: %v", spmv.FoldErrors)
	}
	// ExpDecay(6, 0.2): ~44% of misses in the first 20% of time.
	if front := f.Cumulative[len(f.Cumulative)/5]; front < 0.4 {
		t.Fatalf("front-loaded misses not reconstructed: %.2f", front)
	}
	found := false
	for _, a := range spmv.Advice {
		if strings.Contains(a, "L2") || strings.Contains(a, "working-set") {
			found = true
		}
	}
	if !found {
		t.Fatalf("advice lacks cache insight: %v", spmv.Advice)
	}
}

func TestAnalyzeIncludesProfileAndStructure(t *testing.T) {
	rep := analyzeApp(t, "stencil", 60)
	if rep.Profile == nil {
		t.Fatalf("profile missing (ProfileErr: %q)", rep.ProfileErr)
	}
	if rep.ProfileErr != "" {
		t.Fatalf("ProfileErr = %q alongside a successful profile", rep.ProfileErr)
	}
	if f := rep.Profile.MPIFraction(); f <= 0 || f >= 0.5 {
		t.Fatalf("MPI fraction = %g", f)
	}
	if rep.Iterations.Count != 60 || !rep.Iterations.RanksAgree {
		t.Fatalf("iterations = %+v", rep.Iterations)
	}
	if len(rep.Loops) != 8 {
		t.Fatalf("loops = %d", len(rep.Loops))
	}
	for _, l := range rep.Loops {
		if l.Period != 2 {
			t.Fatalf("loop = %+v, want period 2 (pack, sweep)", l)
		}
	}
}

func TestAnalyzeInvalidTrace(t *testing.T) {
	tr := &trace.Trace{} // zero ranks
	if _, err := Analyze(tr, Options{}); err == nil {
		t.Fatal("invalid trace accepted")
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	b := trace.NewBuilder("empty", 2)
	tr := b.Build()
	rep, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bursts != 0 || len(rep.Phases) != 0 {
		t.Fatalf("empty analysis = %+v", rep)
	}
}

func TestAnalyzeMaxPhases(t *testing.T) {
	app, _ := apps.ByName("cg", 60)
	tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(tr, Options{MaxPhases: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) != 1 {
		t.Fatalf("phases = %d, want 1", len(rep.Phases))
	}
}

func TestAnalyzeFoldErrorsRecorded(t *testing.T) {
	// nbody's integrate phase has zero L2 misses configured → the L2 fold
	// must fail gracefully and be recorded.
	rep := analyzeApp(t, "nbody", 80)
	var integ *Phase
	for i := range rep.Phases {
		if rep.Phases[i].MajorityOracle == 4 {
			integ = &rep.Phases[i]
		}
	}
	if integ == nil {
		t.Skip("integrate phase not among analyzed clusters")
	}
	if _, ok := integ.Folds[counters.L2DCM]; ok {
		t.Fatal("L2 fold should have failed for integrate")
	}
	if integ.FoldErrors[counters.L2DCM] == nil {
		t.Fatal("L2 fold error not recorded")
	}
}

func TestRateScaleMatchesKernels(t *testing.T) {
	// The folded mean rate (MeanTotal/MeanDuration) for the stencil sweep
	// must equal the kernel's configured instruction rate: 50M ins / 5 ms
	// = 10 ins/ns.
	rep := analyzeApp(t, "stencil", 100)
	f := rep.Phases[0].Folds[counters.TotIns]
	if f == nil {
		t.Fatal("no fold")
	}
	rate := f.MeanTotal / f.MeanDuration
	if math.Abs(rate-10) > 0.5 {
		t.Fatalf("mean instruction rate = %g ins/ns, want ≈ 10", rate)
	}
}
