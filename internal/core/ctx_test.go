package core

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/sim"
)

// stallingReader serves its buffered prefix and then blocks until ctx
// is cancelled, returning the context error — the shape of an HTTP
// request body whose client stopped sending and then disconnected.
type stallingReader struct {
	ctx  context.Context
	data []byte
	off  int
}

func (sr *stallingReader) Read(p []byte) (int, error) {
	if sr.off < len(sr.data) {
		n := copy(p, sr.data[sr.off:])
		sr.off += n
		return n, nil
	}
	<-sr.ctx.Done()
	return 0, sr.ctx.Err()
}

// encodeTestTrace simulates a small app and returns the encoded trace.
func encodeTestTrace(t *testing.T) []byte {
	t.Helper()
	app, err := apps.ByName("stencil", 20)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(2), app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAnalyzeStreamContextCancelMidStream(t *testing.T) {
	enc := encodeTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())

	// Serve half the trace, then stall; cancel shortly after the
	// pipeline has started consuming.
	src := &stallingReader{ctx: ctx, data: enc[:len(enc)/2]}
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()

	start := time.Now()
	rep, err := AnalyzeStreamContext(ctx, src, Options{})
	if err == nil {
		t.Fatal("cancelled analysis returned no error")
	}
	if rep != nil {
		t.Fatal("cancelled analysis returned a partial report")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not unwrap to context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the pipeline did not stop promptly", elapsed)
	}
}

func TestAnalyzeStreamContextPreCancelled(t *testing.T) {
	enc := encodeTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := AnalyzeStreamContext(ctx, bytes.NewReader(enc), Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled context: got %v, want context.Canceled", err)
	}
}

func TestAnalyzeContextDeadline(t *testing.T) {
	enc := encodeTestTrace(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond) // ensure the deadline has passed
	_, err := AnalyzeStreamContext(ctx, bytes.NewReader(enc), Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: got %v, want context.DeadlineExceeded", err)
	}
}

func TestAnalyzeStreamContextCompletesUncancelled(t *testing.T) {
	enc := encodeTestTrace(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := AnalyzeStreamContext(ctx, bytes.NewReader(enc), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bursts == 0 {
		t.Fatal("uncancelled context run produced an empty report")
	}
}
