package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
)

// simTrace builds a featured trace through the simulator — events,
// samples, and enough structure to cluster.
func simTrace(t *testing.T, name string, ranks, iters int) *trace.Trace {
	t.Helper()
	app, err := apps.ByName(name, iters)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestAnalyzeStreamLenientSalvagesTruncation(t *testing.T) {
	tr := simTrace(t, "stencil", 4, 40)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	enc := buf.Bytes()
	cut := enc[:len(enc)*3/5]

	// Strict streaming must reject the truncated input.
	if _, err := AnalyzeStream(bytes.NewReader(cut), Options{}); err == nil {
		t.Fatal("strict AnalyzeStream accepted a truncated trace")
	}

	// Lenient streaming salvages the prefix and reports the damage.
	rep, err := AnalyzeStream(bytes.NewReader(cut), Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient AnalyzeStream: %v", err)
	}
	if !rep.Degraded {
		t.Error("salvaged report not marked Degraded")
	}
	if rep.Decode == nil {
		t.Fatal("salvaged report carries no DecodeStats")
	}
	if !rep.Decode.Truncated {
		t.Errorf("DecodeStats = %+v, want Truncated", rep.Decode)
	}
	if len(rep.Warnings) == 0 {
		t.Error("salvaged report carries no warnings")
	}
	if rep.Records.Events == 0 {
		t.Error("salvage kept no events at a 60% cut")
	}
	// The degraded report must still serialize (the daemon ships JSON).
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("degraded report does not marshal: %v", err)
	}
}

func TestAnalyzeStreamLenientCleanInputNotDegraded(t *testing.T) {
	tr := simTrace(t, "stencil", 2, 20)
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := AnalyzeStream(&buf, Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded {
		t.Fatalf("clean input marked Degraded: %v", rep.Warnings)
	}
	if rep.Decode == nil {
		t.Fatal("lenient run should still report DecodeStats")
	}
	if rep.Decode.Dropped() != 0 || rep.Decode.Truncated {
		t.Fatalf("clean input reported damage: %+v", rep.Decode)
	}
}

func TestAnalyzeLenientToleratesInvalidTrace(t *testing.T) {
	tr := simTrace(t, "stencil", 2, 20)
	// Shrink the recorded duration below the last event so Validate
	// fails, while the records themselves stay analyzable.
	tr.Meta.Duration = tr.Events[len(tr.Events)-1].Time - 1

	if _, err := Analyze(tr, Options{}); err == nil {
		t.Fatal("strict Analyze accepted an invalid trace")
	}
	rep, err := Analyze(tr, Options{Lenient: true})
	if err != nil {
		t.Fatalf("lenient Analyze: %v", err)
	}
	if !rep.Degraded {
		t.Error("report not marked Degraded after tolerated validation failure")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "failed validation") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings lack the validation concession: %v", rep.Warnings)
	}
}

func TestAnalyzeLenientClusteringFallback(t *testing.T) {
	tr := simTrace(t, "stencil", 2, 30)
	// MinPts far above the burst count degenerates DBSCAN to zero
	// clusters; strict mode reports zero phases, lenient mode falls back
	// to a duration-quantile split.
	opts := Options{Cluster: cluster.Config{MinPts: 1 << 20}}
	strict, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if strict.Clustering.K != 0 || len(strict.Phases) != 0 {
		t.Fatalf("strict run found %d clusters, want 0", strict.Clustering.K)
	}

	opts.Lenient = true
	rep, err := Analyze(tr, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clustering.K == 0 {
		t.Fatal("lenient run did not fall back to quantile clustering")
	}
	if len(rep.Phases) == 0 {
		t.Fatal("fallback clustering produced no phases")
	}
	if !rep.Degraded {
		t.Error("fallback report not marked Degraded")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "duration-quantile") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings lack the fallback concession: %v", rep.Warnings)
	}
	if _, err := json.Marshal(rep); err != nil {
		t.Fatalf("fallback report does not marshal: %v", err)
	}
}

func TestAssembleIsolatesPhasePanic(t *testing.T) {
	// A synthetic outcome whose second cluster holds a burst with a rank
	// outside the metadata's range: aggregatePhase indexes a per-rank
	// slice with it and panics. The panic must stay confined to that
	// phase's slot.
	kept := []burst.Burst{
		{Rank: 0, Start: 0, End: 1000, Cluster: 1},
		{Rank: 0, Start: 2000, End: 3000, Cluster: 1},
		{Rank: 5, Start: 4000, End: 5000, Cluster: 2}, // out of range for Ranks=1
	}
	out := &pipeline.Outcome{
		Meta:       trace.Metadata{App: "synthetic", Ranks: 1, Duration: 10000},
		Kept:       kept,
		Bursts:     len(kept),
		Clustering: cluster.Result{K: 2, Assign: []int{1, 1, 2}},
		Attached:   make([][]trace.Sample, len(kept)),
	}
	opts := Options{}
	opts.setDefaults()

	rep := assemble(out, opts)
	if len(rep.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(rep.Phases))
	}
	if rep.Phases[0].Instances != 2 {
		t.Errorf("healthy phase damaged: %+v", rep.Phases[0])
	}
	for _, w := range rep.Phases[0].Warnings {
		if strings.Contains(w, "analysis failed") {
			t.Errorf("healthy phase marked failed: %v", rep.Phases[0].Warnings)
		}
	}
	bad := rep.Phases[1]
	if bad.ClusterID != 2 {
		t.Errorf("failed phase ClusterID = %d, want 2", bad.ClusterID)
	}
	if len(bad.Warnings) == 0 {
		t.Error("failed phase carries no warning")
	}
	if !rep.Degraded {
		t.Error("report with a panicked phase not marked Degraded")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "phase 2") {
			found = true
		}
	}
	if !found {
		t.Errorf("report warnings do not name the failed phase: %v", rep.Warnings)
	}
}

func TestPhaseWarningsIncludeFoldErrors(t *testing.T) {
	// nbody's integrate phase has a counter that never ticks; its fold
	// failure must surface as a phase warning without degrading the
	// report.
	rep := analyzeApp(t, "nbody", 80)
	var integ *Phase
	for i := range rep.Phases {
		if rep.Phases[i].MajorityOracle == 4 {
			integ = &rep.Phases[i]
		}
	}
	if integ == nil {
		t.Skip("integrate phase not among analyzed clusters")
	}
	if len(integ.FoldErrors) == 0 {
		t.Skip("no fold errors in integrate phase")
	}
	if len(integ.Warnings) == 0 {
		t.Error("fold errors not mirrored into phase warnings")
	}
	if rep.Degraded {
		t.Error("fold-fit failures alone must not degrade the report")
	}
}
