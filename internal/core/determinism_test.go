package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// TestAnalyzeParallelDeterminism is the parallel engine's contract: the
// Report must be deep-equal whether the pipeline runs on one worker or
// many. Every fan-out in Analyze writes to pre-sized indexed slots and
// reduces in a fixed order, so this holds bitwise, not just
// approximately.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	for _, name := range []string{"stencil", "cg"} {
		app, err := apps.ByName(name, 80)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Analyze(tr, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8} {
			par, err := Analyze(tr, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			// reflect.DeepEqual treats NaN != NaN; the silhouette is the
			// only field that can legitimately be NaN, so normalize it when
			// both sides agree it is.
			if math.IsNaN(seq.Clustering.Silhouette) && math.IsNaN(par.Clustering.Silhouette) {
				seq.Clustering.Silhouette, par.Clustering.Silhouette = 0, 0
			}
			if len(par.Phases) != len(seq.Phases) {
				t.Fatalf("%s p=%d: %d phases vs %d sequential", name, p, len(par.Phases), len(seq.Phases))
			}
			for i := range seq.Phases {
				if !reflect.DeepEqual(seq.Phases[i], par.Phases[i]) {
					t.Fatalf("%s p=%d: phase %d differs from the sequential run", name, p, i)
				}
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s p=%d: parallel Report differs from sequential outside the phases", name, p)
			}
		}
	}
}

// TestAnalyzeParallelismDefault checks that the zero Options select
// GOMAXPROCS-wide parallelism without changing any analytical output
// (the default path IS the parallel path).
func TestAnalyzeParallelismDefault(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Parallelism < 1 {
		t.Fatalf("default parallelism = %d", o.Parallelism)
	}
	if o.Cluster.Parallelism != o.Parallelism {
		t.Fatalf("cluster parallelism %d not inherited from %d", o.Cluster.Parallelism, o.Parallelism)
	}
	// An explicit cluster override must survive setDefaults.
	o2 := Options{Parallelism: 4}
	o2.Cluster.Parallelism = 2
	o2.setDefaults()
	if o2.Cluster.Parallelism != 2 {
		t.Fatalf("explicit cluster parallelism overwritten: %d", o2.Cluster.Parallelism)
	}
}
