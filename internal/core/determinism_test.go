package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
)

// TestAnalyzeParallelDeterminism is the parallel engine's contract: the
// Report must be deep-equal whether the pipeline runs on one worker or
// many. Every fan-out in Analyze writes to pre-sized indexed slots and
// reduces in a fixed order, so this holds bitwise, not just
// approximately.
func TestAnalyzeParallelDeterminism(t *testing.T) {
	for _, name := range []string{"stencil", "cg"} {
		app, err := apps.ByName(name, 80)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Analyze(tr, Options{Parallelism: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range []int{2, 8} {
			par, err := Analyze(tr, Options{Parallelism: p})
			if err != nil {
				t.Fatal(err)
			}
			normalizeReport(seq, par)
			if len(par.Phases) != len(seq.Phases) {
				t.Fatalf("%s p=%d: %d phases vs %d sequential", name, p, len(par.Phases), len(seq.Phases))
			}
			for i := range seq.Phases {
				if !reflect.DeepEqual(seq.Phases[i], par.Phases[i]) {
					t.Fatalf("%s p=%d: phase %d differs from the sequential run", name, p, i)
				}
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("%s p=%d: parallel Report differs from sequential outside the phases", name, p)
			}
		}
	}
}

// normalizeReport clears the fields two equivalent Reports may
// legitimately disagree on before a reflect.DeepEqual comparison: stage
// wall-clock times and byte counts (timing is not part of the analytical
// contract, and only a decoding source knows its encoded size) and a NaN
// silhouette (reflect.DeepEqual treats NaN != NaN; the silhouette is
// the only field that can legitimately be NaN, so it is zeroed when both
// sides agree it is).
func normalizeReport(a, b *Report) {
	for i := range a.Pipeline {
		a.Pipeline[i].Wall, a.Pipeline[i].Bytes = 0, 0
	}
	for i := range b.Pipeline {
		b.Pipeline[i].Wall, b.Pipeline[i].Bytes = 0, 0
	}
	if math.IsNaN(a.Clustering.Silhouette) && math.IsNaN(b.Clustering.Silhouette) {
		a.Clustering.Silhouette, b.Clustering.Silhouette = 0, 0
	}
}

// TestAnalyzeParallelismDefault checks that the zero Options select
// GOMAXPROCS-wide parallelism without changing any analytical output
// (the default path IS the parallel path).
func TestAnalyzeParallelismDefault(t *testing.T) {
	var o Options
	o.setDefaults()
	if o.Parallelism < 1 {
		t.Fatalf("default parallelism = %d", o.Parallelism)
	}
	if o.Cluster.Parallelism != o.Parallelism {
		t.Fatalf("cluster parallelism %d not inherited from %d", o.Cluster.Parallelism, o.Parallelism)
	}
	// An explicit cluster override must survive setDefaults.
	o2 := Options{Parallelism: 4}
	o2.Cluster.Parallelism = 2
	o2.setDefaults()
	if o2.Cluster.Parallelism != 2 {
		t.Fatalf("explicit cluster parallelism overwritten: %d", o2.Cluster.Parallelism)
	}
}
