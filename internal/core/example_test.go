package core_test

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/sim"
)

// ExampleAnalyze runs the full pipeline — simulate, extract bursts,
// cluster, fold — on the built-in stencil application and prints what the
// methodology unveils about its dominant phase.
func ExampleAnalyze() {
	app := apps.NewStencil(60)
	tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
	if err != nil {
		panic(err)
	}
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		panic(err)
	}
	ph := rep.Phases[0]
	f := ph.Folds[counters.TotIns]
	fmt.Printf("phases detected: %d\n", rep.Clustering.K)
	fmt.Printf("dominant phase: %d instances, purity %.0f%%\n", ph.Instances, 100*ph.OraclePurity)
	fmt.Printf("sub-phase breakpoints: %d\n", len(f.Breakpoints))
	fmt.Printf("iterations: %d (ranks agree: %v)\n", rep.Iterations.Count, rep.Iterations.RanksAgree)
	// Output:
	// phases detected: 2
	// dominant phase: 238 instances, purity 100%
	// sub-phase breakpoints: 1
	// iterations: 60 (ranks agree: true)
}
