package core

import (
	"fmt"
	"strings"
)

// fingerprintVersion salts every fingerprint so persisted cache entries
// (the rescache disk tier) are invalidated wholesale whenever the
// analysis semantics change incompatibly. Bump it when a pipeline
// change makes old Reports unreproducible from the same options.
const fingerprintVersion = "v1"

// Fingerprint canonicalizes the options into a stable string covering
// exactly the fields that shape the Report — the options half of a
// content-addressed cache key. Two Options values with the same
// fingerprint produce deep-equal (bit-identical) Reports for the same
// trace bytes; that is the determinism contract the analysis already
// locks by test.
//
// Result-invariant knobs are deliberately excluded so equivalent
// requests share one cache entry: Parallelism (TestAnalyzeParallelDeterminism),
// Cluster.Parallelism, Cluster.Index (exact either way), Columnar
// (TestColumnarEquivalence), StallTimeout and the loggers. Lenient IS
// included — salvage decoding changes what a damaged trace analyzes
// to, so strict and lenient results must never share an entry.
//
// Defaults are applied before rendering, so an unset field and its
// explicit default fingerprint identically.
func (o Options) Fingerprint() string {
	o.setDefaults()

	// Folding defaults live in the folding package; mirror them here so
	// zero values and explicit defaults collapse to one key.
	bins := o.Fold.Bins
	if bins == 0 {
		bins = 100
	}
	pruneK := o.Fold.PruneK
	if pruneK == 0 {
		pruneK = 3
	}
	kbw := o.Fold.KernelBandwidth
	if kbw == 0 {
		kbw = 0.02
	}
	maxSeg := o.Fold.MaxSegments
	if maxSeg == 0 {
		maxSeg = 6
	}
	segPen := o.Fold.SegmentPenalty
	if segPen == 0 {
		segPen = 0.02
	}
	minPts := o.Cluster.MinPts
	if minPts == 0 {
		minPts = 4
	}
	share := o.Cluster.MinClusterShare
	if share == 0 {
		share = 0.01
	}
	train := o.Stream.TrainBursts
	if train <= 0 {
		train = 512
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s|minb=%d|phases=%d|stackbins=%d|lenient=%t",
		fingerprintVersion, o.MinBurstDuration, o.MaxPhases, o.StackBins, o.Lenient)
	fmt.Fprintf(&b, "|online=%t|train=%d", o.Stream.Online, train)
	fmt.Fprintf(&b, "|eps=%.17g|minpts=%d|share=%.17g|ipc=%t|sil=%d",
		o.Cluster.Eps, minPts, share, o.Cluster.UseIPC, o.Cluster.SilhouetteSample)
	fmt.Fprintf(&b, "|bins=%d|model=%d|prunek=%.17g|kbw=%.17g|maxseg=%d|segpen=%.17g",
		bins, int(o.Fold.Model), pruneK, kbw, maxSeg, segPen)
	b.WriteString("|counters=")
	for i, c := range o.Counters {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(c.String())
	}
	return b.String()
}
