package core

import (
	"fmt"

	"repro/internal/trace"
)

// ShardMode selects how Split partitions a trace.
type ShardMode int

const (
	// ShardTime cuts the virtual timeline into equal windows, resolving
	// each cut per rank to the first MPI exit at or after the boundary.
	// Because a compute burst opens at an MPI exit and closes at the next
	// enter, and the resolved exit starts the next shard, every burst
	// lands in exactly one shard.
	ShardTime ShardMode = iota
	// ShardRank partitions ranks into contiguous groups; each shard keeps
	// the full timeline of its ranks.
	ShardRank
)

// String names the mode as the CLIs spell it (-shard-mode flag values).
func (m ShardMode) String() string {
	switch m {
	case ShardTime:
		return "time"
	case ShardRank:
		return "rank"
	}
	return fmt.Sprintf("ShardMode(%d)", int(m))
}

// ParseShardMode parses a -shard-mode flag value ("time", "rank").
func ParseShardMode(s string) (ShardMode, error) {
	switch s {
	case "time", "":
		return ShardTime, nil
	case "rank":
		return ShardRank, nil
	}
	return ShardTime, fmt.Errorf("core: unknown shard mode %q (want time or rank)", s)
}

// ShardSpec identifies one shard of a split analysis.
type ShardSpec struct {
	// Mode is how the trace was partitioned.
	Mode ShardMode
	// Index and Count place this shard in the split (0 <= Index < Count).
	Index, Count int
	// Resume marks a shard that does not start at the trace origin, so a
	// rank's first MPI event may legally be an exit (the head of a call
	// the previous shard opened). Time shards beyond the first set it.
	Resume bool
}

// WholeSpec is the spec of an unsharded analysis — the identity split.
func WholeSpec() ShardSpec {
	return ShardSpec{Mode: ShardTime, Index: 0, Count: 1}
}

// Shard is one piece of a split trace, ready for MapShard.
type Shard struct {
	Spec  ShardSpec
	Trace *trace.Trace
}

// Split partitions a trace into n shards for map/reduce analysis. Shard
// metadata keeps the original rank count and duration — shards share the
// virtual timeline; only the record sets are partitioned — and each
// record lands in exactly one shard:
//
//   - ShardTime resolves each window boundary per rank to the rank's
//     first MPI exit at or after it. The exit itself starts the next
//     shard (it becomes the shard's head: the burst it opens, and the
//     baseline it carries, belong wholly to that shard), and every other
//     record stays with the rank's current shard, so no burst and no
//     profile span is ever split. Samples and comms follow the same
//     per-rank (per-sender for comms) resolved boundaries.
//   - ShardRank gives shard k the contiguous rank group
//     [k*R/n, (k+1)*R/n); n is clamped to the rank count.
//
// A shard with no records is still a valid (identity) input to MapShard.
// Split does not mutate tr; shard record slices are fresh, metadata maps
// are shared read-only.
func Split(tr *trace.Trace, n int, mode ShardMode) []Shard {
	if n < 1 {
		n = 1
	}
	if mode == ShardRank && n > tr.Meta.Ranks {
		n = tr.Meta.Ranks
	}
	shards := make([]Shard, n)
	for k := range shards {
		shards[k].Spec = ShardSpec{Mode: mode, Index: k, Count: n, Resume: mode == ShardTime && k > 0}
		m := tr.Meta
		shards[k].Trace = &trace.Trace{Meta: m}
	}
	if n == 1 {
		shards[0].Trace.Events = append([]trace.Event(nil), tr.Events...)
		shards[0].Trace.Samples = append([]trace.Sample(nil), tr.Samples...)
		shards[0].Trace.Comms = append([]trace.Comm(nil), tr.Comms...)
		return shards
	}
	if mode == ShardRank {
		splitByRank(tr, shards)
	} else {
		splitByTime(tr, shards)
	}
	return shards
}

// splitByRank assigns each record to its rank's contiguous group.
func splitByRank(tr *trace.Trace, shards []Shard) {
	n := len(shards)
	ranks := tr.Meta.Ranks
	of := func(r int32) int {
		if r < 0 {
			return 0
		}
		k := int(r) * n / ranks
		if k >= n {
			k = n - 1
		}
		return k
	}
	for _, e := range tr.Events {
		t := shards[of(e.Rank)].Trace
		t.Events = append(t.Events, e)
	}
	for _, s := range tr.Samples {
		t := shards[of(s.Rank)].Trace
		t.Samples = append(t.Samples, s)
	}
	for _, c := range tr.Comms {
		t := shards[of(c.Src)].Trace
		t.Comms = append(t.Comms, c)
	}
}

// splitByTime cuts the timeline into len(shards) equal windows, resolved
// per rank at MPI exits (see Split).
func splitByTime(tr *trace.Trace, shards []Shard) {
	n := len(shards)
	dur := tr.Meta.Duration
	bound := make([]trace.Time, n)
	for k := 1; k < n; k++ {
		bound[k] = trace.Time(int64(dur) * int64(k) / int64(n))
	}

	type adv struct {
		shard int
		at    trace.Time
	}
	ranks := tr.Meta.Ranks
	cur := make([]int, ranks)
	// advances[r] records, in order, each shard the rank actually entered
	// and the head-exit time that opened it; samples and comms replay it.
	advances := make([][]adv, ranks)

	shardOf := func(r int32) int {
		if r < 0 || int(r) >= ranks {
			return 0
		}
		return cur[r]
	}
	for _, e := range tr.Events {
		k := shardOf(e.Rank)
		if e.Type == trace.EvMPI && e.Value == 0 && int(e.Rank) < ranks {
			r := e.Rank
			moved := false
			for cur[r]+1 < n && e.Time >= bound[cur[r]+1] {
				cur[r]++
				moved = true
			}
			if moved {
				advances[r] = append(advances[r], adv{cur[r], e.Time})
			}
			k = cur[r]
		}
		t := shards[k].Trace
		t.Events = append(t.Events, e)
	}

	// Replay the per-rank advances over the (per-rank time-ordered)
	// samples and comms: a record belongs to the last shard whose head
	// exit is at or before its time.
	ptr := make([]int, ranks)
	at := func(r int32, tm trace.Time) int {
		if r < 0 || int(r) >= ranks {
			return 0
		}
		a := advances[r]
		p := ptr[r]
		for p < len(a) && tm >= a[p].at {
			p++
		}
		ptr[r] = p
		if p == 0 {
			return 0
		}
		return a[p-1].shard
	}
	for _, s := range tr.Samples {
		t := shards[at(s.Rank, s.Time)].Trace
		t.Samples = append(t.Samples, s)
	}
	for r := range ptr {
		ptr[r] = 0
	}
	for _, c := range tr.Comms {
		t := shards[at(c.Src, c.SendTime)].Trace
		t.Comms = append(t.Comms, c)
	}
}
