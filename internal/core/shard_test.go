package core

import (
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/sim"
	"repro/internal/trace"
)

// shardTestTrace simulates a fixed app trace for the sharding tests.
func shardTestTrace(t *testing.T, name string, iters, ranks int) *trace.Trace {
	t.Helper()
	app, err := apps.ByName(name, iters)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(ranks), app)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestShardedEquivalence is the algebra's contract: Reduce over MapShard
// partials must reproduce the single-pass Report deep-equal — bit-identical
// floats — for 1, 2 and N shards, in both time and rank mode, and in all
// three phase-resolution flows: pooled clustering at reduce time (nil
// model), a broadcast model trained once on the pooled partials (including
// across a serialization round trip), and models trained independently per
// shard then merged.
func TestShardedEquivalence(t *testing.T) {
	for _, name := range []string{"stencil", "cg"} {
		tr := shardTestTrace(t, name, 60, 4)
		opts := Options{}
		want, err := Analyze(tr, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []ShardMode{ShardTime, ShardRank} {
			for _, n := range []int{1, 2, 5} {
				// Flow 1: pooled clustering at reduce time.
				got, err := AnalyzeSharded(tr, n, mode, opts)
				if err != nil {
					t.Fatalf("%s %v n=%d: %v", name, mode, n, err)
				}
				normalizeReport(want, got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s %v n=%d: sharded Report differs from single-pass", name, mode, n)
				}

				shards := Split(tr, n, mode)
				parts := make([]*Partial, len(shards))
				for i, sh := range shards {
					if parts[i], err = MapShard(sh, opts); err != nil {
						t.Fatalf("%s %v n=%d shard %d: %v", name, mode, n, i, err)
					}
				}

				// Flow 2: train once on the pooled partials, broadcast, classify.
				model, err := TrainModelFromPartials(parts, opts)
				if err != nil {
					t.Fatalf("%s %v n=%d: train: %v", name, mode, n, err)
				}
				enc, err := model.Encode()
				if err != nil {
					t.Fatalf("%s %v n=%d: encode model: %v", name, mode, n, err)
				}
				wire, err := cluster.DecodeModel(enc)
				if err != nil {
					t.Fatalf("%s %v n=%d: decode model: %v", name, mode, n, err)
				}
				got, err = Reduce(parts, wire, opts)
				if err != nil {
					t.Fatalf("%s %v n=%d: reduce with broadcast model: %v", name, mode, n, err)
				}
				normalizeReport(want, got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s %v n=%d: broadcast-model Report differs from single-pass", name, mode, n)
				}

				// Flow 3: train per shard independently, merge the models.
				// Every model retains its training bursts, so the merge is the
				// exact pooled retrain and classification stays bit-identical.
				var eff Options
				eff = opts
				eff.setDefaults()
				models := make([]*cluster.Model, len(parts))
				for i, p := range parts {
					models[i] = cluster.TrainModel(p.Kept, eff.Cluster)
				}
				merged, err := cluster.Merge(models, eff.Cluster)
				if err != nil {
					t.Fatalf("%s %v n=%d: merge models: %v", name, mode, n, err)
				}
				got, err = Reduce(parts, merged, opts)
				if err != nil {
					t.Fatalf("%s %v n=%d: reduce with merged model: %v", name, mode, n, err)
				}
				normalizeReport(want, got)
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("%s %v n=%d: merged-model Report differs from single-pass", name, mode, n)
				}
			}
		}
	}
}

// TestShardBurstInvariance is the shard-boundary property: a burst
// straddling a time-window cut must land in exactly one partial, so
// permuting the shard count never changes the total (or per-rank, or
// kept) burst counts. Exercised across every app and a sweep of shard
// counts in both modes.
func TestShardBurstInvariance(t *testing.T) {
	for _, name := range apps.Names() {
		tr := shardTestTrace(t, name, 40, 4)
		opts := Options{}
		whole, err := MapShardContext(t.Context(), trace.NewTraceSource(tr), WholeSpec(), opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []ShardMode{ShardTime, ShardRank} {
			for n := 1; n <= 7; n++ {
				shards := Split(tr, n, mode)
				total, kept := 0, 0
				perRank := make([]int, tr.Meta.Ranks)
				for i, sh := range shards {
					p, err := MapShard(sh, opts)
					if err != nil {
						t.Fatalf("%s %v n=%d shard %d: %v", name, mode, n, i, err)
					}
					total += p.Bursts
					kept += len(p.Kept)
					for r := 0; r < tr.Meta.Ranks; r++ {
						perRank[r] += p.RankBursts[r]
					}
				}
				if total != whole.Bursts {
					t.Fatalf("%s %v n=%d: %d bursts across shards, want %d", name, mode, n, total, whole.Bursts)
				}
				if kept != len(whole.Kept) {
					t.Fatalf("%s %v n=%d: %d kept across shards, want %d", name, mode, n, kept, len(whole.Kept))
				}
				if !reflect.DeepEqual(perRank, whole.RankBursts) {
					t.Fatalf("%s %v n=%d: per-rank bursts %v, want %v", name, mode, n, perRank, whole.RankBursts)
				}
			}
		}
	}
}

// TestShardRecordConservation checks that Split is a partition: every
// event, sample and comm lands in exactly one shard.
func TestShardRecordConservation(t *testing.T) {
	tr := shardTestTrace(t, "stencil", 40, 4)
	for _, mode := range []ShardMode{ShardTime, ShardRank} {
		for _, n := range []int{2, 3, 6} {
			ev, sm, cm := 0, 0, 0
			for _, sh := range Split(tr, n, mode) {
				ev += len(sh.Trace.Events)
				sm += len(sh.Trace.Samples)
				cm += len(sh.Trace.Comms)
			}
			if ev != len(tr.Events) || sm != len(tr.Samples) || cm != len(tr.Comms) {
				t.Fatalf("%v n=%d: %d/%d/%d records across shards, want %d/%d/%d",
					mode, n, ev, sm, cm, len(tr.Events), len(tr.Samples), len(tr.Comms))
			}
		}
	}
}

// TestReduceMissingShard locks the degraded contract: reducing with a
// shard missing still assembles a Report (the coordinator's survive-one-
// worker case) but withholds the cross-shard profile, whose boundary
// handoffs need every shard.
func TestReduceMissingShard(t *testing.T) {
	tr := shardTestTrace(t, "stencil", 60, 4)
	opts := Options{}
	shards := Split(tr, 3, ShardTime)
	parts := make([]*Partial, len(shards))
	for i, sh := range shards {
		var err error
		if parts[i], err = MapShard(sh, opts); err != nil {
			t.Fatal(err)
		}
	}
	parts[1] = nil // shard lost
	rep, err := Reduce(parts, nil, opts)
	if err != nil {
		t.Fatalf("reduce with a missing shard: %v", err)
	}
	if rep.Profile != nil || rep.ProfileErr == "" {
		t.Fatalf("profile should be withheld with a missing shard (got profile=%v err=%q)",
			rep.Profile != nil, rep.ProfileErr)
	}
	if rep.Bursts == 0 || len(rep.Clustering.Assign) == 0 {
		t.Fatal("surviving shards should still produce an analysis")
	}
	if _, err := Reduce([]*Partial{nil, nil}, nil, opts); err == nil {
		t.Fatal("reducing zero surviving partials should error")
	}
}

// TestReduceOnlineGuards locks the online partial constraints: exactly
// one, unmergeable, and never classified against a model.
func TestReduceOnlineGuards(t *testing.T) {
	tr := shardTestTrace(t, "stencil", 60, 4)
	opts := Options{Stream: StreamOptions{Online: true}}
	p, err := MapShardContext(t.Context(), trace.NewTraceSource(tr), WholeSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Online {
		t.Fatal("expected an online partial")
	}
	if _, err := Reduce([]*Partial{p, p}, nil, opts); err == nil {
		t.Fatal("merging online partials should error")
	}
	if _, err := Reduce([]*Partial{p}, &cluster.Model{}, opts); err == nil {
		t.Fatal("classifying online partials against a model should error")
	}
	if _, err := Reduce([]*Partial{p}, nil, opts); err != nil {
		t.Fatalf("reducing one online partial: %v", err)
	}
}
