package core

import (
	"fmt"
	"io"

	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// AnalyzeStream runs the full pipeline on an encoded trace read from r,
// record by record, without materializing the trace in memory. With the
// default (exact) StreamOptions the resulting Report is deep-equal to
// Analyze on the decoded trace; with Stream.Online set, memory stays
// bounded by bursts + folding bins regardless of how many samples the
// stream carries.
func AnalyzeStream(r io.Reader, opts Options) (*Report, error) {
	opts.setDefaults()
	sr, err := trace.NewStreamReader(r)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	out, err := pipeline.Run(sr, opts.pipelineConfig())
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return assemble(out, opts), nil
}

// assembleOnline builds the Report's phases from the pipeline's
// incrementally-folded snapshots. The burst-derived aggregates come from
// the same code path as the offline assembly; only the folded views
// differ (snapshots of running accumulators instead of offline fits over
// retained instances), and FoldInstances stays nil since the stream
// never kept the samples.
func assembleOnline(out *pipeline.Outcome, opts Options) []Phase {
	if len(out.OnlinePhases) == 0 {
		return nil
	}
	phases := make([]Phase, len(out.OnlinePhases))
	parallel.ForEach(len(out.OnlinePhases), opts.Parallelism, func(i int) {
		pf := out.OnlinePhases[i]
		ph := Phase{
			ClusterID:  pf.ClusterID,
			Folds:      pf.Folds,
			FoldErrors: pf.FoldErrors,
			Stacks:     pf.Stacks,
		}
		aggregatePhase(&ph, &out.Meta, out.Kept, pf.ClusterID)
		ph.Advice = advise(&out.Meta, &ph)
		phases[i] = ph
	})
	return phases
}
