package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/trace"
)

// AnalyzeStream runs the full pipeline on an encoded trace read from r,
// record by record, without materializing the trace in memory. With the
// default (exact) StreamOptions the resulting Report is deep-equal to
// Analyze on the decoded trace; with Stream.Online set, memory stays
// bounded by bursts + folding bins regardless of how many samples the
// stream carries. It is AnalyzeStreamContext with a background context.
func AnalyzeStream(r io.Reader, opts Options) (*Report, error) {
	return AnalyzeStreamContext(context.Background(), r, opts)
}

// AnalyzeStreamContext is AnalyzeStream under a context: reads of r are
// fenced by ctx and the pipeline stages stop at the next block boundary
// once ctx is cancelled, so a disconnected client or an expired
// deadline abandons the analysis promptly instead of draining the
// stream. The returned error satisfies errors.Is against ctx.Err(); a
// cancelled run never returns a partial Report.
func AnalyzeStreamContext(ctx context.Context, r io.Reader, opts Options) (*Report, error) {
	opts.setDefaults()
	if ctx.Done() != nil {
		r = &ctxReader{ctx: ctx, r: r}
	}
	mode := trace.Strict
	if opts.Lenient {
		mode = trace.Lenient
	}
	sr, err := trace.NewStreamReaderMode(r, mode)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: %w", cerr)
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	// One whole-stream shard through the map/reduce algebra; Reduce of a
	// single whole partial reproduces the single-pass analysis exactly, and
	// the fused online path travels through the same composition.
	p, err := MapShardContext(ctx, sr, WholeSpec(), opts)
	if err != nil {
		return nil, err
	}
	return Reduce([]*Partial{p}, nil, opts)
}

// MapShardStreamContext is the worker half of a distributed analysis:
// it decodes one encoded shard from r (strict or salvage mode per
// opts.Lenient, reads fenced by ctx like AnalyzeStreamContext) and runs
// the map half of the algebra over it, returning the mergeable Partial
// for a coordinator to Reduce. spec must carry the shard's place in the
// split — Reduce uses it to detect missing shards.
func MapShardStreamContext(ctx context.Context, r io.Reader, spec ShardSpec, opts Options) (*Partial, error) {
	opts.setDefaults()
	if ctx.Done() != nil {
		r = &ctxReader{ctx: ctx, r: r}
	}
	mode := trace.Strict
	if opts.Lenient {
		mode = trace.Lenient
	}
	sr, err := trace.NewStreamReaderMode(r, mode)
	if err != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, fmt.Errorf("core: %w", cerr)
		}
		return nil, fmt.Errorf("core: %w", err)
	}
	return MapShardContext(ctx, sr, spec, opts)
}

// ctxReader fences each Read with a context check, so a decoder pulling
// from an already-cancelled stream fails with the context's error
// instead of blocking on the underlying reader. (A read already blocked
// in the underlying reader is not interrupted; request bodies and other
// network readers fail on their own when the peer goes away.)
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (cr *ctxReader) Read(p []byte) (int, error) {
	if err := cr.ctx.Err(); err != nil {
		return 0, err
	}
	return cr.r.Read(p)
}

// assembleOnline builds the Report's phases from the pipeline's
// incrementally-folded snapshots. The burst-derived aggregates come from
// the same code path as the offline assembly; only the folded views
// differ (snapshots of running accumulators instead of offline fits over
// retained instances), and FoldInstances stays nil since the stream
// never kept the samples. Like the offline fan-out, a panic in one
// phase's assembly is contained to its slot and noted on the report.
func assembleOnline(rep *Report, out *pipeline.Outcome, opts Options) {
	if len(out.OnlinePhases) == 0 {
		return
	}
	phases := make([]Phase, len(out.OnlinePhases))
	panics := make([]string, len(out.OnlinePhases))
	parallel.ForEach(len(out.OnlinePhases), opts.Parallelism, func(i int) {
		pf := out.OnlinePhases[i]
		defer func() {
			if r := recover(); r != nil {
				panics[i] = fmt.Sprintf("%v", r)
				phases[i] = failedPhase(pf.ClusterID, panics[i])
			}
		}()
		ph := Phase{
			ClusterID:  pf.ClusterID,
			Folds:      pf.Folds,
			FoldErrors: pf.FoldErrors,
			Stacks:     pf.Stacks,
		}
		aggregatePhase(&ph, &out.Meta, out.Kept, pf.ClusterID)
		ph.Advice = advise(&out.Meta, &ph)
		phases[i] = ph
	})
	rep.Phases = phases
	notePhasePanics(rep, panics)
}
