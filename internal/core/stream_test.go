package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/apps"
	"repro/internal/cluster"
	"repro/internal/sim"
)

// TestAnalyzeStreamEquivalence is the streaming architecture's central
// contract: analyzing an encoded trace record-by-record with the default
// (exact) stream options produces a Report deep-equal to batch Analyze
// on the decoded trace, for every example application. Batch and stream
// share the same pipeline stages, so this pins the only things that
// differ — the source (in-memory vs decoder) and the sample routing.
func TestAnalyzeStreamEquivalence(t *testing.T) {
	for _, name := range apps.Names() {
		app, err := apps.ByName(name, 60)
		if err != nil {
			t.Fatal(err)
		}
		tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
		if err != nil {
			t.Fatal(err)
		}
		batch, err := Analyze(tr, Options{})
		if err != nil {
			t.Fatal(err)
		}

		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		stream, err := AnalyzeStream(&buf, Options{})
		if err != nil {
			t.Fatal(err)
		}

		if want := int64(len(tr.Events)); stream.Records.Events != want {
			t.Errorf("%s: stream consumed %d events, trace has %d", name, stream.Records.Events, want)
		}
		if want := int64(len(tr.Samples)); stream.Records.Samples != want {
			t.Errorf("%s: stream consumed %d samples, trace has %d", name, stream.Records.Samples, want)
		}
		if len(stream.Pipeline) != 4 {
			t.Errorf("%s: %d pipeline stages, want 4", name, len(stream.Pipeline))
		}
		normalizeReport(batch, stream)
		if !reflect.DeepEqual(batch, stream) {
			for i := range batch.Phases {
				if i < len(stream.Phases) && !reflect.DeepEqual(batch.Phases[i], stream.Phases[i]) {
					t.Errorf("%s: phase %d differs between batch and stream", name, i)
				}
			}
			t.Fatalf("%s: streaming Report differs from batch", name)
		}
	}
}

// TestAnalyzeStreamOnline exercises the bounded-memory path: train on a
// prefix, classify the rest, fold incrementally. The result is
// approximate by design, so the test checks structural soundness and
// that the classifier agrees with the full clustering on the vast
// majority of bursts.
func TestAnalyzeStreamOnline(t *testing.T) {
	app, err := apps.ByName("stencil", 120)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Analyze(tr, Options{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	opts := Options{Stream: StreamOptions{Online: true, TrainBursts: 128}}
	online, err := AnalyzeStream(&buf, opts)
	if err != nil {
		t.Fatal(err)
	}

	if !online.Online {
		t.Fatal("report not marked online")
	}
	if online.TrainErr != "" {
		t.Fatalf("classifier training failed: %s", online.TrainErr)
	}
	if len(online.Phases) == 0 {
		t.Fatal("online analysis found no phases")
	}
	for _, ph := range online.Phases {
		if ph.FoldInstances != nil {
			t.Errorf("phase %d retained fold instances in online mode", ph.ClusterID)
		}
		if ph.Instances == 0 {
			t.Errorf("phase %d has no instances", ph.ClusterID)
		}
		if len(ph.Folds) == 0 && len(ph.FoldErrors) == 0 {
			t.Errorf("phase %d has neither folds nor fold errors", ph.ClusterID)
		}
	}

	// The streamed assignments should agree with the batch clustering on
	// nearly all bursts (both analyses see identical kept bursts, in the
	// same order).
	ba, oa := batch.Clustering.Assign, online.Clustering.Assign
	if len(ba) != len(oa) {
		t.Fatalf("assign length %d vs batch %d", len(oa), len(ba))
	}
	agree := 0
	for i := range ba {
		if ba[i] == oa[i] {
			agree++
		}
	}
	if frac := float64(agree) / float64(len(ba)); frac < 0.8 {
		t.Fatalf("online classifier agrees with batch clustering on only %.0f%% of bursts", 100*frac)
	}
	if online.Clustering.K == 0 || len(online.Clustering.Assign) == 0 {
		t.Fatal("online clustering result is empty")
	}
	for _, a := range oa {
		if a != cluster.Noise && (a < 1 || a > online.Clustering.K) {
			t.Fatalf("online assignment %d outside [1,%d]", a, online.Clustering.K)
		}
	}
}
