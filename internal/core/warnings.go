package core

import "fmt"

// MaxWarnings caps Report.Warnings after deduplication. Long-lived
// lenient consumers (live sessions, replay loops) can otherwise grow a
// report without bound by accumulating one warning per salvaged chunk.
const MaxWarnings = 64

// BoundWarnings dedupes a warning list (keeping first-occurrence order,
// annotating repeats with a count suffix) and caps the result at
// MaxWarnings entries, replacing the overflow with a single suppression
// marker. It is idempotent: applying it to its own output returns the
// list unchanged, so layered callers (assemble, live sessions) can each
// bound defensively without perturbing report equivalence.
func BoundWarnings(ws []string) []string {
	if len(ws) <= 1 {
		return ws
	}
	counts := make(map[string]int, len(ws))
	order := make([]string, 0, len(ws))
	for _, w := range ws {
		if counts[w] == 0 {
			order = append(order, w)
		}
		counts[w]++
	}
	if len(order) == len(ws) && len(order) <= MaxWarnings {
		return ws
	}
	out := make([]string, 0, len(order))
	for _, w := range order {
		if len(out) == MaxWarnings-1 && len(order) > MaxWarnings {
			out = append(out, fmt.Sprintf("%d further distinct warning(s) suppressed", len(order)-len(out)))
			break
		}
		if n := counts[w]; n > 1 {
			w = fmt.Sprintf("%s (×%d)", w, n)
		}
		out = append(out, w)
	}
	return out
}
