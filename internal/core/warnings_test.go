package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func TestBoundWarningsDedupe(t *testing.T) {
	in := []string{"a", "b", "a", "a", "c", "b"}
	got := BoundWarnings(in)
	want := []string{"a (×3)", "b (×2)", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestBoundWarningsPassThrough(t *testing.T) {
	in := []string{"a", "b", "c"}
	if got := BoundWarnings(in); !reflect.DeepEqual(got, in) {
		t.Fatalf("distinct under-cap warnings must pass through unchanged, got %v", got)
	}
	if BoundWarnings(nil) != nil {
		t.Fatal("nil must stay nil")
	}
}

func TestBoundWarningsCap(t *testing.T) {
	var in []string
	for i := 0; i < MaxWarnings*3; i++ {
		in = append(in, fmt.Sprintf("warning %d", i))
	}
	got := BoundWarnings(in)
	if len(got) != MaxWarnings {
		t.Fatalf("got %d warnings, want the %d cap", len(got), MaxWarnings)
	}
	last := got[len(got)-1]
	if !strings.Contains(last, "suppressed") {
		t.Fatalf("cap overflow not marked: %q", last)
	}
	wantSuppressed := fmt.Sprintf("%d further distinct warning(s) suppressed", MaxWarnings*3-(MaxWarnings-1))
	if last != wantSuppressed {
		t.Fatalf("overflow marker %q, want %q", last, wantSuppressed)
	}
}

// TestBoundWarningsIdempotent: the session snapshot path applies
// BoundWarnings on top of assemble's application, so a bounded list
// must bound to itself.
func TestBoundWarningsIdempotent(t *testing.T) {
	cases := [][]string{
		nil,
		{"a"},
		{"a", "b", "a", "c", "c", "c"},
	}
	var big []string
	for i := 0; i < MaxWarnings*2; i++ {
		big = append(big, fmt.Sprintf("w%d", i))
	}
	cases = append(cases, big)
	for _, in := range cases {
		once := BoundWarnings(in)
		twice := BoundWarnings(append([]string(nil), once...))
		if !reflect.DeepEqual(once, twice) {
			t.Fatalf("not idempotent: %v -> %v", once, twice)
		}
	}
}
