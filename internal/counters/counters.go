// Package counters models synthetic hardware performance counters in the
// style of PAPI presets. A counter is a monotonically increasing per-thread
// accumulator (e.g. completed instructions). The package also provides
// Shape, an analytic description of how a counter evolves *inside* one
// instance of a computation phase — the ground truth that the folding
// mechanism reconstructs from coarse samples.
package counters

import "fmt"

// Counter identifies one synthetic hardware counter. The set mirrors the
// PAPI presets the original tooling (Extrae + PAPI) collects by default.
type Counter uint8

// The counters tracked by the simulator.
const (
	TotIns Counter = iota // PAPI_TOT_INS: completed instructions
	TotCyc                // PAPI_TOT_CYC: total cycles
	L1DCM                 // PAPI_L1_DCM: level-1 data-cache misses
	L2DCM                 // PAPI_L2_DCM: level-2 data-cache misses
	FPOps                 // PAPI_FP_OPS: floating-point operations
	NumCounters
)

var counterNames = [NumCounters]string{
	TotIns: "PAPI_TOT_INS",
	TotCyc: "PAPI_TOT_CYC",
	L1DCM:  "PAPI_L1_DCM",
	L2DCM:  "PAPI_L2_DCM",
	FPOps:  "PAPI_FP_OPS",
}

// String returns the PAPI-style name of the counter.
func (c Counter) String() string {
	if c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("PAPI_UNKNOWN_%d", uint8(c))
}

// MarshalText renders the counter as its PAPI-style name, so JSON maps
// keyed by Counter (the Report's per-counter folds) use readable keys
// like "PAPI_TOT_INS" instead of raw enum numbers.
func (c Counter) MarshalText() ([]byte, error) {
	return []byte(c.String()), nil
}

// UnmarshalText parses a PAPI-style counter name, inverting MarshalText.
func (c *Counter) UnmarshalText(text []byte) error {
	v, err := ParseCounter(string(text))
	if err != nil {
		return err
	}
	*c = v
	return nil
}

// ParseCounter resolves a PAPI-style name to a Counter.
func ParseCounter(name string) (Counter, error) {
	for c, n := range counterNames {
		if n == name {
			return Counter(c), nil
		}
	}
	return 0, fmt.Errorf("counters: unknown counter %q", name)
}

// All returns every defined counter, in order.
func All() []Counter {
	cs := make([]Counter, NumCounters)
	for i := range cs {
		cs[i] = Counter(i)
	}
	return cs
}

// Values is a snapshot of all counters at one point in time. Counters only
// ever increase during execution, so differences between two snapshots taken
// on the same thread are non-negative.
type Values [NumCounters]int64

// Sub returns v - w component-wise.
func (v Values) Sub(w Values) Values {
	var r Values
	for i := range v {
		r[i] = v[i] - w[i]
	}
	return r
}

// Add returns v + w component-wise.
func (v Values) Add(w Values) Values {
	var r Values
	for i := range v {
		r[i] = v[i] + w[i]
	}
	return r
}

// Get returns the value of counter c.
func (v Values) Get(c Counter) int64 { return v[c] }

// IPC returns instructions per cycle for the snapshot (or delta), or 0 when
// no cycles are recorded.
func (v Values) IPC() float64 {
	if v[TotCyc] == 0 {
		return 0
	}
	return float64(v[TotIns]) / float64(v[TotCyc])
}

// String formats the snapshot as name=value pairs.
func (v Values) String() string {
	s := ""
	for c := Counter(0); c < NumCounters; c++ {
		if c > 0 {
			s += " "
		}
		s += fmt.Sprintf("%s=%d", c, v[c])
	}
	return s
}
