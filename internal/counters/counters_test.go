package counters

import (
	"strings"
	"testing"
)

func TestCounterNames(t *testing.T) {
	cases := map[Counter]string{
		TotIns: "PAPI_TOT_INS",
		TotCyc: "PAPI_TOT_CYC",
		L1DCM:  "PAPI_L1_DCM",
		L2DCM:  "PAPI_L2_DCM",
		FPOps:  "PAPI_FP_OPS",
	}
	for c, want := range cases {
		if c.String() != want {
			t.Errorf("%d.String() = %q, want %q", c, c.String(), want)
		}
		got, err := ParseCounter(want)
		if err != nil || got != c {
			t.Errorf("ParseCounter(%q) = %v, %v", want, got, err)
		}
	}
	if Counter(200).String() != "PAPI_UNKNOWN_200" {
		t.Errorf("unknown counter name = %q", Counter(200).String())
	}
	if _, err := ParseCounter("PAPI_NOPE"); err == nil {
		t.Error("ParseCounter of bogus name must fail")
	}
}

func TestAllCounters(t *testing.T) {
	all := All()
	if len(all) != int(NumCounters) {
		t.Fatalf("All() returned %d counters, want %d", len(all), NumCounters)
	}
	for i, c := range all {
		if c != Counter(i) {
			t.Fatalf("All()[%d] = %v", i, c)
		}
	}
}

func TestValuesArithmetic(t *testing.T) {
	a := Values{100, 200, 10, 5, 50}
	b := Values{40, 100, 4, 1, 20}
	d := a.Sub(b)
	if d != (Values{60, 100, 6, 4, 30}) {
		t.Fatalf("Sub = %v", d)
	}
	s := d.Add(b)
	if s != a {
		t.Fatalf("Add did not invert Sub: %v != %v", s, a)
	}
	if d.Get(TotIns) != 60 {
		t.Fatalf("Get = %d", d.Get(TotIns))
	}
}

func TestValuesIPC(t *testing.T) {
	v := Values{}
	if v.IPC() != 0 {
		t.Fatal("IPC with zero cycles must be 0")
	}
	v[TotIns] = 300
	v[TotCyc] = 200
	if got := v.IPC(); got != 1.5 {
		t.Fatalf("IPC = %v, want 1.5", got)
	}
}

func TestValuesString(t *testing.T) {
	v := Values{1, 2, 3, 4, 5}
	s := v.String()
	if !strings.Contains(s, "PAPI_TOT_INS=1") || !strings.Contains(s, "PAPI_FP_OPS=5") {
		t.Fatalf("String = %q", s)
	}
}
