package counters

import (
	"fmt"
	"math"
)

// Shape describes the normalized internal evolution of one metric within a
// single instance of a computation phase. The domain is normalized time
// u ∈ [0,1] (fraction of the instance elapsed); the codomain is normalized
// progress: Integral(0) = 0, Integral(1) = 1, and Rate(u) = d Integral/du ≥ 0.
//
// A phase that accrues C total counts over duration d therefore has
// counter value C·Integral(t/d) after t time units, and instantaneous rate
// C/d·Rate(t/d). Shapes are the analytic ground truth against which the
// folding reconstruction is validated.
//
// Implementations must be pure functions of u; callers may clamp u into
// [0,1] but implementations must also tolerate slight excursions due to
// floating-point roundoff.
type Shape interface {
	// Rate returns the normalized instantaneous rate at progress u.
	Rate(u float64) float64
	// Integral returns the cumulative fraction accrued in [0, u].
	Integral(u float64) float64
}

func clamp01(u float64) float64 {
	if u < 0 {
		return 0
	}
	if u > 1 {
		return 1
	}
	return u
}

// ---------------------------------------------------------------------------
// Constant

type constantShape struct{}

// Constant returns the flat shape: the metric accrues uniformly over the
// instance (Rate ≡ 1).
func Constant() Shape { return constantShape{} }

func (constantShape) Rate(u float64) float64     { return 1 }
func (constantShape) Integral(u float64) float64 { return clamp01(u) }

func (constantShape) String() string { return "constant" }

// ---------------------------------------------------------------------------
// Linear

type linearShape struct {
	r0, r1 float64 // normalized endpoint rates; (r0+r1)/2 == 1
}

// Linear returns a shape whose rate varies linearly from r0 at the start of
// the instance to r1 at the end. r0 and r1 are relative weights: only their
// ratio matters, the shape is normalized so Integral(1) = 1. It panics if
// either endpoint is negative or both are zero.
func Linear(r0, r1 float64) Shape {
	if r0 < 0 || r1 < 0 || (r0 == 0 && r1 == 0) {
		panic(fmt.Sprintf("counters: invalid Linear endpoints (%g, %g)", r0, r1))
	}
	mean := (r0 + r1) / 2
	return linearShape{r0: r0 / mean, r1: r1 / mean}
}

func (s linearShape) Rate(u float64) float64 {
	u = clamp01(u)
	return s.r0 + (s.r1-s.r0)*u
}

func (s linearShape) Integral(u float64) float64 {
	u = clamp01(u)
	return s.r0*u + (s.r1-s.r0)*u*u/2
}

func (s linearShape) String() string { return fmt.Sprintf("linear(%g→%g)", s.r0, s.r1) }

// ---------------------------------------------------------------------------
// Sine

type sineShape struct {
	amp    float64 // relative amplitude in [0,1)
	cycles float64 // number of full periods across the instance
	norm   float64 // 1 / Integral_raw(1)
}

// Sine returns a shape whose rate oscillates as 1 + amp·sin(2π·cycles·u),
// modelling periodic behaviour inside a phase (e.g. alternating sweep
// directions). amp must be in [0, 1) so the rate stays positive; cycles
// must be positive. Non-integer cycle counts are allowed; the shape is
// re-normalized so Integral(1) = 1.
func Sine(amp, cycles float64) Shape {
	if amp < 0 || amp >= 1 {
		panic(fmt.Sprintf("counters: Sine amplitude %g out of [0,1)", amp))
	}
	if cycles <= 0 {
		panic(fmt.Sprintf("counters: Sine cycles %g must be positive", cycles))
	}
	s := sineShape{amp: amp, cycles: cycles, norm: 1}
	s.norm = 1 / s.rawIntegral(1)
	return s
}

func (s sineShape) rawIntegral(u float64) float64 {
	w := 2 * math.Pi * s.cycles
	return u - s.amp/w*(math.Cos(w*u)-1)
}

func (s sineShape) Rate(u float64) float64 {
	u = clamp01(u)
	return s.norm * (1 + s.amp*math.Sin(2*math.Pi*s.cycles*u))
}

func (s sineShape) Integral(u float64) float64 {
	u = clamp01(u)
	return s.norm * s.rawIntegral(u)
}

func (s sineShape) String() string { return fmt.Sprintf("sine(amp=%g,cycles=%g)", s.amp, s.cycles) }

// ---------------------------------------------------------------------------
// ExpDecay

type expDecayShape struct {
	ratio, tau float64
	norm       float64
}

// ExpDecay returns a shape whose rate starts elevated by a factor
// (1 + ratio) and decays exponentially with time constant tau (in normalized
// time) towards the base rate — the classic cache-warm-up profile where
// misses (or stalls) are concentrated at the beginning of the phase.
// ratio must be > -1 (a negative ratio models a rate that *grows* as the
// phase proceeds); tau must be positive.
func ExpDecay(ratio, tau float64) Shape {
	if ratio <= -1 {
		panic(fmt.Sprintf("counters: ExpDecay ratio %g must be > -1", ratio))
	}
	if tau <= 0 {
		panic(fmt.Sprintf("counters: ExpDecay tau %g must be positive", tau))
	}
	s := expDecayShape{ratio: ratio, tau: tau, norm: 1}
	s.norm = 1 / s.rawIntegral(1)
	return s
}

func (s expDecayShape) rawIntegral(u float64) float64 {
	return u + s.ratio*s.tau*(1-math.Exp(-u/s.tau))
}

func (s expDecayShape) Rate(u float64) float64 {
	u = clamp01(u)
	return s.norm * (1 + s.ratio*math.Exp(-u/s.tau))
}

func (s expDecayShape) Integral(u float64) float64 {
	u = clamp01(u)
	return s.norm * s.rawIntegral(u)
}

func (s expDecayShape) String() string {
	return fmt.Sprintf("expdecay(ratio=%g,tau=%g)", s.ratio, s.tau)
}

// ---------------------------------------------------------------------------
// Piecewise

// Segment is one stretch of a Piecewise shape. Width is the fraction of the
// normalized time axis the segment occupies; Area is the fraction of the
// total metric accrued during the segment; Shape describes the evolution
// within the segment (itself normalized). A compute-bound sub-phase followed
// by a memory-bound one is expressed as two segments with different
// Area/Width ratios.
type Segment struct {
	Width float64
	Area  float64
	Shape Shape
}

type piecewiseShape struct {
	segs   []Segment
	uEdges []float64 // cumulative widths, len = len(segs)+1
	aEdges []float64 // cumulative areas, len = len(segs)+1
}

// Piecewise composes segments into a single shape. Widths and areas are
// relative weights and are normalized to sum to 1. Each segment's Shape
// defaults to Constant when nil. It panics when no segments are given or
// any weight is non-positive.
func Piecewise(segs ...Segment) Shape {
	if len(segs) == 0 {
		panic("counters: Piecewise needs at least one segment")
	}
	var wSum, aSum float64
	for i, s := range segs {
		if s.Width <= 0 || s.Area <= 0 {
			panic(fmt.Sprintf("counters: Piecewise segment %d has non-positive weight (width=%g area=%g)", i, s.Width, s.Area))
		}
		wSum += s.Width
		aSum += s.Area
	}
	p := piecewiseShape{
		segs:   make([]Segment, len(segs)),
		uEdges: make([]float64, len(segs)+1),
		aEdges: make([]float64, len(segs)+1),
	}
	for i, s := range segs {
		if s.Shape == nil {
			s.Shape = Constant()
		}
		s.Width /= wSum
		s.Area /= aSum
		p.segs[i] = s
		p.uEdges[i+1] = p.uEdges[i] + s.Width
		p.aEdges[i+1] = p.aEdges[i] + s.Area
	}
	// Absorb roundoff so the final edges are exactly 1.
	p.uEdges[len(segs)] = 1
	p.aEdges[len(segs)] = 1
	return p
}

// segAt locates the segment containing u by binary search.
func (p piecewiseShape) segAt(u float64) int {
	lo, hi := 0, len(p.segs)-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if p.uEdges[mid] <= u {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}

func (p piecewiseShape) Rate(u float64) float64 {
	u = clamp01(u)
	i := p.segAt(u)
	s := p.segs[i]
	local := (u - p.uEdges[i]) / s.Width
	return s.Area / s.Width * s.Shape.Rate(local)
}

func (p piecewiseShape) Integral(u float64) float64 {
	u = clamp01(u)
	i := p.segAt(u)
	s := p.segs[i]
	local := (u - p.uEdges[i]) / s.Width
	return p.aEdges[i] + s.Area*s.Shape.Integral(local)
}

func (p piecewiseShape) String() string { return fmt.Sprintf("piecewise(%d segments)", len(p.segs)) }

// ---------------------------------------------------------------------------
// Helpers

// MeanAbsDiff returns the mean absolute difference between the integrals of
// two shapes, evaluated on a uniform grid of n+1 points. It is the metric
// the paper uses to compare folded reconstructions against references
// ("absolute mean difference"), expressed as a fraction of the total (so
// 0.05 ≡ 5%).
func MeanAbsDiff(a, b Shape, n int) float64 {
	if n < 1 {
		n = 100
	}
	var sum float64
	for i := 0; i <= n; i++ {
		u := float64(i) / float64(n)
		sum += math.Abs(a.Integral(u) - b.Integral(u))
	}
	return sum / float64(n+1)
}

// TableShape adapts a sampled cumulative curve (uniform grid over [0,1],
// ys[0] = 0, ys[len-1] = 1 expected) into a Shape using linear
// interpolation. It is used to wrap empirical reconstructions for
// comparison with analytic ground truth.
type TableShape struct {
	ys []float64
}

// NewTableShape builds a TableShape from cumulative values on a uniform
// grid. It panics when fewer than two points are provided.
func NewTableShape(ys []float64) *TableShape {
	if len(ys) < 2 {
		panic("counters: TableShape needs at least 2 points")
	}
	cp := append([]float64(nil), ys...)
	return &TableShape{ys: cp}
}

// Integral linearly interpolates the tabulated cumulative curve.
func (t *TableShape) Integral(u float64) float64 {
	u = clamp01(u)
	n := len(t.ys) - 1
	pos := u * float64(n)
	i := int(pos)
	if i >= n {
		return t.ys[n]
	}
	frac := pos - float64(i)
	return t.ys[i]*(1-frac) + t.ys[i+1]*frac
}

// Rate differentiates the tabulated curve with a central difference.
func (t *TableShape) Rate(u float64) float64 {
	n := len(t.ys) - 1
	h := 1 / float64(n)
	u = clamp01(u)
	lo, hi := u-h/2, u+h/2
	if lo < 0 {
		lo, hi = 0, h
	}
	if hi > 1 {
		lo, hi = 1-h, 1
	}
	return (t.Integral(hi) - t.Integral(lo)) / (hi - lo)
}
