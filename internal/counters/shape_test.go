package counters

import (
	"math"
	"testing"
	"testing/quick"
)

// allShapes returns a representative set of shapes for property tests.
func allShapes() map[string]Shape {
	return map[string]Shape{
		"constant":      Constant(),
		"linear-up":     Linear(0.5, 1.5),
		"linear-down":   Linear(2, 0.5),
		"linear-zero0":  Linear(0, 2),
		"sine-1cycle":   Sine(0.5, 1),
		"sine-3.5cycle": Sine(0.9, 3.5),
		"expdecay":      ExpDecay(3, 0.1),
		"expgrow":       ExpDecay(-0.8, 0.3),
		"piecewise": Piecewise(
			Segment{Width: 0.3, Area: 0.5, Shape: Linear(1, 2)},
			Segment{Width: 0.5, Area: 0.2, Shape: Constant()},
			Segment{Width: 0.2, Area: 0.3, Shape: ExpDecay(2, 0.2)},
		),
		"piecewise-nested": Piecewise(
			Segment{Width: 1, Area: 1, Shape: Piecewise(
				Segment{Width: 1, Area: 2},
				Segment{Width: 2, Area: 1},
			)},
			Segment{Width: 1, Area: 1, Shape: Sine(0.3, 2)},
		),
	}
}

func TestShapeBoundaryConditions(t *testing.T) {
	for name, s := range allShapes() {
		if got := s.Integral(0); math.Abs(got) > 1e-12 {
			t.Errorf("%s: Integral(0) = %g, want 0", name, got)
		}
		if got := s.Integral(1); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: Integral(1) = %g, want 1", name, got)
		}
		// Out-of-range arguments clamp.
		if got := s.Integral(-0.5); math.Abs(got) > 1e-12 {
			t.Errorf("%s: Integral(-0.5) = %g, want 0", name, got)
		}
		if got := s.Integral(1.5); math.Abs(got-1) > 1e-12 {
			t.Errorf("%s: Integral(1.5) = %g, want 1", name, got)
		}
	}
}

func TestShapeIntegralMonotone(t *testing.T) {
	for name, s := range allShapes() {
		prev := s.Integral(0)
		for i := 1; i <= 1000; i++ {
			u := float64(i) / 1000
			cur := s.Integral(u)
			if cur < prev-1e-12 {
				t.Fatalf("%s: Integral not monotone at u=%g: %g < %g", name, u, cur, prev)
			}
			prev = cur
		}
	}
}

func TestShapeRateNonNegative(t *testing.T) {
	for name, s := range allShapes() {
		for i := 0; i <= 1000; i++ {
			u := float64(i) / 1000
			if r := s.Rate(u); r < -1e-12 {
				t.Fatalf("%s: Rate(%g) = %g < 0", name, u, r)
			}
		}
	}
}

// TestShapeRateIsDerivative checks Rate ≈ d/du Integral numerically.
func TestShapeRateIsDerivative(t *testing.T) {
	const h = 1e-6
	for name, s := range allShapes() {
		for i := 1; i < 100; i++ {
			u := float64(i) / 100
			if u-h < 0 || u+h > 1 {
				continue
			}
			num := (s.Integral(u+h) - s.Integral(u-h)) / (2 * h)
			got := s.Rate(u)
			// Piecewise shapes have rate discontinuities at segment edges.
			if math.Abs(num-got) > 1e-3*(1+math.Abs(got)) {
				// Tolerate mismatch only immediately around an edge.
				numL := (s.Integral(u) - s.Integral(u-h)) / h
				numR := (s.Integral(u+h) - s.Integral(u)) / h
				if math.Abs(numL-got) > 1e-3*(1+math.Abs(got)) && math.Abs(numR-got) > 1e-3*(1+math.Abs(got)) {
					t.Fatalf("%s: Rate(%g) = %g but numeric derivative = %g", name, u, got, num)
				}
			}
		}
	}
}

func TestConstantShape(t *testing.T) {
	s := Constant()
	if s.Rate(0.3) != 1 || s.Integral(0.3) != 0.3 {
		t.Fatalf("Constant: rate=%g integral=%g", s.Rate(0.3), s.Integral(0.3))
	}
}

func TestLinearShapeKnownValues(t *testing.T) {
	// Linear(0,2): normalized rate goes 0→2, integral = u².
	s := Linear(0, 2)
	for _, u := range []float64{0, 0.25, 0.5, 1} {
		if got := s.Integral(u); math.Abs(got-u*u) > 1e-12 {
			t.Fatalf("Linear(0,2).Integral(%g) = %g, want %g", u, got, u*u)
		}
	}
	if got := s.Rate(0.5); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Linear(0,2).Rate(0.5) = %g, want 1", got)
	}
}

func TestLinearNormalization(t *testing.T) {
	// Only the ratio of endpoints matters.
	a, b := Linear(1, 3), Linear(10, 30)
	for i := 0; i <= 10; i++ {
		u := float64(i) / 10
		if math.Abs(a.Integral(u)-b.Integral(u)) > 1e-12 {
			t.Fatalf("Linear normalization differs at u=%g", u)
		}
	}
}

func TestShapeConstructorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"linear-negative":   func() { Linear(-1, 2) },
		"linear-both-zero":  func() { Linear(0, 0) },
		"sine-amp-too-big":  func() { Sine(1, 2) },
		"sine-neg-amp":      func() { Sine(-0.1, 2) },
		"sine-zero-cycles":  func() { Sine(0.5, 0) },
		"expdecay-ratio":    func() { ExpDecay(-1, 0.5) },
		"expdecay-tau":      func() { ExpDecay(1, 0) },
		"piecewise-empty":   func() { Piecewise() },
		"piecewise-zero-w":  func() { Piecewise(Segment{Width: 0, Area: 1}) },
		"piecewise-zero-a":  func() { Piecewise(Segment{Width: 1, Area: 0}) },
		"tableshape-tooFew": func() { NewTableShape([]float64{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSineIntegerCyclesMeanRateOne(t *testing.T) {
	// With integer cycles the sine integrates away, so normalization should
	// be the identity: Rate(0) == 1 exactly (sin(0) = 0).
	s := Sine(0.7, 4)
	if got := s.Rate(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Sine(0.7,4).Rate(0) = %g, want 1", got)
	}
}

func TestExpDecayFrontLoaded(t *testing.T) {
	s := ExpDecay(5, 0.15)
	// More than half the metric accrues in the first third.
	if got := s.Integral(1.0 / 3); got <= 0.5 {
		t.Fatalf("ExpDecay front-load: Integral(1/3) = %g, want > 0.5", got)
	}
	if s.Rate(0) <= s.Rate(1) {
		t.Fatalf("ExpDecay rate should decrease: r(0)=%g r(1)=%g", s.Rate(0), s.Rate(1))
	}
}

func TestExpGrowBackLoaded(t *testing.T) {
	s := ExpDecay(-0.9, 0.3)
	if s.Rate(0) >= s.Rate(1) {
		t.Fatalf("negative-ratio ExpDecay should grow: r(0)=%g r(1)=%g", s.Rate(0), s.Rate(1))
	}
}

func TestPiecewiseAreaSplit(t *testing.T) {
	// 30% of time carries 70% of the work.
	s := Piecewise(
		Segment{Width: 0.3, Area: 0.7},
		Segment{Width: 0.7, Area: 0.3},
	)
	if got := s.Integral(0.3); math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("Integral(0.3) = %g, want 0.7", got)
	}
	// Rate in first segment = 0.7/0.3, second = 0.3/0.7.
	if got := s.Rate(0.1); math.Abs(got-0.7/0.3) > 1e-12 {
		t.Fatalf("Rate(0.1) = %g, want %g", got, 0.7/0.3)
	}
	if got := s.Rate(0.9); math.Abs(got-0.3/0.7) > 1e-12 {
		t.Fatalf("Rate(0.9) = %g, want %g", got, 0.3/0.7)
	}
}

func TestPiecewiseWeightNormalization(t *testing.T) {
	a := Piecewise(Segment{Width: 1, Area: 3}, Segment{Width: 1, Area: 1})
	b := Piecewise(Segment{Width: 10, Area: 75}, Segment{Width: 10, Area: 25})
	for i := 0; i <= 20; i++ {
		u := float64(i) / 20
		if math.Abs(a.Integral(u)-b.Integral(u)) > 1e-12 {
			t.Fatalf("piecewise weight normalization differs at u=%g", u)
		}
	}
}

func TestPiecewiseManySegmentsBinarySearch(t *testing.T) {
	segs := make([]Segment, 64)
	for i := range segs {
		segs[i] = Segment{Width: 1, Area: float64(i + 1)}
	}
	s := Piecewise(segs...)
	prev := -1.0
	for i := 0; i <= 640; i++ {
		u := float64(i) / 640
		v := s.Integral(u)
		if v < prev {
			t.Fatalf("non-monotone at u=%g", u)
		}
		prev = v
	}
	if math.Abs(s.Integral(1)-1) > 1e-12 {
		t.Fatalf("Integral(1) = %g", s.Integral(1))
	}
}

func TestMeanAbsDiff(t *testing.T) {
	if d := MeanAbsDiff(Constant(), Constant(), 100); d != 0 {
		t.Fatalf("self-diff = %g", d)
	}
	d := MeanAbsDiff(Constant(), Linear(0, 2), 1000)
	// ∫|u - u²|du = 1/6 ≈ 0.1667
	if math.Abs(d-1.0/6) > 1e-3 {
		t.Fatalf("MeanAbsDiff = %g, want ≈ 1/6", d)
	}
	if d2 := MeanAbsDiff(Constant(), Linear(0, 2), 0); d2 <= 0 {
		t.Fatalf("default grid MeanAbsDiff = %g", d2)
	}
}

func TestTableShapeRoundTrip(t *testing.T) {
	// Tabulate an analytic shape and check the table tracks it closely.
	src := ExpDecay(2, 0.2)
	n := 200
	ys := make([]float64, n+1)
	for i := range ys {
		ys[i] = src.Integral(float64(i) / float64(n))
	}
	tab := NewTableShape(ys)
	if d := MeanAbsDiff(src, tab, 997); d > 1e-4 {
		t.Fatalf("table reconstruction diff = %g", d)
	}
	// Rate should approximate the analytic rate away from the edges.
	for _, u := range []float64{0.1, 0.5, 0.9} {
		if got, want := tab.Rate(u), src.Rate(u); math.Abs(got-want) > 0.02*(1+want) {
			t.Fatalf("table Rate(%g) = %g, want ≈ %g", u, got, want)
		}
	}
	// Edge rates must not read out of range.
	_ = tab.Rate(0)
	_ = tab.Rate(1)
}

func TestTableShapeDoesNotAliasInput(t *testing.T) {
	ys := []float64{0, 0.5, 1}
	tab := NewTableShape(ys)
	ys[1] = 0.9
	if got := tab.Integral(0.5); got != 0.5 {
		t.Fatalf("TableShape aliased caller slice: Integral(0.5) = %g", got)
	}
}

func TestShapeIntegralMonotoneProperty(t *testing.T) {
	shapes := allShapes()
	names := make([]string, 0, len(shapes))
	for n := range shapes {
		names = append(names, n)
	}
	f := func(idx uint, a, b float64) bool {
		s := shapes[names[int(idx%uint(len(names)))]]
		ua, ub := math.Abs(math.Mod(a, 1)), math.Abs(math.Mod(b, 1))
		if math.IsNaN(ua) || math.IsNaN(ub) {
			return true
		}
		if ua > ub {
			ua, ub = ub, ua
		}
		return s.Integral(ub)-s.Integral(ua) >= -1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
