// Package diff implements cross-run differential analysis: given two
// analyzed runs of (nominally) the same application — a before/after
// pair around a code change, two build configurations, or plain
// run-to-run noise — it matches the detected computation phases across
// the runs, resamples each matched pair's folded rate curves onto a
// common normalized-time grid, and reports *where inside the phase* the
// behavior diverged. This is the automatic-performance-debugging layer
// the SPMD similarity-analysis line of work builds on top of phase
// structure (arXiv:0906.1326, arXiv:1002.4264): the clusters say which
// phases exist, the folded curves say what happens inside them, and the
// diff says what changed between runs and at which normalized time.
//
// Phases are matched by cluster-centroid similarity in the same raw
// feature space the clustering engine uses (log10 duration, log10
// instructions, IPC), reusing the capture-radius matching rule from
// cluster.Model.Merge. When either side is degraded — salvage-decoded,
// quantile-fallback clustering, or missing instruction folds — matching
// degrades to pairing phases by duration rank (the same ordering
// cluster.QuantileFallback splits on) and every affected pair is marked.
package diff

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/trace"
)

// Options parameterizes a comparison. The zero value selects sensible
// defaults for every knob.
type Options struct {
	// Bins is the resolution of the common normalized-time grid both
	// runs' folded curves are resampled onto (default 100 → 101 grid
	// points over [0,1]).
	Bins int
	// MatchRadius is the capture radius (in raw feature space: log10
	// duration, log10 instructions, IPC) within which two phase
	// centroids are considered the same phase (default 0.75 — wide
	// enough to keep a phase matched through a ~1.2x rate regression,
	// narrow enough that the nearest-first greedy pairing never crosses
	// distinct phases whose true counterparts are present). Larger
	// values tolerate bigger between-run drift before a phase is
	// declared new/vanished.
	MatchRadius float64
	// SigmaK is the significance multiplier: a shape divergence counts
	// as significant only where it exceeds SigmaK times the combined
	// standard error of the two folded clouds (default 3). It guards
	// the localization against flagging run-to-run sampling noise.
	SigmaK float64
	// NoiseFloor is the minimum shape divergence (fraction of the phase
	// total, same scale as the paper's accuracy metric) ever considered
	// significant, regardless of how tight the error bands are
	// (default 0.02 — below the paper's 5% reconstruction headline).
	NoiseFloor float64
	// MaxFallbackRatio bounds duration-rank fallback matching: two
	// phases paired by rank are kept only if their mean durations are
	// within this factor of each other (default 16).
	MaxFallbackRatio float64
}

func (o *Options) setDefaults() {
	if o.Bins <= 0 {
		o.Bins = 100
	}
	if o.MatchRadius <= 0 {
		o.MatchRadius = 0.75
	}
	if o.SigmaK <= 0 {
		o.SigmaK = 3
	}
	if o.NoiseFloor <= 0 {
		o.NoiseFloor = 0.02
	}
	if o.MaxFallbackRatio <= 0 {
		o.MaxFallbackRatio = 16
	}
}

// PhaseSummary is the per-side identity of a matched (or unmatched)
// phase — enough to recognize it in the side's own report.
type PhaseSummary struct {
	// ClusterID is the phase's cluster id in its own run's Report.
	ClusterID int
	// Instances is the phase's burst occurrence count.
	Instances int
	// TotalTime is the summed duration of all instances.
	TotalTime trace.Time
	// MeanDuration is the mean instance duration in ns.
	MeanDuration float64
	// MeanIPC is the mean instructions-per-cycle over instances.
	MeanIPC float64
	// Degraded reports that the phase's own analysis carried warnings
	// (panic stub, fold-fit failures) on its side.
	Degraded bool `json:",omitempty"`
}

// CounterDelta is the differential view of one counter's folded
// reconstruction inside one matched phase pair.
type CounterDelta struct {
	// Counter is the compared hardware counter.
	Counter counters.Counter
	// Grid is the common normalized-time grid (len Bins+1, 0..1).
	Grid []float64
	// RateA and RateB are the two runs' folded instantaneous rates
	// (counts per ns) resampled onto Grid; RateDelta is RateB − RateA.
	RateA, RateB, RateDelta []float64
	// ShapeDelta is the difference of the normalized cumulative curves
	// (run B − run A) on Grid — scale-free, so it localizes *where*
	// inside the phase the two runs spend their budget differently even
	// when the absolute rates moved together.
	ShapeDelta []float64
	// MaxShapeDelta is the largest |ShapeDelta|, reached at normalized
	// time ArgMax; Window is the contiguous half-max region around it —
	// the normalized-time window of maximum divergence.
	MaxShapeDelta float64
	ArgMax        float64
	Window        [2]float64
	// MeanAbsDelta is the mean |ShapeDelta| over the grid — the same
	// area-under-delta metric the folding evaluation uses (0.05 ≡ 5% of
	// the phase total).
	MeanAbsDelta float64
	// RateRatio is run B's overall counter rate divided by run A's
	// (MeanTotal/MeanDuration each); 1 = unchanged, 0.8 = B runs this
	// counter 20% slower.
	RateRatio float64
	// Noise is the combined standard error of the two folded clouds at
	// ArgMax (-1 when neither side carries error bands); Significant
	// reports that MaxShapeDelta clears both SigmaK×Noise and the
	// NoiseFloor — divergence that run-to-run spread cannot explain.
	Noise       float64
	Significant bool
}

// PhasePair is one phase matched across the two runs, with its deltas.
type PhasePair struct {
	// A and B identify the phase on each side.
	A, B PhaseSummary
	// Distance is the raw-feature-space centroid distance of the match
	// (0 for identical phases; -1 for fallback matches, which have no
	// centroid geometry).
	Distance float64
	// Fallback reports the pair was matched by duration rank instead of
	// centroid similarity (a side was degraded or lacked instruction
	// folds); Degraded reports that either side's analysis of this
	// phase carried concessions — treat the deltas as indicative.
	Fallback bool `json:",omitempty"`
	Degraded bool `json:",omitempty"`
	// MeanDurationDelta is B−A mean instance duration in ns;
	// MeanDurationRatio is B/A (1 = unchanged). InstanceDelta and
	// TotalTimeDelta difference the occurrence count and the summed
	// phase time; MeanIPCDelta differences the mean IPC.
	MeanDurationDelta float64
	MeanDurationRatio float64
	InstanceDelta     int
	TotalTimeDelta    trace.Time
	MeanIPCDelta      float64
	// Counters holds the per-counter rate-curve deltas, in counter-id
	// order, for every counter folded on both sides.
	Counters []CounterDelta
}

// Significant reports whether any counter's divergence in this pair
// cleared the significance guard.
func (p *PhasePair) Significant() bool {
	for i := range p.Counters {
		if p.Counters[i].Significant {
			return true
		}
	}
	return false
}

// Report is the full cross-run differential analysis.
type Report struct {
	// AppA/AppB and RanksA/RanksB echo the two runs' identities.
	AppA, AppB string
	RanksA     int
	RanksB     int
	DegradedA  bool `json:",omitempty"`
	DegradedB  bool `json:",omitempty"`
	// Fallback reports that phase matching ran in duration-rank
	// fallback mode for the whole comparison.
	Fallback bool `json:",omitempty"`
	// Matched lists the phase pairs (by run A's cluster-id order);
	// UnmatchedA are run A phases that vanished in run B, UnmatchedB
	// are run B phases with no counterpart in A (new behavior).
	Matched    []PhasePair
	UnmatchedA []PhaseSummary `json:",omitempty"`
	UnmatchedB []PhaseSummary `json:",omitempty"`
	// Warnings itemizes comparison-level concessions (degraded inputs,
	// fallback matching, skipped counters).
	Warnings []string `json:",omitempty"`
}

// Significant reports whether any matched pair diverges beyond the
// noise guard.
func (r *Report) Significant() bool {
	for i := range r.Matched {
		if r.Matched[i].Significant() {
			return true
		}
	}
	return false
}

// Compare matches phases across two analysis Reports and returns the
// differential report. Neither input is mutated. It never fails on
// degraded or partially analyzed inputs — those degrade the matching
// and are itemized in the result's Warnings — and only rejects nil
// inputs.
func Compare(a, b *core.Report, opts Options) (*Report, error) {
	if a == nil || b == nil {
		return nil, fmt.Errorf("diff: cannot compare a nil report")
	}
	opts.setDefaults()

	out := &Report{
		AppA: a.App, AppB: b.App,
		RanksA: a.Ranks, RanksB: b.Ranks,
		DegradedA: a.Degraded, DegradedB: b.Degraded,
	}
	if a.App != b.App {
		out.Warnings = append(out.Warnings, fmt.Sprintf(
			"comparing different applications (%q vs %q); phase matching is by behavior only", a.App, b.App))
	}

	pa, pb := analyzedPhases(a), analyzedPhases(b)
	ca, okA := phaseCentroids(pa, opts.MatchRadius)
	cb, okB := phaseCentroids(pb, opts.MatchRadius)

	var pairs [][2]int
	var dists []float64
	out.Fallback = a.Degraded || b.Degraded || !okA || !okB
	if out.Fallback {
		for _, why := range []struct {
			on  bool
			msg string
		}{
			{a.Degraded, "run A is degraded"},
			{b.Degraded, "run B is degraded"},
			{!okA, "run A lacks instruction aggregates"},
			{!okB, "run B lacks instruction aggregates"},
		} {
			if why.on {
				out.Warnings = append(out.Warnings,
					why.msg+"; phases matched by duration rank, not centroid similarity")
				break
			}
		}
		pairs = matchByDurationRank(pa, pb, opts.MaxFallbackRatio)
		dists = make([]float64, len(pairs))
		for i := range dists {
			dists[i] = -1
		}
	} else {
		pairs, dists = matchByCentroid(ca, cb)
	}

	matchedA := make([]bool, len(pa))
	matchedB := make([]bool, len(pb))
	for k, pr := range pairs {
		i, j := pr[0], pr[1]
		matchedA[i], matchedB[j] = true, true
		pair := diffPhases(&pa[i], &pb[j], dists[k], out.Fallback, opts)
		out.Matched = append(out.Matched, pair)
	}
	sort.Slice(out.Matched, func(i, j int) bool {
		return out.Matched[i].A.ClusterID < out.Matched[j].A.ClusterID
	})
	for i := range pa {
		if !matchedA[i] {
			out.UnmatchedA = append(out.UnmatchedA, summarize(&pa[i]))
		}
	}
	for j := range pb {
		if !matchedB[j] {
			out.UnmatchedB = append(out.UnmatchedB, summarize(&pb[j]))
		}
	}
	if len(pa) == 0 && len(pb) == 0 {
		out.Warnings = append(out.Warnings, "neither run has analyzed phases; nothing to compare")
	}
	return out, nil
}

// analyzedPhases filters a report's phases down to the ones that were
// actually analyzed (a panicked phase's stub has zero instances and
// nothing to diff — it is listed as unmatched instead of paired).
func analyzedPhases(r *core.Report) []core.Phase {
	out := make([]core.Phase, 0, len(r.Phases))
	for i := range r.Phases {
		if r.Phases[i].Instances > 0 {
			out = append(out, r.Phases[i])
		}
	}
	return out
}

// summarize extracts the cross-run identity of one phase.
func summarize(ph *core.Phase) PhaseSummary {
	return PhaseSummary{
		ClusterID:    ph.ClusterID,
		Instances:    ph.Instances,
		TotalTime:    ph.TotalTime,
		MeanDuration: ph.MeanDuration,
		MeanIPC:      ph.MeanIPC,
		Degraded:     len(ph.Warnings) > 0,
	}
}

// phaseCentroids builds one raw-feature-space centroid per phase from
// the aggregates the Report carries: mean duration, mean instructions
// and mean IPC — the same axes the clustering ran in, so between-run
// distances are meaningful. (The per-run Clustering.Features are min-max
// normalized within their own run and therefore NOT comparable across
// runs; the raw aggregates are.) ok is false when any phase lacks the
// instruction aggregate the second feature needs (reports produced
// before the field existed).
func phaseCentroids(phases []core.Phase, radius float64) ([]cluster.Centroid, bool) {
	cs := make([]cluster.Centroid, len(phases))
	for i := range phases {
		ins := phases[i].MeanInstructions
		if ins <= 0 {
			return nil, false
		}
		if ins < 1 {
			ins = 1
		}
		d := phases[i].MeanDuration
		if d < 1 {
			d = 1
		}
		cs[i] = cluster.Centroid{
			ID:      phases[i].ClusterID,
			Mean:    [3]float64{math.Log10(d), math.Log10(ins), phases[i].MeanIPC},
			Radius2: radius * radius,
			Count:   phases[i].Instances,
		}
	}
	return cs, true
}

// matchByCentroid greedily pairs mutually nearest centroids within
// capture radius: candidate pairs are visited in increasing distance
// (ties broken by index for determinism) and accepted while both sides
// are still free. The result is invariant under permutations of either
// side's phase order.
func matchByCentroid(ca, cb []cluster.Centroid) ([][2]int, []float64) {
	type cand struct {
		i, j int
		d2   float64
	}
	var cands []cand
	for i := range ca {
		for j := range cb {
			d2 := cluster.CentroidDist2(ca[i], cb[j])
			if d2 <= math.Max(ca[i].Radius2, cb[j].Radius2) {
				cands = append(cands, cand{i, j, d2})
			}
		}
	}
	sort.Slice(cands, func(x, y int) bool {
		if cands[x].d2 != cands[y].d2 {
			return cands[x].d2 < cands[y].d2
		}
		if cands[x].i != cands[y].i {
			return cands[x].i < cands[y].i
		}
		return cands[x].j < cands[y].j
	})
	usedA := make([]bool, len(ca))
	usedB := make([]bool, len(cb))
	var pairs [][2]int
	var dists []float64
	for _, c := range cands {
		if usedA[c.i] || usedB[c.j] {
			continue
		}
		usedA[c.i], usedB[c.j] = true, true
		pairs = append(pairs, [2]int{c.i, c.j})
		dists = append(dists, math.Sqrt(c.d2))
	}
	return pairs, dists
}

// matchByDurationRank pairs phases by descending mean-duration rank —
// the degraded-mode fallback, mirroring the duration-quantile ordering
// cluster.QuantileFallback splits on. Rank-paired phases whose mean
// durations differ by more than maxRatio are left unmatched.
func matchByDurationRank(pa, pb []core.Phase, maxRatio float64) [][2]int {
	order := func(ps []core.Phase) []int {
		idx := make([]int, len(ps))
		for i := range idx {
			idx[i] = i
		}
		sort.Slice(idx, func(x, y int) bool {
			if ps[idx[x]].MeanDuration != ps[idx[y]].MeanDuration {
				return ps[idx[x]].MeanDuration > ps[idx[y]].MeanDuration
			}
			return ps[idx[x]].ClusterID < ps[idx[y]].ClusterID
		})
		return idx
	}
	oa, ob := order(pa), order(pb)
	n := len(oa)
	if len(ob) < n {
		n = len(ob)
	}
	var pairs [][2]int
	for k := 0; k < n; k++ {
		da, db := pa[oa[k]].MeanDuration, pb[ob[k]].MeanDuration
		if da <= 0 || db <= 0 {
			continue
		}
		ratio := da / db
		if ratio < 1 {
			ratio = 1 / ratio
		}
		if ratio > maxRatio {
			continue
		}
		pairs = append(pairs, [2]int{oa[k], ob[k]})
	}
	return pairs
}

// diffPhases produces the differential view of one matched pair.
func diffPhases(a, b *core.Phase, dist float64, fallback bool, opts Options) PhasePair {
	pair := PhasePair{
		A:                 summarize(a),
		B:                 summarize(b),
		Distance:          dist,
		Fallback:          fallback,
		MeanDurationDelta: b.MeanDuration - a.MeanDuration,
		InstanceDelta:     b.Instances - a.Instances,
		TotalTimeDelta:    b.TotalTime - a.TotalTime,
		MeanIPCDelta:      b.MeanIPC - a.MeanIPC,
	}
	if a.MeanDuration > 0 {
		pair.MeanDurationRatio = b.MeanDuration / a.MeanDuration
	}
	pair.Degraded = fallback || pair.A.Degraded || pair.B.Degraded

	// Counter-id order, never map order: the report must be stable.
	for c := counters.Counter(0); c < counters.NumCounters; c++ {
		fa, okA := a.Folds[c]
		fb, okB := b.Folds[c]
		if !okA || !okB || fa == nil || fb == nil {
			continue
		}
		pair.Counters = append(pair.Counters, diffCounter(c, fa, fb, opts))
	}
	return pair
}

// diffCounter resamples both reconstructions of one counter onto the
// common grid and derives the delta curves and their localization.
func diffCounter(c counters.Counter, fa, fb *folding.Result, opts Options) CounterDelta {
	n := opts.Bins + 1
	cd := CounterDelta{Counter: c, Grid: make([]float64, n)}
	for i := range cd.Grid {
		cd.Grid[i] = float64(i) / float64(opts.Bins)
	}
	cd.RateA = resample(fa.Grid, fa.Rate, cd.Grid)
	cd.RateB = resample(fb.Grid, fb.Rate, cd.Grid)
	cumA := resample(fa.Grid, fa.Cumulative, cd.Grid)
	cumB := resample(fb.Grid, fb.Cumulative, cd.Grid)

	cd.RateDelta = make([]float64, n)
	cd.ShapeDelta = make([]float64, n)
	var absSum float64
	argMax := 0
	for i := 0; i < n; i++ {
		cd.RateDelta[i] = cd.RateB[i] - cd.RateA[i]
		cd.ShapeDelta[i] = cumB[i] - cumA[i]
		av := math.Abs(cd.ShapeDelta[i])
		absSum += av
		if av > math.Abs(cd.ShapeDelta[argMax]) {
			argMax = i
		}
	}
	cd.MeanAbsDelta = absSum / float64(n)
	cd.MaxShapeDelta = math.Abs(cd.ShapeDelta[argMax])
	cd.ArgMax = cd.Grid[argMax]

	// Half-max window around the divergence peak.
	lo, hi := argMax, argMax
	for lo > 0 && math.Abs(cd.ShapeDelta[lo-1]) >= cd.MaxShapeDelta/2 {
		lo--
	}
	for hi < n-1 && math.Abs(cd.ShapeDelta[hi+1]) >= cd.MaxShapeDelta/2 {
		hi++
	}
	cd.Window = [2]float64{cd.Grid[lo], cd.Grid[hi]}

	if fa.MeanDuration > 0 && fb.MeanDuration > 0 && fa.MeanTotal > 0 {
		rateA := fa.MeanTotal / fa.MeanDuration
		rateB := fb.MeanTotal / fb.MeanDuration
		if rateA > 0 {
			cd.RateRatio = rateB / rateA
		}
	}

	// Significance guard: the folded clouds carry their own run-to-run
	// spread (per-burst variation around the fitted curve). The peak
	// divergence must clear SigmaK of the combined standard error at
	// its own position — and the absolute NoiseFloor — before it is
	// called real.
	seA := stderrAt(fa, cd.ArgMax)
	seB := stderrAt(fb, cd.ArgMax)
	var noise float64
	switch {
	case math.IsNaN(seA):
		noise = seB // NaN when both sides lack bands
	case math.IsNaN(seB):
		noise = seA
	default:
		noise = math.Sqrt(seA*seA + seB*seB)
	}
	threshold := opts.NoiseFloor
	if math.IsNaN(noise) {
		cd.Noise = -1
	} else {
		cd.Noise = noise
		if guard := opts.SigmaK * noise; guard > threshold {
			threshold = guard
		}
	}
	cd.Significant = cd.MaxShapeDelta > threshold
	return cd
}

// stderrAt returns the folded cloud's standard error around the fitted
// curve at normalized time x, computing the bands on a scratch copy
// when the result still carries its point cloud (the input is never
// mutated). NaN when no spread information exists (online folds,
// stripped reports).
func stderrAt(f *folding.Result, x float64) float64 {
	se := f.StdErr
	if se == nil {
		if len(f.Points) == 0 {
			return math.NaN()
		}
		scratch := *f
		scratch.StdErr = nil
		scratch.ComputeBands()
		se = scratch.StdErr
	}
	if len(se) == 0 || len(f.Grid) != len(se) {
		return math.NaN()
	}
	// Nearest finite band to x (cells with <2 points are NaN).
	best, bestDist := math.NaN(), math.Inf(1)
	for i, g := range f.Grid {
		if math.IsNaN(se[i]) {
			continue
		}
		if d := math.Abs(g - x); d < bestDist {
			best, bestDist = se[i], d
		}
	}
	return best
}

// resample linearly interpolates (xs, ys) onto grid. xs must be
// ascending (fold grids are); out-of-range grid points clamp to the
// nearest endpoint.
func resample(xs, ys []float64, grid []float64) []float64 {
	out := make([]float64, len(grid))
	if len(xs) == 0 || len(xs) != len(ys) {
		return out
	}
	for i, x := range grid {
		out[i] = interp(xs, ys, x)
	}
	return out
}

func interp(xs, ys []float64, x float64) float64 {
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo]*(1-f) + ys[hi]*f
}
