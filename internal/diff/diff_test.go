package diff

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/sim"
	"repro/internal/trace"
)

// simTrace simulates one app run.
func simTrace(t *testing.T, name string, ranks, iters int, seed uint64, perturb sim.PerturbConfig) *trace.Trace {
	t.Helper()
	app, err := apps.ByName(name, iters)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(ranks)
	cfg.Seed = seed
	cfg.Perturb = perturb
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func analyze(t *testing.T, tr *trace.Trace) *core.Report {
	t.Helper()
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestSelfDiffIdentity: diffing a report against itself must be the
// all-zero diff — every phase matched at distance 0, no unmatched
// phases, no significant divergence anywhere.
func TestSelfDiffIdentity(t *testing.T) {
	for _, name := range []string{"stencil", "cg"} {
		rep := analyze(t, simTrace(t, name, 4, 60, 1, sim.PerturbConfig{}))
		d, err := Compare(rep, rep, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if d.Fallback {
			t.Errorf("%s: self-diff ran in fallback mode: %v", name, d.Warnings)
		}
		if len(d.UnmatchedA) != 0 || len(d.UnmatchedB) != 0 {
			t.Errorf("%s: self-diff left phases unmatched: A=%v B=%v", name, d.UnmatchedA, d.UnmatchedB)
		}
		if len(d.Matched) == 0 {
			t.Fatalf("%s: self-diff matched no phases", name)
		}
		if d.Significant() {
			t.Errorf("%s: self-diff flagged significant divergence", name)
		}
		for _, p := range d.Matched {
			if p.A.ClusterID != p.B.ClusterID {
				t.Errorf("%s: self pair ids %d vs %d", name, p.A.ClusterID, p.B.ClusterID)
			}
			if p.Distance != 0 {
				t.Errorf("%s: self pair distance %g", name, p.Distance)
			}
			if p.MeanDurationDelta != 0 || p.InstanceDelta != 0 || p.TotalTimeDelta != 0 || p.MeanIPCDelta != 0 {
				t.Errorf("%s: self pair %d has nonzero deltas: %+v", name, p.A.ClusterID, p)
			}
			if p.MeanDurationRatio != 1 {
				t.Errorf("%s: self pair %d duration ratio %g", name, p.A.ClusterID, p.MeanDurationRatio)
			}
			if len(p.Counters) == 0 {
				t.Errorf("%s: self pair %d compared no counters", name, p.A.ClusterID)
			}
			for _, cd := range p.Counters {
				if cd.MaxShapeDelta != 0 || cd.MeanAbsDelta != 0 {
					t.Errorf("%s: self pair %d %v shape delta %g/%g",
						name, p.A.ClusterID, cd.Counter, cd.MaxShapeDelta, cd.MeanAbsDelta)
				}
				if cd.Significant {
					t.Errorf("%s: self pair %d %v flagged significant", name, p.A.ClusterID, cd.Counter)
				}
				if cd.RateRatio != 1 {
					t.Errorf("%s: self pair %d %v rate ratio %g", name, p.A.ClusterID, cd.Counter, cd.RateRatio)
				}
			}
		}
		// The diff must survive the JSON trip both surfaces ship it over.
		if _, err := json.Marshal(d); err != nil {
			t.Fatalf("%s: diff does not marshal: %v", name, err)
		}
	}
}

// TestDiffShardCountInvariance: analyzing either side through the
// sharded algebra must not change the diff — any shard count, both
// shard modes, identical Report-level output.
func TestDiffShardCountInvariance(t *testing.T) {
	trA := simTrace(t, "stencil", 4, 60, 1, sim.PerturbConfig{})
	trB := simTrace(t, "stencil", 4, 60, 2, sim.PerturbConfig{})
	repA := analyze(t, trA)
	base, err := Compare(repA, analyze(t, trB), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []core.ShardMode{core.ShardTime, core.ShardRank} {
		for _, shards := range []int{1, 2, 3} {
			repB, err := core.AnalyzeSharded(trB, shards, mode, core.Options{})
			if err != nil {
				t.Fatal(err)
			}
			d, err := Compare(repA, repB, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(d)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("diff changed under %v/%d shards", mode, shards)
			}
		}
	}
}

// permuteRanks relabels every record's rank by a cyclic shift and
// restores canonical order — same bursts, same features, different
// rank identities and record order.
func permuteRanks(tr *trace.Trace, shift int32) *trace.Trace {
	n := int32(tr.Meta.Ranks)
	out := &trace.Trace{Meta: tr.Meta}
	out.Events = append([]trace.Event(nil), tr.Events...)
	out.Samples = append([]trace.Sample(nil), tr.Samples...)
	out.Comms = append([]trace.Comm(nil), tr.Comms...)
	for i := range out.Events {
		out.Events[i].Rank = (out.Events[i].Rank + shift) % n
	}
	for i := range out.Samples {
		out.Samples[i].Rank = (out.Samples[i].Rank + shift) % n
	}
	for i := range out.Comms {
		out.Comms[i].Src = (out.Comms[i].Src + shift) % n
		out.Comms[i].Dst = (out.Comms[i].Dst + shift) % n
	}
	out.Sort()
	return out
}

// TestDiffRankPermutationInvariance: phase matching must not depend on
// rank labels — relabeling run B's ranks yields the same match
// structure and the same per-phase deltas.
func TestDiffRankPermutationInvariance(t *testing.T) {
	trA := simTrace(t, "stencil", 4, 60, 1, sim.PerturbConfig{})
	trB := simTrace(t, "stencil", 4, 60, 2, sim.PerturbConfig{})
	repA := analyze(t, trA)
	base, err := Compare(repA, analyze(t, trB), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, shift := range []int32{1, 3} {
		d, err := Compare(repA, analyze(t, permuteRanks(trB, shift)), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(d.Matched) != len(base.Matched) ||
			len(d.UnmatchedA) != len(base.UnmatchedA) ||
			len(d.UnmatchedB) != len(base.UnmatchedB) {
			t.Fatalf("shift %d: match structure changed: %d/%d/%d vs %d/%d/%d",
				shift, len(d.Matched), len(d.UnmatchedA), len(d.UnmatchedB),
				len(base.Matched), len(base.UnmatchedA), len(base.UnmatchedB))
		}
		for i := range d.Matched {
			g, w := d.Matched[i], base.Matched[i]
			if g.A.ClusterID != w.A.ClusterID {
				t.Errorf("shift %d: pair %d matches A-phase %d, want %d", shift, i, g.A.ClusterID, w.A.ClusterID)
			}
			if g.B.MeanDuration != w.B.MeanDuration || g.B.Instances != w.B.Instances {
				t.Errorf("shift %d: pair %d B side (%.0f ns, %d inst) vs (%.0f ns, %d inst)",
					shift, i, g.B.MeanDuration, g.B.Instances, w.B.MeanDuration, w.B.Instances)
			}
			if g.MeanDurationDelta != w.MeanDurationDelta {
				t.Errorf("shift %d: pair %d duration delta %g vs %g", shift, i, g.MeanDurationDelta, w.MeanDurationDelta)
			}
		}
	}
}

// TestDiffDetectsPerturbation: a seeded rate perturbation on one kernel
// must surface as a significant, correctly localized divergence on the
// matched phase while the untouched kernel stays insignificant.
func TestDiffDetectsPerturbation(t *testing.T) {
	trA := simTrace(t, "stencil", 4, 80, 1, sim.PerturbConfig{})
	trB := simTrace(t, "stencil", 4, 80, 2, sim.PerturbConfig{
		Factor: 1.2, Fraction: 1, Kernel: "jacobi_sweep", At: 0.6, Seed: 7,
	})
	d, err := Compare(analyze(t, trA), analyze(t, trB), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if d.Fallback {
		t.Fatalf("perturbed diff fell back to duration-rank matching: %v", d.Warnings)
	}
	var sweep, pack *PhasePair
	for i := range d.Matched {
		switch {
		case d.Matched[i].A.MeanDuration > 2e6:
			sweep = &d.Matched[i]
		case d.Matched[i].A.MeanDuration < 1e6:
			pack = &d.Matched[i]
		}
	}
	if sweep == nil {
		t.Fatalf("perturbed sweep phase not matched: %+v unmatchedA=%v unmatchedB=%v",
			d.Matched, d.UnmatchedA, d.UnmatchedB)
	}
	// The 1.2x stall slows the phase and depresses its overall rates.
	if sweep.MeanDurationRatio < 1.1 {
		t.Errorf("sweep duration ratio %g, want ~1.2", sweep.MeanDurationRatio)
	}
	if !sweep.Significant() {
		t.Error("perturbed sweep not flagged significant")
	}
	var ins *CounterDelta
	for i := range sweep.Counters {
		if sweep.Counters[i].Counter == counters.TotIns {
			ins = &sweep.Counters[i]
		}
	}
	if ins == nil {
		t.Fatal("sweep pair carries no TOT_INS delta")
	}
	if ins.RateRatio >= 0.95 {
		t.Errorf("sweep TOT_INS rate ratio %g, want ~1/1.2", ins.RateRatio)
	}
	// The stall sits at wall-offset 0.6d in a 1.2d instance: the shape
	// divergence must localize around normalized time 0.5-0.67.
	if ins.ArgMax < 0.35 || ins.ArgMax > 0.85 {
		t.Errorf("divergence localized at %g, want near the injected stall (0.5-0.67)", ins.ArgMax)
	}
	if !ins.Significant {
		t.Errorf("TOT_INS divergence %g not significant (noise %g)", ins.MaxShapeDelta, ins.Noise)
	}
	// The untouched pack kernel differs only by run-to-run noise; the
	// significance guard must hold it below the line.
	if pack != nil && pack.Significant() {
		for _, cd := range pack.Counters {
			if cd.Significant {
				t.Errorf("unperturbed pack %v flagged significant: delta %g noise %g",
					cd.Counter, cd.MaxShapeDelta, cd.Noise)
			}
		}
	}
}

// TestDiffDegradedInput: diffing against a lenient-salvaged side must
// not panic, must fall back to duration-rank matching, and must mark
// every pair degraded.
func TestDiffDegradedInput(t *testing.T) {
	tr := simTrace(t, "stencil", 4, 40, 1, sim.PerturbConfig{})
	repA := analyze(t, tr)

	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()*3/5]
	repB, err := core.AnalyzeStream(bytes.NewReader(cut), core.Options{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if !repB.Degraded {
		t.Fatal("salvaged report not degraded; the test lost its premise")
	}

	d, err := Compare(repA, repB, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Fallback || !d.DegradedB {
		t.Errorf("degraded diff: Fallback=%v DegradedB=%v, want both", d.Fallback, d.DegradedB)
	}
	if len(d.Warnings) == 0 {
		t.Error("degraded diff carries no warnings")
	}
	if len(d.Matched) == 0 {
		t.Fatal("degraded diff matched nothing (the salvaged prefix still holds both phases)")
	}
	for _, p := range d.Matched {
		if !p.Fallback || !p.Degraded {
			t.Errorf("pair %d/%d: Fallback=%v Degraded=%v, want both", p.A.ClusterID, p.B.ClusterID, p.Fallback, p.Degraded)
		}
		if p.Distance != -1 {
			t.Errorf("fallback pair carries centroid distance %g", p.Distance)
		}
	}
	if _, err := json.Marshal(d); err != nil {
		t.Fatalf("degraded diff does not marshal: %v", err)
	}
}

// TestCompareNil rejects nil inputs instead of panicking.
func TestCompareNil(t *testing.T) {
	rep := analyze(t, simTrace(t, "stencil", 2, 20, 1, sim.PerturbConfig{}))
	if _, err := Compare(nil, rep, Options{}); err == nil {
		t.Error("Compare(nil, rep) succeeded")
	}
	if _, err := Compare(rep, nil, Options{}); err == nil {
		t.Error("Compare(rep, nil) succeeded")
	}
}

// TestPerturbSelectionDeterminism: iteration selection is a pure
// function of (seed, iteration) and hits roughly the requested
// fraction.
func TestPerturbSelectionDeterminism(t *testing.T) {
	p := sim.PerturbConfig{Factor: 2, Fraction: 0.5, Seed: 3}
	hits := 0
	for n := 1; n <= 1000; n++ {
		a, b := p.Selected(n), p.Selected(n)
		if a != b {
			t.Fatalf("selection of iteration %d not deterministic", n)
		}
		if a {
			hits++
		}
	}
	if hits < 400 || hits > 600 {
		t.Errorf("selected %d/1000 iterations at fraction 0.5", hits)
	}
	if p.Selected(0) {
		t.Error("iteration 0 (before the first marker) selected")
	}
}
