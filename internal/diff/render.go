package diff

import (
	"fmt"
	"strings"

	"repro/internal/report"
)

// Format renders the differential report for terminals: the run
// identities, one row per matched phase pair, a divergence table for
// every significant counter (with an ASCII plot of the shape-delta
// curve), and the unmatched-phase listings.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-run diff: %s (%d ranks) vs %s (%d ranks)\n",
		r.AppA, r.RanksA, r.AppB, r.RanksB)
	switch {
	case r.DegradedA && r.DegradedB:
		b.WriteString("DEGRADED: both runs carry analysis concessions\n")
	case r.DegradedA:
		b.WriteString("DEGRADED: run A carries analysis concessions\n")
	case r.DegradedB:
		b.WriteString("DEGRADED: run B carries analysis concessions\n")
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "warning: %s\n", w)
	}
	b.WriteByte('\n')

	tbl := report.Table{
		Title:  "Matched phases",
		Header: []string{"phase A", "phase B", "match", "dur A", "dur B", "ratio", "inst Δ", "IPC Δ", "verdict"},
	}
	for i := range r.Matched {
		p := &r.Matched[i]
		match := fmt.Sprintf("d=%.2f", p.Distance)
		if p.Fallback {
			match = "rank"
		}
		verdict := "~unchanged"
		if p.Significant() {
			verdict = "DIVERGED"
		}
		if p.Degraded {
			verdict += " (degraded)"
		}
		tbl.AddRow(
			fmt.Sprintf("#%d", p.A.ClusterID),
			fmt.Sprintf("#%d", p.B.ClusterID),
			match,
			formatNs(p.A.MeanDuration),
			formatNs(p.B.MeanDuration),
			fmt.Sprintf("%.3f", p.MeanDurationRatio),
			fmt.Sprintf("%+d", p.InstanceDelta),
			fmt.Sprintf("%+.2f", p.MeanIPCDelta),
			verdict,
		)
	}
	if len(r.Matched) == 0 {
		b.WriteString("no phases matched across the runs\n")
	} else {
		b.WriteString(tbl.Format())
	}
	b.WriteByte('\n')

	for i := range r.Matched {
		p := &r.Matched[i]
		if !p.Significant() {
			continue
		}
		fmt.Fprintf(&b, "Phase #%d → #%d divergence\n", p.A.ClusterID, p.B.ClusterID)
		ct := report.Table{
			Header: []string{"counter", "rate ratio", "max |Δshape|", "at", "window", "mean |Δ|", "noise", "significant"},
		}
		for j := range p.Counters {
			cd := &p.Counters[j]
			noise := "n/a"
			if cd.Noise >= 0 {
				noise = report.FormatFloat(cd.Noise)
			}
			ct.AddRow(
				cd.Counter.String(),
				fmt.Sprintf("%.3f", cd.RateRatio),
				fmt.Sprintf("%.3f", cd.MaxShapeDelta),
				fmt.Sprintf("%.2f", cd.ArgMax),
				fmt.Sprintf("[%.2f, %.2f]", cd.Window[0], cd.Window[1]),
				fmt.Sprintf("%.3f", cd.MeanAbsDelta),
				noise,
				fmt.Sprintf("%v", cd.Significant),
			)
		}
		b.WriteString(ct.Format())
		for j := range p.Counters {
			cd := &p.Counters[j]
			if !cd.Significant {
				continue
			}
			b.WriteString(report.ASCIIPlot(
				fmt.Sprintf("%s shape delta (B − A, fraction of phase total)", cd.Counter),
				cd.Grid, cd.ShapeDelta, 72, 12))
		}
		b.WriteByte('\n')
	}

	writeUnmatched := func(side string, phases []PhaseSummary) {
		if len(phases) == 0 {
			return
		}
		fmt.Fprintf(&b, "Phases only in run %s:\n", side)
		for _, ph := range phases {
			fmt.Fprintf(&b, "  #%d: %d instances, mean %s, IPC %.2f\n",
				ph.ClusterID, ph.Instances, formatNs(ph.MeanDuration), ph.MeanIPC)
		}
		b.WriteByte('\n')
	}
	writeUnmatched("A (vanished in B)", r.UnmatchedA)
	writeUnmatched("B (new behavior)", r.UnmatchedB)

	if !r.Significant() && len(r.UnmatchedA) == 0 && len(r.UnmatchedB) == 0 && len(r.Matched) > 0 {
		b.WriteString("No divergence beyond run-to-run noise.\n")
	}
	return b.String()
}

// formatNs renders a duration in the most readable unit.
func formatNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}
