// Package doccheck enforces the documentation contract: every exported
// identifier in the core analysis packages must carry a doc comment.
// It runs as an ordinary test so `go test ./internal/doccheck` (wired
// into `make check`) fails listing each undocumented identifier.
package doccheck

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// checkedPackages are the packages whose exported API must be fully
// documented. Paths are relative to this package's directory.
var checkedPackages = []string{
	"../core",
	"../cluster",
	"../online",
	"../pipeline",
	"../obs",
	"../foldsvc",
	"../faultinject",
}

// missingDocs parses one package directory and returns a "file:line:
// identifier" entry for every exported declaration without a doc
// comment. Test files are skipped: they are not API surface.
func missingDocs(t *testing.T, dir string) []string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}

	var missing []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		missing = append(missing, fmt.Sprintf("%s:%d: %s %s",
			filepath.Join(dir, filepath.Base(p.Filename)), p.Line, what, name))
	}

	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil && receiverExported(d) {
						what := "func"
						if d.Recv != nil {
							what = "method"
						}
						report(d.Pos(), what, funcName(d))
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	sort.Strings(missing)
	return missing
}

// checkGenDecl inspects a const/var/type block. A doc comment on the
// enclosing block documents all of its specs; otherwise each exported
// spec needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	if d.Doc != nil {
		return
	}
	kind := d.Tok.String()
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && s.Comment == nil {
				report(s.Pos(), kind, s.Name.Name)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || s.Comment != nil {
				continue
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// receiverExported reports whether a declaration is reachable API: a
// plain function, or a method on an exported receiver type. Exported
// methods on unexported types (interface satisfiers) are not surface.
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if gen, ok := recv.(*ast.IndexExpr); ok { // generic receiver T[P]
		recv = gen.X
	}
	id, ok := recv.(*ast.Ident)
	return !ok || id.IsExported()
}

// funcName renders Recv.Name for methods, or the bare name for
// functions, for readable failure output.
func funcName(d *ast.FuncDecl) string {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return d.Name.Name
	}
	recv := d.Recv.List[0].Type
	if star, ok := recv.(*ast.StarExpr); ok {
		recv = star.X
	}
	if id, ok := recv.(*ast.Ident); ok {
		return id.Name + "." + d.Name.Name
	}
	return d.Name.Name
}

// hasPackageDoc reports whether any file in the directory carries a
// package-level doc comment.
func hasPackageDoc(t *testing.T, dir string) bool {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", dir, err)
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			if file.Doc != nil {
				return true
			}
		}
	}
	return false
}

func TestExportedIdentifiersAreDocumented(t *testing.T) {
	for _, dir := range checkedPackages {
		t.Run(filepath.Base(dir), func(t *testing.T) {
			if !hasPackageDoc(t, dir) {
				t.Errorf("%s: package has no package-level doc comment", dir)
			}
			for _, m := range missingDocs(t, dir) {
				t.Errorf("undocumented exported identifier: %s", m)
			}
		})
	}
}
