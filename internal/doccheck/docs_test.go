package doccheck

import (
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"
)

// This file extends the documentation gate from doc comments to the
// user-facing docs themselves: every command under cmd/ must have a
// section in docs/CLI.md, and every HTTP route and metric family the
// foldsvc daemon registers must appear in docs/OPERATIONS.md. The
// checks read the sources, so adding a binary, route, or metric
// without documenting it fails `make check` with the missing name.

// readDoc loads one file under docs/ (or the repo root).
func readDoc(t *testing.T, rel string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", rel))
	if err != nil {
		t.Fatalf("read %s: %v", rel, err)
	}
	return string(data)
}

// foldsvcSources concatenates the non-test sources of internal/foldsvc.
func foldsvcSources(t *testing.T) string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("..", "foldsvc", "*.go"))
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	for _, f := range files {
		if strings.HasSuffix(f, "_test.go") {
			continue
		}
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		b.Write(data)
		b.WriteByte('\n')
	}
	return b.String()
}

// TestEveryCommandIsDocumented fails when a cmd/ binary has no
// "## <name>" section in docs/CLI.md.
func TestEveryCommandIsDocumented(t *testing.T) {
	entries, err := os.ReadDir(filepath.Join("..", "..", "cmd"))
	if err != nil {
		t.Fatal(err)
	}
	cli := readDoc(t, "docs/CLI.md")
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		heading := regexp.MustCompile(`(?m)^## ` + regexp.QuoteMeta(name) + `\b`)
		if !heading.MatchString(cli) {
			t.Errorf("cmd/%s has no `## %s` section in docs/CLI.md", name, name)
		}
	}
}

// TestServiceRoutesAreDocumented fails when a route registered on the
// foldsvc mux is absent from docs/OPERATIONS.md.
func TestServiceRoutesAreDocumented(t *testing.T) {
	src := foldsvcSources(t)
	ops := readDoc(t, "docs/OPERATIONS.md")
	re := regexp.MustCompile(`mux\.Handle\(\s*"([^"]+)"`)
	seen := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(src, -1) {
		route := m[1]
		if seen[route] {
			continue
		}
		seen[route] = true
		if !strings.Contains(ops, "`"+route+"`") {
			t.Errorf("foldsvc route %s is not documented in docs/OPERATIONS.md", route)
		}
	}
	if len(seen) == 0 {
		t.Fatal("found no mux.Handle registrations in internal/foldsvc — check the scan")
	}
}

// TestServiceMetricsAreDocumented fails when a metric family
// registered by the foldsvc package (string-literal names passed to
// the obs registry constructors) is missing from the
// docs/OPERATIONS.md catalog.
func TestServiceMetricsAreDocumented(t *testing.T) {
	src := foldsvcSources(t)
	ops := readDoc(t, "docs/OPERATIONS.md")
	re := regexp.MustCompile(`\.(Counter|Gauge|GaugeFunc|Histogram)\(\s*"([a-z][a-z0-9_]+)"`)
	seen := map[string]bool{}
	for _, m := range re.FindAllStringSubmatch(src, -1) {
		seen[m[2]] = true
	}
	if len(seen) < 10 {
		t.Fatalf("found only %d metric registrations in internal/foldsvc — check the scan", len(seen))
	}
	names := make([]string, 0, len(seen))
	for name := range seen {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !strings.Contains(ops, "`"+name+"`") {
			t.Errorf("foldsvc metric family %s is not documented in docs/OPERATIONS.md", name)
		}
	}
}
