package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/report"
	"repro/internal/sim"
)

// foldPair runs one app under the coarse and fine configurations and
// returns the main-kernel phase of each analysis plus the app handle.
func foldPair(env Env, name string) (coarse, fine *core.Phase, app apps.App, err error) {
	repC, app, err := analyzeApp(env, name, apps.DefaultTraceConfig(env.Ranks))
	if err != nil {
		return nil, nil, nil, err
	}
	repF, _, err := analyzeApp(env, name, apps.FineTraceConfig(env.Ranks))
	if err != nil {
		return nil, nil, nil, err
	}
	id := mainKernelID[name]
	coarse = dominantPhase(repC, id)
	fine = dominantPhase(repF, id)
	if coarse == nil || fine == nil {
		return nil, nil, nil, fmt.Errorf("experiments: %s main phase missing (coarse=%v fine=%v)", name, coarse != nil, fine != nil)
	}
	return coarse, fine, app, nil
}

// F2FoldedCurves overlays, for each app's main phase, the folded
// cumulative instruction curve from coarse sampling, the fine-grain
// sampling reference, and the analytic ground truth.
func F2FoldedCurves(env Env) (*Artifact, error) {
	env.setDefaults()
	art := &Artifact{ID: "F2", Figures: map[string][]report.Series{}}
	for _, name := range []string{"stencil", "nbody", "cg"} {
		coarse, fine, app, err := foldPair(env, name)
		if err != nil {
			return nil, err
		}
		fc := foldOf(coarse, counters.TotIns)
		ff := foldOf(fine, counters.TotIns)
		if fc == nil || ff == nil {
			return nil, fmt.Errorf("experiments: %s TOT_INS fold failed (coarse errs %v, fine errs %v)",
				name, coarse.FoldErrors, fine.FoldErrors)
		}
		truth := kernelByID(app)[mainKernelID[name]].ShapeOf(counters.TotIns)
		truthY := make([]float64, len(fc.Grid))
		for i, x := range fc.Grid {
			truthY[i] = truth.Integral(x)
		}
		art.Figures[name] = []report.Series{
			{Name: "folding_coarse", X: fc.Grid, Y: fc.Cumulative},
			{Name: "fine_grain", X: ff.Grid, Y: ff.Cumulative},
			{Name: "ground_truth", X: fc.Grid, Y: truthY},
		}
		art.Notes = append(art.Notes, fmt.Sprintf(
			"%s: coarse-vs-fine diff %.2f%%, coarse-vs-truth diff %.2f%% (%d coarse instances, %d folded points)",
			name, 100*folding.MeanAbsDiffResults(fc, ff), 100*fc.MeanAbsDiff(truth),
			fc.Instances, len(fc.Points)))
	}
	return art, nil
}

// F3Rates derives the instantaneous MIPS and L1-miss-rate evolution inside
// the stencil sweep from the folded curves, with detected sub-phase
// boundaries.
func F3Rates(env Env) (*Artifact, error) {
	env.setDefaults()
	rep, _, err := analyzeApp(env, "stencil", apps.DefaultTraceConfig(env.Ranks))
	if err != nil {
		return nil, err
	}
	ph := dominantPhase(rep, mainKernelID["stencil"])
	fIns := foldOf(ph, counters.TotIns)
	fL1 := foldOf(ph, counters.L1DCM)
	if fIns == nil || fL1 == nil {
		return nil, fmt.Errorf("experiments: stencil folds missing")
	}
	// Rates come out in counts per nanosecond; 1 ins/ns = 1000 MIPS.
	mips := scale(fIns.Rate, 1e3)
	art := &Artifact{ID: "F3", Figures: map[string][]report.Series{
		"rates": {
			{Name: "MIPS", X: fIns.Grid, Y: mips},
			{Name: "L1_misses_per_us", X: fL1.Grid, Y: scale(fL1.Rate, 1e3)},
		},
	}}
	for _, b := range fIns.Breakpoints {
		art.Notes = append(art.Notes, fmt.Sprintf("instruction-rate breakpoint at x=%.2f", b))
	}
	tb := &report.Table{
		Title:  "F3: instantaneous rates inside stencil jacobi_sweep (from folding)",
		Header: []string{"x", "MIPS", "L1_miss/us"},
	}
	for i := 0; i < len(fIns.Grid); i += 10 {
		tb.AddRow(fIns.Grid[i], mips[i], fL1.Rate[i]*1e3)
	}
	art.Table = tb
	return art, nil
}

func scale(xs []float64, f float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * f
	}
	return out
}

// T2Accuracy is the headline table: for every app × counter, the absolute
// mean difference between the coarse-sampling fold and (a) the fine-grain
// sampling reference and (b) the analytic ground truth. The paper claims
// (a) < 5%.
func T2Accuracy(env Env) (*Artifact, error) {
	env.setDefaults()
	tb := &report.Table{
		Title:  "T2: folding accuracy (absolute mean difference; paper claims < 5% vs fine grain)",
		Header: []string{"app", "counter", "vs_fine_grain", "vs_ground_truth", "instances", "points"},
	}
	art := &Artifact{ID: "T2", Table: tb}
	worst := 0.0
	for _, name := range []string{"stencil", "nbody", "cg"} {
		coarse, fine, app, err := foldPair(env, name)
		if err != nil {
			return nil, err
		}
		k := kernelByID(app)[mainKernelID[name]]
		for _, c := range []counters.Counter{counters.TotIns, counters.FPOps, counters.L1DCM, counters.L2DCM} {
			fc := foldOf(coarse, c)
			ff := foldOf(fine, c)
			if fc == nil || ff == nil {
				tb.AddRow(name, c.String(), "n/a", "n/a", 0, 0)
				continue
			}
			dFine := folding.MeanAbsDiffResults(fc, ff)
			dTruth := fc.MeanAbsDiff(k.ShapeOf(c))
			if dFine > worst {
				worst = dFine
			}
			tb.AddRow(name, c.String(), pct(dFine), pct(dTruth), fc.Instances, len(fc.Points))
		}
	}
	art.Notes = append(art.Notes, fmt.Sprintf("worst-case vs fine grain: %.2f%% (claim: < 5%%)", 100*worst))
	return art, nil
}

// T3Overhead measures observation-induced runtime dilation: the same app
// run uninstrumented, with probes only, with probes + coarse sampling
// (the folding input), and with probes + fine-grain sampling.
func T3Overhead(env Env) (*Artifact, error) {
	env.setDefaults()
	tb := &report.Table{
		Title:  "T3: runtime dilation of observation modes (vs uninstrumented)",
		Header: []string{"app", "mode", "duration_s", "dilation", "samples"},
	}
	art := &Artifact{ID: "T3", Table: tb}
	for _, name := range []string{"stencil", "nbody", "cg"} {
		base, _, err := runApp(env, name, apps.UninstrumentedConfig(env.Ranks))
		if err != nil {
			return nil, err
		}
		baseDur := float64(base.Meta.Duration)

		modes := []struct {
			label string
			cfg   sim.Config
		}{
			{"instr_only", instrOnlyConfig(env.Ranks)},
			{"coarse_sampling(folding)", apps.DefaultTraceConfig(env.Ranks)},
			{"fine_sampling", apps.FineTraceConfig(env.Ranks)},
		}
		tb.AddRow(name, "uninstrumented", baseDur/1e9, pct(0), 0)
		for _, m := range modes {
			tr, _, err := runApp(env, name, m.cfg)
			if err != nil {
				return nil, err
			}
			d := float64(tr.Meta.Duration)
			tb.AddRow(name, m.label, d/1e9, pct(d/baseDur-1), len(tr.Samples))
		}
	}
	art.Notes = append(art.Notes,
		"folding consumes the coarse-sampling trace; fine sampling is the overhead it avoids")
	return art, nil
}

func instrOnlyConfig(ranks int) sim.Config {
	cfg := apps.DefaultTraceConfig(ranks)
	cfg.Sampling.Period = 0
	return cfg
}
