package experiments

import (
	"fmt"
	"math"
	"math/rand/v2"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/report"
	"repro/internal/spectral"
	"repro/internal/structure"
	"repro/internal/trace"
)

// T7NoiseSensitivity is an extension experiment: the simulator's counter
// snapshots are exact, but real PMU reads carry noise (non-deterministic
// counting, interrupt skid, attribution error). T7 injects zero-mean
// Gaussian noise into each sample's counter value (σ expressed as a
// fraction of the instance's total) plus uniform timestamp skid, and
// measures how folding accuracy degrades — showing the monotone fit's
// robustness keeps the reconstruction inside the paper's 5% bound for
// realistic noise levels.
func T7NoiseSensitivity(env Env) (*Artifact, error) {
	env.setDefaults()
	truth := apps.NewStencil(1).Kernels()[0].ShapeOf(counters.TotIns)
	clean, err := stencilSweepInstances(env, apps.DefaultTraceConfig(env.Ranks))
	if err != nil {
		return nil, err
	}

	sigmas := []float64{0, 0.002, 0.005, 0.01, 0.02, 0.05, 0.10}
	const skid = 2000 // ±2 µs timestamp skid, on the order of the sample cost

	tb := &report.Table{
		Title:  "T7: folding accuracy vs injected measurement noise (stencil sweep, TOT_INS)",
		Header: []string{"counter_noise_sigma", "timestamp_skid_us", "mean_abs_diff"},
	}
	var xs, ys []float64
	for _, sigma := range sigmas {
		noisy := InjectNoise(clean, counters.TotIns, sigma, skid, env.Seed)
		res, err := folding.Fold(noisy, folding.Config{Counter: counters.TotIns})
		if err != nil {
			return nil, err
		}
		d := res.MeanAbsDiff(truth)
		tb.AddRow(pct(sigma), float64(skid)/1e3, pct(d))
		xs = append(xs, 100*sigma)
		ys = append(ys, 100*d)
	}
	return &Artifact{
		ID:    "T7",
		Table: tb,
		Figures: map[string][]report.Series{
			"noise": {{Name: "mean_abs_diff_pct", X: xs, Y: ys}},
		},
		Notes: []string{"noise model: y += N(0, σ·total) per sample (clamped monotone-free), t += U(−skid, +skid)"},
	}, nil
}

// F7IterationFolding folds whole main-loop iterations (delimited by the
// EvIteration markers) of the stencil app instead of clustered bursts: the
// reconstructed curve shows the full iteration anatomy — the halo-pack
// ramp, the long sweep ramp, and the flat segments where ranks wait in
// MPI. This is the marker-driven use of folding the methodology supports
// alongside automatic cluster discovery.
func F7IterationFolding(env Env) (*Artifact, error) {
	env.setDefaults()
	tr, _, err := runApp(env, "stencil", apps.DefaultTraceConfig(env.Ranks))
	if err != nil {
		return nil, err
	}
	instances, err := folding.InstancesFromIterations(tr)
	if err != nil {
		return nil, err
	}
	res, err := folding.Fold(instances, folding.Config{Counter: counters.TotIns})
	if err != nil {
		return nil, err
	}
	art := &Artifact{
		ID: "F7",
		Figures: map[string][]report.Series{
			"iteration": {
				{Name: "cumulative_instructions", X: res.Grid, Y: res.Cumulative},
				{Name: "rate_per_us", X: res.Grid, Y: scale(res.Rate, 1e3)},
			},
		},
	}
	tb := &report.Table{
		Title:  "F7: iteration-level folding (stencil, TOT_INS over one whole iteration)",
		Header: []string{"x", "cumulative", "rate_per_us"},
	}
	for i := 0; i < len(res.Grid); i += 10 {
		tb.AddRow(res.Grid[i], res.Cumulative[i], res.Rate[i]*1e3)
	}
	art.Table = tb
	art.Notes = append(art.Notes, fmt.Sprintf(
		"%d iterations folded; mean iteration %.2f ms; breakpoints at %v",
		res.Instances, res.MeanDuration/1e6, res.Breakpoints))
	return art, nil
}

// F8SpectralDetection is an extension experiment: iteration-period
// detection *without* markers, from the autocorrelation of the compute-
// density signal, compared against the ground-truth iteration markers on
// every app. Marker-free structure detection is what makes the
// methodology applicable to unannotated binaries.
func F8SpectralDetection(env Env) (*Artifact, error) {
	env.setDefaults()
	tb := &report.Table{
		Title:  "F8: marker-free iteration detection (spectral) vs iteration markers",
		Header: []string{"app", "marker_mean_ms", "spectral_period_ms", "error", "implied_iterations"},
	}
	var xs, ys []float64
	for i, name := range []string{"stencil", "nbody", "cg"} {
		tr, _, err := runApp(env, name, apps.DefaultTraceConfig(env.Ranks))
		if err != nil {
			return nil, err
		}
		bursts, err := burst.Extract(tr)
		if err != nil {
			return nil, err
		}
		period, count, err := spectral.DetectIterations(tr, bursts)
		if err != nil {
			return nil, err
		}
		truth := structure.Iterations(tr)
		relErr := math.Abs(float64(period)-truth.MeanDuration) / truth.MeanDuration
		tb.AddRow(name, truth.MeanDuration/1e6, float64(period)/1e6, pct(relErr), count)
		xs = append(xs, float64(i))
		ys = append(ys, 100*relErr)
	}
	return &Artifact{
		ID:    "F8",
		Table: tb,
		Figures: map[string][]report.Series{
			"error": {{Name: "rel_error_pct", X: xs, Y: ys}},
		},
	}, nil
}

// InjectNoise returns a deep copy of the instances with per-sample
// counter noise (zero-mean Gaussian, σ = sigma × the instance's counter
// total) and uniform timestamp skid (± skidNS) applied. Sample times are
// clamped inside the instance; counter values are clamped non-negative
// but deliberately NOT re-monotonized — real read noise isn't either.
func InjectNoise(instances []folding.Instance, c counters.Counter, sigma float64, skidNS int64, seed uint64) []folding.Instance {
	rng := rand.New(rand.NewPCG(seed, 0x6e6f697365)) // "noise"
	out := make([]folding.Instance, len(instances))
	for i := range instances {
		in := instances[i] // copy struct
		in.Samples = append([]trace.Sample(nil), instances[i].Samples...)
		tot := float64(in.Totals[c])
		for j := range in.Samples {
			s := &in.Samples[j]
			if sigma > 0 && tot > 0 {
				v := float64(s.Counters[c]-in.Base[c]) + sigma*tot*rng.NormFloat64()
				if v < 0 {
					v = 0
				}
				s.Counters[c] = in.Base[c] + int64(v)
			}
			if skidNS > 0 {
				t := s.Time + trace.Time(rng.Int64N(2*skidNS+1)-skidNS)
				if t < in.Start {
					t = in.Start
				}
				if t >= in.End {
					t = in.End - 1
				}
				s.Time = t
			}
		}
		out[i] = in
	}
	return out
}
