package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/report"
	"repro/internal/sim"
)

// F1Clustering produces the burst scatter plots (duration µs × IPC, one
// series per cluster) for every application — the structure-detection
// figure.
func F1Clustering(env Env) (*Artifact, error) {
	env.setDefaults()
	art := &Artifact{ID: "F1", Figures: map[string][]report.Series{}}
	for _, name := range []string{"stencil", "nbody", "cg"} {
		tr, _, err := runApp(env, name, defaultCfg(env))
		if err != nil {
			return nil, err
		}
		all, err := burst.Extract(tr)
		if err != nil {
			return nil, err
		}
		kept, _ := burst.Filter{MinDuration: 50_000}.Apply(all)
		res := cluster.ClusterBursts(kept, cluster.Config{UseIPC: true})

		series := map[int]*report.Series{}
		for i, b := range kept {
			c := res.Assign[i]
			s, ok := series[c]
			if !ok {
				label := fmt.Sprintf("cluster_%d", c)
				if c == cluster.Noise {
					label = "noise"
				}
				s = &report.Series{Name: label}
				series[c] = s
			}
			s.X = append(s.X, float64(b.Duration())/1e3) // µs
			s.Y = append(s.Y, b.IPC())
		}
		var out []report.Series
		for c := 0; c <= res.K; c++ {
			if s, ok := series[c]; ok {
				out = append(out, *s)
			}
		}
		art.Figures[name] = out
		art.Notes = append(art.Notes, fmt.Sprintf(
			"%s: %d bursts kept, K=%d, eps=%.4f", name, len(kept), res.K, res.Eps))
	}
	return art, nil
}

// T1ClusterQuality summarizes clustering per application: clusters found,
// computation-time coverage, silhouette, and ground-truth purity.
func T1ClusterQuality(env Env) (*Artifact, error) {
	env.setDefaults()
	tb := &report.Table{
		Title:  "T1: burst clustering quality",
		Header: []string{"app", "bursts", "filtered", "K", "time_coverage", "silhouette", "purity_phase1"},
	}
	for _, name := range []string{"stencil", "nbody", "cg"} {
		rep, _, err := analyzeApp(env, name, defaultCfg(env))
		if err != nil {
			return nil, err
		}
		purity := 0.0
		if ph := mainPhase(rep); ph != nil {
			purity = ph.OraclePurity
		}
		tb.AddRow(name, rep.Bursts, rep.Filtered, rep.Clustering.K,
			pct(rep.ClusterTimeCoverage), rep.Clustering.Silhouette, pct(purity))
	}
	return &Artifact{ID: "T1", Table: tb}, nil
}

// F6Callstack folds call stacks of the stencil sweep and reports the
// per-bin dominant source region and region shares — the "unveiled"
// internal structure through the call-stack lens.
func F6Callstack(env Env) (*Artifact, error) {
	env.setDefaults()
	rep, _, err := analyzeApp(env, "stencil", defaultCfg(env))
	if err != nil {
		return nil, err
	}
	ph := dominantPhase(rep, mainKernelID["stencil"])
	if ph == nil || ph.Stacks == nil {
		return nil, fmt.Errorf("experiments: stencil sweep stacks unavailable")
	}
	tr, _, err := runApp(env, "stencil", defaultCfg(env))
	if err != nil {
		return nil, err
	}

	st := ph.Stacks
	var series []report.Series
	for ri, id := range st.Regions {
		s := report.Series{Name: tr.Meta.RegionName(id)}
		for b := 0; b < st.Bins; b++ {
			s.X = append(s.X, (float64(b)+0.5)/float64(st.Bins))
			s.Y = append(s.Y, st.Share[b][ri])
		}
		series = append(series, s)
	}
	tb := &report.Table{
		Title:  "F6: dominant source region over normalized phase time (stencil jacobi_sweep)",
		Header: []string{"x_range", "dominant_region"},
	}
	// Compress consecutive bins with the same dominant region.
	start := 0
	for b := 1; b <= st.Bins; b++ {
		if b < st.Bins && st.Dominant[b] == st.Dominant[start] {
			continue
		}
		tb.AddRow(
			fmt.Sprintf("[%.2f, %.2f)", float64(start)/float64(st.Bins), float64(b)/float64(st.Bins)),
			tr.Meta.RegionName(st.Dominant[start]))
		start = b
	}
	art := &Artifact{ID: "F6", Table: tb, Figures: map[string][]report.Series{"shares": series}}
	for _, x := range st.Transitions() {
		art.Notes = append(art.Notes, fmt.Sprintf("region transition at x=%.2f", x))
	}
	return art, nil
}

// T6Imbalance folds the nbody forces phase per rank and reports each
// rank's mean instance duration — exposing load imbalance hidden inside a
// single cluster.
func T6Imbalance(env Env) (*Artifact, error) {
	env.setDefaults()
	rep, _, err := analyzeApp(env, "nbody", defaultCfg(env))
	if err != nil {
		return nil, err
	}
	ph := dominantPhase(rep, mainKernelID["nbody"])
	if ph == nil {
		return nil, fmt.Errorf("experiments: nbody forces phase not found")
	}
	tb := &report.Table{
		Title:  "T6: per-rank mean instance duration inside the forces cluster (nbody)",
		Header: []string{"rank", "mean_duration_ms", "vs_mean"},
	}
	var mean float64
	n := 0
	for _, d := range ph.RankMeanDuration {
		if d > 0 {
			mean += d
			n++
		}
	}
	if n > 0 {
		mean /= float64(n)
	}
	var xs, ys []float64
	for r, d := range ph.RankMeanDuration {
		if d == 0 {
			continue
		}
		tb.AddRow(r, d/1e6, pct(d/mean))
		xs = append(xs, float64(r))
		ys = append(ys, d/1e6)
	}
	art := &Artifact{
		ID:    "T6",
		Table: tb,
		Figures: map[string][]report.Series{
			"rank_duration": {{Name: "forces_mean_ms", X: xs, Y: ys}},
		},
	}
	art.Notes = append(art.Notes, fmt.Sprintf("imbalance factor (max/mean) = %.3f", ph.ImbalanceFactor))
	for _, a := range ph.Advice {
		art.Notes = append(art.Notes, "advice: "+a)
	}
	return art, nil
}

// defaultCfg builds the coarse-sampling evaluation configuration.
func defaultCfg(env Env) sim.Config {
	return apps.DefaultTraceConfig(env.Ranks)
}
