package experiments

import (
	"fmt"

	"repro/internal/apps"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// F4PeriodSweep measures folding accuracy (vs analytic ground truth) as
// the sampling period grows from fine to very coarse, on the stencil
// sweep. The paper's central point: accuracy barely degrades with the
// period because folding pools samples across instances, while the number
// of samples per single instance (also reported) collapses — per-instance
// analysis would be impossible.
func F4PeriodSweep(env Env) (*Artifact, error) {
	env.setDefaults()
	periods := []int64{1, 2, 5, 10, 20, 50, 100} // ms
	truthApp := apps.NewStencil(1)
	truth := truthApp.Kernels()[0].ShapeOf(counters.TotIns)

	var xs, acc, perInst []float64
	tb := &report.Table{
		Title:  "F4: folding accuracy vs sampling period (stencil jacobi_sweep, vs ground truth)",
		Header: []string{"period_ms", "mean_abs_diff", "folded_points", "samples_per_instance"},
	}
	for _, p := range periods {
		cfg := apps.DefaultTraceConfig(env.Ranks)
		cfg.Sampling.Period = trace.Time(p * 1_000_000)
		rep, _, err := analyzeApp(env, "stencil", cfg)
		if err != nil {
			return nil, err
		}
		ph := dominantPhase(rep, mainKernelID["stencil"])
		f := foldOf(ph, counters.TotIns)
		if f == nil {
			tb.AddRow(p, "fold failed", 0, 0)
			continue
		}
		d := f.MeanAbsDiff(truth)
		spi := float64(len(f.Points)) / float64(f.Instances)
		tb.AddRow(p, pct(d), len(f.Points), spi)
		xs = append(xs, float64(p))
		acc = append(acc, 100*d)
		perInst = append(perInst, spi)
	}
	art := &Artifact{
		ID:    "F4",
		Table: tb,
		Figures: map[string][]report.Series{
			"accuracy": {
				{Name: "mean_abs_diff_pct", X: xs, Y: acc},
				{Name: "samples_per_instance", X: xs, Y: perInst},
			},
		},
	}
	return art, nil
}

// F5InstanceSweep measures folding accuracy as the number of folded
// instances (iterations) grows — convergence of the fold.
func F5InstanceSweep(env Env) (*Artifact, error) {
	env.setDefaults()
	iters := []int{10, 20, 50, 100, 200, 400}
	truthApp := apps.NewStencil(1)
	truth := truthApp.Kernels()[0].ShapeOf(counters.TotIns)

	var xs, acc []float64
	tb := &report.Table{
		Title:  "F5: folding accuracy vs folded instances (stencil jacobi_sweep, 20 ms sampling)",
		Header: []string{"iterations", "instances", "folded_points", "mean_abs_diff"},
	}
	for _, it := range iters {
		e := env
		e.Iters = it
		rep, _, err := analyzeApp(e, "stencil", apps.DefaultTraceConfig(e.Ranks))
		if err != nil {
			return nil, err
		}
		ph := dominantPhase(rep, mainKernelID["stencil"])
		f := foldOf(ph, counters.TotIns)
		if f == nil {
			tb.AddRow(it, 0, 0, "fold failed")
			continue
		}
		d := f.MeanAbsDiff(truth)
		tb.AddRow(it, f.Instances, len(f.Points), pct(d))
		xs = append(xs, float64(it))
		acc = append(acc, 100*d)
	}
	return &Artifact{
		ID:    "F5",
		Table: tb,
		Figures: map[string][]report.Series{
			"convergence": {{Name: "mean_abs_diff_pct", X: xs, Y: acc}},
		},
	}, nil
}

// T4FitAblation compares the three fitting models on identical folded
// data (stencil sweep, coarse sampling).
func T4FitAblation(env Env) (*Artifact, error) {
	env.setDefaults()
	truth := apps.NewStencil(1).Kernels()[0].ShapeOf(counters.TotIns)
	instances, err := stencilSweepInstances(env, apps.DefaultTraceConfig(env.Ranks))
	if err != nil {
		return nil, err
	}
	tb := &report.Table{
		Title:  "T4: fit model ablation (stencil jacobi_sweep, TOT_INS, vs ground truth)",
		Header: []string{"model", "mean_abs_diff", "breakpoints"},
	}
	for _, m := range []folding.Model{folding.ModelBinnedPCHIP, folding.ModelKernel, folding.ModelBinned} {
		res, err := folding.Fold(instances, folding.Config{Counter: counters.TotIns, Model: m})
		if err != nil {
			return nil, fmt.Errorf("experiments: model %v: %w", m, err)
		}
		tb.AddRow(m.String(), pct(res.MeanAbsDiff(truth)), len(res.Breakpoints))
	}
	return &Artifact{ID: "T4", Table: tb}, nil
}

// T5PruneAblation measures the value of instance outlier pruning under
// heavy OS noise: 10% of sweep instances are hit by a 3× slowdown.
func T5PruneAblation(env Env) (*Artifact, error) {
	env.setDefaults()
	truth := apps.NewStencil(1).Kernels()[0].ShapeOf(counters.TotIns)
	instances, err := stencilSweepInstances(env, apps.DefaultTraceConfig(env.Ranks))
	if err != nil {
		return nil, err
	}
	// Inject synthetic OS-noise hits: stretch every 10th instance 3×.
	// (The samples keep their positions, so the stretched instances have
	// systematically wrong normalized times — exactly what noise does.)
	noisy := make([]folding.Instance, len(instances))
	copy(noisy, instances)
	for i := 0; i < len(noisy); i += 10 {
		noisy[i].End = noisy[i].Start + 3*noisy[i].Duration()
	}
	tb := &report.Table{
		Title:  "T5: instance pruning ablation (stencil sweep, 10% of instances stretched 3x)",
		Header: []string{"pruning", "pruned_instances", "mean_abs_diff"},
	}
	with, err := folding.Fold(noisy, folding.Config{Counter: counters.TotIns, PruneK: 3})
	if err != nil {
		return nil, err
	}
	without, err := folding.Fold(noisy, folding.Config{Counter: counters.TotIns, PruneK: -1})
	if err != nil {
		return nil, err
	}
	tb.AddRow("on (k=3 MAD)", with.Pruned, pct(with.MeanAbsDiff(truth)))
	tb.AddRow("off", without.Pruned, pct(without.MeanAbsDiff(truth)))
	return &Artifact{ID: "T5", Table: tb}, nil
}

// stencilSweepInstances extracts the sweep-phase folding instances from a
// stencil run — shared by the ablation experiments.
func stencilSweepInstances(env Env, cfg sim.Config) ([]folding.Instance, error) {
	rep, _, err := analyzeApp(env, "stencil", cfg)
	if err != nil {
		return nil, err
	}
	ph := dominantPhase(rep, mainKernelID["stencil"])
	if ph == nil {
		return nil, fmt.Errorf("experiments: stencil sweep phase not found")
	}
	return ph.FoldInstances, nil
}
