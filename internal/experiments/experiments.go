// Package experiments regenerates every table (T*) and figure (F*) of the
// reconstructed evaluation (see DESIGN.md for the experiment index). Each
// experiment is a function from an Env to an Artifact — a table and/or
// figure data series — so the same code serves the `report` CLI, the
// benchmark harness, and the tests that assert the paper's claims.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/kernels"
	"repro/internal/report"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Env is the common experiment environment. The zero value is upgraded to
// the defaults by setDefaults.
type Env struct {
	// Ranks is the number of simulated MPI ranks (default 16).
	Ranks int
	// Iters is the per-app iteration count (default 200).
	Iters int
	// Seed is the simulator seed (default 1).
	Seed uint64
}

func (e *Env) setDefaults() {
	if e.Ranks == 0 {
		e.Ranks = 16
	}
	if e.Iters == 0 {
		e.Iters = 200
	}
	if e.Seed == 0 {
		e.Seed = 1
	}
}

// Artifact is the output of one experiment: an optional table, optional
// figure series keyed by filename stem, and free-form notes.
type Artifact struct {
	ID      string
	Table   *report.Table
	Figures map[string][]report.Series
	Notes   []string
}

// Save writes the artifact under dir: <ID>.txt for the table,
// <ID>_<name>.tsv per figure, notes appended to the table file.
func (a *Artifact) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	if a.Table != nil || len(a.Notes) > 0 {
		var b strings.Builder
		if a.Table != nil {
			b.WriteString(a.Table.Format())
		}
		for _, n := range a.Notes {
			b.WriteString("note: " + n + "\n")
		}
		if err := os.WriteFile(filepath.Join(dir, a.ID+".txt"), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	for name, series := range a.Figures {
		path := filepath.Join(dir, a.ID+"_"+name+".tsv")
		if err := report.WriteSeriesTSV(path, series); err != nil {
			return err
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Shared helpers

// runApp simulates the named app under cfg (with the env seed applied).
func runApp(env Env, name string, cfg sim.Config) (*trace.Trace, apps.App, error) {
	app, err := apps.ByName(name, env.Iters)
	if err != nil {
		return nil, nil, err
	}
	cfg.Ranks = env.Ranks
	cfg.Seed = env.Seed
	tr, err := sim.Run(cfg, app)
	if err != nil {
		return nil, nil, err
	}
	return tr, app, nil
}

// analyzeApp simulates and analyzes the named app.
func analyzeApp(env Env, name string, cfg sim.Config) (*core.Report, apps.App, error) {
	tr, app, err := runApp(env, name, cfg)
	if err != nil {
		return nil, nil, err
	}
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		return nil, nil, err
	}
	return rep, app, nil
}

// kernelByID indexes an app's kernels by oracle id.
func kernelByID(app apps.App) map[int64]*kernels.Kernel {
	m := make(map[int64]*kernels.Kernel)
	for _, k := range app.Kernels() {
		m[k.ID] = k
	}
	return m
}

// dominantPhase returns the analyzed phase with the most instances whose
// majority oracle matches id, or nil.
func dominantPhase(rep *core.Report, id int64) *core.Phase {
	var best *core.Phase
	for i := range rep.Phases {
		ph := &rep.Phases[i]
		if ph.MajorityOracle == id && (best == nil || ph.Instances > best.Instances) {
			best = ph
		}
	}
	return best
}

// mainPhase returns the first (most-time) analyzed phase, or nil.
func mainPhase(rep *core.Report) *core.Phase {
	if len(rep.Phases) == 0 {
		return nil
	}
	return &rep.Phases[0]
}

// mainKernelID maps each app to the kernel its dominant cluster holds.
var mainKernelID = map[string]int64{
	"stencil": 1, // jacobi_sweep
	"nbody":   3, // forces
	"cg":      5, // spmv
}

// pct formats a fraction as a percentage string, keeping enough digits for
// sub-0.1% accuracies to stay visible.
func pct(f float64) string {
	v := 100 * f
	if v != 0 && v > -0.1 && v < 0.1 {
		return fmt.Sprintf("%.3f%%", v)
	}
	return fmt.Sprintf("%.1f%%", v)
}

// foldOf fetches a phase's fold for a counter, or nil.
func foldOf(ph *core.Phase, c counters.Counter) *folding.Result {
	if ph == nil {
		return nil
	}
	return ph.Folds[c]
}
