package experiments

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// smallEnv keeps the test runtime reasonable while leaving enough
// instances for folding to converge.
func smallEnv() Env { return Env{Ranks: 8, Iters: 100, Seed: 1} }

func TestAllExperimentsRegistered(t *testing.T) {
	all := All()
	if len(all) != 15 {
		t.Fatalf("experiments = %d, want 15", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Desc == "" || e.Run == nil {
			t.Fatalf("incomplete experiment %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	for _, id := range []string{"T2", "F4", "F6"} {
		if _, err := ByID(id); err != nil {
			t.Fatalf("ByID(%s): %v", id, err)
		}
	}
	if _, err := ByID("T99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestT2HeadlineClaim(t *testing.T) {
	art, err := T2Accuracy(smallEnv())
	if err != nil {
		t.Fatal(err)
	}
	if art.Table == nil || len(art.Table.Rows) != 12 { // 3 apps × 4 counters
		t.Fatalf("T2 rows = %d, want 12", len(art.Table.Rows))
	}
	// Every successful fold must satisfy the paper's < 5% claim vs fine
	// grain; n/a rows (counter absent in a phase) are allowed.
	for _, row := range art.Table.Rows {
		if row[2] == "n/a" {
			continue
		}
		v := parsePct(t, row[2])
		if v >= 5 {
			t.Errorf("%s/%s: vs fine grain = %s, want < 5%%", row[0], row[1], row[2])
		}
	}
}

func parsePct(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percentage %q", s)
	}
	return v
}

func TestT3OverheadOrdering(t *testing.T) {
	art, err := T3Overhead(smallEnv())
	if err != nil {
		t.Fatal(err)
	}
	// Per app: uninstrumented <= instr_only <= coarse < fine.
	rows := art.Table.Rows
	if len(rows) != 12 { // 3 apps × 4 modes
		t.Fatalf("rows = %d", len(rows))
	}
	for a := 0; a < 3; a++ {
		base := parseFloat(t, rows[a*4][2])
		instr := parseFloat(t, rows[a*4+1][2])
		coarse := parseFloat(t, rows[a*4+2][2])
		fine := parseFloat(t, rows[a*4+3][2])
		if !(base <= instr && instr <= coarse && coarse < fine) {
			t.Fatalf("app %s: durations not ordered: %g %g %g %g",
				rows[a*4][0], base, instr, coarse, fine)
		}
		// Fine-grain sampling must be substantially more intrusive than
		// the coarse sampling folding needs. The per-sample cost is fixed,
		// so the sample-count ratio is the exact overhead ratio of the two
		// sampling modes (the table's duration column is rounded for
		// display, so assert on the counts).
		coarseSamples := parseFloat(t, rows[a*4+2][4])
		fineSamples := parseFloat(t, rows[a*4+3][4])
		if fineSamples < 50*coarseSamples {
			t.Fatalf("app %s: fine/coarse sample ratio %.1f× too low",
				rows[a*4][0], fineSamples/coarseSamples)
		}
		_ = instr
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad float %q", s)
	}
	return v
}

func TestF4PeriodSweepShape(t *testing.T) {
	env := smallEnv()
	env.Iters = 150
	art, err := F4PeriodSweep(env)
	if err != nil {
		t.Fatal(err)
	}
	acc := art.Figures["accuracy"]
	if len(acc) != 2 {
		t.Fatalf("accuracy series = %d", len(acc))
	}
	diffs := acc[0].Y
	spi := acc[1].Y
	if len(diffs) < 5 {
		t.Fatalf("too few sweep points: %d", len(diffs))
	}
	// Folding accuracy stays under 5% even at the coarsest period...
	for i, d := range diffs {
		if d >= 5 {
			t.Errorf("period %v ms: diff %.2f%% >= 5%%", acc[0].X[i], d)
		}
	}
	// ...while per-instance sample counts collapse below 1 (per-instance
	// analysis impossible — folding is what makes the reconstruction work).
	if spi[len(spi)-1] >= 1 {
		t.Errorf("coarsest period still has %.2f samples/instance", spi[len(spi)-1])
	}
	if spi[0] <= 1 {
		t.Errorf("finest period should have > 1 sample/instance, got %.2f", spi[0])
	}
}

func TestF5ConvergenceImproves(t *testing.T) {
	env := smallEnv()
	art, err := F5InstanceSweep(env)
	if err != nil {
		t.Fatal(err)
	}
	conv := art.Figures["convergence"][0]
	if len(conv.Y) < 4 {
		t.Fatalf("sweep points = %d", len(conv.Y))
	}
	// More instances → better (or equal) accuracy, comparing the sparsest
	// against the densest.
	if conv.Y[len(conv.Y)-1] > conv.Y[0] {
		t.Fatalf("accuracy did not improve with instances: %v", conv.Y)
	}
	// At 400 iterations the fold must satisfy the headline claim.
	if last := conv.Y[len(conv.Y)-1]; last >= 5 {
		t.Fatalf("converged accuracy %.2f%% >= 5%%", last)
	}
}

func TestT4FitAblation(t *testing.T) {
	art, err := T4FitAblation(smallEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(art.Table.Rows))
	}
	for _, row := range art.Table.Rows {
		if v := parsePct(t, row[1]); v >= 5 {
			t.Errorf("model %s diff %.2f%% >= 5%%", row[0], v)
		}
	}
}

func TestT5PruningHelps(t *testing.T) {
	art, err := T5PruneAblation(smallEnv())
	if err != nil {
		t.Fatal(err)
	}
	rows := art.Table.Rows
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	on := parsePct(t, rows[0][2])
	off := parsePct(t, rows[1][2])
	if on >= off {
		t.Fatalf("pruning did not help: on=%.2f%% off=%.2f%%", on, off)
	}
	if pruned := rows[0][1]; pruned == "0" {
		t.Fatal("pruning removed nothing")
	}
}

func TestT6ImbalanceTable(t *testing.T) {
	art, err := T6Imbalance(smallEnv())
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Table.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (one per rank)", len(art.Table.Rows))
	}
	// Middle ranks slower than edge ranks (triangular imbalance).
	mid := parseFloat(t, art.Table.Rows[3][1])
	edge := parseFloat(t, art.Table.Rows[0][1])
	if mid <= edge*1.2 {
		t.Fatalf("imbalance not visible: mid %.2f vs edge %.2f ms", mid, edge)
	}
}

func TestF1F2F3F6ProduceFigures(t *testing.T) {
	env := smallEnv()
	env.Iters = 60
	for _, id := range []string{"F1", "F2", "F3", "F6"} {
		e, err := ByID(id)
		if err != nil {
			t.Fatal(err)
		}
		art, err := e.Run(env)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(art.Figures) == 0 {
			t.Fatalf("%s produced no figures", id)
		}
		for name, series := range art.Figures {
			if len(series) == 0 {
				t.Fatalf("%s/%s empty", id, name)
			}
			for _, s := range series {
				if len(s.X) != len(s.Y) {
					t.Fatalf("%s/%s/%s length mismatch", id, name, s.Name)
				}
			}
		}
	}
}

func TestT1ClusterQualityTable(t *testing.T) {
	env := smallEnv()
	env.Iters = 60
	art, err := T1ClusterQuality(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(art.Table.Rows))
	}
	for _, row := range art.Table.Rows {
		cov := parsePct(t, row[4])
		if cov < 90 {
			t.Errorf("%s: cluster time coverage %.1f%% < 90%%", row[0], cov)
		}
		pur := parsePct(t, row[6])
		if pur < 95 {
			t.Errorf("%s: phase-1 purity %.1f%% < 95%%", row[0], pur)
		}
	}
}

func TestT7NoiseStaysUnderClaim(t *testing.T) {
	art, err := T7NoiseSensitivity(smallEnv())
	if err != nil {
		t.Fatal(err)
	}
	ys := art.Figures["noise"][0].Y
	if len(ys) < 5 {
		t.Fatalf("noise points = %d", len(ys))
	}
	// Accuracy must degrade monotonically-ish and stay under the paper's
	// 5% bound up to σ = 2% of the phase total (index of sigma 0.02).
	if ys[0] >= ys[len(ys)-1] {
		t.Fatalf("noise did not degrade accuracy: %v", ys)
	}
	xs := art.Figures["noise"][0].X
	for i, x := range xs {
		if x <= 2.0 && ys[i] >= 5 {
			t.Fatalf("at σ=%.1f%% accuracy %.2f%% breaches the 5%% bound", x, ys[i])
		}
	}
}

func TestF7IterationAnatomy(t *testing.T) {
	env := smallEnv()
	env.Iters = 80
	art, err := F7IterationFolding(env)
	if err != nil {
		t.Fatal(err)
	}
	series := art.Figures["iteration"]
	if len(series) != 2 {
		t.Fatalf("series = %d", len(series))
	}
	cum := series[0].Y
	// The stencil iteration ends in an Allreduce wait: the cumulative
	// instruction curve must be (nearly) flat over the last few percent
	// and strictly rising through the sweep's core.
	n := len(cum)
	if cum[n-1]-cum[n-3] > 0.02 {
		t.Fatalf("no flat MPI tail: %v", cum[n-5:])
	}
	mid := cum[n/2]
	if mid < 0.05 || mid > 0.95 {
		t.Fatalf("mid-iteration cumulative %g implausible", mid)
	}
}

func TestF8SpectralMatchesMarkers(t *testing.T) {
	env := smallEnv()
	env.Iters = 80
	art, err := F8SpectralDetection(env)
	if err != nil {
		t.Fatal(err)
	}
	if len(art.Table.Rows) != 3 {
		t.Fatalf("rows = %d", len(art.Table.Rows))
	}
	for _, row := range art.Table.Rows {
		if e := parsePct(t, row[3]); e > 10 {
			t.Errorf("%s: spectral error %.1f%% > 10%%", row[0], e)
		}
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep")
	}
	env := Env{Ranks: 4, Iters: 30, Seed: 1}
	dir := t.TempDir()
	arts, err := RunAll(env, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(arts) != len(All()) {
		t.Fatalf("artifacts = %d, want %d", len(arts), len(All()))
	}
	// Every artifact produced its file(s).
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < len(arts) {
		t.Fatalf("saved files = %d < %d artifacts", len(entries), len(arts))
	}
}

func TestEnvDefaults(t *testing.T) {
	var e Env
	e.setDefaults()
	if e.Ranks != 16 || e.Iters != 200 || e.Seed != 1 {
		t.Fatalf("defaults = %+v", e)
	}
	custom := Env{Ranks: 4, Iters: 10, Seed: 7}
	custom.setDefaults()
	if custom.Ranks != 4 || custom.Iters != 10 || custom.Seed != 7 {
		t.Fatalf("custom env overwritten: %+v", custom)
	}
}

func TestArtifactSave(t *testing.T) {
	env := smallEnv()
	env.Iters = 40
	art, err := T4FitAblation(env)
	if err != nil {
		t.Fatal(err)
	}
	art.Figures = nil
	dir := t.TempDir()
	if err := art.Save(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "T4.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "T4") {
		t.Fatalf("artifact file: %s", data)
	}
}
