package experiments

import (
	"fmt"
	"sort"
)

// Experiment is a named experiment function.
type Experiment struct {
	ID   string
	Desc string
	Run  func(Env) (*Artifact, error)
}

// All returns every experiment in the reconstructed evaluation, in index
// order (T* and F* interleaved as in DESIGN.md).
func All() []Experiment {
	return []Experiment{
		{"F1", "burst scatter (duration × IPC) with cluster labels, per app", F1Clustering},
		{"T1", "clustering summary: clusters, time coverage, silhouette, purity", T1ClusterQuality},
		{"F2", "folded cumulative instruction curve vs fine-grain vs ground truth", F2FoldedCurves},
		{"F3", "instantaneous MIPS and L1-miss-rate evolution inside the stencil sweep", F3Rates},
		{"T2", "headline accuracy: folding vs fine grain < 5% absolute mean difference", T2Accuracy},
		{"T3", "runtime dilation of instrumentation / coarse sampling / fine sampling", T3Overhead},
		{"F4", "accuracy vs sampling period sweep", F4PeriodSweep},
		{"F5", "accuracy vs number of folded instances", F5InstanceSweep},
		{"F6", "call-stack folding: dominant source region per normalized-time bin", F6Callstack},
		{"T4", "ablation: fit model", T4FitAblation},
		{"T5", "ablation: instance outlier pruning under injected noise", T5PruneAblation},
		{"T6", "per-rank folding exposes load imbalance inside one cluster", T6Imbalance},
		{"T7", "extension: folding accuracy under injected measurement noise", T7NoiseSensitivity},
		{"F7", "extension: iteration-level folding (whole-iteration anatomy)", F7IterationFolding},
		{"F8", "extension: marker-free iteration detection (spectral) vs markers", F8SpectralDetection},
	}
}

// ByID returns the experiment with the given id.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, ids)
}

// RunAll executes every experiment, saving artifacts under outDir when it
// is non-empty, and returns the artifacts in order. The first error aborts.
func RunAll(env Env, outDir string) ([]*Artifact, error) {
	var out []*Artifact
	for _, e := range All() {
		art, err := e.Run(env)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", e.ID, err)
		}
		if outDir != "" {
			if err := art.Save(outDir); err != nil {
				return out, fmt.Errorf("experiments: saving %s: %w", e.ID, err)
			}
		}
		out = append(out, art)
	}
	return out, nil
}
