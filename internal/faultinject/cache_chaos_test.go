package faultinject_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/foldsvc"
)

// cachePost uploads body to the daemon and returns status code,
// Cache-Status header, and response body.
func cachePost(t *testing.T, base, query string, body []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze"+query, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Cache-Status"), data
}

// TestChaosCacheDecodeModeKeying proves the cache key includes the
// decode mode: a damaged trace whose lenient decode produced a
// degraded Report must never have that entry served to a strict
// request for the same bytes (and vice versa) — a cached degraded 200
// leaking into a strict request would silently launder salvage
// concessions.
func TestChaosCacheDecodeModeKeying(t *testing.T) {
	enc := encodedTrace(t)
	header := headerLen(t, enc)
	srv := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{}))
	defer srv.Close()

	// Materialize one fixed damaged byte stream so every upload is the
	// same content (same digest, different decode modes).
	damaged, err := io.ReadAll(faultinject.BitFlip(bytes.NewReader(enc), 2, 61, header))
	if err != nil {
		t.Fatal(err)
	}

	// Lenient: salvaged, degraded, cached.
	code, cs, first := cachePost(t, srv.URL, "?lenient=1", damaged)
	if code != http.StatusOK || cs != "miss" {
		t.Fatalf("lenient upload: status %d, Cache-Status %q: %s", code, cs, first)
	}
	var rep core.Report
	if err := json.Unmarshal(first, &rep); err != nil {
		t.Fatalf("lenient report does not decode: %v", err)
	}
	checkContract(t, &rep, nil)
	if !rep.Degraded {
		t.Fatal("bitflipped trace salvaged without degradation — fault did not bite")
	}

	// Strict request for the same bytes: the cached degraded entry must
	// NOT be served; strict decoding of a damaged trace fails.
	code, cs, body := cachePost(t, srv.URL, "", damaged)
	if code == http.StatusOK {
		t.Fatalf("strict request served a 200 (Cache-Status %q) for a damaged trace: %s", cs, body)
	}
	if code < 400 || code >= 600 {
		t.Fatalf("strict request: unexpected status %d", code)
	}

	// The lenient entry itself is still warm.
	code, cs, second := cachePost(t, srv.URL, "?lenient=1", damaged)
	if code != http.StatusOK || cs != "hit" {
		t.Fatalf("lenient repeat: status %d, Cache-Status %q", code, cs)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("lenient hit differs from the original degraded report")
	}

	// A clean trace analyzes fine either way, but strict and lenient
	// still occupy separate keys: the second mode misses even though the
	// digest matches.
	if code, cs, _ := cachePost(t, srv.URL, "", enc); code != http.StatusOK || cs != "miss" {
		t.Fatalf("clean strict: status %d, Cache-Status %q", code, cs)
	}
	if code, cs, _ := cachePost(t, srv.URL, "?lenient=1", enc); code != http.StatusOK || cs != "miss" {
		t.Fatalf("clean lenient: status %d, Cache-Status %q; decode mode must be part of the key", code, cs)
	}
}

// TestChaosCacheCancelNoPoison proves a request that dies mid-flight
// leaves no partial cache entry: after a client abandons an upload
// (the analysis is cancelled server-side), the next request for the
// same trace is a clean miss that recomputes and then caches normally.
func TestChaosCacheCancelNoPoison(t *testing.T) {
	enc := encodedTrace(t)
	srv := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{}))
	defer srv.Close()

	// Abandon an upload halfway: cancel the request context, then abort
	// the body stream so the client-side transport lets go.
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/analyze", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write(enc[:len(enc)/2]); err != nil {
		t.Fatal(err)
	}
	cancel()
	pw.CloseWithError(errors.New("client abandoned upload"))
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("abandoned upload hung")
	}

	// The wreckage must not have produced a cache entry: the full
	// upload is a miss, recomputes, and answers a healthy report.
	code, cs, first := cachePost(t, srv.URL, "", enc)
	if code != http.StatusOK {
		t.Fatalf("recompute after cancel: status %d: %s", code, first)
	}
	if cs != "miss" {
		t.Fatalf("recompute after cancel: Cache-Status %q; a cancelled request must not leave an entry", cs)
	}
	var rep core.Report
	if err := json.Unmarshal(first, &rep); err != nil {
		t.Fatalf("report does not decode: %v", err)
	}
	checkContract(t, &rep, nil)
	if rep.Degraded {
		t.Fatal("clean trace reported degraded after a cancelled predecessor")
	}

	// And the recomputed entry caches normally.
	code, cs, second := cachePost(t, srv.URL, "", enc)
	if code != http.StatusOK || cs != "hit" {
		t.Fatalf("repeat: status %d, Cache-Status %q", code, cs)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("hit differs from the recomputed report")
	}
}
