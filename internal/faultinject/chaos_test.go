// Chaos suite: drives full traces through the batch, streaming, and
// HTTP analysis paths under injected I/O faults and asserts the
// system-wide robustness contract — every fault yields either a
// degraded report with accurate salvage statistics or a cleanly
// wrapped error; never a panic and never a hang.
package faultinject_test

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/faultinject"
	"repro/internal/foldsvc"
	"repro/internal/pipeline"
	"repro/internal/sim"
	"repro/internal/trace"
)

// encodedTrace simulates a featured run once and returns its encoding.
func encodedTrace(t *testing.T) []byte {
	t.Helper()
	app, err := apps.ByName("stencil", 30)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(2), app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// headerLen locates the end of the UVT1 header (magic + uvarint length
// + metadata JSON) so faults can target the record sections.
func headerLen(t *testing.T, enc []byte) int64 {
	t.Helper()
	n, k := binary.Uvarint(enc[4:])
	if k <= 0 {
		t.Fatal("cannot parse the metadata length")
	}
	return int64(4 + k + int(n))
}

// hangGuard runs fn with a deadline; a hang is the one failure the
// chaos contract can't tolerate at all.
func hangGuard(t *testing.T, fn func() (*core.Report, error)) (*core.Report, error) {
	t.Helper()
	type result struct {
		rep *core.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := fn()
		done <- result{rep, err}
	}()
	select {
	case r := <-done:
		return r.rep, r.err
	case <-time.After(60 * time.Second):
		t.Fatal("analysis hung under fault injection")
		return nil, nil
	}
}

// checkContract asserts the robustness contract on one outcome: clean
// error, or a report whose Degraded flag matches its decode stats.
func checkContract(t *testing.T, rep *core.Report, err error) {
	t.Helper()
	if err != nil {
		if rep != nil {
			t.Error("error alongside a non-nil report")
		}
		return
	}
	if rep == nil {
		t.Fatal("nil report without error")
	}
	if rep.Decode != nil {
		damaged := rep.Decode.Dropped() > 0 || rep.Decode.Truncated || rep.Decode.BadSections > 0
		if damaged && !rep.Degraded {
			t.Errorf("decode damage %+v but report not Degraded", rep.Decode)
		}
		if damaged && len(rep.Warnings) == 0 {
			t.Error("decode damage reported without warnings")
		}
	}
	if rep.Degraded && len(rep.Warnings) == 0 {
		t.Error("Degraded report carries no warnings")
	}
	// A degraded report must still serialize — the daemon ships JSON.
	if _, err := json.Marshal(rep); err != nil {
		t.Errorf("report does not marshal: %v", err)
	}
}

// faultCases enumerates the reader faults the suite drives through
// every path. Each returns a fresh faulted reader over enc.
func faultCases(enc []byte, header int64) map[string]func() io.Reader {
	n := int64(len(enc))
	return map[string]func() io.Reader{
		"truncate-25%": func() io.Reader { return faultinject.Truncate(bytes.NewReader(enc), n/4) },
		"truncate-60%": func() io.Reader { return faultinject.Truncate(bytes.NewReader(enc), n*3/5) },
		"truncate-95%": func() io.Reader { return faultinject.Truncate(bytes.NewReader(enc), n*19/20) },
		"truncate-mid-header": func() io.Reader {
			return faultinject.Truncate(bytes.NewReader(enc), header/2)
		},
		"bitflip-records-sparse": func() io.Reader {
			return faultinject.BitFlip(bytes.NewReader(enc), 1, 509, header)
		},
		"bitflip-records-dense": func() io.Reader {
			return faultinject.BitFlip(bytes.NewReader(enc), 2, 61, header)
		},
		"bitflip-everything": func() io.Reader {
			return faultinject.BitFlip(bytes.NewReader(enc), 3, 127, 0)
		},
		"short-reads": func() io.Reader { return faultinject.ShortReads(bytes.NewReader(enc), 4) },
		"short-reads+truncate": func() io.Reader {
			return faultinject.ShortReads(faultinject.Truncate(bytes.NewReader(enc), n/2), 5)
		},
		"transient-errors": func() io.Reader {
			return faultinject.TransientEvery(bytes.NewReader(enc), 37)
		},
		"empty": func() io.Reader { return bytes.NewReader(nil) },
	}
}

func TestChaosStreamingAnalysis(t *testing.T) {
	enc := encodedTrace(t)
	header := headerLen(t, enc)
	for name, mk := range faultCases(enc, header) {
		for _, lenient := range []bool{false, true} {
			mode := "strict"
			if lenient {
				mode = "lenient"
			}
			t.Run(name+"/"+mode, func(t *testing.T) {
				rep, err := hangGuard(t, func() (*core.Report, error) {
					return core.AnalyzeStream(mk(), core.Options{Lenient: lenient})
				})
				checkContract(t, rep, err)
			})
		}
	}
}

func TestChaosBatchDecode(t *testing.T) {
	enc := encodedTrace(t)
	header := headerLen(t, enc)
	for name, mk := range faultCases(enc, header) {
		t.Run(name, func(t *testing.T) {
			data, err := io.ReadAll(transientTolerant(mk()))
			if err != nil {
				t.Fatalf("reading faulted bytes: %v", err)
			}
			tr, st, err := trace.ReadFromLenient(bytes.NewReader(data))
			if err != nil {
				// Header-level damage stays fatal; the error must wrap the
				// format sentinel, not escape as a panic or a raw io error.
				if !errors.Is(err, trace.ErrBadFormat) && !errors.Is(err, io.ErrUnexpectedEOF) && !errors.Is(err, io.EOF) {
					t.Fatalf("unwrapped decode error: %v", err)
				}
				return
			}
			// Whatever was salvaged must analyze end to end.
			rep, aerr := hangGuard(t, func() (*core.Report, error) {
				rep, aerr := core.Analyze(tr, core.Options{Lenient: true})
				if aerr == nil {
					rep.NoteDecode(st)
				}
				return rep, aerr
			})
			checkContract(t, rep, aerr)
			if aerr == nil && st.Degraded() && !rep.Degraded {
				t.Error("salvage damage lost on the batch path")
			}
		})
	}
}

// transientTolerant retries reads through injected transient failures
// so the batch path (which needs all bytes up front) can proceed.
func transientTolerant(r io.Reader) io.Reader {
	return readerFunc(func(p []byte) (int, error) {
		for {
			n, err := r.Read(p)
			if errors.Is(err, faultinject.ErrTransient) && n == 0 {
				continue
			}
			return n, err
		}
	})
}

type readerFunc func(p []byte) (int, error)

func (f readerFunc) Read(p []byte) (int, error) { return f(p) }

func TestChaosHTTPUploads(t *testing.T) {
	enc := encodedTrace(t)
	header := headerLen(t, enc)
	srv := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{}))
	defer srv.Close()

	for name, mk := range faultCases(enc, header) {
		t.Run(name, func(t *testing.T) {
			done := make(chan struct{})
			go func() {
				defer close(done)
				resp, err := http.Post(srv.URL+"/v1/analyze?lenient=1",
					"application/octet-stream", mk())
				if err != nil {
					// A transport-level abort (the faulted body reader
					// erred mid-upload) is a clean client-side failure.
					return
				}
				defer resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					var rep core.Report
					if derr := json.NewDecoder(resp.Body).Decode(&rep); derr != nil {
						t.Errorf("200 with undecodable report: %v", derr)
						return
					}
					checkContract(t, &rep, nil)
				case resp.StatusCode >= 400 && resp.StatusCode < 600:
					// Rejected cleanly.
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("HTTP upload hung under fault injection")
			}
		})
	}
	// The server must have survived every fault.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after chaos: %v", err)
	}
	resp.Body.Close()
}

func TestChaosSalvageAccuracy(t *testing.T) {
	// A 60% truncation must report Truncated with a plausible drop count,
	// and the salvaged record totals must stay below the originals.
	enc := encodedTrace(t)
	full, err := trace.ReadFrom(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := hangGuard(t, func() (*core.Report, error) {
		r := faultinject.Truncate(bytes.NewReader(enc), int64(len(enc))*3/5)
		return core.AnalyzeStream(r, core.Options{Lenient: true})
	})
	if err != nil {
		t.Fatalf("salvage failed: %v", err)
	}
	if !rep.Degraded || rep.Decode == nil || !rep.Decode.Truncated {
		t.Fatalf("truncation not reported: degraded=%v decode=%+v", rep.Degraded, rep.Decode)
	}
	kept := rep.Records.Events + rep.Records.Samples + rep.Records.Comms
	total := int64(len(full.Events) + len(full.Samples) + len(full.Comms))
	if kept == 0 || kept >= total {
		t.Fatalf("salvaged %d of %d records, want a proper prefix", kept, total)
	}
}

// TestChaosCoordinatorWorkerFaults drives a sharded analysis through a
// coordinator whose worker farm includes one misbehaving member — a
// worker that alternates hard 500s with accepted-then-stalled
// connections. The contract mirrors the single-daemon one: as long as
// any worker survives, the request answers 200 with a well-formed
// report (degraded with per-shard warnings if a shard was truly lost,
// complete if failover covered it); the coordinator itself never
// crashes or hangs.
func TestChaosCoordinatorWorkerFaults(t *testing.T) {
	enc := encodedTrace(t)

	var calls int64
	var mu sync.Mutex
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		calls++
		n := calls
		mu.Unlock()
		if n%2 == 0 {
			time.Sleep(5 * time.Second) // past AttemptTimeout: a stall
			return
		}
		http.Error(w, "chaos", http.StatusInternalServerError)
	}))
	defer flaky.Close()

	// Explicit worker capacity: the coordinator fans shards out in
	// parallel, and a default worker on a 1-core runner (Jobs =
	// GOMAXPROCS = 1) would 429 concurrent shards.
	healthy := make([]string, 2)
	for i := range healthy {
		srv := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{Jobs: 16}))
		defer srv.Close()
		healthy[i] = srv.URL
	}

	coord := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{
		Workers: append(healthy, flaky.URL),
		Shards:  4,
		WorkerClient: foldsvc.ClientConfig{
			MaxAttempts:    1,
			BaseBackoff:    time.Millisecond,
			AttemptTimeout: 300 * time.Millisecond,
		},
	}))
	defer coord.Close()

	for round := 0; round < 3; round++ {
		done := make(chan struct{})
		go func() {
			defer close(done)
			resp, err := http.Post(coord.URL+"/v1/analyze",
				"application/octet-stream", bytes.NewReader(enc))
			if err != nil {
				t.Errorf("round %d: coordinated request failed at transport level: %v", round, err)
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				body, _ := io.ReadAll(resp.Body)
				t.Errorf("round %d: status %d with healthy workers available: %s",
					round, resp.StatusCode, body)
				return
			}
			var rep core.Report
			if derr := json.NewDecoder(resp.Body).Decode(&rep); derr != nil {
				t.Errorf("round %d: 200 with undecodable report: %v", round, derr)
				return
			}
			checkContract(t, &rep, nil)
			if len(rep.Phases) == 0 {
				t.Errorf("round %d: report carries no phases", round)
			}
		}()
		select {
		case <-done:
		case <-time.After(60 * time.Second):
			t.Fatal("coordinated analysis hung with a faulty worker in the farm")
		}
	}

	resp, err := http.Get(coord.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("coordinator unhealthy after chaos: %v", err)
	}
	resp.Body.Close()
}

func TestChaosStallWatchdog(t *testing.T) {
	enc := encodedTrace(t)
	sr := faultinject.Stall(bytes.NewReader(enc), int64(len(enc))/2)
	defer sr.Release()
	rep, err := hangGuard(t, func() (*core.Report, error) {
		return core.AnalyzeStream(sr, core.Options{
			Lenient:      true,
			StallTimeout: 200 * time.Millisecond,
		})
	})
	if err == nil {
		t.Fatalf("stalled stream produced a report: %+v", rep.Records)
	}
	if !errors.Is(err, pipeline.ErrStalled) {
		t.Fatalf("err = %v, want pipeline.ErrStalled", err)
	}
}

// TestChaosDiffCorruptSide drives /v1/diff with a clean run A and a
// faulted run B: every fault must yield either a 200 whose diff report
// decodes (marking the damaged side degraded, with warnings) or a
// clean 4xx/5xx — never a panic, a hang, or a half-written body — and
// the daemon must stay healthy throughout.
func TestChaosDiffCorruptSide(t *testing.T) {
	enc := encodedTrace(t)
	header := headerLen(t, enc)
	srv := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{}))
	defer srv.Close()

	for name, mk := range faultCases(enc, header) {
		t.Run(name, func(t *testing.T) {
			// Drain the faulted reader up front (tolerating its error):
			// the fault surface under test is the decoder behind the
			// diff route, not the HTTP transport.
			var damaged bytes.Buffer
			io.Copy(&damaged, mk()) //nolint:errcheck

			var body bytes.Buffer
			mw := multipart.NewWriter(&body)
			for _, side := range []struct {
				field string
				data  []byte
			}{{"a", enc}, {"b", damaged.Bytes()}} {
				fw, err := mw.CreateFormFile(side.field, side.field+".uvt")
				if err != nil {
					t.Fatal(err)
				}
				if _, err := fw.Write(side.data); err != nil {
					t.Fatal(err)
				}
			}
			mw.Close()

			done := make(chan struct{})
			go func() {
				defer close(done)
				resp, err := http.Post(srv.URL+"/v1/diff?lenient=1",
					mw.FormDataContentType(), &body)
				if err != nil {
					t.Errorf("transport error: %v", err)
					return
				}
				defer resp.Body.Close()
				switch {
				case resp.StatusCode == http.StatusOK:
					var d diff.Report
					if derr := json.NewDecoder(resp.Body).Decode(&d); derr != nil {
						t.Errorf("200 with undecodable diff report: %v", derr)
						return
					}
					if d.DegradedB && len(d.Warnings) == 0 {
						t.Error("degraded side B reported without warnings")
					}
					if _, merr := json.Marshal(&d); merr != nil {
						t.Errorf("diff report does not re-marshal: %v", merr)
					}
				case resp.StatusCode >= 400 && resp.StatusCode < 600:
					// Rejected cleanly.
				default:
					t.Errorf("unexpected status %d", resp.StatusCode)
				}
			}()
			select {
			case <-done:
			case <-time.After(60 * time.Second):
				t.Fatal("diff request hung under fault injection")
			}
		})
	}
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after chaos: %v", err)
	}
	resp.Body.Close()
}
