// Package faultinject provides deterministic I/O fault wrappers for
// robustness testing: readers and writers that truncate, corrupt, chop,
// or intermittently fail a byte stream in a seeded, reproducible way.
// The chaos suite drives full traces through the analysis paths (batch,
// streaming, HTTP) under these faults and asserts the system's
// contract: a damaged input produces either a degraded report with
// accurate salvage statistics or a cleanly wrapped error — never a
// panic and never a hang. Because every wrapper is deterministic for a
// given seed, any failure it provokes replays exactly.
package faultinject

import (
	"errors"
	"io"
	"sync"
)

// ErrTransient is the error injected by TransientEvery and
// TransientWriter — the shape of a recoverable I/O hiccup (a dropped
// connection, an EAGAIN surfaced as an error). Consumers that retry
// can test with errors.Is.
var ErrTransient = errors.New("faultinject: transient failure")

// rng is a splitmix64 generator: tiny, seedable, and deterministic, so
// every injected fault pattern replays exactly from its seed.
type rng struct{ state uint64 }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Truncate returns a reader that serves the first n bytes of r and then
// reports io.EOF — a transfer cut mid-stream without any error at the
// transport layer, the hardest truncation for a decoder to notice.
func Truncate(r io.Reader, n int64) io.Reader {
	return &truncateReader{r: r, left: n}
}

type truncateReader struct {
	r    io.Reader
	left int64
}

func (t *truncateReader) Read(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > t.left {
		p = p[:t.left]
	}
	n, err := t.r.Read(p)
	t.left -= int64(n)
	return n, err
}

// BitFlip returns a reader that flips one seed-chosen bit in every
// every-th byte served, starting after skip bytes (so a format header
// can be left intact when the test targets record payloads). every < 1
// is treated as 1.
func BitFlip(r io.Reader, seed uint64, every int, skip int64) io.Reader {
	if every < 1 {
		every = 1
	}
	return &bitFlipReader{r: r, rng: rng{state: seed}, every: int64(every), skip: skip}
}

type bitFlipReader struct {
	r     io.Reader
	rng   rng
	every int64
	skip  int64
	pos   int64
}

func (b *bitFlipReader) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	for i := 0; i < n; i++ {
		pos := b.pos + int64(i)
		if pos >= b.skip && (pos-b.skip)%b.every == 0 {
			p[i] ^= 1 << (b.rng.next() % 8)
		}
	}
	b.pos += int64(n)
	return n, err
}

// ShortReads returns a reader that serves r in seed-chosen chunks of
// 1..8 bytes regardless of the buffer offered — the pathological
// fragmentation of a congested network stream. Contents are unchanged;
// only read boundaries move.
func ShortReads(r io.Reader, seed uint64) io.Reader {
	return &shortReader{r: r, rng: rng{state: seed}}
}

type shortReader struct {
	r   io.Reader
	rng rng
}

func (s *shortReader) Read(p []byte) (int, error) {
	if len(p) == 0 {
		return s.r.Read(p)
	}
	max := int(s.rng.next()%8) + 1
	if len(p) > max {
		p = p[:max]
	}
	return s.r.Read(p)
}

// TransientEvery returns a reader whose every n-th Read call fails with
// ErrTransient instead of reading; the intervening calls pass through.
// n < 1 is treated as 1 (every call fails). The data itself is never
// consumed by a failing call, so a retrying consumer loses nothing.
func TransientEvery(r io.Reader, n int) io.Reader {
	if n < 1 {
		n = 1
	}
	return &transientReader{r: r, every: n}
}

type transientReader struct {
	r     io.Reader
	every int
	calls int
}

func (t *transientReader) Read(p []byte) (int, error) {
	t.calls++
	if t.calls%t.every == 0 {
		return 0, ErrTransient
	}
	return t.r.Read(p)
}

// Stall returns a reader that serves the first n bytes of r normally
// and then blocks every subsequent Read until Release is called — an
// upload that goes quiet without disconnecting. Tests must call (or
// defer) Release to unblock any goroutine abandoned mid-read.
func Stall(r io.Reader, n int64) *StallReader {
	return &StallReader{r: r, left: n, release: make(chan struct{})}
}

// StallReader is the reader returned by Stall; see Stall for semantics.
type StallReader struct {
	r       io.Reader
	left    int64
	release chan struct{}
	once    sync.Once
}

// Release unblocks every pending and future Read; after it, reads pass
// through to the underlying reader again. Safe to call more than once.
func (s *StallReader) Release() { s.once.Do(func() { close(s.release) }) }

// Read implements io.Reader.
func (s *StallReader) Read(p []byte) (int, error) {
	if s.left <= 0 {
		<-s.release
		return s.r.Read(p)
	}
	if int64(len(p)) > s.left {
		p = p[:s.left]
	}
	n, err := s.r.Read(p)
	s.left -= int64(n)
	return n, err
}

// TruncateWriter returns a writer that accepts the first n bytes and
// fails every write past them with io.ErrShortWrite — a disk that
// filled up or a receiver that went away mid-transfer.
func TruncateWriter(w io.Writer, n int64) io.Writer {
	return &truncateWriter{w: w, left: n}
}

type truncateWriter struct {
	w    io.Writer
	left int64
}

func (t *truncateWriter) Write(p []byte) (int, error) {
	if t.left <= 0 {
		return 0, io.ErrShortWrite
	}
	if int64(len(p)) > t.left {
		n, err := t.w.Write(p[:t.left])
		t.left -= int64(n)
		if err == nil {
			err = io.ErrShortWrite
		}
		return n, err
	}
	n, err := t.w.Write(p)
	t.left -= int64(n)
	return n, err
}

// TransientWriter returns a writer whose every n-th Write call fails
// with ErrTransient without consuming the payload; the intervening
// calls pass through. n < 1 is treated as 1.
func TransientWriter(w io.Writer, n int) io.Writer {
	if n < 1 {
		n = 1
	}
	return &transientWriter{w: w, every: n}
}

type transientWriter struct {
	w     io.Writer
	every int
	calls int
}

func (t *transientWriter) Write(p []byte) (int, error) {
	t.calls++
	if t.calls%t.every == 0 {
		return 0, ErrTransient
	}
	return t.w.Write(p)
}
