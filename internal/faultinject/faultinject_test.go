package faultinject

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func payload(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i)
	}
	return b
}

func TestTruncateStopsAtN(t *testing.T) {
	src := payload(100)
	got, err := io.ReadAll(Truncate(bytes.NewReader(src), 37))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, src[:37]) {
		t.Fatalf("got %d bytes, want the first 37 unchanged", len(got))
	}
}

func TestTruncateBeyondSourceIsHarmless(t *testing.T) {
	src := payload(10)
	got, err := io.ReadAll(Truncate(bytes.NewReader(src), 1000))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("got %d bytes, err %v", len(got), err)
	}
}

func TestBitFlipDeterministicAndTargeted(t *testing.T) {
	src := payload(64)
	read := func() []byte {
		got, err := io.ReadAll(BitFlip(bytes.NewReader(src), 42, 10, 8))
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := read(), read()
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if !bytes.Equal(a[:8], src[:8]) {
		t.Fatal("skip region was corrupted")
	}
	flipped := 0
	for i := 8; i < len(src); i++ {
		if a[i] != src[i] {
			flipped++
			if bits := a[i] ^ src[i]; bits&(bits-1) != 0 {
				t.Fatalf("byte %d has %08b flipped, want a single bit", i, bits)
			}
			if (i-8)%10 != 0 {
				t.Fatalf("byte %d flipped off-cadence", i)
			}
		}
	}
	if flipped == 0 {
		t.Fatal("no bytes were flipped")
	}
}

func TestShortReadsPreservesContent(t *testing.T) {
	src := payload(500)
	got, err := io.ReadAll(ShortReads(bytes.NewReader(src), 7))
	if err != nil || !bytes.Equal(got, src) {
		t.Fatalf("content changed under short reads (err %v)", err)
	}
	// Each individual read must be capped at 8 bytes.
	r := ShortReads(bytes.NewReader(src), 7)
	buf := make([]byte, 256)
	n, err := r.Read(buf)
	if err != nil || n < 1 || n > 8 {
		t.Fatalf("first read = %d bytes, err %v; want 1..8", n, err)
	}
}

func TestTransientEveryFailsOnSchedule(t *testing.T) {
	src := payload(40)
	r := TransientEvery(bytes.NewReader(src), 3)
	buf := make([]byte, 4)
	var got []byte
	fails := 0
	for len(got) < len(src) {
		n, err := r.Read(buf)
		got = append(got, buf[:n]...)
		if err != nil {
			if !errors.Is(err, ErrTransient) {
				t.Fatalf("unexpected error %v", err)
			}
			if n != 0 {
				t.Fatal("failing call consumed data")
			}
			fails++
		}
	}
	if fails == 0 {
		t.Fatal("no transient failures injected")
	}
	if !bytes.Equal(got, src) {
		t.Fatal("retrying through transient failures lost data")
	}
}

func TestStallBlocksUntilRelease(t *testing.T) {
	src := payload(100)
	sr := Stall(bytes.NewReader(src), 20)
	head, err := io.ReadAll(io.LimitReader(sr, 20))
	if err != nil || !bytes.Equal(head, src[:20]) {
		t.Fatalf("pre-stall bytes wrong (err %v)", err)
	}
	done := make(chan []byte, 1)
	go func() {
		rest, _ := io.ReadAll(sr)
		done <- rest
	}()
	select {
	case <-done:
		t.Fatal("read past the stall point without Release")
	case <-time.After(50 * time.Millisecond):
	}
	sr.Release()
	sr.Release() // idempotent
	select {
	case rest := <-done:
		if !bytes.Equal(rest, src[20:]) {
			t.Fatal("post-release bytes wrong")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Release did not unblock the read")
	}
}

func TestTruncateWriterFailsPastBudget(t *testing.T) {
	var buf bytes.Buffer
	w := TruncateWriter(&buf, 10)
	if n, err := w.Write(payload(6)); n != 6 || err != nil {
		t.Fatalf("write within budget: n=%d err=%v", n, err)
	}
	// This write straddles the budget: 4 bytes land, then ErrShortWrite.
	if n, err := w.Write(payload(6)); n != 4 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("straddling write: n=%d err=%v", n, err)
	}
	if n, err := w.Write(payload(1)); n != 0 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("write past budget: n=%d err=%v", n, err)
	}
	if !bytes.Equal(buf.Bytes(), append(payload(6), payload(4)...)) {
		t.Fatalf("sink holds %d bytes, want 10", buf.Len())
	}
}

func TestTransientWriterFailsOnSchedule(t *testing.T) {
	var buf bytes.Buffer
	w := TransientWriter(&buf, 2)
	if _, err := w.Write([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("b")); !errors.Is(err, ErrTransient) {
		t.Fatalf("second write err = %v, want ErrTransient", err)
	}
	if _, err := w.Write([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "ab" {
		t.Fatalf("sink = %q", buf.String())
	}
}
