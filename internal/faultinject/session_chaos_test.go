// Session chaos: kills the daemon mid-session (no drain, journals are
// all that survives), corrupts journal segments on disk, and points a
// consumer at the SSE stream that never reads — asserting the live
// session contract: a restarted daemon replays its journals to the
// exact state an uninterrupted run would have reached, damaged
// segments degrade to an honestly-warned prefix that client re-sends
// heal, and a stalled consumer never blocks the analysis path.
package faultinject_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/foldsvc"
	"repro/internal/session"
	"repro/internal/sim"
	"repro/internal/trace"
)

// sessionTrace simulates a run and splits it into session chunks.
func sessionTrace(t *testing.T, n int) (*trace.Trace, [][]byte) {
	t.Helper()
	app, err := apps.ByName("stencil", 40)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := sim.Run(apps.DefaultTraceConfig(4), app)
	if err != nil {
		t.Fatal(err)
	}
	var chunks [][]byte
	for _, c := range session.Chunks(tr, n) {
		var buf bytes.Buffer
		if err := c.Write(&buf); err != nil {
			t.Fatal(err)
		}
		chunks = append(chunks, buf.Bytes())
	}
	return tr, chunks
}

// sessionOpen opens a session over HTTP.
func sessionOpen(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/session", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.ID == "" {
		t.Fatalf("open session: %v (%+v)", err, out)
	}
	return out.ID
}

// sessionAppend POSTs one chunk and returns the HTTP status code.
func sessionAppend(t *testing.T, base, id string, seq int, chunk []byte) int {
	t.Helper()
	u := fmt.Sprintf("%s/v1/session/%s/append?seq=%d", base, id, seq)
	resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// sessionReport waits for the session to publish a snapshot covering
// every append, and returns it as a generic map.
func sessionReport(t *testing.T, s *foldsvc.Server, id string) map[string]any {
	t.Helper()
	sess, ok := s.Sessions().Get(id)
	if !ok {
		t.Fatalf("session %s not live", id)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sn, err := sess.Barrier(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(sn.Data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// batchReport analyzes the full trace locally, as a generic map.
func batchReport(t *testing.T, tr *trace.Trace) map[string]any {
	t.Helper()
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	return m
}

// compareReports deep-compares two generic reports ignoring the
// run-varying pipeline metrics; dropDegraded additionally ignores the
// warning channel (set when recovery had to salvage a prefix).
func compareReports(t *testing.T, got, want map[string]any, dropDegraded bool) {
	t.Helper()
	for _, m := range []map[string]any{got, want} {
		delete(m, "Pipeline")
		if dropDegraded {
			delete(m, "Warnings")
			delete(m, "Degraded")
		}
	}
	if reflect.DeepEqual(got, want) {
		return
	}
	for k := range want {
		if !reflect.DeepEqual(got[k], want[k]) {
			t.Errorf("report field %s differs", k)
		}
	}
	t.Fatal("session report is not deep-equal to the uninterrupted batch report")
}

// segments lists the session's journal segment files, sorted.
func segments(t *testing.T, dir, id string) []string {
	t.Helper()
	ents, err := os.ReadDir(filepath.Join(dir, id))
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), "seg-") {
			segs = append(segs, filepath.Join(dir, id, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs
}

// TestChaosSessionKillRestart kills the daemon mid-session — no drain,
// no goodbye, only fsynced journals — restarts it over the same
// directory, re-sends everything (the client cannot know how far the
// dead daemon got; sequence numbers dedupe the overlap), and requires
// the final report to be byte-identical to an uninterrupted batch run.
func TestChaosSessionKillRestart(t *testing.T) {
	tr, chunks := sessionTrace(t, 6)
	dir := t.TempDir()

	srv1 := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{SessionDir: dir}))
	id := sessionOpen(t, srv1.URL)
	half := len(chunks) / 2
	for i := 0; i < half; i++ {
		if code := sessionAppend(t, srv1.URL, id, i+1, chunks[i]); code != http.StatusOK {
			t.Fatalf("append %d: status %d", i+1, code)
		}
	}
	// kill -9: the listener dies with analyses possibly in flight;
	// nothing is flushed beyond what the acknowledged appends fsynced.
	srv1.CloseClientConnections()
	srv1.Close()

	s2 := foldsvc.NewServer(foldsvc.Config{SessionDir: dir})
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()

	// The session is back under its old id, rebuilt from the journal.
	resp, err := http.Get(srv2.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var st session.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Segments != half {
		t.Fatalf("recovered %d segments, want %d", st.Segments, half)
	}
	if len(st.Warnings) != 0 {
		t.Fatalf("clean recovery produced warnings: %v", st.Warnings)
	}

	// Re-send everything: the first half must dedupe, the rest applies.
	for i, c := range chunks {
		if code := sessionAppend(t, srv2.URL, id, i+1, c); code != http.StatusOK {
			t.Fatalf("re-append %d after restart: status %d", i+1, code)
		}
	}
	compareReports(t, sessionReport(t, s2, id), batchReport(t, tr), false)
}

// TestChaosSessionCorruptJournal damages one journal segment on disk —
// truncated tail or flipped header byte — and requires recovery to
// salvage the clean prefix with an explicit warning, then heal
// completely when the client re-sends its chunks.
func TestChaosSessionCorruptJournal(t *testing.T) {
	tr, chunks := sessionTrace(t, 5)

	corrupt := map[string]func(t *testing.T, seg string){
		"truncated-tail": func(t *testing.T, seg string) {
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(seg, data[:len(data)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"bitflip-header": func(t *testing.T, seg string) {
			data, err := os.ReadFile(seg)
			if err != nil {
				t.Fatal(err)
			}
			data[0] ^= 0x40 // break the magic: the decoder must reject, not misread
			if err := os.WriteFile(seg, data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
	}
	// Damage the last segment in one run and a middle one in the other:
	// the middle case also loses the clean segments behind it, since
	// replay cannot skip a hole.
	targets := map[string]int{"truncated-tail": len(chunks) - 1, "bitflip-header": 2}

	for name, breakSeg := range corrupt {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			srv1 := httptest.NewServer(foldsvc.NewServer(foldsvc.Config{SessionDir: dir}))
			id := sessionOpen(t, srv1.URL)
			for i, c := range chunks {
				if code := sessionAppend(t, srv1.URL, id, i+1, c); code != http.StatusOK {
					t.Fatalf("append %d: status %d", i+1, code)
				}
			}
			srv1.CloseClientConnections()
			srv1.Close()

			segs := segments(t, dir, id)
			if len(segs) != len(chunks) {
				t.Fatalf("found %d segments, want %d", len(segs), len(chunks))
			}
			breakSeg(t, segs[targets[name]])

			s2 := foldsvc.NewServer(foldsvc.Config{SessionDir: dir})
			srv2 := httptest.NewServer(s2)
			defer srv2.Close()

			resp, err := http.Get(srv2.URL + "/v1/session/" + id)
			if err != nil {
				t.Fatal(err)
			}
			var st session.Status
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if st.Segments != targets[name] {
				t.Fatalf("recovered %d segments, want the %d-segment clean prefix", st.Segments, targets[name])
			}
			found := false
			for _, w := range st.Warnings {
				if strings.Contains(w, "unreadable") {
					found = true
				}
			}
			if !found {
				t.Fatalf("salvaged recovery carries no unreadable-segment warning: %v", st.Warnings)
			}

			// The blind client re-sends everything; dedupe skips the
			// salvaged prefix and the re-appends overwrite the damage.
			for i, c := range chunks {
				if code := sessionAppend(t, srv2.URL, id, i+1, c); code != http.StatusOK {
					t.Fatalf("healing re-append %d: status %d", i+1, code)
				}
			}
			got := sessionReport(t, s2, id)
			// The salvage warning must survive into the published report.
			ws, _ := got["Warnings"].([]any)
			found = false
			for _, w := range ws {
				if s, ok := w.(string); ok && strings.Contains(s, "unreadable") {
					found = true
				}
			}
			if !found {
				t.Errorf("published report hides the recovery warning: %v", got["Warnings"])
			}
			compareReports(t, got, batchReport(t, tr), true)
		})
	}
}

// TestChaosSessionStalledSSEConsumer points a consumer at the events
// stream and never reads a byte, while the appender keeps going. The
// analysis path must keep publishing snapshots (the stalled subscriber
// is coalesced to latest-only, then disconnected by the write
// deadline) and the daemon must stay healthy.
func TestChaosSessionStalledSSEConsumer(t *testing.T) {
	tr, chunks := sessionTrace(t, 8)
	_ = tr
	s := foldsvc.NewServer(foldsvc.Config{SessionHeartbeat: 50 * time.Millisecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	id := sessionOpen(t, srv.URL)

	// A consumer that connects and then stops reading entirely.
	req, err := http.NewRequest(http.MethodGet, srv.URL+"/v1/session/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	stalled, err := (&http.Client{Transport: &http.Transport{ReadBufferSize: 256}}).Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Body.Close() // never read before then

	sess, ok := s.Sessions().Get(id)
	if !ok {
		t.Fatal("session not live")
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		for i, c := range chunks {
			if code := sessionAppend(t, srv.URL, id, i+1, c); code != http.StatusOK {
				t.Errorf("append %d with stalled consumer: status %d", i+1, code)
				return
			}
			if _, err := sess.Barrier(ctx); err != nil {
				t.Errorf("snapshot %d never published with stalled consumer: %v", i+1, err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(90 * time.Second):
		t.Fatal("analysis path hung behind a stalled SSE consumer")
	}

	// The daemon survived and still answers.
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("daemon unhealthy after stalled consumer: %v", err)
	}
	resp.Body.Close()
}
