// Package fit provides the curve-fitting primitives the folding mechanism
// is built on: weighted isotonic regression (pool-adjacent-violators),
// monotone cubic Hermite interpolation (Fritsch–Carlson / PCHIP),
// Nadaraya–Watson kernel smoothing, equal-width binning, and optimal
// piecewise-linear segmentation by dynamic programming.
//
// All routines operate on plain float64 slices so they can be reused
// outside the folding pipeline (e.g. by reports and ablation benchmarks).
package fit

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Point is a two-dimensional weighted observation.
type Point struct {
	X, Y float64
	W    float64 // weight; 0 is treated as 1 by constructors that accept raw points
}

// SortPoints orders points by X ascending (stable for equal X).
func SortPoints(pts []Point) {
	sort.SliceStable(pts, func(i, j int) bool { return pts[i].X < pts[j].X })
}

// ErrTooFewPoints is returned when an operation needs more data.
var ErrTooFewPoints = errors.New("fit: too few points")

// ---------------------------------------------------------------------------
// Isotonic regression

// Isotonic computes the weighted least-squares non-decreasing fit to the
// point sequence (pool-adjacent-violators algorithm). Points must already
// be sorted by X; the result has one fitted value per input point, in
// order. Weights ≤ 0 are treated as 1.
func Isotonic(pts []Point) []float64 {
	n := len(pts)
	if n == 0 {
		return nil
	}
	// Blocks are represented by (mean, weight, count) and merged backwards
	// whenever a new block violates monotonicity.
	type block struct {
		mean  float64
		w     float64
		count int
	}
	blocks := make([]block, 0, n)
	for _, p := range pts {
		w := p.W
		if w <= 0 {
			w = 1
		}
		blocks = append(blocks, block{mean: p.Y, w: w, count: 1})
		for len(blocks) >= 2 {
			last := len(blocks) - 1
			if blocks[last-1].mean <= blocks[last].mean {
				break
			}
			a, b := blocks[last-1], blocks[last]
			merged := block{
				mean:  (a.mean*a.w + b.mean*b.w) / (a.w + b.w),
				w:     a.w + b.w,
				count: a.count + b.count,
			}
			blocks = blocks[:last-1]
			blocks = append(blocks, merged)
		}
	}
	out := make([]float64, 0, n)
	for _, b := range blocks {
		for i := 0; i < b.count; i++ {
			out = append(out, b.mean)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Monotone cubic Hermite interpolation (Fritsch–Carlson)

// PCHIP is a C¹ piecewise-cubic interpolant that preserves monotonicity of
// the data: if ys is non-decreasing, the interpolant is non-decreasing
// everywhere (Fritsch & Carlson 1980).
type PCHIP struct {
	xs, ys, ms []float64 // knots, values, endpoint slopes
}

// NewPCHIP constructs the interpolant. xs must be strictly increasing and
// len(xs) == len(ys) >= 2.
func NewPCHIP(xs, ys []float64) (*PCHIP, error) {
	n := len(xs)
	if n < 2 {
		return nil, fmt.Errorf("%w: need >= 2 knots, got %d", ErrTooFewPoints, n)
	}
	if len(ys) != n {
		return nil, fmt.Errorf("fit: xs/ys length mismatch %d != %d", n, len(ys))
	}
	for i := 1; i < n; i++ {
		if xs[i] <= xs[i-1] {
			return nil, fmt.Errorf("fit: xs not strictly increasing at %d (%g <= %g)", i, xs[i], xs[i-1])
		}
	}
	p := &PCHIP{
		xs: append([]float64(nil), xs...),
		ys: append([]float64(nil), ys...),
		ms: make([]float64, n),
	}
	// Secant slopes.
	d := make([]float64, n-1)
	for i := 0; i < n-1; i++ {
		d[i] = (ys[i+1] - ys[i]) / (xs[i+1] - xs[i])
	}
	// Initial tangents: three-point weighted harmonic mean (Fritsch-Butland
	// variant), which guarantees monotonicity directly.
	p.ms[0] = d[0]
	p.ms[n-1] = d[n-2]
	for i := 1; i < n-1; i++ {
		if d[i-1]*d[i] <= 0 {
			p.ms[i] = 0
			continue
		}
		h0 := xs[i] - xs[i-1]
		h1 := xs[i+1] - xs[i]
		w1 := 2*h1 + h0
		w2 := h1 + 2*h0
		p.ms[i] = (w1 + w2) / (w1/d[i-1] + w2/d[i])
	}
	// Fritsch–Carlson limiter for the endpoints and any residual violation.
	for i := 0; i < n-1; i++ {
		if d[i] == 0 {
			p.ms[i] = 0
			p.ms[i+1] = 0
			continue
		}
		a := p.ms[i] / d[i]
		b := p.ms[i+1] / d[i]
		if a < 0 {
			p.ms[i] = 0
			a = 0
		}
		if b < 0 {
			p.ms[i+1] = 0
			b = 0
		}
		if s := a*a + b*b; s > 9 {
			tau := 3 / math.Sqrt(s)
			p.ms[i] = tau * a * d[i]
			p.ms[i+1] = tau * b * d[i]
		}
	}
	return p, nil
}

// segment finds the knot interval containing x (clamped to the domain).
func (p *PCHIP) segment(x float64) int {
	n := len(p.xs)
	if x <= p.xs[0] {
		return 0
	}
	if x >= p.xs[n-1] {
		return n - 2
	}
	i := sort.SearchFloat64s(p.xs, x)
	// SearchFloat64s returns the first index with xs[i] >= x.
	if p.xs[i] == x {
		if i == n-1 {
			return n - 2
		}
		return i
	}
	return i - 1
}

// Eval evaluates the interpolant at x (clamped to the knot domain).
func (p *PCHIP) Eval(x float64) float64 {
	i := p.segment(x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	h00 := (1 + 2*t) * (1 - t) * (1 - t)
	h10 := t * (1 - t) * (1 - t)
	h01 := t * t * (3 - 2*t)
	h11 := t * t * (t - 1)
	return h00*p.ys[i] + h10*h*p.ms[i] + h01*p.ys[i+1] + h11*h*p.ms[i+1]
}

// Deriv evaluates the first derivative of the interpolant at x.
func (p *PCHIP) Deriv(x float64) float64 {
	i := p.segment(x)
	h := p.xs[i+1] - p.xs[i]
	t := (x - p.xs[i]) / h
	if t < 0 {
		t = 0
	}
	if t > 1 {
		t = 1
	}
	dh00 := (6*t*t - 6*t) / h
	dh10 := 3*t*t - 4*t + 1
	dh01 := (6*t - 6*t*t) / h
	dh11 := 3*t*t - 2*t
	return dh00*p.ys[i] + dh10*p.ms[i] + dh01*p.ys[i+1] + dh11*p.ms[i+1]
}

// Domain returns the interpolant's knot domain [lo, hi].
func (p *PCHIP) Domain() (lo, hi float64) { return p.xs[0], p.xs[len(p.xs)-1] }

// ---------------------------------------------------------------------------
// Kernel smoothing

// KernelSmooth computes the Nadaraya–Watson estimate of E[Y|X=g] at each
// grid point g using a Gaussian kernel with bandwidth h. Points need not be
// sorted. Grid points with no effective mass (all kernel weights underflow)
// fall back to the nearest point's Y. Weights ≤ 0 are treated as 1.
func KernelSmooth(pts []Point, h float64, grid []float64) []float64 {
	if h <= 0 {
		panic(fmt.Sprintf("fit: non-positive bandwidth %g", h))
	}
	out := make([]float64, len(grid))
	if len(pts) == 0 {
		return out
	}
	for gi, g := range grid {
		var num, den float64
		for _, p := range pts {
			w := p.W
			if w <= 0 {
				w = 1
			}
			z := (p.X - g) / h
			k := math.Exp(-0.5*z*z) * w
			num += k * p.Y
			den += k
		}
		if den > 0 {
			out[gi] = num / den
			continue
		}
		// Fallback: nearest neighbour.
		best := 0
		bd := math.Abs(pts[0].X - g)
		for i := 1; i < len(pts); i++ {
			if d := math.Abs(pts[i].X - g); d < bd {
				bd, best = d, i
			}
		}
		out[gi] = pts[best].Y
	}
	return out
}

// ---------------------------------------------------------------------------
// Binning

// Bin averages points into n equal-width bins over [lo, hi], returning the
// weighted mean X and weighted mean Y of every non-empty bin, in order.
// Anchoring the knot at the points' mean X (rather than the bin center)
// keeps the knot on the underlying curve: for points on y = f(x), the pair
// (E[x], E[y]) is first-order consistent with f, whereas (center, E[y])
// introduces slope jitter when points cluster inside a bin. Points outside
// [lo, hi] are clamped into the boundary bins.
func Bin(pts []Point, n int, lo, hi float64) (xs, ys []float64) {
	return binCols(pts, nil, n, lo, hi)
}

// BinIso is Bin with the Y values supplied as a separate column: point i
// contributes (pts[i].X, yCol[i], pts[i].W). This is the shape the
// folding pipeline's isotonic stage produces, and taking the column
// directly avoids materializing a full second point slice just to swap
// the Y values. Accumulation order and arithmetic match Bin exactly, so
// both layouts produce bit-identical knots.
func BinIso(pts []Point, yCol []float64, n int, lo, hi float64) (xs, ys []float64) {
	if len(yCol) != len(pts) {
		panic(fmt.Sprintf("fit: BinIso column length %d != %d points", len(yCol), len(pts)))
	}
	return binCols(pts, yCol, n, lo, hi)
}

// binCols is the shared binning kernel; a nil yCol means "use pts[i].Y".
func binCols(pts []Point, yCol []float64, n int, lo, hi float64) (xs, ys []float64) {
	if n < 1 || hi <= lo {
		panic(fmt.Sprintf("fit: invalid binning (n=%d, range [%g,%g])", n, lo, hi))
	}
	sumW := make([]float64, n)
	sumWX := make([]float64, n)
	sumWY := make([]float64, n)
	width := (hi - lo) / float64(n)
	for i := range pts {
		p := &pts[i]
		y := p.Y
		if yCol != nil {
			y = yCol[i]
		}
		b := int((p.X - lo) / width)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		w := p.W
		if w <= 0 {
			w = 1
		}
		cx := p.X
		if cx < lo {
			cx = lo
		}
		if cx > hi {
			cx = hi
		}
		sumW[b] += w
		sumWX[b] += w * cx
		sumWY[b] += w * y
	}
	prevX := math.Inf(-1)
	for b := 0; b < n; b++ {
		if sumW[b] == 0 {
			continue
		}
		x := sumWX[b] / sumW[b]
		// Clamped out-of-range points can place a boundary bin's mean X
		// outside its cell; keep the knot sequence strictly increasing.
		if x <= prevX {
			x = math.Nextafter(prevX, math.Inf(1))
		}
		prevX = x
		xs = append(xs, x)
		ys = append(ys, sumWY[b]/sumW[b])
	}
	return xs, ys
}

// ---------------------------------------------------------------------------
// Piecewise-linear segmentation

// Segment finds breakpoints that partition the series (xs, ys) into at most
// maxSegs contiguous segments, each approximated by its own least-squares
// line, minimizing total squared error + penalty per extra segment. It
// returns the indices (into xs) where new segments begin, excluding 0 — an
// empty result means the series is best described by a single line.
//
// The dynamic program is O(n²·maxSegs); intended for the ~100-300 point
// grids the folding pipeline produces, not raw sample clouds.
func Segment(xs, ys []float64, maxSegs int, penalty float64) []int {
	n := len(xs)
	if n != len(ys) {
		panic(fmt.Sprintf("fit: xs/ys length mismatch %d != %d", n, len(ys)))
	}
	if maxSegs < 1 {
		maxSegs = 1
	}
	if n < 4 || maxSegs == 1 {
		return nil
	}
	if maxSegs > n {
		maxSegs = n
	}

	// Prefix sums for O(1) linear-regression SSE on any interval.
	sx := make([]float64, n+1)
	sy := make([]float64, n+1)
	sxx := make([]float64, n+1)
	sxy := make([]float64, n+1)
	syy := make([]float64, n+1)
	for i := 0; i < n; i++ {
		sx[i+1] = sx[i] + xs[i]
		sy[i+1] = sy[i] + ys[i]
		sxx[i+1] = sxx[i] + xs[i]*xs[i]
		sxy[i+1] = sxy[i] + xs[i]*ys[i]
		syy[i+1] = syy[i] + ys[i]*ys[i]
	}
	// sse returns the least-squares residual of a line fitted to points
	// [i, j] inclusive.
	sse := func(i, j int) float64 {
		m := float64(j - i + 1)
		Sx := sx[j+1] - sx[i]
		Sy := sy[j+1] - sy[i]
		Sxx := sxx[j+1] - sxx[i]
		Sxy := sxy[j+1] - sxy[i]
		Syy := syy[j+1] - syy[i]
		det := m*Sxx - Sx*Sx
		if det <= 1e-12 {
			// Degenerate (vertical) cluster of points: best fit is the mean.
			return Syy - Sy*Sy/m
		}
		beta := (m*Sxy - Sx*Sy) / det
		alpha := (Sy - beta*Sx) / m
		r := Syy - 2*alpha*Sy - 2*beta*Sxy + m*alpha*alpha + 2*alpha*beta*Sx + beta*beta*Sxx
		if r < 0 {
			r = 0
		}
		return r
	}

	const inf = math.MaxFloat64
	// dp[k][j]: min cost of covering points [0, j] with k+1 segments.
	prev := make([]float64, n)
	cur := make([]float64, n)
	choice := make([][]int, maxSegs) // choice[k][j] = start of last segment
	for k := range choice {
		choice[k] = make([]int, n)
	}
	for j := 0; j < n; j++ {
		prev[j] = sse(0, j)
		choice[0][j] = 0
	}
	bestCost := prev[n-1]
	bestK := 1
	for k := 1; k < maxSegs; k++ {
		for j := 0; j < n; j++ {
			cur[j] = inf
			// Each segment needs at least 2 points.
			for i := 2 * k; i <= j-1; i++ {
				if prev[i-1] == inf {
					continue
				}
				c := prev[i-1] + sse(i, j)
				if c < cur[j] {
					cur[j] = c
					choice[k][j] = i
				}
			}
		}
		if cur[n-1] < inf {
			total := cur[n-1] + penalty*float64(k)
			if total < bestCost {
				bestCost = total
				bestK = k + 1
			}
		}
		prev, cur = cur, prev
	}

	if bestK == 1 {
		return nil
	}
	// Recover breakpoints: re-run the DP storage backwards.
	// The choice table holds, for each k and j, the start index of the last
	// segment of the optimal (k+1)-segment cover of [0, j].
	breaks := make([]int, 0, bestK-1)
	j := n - 1
	for k := bestK - 1; k >= 1; k-- {
		i := choice[k][j]
		breaks = append(breaks, i)
		j = i - 1
	}
	// Reverse to ascending order.
	for l, r := 0, len(breaks)-1; l < r; l, r = l+1, r-1 {
		breaks[l], breaks[r] = breaks[r], breaks[l]
	}
	return breaks
}
