package fit

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestIsotonicAlreadyMonotone(t *testing.T) {
	pts := []Point{{0, 1, 1}, {1, 2, 1}, {2, 3, 1}}
	got := Isotonic(pts)
	for i, want := range []float64{1, 2, 3} {
		if got[i] != want {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want)
		}
	}
}

func TestIsotonicPoolsViolators(t *testing.T) {
	// Classic example: (1, 3, 2) pools the last two to 2.5.
	pts := []Point{{0, 1, 1}, {1, 3, 1}, {2, 2, 1}}
	got := Isotonic(pts)
	want := []float64{1, 2.5, 2.5}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("got = %v, want %v", got, want)
		}
	}
}

func TestIsotonicWeights(t *testing.T) {
	// Heavier first point pulls the pooled mean toward it.
	pts := []Point{{0, 4, 3}, {1, 0, 1}}
	got := Isotonic(pts)
	want := 3.0 // (4*3 + 0*1) / 4
	if math.Abs(got[0]-want) > 1e-12 || math.Abs(got[1]-want) > 1e-12 {
		t.Fatalf("got = %v, want [%v %v]", got, want, want)
	}
}

func TestIsotonicZeroWeightTreatedAsOne(t *testing.T) {
	a := Isotonic([]Point{{0, 2, 0}, {1, 1, 0}})
	b := Isotonic([]Point{{0, 2, 1}, {1, 1, 1}})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("zero weights behave differently: %v vs %v", a, b)
		}
	}
}

func TestIsotonicEmpty(t *testing.T) {
	if got := Isotonic(nil); got != nil {
		t.Fatalf("Isotonic(nil) = %v", got)
	}
}

func TestIsotonicOutputMonotoneProperty(t *testing.T) {
	f := func(ys []float64) bool {
		pts := make([]Point, 0, len(ys))
		for i, y := range ys {
			if math.IsNaN(y) || math.IsInf(y, 0) {
				return true
			}
			pts = append(pts, Point{X: float64(i), Y: y, W: 1})
		}
		out := Isotonic(pts)
		for i := 1; i < len(out); i++ {
			if out[i] < out[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIsotonicIdempotentProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 50; trial++ {
		pts := make([]Point, 50)
		for i := range pts {
			pts[i] = Point{X: float64(i), Y: rng.NormFloat64(), W: 1}
		}
		once := Isotonic(pts)
		again := make([]Point, len(once))
		for i, y := range once {
			again[i] = Point{X: float64(i), Y: y, W: 1}
		}
		twice := Isotonic(again)
		for i := range once {
			if math.Abs(once[i]-twice[i]) > 1e-12 {
				t.Fatalf("trial %d: PAVA not idempotent at %d: %v vs %v", trial, i, once[i], twice[i])
			}
		}
	}
}

func TestIsotonicPreservesMean(t *testing.T) {
	// Weighted mean of fit equals weighted mean of data (PAVA property).
	rng := rand.New(rand.NewPCG(9, 1))
	pts := make([]Point, 100)
	var wantNum, wantDen float64
	for i := range pts {
		w := 1 + rng.Float64()*3
		y := rng.NormFloat64()
		pts[i] = Point{X: float64(i), Y: y, W: w}
		wantNum += w * y
		wantDen += w
	}
	out := Isotonic(pts)
	var gotNum float64
	for i, y := range out {
		gotNum += pts[i].W * y
	}
	if math.Abs(gotNum/wantDen-wantNum/wantDen) > 1e-9 {
		t.Fatalf("PAVA changed the weighted mean: %v vs %v", gotNum/wantDen, wantNum/wantDen)
	}
}

func TestPCHIPInterpolatesKnots(t *testing.T) {
	xs := []float64{0, 1, 2, 4}
	ys := []float64{0, 1, 1.5, 5}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	for i := range xs {
		if got := p.Eval(xs[i]); math.Abs(got-ys[i]) > 1e-12 {
			t.Fatalf("Eval(%g) = %g, want %g", xs[i], got, ys[i])
		}
	}
}

func TestPCHIPMonotonePreserving(t *testing.T) {
	// Data with a sharp plateau — classic overshoot case for cubic splines.
	xs := []float64{0, 1, 2, 3, 4, 5}
	ys := []float64{0, 0.01, 0.02, 0.98, 0.99, 1}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(-1)
	for i := 0; i <= 1000; i++ {
		x := 5 * float64(i) / 1000
		v := p.Eval(x)
		if v < prev-1e-12 {
			t.Fatalf("PCHIP not monotone at x=%g: %g < %g", x, v, prev)
		}
		if v < -1e-12 || v > 1+1e-12 {
			t.Fatalf("PCHIP overshoots at x=%g: %g", x, v)
		}
		prev = v
	}
}

func TestPCHIPDerivNonNegativeOnMonotoneData(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 8))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.IntN(20)
		xs := make([]float64, n)
		ys := make([]float64, n)
		x, y := 0.0, 0.0
		for i := 0; i < n; i++ {
			x += 0.1 + rng.Float64()
			y += rng.Float64()
			xs[i], ys[i] = x, y
		}
		p, err := NewPCHIP(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i <= 500; i++ {
			u := xs[0] + (xs[n-1]-xs[0])*float64(i)/500
			if d := p.Deriv(u); d < -1e-9 {
				t.Fatalf("trial %d: negative derivative %g at %g", trial, d, u)
			}
		}
	}
}

func TestPCHIPDerivMatchesNumeric(t *testing.T) {
	xs := []float64{0, 0.5, 1.2, 2, 3}
	ys := []float64{0, 0.3, 0.5, 1.4, 2}
	p, err := NewPCHIP(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	const h = 1e-6
	for i := 1; i < 30; i++ {
		x := 3 * float64(i) / 30
		if x-h < 0 || x+h > 3 {
			continue
		}
		num := (p.Eval(x+h) - p.Eval(x-h)) / (2 * h)
		if got := p.Deriv(x); math.Abs(got-num) > 1e-4*(1+math.Abs(num)) {
			t.Fatalf("Deriv(%g) = %g, numeric %g", x, got, num)
		}
	}
}

func TestPCHIPClampsOutsideDomain(t *testing.T) {
	p, err := NewPCHIP([]float64{0, 1}, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Eval(-5); got != 0 {
		t.Fatalf("Eval(-5) = %g", got)
	}
	if got := p.Eval(7); got != 1 {
		t.Fatalf("Eval(7) = %g", got)
	}
	lo, hi := p.Domain()
	if lo != 0 || hi != 1 {
		t.Fatalf("Domain = %g, %g", lo, hi)
	}
}

func TestPCHIPErrors(t *testing.T) {
	if _, err := NewPCHIP([]float64{0}, []float64{0}); err == nil {
		t.Fatal("expected error for single knot")
	}
	if _, err := NewPCHIP([]float64{0, 1}, []float64{0}); err == nil {
		t.Fatal("expected error for length mismatch")
	}
	if _, err := NewPCHIP([]float64{0, 0}, []float64{0, 1}); err == nil {
		t.Fatal("expected error for duplicate knots")
	}
	if _, err := NewPCHIP([]float64{1, 0}, []float64{0, 1}); err == nil {
		t.Fatal("expected error for decreasing knots")
	}
}

func TestPCHIPLinearDataIsExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7}
	p, _ := NewPCHIP(xs, ys)
	for i := 0; i <= 30; i++ {
		x := 3 * float64(i) / 30
		if got, want := p.Eval(x), 1+2*x; math.Abs(got-want) > 1e-9 {
			t.Fatalf("linear reproduction failed at %g: %g != %g", x, got, want)
		}
		if d := p.Deriv(x); math.Abs(d-2) > 1e-9 {
			t.Fatalf("linear derivative at %g: %g != 2", x, d)
		}
	}
}

func TestKernelSmoothRecoversSmoothFunction(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	f := func(x float64) float64 { return math.Sin(2 * math.Pi * x) }
	pts := make([]Point, 2000)
	for i := range pts {
		x := rng.Float64()
		pts[i] = Point{X: x, Y: f(x) + 0.05*rng.NormFloat64(), W: 1}
	}
	grid := make([]float64, 101)
	for i := range grid {
		grid[i] = float64(i) / 100
	}
	sm := KernelSmooth(pts, 0.02, grid)
	for i, g := range grid {
		if g < 0.05 || g > 0.95 {
			continue // edge bias expected
		}
		if math.Abs(sm[i]-f(g)) > 0.1 {
			t.Fatalf("smooth at %g = %g, want ≈ %g", g, sm[i], f(g))
		}
	}
}

func TestKernelSmoothEmptyAndFallback(t *testing.T) {
	grid := []float64{0, 1}
	if out := KernelSmooth(nil, 0.1, grid); out[0] != 0 || out[1] != 0 {
		t.Fatalf("empty input should give zeros, got %v", out)
	}
	// A single point very far from the grid exercises the underflow
	// fallback path.
	pts := []Point{{X: 1e9, Y: 42, W: 1}}
	out := KernelSmooth(pts, 0.001, grid)
	if out[0] != 42 || out[1] != 42 {
		t.Fatalf("fallback = %v, want [42 42]", out)
	}
}

func TestKernelSmoothPanicsOnBadBandwidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	KernelSmooth(nil, 0, nil)
}

func TestBinAveragesAndSkipsEmpty(t *testing.T) {
	pts := []Point{
		{X: 0.05, Y: 1, W: 1},
		{X: 0.08, Y: 3, W: 1},
		// bin [0.1,0.2) empty
		{X: 0.25, Y: 10, W: 1},
	}
	xs, ys := Bin(pts, 10, 0, 1)
	if len(xs) != 2 {
		t.Fatalf("got %d bins, want 2", len(xs))
	}
	// Knot X is the points' mean X, not the bin center.
	if math.Abs(xs[0]-0.065) > 1e-12 || math.Abs(ys[0]-2) > 1e-12 {
		t.Fatalf("bin0 = (%g, %g)", xs[0], ys[0])
	}
	if math.Abs(xs[1]-0.25) > 1e-12 || ys[1] != 10 {
		t.Fatalf("bin1 = (%g, %g)", xs[1], ys[1])
	}
}

func TestBinWeighted(t *testing.T) {
	pts := []Point{{X: 0.1, Y: 0, W: 3}, {X: 0.15, Y: 4, W: 1}}
	_, ys := Bin(pts, 1, 0, 1)
	if len(ys) != 1 || math.Abs(ys[0]-1) > 1e-12 {
		t.Fatalf("weighted bin mean = %v, want [1]", ys)
	}
}

func TestBinClampsOutOfRange(t *testing.T) {
	pts := []Point{{X: -5, Y: 1, W: 1}, {X: 99, Y: 3, W: 1}}
	xs, ys := Bin(pts, 4, 0, 1)
	if len(xs) != 2 {
		t.Fatalf("clamped bins = %d, want 2", len(xs))
	}
	if ys[0] != 1 || ys[1] != 3 {
		t.Fatalf("clamped values = %v", ys)
	}
	// Knot X of clamped points clamps into the range too.
	if xs[0] != 0 || xs[1] != 1 {
		t.Fatalf("clamped knots = %v", xs)
	}
}

func TestBinKnotsStrictlyIncreasing(t *testing.T) {
	// Coincident clamped points in different bins must still produce
	// strictly increasing knots.
	pts := []Point{{X: -5, Y: 1, W: 1}, {X: 0.3, Y: 2, W: 1}, {X: 99, Y: 3, W: 1}}
	xs, _ := Bin(pts, 4, 0, 1)
	for i := 1; i < len(xs); i++ {
		if xs[i] <= xs[i-1] {
			t.Fatalf("knots not strictly increasing: %v", xs)
		}
	}
}

func TestBinPanics(t *testing.T) {
	for _, f := range []func(){
		func() { Bin(nil, 0, 0, 1) },
		func() { Bin(nil, 5, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSegmentDetectsSingleBreak(t *testing.T) {
	// Two clear linear regimes: slope 1 then slope 5, break at x=1 (idx 50).
	n := 100
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		x := 2 * float64(i) / float64(n-1)
		xs[i] = x
		if x <= 1 {
			ys[i] = x
		} else {
			ys[i] = 1 + 5*(x-1)
		}
	}
	breaks := Segment(xs, ys, 4, 1e-6)
	if len(breaks) != 1 {
		t.Fatalf("breaks = %v, want exactly 1", breaks)
	}
	if got := xs[breaks[0]]; math.Abs(got-1) > 0.1 {
		t.Fatalf("break at x=%g, want ≈ 1", got)
	}
}

func TestSegmentNoBreakOnLine(t *testing.T) {
	n := 60
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i)
		ys[i] = 3*float64(i) + 2
	}
	if breaks := Segment(xs, ys, 5, 0.01); len(breaks) != 0 {
		t.Fatalf("line segmented: %v", breaks)
	}
}

func TestSegmentTwoBreaks(t *testing.T) {
	// Three regimes: flat, steep, flat.
	var xs, ys []float64
	for i := 0; i < 150; i++ {
		x := 3 * float64(i) / 149
		xs = append(xs, x)
		switch {
		case x < 1:
			ys = append(ys, 0.1*x)
		case x < 2:
			ys = append(ys, 0.1+4*(x-1))
		default:
			ys = append(ys, 4.1+0.1*(x-2))
		}
	}
	breaks := Segment(xs, ys, 6, 1e-6)
	if len(breaks) != 2 {
		t.Fatalf("breaks = %v, want 2", breaks)
	}
	if math.Abs(xs[breaks[0]]-1) > 0.15 || math.Abs(xs[breaks[1]]-2) > 0.15 {
		t.Fatalf("break positions %g, %g; want ≈ 1, 2", xs[breaks[0]], xs[breaks[1]])
	}
}

func TestSegmentPenaltySuppressesBreaks(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 100; i++ {
		x := 2 * float64(i) / 99
		xs = append(xs, x)
		if x <= 1 {
			ys = append(ys, x)
		} else {
			ys = append(ys, 1+1.2*(x-1)) // only slightly different slope
		}
	}
	// Huge penalty: prefer one segment.
	if breaks := Segment(xs, ys, 4, 1e9); len(breaks) != 0 {
		t.Fatalf("huge penalty still broke: %v", breaks)
	}
}

func TestSegmentDegenerateInputs(t *testing.T) {
	if got := Segment([]float64{0, 1, 2}, []float64{0, 1, 2}, 3, 0.1); got != nil {
		t.Fatalf("short series segmented: %v", got)
	}
	if got := Segment(nil, nil, 3, 0.1); got != nil {
		t.Fatalf("empty series segmented: %v", got)
	}
	if got := Segment([]float64{0, 1, 2, 3, 4}, []float64{0, 1, 2, 3, 4}, 0, 0.1); got != nil {
		t.Fatalf("maxSegs<1 should behave like 1: %v", got)
	}
}

func TestSegmentPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Segment([]float64{1, 2}, []float64{1}, 2, 0.1)
}

func TestSortPoints(t *testing.T) {
	pts := []Point{{X: 3}, {X: 1}, {X: 2}}
	SortPoints(pts)
	if pts[0].X != 1 || pts[1].X != 2 || pts[2].X != 3 {
		t.Fatalf("SortPoints = %v", pts)
	}
}
