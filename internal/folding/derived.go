package folding

import (
	"fmt"
	"math"
)

// RatioCurve derives the pointwise ratio of two folded rates on their
// common grid — the folded generalization of derived metrics like MKI
// (misses per kilo-instruction, scale = 1000) or instructions-per-cycle.
// Grid points where the denominator rate is (near) zero yield NaN, which
// plotting layers skip. Both results must come from the same phase (same
// grid resolution).
func RatioCurve(num, den *Result, scale float64) ([]float64, error) {
	if len(num.Grid) != len(den.Grid) {
		return nil, fmt.Errorf("folding: ratio of incompatible grids (%d vs %d)", len(num.Grid), len(den.Grid))
	}
	// A well-formed Result carries one Rate value per grid point; a
	// malformed one (hand-built, or truncated by a serialization bug) must
	// error here rather than panic on the indexing below.
	if len(num.Rate) != len(num.Grid) {
		return nil, fmt.Errorf("folding: malformed numerator: %d rate values for %d grid points", len(num.Rate), len(num.Grid))
	}
	if len(den.Rate) != len(den.Grid) {
		return nil, fmt.Errorf("folding: malformed denominator: %d rate values for %d grid points", len(den.Rate), len(den.Grid))
	}
	if scale == 0 {
		scale = 1
	}
	out := make([]float64, len(num.Grid))
	// Threshold: denominators below 1% of the mean rate are unreliable.
	floor := 0.01 * den.MeanTotal / den.MeanDuration
	for i := range out {
		d := den.Rate[i]
		if d <= floor {
			out[i] = math.NaN()
			continue
		}
		out[i] = scale * num.Rate[i] / d
	}
	return out, nil
}

// ComputeBands fills the result's per-grid-point standard error from the
// folded point cloud: for each grid cell, the standard deviation of the
// points' residuals against the fitted curve divided by √n. Cells without
// points carry NaN. Bands quantify where the reconstruction is well
// supported — sparse regions of the synthetic instance deserve wider
// error bars in plots.
func (r *Result) ComputeBands() {
	n := len(r.Grid)
	if n < 2 {
		return
	}
	counts := make([]int, n)
	sums := make([]float64, n)
	sq := make([]float64, n)
	for _, p := range r.Points {
		// Locate the grid cell and the fitted value by linear
		// interpolation of the cumulative curve.
		pos := p.X * float64(n-1)
		i := int(pos)
		if i >= n-1 {
			i = n - 2
		}
		frac := pos - float64(i)
		fitted := r.Cumulative[i]*(1-frac) + r.Cumulative[i+1]*frac
		res := p.Y - fitted
		cell := i
		if frac > 0.5 {
			cell = i + 1
		}
		counts[cell]++
		sums[cell] += res
		sq[cell] += res * res
	}
	r.StdErr = make([]float64, n)
	for i := range r.StdErr {
		if counts[i] < 2 {
			r.StdErr[i] = math.NaN()
			continue
		}
		m := sums[i] / float64(counts[i])
		v := sq[i]/float64(counts[i]) - m*m
		if v < 0 {
			v = 0
		}
		r.StdErr[i] = math.Sqrt(v) / math.Sqrt(float64(counts[i]))
	}
}
