package folding

import (
	"math"
	"testing"

	"repro/internal/counters"
)

// foldBoth folds two counters of the same generated instances.
func foldBoth(t *testing.T, insShape, missShape counters.Shape) (ins, miss *Result) {
	t.Helper()
	instances := genInstances(insShape, 400, 3, 0.03, 77)
	// Overwrite the L1 counter along missShape (genInstances only fills
	// TotIns), keeping the same sample positions.
	const missTotal = 500_000
	for i := range instances {
		in := &instances[i]
		in.Totals[counters.L1DCM] = missTotal
		d := float64(in.Duration())
		for j := range in.Samples {
			x := float64(in.Samples[j].Time-in.Start) / d
			in.Samples[j].Counters[counters.L1DCM] =
				in.Base[counters.L1DCM] + int64(missTotal*missShape.Integral(x)+0.5)
		}
	}
	var err error
	ins, err = Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	miss, err = Fold(instances, Config{Counter: counters.L1DCM})
	if err != nil {
		t.Fatal(err)
	}
	return ins, miss
}

func TestRatioCurveMKI(t *testing.T) {
	insShape := counters.Constant()
	missShape := counters.ExpDecay(3, 0.2)
	ins, miss := foldBoth(t, insShape, missShape)
	mki, err := RatioCurve(miss, ins, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Analytic MKI(x) = 1000 · (missTotal·missRate(x)/d) / (insTotal·1/d)
	//                 = 1000 · 500k/10M · missRate(x) = 50·missRate(x).
	for i, x := range ins.Grid {
		if x < 0.05 || x > 0.95 {
			continue
		}
		want := 50 * missShape.Rate(x)
		if math.IsNaN(mki[i]) {
			t.Fatalf("NaN MKI at %g", x)
		}
		if math.Abs(mki[i]-want) > 0.15*want {
			t.Fatalf("MKI(%g) = %g, want ≈ %g", x, mki[i], want)
		}
	}
}

func TestRatioCurveNaNOnZeroDenominator(t *testing.T) {
	// Denominator accrues only in the first 60%: its rate in the tail is
	// ~0 → NaN ratio there.
	den := counters.Piecewise(
		counters.Segment{Width: 0.6, Area: 0.999},
		counters.Segment{Width: 0.4, Area: 0.001},
	)
	ins, miss := foldBoth(t, den, counters.Constant())
	ratio, err := RatioCurve(miss, ins, 1)
	if err != nil {
		t.Fatal(err)
	}
	sawNaN := false
	for i, x := range ins.Grid {
		if x > 0.8 && math.IsNaN(ratio[i]) {
			sawNaN = true
		}
	}
	if !sawNaN {
		t.Fatal("zero-denominator region did not produce NaN")
	}
}

func TestRatioCurveGridMismatch(t *testing.T) {
	a := &Result{Grid: make([]float64, 10)}
	b := &Result{Grid: make([]float64, 20)}
	if _, err := RatioCurve(a, b, 1); err == nil {
		t.Fatal("grid mismatch accepted")
	}
}

func TestRatioCurveMalformedRateErrors(t *testing.T) {
	// Matching grids but truncated (or absent) Rate slices must error, not
	// panic on the out-of-range index.
	ok := &Result{Grid: make([]float64, 10), Rate: make([]float64, 10), MeanTotal: 1, MeanDuration: 1}
	short := &Result{Grid: make([]float64, 10), Rate: make([]float64, 3), MeanTotal: 1, MeanDuration: 1}
	empty := &Result{Grid: make([]float64, 10), MeanTotal: 1, MeanDuration: 1}
	for name, pair := range map[string][2]*Result{
		"short numerator":   {short, ok},
		"short denominator": {ok, short},
		"nil rates":         {empty, empty},
	} {
		if _, err := RatioCurve(pair[0], pair[1], 1); err == nil {
			t.Fatalf("%s accepted", name)
		}
	}
	if _, err := RatioCurve(ok, ok, 1); err != nil {
		t.Fatalf("well-formed results rejected: %v", err)
	}
}

func TestComputeBands(t *testing.T) {
	instances := genInstances(counters.Linear(0.5, 1.5), 500, 3, 0.05, 13)
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	res.ComputeBands()
	if len(res.StdErr) != len(res.Grid) {
		t.Fatalf("StdErr len = %d", len(res.StdErr))
	}
	finite := 0
	for _, se := range res.StdErr {
		if !math.IsNaN(se) {
			if se < 0 {
				t.Fatalf("negative stderr %g", se)
			}
			if se > 0.05 {
				t.Fatalf("stderr %g implausibly large for exact data", se)
			}
			finite++
		}
	}
	// With 1500 points over ~100 cells nearly every cell is supported.
	if finite < len(res.StdErr)*3/4 {
		t.Fatalf("only %d/%d cells have bands", finite, len(res.StdErr))
	}
}

func TestComputeBandsDegenerate(t *testing.T) {
	r := &Result{Grid: []float64{0}}
	r.ComputeBands() // must not panic
	if r.StdErr != nil {
		t.Fatal("degenerate bands should stay nil")
	}
}
