package folding

import (
	"math"
	"sort"
)

// Diagnostics quantifies whether a fold's input actually supports the
// reconstruction. Folding's correctness rests on the sampling clock being
// uncorrelated with phase starts, so that folded sample positions cover
// [0,1] uniformly. A resonant sampler (period locked to the iteration
// duration, no jitter) stacks every sample at the same few positions —
// the fitted curve then interpolates blindly across the gaps. The
// diagnostics detect that failure mode from the data alone.
type Diagnostics struct {
	// KS is the Kolmogorov–Smirnov statistic of the folded x positions
	// against the uniform distribution (0 = perfectly uniform, 1 = all
	// mass at one point).
	KS float64
	// MaxGap is the largest gap between consecutive folded x positions
	// (including the 0 and 1 boundaries). Uniform coverage with n points
	// has expected max gap ≈ ln(n)/n.
	MaxGap float64
	// Points is the number of folded sample positions examined.
	Points int
	// SuspectAliasing is set when the coverage is so non-uniform that the
	// reconstruction should not be trusted (KS > 0.2 or a gap > 20% of
	// the axis with enough points that this cannot be chance).
	SuspectAliasing bool
}

// Diagnose computes coverage diagnostics for a fold result.
func (r *Result) Diagnose() Diagnostics {
	xs := make([]float64, 0, len(r.Points))
	for _, p := range r.Points {
		xs = append(xs, p.X)
	}
	return DiagnoseCoverage(xs)
}

// DiagnoseCoverage runs the coverage analysis on raw folded positions.
func DiagnoseCoverage(xs []float64) Diagnostics {
	d := Diagnostics{Points: len(xs)}
	if len(xs) == 0 {
		d.KS = 1
		d.MaxGap = 1
		d.SuspectAliasing = true
		return d
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)

	// KS statistic vs U(0,1): sup over sample points of |F̂(x) − x|.
	n := float64(len(sorted))
	for i, x := range sorted {
		lo := float64(i)/n - x
		hi := x - float64(i+1)/n
		if lo > d.KS {
			d.KS = lo
		}
		if hi > d.KS {
			d.KS = hi
		}
	}

	prev := 0.0
	for _, x := range sorted {
		if g := x - prev; g > d.MaxGap {
			d.MaxGap = g
		}
		prev = x
	}
	if g := 1 - prev; g > d.MaxGap {
		d.MaxGap = g
	}

	// Thresholds: the 0.1% KS critical value is ≈ 1.95/√n, floored at 0.2
	// so dense folds need gross deviations to trip; a 20% hole cannot
	// happen by chance for n ≥ 30 (probability < 0.8³⁰ ≈ 0.1%). Samples
	// smaller than 30 points carry too little evidence to judge at all.
	if len(xs) >= 30 {
		critKS := math.Max(0.2, 1.95/math.Sqrt(n))
		if d.KS > critKS || d.MaxGap > 0.2 {
			d.SuspectAliasing = true
		}
	}
	return d
}
