package folding

import (
	"math/rand/v2"
	"testing"

	"repro/internal/counters"
	"repro/internal/trace"
)

func TestDiagnoseUniformCoverageClean(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	d := DiagnoseCoverage(xs)
	if d.SuspectAliasing {
		t.Fatalf("uniform coverage flagged: %+v", d)
	}
	if d.KS > 0.1 {
		t.Fatalf("KS = %g for uniform data", d.KS)
	}
	if d.Points != 500 {
		t.Fatalf("points = %d", d.Points)
	}
}

func TestDiagnoseAliasedCoverageFlagged(t *testing.T) {
	// Resonant sampling: every sample lands at one of 3 positions.
	xs := make([]float64, 300)
	for i := range xs {
		xs[i] = []float64{0.1, 0.45, 0.8}[i%3]
	}
	d := DiagnoseCoverage(xs)
	if !d.SuspectAliasing {
		t.Fatalf("aliased coverage not flagged: %+v", d)
	}
	if d.MaxGap < 0.3 {
		t.Fatalf("max gap = %g", d.MaxGap)
	}
}

func TestDiagnoseHalfAxisHole(t *testing.T) {
	// Samples only in [0, 0.5): a hole covering half the axis.
	rng := rand.New(rand.NewPCG(2, 2))
	xs := make([]float64, 200)
	for i := range xs {
		xs[i] = 0.5 * rng.Float64()
	}
	d := DiagnoseCoverage(xs)
	if !d.SuspectAliasing || d.MaxGap < 0.45 {
		t.Fatalf("half-axis hole not flagged: %+v", d)
	}
}

func TestDiagnoseEmpty(t *testing.T) {
	d := DiagnoseCoverage(nil)
	if !d.SuspectAliasing || d.KS != 1 || d.MaxGap != 1 {
		t.Fatalf("empty diagnostics = %+v", d)
	}
}

func TestDiagnoseSmallSampleNotOverflagged(t *testing.T) {
	// 10 uniform points have big gaps by chance; must not be flagged.
	rng := rand.New(rand.NewPCG(3, 3))
	for trial := 0; trial < 50; trial++ {
		xs := make([]float64, 10)
		for i := range xs {
			xs[i] = rng.Float64()
		}
		if d := DiagnoseCoverage(xs); d.SuspectAliasing {
			t.Fatalf("trial %d: small uniform sample flagged: %+v", trial, d)
		}
	}
}

// TestResonantSamplerDetectedEndToEnd builds the paper's failure mode
// explicitly: a zero-jitter sampler whose period exactly matches the
// instance duration puts every sample at the same relative position; the
// fold must carry the warning.
func TestResonantSamplerDetectedEndToEnd(t *testing.T) {
	const dur = 1_000_000
	var instances []Instance
	var clock trace.Time
	for i := 0; i < 200; i++ {
		in := Instance{Start: clock, End: clock + dur}
		in.Totals[counters.TotIns] = 1_000_000
		// The "sampler" fires at a fixed phase: always 30% into the
		// instance (period == instance duration, zero jitter).
		var s trace.Sample
		s.Time = in.Start + dur*3/10
		s.Counters[counters.TotIns] = in.Base[counters.TotIns] + 300_000
		in.Samples = []trace.Sample{s}
		instances = append(instances, in)
		clock += dur
	}
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	d := res.Diagnose()
	if !d.SuspectAliasing {
		t.Fatalf("resonant sampling not detected: %+v", d)
	}
	// Contrast: the jittered simulator configuration never trips it (the
	// genInstances generator uses uniform positions).
	good := genInstances(counters.Constant(), 200, 2, 0.05, 4)
	res2, err := Fold(good, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	if d2 := res2.Diagnose(); d2.SuspectAliasing {
		t.Fatalf("healthy fold flagged: %+v", d2)
	}
}
