package folding_test

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/trace"
)

// ExampleFold reconstructs a phase's internal evolution from one sample
// per instance: each of 200 instances contributes a single observation at
// a random position, and folding assembles them into the full curve.
func ExampleFold() {
	rng := rand.New(rand.NewPCG(1, 2))
	shape := counters.ExpDecay(3, 0.2) // front-loaded: fast start, slow tail
	const dur = 1_000_000              // 1 ms instances
	const total = 5_000_000            // 5M instructions each

	var instances []folding.Instance
	var clock trace.Time
	for i := 0; i < 200; i++ {
		in := folding.Instance{Start: clock, End: clock + dur}
		in.Totals[counters.TotIns] = total
		x := rng.Float64() // where the (single) sampler tick lands
		var s trace.Sample
		s.Time = in.Start + trace.Time(x*dur)
		s.Counters[counters.TotIns] = int64(total * shape.Integral(x))
		in.Samples = []trace.Sample{s}
		instances = append(instances, in)
		clock += dur
	}

	res, err := folding.Fold(instances, folding.Config{Counter: counters.TotIns})
	if err != nil {
		panic(err)
	}
	fmt.Printf("folded %d points from %d instances\n", len(res.Points), res.Instances)
	fmt.Printf("cumulative at x=0.2: %.2f (truth %.2f)\n", res.Cumulative[20], shape.Integral(0.2))
	fmt.Printf("reconstruction error: %.1f%%\n", 100*res.MeanAbsDiff(shape))
	// Output:
	// folded 200 points from 200 instances
	// cumulative at x=0.2: 0.36 (truth 0.36)
	// reconstruction error: 0.0%
}
