// Package folding implements the paper's core contribution: reconstructing
// the fine-grain internal evolution of a repetitive computation phase from
// coarse-grain sampling.
//
// A single instance of a phase contains only a handful of samples at a
// low-overhead sampling period. But an iterative application executes the
// phase many times, and the free-running sampling clock is uncorrelated
// with phase starts, so across instances the samples land at different
// relative positions. Folding projects every sample of every instance into
// one synthetic instance: a sample taken at time t inside instance [s, e]
// with counter reading C becomes the point
//
//	x = (t − s) / (e − s)            normalized time
//	y = (C − C(s)) / (C(e) − C(s))   normalized cumulative progress
//
// The pooled cloud is fitted with a monotone curve (cumulative counters
// only ever increase); its derivative is the phase's instantaneous metric
// rate over normalized time — e.g. MIPS inside the solver kernel — at a
// resolution no single instance's samples could support. Call stacks fold
// the same way, revealing which source region runs at each point.
package folding

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/burst"
	"repro/internal/counters"
	"repro/internal/fit"
	"repro/internal/parallel"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Instance is one occurrence of the repetitive region being folded,
// together with the samples captured inside it.
type Instance struct {
	Rank       int32
	Start, End trace.Time
	// Base is the absolute counter snapshot at Start.
	Base counters.Values
	// Totals is the counter increment over the instance.
	Totals counters.Values
	// Samples are the trace samples with Start <= Time < End, time-ordered.
	Samples []trace.Sample
}

// Duration returns the instance length.
func (in *Instance) Duration() trace.Time { return in.End - in.Start }

// InstancesFromBursts assembles folding instances from the bursts assigned
// to one cluster. attached must be the burst.AttachSamples result for the
// same burst slice.
func InstancesFromBursts(bursts []burst.Burst, attached [][]trace.Sample, clusterID int) []Instance {
	if len(attached) != len(bursts) {
		panic(fmt.Sprintf("folding: %d bursts but %d sample groups", len(bursts), len(attached)))
	}
	var out []Instance
	for i := range bursts {
		if bursts[i].Cluster != clusterID {
			continue
		}
		out = append(out, Instance{
			Rank:    bursts[i].Rank,
			Start:   bursts[i].Start,
			End:     bursts[i].End,
			Base:    bursts[i].Base,
			Totals:  bursts[i].Delta,
			Samples: attached[i],
		})
	}
	return out
}

// Model selects the curve-fitting strategy.
type Model int

const (
	// ModelBinnedPCHIP (default): isotonic regression over the folded
	// cloud, equal-width bin means, then a monotone cubic interpolant.
	// Smooth, monotone, and differentiable — the production model.
	ModelBinnedPCHIP Model = iota
	// ModelKernel: Nadaraya–Watson kernel smoothing of the folded cloud
	// followed by isotonic projection. Ablation alternative.
	ModelKernel
	// ModelBinned: raw isotonic bin means with linear interpolation; the
	// simplest possible reconstruction, kept for ablation.
	ModelBinned
)

// String names the model.
func (m Model) String() string {
	switch m {
	case ModelBinnedPCHIP:
		return "binned+pchip"
	case ModelKernel:
		return "kernel"
	case ModelBinned:
		return "binned"
	}
	return fmt.Sprintf("model_%d", int(m))
}

// Config parameterizes a fold.
type Config struct {
	// Counter is the hardware counter to reconstruct.
	Counter counters.Counter
	// Bins is the output grid resolution (default 100).
	Bins int
	// PruneK is the MAD multiplier for instance outlier pruning: instances
	// whose duration or counter total deviates from the median by more
	// than PruneK·MAD are discarded before folding (default 3; negative
	// disables pruning).
	PruneK float64
	// Model selects the fitting strategy.
	Model Model
	// KernelBandwidth is the smoothing bandwidth for ModelKernel
	// (default 0.02).
	KernelBandwidth float64
	// MaxSegments bounds sub-phase detection (default 6; 1 disables).
	MaxSegments int
	// SegmentPenalty is the per-extra-segment cost for sub-phase detection
	// (default chosen relative to the grid; larger = fewer breakpoints).
	SegmentPenalty float64
}

func (c *Config) setDefaults() {
	if c.Bins == 0 {
		c.Bins = 100
	}
	if c.PruneK == 0 {
		c.PruneK = 3
	}
	if c.KernelBandwidth == 0 {
		c.KernelBandwidth = 0.02
	}
	if c.MaxSegments == 0 {
		c.MaxSegments = 6
	}
	if c.SegmentPenalty == 0 {
		c.SegmentPenalty = 0.02
	}
}

// Result is a folded reconstruction of one counter inside one phase.
type Result struct {
	// Counter is the reconstructed counter.
	Counter counters.Counter
	// Instances is the number of instances folded (after pruning);
	// Pruned counts the discarded outliers.
	Instances, Pruned int
	// Points is the folded (x, y) sample cloud the curve was fitted to.
	Points []fit.Point
	// Grid is the uniform normalized-time grid (len Bins+1, 0..1).
	Grid []float64
	// Cumulative is the fitted normalized cumulative curve on Grid
	// (Cumulative[0] = 0, Cumulative[last] = 1, non-decreasing).
	Cumulative []float64
	// Rate is the instantaneous metric rate on Grid in counts per
	// nanosecond of phase-internal time: Rate = dCumulative/dx ·
	// MeanTotal/MeanDuration.
	Rate []float64
	// MeanDuration (ns) and MeanTotal (counts) describe the synthetic
	// instance the reconstruction is expressed in.
	MeanDuration, MeanTotal float64
	// Breakpoints are detected sub-phase boundaries in normalized time.
	Breakpoints []float64
	// StdErr, when filled by ComputeBands, holds the per-grid-point
	// standard error of the folded cloud around the fitted curve (NaN
	// where fewer than two points support a cell).
	StdErr []float64
}

// Errors returned by Fold.
var (
	ErrNoInstances = errors.New("folding: no instances to fold")
	ErrNoSignal    = errors.New("folding: counter never increments in this phase")
	ErrTooFew      = errors.New("folding: too few samples to fit a curve")
)

// Fold reconstructs the internal evolution of one counter across the given
// instances.
func Fold(instances []Instance, cfg Config) (*Result, error) {
	cfg.setDefaults()
	if len(instances) == 0 {
		return nil, ErrNoInstances
	}

	kept, pruned := PruneInstances(instances, cfg.PruneK, cfg.Counter)
	if len(kept) == 0 {
		// Pathologically dispersed durations; fall back to all instances.
		kept, pruned = instances, 0
	}

	res := &Result{
		Counter:   cfg.Counter,
		Instances: len(kept),
		Pruned:    pruned,
	}
	var durSum, totSum float64
	for i := range kept {
		durSum += float64(kept[i].Duration())
		totSum += float64(kept[i].Totals[cfg.Counter])
	}
	res.MeanDuration = durSum / float64(len(kept))
	res.MeanTotal = totSum / float64(len(kept))
	if res.MeanTotal <= 0 {
		return nil, fmt.Errorf("%w (%s)", ErrNoSignal, cfg.Counter)
	}

	// Fold every sample into the synthetic instance. The cloud is sized
	// up front — at most one point per attached sample — so the append
	// loop never reallocates.
	npts := 0
	for i := range kept {
		npts += len(kept[i].Samples)
	}
	res.Points = make([]fit.Point, 0, npts)
	for i := range kept {
		in := &kept[i]
		d := float64(in.Duration())
		tot := float64(in.Totals[cfg.Counter])
		if d <= 0 || tot <= 0 {
			continue
		}
		for _, s := range in.Samples {
			x := float64(s.Time-in.Start) / d
			y := float64(s.Counters[cfg.Counter]-in.Base[cfg.Counter]) / tot
			if x < 0 || x > 1 || math.IsNaN(y) {
				continue
			}
			if y < 0 {
				y = 0
			}
			if y > 1 {
				y = 1
			}
			res.Points = append(res.Points, fit.Point{X: x, Y: y, W: 1})
		}
	}
	if len(res.Points) < 4 {
		return nil, fmt.Errorf("%w: %d folded points", ErrTooFew, len(res.Points))
	}

	// The physical boundary conditions (0,0) and (1,1) are pinned as knots
	// after binning (addBoundaryKnots) rather than as weighted pseudo-
	// points: pseudo-points would bias the boundary bins' means.
	fit.SortPoints(res.Points)

	res.Grid = make([]float64, cfg.Bins+1)
	for i := range res.Grid {
		res.Grid[i] = float64(i) / float64(cfg.Bins)
	}

	var err error
	switch cfg.Model {
	case ModelBinnedPCHIP:
		err = fitBinnedPCHIP(res, cfg)
	case ModelKernel:
		err = fitKernel(res, cfg)
	case ModelBinned:
		err = fitBinned(res, cfg)
	default:
		err = fmt.Errorf("folding: unknown model %d", cfg.Model)
	}
	if err != nil {
		return nil, err
	}

	// Clamp and pin the boundary conditions, then derive the rate scale.
	clampCumulative(res.Cumulative)
	scale := res.MeanTotal / res.MeanDuration
	if res.Rate == nil {
		res.Rate = numericRate(res.Grid, res.Cumulative)
	}
	for i := range res.Rate {
		res.Rate[i] *= scale
	}

	if cfg.MaxSegments > 1 {
		breaks := fit.Segment(res.Grid, res.Cumulative, cfg.MaxSegments, cfg.SegmentPenalty)
		for _, bi := range breaks {
			res.Breakpoints = append(res.Breakpoints, res.Grid[bi])
		}
	}
	return res, nil
}

// fitBinnedPCHIP is the default model: PAVA → bin means → monotone cubic.
// The isotonic values stay a bare column — BinIso consumes them next to
// the sorted points, so no intermediate point slice is materialized.
func fitBinnedPCHIP(res *Result, cfg Config) error {
	iso := fit.Isotonic(res.Points)
	xs, ys := fit.BinIso(res.Points, iso, cfg.Bins, 0, 1)
	xs, ys = addBoundaryKnots(xs, ys)
	p, err := fit.NewPCHIP(xs, ys)
	if err != nil {
		return fmt.Errorf("folding: %w", err)
	}
	res.Cumulative = make([]float64, len(res.Grid))
	res.Rate = make([]float64, len(res.Grid))
	for i, x := range res.Grid {
		res.Cumulative[i] = p.Eval(x)
		res.Rate[i] = p.Deriv(x)
	}
	return nil
}

// fitKernel smooths the cloud with a Gaussian kernel, then projects onto
// the monotone cone with PAVA.
func fitKernel(res *Result, cfg Config) error {
	sm := fit.KernelSmooth(res.Points, cfg.KernelBandwidth, res.Grid)
	pts := make([]fit.Point, len(sm))
	for i, y := range sm {
		pts[i] = fit.Point{X: res.Grid[i], Y: y, W: 1}
	}
	res.Cumulative = fit.Isotonic(pts)
	return nil
}

// fitBinned uses raw isotonic bin means with linear interpolation.
func fitBinned(res *Result, cfg Config) error {
	iso := fit.Isotonic(res.Points)
	xs, ys := fit.BinIso(res.Points, iso, cfg.Bins, 0, 1)
	xs, ys = addBoundaryKnots(xs, ys)
	res.Cumulative = make([]float64, len(res.Grid))
	for i, x := range res.Grid {
		res.Cumulative[i] = interpLinear(xs, ys, x)
	}
	return nil
}

// addBoundaryKnots prepends (0,0) and appends (1,1) unless the bins
// already touch the boundaries.
func addBoundaryKnots(xs, ys []float64) ([]float64, []float64) {
	if len(xs) == 0 || xs[0] > 0 {
		xs = append([]float64{0}, xs...)
		ys = append([]float64{0}, ys...)
	}
	if xs[len(xs)-1] < 1 {
		xs = append(xs, 1)
		ys = append(ys, 1)
	}
	return xs, ys
}

func interpLinear(xs, ys []float64, x float64) float64 {
	if x <= xs[0] {
		return ys[0]
	}
	if x >= xs[len(xs)-1] {
		return ys[len(ys)-1]
	}
	lo, hi := 0, len(xs)-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if xs[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	f := (x - xs[lo]) / (xs[hi] - xs[lo])
	return ys[lo]*(1-f) + ys[hi]*f
}

// clampCumulative forces the fitted curve into [0,1] with pinned endpoints
// and non-decreasing values (guards against numerical slop).
func clampCumulative(cum []float64) {
	if len(cum) == 0 {
		return
	}
	cum[0] = 0
	cum[len(cum)-1] = 1
	prev := 0.0
	for i := range cum {
		if cum[i] < prev {
			cum[i] = prev
		}
		if cum[i] > 1 {
			cum[i] = 1
		}
		prev = cum[i]
	}
}

// numericRate differentiates the cumulative curve with central differences.
func numericRate(grid, cum []float64) []float64 {
	n := len(grid)
	out := make([]float64, n)
	for i := range out {
		lo, hi := i-1, i+1
		if lo < 0 {
			lo = 0
		}
		if hi >= n {
			hi = n - 1
		}
		if grid[hi] == grid[lo] {
			continue
		}
		out[i] = (cum[hi] - cum[lo]) / (grid[hi] - grid[lo])
	}
	return out
}

// PruneInstances drops instances whose duration or counter total is more
// than k·MAD from the median (robust outlier rejection: a phase instance
// hit by OS noise or an unusual iteration would otherwise smear the fold).
// k < 0 disables pruning. The returned slice shares backing instances.
func PruneInstances(instances []Instance, k float64, c counters.Counter) (kept []Instance, pruned int) {
	if k < 0 || len(instances) < 4 {
		return instances, 0
	}
	durs := parallel.GetFloat64(len(instances))
	defer parallel.PutFloat64(durs)
	tots := parallel.GetFloat64(len(instances))
	defer parallel.PutFloat64(tots)
	for i := range instances {
		durs[i] = float64(instances[i].Duration())
		tots[i] = float64(instances[i].Totals[c])
	}
	dMed, dMAD := stats.Median(durs), stats.MAD(durs)
	tMed, tMAD := stats.Median(tots), stats.MAD(tots)
	// Floor the scale so that zero-MAD (perfectly regular) data tolerates
	// tiny relative deviations instead of pruning everything unequal.
	dScale := math.Max(dMAD, 0.001*math.Abs(dMed))
	tScale := math.Max(tMAD, 0.001*math.Abs(tMed))
	// Sized for the common case (few or no outliers): one allocation
	// instead of append doubling — this runs once per phase per counter.
	kept = make([]Instance, 0, len(instances))
	for i := range instances {
		if math.Abs(durs[i]-dMed) > k*dScale || math.Abs(tots[i]-tMed) > k*tScale {
			pruned++
			continue
		}
		kept = append(kept, instances[i])
	}
	return kept, pruned
}

// MeanAbsDiff returns the mean absolute difference between the folded
// cumulative curve and a reference shape, evaluated on the result grid —
// the paper's accuracy metric, as a fraction of the phase total (0.05 ≡ 5%).
func (r *Result) MeanAbsDiff(ref counters.Shape) float64 {
	var sum float64
	for i, x := range r.Grid {
		sum += math.Abs(r.Cumulative[i] - ref.Integral(x))
	}
	return sum / float64(len(r.Grid))
}

// Shape adapts the folded cumulative curve into a counters.Shape for
// comparison with other reconstructions.
func (r *Result) Shape() counters.Shape {
	return counters.NewTableShape(r.Cumulative)
}

// MeanAbsDiffResults compares two reconstructions of the same phase (e.g.
// coarse-period folding vs fine-grain sampling) on the coarser grid.
func MeanAbsDiffResults(a, b *Result) float64 {
	return counters.MeanAbsDiff(a.Shape(), b.Shape(), len(a.Grid)-1)
}
