package folding

import (
	"errors"
	"math"
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/burst"
	"repro/internal/counters"
	"repro/internal/trace"
)

// genInstances synthesizes instances of a phase whose TotIns counter
// follows the given shape. Each instance gets samplesPer samples at
// uniform-random positions (emulating a sampling clock uncorrelated with
// phase starts). durNoise is the relative spread of instance durations.
func genInstances(shape counters.Shape, n, samplesPer int, durNoise float64, seed uint64) []Instance {
	rng := rand.New(rand.NewPCG(seed, 17))
	const meanDur = 1_000_000 // 1 ms
	const total = 10_000_000  // 10M instructions
	out := make([]Instance, n)
	var clock trace.Time
	for i := range out {
		d := trace.Time(meanDur * (1 + durNoise*(2*rng.Float64()-1)))
		in := Instance{
			Rank:  int32(i % 4),
			Start: clock,
			End:   clock + d,
		}
		in.Totals[counters.TotIns] = total
		in.Totals[counters.TotCyc] = int64(2 * float64(d))
		xs := make([]float64, samplesPer)
		for j := range xs {
			xs[j] = rng.Float64()
		}
		sort.Float64s(xs)
		for _, x := range xs {
			var s trace.Sample
			s.Rank = in.Rank
			s.Time = in.Start + trace.Time(x*float64(d))
			s.Counters[counters.TotIns] = in.Base[counters.TotIns] + int64(float64(total)*shape.Integral(x)+0.5)
			s.Counters[counters.TotCyc] = int64(2 * float64(s.Time))
			in.Samples = append(in.Samples, s)
		}
		out[i] = in
		clock += d + trace.Time(rng.IntN(10_000))
	}
	return out
}

func testShapes() map[string]counters.Shape {
	return map[string]counters.Shape{
		"constant": counters.Constant(),
		"linear":   counters.Linear(0.4, 1.6),
		"expdecay": counters.ExpDecay(3, 0.15),
		"piecewise": counters.Piecewise(
			counters.Segment{Width: 0.4, Area: 0.7},
			counters.Segment{Width: 0.6, Area: 0.3},
		),
	}
}

func TestFoldReconstructsShapes(t *testing.T) {
	for name, shape := range testShapes() {
		for _, model := range []Model{ModelBinnedPCHIP, ModelKernel, ModelBinned} {
			instances := genInstances(shape, 400, 2, 0.05, 42)
			res, err := Fold(instances, Config{Counter: counters.TotIns, Model: model})
			if err != nil {
				t.Fatalf("%s/%s: %v", name, model, err)
			}
			if d := res.MeanAbsDiff(shape); d > 0.02 {
				t.Errorf("%s/%s: mean abs diff = %.4f, want < 0.02", name, model, d)
			}
		}
	}
}

func TestFoldHeadlineUnderFivePercent(t *testing.T) {
	// The paper's headline claim: folding from coarse sampling differs
	// from the reference by < 5% absolute mean difference. Use sparse
	// sampling (1 sample/instance on average, including instances with 0).
	shape := counters.ExpDecay(2.5, 0.2)
	rng := rand.New(rand.NewPCG(7, 7))
	instances := genInstances(shape, 300, 1, 0.08, 11)
	// Randomly drop samples from ~40% of instances to emulate a period
	// longer than the phase.
	for i := range instances {
		if rng.Float64() < 0.4 {
			instances[i].Samples = nil
		}
	}
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	if d := res.MeanAbsDiff(shape); d > 0.05 {
		t.Fatalf("mean abs diff = %.4f, want < 0.05", d)
	}
}

func TestFoldCumulativeInvariants(t *testing.T) {
	for name, shape := range testShapes() {
		instances := genInstances(shape, 150, 2, 0.1, 5)
		res, err := Fold(instances, Config{Counter: counters.TotIns})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Cumulative[0] != 0 || res.Cumulative[len(res.Cumulative)-1] != 1 {
			t.Fatalf("%s: endpoints = %g, %g", name, res.Cumulative[0], res.Cumulative[len(res.Cumulative)-1])
		}
		for i := 1; i < len(res.Cumulative); i++ {
			if res.Cumulative[i] < res.Cumulative[i-1] {
				t.Fatalf("%s: cumulative not monotone at %d", name, i)
			}
		}
		for i, r := range res.Rate {
			if r < -1e-9 {
				t.Fatalf("%s: negative rate %g at %d", name, r, i)
			}
		}
		if len(res.Grid) != 101 {
			t.Fatalf("%s: grid len = %d", name, len(res.Grid))
		}
	}
}

func TestFoldRateScale(t *testing.T) {
	instances := genInstances(counters.Constant(), 300, 2, 0, 3)
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	want := res.MeanTotal / res.MeanDuration // counts per ns
	for i, r := range res.Rate {
		x := res.Grid[i]
		if x < 0.05 || x > 0.95 {
			continue // endpoints have one-sided derivative error
		}
		if math.Abs(r-want) > 0.05*want {
			t.Fatalf("rate at %.2f = %g, want ≈ %g", x, r, want)
		}
	}
	// MeanTotal/MeanDuration should match the generator: 10M ins / 1ms =
	// 10 ins/ns.
	if math.Abs(want-10) > 0.5 {
		t.Fatalf("rate scale = %g, want ≈ 10", want)
	}
}

func TestFoldErrors(t *testing.T) {
	if _, err := Fold(nil, Config{}); !errors.Is(err, ErrNoInstances) {
		t.Fatalf("err = %v", err)
	}
	// Counter with no signal.
	instances := genInstances(counters.Constant(), 50, 2, 0, 1)
	if _, err := Fold(instances, Config{Counter: counters.FPOps}); !errors.Is(err, ErrNoSignal) {
		t.Fatalf("err = %v", err)
	}
	// Too few samples.
	few := genInstances(counters.Constant(), 3, 1, 0, 1)
	for i := range few {
		few[i].Samples = few[i].Samples[:0]
	}
	if _, err := Fold(few, Config{Counter: counters.TotIns}); !errors.Is(err, ErrTooFew) {
		t.Fatalf("err = %v", err)
	}
}

func TestPruneInstancesDropsOutliers(t *testing.T) {
	shape := counters.Linear(0.5, 1.5)
	instances := genInstances(shape, 200, 2, 0.02, 9)
	// Corrupt 10 instances with 5× duration (e.g. OS noise hit).
	for i := 0; i < 10; i++ {
		instances[i].End = instances[i].Start + 5*instances[i].Duration()
	}
	kept, pruned := PruneInstances(instances, 3, counters.TotIns)
	if pruned != 10 {
		t.Fatalf("pruned = %d, want 10", pruned)
	}
	if len(kept) != 190 {
		t.Fatalf("kept = %d", len(kept))
	}
	// Folding with pruning must beat folding without.
	resPruned, err := Fold(instances, Config{Counter: counters.TotIns, PruneK: 3})
	if err != nil {
		t.Fatal(err)
	}
	resRaw, err := Fold(instances, Config{Counter: counters.TotIns, PruneK: -1})
	if err != nil {
		t.Fatal(err)
	}
	if resPruned.Pruned != 10 || resRaw.Pruned != 0 {
		t.Fatalf("Pruned fields = %d, %d", resPruned.Pruned, resRaw.Pruned)
	}
	dp, dr := resPruned.MeanAbsDiff(shape), resRaw.MeanAbsDiff(shape)
	if dp >= dr {
		t.Fatalf("pruning did not help: %.4f vs %.4f", dp, dr)
	}
}

func TestPruneInstancesSmallSetsUntouched(t *testing.T) {
	instances := genInstances(counters.Constant(), 3, 1, 0.5, 2)
	kept, pruned := PruneInstances(instances, 3, counters.TotIns)
	if pruned != 0 || len(kept) != 3 {
		t.Fatal("small instance sets must not be pruned")
	}
}

func TestFoldDetectsSubphaseBreakpoints(t *testing.T) {
	// 40% of the time carries 80% of the instructions: sharp rate change
	// at x = 0.4.
	shape := counters.Piecewise(
		counters.Segment{Width: 0.4, Area: 0.8},
		counters.Segment{Width: 0.6, Area: 0.2},
	)
	instances := genInstances(shape, 600, 3, 0.03, 21)
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakpoints) == 0 {
		t.Fatal("no breakpoints detected")
	}
	best := res.Breakpoints[0]
	for _, b := range res.Breakpoints {
		if math.Abs(b-0.4) < math.Abs(best-0.4) {
			best = b
		}
	}
	if math.Abs(best-0.4) > 0.06 {
		t.Fatalf("breakpoint at %.3f, want ≈ 0.40 (all: %v)", best, res.Breakpoints)
	}
}

func TestFoldNoBreakpointsOnUniformPhase(t *testing.T) {
	instances := genInstances(counters.Constant(), 400, 2, 0.03, 23)
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Breakpoints) != 0 {
		t.Fatalf("uniform phase got breakpoints: %v", res.Breakpoints)
	}
}

func TestMeanAbsDiffResultsSelfZero(t *testing.T) {
	instances := genInstances(counters.Linear(1, 2), 200, 2, 0.05, 31)
	a, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	if d := MeanAbsDiffResults(a, b); d != 0 {
		t.Fatalf("self diff = %g", d)
	}
}

func TestInstancesFromBursts(t *testing.T) {
	bursts := []burst.Burst{
		{Rank: 0, Start: 0, End: 100, Cluster: 1},
		{Rank: 0, Start: 200, End: 320, Cluster: 2},
		{Rank: 1, Start: 0, End: 110, Cluster: 1},
	}
	attached := [][]trace.Sample{
		{{Rank: 0, Time: 50}},
		{{Rank: 0, Time: 250}},
		nil,
	}
	ins := InstancesFromBursts(bursts, attached, 1)
	if len(ins) != 2 {
		t.Fatalf("instances = %d, want 2", len(ins))
	}
	if len(ins[0].Samples) != 1 || ins[0].Samples[0].Time != 50 {
		t.Fatalf("instance samples = %+v", ins[0].Samples)
	}
	if ins[1].Rank != 1 || ins[1].Duration() != 110 {
		t.Fatalf("instance 1 = %+v", ins[1])
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected panic on length mismatch")
			}
		}()
		InstancesFromBursts(bursts, attached[:2], 1)
	}()
}

func TestModelString(t *testing.T) {
	if ModelBinnedPCHIP.String() != "binned+pchip" || ModelKernel.String() != "kernel" ||
		ModelBinned.String() != "binned" || Model(9).String() != "model_9" {
		t.Fatal("model names wrong")
	}
}

func TestFoldUnknownModel(t *testing.T) {
	instances := genInstances(counters.Constant(), 50, 2, 0, 1)
	if _, err := Fold(instances, Config{Counter: counters.TotIns, Model: Model(99)}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// --- call-stack folding ---

// stackInstances builds instances whose samples carry region r1 for
// x < 0.6 and r2 beyond.
func stackInstances(n int, seed uint64) []Instance {
	rng := rand.New(rand.NewPCG(seed, 3))
	out := make([]Instance, n)
	var clock trace.Time
	for i := range out {
		d := trace.Time(1_000_000)
		in := Instance{Start: clock, End: clock + d}
		in.Totals[counters.TotIns] = 1000
		for j := 0; j < 3; j++ {
			x := rng.Float64()
			var s trace.Sample
			s.Time = in.Start + trace.Time(x*float64(d))
			region := uint32(1)
			if x >= 0.6 {
				region = 2
			}
			s.Stack = []uint32{region, 9}
			in.Samples = append(in.Samples, s)
		}
		sort.Slice(in.Samples, func(a, b int) bool { return in.Samples[a].Time < in.Samples[b].Time })
		out[i] = in
		clock += d
	}
	return out
}

func TestFoldStacks(t *testing.T) {
	res := FoldStacks(stackInstances(300, 13), 20)
	if res.Samples != 900 {
		t.Fatalf("samples = %d", res.Samples)
	}
	if len(res.Regions) != 2 {
		t.Fatalf("regions = %v", res.Regions)
	}
	// Region 1 covers 60% of time → should be first (most samples).
	if res.Regions[0] != 1 {
		t.Fatalf("dominant region = %d", res.Regions[0])
	}
	// Check dominance per bin away from the boundary.
	for b := 0; b < res.Bins; b++ {
		x := (float64(b) + 0.5) / float64(res.Bins)
		if math.Abs(x-0.6) < 0.05 {
			continue
		}
		want := uint32(1)
		if x > 0.6 {
			want = 2
		}
		if res.Dominant[b] != want {
			t.Fatalf("bin %d (x=%.2f) dominant = %d, want %d", b, x, res.Dominant[b], want)
		}
	}
	// Shares in each non-empty bin sum to 1.
	for b := range res.Share {
		var sum float64
		for _, v := range res.Share[b] {
			sum += v
		}
		if res.Dominant[b] != 0 && math.Abs(sum-1) > 1e-9 {
			t.Fatalf("bin %d shares sum to %g", b, sum)
		}
	}
	// Transition detected near 0.6.
	trs := res.Transitions()
	if len(trs) != 1 || math.Abs(trs[0]-0.6) > 0.06 {
		t.Fatalf("transitions = %v, want ≈ [0.6]", trs)
	}
}

func TestAttributeRegions(t *testing.T) {
	// Instructions 70% in the first 40% of time (region 1), 30% in the
	// remaining 60% (region 2).
	shape := counters.Piecewise(
		counters.Segment{Width: 0.4, Area: 0.7},
		counters.Segment{Width: 0.6, Area: 0.3},
	)
	rng := rand.New(rand.NewPCG(31, 7))
	instances := genInstances(shape, 400, 3, 0.02, 55)
	for i := range instances {
		in := &instances[i]
		d := float64(in.Duration())
		for j := range in.Samples {
			x := float64(in.Samples[j].Time-in.Start) / d
			region := uint32(1)
			if x >= 0.4 {
				region = 2
			}
			in.Samples[j].Stack = []uint32{region}
		}
	}
	_ = rng
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	st := FoldStacks(instances, 50)
	attr := AttributeRegions(res, st)
	if math.Abs(attr[1]-0.7) > 0.05 {
		t.Fatalf("region 1 share = %.3f, want ≈ 0.70", attr[1])
	}
	if math.Abs(attr[2]-0.3) > 0.05 {
		t.Fatalf("region 2 share = %.3f, want ≈ 0.30", attr[2])
	}
	total := attr[1] + attr[2]
	if math.Abs(total-1) > 0.02 {
		t.Fatalf("shares sum to %.3f", total)
	}
}

func TestAttributeRegionsDegenerate(t *testing.T) {
	if got := AttributeRegions(&Result{}, &StackResult{}); len(got) != 0 {
		t.Fatalf("degenerate attribution = %v", got)
	}
}

func TestFoldStacksEmptyAndDefaults(t *testing.T) {
	res := FoldStacks(nil, 0)
	if res.Bins != 50 || res.Samples != 0 || len(res.Regions) != 0 {
		t.Fatalf("empty result = %+v", res)
	}
	if got := res.Transitions(); len(got) != 0 {
		t.Fatalf("transitions on empty = %v", got)
	}
}

func TestFoldStacksIgnoresStacklessSamples(t *testing.T) {
	ins := stackInstances(10, 1)
	for i := range ins {
		for j := range ins[i].Samples {
			ins[i].Samples[j].Stack = nil
		}
	}
	res := FoldStacks(ins, 10)
	if res.Samples != 0 {
		t.Fatalf("stackless samples counted: %d", res.Samples)
	}
}
