package folding

import (
	"fmt"

	"repro/internal/trace"
)

// InstancesFromIterations builds folding instances from whole main-loop
// iterations instead of cluster bursts: instance k on a rank spans its
// k-th to (k+1)-th EvIteration marker. Folding such instances
// reconstructs the evolution of the entire iteration body — computation
// ramps separated by flat segments where the rank sits in MPI — which is
// how the methodology visualizes code whose structure is known from
// markers rather than discovered by clustering.
//
// Iteration markers must carry counter snapshots (probes read counters;
// the simulator always provides them). The final marker's span has no
// closing snapshot and is skipped, as are ranks with fewer than two
// markers.
func InstancesFromIterations(tr *trace.Trace) ([]Instance, error) {
	if tr.Meta.Ranks < 1 {
		return nil, fmt.Errorf("folding: trace has no ranks")
	}
	marks := make(map[int32][]trace.Event)
	for _, e := range tr.Events {
		if e.Type != trace.EvIteration {
			continue
		}
		if !e.HasCounters {
			return nil, fmt.Errorf("folding: iteration marker without counters at rank %d time %d", e.Rank, e.Time)
		}
		marks[e.Rank] = append(marks[e.Rank], e)
	}
	if len(marks) == 0 {
		return nil, fmt.Errorf("folding: trace has no iteration markers")
	}

	var out []Instance
	for rank := int32(0); rank < int32(tr.Meta.Ranks); rank++ {
		ms := marks[rank]
		for k := 0; k+1 < len(ms); k++ {
			in := Instance{
				Rank:   rank,
				Start:  ms[k].Time,
				End:    ms[k+1].Time,
				Base:   ms[k].Counters,
				Totals: ms[k+1].Counters.Sub(ms[k].Counters),
			}
			if in.End > in.Start {
				out = append(out, in)
			}
		}
	}

	// Attach samples: per rank two-pointer over the (time-sorted) samples.
	perRank := make(map[int32][]trace.Sample)
	for _, s := range tr.Samples {
		perRank[s.Rank] = append(perRank[s.Rank], s)
	}
	byRank := make(map[int32][]int)
	for i := range out {
		byRank[out[i].Rank] = append(byRank[out[i].Rank], i)
	}
	for rank, idx := range byRank {
		samples := perRank[rank]
		si := 0
		for _, i := range idx {
			in := &out[i]
			for si < len(samples) && samples[si].Time < in.Start {
				si++
			}
			lo := si
			for si < len(samples) && samples[si].Time < in.End {
				si++
			}
			if si > lo {
				in.Samples = samples[lo:si]
			}
		}
	}
	return out, nil
}
