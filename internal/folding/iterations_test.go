package folding

import (
	"testing"

	"repro/internal/counters"
	"repro/internal/trace"
)

// buildIterTrace makes a 2-rank trace with 4 iterations of 1 ms each;
// instructions accrue only in the first 60% of every iteration (the rest
// models an MPI wait), at a uniform rate.
func buildIterTrace(t *testing.T) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder("it", 2)
	const iterNS = 1_000_000
	const insPerIter = 600_000
	for r := int32(0); r < 2; r++ {
		var ins int64
		var sampleT trace.Time
		for k := 0; k < 5; k++ { // 5 markers = 4 complete iterations
			t0 := trace.Time(k * iterNS)
			b.EventC(r, t0, trace.EvIteration, int64(k+1), []int64{ins, int64(t0) * 2, 0, 0, 0})
			if k == 4 {
				break
			}
			// 10 samples inside the iteration.
			for s := 1; s <= 10; s++ {
				sampleT = t0 + trace.Time(s*iterNS/11)
				u := float64(sampleT-t0) / iterNS
				frac := u / 0.6
				if frac > 1 {
					frac = 1
				}
				b.Sample(r, sampleT, []int64{ins + int64(frac*insPerIter), int64(sampleT) * 2, 0, 0, 0}, nil)
			}
			ins += insPerIter
		}
	}
	return b.Build()
}

func TestInstancesFromIterations(t *testing.T) {
	tr := buildIterTrace(t)
	instances, err := InstancesFromIterations(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 8 { // 2 ranks × 4 iterations
		t.Fatalf("instances = %d, want 8", len(instances))
	}
	for _, in := range instances {
		if in.Duration() != 1_000_000 {
			t.Fatalf("duration = %d", in.Duration())
		}
		if in.Totals[counters.TotIns] != 600_000 {
			t.Fatalf("totals = %d", in.Totals[counters.TotIns])
		}
		if len(in.Samples) != 10 {
			t.Fatalf("samples = %d", len(in.Samples))
		}
	}
}

func TestIterationFoldingRecoversComputeThenWait(t *testing.T) {
	tr := buildIterTrace(t)
	instances, err := InstancesFromIterations(tr)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Fold(instances, Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	// All instructions accrue in the first 60%: the cumulative curve must
	// reach ~1 at x = 0.6 and stay flat after.
	at06 := res.Cumulative[60]
	if at06 < 0.95 {
		t.Fatalf("cumulative at 0.6 = %g, want ≈ 1", at06)
	}
	for i := 75; i <= 100; i++ {
		if res.Rate[i] > 0.15*res.MeanTotal/res.MeanDuration {
			t.Fatalf("rate at %g = %g, want ≈ 0 in the MPI tail", res.Grid[i], res.Rate[i])
		}
	}
	// A breakpoint near 0.6 marks the compute/wait boundary.
	found := false
	for _, bp := range res.Breakpoints {
		if bp > 0.5 && bp < 0.7 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no compute/wait breakpoint near 0.6: %v", res.Breakpoints)
	}
}

func TestInstancesFromIterationsErrors(t *testing.T) {
	if _, err := InstancesFromIterations(&trace.Trace{}); err == nil {
		t.Fatal("no-rank trace accepted")
	}
	// No markers.
	b := trace.NewBuilder("x", 1)
	b.Event(0, 10, trace.EvMPI, int64(trace.MPIBarrier))
	b.Event(0, 20, trace.EvMPI, 0)
	if _, err := InstancesFromIterations(b.Build()); err == nil {
		t.Fatal("markerless trace accepted")
	}
	// Markers without counters.
	b2 := trace.NewBuilder("x", 1)
	b2.Event(0, 10, trace.EvIteration, 1)
	b2.Event(0, 20, trace.EvIteration, 2)
	if _, err := InstancesFromIterations(b2.Build()); err == nil {
		t.Fatal("counterless markers accepted")
	}
}

func TestInstancesFromIterationsSingleMarker(t *testing.T) {
	b := trace.NewBuilder("x", 1)
	b.EventC(0, 10, trace.EvIteration, 1, []int64{0})
	instances, err := InstancesFromIterations(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if len(instances) != 0 {
		t.Fatalf("single marker produced %d instances", len(instances))
	}
}
