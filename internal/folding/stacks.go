package folding

import (
	"sort"
)

// StackResult is the folded call-stack view of a phase: for each
// normalized-time bin, the fraction of samples whose innermost frame was
// each source region. It reveals which code runs at each point of the
// phase — the "unveiling" of the paper's title.
type StackResult struct {
	// Bins is the number of normalized-time bins.
	Bins int
	// Regions lists the distinct innermost-frame region ids observed,
	// ordered by total share descending.
	Regions []uint32
	// Share[b][r] is the fraction of bin b's samples attributed to
	// Regions[r] (rows of empty bins are all zero).
	Share [][]float64
	// Dominant[b] is the region id with the largest share in bin b, or 0
	// for empty bins.
	Dominant []uint32
	// Samples is the total number of folded stack samples.
	Samples int
}

// FoldStacks folds the call stacks of the instances' samples into bins
// normalized-time bins. Samples without a stack are ignored.
func FoldStacks(instances []Instance, bins int) *StackResult {
	if bins < 1 {
		bins = 50
	}
	counts := make([]map[uint32]int, bins)
	for i := range counts {
		counts[i] = make(map[uint32]int)
	}
	total := 0
	for i := range instances {
		in := &instances[i]
		d := float64(in.Duration())
		if d <= 0 {
			continue
		}
		for _, s := range in.Samples {
			if len(s.Stack) == 0 {
				continue
			}
			x := float64(s.Time-in.Start) / d
			b := int(x * float64(bins))
			if b < 0 {
				b = 0
			}
			if b >= bins {
				b = bins - 1
			}
			counts[b][s.Stack[0]]++
			total++
		}
	}
	return NewStackResult(counts, total)
}

// NewStackResult assembles a StackResult from per-bin innermost-frame
// counts — the shared back end of FoldStacks and the streaming
// online.StackFolder, so both produce identically-shaped views.
func NewStackResult(counts []map[uint32]int, total int) *StackResult {
	bins := len(counts)
	totalPerRegion := make(map[uint32]int)
	for _, c := range counts {
		for id, n := range c {
			totalPerRegion[id] += n
		}
	}

	res := &StackResult{Bins: bins, Samples: total}
	for id := range totalPerRegion {
		res.Regions = append(res.Regions, id)
	}
	sort.Slice(res.Regions, func(a, b int) bool {
		ta, tb := totalPerRegion[res.Regions[a]], totalPerRegion[res.Regions[b]]
		if ta != tb {
			return ta > tb
		}
		return res.Regions[a] < res.Regions[b]
	})
	idx := make(map[uint32]int, len(res.Regions))
	for i, id := range res.Regions {
		idx[id] = i
	}

	res.Share = make([][]float64, bins)
	res.Dominant = make([]uint32, bins)
	for b := 0; b < bins; b++ {
		res.Share[b] = make([]float64, len(res.Regions))
		binTotal := 0
		for _, n := range counts[b] {
			binTotal += n
		}
		if binTotal == 0 {
			continue
		}
		bestN := 0
		var bestID uint32
		for id, n := range counts[b] {
			res.Share[b][idx[id]] = float64(n) / float64(binTotal)
			if n > bestN || (n == bestN && id < bestID) {
				bestN, bestID = n, id
			}
		}
		res.Dominant[b] = bestID
	}
	return res
}

// AttributeRegions combines a folded counter curve with the folded
// call-stack shares to attribute the phase's counter to source regions:
// region r's share is ∫ rate(x)·share_r(x) dx over normalized time. This
// is how the methodology reports not just *when* a metric accrues inside
// the phase but *which code* accrues it — e.g. "stencil_update retires
// 68% of the instructions in 55% of the time". The result maps region id
// to its fraction of the phase total (fractions sum to ≈1 when every bin
// has stack samples).
func AttributeRegions(res *Result, st *StackResult) map[uint32]float64 {
	out := make(map[uint32]float64, len(st.Regions))
	if len(res.Grid) < 2 || st.Bins == 0 {
		return out
	}
	for i := 0; i+1 < len(res.Grid); i++ {
		x0, x1 := res.Grid[i], res.Grid[i+1]
		mid := (x0 + x1) / 2
		// Counter mass in this grid cell (fraction of the phase total).
		mass := res.Cumulative[i+1] - res.Cumulative[i]
		b := int(mid * float64(st.Bins))
		if b >= st.Bins {
			b = st.Bins - 1
		}
		for ri, id := range st.Regions {
			if s := st.Share[b][ri]; s > 0 {
				out[id] += mass * s
			}
		}
	}
	return out
}

// Transitions returns the bin boundaries (as normalized time) where the
// dominant region changes, skipping empty bins — the sub-phase boundaries
// visible through the call-stack lens.
func (r *StackResult) Transitions() []float64 {
	var out []float64
	var prev uint32
	seen := false
	for b, d := range r.Dominant {
		if d == 0 {
			continue
		}
		if seen && d != prev {
			out = append(out, float64(b)/float64(r.Bins))
		}
		prev, seen = d, true
	}
	return out
}
