package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/pipeline"
	"repro/internal/rescache"
	"repro/internal/trace"
)

// This file is the glue between the HTTP handlers and the
// content-addressed result cache (internal/rescache): request bodies
// are hashed while they are read (never buffered twice), the digest
// plus the canonical options fingerprint (core.Options.Fingerprint)
// form the cache key, and concurrent identical requests coalesce onto
// one pipeline run. Every cached response carries a
// Cache-Status: hit|miss|coalesced header; ?nocache=1 takes the exact
// pre-cache streaming path.

// nocacheRequested reports whether the request opted out of the result
// cache with ?nocache=. Bypassed requests never read or write the
// cache and stream through the original analysis path.
func nocacheRequested(r *http.Request) bool {
	v := r.URL.Query().Get("nocache")
	if v == "" {
		return false
	}
	on, err := strconv.ParseBool(v)
	return err == nil && on
}

// spoolBody reads the request body to EOF into memory, hashing it on
// the way — the one buffering pass a cached upload needs (the digest
// comes for free from the same bytes). The copy runs in a pump
// goroutine so the handler keeps observing its context (a client that
// disconnects mid-upload is noticed immediately, preserving the
// cancellation metrics contract) and the Config.Stall watchdog (an
// upload that goes quiet without disconnecting still times out to 408,
// which the pipeline watchdog cannot cover here because it only starts
// after the spool completes).
//
// On the context and stall paths the returned buffer is nil and MUST
// NOT be reconstructed from closure state: the pump still owns it and
// only lets go when the server closes the request body. On the
// read-error path the pump has exited, so the partial buffer and its
// digest are returned alongside the error for lenient-mode salvage.
func (s *Server) spoolBody(ctx context.Context, body io.Reader) (*bytes.Buffer, string, error) {
	dr := trace.NewDigestReader(body)
	buf := &bytes.Buffer{}
	done := make(chan error, 1)
	go func() {
		_, err := io.Copy(buf, dr)
		done <- err
	}()

	var stallC <-chan time.Time
	if s.cfg.Stall > 0 {
		t := time.NewTicker(s.cfg.Stall)
		defer t.Stop()
		stallC = t.C
	}
	var lastN int64
	for {
		select {
		case err := <-done:
			return buf, dr.Sum(), err
		case <-ctx.Done():
			return nil, "", ctx.Err()
		case <-stallC:
			n := dr.BytesRead()
			if n == lastN {
				return nil, "", fmt.Errorf("upload made no progress for %v: %w",
					s.cfg.Stall, pipeline.ErrStalled)
			}
			lastN = n
		}
	}
}

// analyzeCached is the cache-enabled tail of handleAnalyze: digest the
// trace, look the (digest, options fingerprint) key up, and only run
// the pipeline on a miss — with concurrent identical requests
// coalesced onto that one run. The cached value is the exact JSON body
// the streaming path would have written, so hits and misses are
// byte-identical.
func (s *Server) analyzeCached(w http.ResponseWriter, r *http.Request, ctx context.Context, opts core.Options, body *limitTrackingReader, input io.Reader, src string) {
	var (
		spooled    []byte
		fromUpload = src == "upload"
		digest     string
	)
	if fromUpload {
		buf, sum, err := s.spoolBody(ctx, body)
		if err != nil {
			switch {
			case body.limit != nil:
				s.analyzeError(w, r, src, body.limit)
				return
			case ctx.Err() != nil:
				s.analyzeError(w, r, src, ctx.Err())
				return
			case opts.Lenient && buf != nil && buf.Len() > 0:
				// The transport failed mid-upload but salvage decoding is
				// on: analyze the prefix that did arrive. The digest covers
				// exactly those bytes, so content-addressing stays sound.
			default:
				s.analyzeError(w, r, src, err)
				return
			}
		}
		spooled, digest = buf.Bytes(), sum
	} else {
		// ?path= files arrive as seekable readers: hash in place and
		// rewind instead of spooling, keeping memory bounded.
		rs, ok := input.(io.ReadSeeker)
		if !ok {
			s.analyzeError(w, r, src, fmt.Errorf("local trace %s is not seekable", src))
			return
		}
		dr := trace.NewDigestReader(rs)
		if _, err := io.Copy(io.Discard, dr); err != nil {
			s.analyzeError(w, r, src, err)
			return
		}
		if _, err := rs.Seek(0, io.SeekStart); err != nil {
			s.analyzeError(w, r, src, err)
			return
		}
		digest = dr.Sum()
	}

	key := rescache.Key("report", digest, opts.Fingerprint())
	data, status, err := s.cache.GetOrCompute(ctx, key, func(cctx context.Context) (rescache.Result, error) {
		rd := input
		if fromUpload {
			rd = bytes.NewReader(spooled)
		}
		start := time.Now()
		rep, aerr := core.AnalyzeStreamContext(cctx, rd, opts)
		if aerr != nil {
			return rescache.Result{}, aerr
		}
		s.recordReport(rep)
		s.cfg.Logger.Info("analysis done", "source", src, "app", rep.App,
			"ranks", rep.Ranks, "bursts", rep.Bursts, "phases", len(rep.Phases),
			"online", rep.Online, "wall", time.Since(start))
		out, merr := json.Marshal(rep)
		if merr != nil {
			return rescache.Result{}, fmt.Errorf("encode report: %w", merr)
		}
		return rescache.Result{Data: append(out, '\n')}, nil
	})
	if err != nil {
		s.analyzeError(w, r, src, err)
		return
	}
	w.Header().Set("Cache-Status", status.String())
	// The content digest keys the cached report; echoing it lets
	// clients diff this run later by reference (/v1/diff?digest_a=…)
	// without re-uploading the trace.
	w.Header().Set("Trace-Digest", digest)
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.cfg.Logger.Debug("response write failed", "err", err)
	}
}

// partialCached is the cache-enabled tail of handlePartial, used when
// the coordinator declared the shard's content digest up front
// (?digest=). A hit answers without reading the upload at all — after
// a worker died mid-fan-out, the re-upload only recomputes the lost
// shard. On a miss the shard streams through the map pipeline while
// being hashed; if the received bytes do not match the declared
// digest, the partial is served but never stored (a mislabeled upload
// must not poison the key).
func (s *Server) partialCached(w http.ResponseWriter, r *http.Request, ctx context.Context, opts core.Options, spec core.ShardSpec, body *limitTrackingReader, declared string) {
	key := rescache.Key("partial", declared,
		spec.Mode.String(), strconv.Itoa(spec.Count), strconv.Itoa(spec.Index),
		strconv.FormatBool(spec.Resume), opts.Fingerprint())
	data, status, err := s.cache.GetOrCompute(ctx, key, func(cctx context.Context) (rescache.Result, error) {
		dr := trace.NewDigestReader(body)
		start := time.Now()
		p, merr := core.MapShardStreamContext(cctx, dr, spec, opts)
		if merr != nil {
			return rescache.Result{}, merr
		}
		// The decoder's readahead may stop short of EOF; the digest must
		// cover every uploaded byte before it is compared.
		if _, derr := io.Copy(io.Discard, dr); derr != nil {
			return rescache.Result{}, derr
		}
		s.reg.Counter("foldsvc_partials_total",
			"Shard map requests that ran to completion.").Inc()
		s.cfg.Logger.Info("partial done", "app", p.Meta.App, "shard", spec.Index,
			"shards", spec.Count, "bursts", p.Bursts, "kept", len(p.Kept),
			"wall", time.Since(start))
		out, jerr := json.Marshal(p)
		if jerr != nil {
			return rescache.Result{}, fmt.Errorf("encode partial: %w", jerr)
		}
		return rescache.Result{Data: append(out, '\n'), NoStore: dr.Sum() != declared}, nil
	})
	if err != nil {
		if body.limit != nil {
			err = body.limit
		}
		s.analyzeError(w, r, "partial-upload", err)
		return
	}
	w.Header().Set("Cache-Status", status.String())
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.cfg.Logger.Debug("response write failed", "err", err)
	}
}
