package foldsvc

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"repro/internal/trace"
)

// postAnalyze uploads enc to the server and returns the status, the
// Cache-Status header and the body.
func postAnalyze(t *testing.T, base, query string, enc []byte) (int, string, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/analyze"+query, "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Cache-Status"), body
}

// TestCacheEquivalence is the acceptance gate for the result cache:
// for every analysis path — strict/lenient × row/columnar on a single
// node, plus the coordinator-sharded path — the cached Report must be
// byte-identical to the freshly computed one (?nocache=1), and a
// repeat request must hit. `make check` runs this test explicitly.
func TestCacheEquivalence(t *testing.T) {
	_, enc := genTrace(t, 4, 40)
	srv := httptest.NewServer(NewServer(Config{Jobs: 16}))
	defer srv.Close()

	// Row and columnar layouts are result-invariant (locked by
	// TestColumnarEquivalence), so they deliberately share one cache
	// entry per decode mode: the columnar request HITS the entry the
	// row request stored — which is exactly the cross-path
	// byte-identity the cache key design promises. Decode mode
	// (lenient) IS part of the key, so the lenient rows miss afresh.
	for _, tc := range []struct{ name, query, first string }{
		{"strict-row", "?columnar=0", "miss"},
		{"strict-columnar", "?columnar=1", "hit"},
		{"lenient-row", "?lenient=1&columnar=0", "miss"},
		{"lenient-columnar", "?lenient=1&columnar=1", "hit"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			code, cs, fresh := postAnalyze(t, srv.URL, tc.query+"&nocache=1", enc)
			if code != http.StatusOK {
				t.Fatalf("nocache status %d: %s", code, fresh)
			}
			if cs != "" {
				t.Fatalf("nocache request got Cache-Status %q; want none", cs)
			}
			code, cs, miss := postAnalyze(t, srv.URL, tc.query, enc)
			if code != http.StatusOK || cs != tc.first {
				t.Fatalf("first cached request: status %d, Cache-Status %q; want %q", code, cs, tc.first)
			}
			code, cs, hit := postAnalyze(t, srv.URL, tc.query, enc)
			if code != http.StatusOK || cs != "hit" {
				t.Fatalf("second cached request: status %d, Cache-Status %q", code, cs)
			}
			if !bytes.Equal(miss, hit) {
				t.Fatal("hit body differs from first cached body")
			}
			// The fresh body differs only in the run-varying Pipeline
			// stage metrics; everything semantic must be deep-equal
			// (bit-identical floats survive the JSON round trip).
			if got, want := asGeneric(t, hit), asGeneric(t, fresh); !reflect.DeepEqual(got, want) {
				for k := range want {
					if !reflect.DeepEqual(got[k], want[k]) {
						t.Errorf("cached report field %s differs from fresh", k)
					}
				}
				t.Fatal("cached report differs from fresh analysis")
			}
		})
	}

	// The coordinator-sharded path shares the same key shape as the
	// single-node server (TestShardedEquivalence locks bit-identical
	// reports for any shard count) — verify its cached report against a
	// fresh single-node analysis.
	t.Run("sharded", func(t *testing.T) {
		workers := newWorkerFarm(t, 3)
		coord := httptest.NewServer(NewServer(Config{Workers: workers, Shards: 3, Jobs: 16}))
		defer coord.Close()

		_, _, fresh := postAnalyze(t, srv.URL, "?nocache=1", enc)
		code, cs, miss := postAnalyze(t, coord.URL, "", enc)
		if code != http.StatusOK || cs != "miss" {
			t.Fatalf("coordinated miss: status %d, Cache-Status %q", code, cs)
		}
		code, cs, hit := postAnalyze(t, coord.URL, "", enc)
		if code != http.StatusOK || cs != "hit" {
			t.Fatalf("coordinated hit: status %d, Cache-Status %q", code, cs)
		}
		if !bytes.Equal(miss, hit) {
			t.Fatal("coordinated hit body differs from miss body")
		}
		if got, want := asGeneric(t, hit), asGeneric(t, fresh); !reflect.DeepEqual(got, want) {
			t.Fatal("coordinated cached report differs from single-node fresh analysis")
		}
	})
}

// gatedBody streams all of enc except the last byte, then blocks until
// release is closed — so N concurrent uploads can be held mid-spool
// and released together, guaranteeing they all land on one in-flight
// computation.
type gatedBody struct {
	head    io.Reader
	tail    byte
	release <-chan struct{}
	done    bool
}

func (g *gatedBody) Read(p []byte) (int, error) {
	if n, err := g.head.Read(p); n > 0 || err != io.EOF {
		return n, err
	}
	if g.done {
		return 0, io.EOF
	}
	<-g.release
	g.done = true
	p[0] = g.tail
	return 1, nil
}

// TestCacheSingleflight is the coalescing acceptance test: 16
// goroutines upload the same trace concurrently, exactly one pipeline
// run happens (stage metrics), every response is byte-identical, and
// foldsvc_cache_coalesced_total ends at N-1. Run under -race by
// `make check`.
func TestCacheSingleflight(t *testing.T) {
	_, enc := genTrace(t, 4, 60)
	srv := httptest.NewServer(NewServer(Config{Jobs: 32}))
	defer srv.Close()

	const n = 16
	release := make(chan struct{})
	type result struct {
		code   int
		status string
		body   []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body := &gatedBody{
				head:    bytes.NewReader(enc[:len(enc)-1]),
				tail:    enc[len(enc)-1],
				release: release,
			}
			req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/analyze", body)
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			data, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = result{resp.StatusCode, resp.Header.Get("Cache-Status"), data}
		}(i)
	}

	// Hold the gate until all 16 uploads are in flight (spooling their
	// bodies), then let them finish together: the followers reach the
	// cache within microseconds of the leader, far inside the leader's
	// pipeline run.
	waitFor(t, "all uploads in flight", func() bool {
		return metricValue(t, srv.URL, "foldsvc_inflight_jobs") == n
	})
	close(release)
	wg.Wait()

	var miss, coalesced int
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.code, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d body differs", i)
		}
		switch r.status {
		case "miss":
			miss++
		case "coalesced":
			coalesced++
		default:
			t.Fatalf("request %d: Cache-Status %q", i, r.status)
		}
	}
	if miss != 1 || coalesced != n-1 {
		t.Fatalf("%d misses, %d coalesced; want 1 and %d", miss, coalesced, n-1)
	}
	if got := metricValue(t, srv.URL, "foldsvc_analyze_requests_total"); got != 1 {
		t.Fatalf("foldsvc_analyze_requests_total = %g; want exactly one pipeline run", got)
	}
	if got := metricValue(t, srv.URL, `foldsvc_cache_coalesced_total`); got != n-1 {
		t.Fatalf("foldsvc_cache_coalesced_total = %g; want %d", got, n-1)
	}
	if got := metricValue(t, srv.URL, `foldsvc_cache_misses_total`); got != 1 {
		t.Fatalf("foldsvc_cache_misses_total = %g; want 1", got)
	}
}

// TestCachePartialWorker covers the worker-side shard cache: a
// /v1/partial request that declares its content digest is cached (the
// repeat answers without re-running the map), and a request whose body
// does not match the declared digest is served but never stored.
func TestCachePartialWorker(t *testing.T) {
	_, enc := genTrace(t, 2, 30)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4}))
	defer srv.Close()

	digest := trace.DigestBytes(enc)
	query := "?shard=0&shards=1&mode=time&digest=" + digest

	post := func(q string) (int, string, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/partial"+q, "application/octet-stream", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header.Get("Cache-Status"), body
	}

	code, cs, miss := post(query)
	if code != http.StatusOK || cs != "miss" {
		t.Fatalf("first partial: status %d, Cache-Status %q: %s", code, cs, miss)
	}
	code, cs, hit := post(query)
	if code != http.StatusOK || cs != "hit" {
		t.Fatalf("second partial: status %d, Cache-Status %q", code, cs)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatal("cached partial differs from computed partial")
	}
	if got := metricValue(t, srv.URL, "foldsvc_partials_total"); got != 1 {
		t.Fatalf("foldsvc_partials_total = %g; want 1 (hit must not re-map)", got)
	}

	// A mislabeled upload: the declared digest does not match the body.
	// The partial is still computed and served, but poisoning the key is
	// refused — the same declaration misses again and re-maps.
	wrong := "?shard=0&shards=1&mode=time&digest=" + trace.DigestBytes([]byte("not the shard"))
	if code, cs, _ := post(wrong); code != http.StatusOK || cs != "miss" {
		t.Fatalf("mismatched digest: status %d, Cache-Status %q", code, cs)
	}
	if code, cs, _ := post(wrong); code != http.StatusOK || cs != "miss" {
		t.Fatalf("mismatched digest repeat: status %d, Cache-Status %q (entry was stored)", code, cs)
	}
	if got := metricValue(t, srv.URL, "foldsvc_partials_total"); got != 3 {
		t.Fatalf("foldsvc_partials_total = %g; want 3", got)
	}

	// Without a declared digest the cache is bypassed entirely.
	if code, cs, _ := post("?shard=0&shards=1&mode=time"); code != http.StatusOK || cs != "" {
		t.Fatalf("undeclared digest: status %d, Cache-Status %q; want no header", code, cs)
	}
}

// TestCacheDiskTier proves warm state survives a restart: a second
// server instance sharing the same -cache-dir serves a hit for a trace
// only the first instance analyzed.
func TestCacheDiskTier(t *testing.T) {
	_, enc := genTrace(t, 2, 30)
	dir := t.TempDir()

	first := httptest.NewServer(NewServer(Config{Jobs: 4, CacheDir: dir}))
	code, cs, miss := postAnalyze(t, first.URL, "", enc)
	first.Close()
	if code != http.StatusOK || cs != "miss" {
		t.Fatalf("first instance: status %d, Cache-Status %q", code, cs)
	}

	second := httptest.NewServer(NewServer(Config{Jobs: 4, CacheDir: dir}))
	defer second.Close()
	code, cs, hit := postAnalyze(t, second.URL, "", enc)
	if code != http.StatusOK || cs != "hit" {
		t.Fatalf("second instance: status %d, Cache-Status %q", code, cs)
	}
	if !bytes.Equal(miss, hit) {
		t.Fatal("disk-tier hit differs from original response")
	}
	if got := metricValue(t, second.URL, `foldsvc_cache_hits_total{tier="disk"}`); got != 1 {
		t.Fatalf(`foldsvc_cache_hits_total{tier="disk"} = %g; want 1`, got)
	}
	if got := metricValue(t, second.URL, "foldsvc_analyze_requests_total"); got != 0 {
		t.Fatalf("second instance ran %g analyses; want 0", got)
	}
}

// TestCacheNocacheBypass: ?nocache=1 requests never read or write the
// cache — every one runs the pipeline and none carries a Cache-Status
// header.
func TestCacheNocacheBypass(t *testing.T) {
	_, enc := genTrace(t, 2, 30)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4}))
	defer srv.Close()

	for i := 0; i < 2; i++ {
		code, cs, body := postAnalyze(t, srv.URL, "?nocache=1", enc)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, body)
		}
		if cs != "" {
			t.Fatalf("request %d: Cache-Status %q; want none", i, cs)
		}
	}
	if got := metricValue(t, srv.URL, "foldsvc_analyze_requests_total"); got != 2 {
		t.Fatalf("foldsvc_analyze_requests_total = %g; want 2 (no caching)", got)
	}
	if got := metricValue(t, srv.URL, "foldsvc_cache_misses_total"); got != 0 {
		t.Fatalf("foldsvc_cache_misses_total = %g; want 0", got)
	}
}

// TestCacheDisabled: a negative CacheMaxBytes turns the cache off
// entirely — requests behave exactly as before the cache existed.
func TestCacheDisabled(t *testing.T) {
	_, enc := genTrace(t, 2, 30)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4, CacheMaxBytes: -1}))
	defer srv.Close()

	for i := 0; i < 2; i++ {
		code, cs, body := postAnalyze(t, srv.URL, "", enc)
		if code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, code, body)
		}
		if cs != "" {
			t.Fatalf("request %d: Cache-Status %q; want none", i, cs)
		}
	}
	if got := metricValue(t, srv.URL, "foldsvc_analyze_requests_total"); got != 2 {
		t.Fatalf("foldsvc_analyze_requests_total = %g; want 2", got)
	}
}
