package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// ErrBreakerOpen is returned by Client.Analyze while the circuit
// breaker is open: enough consecutive attempts failed that the client
// stops hammering the daemon until the cooldown elapses. Callers test
// with errors.Is and either back off themselves or surface the outage.
var ErrBreakerOpen = errors.New("foldsvc: circuit breaker open")

// ClientConfig collects the retrying client's tunables. The zero value
// of every field selects a production-reasonable default.
type ClientConfig struct {
	// BaseURL is the daemon's root URL (e.g. "http://host:9090"); the
	// client appends /v1/analyze. Required.
	BaseURL string
	// HTTPClient is the transport; nil selects http.DefaultClient.
	HTTPClient *http.Client
	// MaxAttempts bounds tries per Analyze call, first attempt included
	// (default 4). Only retryable failures — transport errors, 429, 5xx —
	// consume extra attempts; other HTTP errors fail immediately.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay (default 100ms);
	// subsequent retries double it, capped at MaxBackoff (default 5s).
	// The actual sleep is equal-jittered (uniform in [d/2, d]) so a fleet
	// of clients does not retry in lockstep. A server-provided
	// Retry-After overrides the computed delay when larger.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// AttemptTimeout bounds each individual attempt; 0 means only the
	// caller's context limits an attempt. It guards retries against a
	// server that accepts the connection and then hangs.
	AttemptTimeout time.Duration
	// BreakerThreshold opens the circuit breaker after this many
	// consecutive failed attempts (default 5); BreakerCooldown is how
	// long it stays open before a probe is allowed through (default 10s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Registry, when non-nil, receives the client's observability
	// counters (foldsvc_client_retries_total,
	// foldsvc_client_breaker_trips_total, foldsvc_client_breaker_open).
	Registry *obs.Registry
	// Seed makes the backoff jitter reproducible; 0 selects a fixed
	// default (jitter needs to decorrelate clients, not be secret).
	Seed uint64
}

// Client calls a foldsvc daemon with capped-exponential-backoff
// retries, Retry-After awareness, per-attempt timeouts, and a
// consecutive-failure circuit breaker. It is safe for concurrent use.
type Client struct {
	cfg ClientConfig

	retries      *obs.Counter
	breakerTrips *obs.Counter
	breakerOpen  *obs.Gauge

	// sleep is swapped out by tests to observe requested delays without
	// actually waiting.
	sleep func(ctx context.Context, d time.Duration) error

	mu          sync.Mutex
	rngState    uint64
	consecFails int
	openUntil   time.Time
	probing     bool
}

// NewClient validates cfg, applies defaults, and returns a ready
// client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("foldsvc: client needs a BaseURL")
	}
	if _, err := url.Parse(cfg.BaseURL); err != nil {
		return nil, fmt.Errorf("foldsvc: bad BaseURL: %w", err)
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 4
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 100 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 5 * time.Second
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 5
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 10 * time.Second
	}
	if cfg.Seed == 0 {
		cfg.Seed = 0x5ca1ab1e
	}
	c := &Client{cfg: cfg, rngState: cfg.Seed}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	if cfg.Registry != nil {
		c.retries = cfg.Registry.Counter("foldsvc_client_retries_total",
			"Analyze attempts retried after a retryable failure.")
		c.breakerTrips = cfg.Registry.Counter("foldsvc_client_breaker_trips_total",
			"Times the client circuit breaker opened.")
		c.breakerOpen = cfg.Registry.Gauge("foldsvc_client_breaker_open",
			"1 while the client circuit breaker is open, else 0.")
	}
	return c, nil
}

// Analyze posts an encoded trace to the daemon's /v1/analyze and
// decodes the Report, retrying retryable failures (transport errors,
// 429 honoring Retry-After, 5xx) with capped jittered backoff. query
// carries the analysis knobs (lenient=1, online=1, ...) and may be nil.
// The trace is passed as bytes because a retry must replay the body
// from the start.
func (c *Client) Analyze(ctx context.Context, enc []byte, query url.Values) (*core.Report, error) {
	var rep core.Report
	if err := c.do(ctx, "/v1/analyze", enc, query, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Partial posts an encoded trace shard to the daemon's /v1/partial and
// decodes the mergeable core.Partial — the coordinator's worker call.
// query must carry the shard's place in the split (shard, shards, mode,
// resume) alongside the analysis knobs; retry, backoff and breaker
// behavior are identical to Analyze.
func (c *Client) Partial(ctx context.Context, enc []byte, query url.Values) (*core.Partial, error) {
	var p core.Partial
	if err := c.do(ctx, "/v1/partial", enc, query, &p); err != nil {
		return nil, err
	}
	return &p, nil
}

// do runs the shared retry loop: admit through the breaker, POST enc to
// path, decode the JSON response into out.
func (c *Client) do(ctx context.Context, path string, enc []byte, query url.Values, out any) error {
	if err := c.admit(); err != nil {
		return err
	}
	u := c.cfg.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}

	var lastErr error
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			if c.retries != nil {
				c.retries.Inc()
			}
			if err := c.sleep(ctx, c.backoff(attempt, lastErr)); err != nil {
				return fmt.Errorf("foldsvc: %w", err)
			}
		}
		raw, retryable, err := c.attempt(ctx, u, enc)
		if err == nil {
			if err := json.Unmarshal(raw, out); err != nil {
				c.noteFailure()
				return fmt.Errorf("foldsvc: decoding response: %w", err)
			}
			c.noteSuccess()
			return nil
		}
		c.noteFailure()
		lastErr = err
		if !retryable || ctx.Err() != nil {
			return lastErr
		}
	}
	return fmt.Errorf("foldsvc: %d attempts failed: %w", c.cfg.MaxAttempts, lastErr)
}

// retryAfterError carries a 429/503 response's Retry-After hint through
// to the backoff computation.
type retryAfterError struct {
	msg   string
	after time.Duration
}

func (e *retryAfterError) Error() string { return e.msg }

// attempt runs one HTTP round trip and returns the complete response
// body as one JSON value. The second return reports whether the failure
// is worth retrying; keeping the decode-into-target step out of the
// retry loop means a torn attempt can never leave stale fields behind.
func (c *Client) attempt(ctx context.Context, u string, enc []byte) (json.RawMessage, bool, error) {
	actx := ctx
	if c.cfg.AttemptTimeout > 0 {
		var cancel context.CancelFunc
		actx, cancel = context.WithTimeout(ctx, c.cfg.AttemptTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(actx, http.MethodPost, u, bytes.NewReader(enc))
	if err != nil {
		return nil, false, fmt.Errorf("foldsvc: %w", err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")

	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		// Transport-level failure: connection refused, reset, attempt
		// timeout. All retryable unless the caller's context is done.
		return nil, true, fmt.Errorf("foldsvc: %w", err)
	}
	defer resp.Body.Close()

	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("foldsvc: %s: %s", resp.Status, bytes.TrimSpace(msg))
		switch {
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			return nil, true, &retryAfterError{
				msg:   err.Error(),
				after: parseRetryAfter(resp.Header.Get("Retry-After")),
			}
		case resp.StatusCode >= 500:
			return nil, true, err
		default:
			return nil, false, err
		}
	}

	var raw json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&raw); err != nil {
		// A torn response body usually means the server died mid-write;
		// the request is safe to replay.
		return nil, true, fmt.Errorf("foldsvc: decoding response: %w", err)
	}
	return raw, false, nil
}

// parseRetryAfter reads a Retry-After header's delay-seconds form (the
// form foldsvc emits); HTTP-date forms and garbage yield 0, meaning
// "use the computed backoff".
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff computes the sleep before the attempt-th try (attempt >= 1):
// equal-jittered capped exponential, overridden upward by a server
// Retry-After hint.
func (c *Client) backoff(attempt int, lastErr error) time.Duration {
	d := c.cfg.BaseBackoff << (attempt - 1)
	if d > c.cfg.MaxBackoff || d <= 0 {
		d = c.cfg.MaxBackoff
	}
	// Equal jitter: half deterministic, half uniform, so the expected
	// delay stays d*3/4 while clients decorrelate.
	half := d / 2
	if half > 0 {
		c.mu.Lock()
		c.rngState += 0x9e3779b97f4a7c15
		z := c.rngState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		c.mu.Unlock()
		d = half + time.Duration(z%uint64(half))
	}
	var ra *retryAfterError
	if errors.As(lastErr, &ra) && ra.after > d {
		d = ra.after
	}
	return d
}

// admit applies the circuit breaker: fail fast while it is open, and
// once the cooldown has elapsed let exactly one caller through as the
// half-open probe. Concurrent callers arriving while the probe is in
// flight still fail fast — a worker that just spent a cooldown down
// should see one request, not a thundering herd.
func (c *Client) admit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.openUntil.IsZero() {
		return nil
	}
	if time.Now().Before(c.openUntil) {
		return fmt.Errorf("%w until %s", ErrBreakerOpen, c.openUntil.Format(time.RFC3339))
	}
	if c.probing {
		return fmt.Errorf("%w (half-open probe in flight)", ErrBreakerOpen)
	}
	// Half-open: this call is the probe. openUntil stays set so every
	// other caller keeps failing fast until the probe settles — success
	// closes the breaker, failure re-opens it for a fresh cooldown.
	c.probing = true
	return nil
}

// noteSuccess resets the breaker after any successful attempt.
func (c *Client) noteSuccess() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.consecFails = 0
	c.openUntil = time.Time{}
	c.probing = false
	if c.breakerOpen != nil {
		c.breakerOpen.Set(0)
	}
}

// noteFailure counts a failed attempt, opens the breaker at the
// threshold, and re-opens it when a half-open probe fails.
func (c *Client) noteFailure() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.consecFails++
	open := false
	if c.probing {
		// The probe failed: a fresh cooldown starts now.
		c.probing = false
		open = true
	} else if c.consecFails >= c.cfg.BreakerThreshold && c.openUntil.IsZero() {
		open = true
	}
	if open {
		c.openUntil = time.Now().Add(c.cfg.BreakerCooldown)
		if c.breakerTrips != nil {
			c.breakerTrips.Inc()
		}
		if c.breakerOpen != nil {
			c.breakerOpen.Set(1)
		}
	}
}
