package foldsvc

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/core"
)

// ErrSessionEnded is returned by ClientSession.Events after the daemon
// delivers the final "end" frame (drain, eviction): the session is over
// and reconnecting is pointless.
var ErrSessionEnded = errors.New("foldsvc: session ended")

// ClientSession is the client half of a live analysis session: Append
// streams chunks in (idempotent via automatic sequence numbers, safe
// under the client's retry loop), Events follows the evolving Report
// snapshots and transparently reconnects with Last-Event-ID, so a
// dropped daemon connection — or a daemon restart that replayed the
// journal — resumes without duplicated or skipped snapshots.
type ClientSession struct {
	// ID is the server-assigned session id.
	ID string
	// Fingerprint is the session's option fingerprint (matches rescache
	// keys for the same analysis options).
	Fingerprint string

	c   *Client
	seq atomic.Uint64
}

// SessionEvent is one frame of the session's SSE stream.
type SessionEvent struct {
	// ID is the monotonic snapshot id (the SSE event id).
	ID uint64
	// Report is the decoded snapshot.
	Report *core.Report
}

// OpenSession opens a live session on the daemon. query carries the
// analysis knobs, fixed for the session's life; retry, backoff and
// breaker behavior are the client's usual.
func (c *Client) OpenSession(ctx context.Context, query url.Values) (*ClientSession, error) {
	var out struct {
		ID          string
		Fingerprint string
	}
	if err := c.do(ctx, "/v1/session", nil, query, &out); err != nil {
		return nil, err
	}
	return &ClientSession{ID: out.ID, Fingerprint: out.Fingerprint, c: c}, nil
}

// Session adopts an already-open session by id — how a client resumes
// after its own restart. appended is the number of chunks already
// acknowledged (the next Append carries appended+1 as its sequence
// number, so re-sending the last unacknowledged chunk is safe).
func (c *Client) Session(id string, appended uint64) *ClientSession {
	s := &ClientSession{ID: id, c: c}
	s.seq.Store(appended)
	return s
}

// Append streams one encoded trace chunk into the session. The chunk
// carries an automatically incremented sequence number, so the retry
// loop (and a client resending after a timeout) cannot double-append:
// the daemon acknowledges a replayed sequence as a duplicate without
// re-applying it. The returned result reports the session's cumulative
// shape after the append.
func (s *ClientSession) Append(ctx context.Context, chunk []byte) (*SessionAppendResult, error) {
	seq := s.seq.Add(1)
	q := url.Values{"seq": {strconv.FormatUint(seq, 10)}}
	var res SessionAppendResult
	if err := s.c.do(ctx, "/v1/session/"+s.ID+"/append", chunk, q, &res); err != nil {
		s.seq.Add(^uint64(0)) // failed for good: the number is reusable
		return nil, err
	}
	return &res, nil
}

// SessionAppendResult mirrors the daemon's append acknowledgement.
type SessionAppendResult struct {
	Segment                int
	Duplicate              bool
	Events, Samples, Comms int
	Bytes                  int64
}

// Events follows the session's snapshot stream from after lastID (0 =
// from the oldest retained snapshot), invoking fn for every frame. It
// reconnects on dropped connections and 5xx/429 responses with the
// client's usual backoff, resuming via Last-Event-ID so no snapshot is
// delivered twice or skipped. It returns ErrSessionEnded after the
// daemon's final "end" frame, fn's error if fn fails, ctx.Err() on
// cancellation, or the last transport error once MaxAttempts
// consecutive reconnect attempts fail without progress.
func (s *ClientSession) Events(ctx context.Context, lastID uint64, fn func(SessionEvent) error) error {
	consecFails := 0
	var lastErr error
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if consecFails >= s.c.cfg.MaxAttempts {
			return fmt.Errorf("foldsvc: %d consecutive event-stream attempts failed: %w",
				consecFails, lastErr)
		}
		if consecFails > 0 {
			if s.c.retries != nil {
				s.c.retries.Inc()
			}
			if err := s.c.sleep(ctx, s.c.backoff(consecFails, lastErr)); err != nil {
				return fmt.Errorf("foldsvc: %w", err)
			}
		}

		delivered, err := s.streamOnce(ctx, &lastID, fn)
		switch {
		case err == nil:
			return ErrSessionEnded
		case errors.Is(err, ErrSessionEnded):
			return err
		case ctx.Err() != nil:
			return ctx.Err()
		case isTerminalStream(err):
			return err
		}
		if delivered {
			consecFails = 0 // the stream made progress before dropping
		}
		consecFails++
		lastErr = err
	}
}

// terminalStreamError marks stream failures that reconnecting cannot
// fix (4xx responses, fn errors).
type terminalStreamError struct{ err error }

func (e *terminalStreamError) Error() string { return e.err.Error() }
func (e *terminalStreamError) Unwrap() error { return e.err }

func isTerminalStream(err error) bool {
	var t *terminalStreamError
	return errors.As(err, &t)
}

// streamOnce runs one SSE connection until it ends. lastID advances as
// frames arrive so the next connection resumes in place. delivered
// reports whether any snapshot arrived on this connection.
func (s *ClientSession) streamOnce(ctx context.Context, lastID *uint64, fn func(SessionEvent) error) (delivered bool, err error) {
	u := s.c.cfg.BaseURL + "/v1/session/" + s.ID + "/events"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return false, &terminalStreamError{err}
	}
	req.Header.Set("Accept", "text/event-stream")
	if *lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(*lastID, 10))
	}
	resp, err := s.c.cfg.HTTPClient.Do(req)
	if err != nil {
		s.c.noteFailure()
		return false, fmt.Errorf("foldsvc: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		err := fmt.Errorf("foldsvc: %s: %s", resp.Status, strings.TrimSpace(string(msg)))
		s.c.noteFailure()
		if resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable ||
			resp.StatusCode >= 500 {
			return false, &retryAfterError{
				msg:   err.Error(),
				after: parseRetryAfter(resp.Header.Get("Retry-After")),
			}
		}
		return false, &terminalStreamError{err}
	}
	s.c.noteSuccess()

	var event strings.Builder
	var eventName string
	var eventID uint64
	flush := func() error {
		defer func() { event.Reset(); eventName = ""; eventID = 0 }()
		data := event.String()
		switch eventName {
		case "snapshot":
			rep := new(core.Report)
			if err := json.Unmarshal([]byte(data), rep); err != nil {
				return fmt.Errorf("foldsvc: snapshot %d does not decode: %w", eventID, err)
			}
			if eventID > 0 {
				*lastID = eventID
			}
			delivered = true
			if err := fn(SessionEvent{ID: eventID, Report: rep}); err != nil {
				return &terminalStreamError{err}
			}
		case "end":
			var e struct{ Reason string }
			_ = json.Unmarshal([]byte(data), &e)
			return fmt.Errorf("%w (%s)", ErrSessionEnded, e.Reason)
		}
		return nil
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return delivered, err
			}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "event: "):
			eventName = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64); err == nil {
				eventID = n
			}
		case strings.HasPrefix(line, "data: "):
			if event.Len() > 0 {
				event.WriteByte('\n')
			}
			event.WriteString(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return delivered, fmt.Errorf("foldsvc: event stream: %w", err)
	}
	return delivered, fmt.Errorf("foldsvc: event stream closed by server")
}
