package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// fakeClock replaces a client's sleep with an instant recorder so retry
// schedules can be asserted without real waiting.
type fakeClock struct {
	slept []time.Duration
}

func (f *fakeClock) sleep(ctx context.Context, d time.Duration) error {
	f.slept = append(f.slept, d)
	return ctx.Err()
}

// newTestClient builds a client against base with fast backoff and the
// fake clock installed.
func newTestClient(t *testing.T, base string, cfg ClientConfig) (*Client, *fakeClock) {
	t.Helper()
	cfg.BaseURL = base
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fc := &fakeClock{}
	c.sleep = fc.sleep
	return c, fc
}

// cannedReport is a minimal valid Report body for stub servers.
func cannedReport(t *testing.T) []byte {
	t.Helper()
	body, err := json.Marshal(&core.Report{App: "stub", Ranks: 2})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func TestClientRetries429HonoringRetryAfter(t *testing.T) {
	rep := cannedReport(t)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, "busy", http.StatusTooManyRequests)
			return
		}
		w.Write(rep)
	}))
	defer srv.Close()

	c, fc := newTestClient(t, srv.URL, ClientConfig{BaseBackoff: time.Millisecond})
	got, err := c.Analyze(context.Background(), []byte("trace"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "stub" {
		t.Fatalf("report = %+v", got)
	}
	if n := calls.Load(); n != 3 {
		t.Fatalf("server saw %d calls, want 3", n)
	}
	if len(fc.slept) != 2 {
		t.Fatalf("client slept %d times, want 2", len(fc.slept))
	}
	for i, d := range fc.slept {
		if d < 2*time.Second {
			t.Errorf("sleep %d = %v, want >= the 2s Retry-After", i, d)
		}
	}
}

func TestClientRetries5xxWithBackoff(t *testing.T) {
	rep := cannedReport(t)
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			http.Error(w, "transient", http.StatusInternalServerError)
			return
		}
		w.Write(rep)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c, fc := newTestClient(t, srv.URL, ClientConfig{
		BaseBackoff: 100 * time.Millisecond, Registry: reg,
	})
	if _, err := c.Analyze(context.Background(), []byte("trace"), nil); err != nil {
		t.Fatal(err)
	}
	if len(fc.slept) != 1 {
		t.Fatalf("slept %d times, want 1", len(fc.slept))
	}
	// Equal jitter over a 100ms base: the delay lands in [50ms, 100ms].
	if d := fc.slept[0]; d < 50*time.Millisecond || d > 100*time.Millisecond {
		t.Errorf("backoff = %v, want within [50ms, 100ms]", d)
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "foldsvc_client_retries_total 1") {
		t.Errorf("metrics lack the retry count:\n%s", buf.String())
	}
}

func TestClientDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "bad trace", http.StatusBadRequest)
	}))
	defer srv.Close()

	c, fc := newTestClient(t, srv.URL, ClientConfig{})
	_, err := c.Analyze(context.Background(), []byte("junk"), nil)
	if err == nil || !strings.Contains(err.Error(), "bad trace") {
		t.Fatalf("err = %v, want the 400 body", err)
	}
	if calls.Load() != 1 || len(fc.slept) != 0 {
		t.Fatalf("400 was retried: %d calls, %d sleeps", calls.Load(), len(fc.slept))
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	rep := cannedReport(t)
	var healthy atomic.Bool
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			w.Write(rep)
			return
		}
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	reg := obs.NewRegistry()
	c, _ := newTestClient(t, srv.URL, ClientConfig{
		MaxAttempts:      2,
		BreakerThreshold: 3,
		BreakerCooldown:  50 * time.Millisecond,
		Registry:         reg,
	})

	// First call: 2 failed attempts. Second call's first attempt is the
	// third consecutive failure — the breaker opens mid-call.
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); err == nil {
		t.Fatal("analyze succeeded against a dead server")
	}
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); err == nil {
		t.Fatal("analyze succeeded against a dead server")
	}
	before := calls.Load()
	_, err := c.Analyze(context.Background(), []byte("x"), nil)
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	if calls.Load() != before {
		t.Error("open breaker still sent requests")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	metrics := buf.String()
	if !strings.Contains(metrics, "foldsvc_client_breaker_trips_total 1") {
		t.Errorf("metrics lack the breaker trip:\n%s", metrics)
	}
	if !strings.Contains(metrics, "foldsvc_client_breaker_open 1") {
		t.Errorf("metrics do not show the breaker open:\n%s", metrics)
	}

	// After the cooldown the half-open probe goes through and a healthy
	// server closes the breaker again.
	healthy.Store(true)
	time.Sleep(60 * time.Millisecond)
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); err != nil {
		t.Fatalf("half-open probe failed: %v", err)
	}
	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "foldsvc_client_breaker_open 0") {
		t.Errorf("breaker gauge still open after recovery:\n%s", buf.String())
	}
}

func TestClientCancelledContextStopsRetrying(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer srv.Close()

	c, err := NewClient(ClientConfig{BaseURL: srv.URL, BaseBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := c.Analyze(ctx, []byte("x"), nil); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestClientWaitsOutServerBackpressure(t *testing.T) {
	// End to end against the real daemon: park its only job slot, let the
	// client hit a genuine 429 with Retry-After, then free the slot and
	// watch the retry succeed.
	_, enc := genTrace(t, 2, 20)
	srv := httptest.NewServer(NewServer(Config{Jobs: 1}))
	defer srv.Close()

	pr, pw := io.Pipe()
	uploadDone := make(chan struct{})
	go func() {
		defer close(uploadDone)
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/analyze", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write(enc[:len(enc)-1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to occupy the slot", func() bool {
		return metricValue(t, srv.URL, "foldsvc_inflight_jobs") == 1
	})

	reg := obs.NewRegistry()
	c, err := NewClient(ClientConfig{BaseURL: srv.URL, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	// Intercept the sleep: the first retry must honor the server's
	// Retry-After (1s); release the parked slot instead of waiting.
	released := false
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if d < time.Second {
			t.Errorf("retry delay %v shorter than the server's Retry-After", d)
		}
		if !released {
			released = true
			pw.Write(enc[len(enc)-1:])
			pw.Close()
			<-uploadDone
		}
		return ctx.Err()
	}

	rep, err := c.Analyze(context.Background(), enc, url.Values{"phases": {"2"}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.App != "stencil" || len(rep.Phases) == 0 {
		t.Fatalf("retried analysis returned %q with %d phases", rep.App, len(rep.Phases))
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "foldsvc_client_retries_total 1") {
		t.Errorf("client metrics lack the retry:\n%s", buf.String())
	}
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Fatal("empty BaseURL accepted")
	}
	c, err := NewClient(ClientConfig{BaseURL: "http://example.invalid"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.MaxAttempts != 4 || c.cfg.BreakerThreshold != 5 {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
}
