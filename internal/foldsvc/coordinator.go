package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/rescache"
	"repro/internal/trace"
)

// vnodesPerBackend is how many points each worker contributes to the
// consistent-hash ring; enough for an even spread with few workers.
const vnodesPerBackend = 64

// coordinator is the distributed half of a coordinator-mode server: the
// worker ring, one retrying Client (and so one circuit breaker) per
// backend, and the fan-out metrics.
type coordinator struct {
	workers []string
	clients []*Client
	ring    hashRing
	shards  int
	mode    core.ShardMode

	shardOK       *obs.Counter
	shardFailover *obs.Counter
	shardFailed   *obs.Counter
	fanoutSecs    *obs.Histogram
	reduceSecs    *obs.Histogram
}

// newCoordinator builds the ring and per-backend clients from the
// server's Config (len(cfg.Workers) > 0 is the caller's invariant).
func newCoordinator(s *Server) *coordinator {
	cfg := s.cfg
	co := &coordinator{
		workers: cfg.Workers,
		shards:  cfg.Shards,
		mode:    cfg.ShardMode,
		ring:    buildRing(cfg.Workers),
	}
	if co.shards <= 0 {
		co.shards = len(cfg.Workers)
	}
	for _, w := range cfg.Workers {
		ccfg := cfg.WorkerClient
		ccfg.BaseURL = w
		if ccfg.Registry == nil {
			ccfg.Registry = s.reg
		}
		c, err := NewClient(ccfg)
		if err != nil {
			// Config-time error: surface it at the first request instead of
			// panicking in NewServer (main validates URLs before this).
			c = nil
		}
		co.clients = append(co.clients, c)
	}
	outcome := func(v string) *obs.Counter {
		return s.reg.Counter("foldsvc_shards_total",
			"Worker shard requests issued by the coordinator, by outcome.",
			obs.Label{Name: "outcome", Value: v})
	}
	co.shardOK = outcome("ok")
	co.shardFailover = outcome("failover")
	co.shardFailed = outcome("failed")
	co.fanoutSecs = s.reg.Histogram("foldsvc_fanout_seconds",
		"Wall time of the coordinator's worker fan-out (all shards).", nil)
	co.reduceSecs = s.reg.Histogram("foldsvc_reduce_seconds",
		"Wall time of the coordinator's local reduce.", nil)
	return co
}

// hashRing is a consistent-hash ring over worker backends: points are
// vnode hashes, each owned by a backend index.
type hashRing struct {
	hashes   []uint64
	backends []int
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	io.WriteString(h, s)
	return h.Sum64()
}

func buildRing(workers []string) hashRing {
	type pt struct {
		h uint64
		b int
	}
	pts := make([]pt, 0, len(workers)*vnodesPerBackend)
	for b, w := range workers {
		for v := 0; v < vnodesPerBackend; v++ {
			pts = append(pts, pt{ringHash(w + "#" + strconv.Itoa(v)), b})
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].h < pts[j].h })
	r := hashRing{
		hashes:   make([]uint64, len(pts)),
		backends: make([]int, len(pts)),
	}
	for i, p := range pts {
		r.hashes[i] = p.h
		r.backends[i] = p.b
	}
	return r
}

// pick returns the backend owning key: the first ring point clockwise
// from the key's hash.
func (r hashRing) pick(key string) int {
	if len(r.hashes) == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return r.backends[i]
}

// next returns the first backend clockwise from key that differs from
// exclude, or -1 when there is no other backend — the failover target.
func (r hashRing) next(key string, exclude int) int {
	if len(r.hashes) == 0 {
		return -1
	}
	h := ringHash(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for off := 0; off < len(r.hashes); off++ {
		b := r.backends[(i+off)%len(r.hashes)]
		if b != exclude {
			return b
		}
	}
	return -1
}

// shardSpecFromQuery reads a /v1/partial request's place in its split
// (shard, shards, mode, resume); absent parameters mean the whole-trace
// identity shard.
func shardSpecFromQuery(q url.Values) (core.ShardSpec, error) {
	spec := core.WholeSpec()
	mode, err := core.ParseShardMode(q.Get("mode"))
	if err != nil {
		return spec, err
	}
	spec.Mode = mode
	if v := q.Get("shards"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return spec, fmt.Errorf("bad shards=%q: want a positive integer", v)
		}
		spec.Count = n
	}
	if v := q.Get("shard"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return spec, fmt.Errorf("bad shard=%q: want a non-negative integer", v)
		}
		spec.Index = n
	}
	if spec.Index >= spec.Count {
		return spec, fmt.Errorf("shard %d out of range for %d shards", spec.Index, spec.Count)
	}
	if v := q.Get("resume"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return spec, fmt.Errorf("bad resume=%q: want a boolean", v)
		}
		spec.Resume = on
	}
	return spec, nil
}

// handlePartial is the worker route of a distributed analysis: it runs
// the map half of the algebra over one uploaded shard and answers with
// the serialized mergeable core.Partial.
func (s *Server) handlePartial(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST (shard upload)", http.StatusMethodNotAllowed)
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.reject(w, "capacity", "analysis capacity exhausted, retry later",
			http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Inc()
	defer s.inflight.Dec()

	opts, err := optionsFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if opts.Stream.Online {
		http.Error(w, "online analysis cannot produce a mergeable partial",
			http.StatusBadRequest)
		return
	}
	spec, err := shardSpecFromQuery(r.URL.Query())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.StallTimeout = s.cfg.Stall
	opts.Logger = s.cfg.Logger

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	body := &limitTrackingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)}

	// When the coordinator declared the shard's content digest, the
	// result is cacheable; a hit answers without reading the upload.
	// Requests without ?digest= (or with ?nocache=) bypass the cache.
	if declared := r.URL.Query().Get("digest"); s.cache != nil && declared != "" && !nocacheRequested(r) {
		s.partialCached(w, r, ctx, opts, spec, body, declared)
		return
	}

	start := time.Now()
	p, err := core.MapShardStreamContext(ctx, body, spec, opts)
	if err != nil {
		if body.limit != nil {
			err = body.limit
		}
		s.analyzeError(w, r, "partial-upload", err)
		return
	}
	s.reg.Counter("foldsvc_partials_total",
		"Shard map requests that ran to completion.").Inc()
	s.cfg.Logger.Info("partial done", "app", p.Meta.App, "shard", spec.Index,
		"shards", spec.Count, "bursts", p.Bursts, "kept", len(p.Kept),
		"wall", time.Since(start))

	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(p); err != nil {
		s.cfg.Logger.Debug("response write failed", "err", err)
	}
}

// handleCoordinate is /v1/analyze in coordinator mode: split the upload,
// fan the shards out to the worker ring, reduce the partials locally. A
// worker shard that fails (after retries and one failover) degrades the
// Report with a per-shard warning instead of failing the request; the
// request errors only when no shard survives.
func (s *Server) handleCoordinate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "coordinator mode accepts POST trace uploads only",
			http.StatusMethodNotAllowed)
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.reject(w, "capacity", "analysis capacity exhausted, retry later",
			http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Inc()
	defer s.inflight.Dec()

	opts, err := optionsFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if opts.Stream.Online {
		http.Error(w, "online analysis cannot be distributed; send it to a worker's /v1/analyze",
			http.StatusBadRequest)
		return
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.Logger = s.cfg.Logger

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}

	body := &limitTrackingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)}
	enc, err := io.ReadAll(body)
	if err != nil {
		if body.limit != nil {
			err = body.limit
		}
		s.analyzeError(w, r, "coordinate-upload", err)
		return
	}
	// Full sha256, shared with rescache keys and disk-tier names — ring
	// routing derives its per-shard keys from the same digest instead of
	// an ad-hoc truncated hash.
	digest := trace.DigestBytes(enc)

	if s.cache != nil && !nocacheRequested(r) {
		// Same key shape as the single-node server: sharded reduction is
		// bit-identical to a single-pass analysis for any shard count
		// (locked by TestShardedEquivalence), so the paths may share
		// entries.
		key := rescache.Key("report", digest, opts.Fingerprint())
		data, status, err := s.cache.GetOrCompute(ctx, key, func(cctx context.Context) (rescache.Result, error) {
			data, lost, rerr := s.runCoordinated(cctx, r.URL.Query(), digest, enc, opts)
			if rerr != nil {
				return rescache.Result{}, rerr
			}
			// A report that lost a shard is a nondeterministic degradation
			// of the trace, not a function of the key: serve it, never
			// store it.
			return rescache.Result{Data: data, NoStore: lost}, nil
		})
		if err != nil {
			s.writeCoordError(w, r, err)
			return
		}
		w.Header().Set("Cache-Status", status.String())
		w.Header().Set("Content-Type", "application/json")
		if _, err := w.Write(data); err != nil {
			s.cfg.Logger.Debug("response write failed", "err", err)
		}
		return
	}

	data, _, err := s.runCoordinated(ctx, r.URL.Query(), digest, enc, opts)
	if err != nil {
		s.writeCoordError(w, r, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(data); err != nil {
		s.cfg.Logger.Debug("response write failed", "err", err)
	}
}

// statusError is an analysis failure that already knows its HTTP
// mapping, so coordinated errors keep their status codes (and rejection
// reasons) when they travel through the cache's singleflight layer.
type statusError struct {
	code   int
	reason string // non-empty: count under foldsvc_rejected_total{reason}
	msg    string
}

// Error implements error.
func (e *statusError) Error() string { return e.msg }

// writeCoordError maps a runCoordinated failure onto the response:
// statusError carries its own code, anything else goes through the
// shared analyzeError mapping.
func (s *Server) writeCoordError(w http.ResponseWriter, r *http.Request, err error) {
	var se *statusError
	if errors.As(err, &se) {
		if se.reason != "" {
			s.reject(w, se.reason, se.msg, se.code)
		} else {
			http.Error(w, se.msg, se.code)
		}
		return
	}
	s.analyzeError(w, r, "coordinate", err)
}

// runCoordinated is the body of a coordinated analysis: decode and
// split the trace locally, fan the shards out to the worker ring,
// reduce the partials, and marshal the Report. It reports whether any
// shard was lost (the result then must not be cached) and returns
// failures as errors — statusError where the plain analyzeError
// mapping would be wrong — so the cached and uncached paths share one
// implementation.
func (s *Server) runCoordinated(ctx context.Context, base url.Values, traceDigest string, enc []byte, opts core.Options) ([]byte, bool, error) {
	// Decode locally: the splitter needs the whole trace. Salvage stats
	// from a lenient decode are the coordinator's, not the workers' (the
	// shards it re-encodes for them are clean by construction).
	var (
		tr  *trace.Trace
		st  trace.DecodeStats
		err error
	)
	if opts.Lenient {
		tr, st, err = trace.ReadFromLenient(bytes.NewReader(enc))
	} else {
		tr, err = trace.ReadFrom(bytes.NewReader(enc))
	}
	if err != nil {
		return nil, false, err
	}
	var valWarn string
	if err := tr.Validate(); err != nil {
		if !opts.Lenient {
			return nil, false, &statusError{code: http.StatusBadRequest, msg: err.Error()}
		}
		valWarn = fmt.Sprintf("trace failed validation (%v); analyzing anyway", err)
	}

	co := s.coord
	shards := core.Split(tr, co.shards, co.mode)
	parts := make([]*core.Partial, len(shards))
	shardWarns := make([]string, len(shards))

	fanStart := time.Now()
	var wg sync.WaitGroup
	for i := range shards {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			parts[i], shardWarns[i] = co.mapShard(ctx, base, traceDigest, &shards[i])
		}(i)
	}
	wg.Wait()
	co.fanoutSecs.Observe(time.Since(fanStart).Seconds())

	alive := 0
	for _, p := range parts {
		if p != nil {
			alive++
		}
	}
	if alive == 0 {
		return nil, false, &statusError{
			code:   http.StatusBadGateway,
			reason: "all_shards_failed",
			msg:    "every worker shard failed; no partial analysis to reduce",
		}
	}

	redStart := time.Now()
	rep, err := core.Reduce(parts, nil, opts)
	co.reduceSecs.Observe(time.Since(redStart).Seconds())
	if err != nil {
		return nil, false, err
	}
	for _, warn := range shardWarns {
		if warn != "" {
			rep.Warnings = append(rep.Warnings, warn)
			rep.Degraded = true
		}
	}
	if opts.Lenient {
		rep.NoteDecode(st)
	}
	if valWarn != "" {
		rep.Warnings = append([]string{valWarn}, rep.Warnings...)
		rep.Degraded = true
	}
	s.recordReport(rep)
	s.cfg.Logger.Info("coordinated analysis done", "app", rep.App,
		"ranks", rep.Ranks, "shards", len(shards), "failed", len(shards)-alive,
		"bursts", rep.Bursts, "phases", len(rep.Phases), "wall", time.Since(fanStart))

	data, err := json.Marshal(rep)
	if err != nil {
		return nil, false, fmt.Errorf("encode report: %w", err)
	}
	return append(data, '\n'), alive < len(shards), nil
}

// mapShard sends one shard to its ring-assigned worker (with one
// failover to the next distinct backend) and returns the partial, or
// "" != warning describing how the shard was lost. The shard's own
// content digest is declared in the request (?digest=) so the worker
// can serve its cached Partial without re-reading the upload.
func (co *coordinator) mapShard(ctx context.Context, base url.Values, traceDigest string, sh *core.Shard) (*core.Partial, string) {
	var buf bytes.Buffer
	if err := sh.Trace.Write(&buf); err != nil {
		co.shardFailed.Inc()
		return nil, fmt.Sprintf("shard %d/%d could not be encoded: %v",
			sh.Spec.Index, sh.Spec.Count, err)
	}
	q := url.Values{}
	for k, vs := range base {
		if k == "path" {
			continue
		}
		q[k] = vs
	}
	q.Set("shard", strconv.Itoa(sh.Spec.Index))
	q.Set("shards", strconv.Itoa(sh.Spec.Count))
	q.Set("mode", sh.Spec.Mode.String())
	q.Set("resume", map[bool]string{false: "0", true: "1"}[sh.Spec.Resume])
	q.Set("digest", trace.DigestBytes(buf.Bytes()))

	ringKey := traceDigest + ":" + strconv.Itoa(sh.Spec.Index)
	primary := co.ring.pick(ringKey)
	if primary < 0 || co.clients[primary] == nil {
		co.shardFailed.Inc()
		return nil, fmt.Sprintf("shard %d/%d has no usable worker", sh.Spec.Index, sh.Spec.Count)
	}
	p, err := co.clients[primary].Partial(ctx, buf.Bytes(), q)
	if err == nil {
		co.shardOK.Inc()
		return p, ""
	}
	if ctx.Err() == nil {
		if alt := co.ring.next(ringKey, primary); alt >= 0 && co.clients[alt] != nil {
			if p, aerr := co.clients[alt].Partial(ctx, buf.Bytes(), q); aerr == nil {
				co.shardFailover.Inc()
				return p, ""
			}
		}
	}
	co.shardFailed.Inc()
	return nil, fmt.Sprintf("shard %d/%d failed on worker %s: %v; analysis continues without it",
		sh.Spec.Index, sh.Spec.Count, co.workers[primary], err)
}
