package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/diff"
	"repro/internal/obs"
	"repro/internal/rescache"
)

// This file implements POST /v1/diff — cross-run differential analysis
// as a service route. Each side of the comparison is either an uploaded
// trace (multipart fields "a" and "b") or a ?digest_a=/?digest_b=
// reference to a report already in the result cache, so diffing two
// previously analyzed traces costs zero re-analysis. Upload sides share
// the /v1/analyze cache keys: an upload that was analyzed before
// resolves as a hit, and a diff upload warms the cache for later
// /v1/analyze calls. Admission control, body limits, deadlines, stall
// watchdog and error mapping are identical to /v1/analyze.

// handleDiff serves POST /v1/diff.
func (s *Server) handleDiff(w http.ResponseWriter, r *http.Request) {
	// A diff of two references — cached digests or live-session
	// snapshots — reads, never computes, so GET is honest for it;
	// anything carrying a trace upload must POST.
	q := r.URL.Query()
	refd := func(side string) bool {
		return q.Get("digest_"+side) != "" || q.Get("session_"+side) != ""
	}
	if r.Method != http.MethodPost && !(r.Method == http.MethodGet && refd("a") && refd("b")) {
		http.Error(w, `use POST with multipart fields "a" and "b" (traces) and/or ?digest_a=&digest_b= / ?session_a=&session_b= references (GET works when both sides are references)`,
			http.StatusMethodNotAllowed)
		return
	}
	if s.rejectIfDraining(w) {
		return
	}

	// Same backpressure as /v1/analyze: one slot covers the whole diff.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.diffOutcome("error")
		s.reject(w, "capacity", "analysis capacity exhausted, retry later",
			http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Inc()
	defer s.inflight.Dec()

	start := time.Now()
	opts, err := optionsFromQuery(r)
	if err != nil {
		s.diffOutcome("error")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.StallTimeout = s.cfg.Stall
	opts.Logger = s.cfg.Logger
	dopts, err := diffOptionsFromQuery(r)
	if err != nil {
		s.diffOutcome("error")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}

	digests := [2]string{q.Get("digest_a"), q.Get("digest_b")}
	sessRefs := [2]string{q.Get("session_a"), q.Get("session_b")}
	var parts *multipart.Reader
	if !(refd("a") && refd("b")) {
		parts, err = r.MultipartReader()
		if err != nil {
			s.diffOutcome("error")
			http.Error(w, fmt.Sprintf(
				`sides without a digest or session reference need a multipart body with trace fields "a"/"b": %v`, err),
				http.StatusBadRequest)
			return
		}
	}

	var reports [2]*core.Report
	for i, side := range [2]string{"a", "b"} {
		if digests[i] != "" && sessRefs[i] != "" {
			s.diffOutcome("error")
			http.Error(w, fmt.Sprintf("side %q has both a digest and a session reference; pick one", side),
				http.StatusBadRequest)
			return
		}
		var rep *core.Report
		var status string
		var failed bool
		if sessRefs[i] != "" {
			rep, status, failed = s.resolveDiffSession(w, side, sessRefs[i])
		} else {
			rep, status, failed = s.resolveDiffSide(w, r, ctx, opts, side, digests[i], parts)
		}
		if failed {
			s.diffOutcome("error")
			return
		}
		w.Header().Set("Cache-Status-"+side, status)
		reports[i] = rep
	}

	d, err := diff.Compare(reports[0], reports[1], dopts)
	if err != nil {
		s.diffOutcome("error")
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}

	outcome := "ok"
	if d.DegradedA || d.DegradedB || d.Fallback {
		outcome = "degraded"
	}
	s.diffOutcome(outcome)
	s.reg.Histogram("foldsvc_diff_seconds",
		"Cross-run diff latency in seconds (resolving both sides plus the comparison).",
		nil).Observe(time.Since(start).Seconds())
	s.cfg.Logger.Info("diff done", "appA", d.AppA, "appB", d.AppB,
		"matched", len(d.Matched), "unmatchedA", len(d.UnmatchedA),
		"unmatchedB", len(d.UnmatchedB), "significant", d.Significant(),
		"outcome", outcome, "wall", time.Since(start))

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		s.cfg.Logger.Debug("response write failed", "err", err)
	}
}

// diffOutcome counts one /v1/diff request under its outcome label.
func (s *Server) diffOutcome(outcome string) {
	s.reg.Counter("foldsvc_diff_total",
		"Cross-run diff requests, by outcome (ok, degraded, error).",
		obs.Label{Name: "outcome", Value: outcome}).Inc()
}

// resolveDiffSession produces one side's Report from a live session's
// latest published snapshot — the consumer the diff layer was built
// for: compare an in-flight run against a cached baseline digest while
// the run is still appending. The snapshot Report is immutable once
// published, so no copy is needed.
func (s *Server) resolveDiffSession(w http.ResponseWriter, side, id string) (*core.Report, string, bool) {
	sess, ok := s.sessions.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown session %q for side %q", id, side), http.StatusNotFound)
		return nil, "", true
	}
	sn := sess.Latest()
	if sn == nil {
		http.Error(w, fmt.Sprintf(
			"session %q has published no snapshot yet; append records and retry", id),
			http.StatusNotFound)
		return nil, "", true
	}
	return sn.Report, "session", false
}

// resolveDiffSide produces one side's Report, either from the result
// cache (digest reference — zero re-analysis, hard 404 on a cold
// cache) or by analyzing the next multipart trace upload (sharing
// /v1/analyze's cache keys). On failure the response has been written
// and failed is true. status is the Cache-Status header value for the
// side.
func (s *Server) resolveDiffSide(w http.ResponseWriter, r *http.Request, ctx context.Context, opts core.Options, side, digest string, parts *multipart.Reader) (rep *core.Report, status string, failed bool) {
	if digest != "" {
		if s.cache == nil {
			http.Error(w, "digest references need the result cache (start foldsvc without a negative cache size)",
				http.StatusBadRequest)
			return nil, "", true
		}
		data, ok := s.cache.Get(rescache.Key("report", digest, opts.Fingerprint()))
		if !ok {
			http.Error(w, fmt.Sprintf(
				"no cached report for digest_%s=%s under these analysis options; POST the trace instead or /v1/analyze it first",
				side, digest), http.StatusNotFound)
			return nil, "", true
		}
		rep = new(core.Report)
		if err := json.Unmarshal(data, rep); err != nil {
			http.Error(w, fmt.Sprintf("cached report for digest_%s does not decode: %v", side, err),
				http.StatusInternalServerError)
			return nil, "", true
		}
		return rep, rescache.Hit.String(), false
	}

	part, err := parts.NextPart()
	if err != nil {
		http.Error(w, fmt.Sprintf(`missing multipart trace field %q: %v`, side, err), http.StatusBadRequest)
		return nil, "", true
	}
	defer part.Close()
	if part.FormName() != side {
		http.Error(w, fmt.Sprintf(`multipart fields must arrive in order "a" then "b" (digest-referenced sides omitted); got %q, want %q`,
			part.FormName(), side), http.StatusBadRequest)
		return nil, "", true
	}

	body := &limitTrackingReader{r: http.MaxBytesReader(nil, readCloser{part}, s.cfg.MaxBody)}
	src := "diff-upload-" + side
	buf, sum, err := s.spoolBody(ctx, body)
	if err != nil {
		switch {
		case body.limit != nil:
			s.analyzeError(w, r, src, body.limit)
			return nil, "", true
		case ctx.Err() != nil:
			s.analyzeError(w, r, src, ctx.Err())
			return nil, "", true
		case opts.Lenient && buf != nil && buf.Len() > 0:
			// Salvage the received prefix, exactly like /v1/analyze.
		default:
			s.analyzeError(w, r, src, err)
			return nil, "", true
		}
	}
	spooled := buf.Bytes()

	analyze := func(cctx context.Context) (rescache.Result, error) {
		astart := time.Now()
		rep, aerr := core.AnalyzeStreamContext(cctx, bytes.NewReader(spooled), opts)
		if aerr != nil {
			return rescache.Result{}, aerr
		}
		s.recordReport(rep)
		s.cfg.Logger.Info("analysis done", "source", src, "app", rep.App,
			"ranks", rep.Ranks, "bursts", rep.Bursts, "phases", len(rep.Phases),
			"online", rep.Online, "wall", time.Since(astart))
		out, merr := json.Marshal(rep)
		if merr != nil {
			return rescache.Result{}, fmt.Errorf("encode report: %w", merr)
		}
		return rescache.Result{Data: append(out, '\n')}, nil
	}

	var data []byte
	if s.cache != nil && !nocacheRequested(r) {
		var st rescache.Status
		data, st, err = s.cache.GetOrCompute(ctx, rescache.Key("report", sum, opts.Fingerprint()), analyze)
		status = st.String()
	} else {
		var res rescache.Result
		res, err = analyze(ctx)
		data, status = res.Data, "bypass"
	}
	if err != nil {
		s.analyzeError(w, r, src, err)
		return nil, "", true
	}
	rep = new(core.Report)
	if err := json.Unmarshal(data, rep); err != nil {
		http.Error(w, fmt.Sprintf("report for side %q does not decode: %v", side, err),
			http.StatusInternalServerError)
		return nil, "", true
	}
	return rep, status, false
}

// readCloser adapts a multipart part to the io.ReadCloser
// http.MaxBytesReader expects.
type readCloser struct{ io.Reader }

func (readCloser) Close() error { return nil }

// diffOptionsFromQuery maps /v1/diff-specific query parameters onto
// diff.Options — the same knobs the folddiff CLI exposes as flags.
//
//	diff_bins=N radius=F sigma=F noise_floor=F
func diffOptionsFromQuery(r *http.Request) (diff.Options, error) {
	q := r.URL.Query()
	var o diff.Options
	if v := q.Get("diff_bins"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			return o, fmt.Errorf("bad diff_bins=%q: want a positive integer", v)
		}
		o.Bins = n
	}
	for name, dst := range map[string]*float64{
		"radius":      &o.MatchRadius,
		"sigma":       &o.SigmaK,
		"noise_floor": &o.NoiseFloor,
	} {
		v := q.Get(name)
		if v == "" {
			continue
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 {
			return o, fmt.Errorf("bad %s=%q: want a non-negative number", name, v)
		}
		*dst = f
	}
	return o, nil
}
