package foldsvc

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/apps"
	"repro/internal/diff"
	"repro/internal/sim"
)

// genPerturbedTrace simulates the stencil app with a per-iteration
// rate perturbation so the two sides of a diff genuinely differ.
func genPerturbedTrace(t *testing.T, ranks, iters int, seed uint64) []byte {
	t.Helper()
	app, err := apps.ByName("stencil", iters)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(ranks)
	cfg.Seed = seed
	cfg.Perturb = sim.PerturbConfig{Factor: 1.2, Fraction: 1, Kernel: "jacobi_sweep", At: 0.6, Seed: 7}
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// multipartDiffBody packs the given sides (nil = omitted) into a
// multipart body for POST /v1/diff.
func multipartDiffBody(t *testing.T, a, b []byte) (io.Reader, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	for _, side := range []struct {
		name string
		data []byte
	}{{"a", a}, {"b", b}} {
		if side.data == nil {
			continue
		}
		fw, err := mw.CreateFormFile(side.name, side.name+".uvt")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fw.Write(side.data); err != nil {
			t.Fatal(err)
		}
	}
	if err := mw.Close(); err != nil {
		t.Fatal(err)
	}
	return &buf, mw.FormDataContentType()
}

// postDiff posts a /v1/diff request and returns status, per-side
// Cache-Status headers, and the body.
func postDiff(t *testing.T, base, query string, body io.Reader, ctype string) (int, [2]string, []byte) {
	t.Helper()
	if body == nil {
		body = bytes.NewReader(nil)
	}
	resp, err := http.Post(base+"/v1/diff"+query, ctype, body)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, [2]string{
		resp.Header.Get("Cache-Status-A"),
		resp.Header.Get("Cache-Status-B"),
	}, out
}

// TestDiffCacheReuse is the acceptance gate for digest-referenced
// diffs: after two /v1/analyze calls warmed the cache, a /v1/diff by
// digest must answer with Cache-Status hit on both sides and run ZERO
// new analyses — the whole point of sharing the /v1/analyze keyspace.
func TestDiffCacheReuse(t *testing.T) {
	_, encA := genTrace(t, 4, 60)
	encB := genPerturbedTrace(t, 4, 60, 2)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4}))
	defer srv.Close()

	var digests [2]string
	for i, enc := range [][]byte{encA, encB} {
		resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("analyze %d: status %d", i, resp.StatusCode)
		}
		digests[i] = resp.Header.Get("Trace-Digest")
		if digests[i] == "" {
			t.Fatal("analyze response carries no Trace-Digest header")
		}
	}
	if digests[0] == digests[1] {
		t.Fatal("distinct traces digested identically")
	}
	ranBefore := metricValue(t, srv.URL, "foldsvc_analyze_requests_total")
	if ranBefore != 2 {
		t.Fatalf("warmup ran %v analyses, want 2", ranBefore)
	}

	code, cs, body := postDiff(t, srv.URL,
		fmt.Sprintf("?digest_a=%s&digest_b=%s", digests[0], digests[1]), nil, "application/octet-stream")
	if code != http.StatusOK {
		t.Fatalf("diff status %d: %s", code, body)
	}
	if cs[0] != "hit" || cs[1] != "hit" {
		t.Fatalf("Cache-Status A=%q B=%q; want hit/hit", cs[0], cs[1])
	}
	var d diff.Report
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("diff body does not decode: %v", err)
	}
	if len(d.Matched) == 0 {
		t.Fatal("diff matched no phases")
	}
	if !d.Significant() {
		t.Error("perturbed run B not flagged as diverged")
	}

	if ran := metricValue(t, srv.URL, "foldsvc_analyze_requests_total"); ran != ranBefore {
		t.Fatalf("digest-referenced diff ran %v new analyses, want 0", ran-ranBefore)
	}
	if n := metricValue(t, srv.URL, `foldsvc_diff_total{outcome="ok"}`); n != 1 {
		t.Errorf(`foldsvc_diff_total{outcome="ok"} = %v, want 1`, n)
	}
}

// TestDiffUpload exercises the two-part upload form: the first diff
// misses and analyzes both sides (warming the shared analyze cache),
// a repeat hits both sides, and a subsequent /v1/analyze of one side
// hits the entry the diff stored.
func TestDiffUpload(t *testing.T) {
	_, encA := genTrace(t, 4, 60)
	encB := genPerturbedTrace(t, 4, 60, 2)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4}))
	defer srv.Close()

	body, ctype := multipartDiffBody(t, encA, encB)
	code, cs, out := postDiff(t, srv.URL, "", body, ctype)
	if code != http.StatusOK {
		t.Fatalf("diff status %d: %s", code, out)
	}
	if cs[0] != "miss" || cs[1] != "miss" {
		t.Fatalf("first diff Cache-Status A=%q B=%q; want miss/miss", cs[0], cs[1])
	}
	var first diff.Report
	if err := json.Unmarshal(out, &first); err != nil {
		t.Fatalf("diff body does not decode: %v", err)
	}

	body, ctype = multipartDiffBody(t, encA, encB)
	code, cs, out2 := postDiff(t, srv.URL, "", body, ctype)
	if code != http.StatusOK || cs[0] != "hit" || cs[1] != "hit" {
		t.Fatalf("repeat diff: status %d, Cache-Status A=%q B=%q; want 200 hit/hit", code, cs[0], cs[1])
	}
	if !bytes.Equal(out, out2) {
		t.Error("repeat diff body differs from first")
	}

	code, status, _ := postAnalyze(t, srv.URL, "", encA)
	if code != http.StatusOK || status != "hit" {
		t.Fatalf("analyze after diff upload: status %d, Cache-Status %q; want 200 hit", code, status)
	}

	// Mixed form: side A by digest (warmed above), side B uploaded.
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(encA))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	digestA := resp.Header.Get("Trace-Digest")
	body, ctype = multipartDiffBody(t, nil, encB)
	code, cs, out3 := postDiff(t, srv.URL, "?digest_a="+digestA, body, ctype)
	if code != http.StatusOK || cs[0] != "hit" || cs[1] != "hit" {
		t.Fatalf("mixed diff: status %d, Cache-Status A=%q B=%q; want 200 hit/hit", code, cs[0], cs[1])
	}
	var mixed diff.Report
	if err := json.Unmarshal(out3, &mixed); err != nil {
		t.Fatal(err)
	}
	if len(mixed.Matched) != len(first.Matched) {
		t.Errorf("mixed diff matched %d phases, upload diff %d", len(mixed.Matched), len(first.Matched))
	}
}

// TestDiffDegraded feeds a truncated side B with ?lenient=1: the diff
// must complete, mark itself degraded, and count under the degraded
// outcome.
func TestDiffDegraded(t *testing.T) {
	_, encA := genTrace(t, 4, 60)
	_, encB := genTrace(t, 4, 60)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4}))
	defer srv.Close()

	body, ctype := multipartDiffBody(t, encA, encB[:len(encB)*3/5])
	code, _, out := postDiff(t, srv.URL, "?lenient=1", body, ctype)
	if code != http.StatusOK {
		t.Fatalf("degraded diff status %d: %s", code, out)
	}
	var d diff.Report
	if err := json.Unmarshal(out, &d); err != nil {
		t.Fatal(err)
	}
	if !d.DegradedB {
		t.Error("truncated side B not marked degraded")
	}
	if n := metricValue(t, srv.URL, `foldsvc_diff_total{outcome="degraded"}`); n != 1 {
		t.Errorf(`foldsvc_diff_total{outcome="degraded"} = %v, want 1`, n)
	}
}

// TestDiffErrors locks the /v1/diff error semantics: 405 on GET, 400
// on a missing body, 404 on a cold digest reference, 400 on digest
// references without a cache, 400 on out-of-order parts and bad
// diff parameters, 413 on an oversized side.
func TestDiffErrors(t *testing.T) {
	_, enc := genTrace(t, 2, 30)
	srv := httptest.NewServer(NewServer(Config{Jobs: 4}))
	defer srv.Close()

	if resp, err := http.Get(srv.URL + "/v1/diff"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET status %d, want 405", resp.StatusCode)
		}
	}

	code, _, _ := postDiff(t, srv.URL, "", nil, "application/octet-stream")
	if code != http.StatusBadRequest {
		t.Errorf("bodyless POST status %d, want 400", code)
	}

	code, _, body := postDiff(t, srv.URL, "?digest_a=deadbeef&digest_b=deadbeef", nil, "application/octet-stream")
	if code != http.StatusNotFound {
		t.Errorf("cold digest status %d, want 404: %s", code, body)
	}

	nocache := httptest.NewServer(NewServer(Config{Jobs: 4, CacheMaxBytes: -1}))
	defer nocache.Close()
	code, _, _ = postDiff(t, nocache.URL, "?digest_a=deadbeef&digest_b=deadbeef", nil, "application/octet-stream")
	if code != http.StatusBadRequest {
		t.Errorf("digest ref without cache: status %d, want 400", code)
	}

	// Parts in the wrong order: field "b" arrives where "a" is expected.
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, _ := mw.CreateFormFile("b", "b.uvt")
	fw.Write(enc)
	fw, _ = mw.CreateFormFile("a", "a.uvt")
	fw.Write(enc)
	mw.Close()
	code, _, _ = postDiff(t, srv.URL, "", &buf, mw.FormDataContentType())
	if code != http.StatusBadRequest {
		t.Errorf("out-of-order parts status %d, want 400", code)
	}

	for _, q := range []string{"?radius=-1", "?sigma=x", "?diff_bins=0", "?noise_floor=-0.5"} {
		body, ctype := multipartDiffBody(t, enc, enc)
		code, _, _ = postDiff(t, srv.URL, q, body, ctype)
		if code != http.StatusBadRequest {
			t.Errorf("%s status %d, want 400", q, code)
		}
	}

	small := httptest.NewServer(NewServer(Config{Jobs: 4, MaxBody: 1024}))
	defer small.Close()
	body2, ctype := multipartDiffBody(t, enc, enc)
	code, _, _ = postDiff(t, small.URL, "", body2, ctype)
	if code != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized side status %d, want 413", code)
	}
}
