package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// newWorkerFarm spins up n in-process worker daemons and returns their
// base URLs. Workers get explicit job capacity: the coordinator fans
// shards out in parallel, and on a 1-core runner a default worker
// (Jobs = GOMAXPROCS = 1) would 429 the second shard landing on it.
func newWorkerFarm(t *testing.T, n int) []string {
	t.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := httptest.NewServer(NewServer(Config{Jobs: 16}))
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestE2EDist is the distributed end-to-end: an in-process coordinator
// fanning out to 3 in-process workers must answer with a Report
// semantically equal to local core.Analyze on the same trace. This is
// what `make e2e-dist` runs.
func TestE2EDist(t *testing.T) {
	tr, enc := genTrace(t, 4, 40)
	workers := newWorkerFarm(t, 3)
	coord := httptest.NewServer(NewServer(Config{Workers: workers, Shards: 3}))
	defer coord.Close()

	resp, err := http.Post(coord.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}

	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, want := asGeneric(t, body), asGeneric(t, local)
	if !reflect.DeepEqual(got, want) {
		for k := range want {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Errorf("report field %s differs from local Analyze", k)
			}
		}
		t.Fatal("coordinated report is not deep-equal to local Analyze report")
	}

	if v := metricValue(t, coord.URL, `foldsvc_shards_total{outcome="ok"}`); v != 3 {
		t.Errorf("shards ok = %v, want 3", v)
	}
	if v := metricValue(t, coord.URL, `foldsvc_shards_total{outcome="failed"}`); v != 0 {
		t.Errorf("shards failed = %v, want 0", v)
	}
}

// TestDistSurvivesWorkerLoss locks the degradation contract: when one
// worker errors every request, the coordinated analysis still answers
// 200 with Report.Degraded, a per-shard warning, and no profile (the
// cross-shard profile needs every boundary handoff); only all workers
// failing turns into an error status.
func TestDistSurvivesWorkerLoss(t *testing.T) {
	_, enc := genTrace(t, 4, 40)
	workers := newWorkerFarm(t, 2)
	// A third "worker" that 500s every time.
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "worker exploded", http.StatusInternalServerError)
	}))
	defer dead.Close()

	// Only the dead worker on the ring: every shard's primary and (absent
	// a distinct backend) failover is the dead one, so all shards fail.
	allDead := httptest.NewServer(NewServer(Config{
		Workers:      []string{dead.URL},
		Shards:       2,
		WorkerClient: ClientConfig{MaxAttempts: 1, BaseBackoff: time.Millisecond},
	}))
	defer allDead.Close()
	resp, err := http.Post(allDead.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all workers dead: status %d, want 502", resp.StatusCode)
	}

	// Mixed farm: shards routed to the dead worker fail over to live ones
	// — the analysis must come back complete and un-degraded.
	coord := httptest.NewServer(NewServer(Config{
		Workers:      append(workers, dead.URL),
		Shards:       3,
		WorkerClient: ClientConfig{MaxAttempts: 1, BaseBackoff: time.Millisecond},
	}))
	defer coord.Close()
	resp, err = http.Post(coord.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed farm: status %d, want 200", resp.StatusCode)
	}
	if rep.Degraded {
		t.Errorf("failover should not degrade the report; warnings: %v", rep.Warnings)
	}
	if rep.Profile == nil {
		t.Error("all shards survived via failover; profile should be present")
	}
}

// TestDistDegradedShard drops one shard outright (its primary and its
// failover both fail) and checks the per-shard degradation semantics.
func TestDistDegradedShard(t *testing.T) {
	_, enc := genTrace(t, 4, 40)
	live := newWorkerFarm(t, 1)[0]
	// Fails /v1/partial for shard 1 only, on every backend that hosts it.
	var failed atomic.Int64
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/partial" && r.URL.Query().Get("shard") == "1" {
			failed.Add(1)
			http.Error(w, "shard 1 poisoned", http.StatusInternalServerError)
			return
		}
		http.Error(w, "not found", http.StatusNotFound)
	}))
	defer flaky.Close()

	// Intercept at the coordinator: wrap both ring backends with a proxy
	// that poisons shard 1 regardless of which backend it lands on, so
	// primary AND failover fail for that shard while others succeed.
	poison := func(backend string) string {
		p := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("shard") == "1" {
				failed.Add(1)
				http.Error(w, "shard 1 poisoned", http.StatusInternalServerError)
				return
			}
			u := backend + r.URL.Path + "?" + r.URL.RawQuery
			body, _ := io.ReadAll(r.Body)
			resp, err := http.Post(u, r.Header.Get("Content-Type"), bytes.NewReader(body))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadGateway)
				return
			}
			defer resp.Body.Close()
			w.WriteHeader(resp.StatusCode)
			io.Copy(w, resp.Body)
		}))
		t.Cleanup(p.Close)
		return p.URL
	}

	coord := httptest.NewServer(NewServer(Config{
		Workers:      []string{poison(live), poison(live)},
		Shards:       3,
		WorkerClient: ClientConfig{MaxAttempts: 1, BaseBackoff: time.Millisecond},
	}))
	defer coord.Close()

	resp, err := http.Post(coord.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	var rep core.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 despite the lost shard", resp.StatusCode)
	}
	if !rep.Degraded {
		t.Error("lost shard did not mark the report degraded")
	}
	found := false
	for _, w := range rep.Warnings {
		if strings.Contains(w, "shard 1/3 failed") {
			found = true
		}
	}
	if !found {
		t.Errorf("warnings lack the per-shard failure: %v", rep.Warnings)
	}
	if rep.Profile != nil || rep.ProfileErr == "" {
		t.Error("profile should be withheld when a shard is missing")
	}
	if rep.Bursts == 0 || len(rep.Phases) == 0 {
		t.Errorf("surviving shards should still yield phases (bursts=%d phases=%d)",
			rep.Bursts, len(rep.Phases))
	}
	if failed.Load() < 2 {
		t.Errorf("expected primary and failover attempts on shard 1, saw %d", failed.Load())
	}
}

// TestPartialRouteRejects locks the /v1/partial input contract.
func TestPartialRouteRejects(t *testing.T) {
	_, enc := genTrace(t, 2, 20)
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()

	for _, tc := range []struct {
		name, url string
		want      int
	}{
		{"online", "/v1/partial?online=1", http.StatusBadRequest},
		{"bad shard", "/v1/partial?shard=2&shards=2", http.StatusBadRequest},
		{"bad mode", "/v1/partial?mode=zigzag", http.StatusBadRequest},
		{"ok", "/v1/partial?shard=0&shards=1&mode=time&resume=0", http.StatusOK},
	} {
		resp, err := http.Post(srv.URL+tc.url, "application/octet-stream", bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	resp, err := http.Get(srv.URL + "/v1/partial")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d, want 405", resp.StatusCode)
	}
}

// TestClientBreakerSingleProbe is the half-open contract under
// concurrency: once the cooldown elapses, exactly one caller becomes the
// probe; callers racing it fail fast with ErrBreakerOpen rather than
// piling onto a worker that just spent a cooldown down, and a failed
// probe re-opens the breaker for a fresh cooldown.
func TestClientBreakerSingleProbe(t *testing.T) {
	rep := cannedReport(t)
	var reached atomic.Int64
	var healthy atomic.Bool
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		<-release // hold the probe open so racers arrive mid-probe
		w.Write(rep)
	}))
	defer srv.Close()

	c, _ := newTestClient(t, srv.URL, ClientConfig{
		MaxAttempts:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  30 * time.Millisecond,
	})

	// Trip the breaker.
	for i := 0; i < 2; i++ {
		if _, err := c.Analyze(context.Background(), []byte("x"), nil); err == nil {
			t.Fatal("analyze succeeded against a dead server")
		}
	}
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}

	// Cooldown elapses with the server still down: the probe itself fails
	// and must re-open the breaker — the next call right after fails fast
	// without touching the server.
	time.Sleep(40 * time.Millisecond)
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe was not admitted: %v", err)
	}
	before := reached.Load()
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("failed probe did not re-open the breaker: %v", err)
	}
	if reached.Load() != before {
		t.Error("re-opened breaker let a request through")
	}

	// Cooldown elapses with the server healthy but slow: one probe goes
	// through, concurrent callers all fail fast while it is in flight.
	healthy.Store(true)
	time.Sleep(40 * time.Millisecond)
	before = reached.Load()
	probeResult := make(chan error, 1)
	go func() {
		_, err := c.Analyze(context.Background(), []byte("x"), nil)
		probeResult <- err
	}()
	waitFor(t, "the probe to reach the server", func() bool {
		return reached.Load() == before+1
	})

	const racers = 8
	var wg sync.WaitGroup
	errs := make([]error, racers)
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Analyze(context.Background(), []byte("x"), nil)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, ErrBreakerOpen) {
			t.Errorf("racer %d: err = %v, want ErrBreakerOpen", i, err)
		}
	}
	if reached.Load() != before+1 {
		t.Errorf("server saw %d requests during the probe, want exactly 1", reached.Load()-before)
	}

	close(release)
	if err := <-probeResult; err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	// Breaker closed: calls flow normally again.
	if _, err := c.Analyze(context.Background(), []byte("x"), nil); err != nil {
		t.Fatalf("call after recovery failed: %v", err)
	}
}
