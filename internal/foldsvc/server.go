// Package foldsvc implements the HTTP analysis daemon behind cmd/foldsvc:
// an http.Handler that accepts trace uploads (or ?path= references under
// a configured root), streams them through core.AnalyzeStreamContext with
// per-request knobs mapped from query parameters, and answers with the
// JSON core.Report. The handler carries its own observability — a
// Prometheus-text /metrics registry, pprof endpoints, request
// instrumentation — plus admission control (job semaphore → 429, body
// size limit → 413) and cancellation when the client disconnects.
//
// The package is importable so tests and examples can run the exact
// daemon in-process with httptest; cmd/foldsvc is a thin flag-parsing
// wrapper around NewServer.
package foldsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/obs"
	"repro/internal/parallel"
	"repro/internal/pipeline"
	"repro/internal/rescache"
	"repro/internal/session"
	"repro/internal/trace"
)

// Config collects the daemon's tunables; flags in main populate it and
// tests construct it directly.
type Config struct {
	// MaxBody caps an uploaded trace in bytes; larger uploads get 413.
	MaxBody int64
	// Jobs bounds concurrent analyses; excess requests get 429.
	Jobs int
	// Parallelism is the per-analysis worker bound (core.Options
	// Parallelism default for requests that do not set ?parallel=).
	Parallelism int
	// Deadline bounds each analysis; 0 means no server-side deadline.
	Deadline time.Duration
	// Stall fails an analysis whose pipeline makes no progress for this
	// long (an upload that went quiet without disconnecting); 0 disables
	// the watchdog. Stalled requests are answered 408 and counted under
	// foldsvc_rejected_total{reason="stalled"}.
	Stall time.Duration
	// PathRoot, when non-empty, enables ?path= requests for trace files
	// under this directory; "" disables local-path analysis entirely.
	PathRoot string
	// CacheMaxBytes sizes the in-memory result cache: 0 selects the
	// 256 MiB default (the cache is on by default — traces are immutable
	// and the pipeline deterministic, so cached entries never go stale);
	// negative disables caching entirely.
	CacheMaxBytes int64
	// CacheDir, when non-empty, adds a persistent cache tier under this
	// directory (atomic-rename writes, digest-named files) so warm
	// results survive daemon restarts.
	CacheDir string
	// SessionDir, when non-empty, journals live-session appends under
	// this directory (one subdirectory per session, atomic-rename
	// segments) and replays them at startup, so sessions survive a crash
	// or restart. "" keeps sessions memory-only.
	SessionDir string
	// SessionTTL evicts sessions with no appends for this long
	// (default 15m).
	SessionTTL time.Duration
	// SessionMaxBytes caps one session's appended bytes (default 64 MiB);
	// exceeding it answers 429 with Retry-After.
	SessionMaxBytes int64
	// SessionsMaxBytes caps appended bytes across all live sessions
	// (default 256 MiB).
	SessionsMaxBytes int64
	// MaxSessions caps concurrently live sessions (default 64).
	MaxSessions int
	// SessionRing is the per-session snapshot retention — the resume
	// window for SSE consumers reconnecting with Last-Event-ID
	// (default 64).
	SessionRing int
	// SessionHeartbeat is the SSE keepalive interval (default 15s); the
	// per-write deadline is twice this.
	SessionHeartbeat time.Duration
	// Logger receives the daemon's structured log stream.
	Logger *slog.Logger

	// Workers, when non-empty, puts the daemon in coordinator mode: an
	// upload to /v1/analyze is split into shards, fanned out to these
	// worker daemons' /v1/partial routes (consistent-hash routed on the
	// trace digest, one failover, per-backend circuit breakers), and the
	// partials are reduced locally into the Report. A failed shard
	// degrades the Report with per-shard warnings instead of failing the
	// request; only all shards failing is an error.
	Workers []string
	// Shards is the shard count for coordinated analyses; 0 defaults to
	// len(Workers).
	Shards int
	// ShardMode selects how coordinated uploads are split (default
	// core.ShardTime).
	ShardMode core.ShardMode
	// WorkerClient seeds the per-backend client configuration (BaseURL is
	// overridden per worker; Registry defaults to the server's own).
	WorkerClient ClientConfig
}

// Server is the analysis daemon: an http.Handler serving trace analysis,
// metrics, health and profiling endpoints.
type Server struct {
	cfg   Config
	reg   *obs.Registry
	mux   *http.ServeMux
	sem   chan struct{}
	start time.Time

	inflight  *obs.Gauge
	cancelled *obs.Counter
	panics    *obs.Counter
	draining  *obs.Gauge
	drain     atomic.Bool

	cache    *rescache.Cache  // nil when Config.CacheMaxBytes < 0
	coord    *coordinator     // nil unless Config.Workers is set
	sessions *session.Manager // live analysis sessions
}

// NewServer wires the daemon's routes and metric families.
func NewServer(cfg Config) *Server {
	if cfg.MaxBody <= 0 {
		cfg.MaxBody = 256 << 20
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = runtime.GOMAXPROCS(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	s := &Server{
		cfg:   cfg,
		reg:   obs.NewRegistry(),
		mux:   http.NewServeMux(),
		sem:   make(chan struct{}, cfg.Jobs),
		start: time.Now(),
	}

	if cfg.CacheMaxBytes >= 0 {
		max := cfg.CacheMaxBytes
		if max == 0 {
			max = 256 << 20
		}
		s.cache = rescache.New(rescache.Config{
			MaxBytes:  max,
			Dir:       cfg.CacheDir,
			Registry:  s.reg,
			Namespace: "foldsvc",
		})
	}

	s.inflight = s.reg.Gauge("foldsvc_inflight_jobs",
		"Analyses currently running.")
	s.draining = s.reg.Gauge("foldsvc_draining",
		"1 while the daemon is draining for shutdown (admission routes answer 503).")
	s.cancelled = s.reg.Counter("foldsvc_cancelled_total",
		"Analyses abandoned because the client disconnected or the deadline expired.")
	s.panics = s.reg.Counter("foldsvc_panics_total",
		"Requests that panicked and were recovered.")
	s.reg.GaugeFunc("foldsvc_uptime_seconds",
		"Seconds since the daemon started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
	s.reg.GaugeFunc("foldsvc_job_capacity",
		"Maximum concurrent analyses before 429 backpressure.", nil,
		func() float64 { return float64(cfg.Jobs) })
	s.reg.GaugeFunc("go_goroutines",
		"Live goroutine count.", nil,
		func() float64 { return float64(runtime.NumGoroutine()) })
	// The scratch-slice pools are cumulative counters semantically, but
	// they are sampled through callbacks, so they render as gauges. The
	// type set is discovered from the pools themselves (sorted for a
	// stable registration order), so new arenas — like the columnar block
	// pools — show up without touching this list. gets − puts is the
	// current checkout occupancy; a growing gap means leaked arenas.
	poolTypes := make([]string, 0, len(parallel.Pools()))
	for typ := range parallel.Pools() {
		poolTypes = append(poolTypes, typ)
	}
	sort.Strings(poolTypes)
	for _, typ := range poolTypes {
		typ := typ
		s.reg.GaugeFunc("parallel_pool_gets",
			"Cumulative scratch-slice checkouts from internal/parallel pools.",
			obs.L("type", typ),
			func() float64 { return float64(parallel.Pools()[typ].Gets) })
		s.reg.GaugeFunc("parallel_pool_puts",
			"Cumulative scratch-slice returns to internal/parallel pools.",
			obs.L("type", typ),
			func() float64 { return float64(parallel.Pools()[typ].Puts) })
		s.reg.GaugeFunc("parallel_pool_misses",
			"Scratch-slice checkouts that had to allocate (pool miss).",
			obs.L("type", typ),
			func() float64 { return float64(parallel.Pools()[typ].Misses) })
	}

	if len(cfg.Workers) > 0 {
		s.coord = newCoordinator(s)
		s.mux.Handle("/v1/analyze", s.instrument("/v1/analyze", s.handleCoordinate))
	} else {
		s.mux.Handle("/v1/analyze", s.instrument("/v1/analyze", s.handleAnalyze))
	}
	s.mux.Handle("/v1/diff", s.instrument("/v1/diff", s.handleDiff))
	s.mux.Handle("/v1/partial", s.instrument("/v1/partial", s.handlePartial))
	mgr, err := s.newSessionManager()
	if err != nil {
		// A broken journal directory should not take the whole daemon
		// down: fall back to memory-only sessions and say so.
		s.cfg.Logger.Error("session journaling disabled", "dir", cfg.SessionDir, "err", err)
		memCfg := s.cfg
		memCfg.SessionDir = ""
		s.cfg = memCfg
		mgr, err = s.newSessionManager()
		if err != nil {
			panic("foldsvc: memory-only session manager: " + err.Error())
		}
	}
	s.sessions = mgr
	s.mux.Handle("/v1/session", s.instrument("/v1/session", s.handleSessionOpen))
	s.mux.Handle("/v1/session/", s.instrument("/v1/session/", s.handleSession))
	s.mux.Handle("/healthz", s.instrument("/healthz", s.handleHealthz))
	s.mux.Handle("/metrics", s.reg.Handler())
	obs.RegisterPprof(s.mux)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Capacity reports the resolved concurrent-analysis bound (the Jobs
// Config field after defaulting).
func (s *Server) Capacity() int {
	return cap(s.sem)
}

// statusWriter captures the response code for the request metrics.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (sw *statusWriter) WriteHeader(code int) {
	sw.code = code
	sw.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.NewResponseController reach the underlying
// connection's Flusher and write deadlines through this wrapper — the
// SSE session stream needs both.
func (sw *statusWriter) Unwrap() http.ResponseWriter {
	return sw.ResponseWriter
}

// instrument wraps a handler with panic recovery, request counting and
// a latency histogram, labeled by the route pattern (never the raw URL,
// to keep label cardinality bounded).
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	seconds := s.reg.Histogram("foldsvc_request_seconds",
		"Request latency in seconds.", nil, obs.Label{Name: "path", Value: route})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		defer func() {
			if v := recover(); v != nil {
				s.panics.Inc()
				s.cfg.Logger.Error("request panic", "path", route, "panic", v)
				http.Error(sw, "internal error", http.StatusInternalServerError)
			}
			seconds.Observe(time.Since(start).Seconds())
			s.reg.Counter("foldsvc_requests_total",
				"Requests served, by route and status code.",
				obs.Label{Name: "path", Value: route},
				obs.Label{Name: "code", Value: strconv.Itoa(sw.code)}).Inc()
		}()
		h(sw, r)
	})
}

// handleHealthz reports liveness.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleAnalyze runs one analysis request: the trace comes from the
// request body (or a ?path= file under the configured root), the
// analysis knobs from query parameters, and the response is the JSON
// core.Report.
func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost && r.Method != http.MethodGet {
		http.Error(w, "use POST (trace upload) or GET with ?path=", http.StatusMethodNotAllowed)
		return
	}
	if s.rejectIfDraining(w) {
		return
	}

	// Backpressure: a bounded job semaphore instead of an unbounded
	// goroutine pile. Full means the caller should retry, not queue.
	select {
	case s.sem <- struct{}{}:
	default:
		w.Header().Set("Retry-After", "1")
		s.reject(w, "capacity", "analysis capacity exhausted, retry later",
			http.StatusTooManyRequests)
		return
	}
	defer func() { <-s.sem }()
	s.inflight.Inc()
	defer s.inflight.Dec()

	opts, err := optionsFromQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if opts.Parallelism == 0 {
		opts.Parallelism = s.cfg.Parallelism
	}
	opts.StallTimeout = s.cfg.Stall
	opts.Logger = s.cfg.Logger

	ctx := r.Context()
	if s.cfg.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}

	body := &limitTrackingReader{r: http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)}
	input := io.Reader(body)
	src := "upload"
	if p := r.URL.Query().Get("path"); p != "" {
		f, status, err := s.openLocal(p)
		if err != nil {
			http.Error(w, err.Error(), status)
			return
		}
		defer f.Close()
		input = f
		src = p
	} else if r.Method == http.MethodGet {
		http.Error(w, "GET requires ?path=; upload traces with POST", http.StatusBadRequest)
		return
	}

	if s.cache != nil && !nocacheRequested(r) {
		s.analyzeCached(w, r, ctx, opts, body, input, src)
		return
	}

	start := time.Now()
	rep, err := core.AnalyzeStreamContext(ctx, input, opts)
	if err != nil {
		// Decode errors wrap the underlying read failure as text only,
		// so a tripped upload limit must be recovered from the reader.
		if body.limit != nil {
			err = body.limit
		}
		s.analyzeError(w, r, src, err)
		return
	}
	s.recordReport(rep)
	s.cfg.Logger.Info("analysis done", "source", src, "app", rep.App,
		"ranks", rep.Ranks, "bursts", rep.Bursts, "phases", len(rep.Phases),
		"online", rep.Online, "wall", time.Since(start))

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(rep); err != nil {
		// The report was computed; a failed write means the client left.
		s.cfg.Logger.Debug("response write failed", "err", err)
	}
}

// limitTrackingReader remembers whether the wrapped http.MaxBytesReader
// tripped its limit, since decode layers may flatten the error chain.
type limitTrackingReader struct {
	r     io.Reader
	limit *http.MaxBytesError
}

func (lt *limitTrackingReader) Read(p []byte) (int, error) {
	n, err := lt.r.Read(p)
	if err != nil && lt.limit == nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			lt.limit = tooBig
		}
	}
	return n, err
}

// reject writes an error response and counts it under
// foldsvc_rejected_total{reason}.
func (s *Server) reject(w http.ResponseWriter, reason, msg string, code int) {
	s.reg.Counter("foldsvc_rejected_total",
		"Requests rejected before analysis, by reason.",
		obs.Label{Name: "reason", Value: reason}).Inc()
	http.Error(w, msg, code)
}

// analyzeError maps an analysis failure to a status code and metrics.
func (s *Server) analyzeError(w http.ResponseWriter, r *http.Request, src string, err error) {
	var tooBig *http.MaxBytesError
	switch {
	case errors.As(err, &tooBig):
		s.reject(w, "body_too_large",
			fmt.Sprintf("trace exceeds the %d-byte upload limit", tooBig.Limit),
			http.StatusRequestEntityTooLarge)
	case errors.Is(err, context.Canceled):
		// The client is gone; the status code is for the metrics only
		// (499 is the de-facto "client closed request" code).
		s.cancelled.Inc()
		s.cfg.Logger.Info("analysis cancelled", "source", src, "err", err)
		w.WriteHeader(499)
	case errors.Is(err, context.DeadlineExceeded):
		s.cancelled.Inc()
		s.reject(w, "deadline", "analysis deadline exceeded", http.StatusGatewayTimeout)
	case errors.Is(err, pipeline.ErrStalled):
		s.cancelled.Inc()
		s.reject(w, "stalled", err.Error(), http.StatusRequestTimeout)
	case errors.Is(err, trace.ErrBadFormat):
		http.Error(w, err.Error(), http.StatusBadRequest)
	default:
		s.cfg.Logger.Error("analysis failed", "source", src, "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// recordReport folds a finished analysis into the throughput metrics.
func (s *Server) recordReport(rep *core.Report) {
	rec := func(kind string, n int64) {
		s.reg.Counter("foldsvc_analyze_records_total",
			"Trace records consumed by finished analyses, by kind.",
			obs.Label{Name: "kind", Value: kind}).Add(float64(n))
	}
	rec("event", rep.Records.Events)
	rec("sample", rep.Records.Samples)
	rec("comm", rep.Records.Comms)
	s.reg.Counter("foldsvc_analyze_bursts_total",
		"Bursts extracted by finished analyses, by filter disposition.",
		obs.Label{Name: "disposition", Value: "kept"}).Add(float64(rep.Bursts - rep.Filtered))
	s.reg.Counter("foldsvc_analyze_bursts_total",
		"Bursts extracted by finished analyses, by filter disposition.",
		obs.Label{Name: "disposition", Value: "filtered"}).Add(float64(rep.Filtered))
	s.reg.Counter("foldsvc_analyze_clusters_total",
		"Clusters (detected phases) across finished analyses.").Add(float64(rep.Clustering.K))
	s.reg.Counter("foldsvc_analyze_requests_total",
		"Analyses that ran to completion.").Inc()
	if rep.Degraded {
		s.reg.Counter("foldsvc_analyze_degraded_total",
			"Analyses that completed degraded (salvage decoding, clustering fallback, or tolerated faults).").Inc()
	}
}

// openLocal resolves a ?path= request against the configured root,
// refusing traversal outside it.
func (s *Server) openLocal(p string) (*os.File, int, error) {
	if s.cfg.PathRoot == "" {
		return nil, http.StatusForbidden,
			errors.New("local-path analysis is disabled (start foldsvc with -path-root)")
	}
	full := filepath.Join(s.cfg.PathRoot, filepath.Clean("/"+p))
	f, err := os.Open(full)
	if err != nil {
		return nil, http.StatusNotFound, fmt.Errorf("open %s: %w", p, err)
	}
	return f, 0, nil
}

// optionsFromQuery maps the /v1/analyze query parameters onto
// core.Options — the same knobs the fold CLI exposes as flags.
//
//	online=1 train=N parallel=N phases=N bins=N model=binned+pchip
//	counter=PAPI_TOT_INS[,...] knn=auto|brute|kdtree sil_sample=N
//	min_burst_us=N lenient=1 columnar=0|1
func optionsFromQuery(r *http.Request) (core.Options, error) {
	return optionsFromValues(r.URL.Query())
}

// optionsFromValues is optionsFromQuery over bare query values — the
// form session open (and journal recovery, replaying a persisted query)
// uses.
func optionsFromValues(q url.Values) (core.Options, error) {
	var opts core.Options

	geti := func(name string) (int, bool, error) {
		v := q.Get(name)
		if v == "" {
			return 0, false, nil
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return 0, false, fmt.Errorf("bad %s=%q: want a non-negative integer", name, v)
		}
		return n, true, nil
	}

	for name, dst := range map[string]*int{
		"train":      &opts.Stream.TrainBursts,
		"parallel":   &opts.Parallelism,
		"phases":     &opts.MaxPhases,
		"bins":       &opts.Fold.Bins,
		"sil_sample": &opts.Cluster.SilhouetteSample,
		"stack_bins": &opts.StackBins,
		"min_pts":    &opts.Cluster.MinPts,
	} {
		n, ok, err := geti(name)
		if err != nil {
			return opts, err
		}
		if ok {
			*dst = n
		}
	}
	if n, ok, err := geti("min_burst_us"); err != nil {
		return opts, err
	} else if ok {
		opts.MinBurstDuration = trace.Time(n) * 1000
	}
	if v := q.Get("online"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad online=%q: want a boolean", v)
		}
		opts.Stream.Online = on
	}
	if v := q.Get("lenient"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad lenient=%q: want a boolean", v)
		}
		opts.Lenient = on
	}
	if v := q.Get("columnar"); v != "" {
		on, err := strconv.ParseBool(v)
		if err != nil {
			return opts, fmt.Errorf("bad columnar=%q: want a boolean", v)
		}
		if on {
			opts.Columnar = core.PathColumnar
		} else {
			opts.Columnar = core.PathRow
		}
	}
	if v := q.Get("knn"); v != "" {
		mode, err := cluster.ParseIndexMode(v)
		if err != nil {
			return opts, err
		}
		opts.Cluster.Index = mode
	}
	switch v := q.Get("model"); v {
	case "", "binned+pchip":
		opts.Fold.Model = folding.ModelBinnedPCHIP
	case "kernel":
		opts.Fold.Model = folding.ModelKernel
	case "binned":
		opts.Fold.Model = folding.ModelBinned
	default:
		return opts, fmt.Errorf("bad model=%q: want binned+pchip, kernel or binned", v)
	}
	if v := q.Get("counter"); v != "" {
		for _, name := range strings.Split(v, ",") {
			c, err := counters.ParseCounter(strings.TrimSpace(name))
			if err != nil {
				return opts, err
			}
			opts.Counters = append(opts.Counters, c)
		}
	}
	return opts, nil
}
