package foldsvc

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
)

// genTrace simulates a small stencil run and returns both the in-memory
// trace and its encoded bytes.
func genTrace(t *testing.T, ranks, iters int) (*trace.Trace, []byte) {
	t.Helper()
	app, err := apps.ByName("stencil", iters)
	if err != nil {
		t.Fatal(err)
	}
	cfg := apps.DefaultTraceConfig(ranks)
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return tr, buf.Bytes()
}

// asGeneric unmarshals JSON into the generic map form with the
// run-varying Pipeline stage metrics (wall times, bytes) removed, so
// two reports can be compared for semantic equality.
func asGeneric(t *testing.T, data []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	delete(m, "Pipeline")
	return m
}

func TestAnalyzeMatchesLocalAnalyze(t *testing.T) {
	tr, enc := genTrace(t, 4, 40)
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type %q", ct)
	}

	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, want := asGeneric(t, body), asGeneric(t, local)
	if !reflect.DeepEqual(got, want) {
		for k := range want {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Errorf("report field %s differs from local Analyze", k)
			}
		}
		t.Fatal("service report is not deep-equal to local Analyze report")
	}
}

func TestAnalyzeOnlineAndQueryKnobs(t *testing.T) {
	_, enc := genTrace(t, 4, 60)
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()

	url := srv.URL + "/v1/analyze?online=1&train=256&phases=3&counter=PAPI_TOT_INS&knn=kdtree"
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rep struct {
		Online bool
		Phases []struct{ ClusterID int }
	}
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if !rep.Online {
		t.Error("?online=1 did not select the online path")
	}
	if len(rep.Phases) == 0 || len(rep.Phases) > 3 {
		t.Errorf("got %d phases, want 1..3", len(rep.Phases))
	}
}

func TestAnalyzeBadQueryAndBadFormat(t *testing.T) {
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()

	resp, err := http.Post(srv.URL+"/v1/analyze?train=notanint", "", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad query: status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/analyze", "", strings.NewReader("this is not a trace"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", resp.StatusCode)
	}
}

func TestAnalyzeOversizedUpload413(t *testing.T) {
	_, enc := genTrace(t, 2, 20)
	srv := httptest.NewServer(NewServer(Config{MaxBody: 1024}))
	defer srv.Close()

	if len(enc) <= 1024 {
		t.Fatalf("test trace too small (%d bytes) to trip the limit", len(enc))
	}
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}

// metricValue scrapes one un-labeled (or exactly-labeled) series value
// from the /metrics output.
func metricValue(t *testing.T, base, series string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufioLines(resp.Body)
	for _, line := range sc {
		if strings.HasPrefix(line, series+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(series)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func bufioLines(r io.Reader) []string {
	data, _ := io.ReadAll(r)
	return strings.Split(string(data), "\n")
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestAnalyzeBackpressure429(t *testing.T) {
	_, enc := genTrace(t, 2, 20)
	srv := httptest.NewServer(NewServer(Config{Jobs: 1}))
	defer srv.Close()

	// First request: a stalling upload that parks the only job slot —
	// all bytes except the tail, then hold the stream open.
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/analyze", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write(enc[:len(enc)-1]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first job to occupy the slot", func() bool {
		return metricValue(t, srv.URL, "foldsvc_inflight_jobs") == 1
	})

	// Second request must be rejected with 429, not queued.
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Error("429 response missing Retry-After")
	} else if secs, err := strconv.Atoi(ra); err != nil || secs < 1 || secs > 60 {
		t.Errorf("Retry-After = %q, want a delay of 1..60 seconds", ra)
	}

	// Release the first upload and let it finish.
	pw.Write(enc[len(enc)-1:])
	pw.Close()
	<-done

	// With the slot free again, the same request succeeds.
	resp, err = http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after release: status %d, want 200", resp.StatusCode)
	}
}

func TestClientDisconnectCancelsPipeline(t *testing.T) {
	_, enc := genTrace(t, 2, 20)
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()

	// Start an upload that stalls mid-trace, then abandon it: the
	// daemon must cancel the running pipeline (foldsvc_cancelled_total
	// rises) instead of waiting for the rest of the stream.
	pr, pw := io.Pipe()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		req, _ := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/analyze", pr)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	if _, err := pw.Write(enc[:len(enc)/2]); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "analysis to start", func() bool {
		return metricValue(t, srv.URL, "foldsvc_inflight_jobs") == 1
	})

	cancel()
	// The transport waits for its body-write goroutine before Do
	// returns, and that goroutine is blocked reading the pipe — abort
	// the pipe so the abandoned upload actually terminates client-side.
	pw.CloseWithError(errors.New("client abandoned upload"))
	<-done
	waitFor(t, "pipeline cancellation", func() bool {
		return metricValue(t, srv.URL, "foldsvc_cancelled_total") >= 1
	})
	waitFor(t, "job slot release", func() bool {
		return metricValue(t, srv.URL, "foldsvc_inflight_jobs") == 0
	})
}

// metricLine matches the Prometheus text exposition sample syntax.
var metricLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9.e+-]+|\+Inf|NaN)$`)

func TestMetricsEndpointParses(t *testing.T) {
	_, enc := genTrace(t, 2, 20)
	srv := httptest.NewServer(NewServer(Config{}))
	defer srv.Close()

	// Generate some traffic first so every family has series.
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	data, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(string(data), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) < 4 {
				t.Errorf("malformed comment line %q", line)
			}
			seen[f[2]] = true
			continue
		}
		if !metricLine.MatchString(line) {
			t.Errorf("unparseable sample line %q", line)
		}
	}
	for _, want := range []string{
		"foldsvc_requests_total", "foldsvc_request_seconds",
		"foldsvc_analyze_records_total", "foldsvc_analyze_bursts_total",
		"foldsvc_inflight_jobs", "parallel_pool_gets",
	} {
		if !seen[want] {
			t.Errorf("metric family %s missing from /metrics", want)
		}
	}
	// Request latency must have been observed for the analyze route.
	if c := metricValue(t, srv.URL, `foldsvc_request_seconds_count{path="/v1/analyze"}`); c < 1 {
		t.Errorf("request_seconds count = %v, want >= 1", c)
	}
	if rec := metricValue(t, srv.URL, `foldsvc_analyze_records_total{kind="sample"}`); rec <= 0 {
		t.Errorf("records-processed counter = %v, want > 0", rec)
	}
}

func TestHealthzAndPathAnalysis(t *testing.T) {
	tr, _ := genTrace(t, 2, 20)
	dir := t.TempDir()
	if err := tr.WriteFile(dir + "/t.uvt"); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(Config{PathRoot: dir}))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}

	resp, err = http.Get(srv.URL + "/v1/analyze?path=t.uvt")
	if err != nil {
		t.Fatal(err)
	}
	var rep struct{ Bursts int }
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rep.Bursts == 0 {
		t.Fatalf("path analysis: status %d, bursts %d", resp.StatusCode, rep.Bursts)
	}

	// Path escape attempts must not leave the root.
	resp, err = http.Get(srv.URL + "/v1/analyze?path=../../etc/passwd")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("escape attempt: status %d, want 404", resp.StatusCode)
	}

	// And with no root configured, ?path= is rejected outright.
	srv2 := httptest.NewServer(NewServer(Config{}))
	defer srv2.Close()
	resp, err = http.Get(srv2.URL + "/v1/analyze?path=t.uvt")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusForbidden {
		t.Fatalf("disabled path analysis: status %d, want 403", resp.StatusCode)
	}
}
