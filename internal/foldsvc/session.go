package foldsvc

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/trace"
)

// Live sessions: a client opens a session, streams trace chunks in with
// appends (journaled before acknowledgement when SessionDir is set) and
// watches the evolving core.Report over a resumable SSE stream. The
// handlers here are thin adapters over internal/session; all the
// durability, budgeting and coalescing policy lives there.

// newSessionManager wires the session manager with the server's option
// parsing, logger and metric families. The metric names are registered
// here, as literals, so the docs gate holds them to the same standard as
// the rest of the daemon's families.
func (s *Server) newSessionManager() (*session.Manager, error) {
	metrics := session.Metrics{
		Active: s.reg.Gauge("foldsvc_sessions_active",
			"Live analysis sessions."),
		Bytes: s.reg.Gauge("foldsvc_session_bytes",
			"Appended bytes held across live sessions."),
		Appends: s.reg.Counter("foldsvc_session_appends_total",
			"Session appends accepted (journaled when journaling is on)."),
		Snapshots: s.reg.Counter("foldsvc_session_snapshots_total",
			"Report snapshots published to session subscribers."),
		SnapshotsDropped: s.reg.Counter("foldsvc_session_snapshots_dropped_total",
			"Snapshots coalesced away because a subscriber fell behind."),
		Evicted: s.reg.Counter("foldsvc_session_evicted_total",
			"Sessions evicted after their idle TTL."),
		Recovered: s.reg.Counter("foldsvc_session_recovered_total",
			"Sessions rebuilt from write-ahead journals at startup."),
		Fsync: s.reg.Histogram("foldsvc_session_journal_fsync_seconds",
			"Journal segment fsync latency in seconds.",
			[]float64{.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1}),
	}
	cfg := s.cfg
	return session.NewManager(session.Config{
		Dir:             cfg.SessionDir,
		TTL:             cfg.SessionTTL,
		MaxSessionBytes: cfg.SessionMaxBytes,
		MaxTotalBytes:   cfg.SessionsMaxBytes,
		MaxSessions:     cfg.MaxSessions,
		Ring:            cfg.SessionRing,
		Options: func(q url.Values) (core.Options, error) {
			opts, err := optionsFromValues(q)
			if err != nil {
				return opts, err
			}
			if opts.Parallelism == 0 {
				opts.Parallelism = cfg.Parallelism
			}
			opts.StallTimeout = cfg.Stall
			opts.Logger = cfg.Logger
			return opts, nil
		},
		Logger:  cfg.Logger,
		Metrics: metrics,
	})
}

// StartDrain flips the daemon into drain mode: admission-controlled
// routes answer 503 with a Retry-After, the foldsvc_draining gauge goes
// to 1, and every live session ends with a final "end" SSE event while
// its journal stays on disk for the next start. Idempotent; ctx bounds
// the wait for in-flight session analyses.
func (s *Server) StartDrain(ctx context.Context) {
	if !s.drain.CompareAndSwap(false, true) {
		return
	}
	s.draining.Set(1)
	s.cfg.Logger.Info("drain started")
	s.sessions.Close(ctx)
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.drain.Load() }

// rejectIfDraining answers 503 + Retry-After on a draining daemon.
func (s *Server) rejectIfDraining(w http.ResponseWriter) bool {
	if !s.drain.Load() {
		return false
	}
	w.Header().Set("Retry-After", "5")
	s.reject(w, "draining", "daemon is draining for shutdown, retry later", http.StatusServiceUnavailable)
	return true
}

// Sessions exposes the manager (status endpoints, tests).
func (s *Server) Sessions() *session.Manager { return s.sessions }

// handleSessionOpen opens a live session. The query carries the same
// analysis knobs as /v1/analyze; they are fixed for the session's life
// and fingerprinted exactly like cache keys.
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "use POST to open a session", http.StatusMethodNotAllowed)
		return
	}
	if s.rejectIfDraining(w) {
		return
	}
	sess, err := s.sessions.Open(r.URL.Query())
	switch {
	case err == nil:
	case errors.Is(err, session.ErrTooManySessions):
		w.Header().Set("Retry-After", "5")
		s.reject(w, "session_budget", err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, session.ErrClosed):
		w.Header().Set("Retry-After", "5")
		s.reject(w, "draining", err.Error(), http.StatusServiceUnavailable)
		return
	default:
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	s.cfg.Logger.Info("session opened", "session", sess.ID)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		ID          string
		Fingerprint string
	}{sess.ID, sess.Fingerprint})
}

// handleSession dispatches /v1/session/{id}[/append|/events].
func (s *Server) handleSession(w http.ResponseWriter, r *http.Request) {
	rest := strings.TrimPrefix(r.URL.Path, "/v1/session/")
	id, action, _ := strings.Cut(rest, "/")
	// Reject appends before the lookup: on a draining daemon the
	// session map is already empty, and a retrying appender needs the
	// 503 + Retry-After (come back after the restart), not a 404.
	if action == "append" && r.Method == http.MethodPost && s.rejectIfDraining(w) {
		return
	}
	sess, ok := s.sessions.Get(id)
	if !ok {
		http.Error(w, fmt.Sprintf("unknown session %q", id), http.StatusNotFound)
		return
	}
	switch {
	case action == "append" && r.Method == http.MethodPost:
		s.handleSessionAppend(w, r, sess)
	case action == "events" && r.Method == http.MethodGet:
		s.handleSessionEvents(w, r, sess)
	case action == "" && r.Method == http.MethodGet:
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(sess.Status())
	default:
		http.Error(w, "use POST {id}/append, GET {id}/events or GET {id}", http.StatusMethodNotAllowed)
	}
}

// handleSessionAppend accepts one trace chunk. ?seq= (monotone, client
// chosen) makes retries idempotent. The chunk is durably journaled
// before the 200 acknowledgement.
func (s *Server) handleSessionAppend(w http.ResponseWriter, r *http.Request, sess *session.Session) {
	var seq uint64
	if v := r.URL.Query().Get("seq"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			http.Error(w, fmt.Sprintf("bad seq=%q: want a positive integer", v), http.StatusBadRequest)
			return
		}
		seq = n
	}
	chunk, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBody))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.reject(w, "body_too_large",
				fmt.Sprintf("chunk exceeds the %d-byte upload limit", tooBig.Limit),
				http.StatusRequestEntityTooLarge)
			return
		}
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := sess.Append(r.Context(), chunk, seq)
	switch {
	case err == nil:
	case errors.Is(err, session.ErrSessionBudget), errors.Is(err, session.ErrGlobalBudget):
		w.Header().Set("Retry-After", "5")
		s.reject(w, "session_budget", err.Error(), http.StatusTooManyRequests)
		return
	case errors.Is(err, session.ErrEnded):
		http.Error(w, err.Error(), http.StatusGone)
		return
	case errors.Is(err, session.ErrMismatch), errors.Is(err, trace.ErrBadFormat):
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	case errors.Is(err, context.Canceled):
		w.WriteHeader(499)
		return
	default:
		s.cfg.Logger.Error("session append failed", "session", sess.ID, "err", err)
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(res)
}

// handleSessionEvents streams the session's Report snapshots as
// server-sent events. Each frame carries the monotonic snapshot id, so
// a client that reconnects with Last-Event-ID (header or
// ?last_event_id=) resumes after the last frame it saw — retained
// snapshots are replayed exactly once, never duplicated or skipped.
// Comment heartbeats keep idle connections alive; a consumer that stops
// reading is coalesced to latest-only and eventually disconnected by the
// write deadline, never allowed to block the analysis path.
func (s *Server) handleSessionEvents(w http.ResponseWriter, r *http.Request, sess *session.Session) {
	var lastID uint64
	v := r.Header.Get("Last-Event-ID")
	if v == "" {
		v = r.URL.Query().Get("last_event_id")
	}
	if v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad Last-Event-ID %q", v), http.StatusBadRequest)
			return
		}
		lastID = n
	}

	hb := s.cfg.SessionHeartbeat
	if hb <= 0 {
		hb = 15 * time.Second
	}
	rc := http.NewResponseController(w)
	sub := sess.Subscribe(lastID)
	defer sess.Unsubscribe(sub)

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, "retry: 1000\n\n")
	if err := rc.Flush(); err != nil {
		return
	}

	write := func(format string, args ...any) bool {
		rc.SetWriteDeadline(time.Now().Add(2 * hb))
		if _, err := fmt.Fprintf(w, format, args...); err != nil {
			return false
		}
		return rc.Flush() == nil
	}

	for {
		ctx, cancel := context.WithTimeout(r.Context(), hb)
		sn, err := sub.Next(ctx)
		cancel()
		switch {
		case err == nil:
			if !write("event: snapshot\nid: %d\ndata: %s\n\n", sn.ID, sn.Data) {
				return
			}
		case errors.Is(err, session.ErrEnded):
			reason, _ := json.Marshal(endReason(err))
			write("event: end\ndata: {\"reason\":%s}\n\n", reason)
			return
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			if !write(": hb\n\n") {
				return
			}
		default: // client went away
			return
		}
	}
}

// endReason extracts the reason from a session end error.
func endReason(err error) string {
	var ee *session.EndedError
	if errors.As(err, &ee) {
		return ee.Reason
	}
	return "ended"
}
