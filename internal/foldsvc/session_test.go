package foldsvc

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/session"
	"repro/internal/trace"
)

// encodeTrace returns tr's UVT encoding.
func encodeTrace(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// openSession opens a live session over HTTP and returns its id.
func openSession(t *testing.T, base, query string) string {
	t.Helper()
	resp, err := http.Post(base+"/v1/session"+query, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("open session: status %d: %s", resp.StatusCode, body)
	}
	var out struct{ ID, Fingerprint string }
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.ID == "" || out.Fingerprint == "" {
		t.Fatalf("open session: incomplete response %s", body)
	}
	return out.ID
}

// appendChunk POSTs one chunk with the given client sequence number and
// returns the decoded result (fatal on non-200).
func appendChunk(t *testing.T, base, id string, seq uint64, chunk []byte) session.AppendResult {
	t.Helper()
	u := fmt.Sprintf("%s/v1/session/%s/append?seq=%d", base, id, seq)
	resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(chunk))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append seq %d: status %d: %s", seq, resp.StatusCode, body)
	}
	var res session.AppendResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	return res
}

// sseFrame is one parsed server-sent event.
type sseFrame struct {
	Event string
	ID    uint64
	Data  string
}

// readFrames reads n non-heartbeat SSE frames from r.
func readFrames(t *testing.T, r *bufio.Reader, n int) []sseFrame {
	t.Helper()
	var frames []sseFrame
	var cur sseFrame
	for len(frames) < n {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("after %d frames: read: %v", len(frames), err)
		}
		line = strings.TrimRight(line, "\n")
		switch {
		case line == "":
			if cur.Event != "" || cur.Data != "" {
				frames = append(frames, cur)
			}
			cur = sseFrame{}
		case strings.HasPrefix(line, ":"): // heartbeat comment
		case strings.HasPrefix(line, "retry: "):
		case strings.HasPrefix(line, "event: "):
			cur.Event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "id: "):
			id, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				t.Fatalf("bad id line %q: %v", line, err)
			}
			cur.ID = id
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return frames
}

// getEvents opens the SSE stream with an optional Last-Event-ID.
func getEvents(t *testing.T, base, id string, lastID uint64) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/v1/session/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("events: status %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("events content-type %q", ct)
	}
	return resp
}

// TestSessionLifecycle drives the full HTTP session flow: open, append
// chunks (with an idempotent retry), observe status, and check the SSE
// snapshot against a local batch core.Analyze of the whole trace.
func TestSessionLifecycle(t *testing.T) {
	tr, _ := genTrace(t, 4, 40)
	chunks := session.Chunks(tr, 4)
	s := NewServer(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	id := openSession(t, srv.URL, "")
	var last session.AppendResult
	for i, c := range chunks {
		last = appendChunk(t, srv.URL, id, uint64(i+1), encodeTrace(t, c))
		if last.Duplicate {
			t.Fatalf("fresh append %d reported duplicate", i+1)
		}
	}
	st := tr.Stats()
	if last.Events != st.Events || last.Samples != st.Samples || last.Comms != st.Comms {
		t.Fatalf("cumulative shape %d/%d/%d, want %d/%d/%d",
			last.Events, last.Samples, last.Comms, st.Events, st.Samples, st.Comms)
	}

	// Retrying the last chunk with the same sequence number must be a
	// no-op acknowledgement, not a double append.
	dup := appendChunk(t, srv.URL, id, uint64(len(chunks)), encodeTrace(t, chunks[len(chunks)-1]))
	if !dup.Duplicate {
		t.Fatal("replayed sequence number not acknowledged as duplicate")
	}
	if dup.Events != last.Events {
		t.Fatalf("duplicate append changed the event count: %d -> %d", last.Events, dup.Events)
	}

	sess, ok := s.Sessions().Get(id)
	if !ok {
		t.Fatal("session not found in manager")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	sn, err := sess.Barrier(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Status endpoint.
	resp, err := http.Get(srv.URL + "/v1/session/" + id)
	if err != nil {
		t.Fatal(err)
	}
	var status session.Status
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if status.Events != st.Events || status.Ended {
		t.Fatalf("status %+v, want %d events and not ended", status, st.Events)
	}

	// The latest SSE snapshot equals a batch analysis of the full trace.
	ev := getEvents(t, srv.URL, id, sn.ID-1)
	frames := readFrames(t, bufio.NewReader(ev.Body), 1)
	ev.Body.Close()
	if frames[0].Event != "snapshot" || frames[0].ID != sn.ID {
		t.Fatalf("frame %q id %d, want snapshot id %d", frames[0].Event, frames[0].ID, sn.ID)
	}
	rep, err := core.Analyze(tr, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	got, want := asGeneric(t, []byte(frames[0].Data)), asGeneric(t, local)
	if !reflect.DeepEqual(got, want) {
		for k := range want {
			if !reflect.DeepEqual(got[k], want[k]) {
				t.Errorf("report field %s differs from local Analyze", k)
			}
		}
		t.Fatal("session snapshot is not deep-equal to the batch report")
	}

	// Unknown session and bad sub-routes.
	if resp, _ := http.Get(srv.URL + "/v1/session/nope"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown session: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := http.Get(srv.URL + "/v1/session/" + id + "/append"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET append: status %d, want 405", resp.StatusCode)
	}
}

// TestSessionSSEResume checks the exactly-once resume contract at the
// wire level: for every possible Last-Event-ID, the reconnecting
// consumer receives exactly the snapshots after it — none duplicated,
// none skipped — and a mid-stream reconnect stitches seamlessly.
func TestSessionSSEResume(t *testing.T) {
	tr, _ := genTrace(t, 4, 40)
	chunks := session.Chunks(tr, 4)
	s := NewServer(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	id := openSession(t, srv.URL, "")
	sess, _ := s.Sessions().Get(id)
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	// Append with a barrier per chunk so every append publishes its own
	// snapshot: ids 1..K.
	var latest uint64
	for i, c := range chunks {
		appendChunk(t, srv.URL, id, uint64(i+1), encodeTrace(t, c))
		sn, err := sess.Barrier(ctx)
		if err != nil {
			t.Fatal(err)
		}
		latest = sn.ID
	}
	if latest < uint64(len(chunks)) {
		t.Fatalf("published %d snapshots, want >= %d", latest, len(chunks))
	}

	for lastID := uint64(0); lastID < latest; lastID++ {
		ev := getEvents(t, srv.URL, id, lastID)
		frames := readFrames(t, bufio.NewReader(ev.Body), int(latest-lastID))
		ev.Body.Close()
		for i, f := range frames {
			if f.Event != "snapshot" || f.ID != lastID+uint64(i)+1 {
				t.Fatalf("resume from %d: frame %d is %q id %d, want snapshot id %d",
					lastID, i, f.Event, f.ID, lastID+uint64(i)+1)
			}
		}
	}

	// Mid-stream reconnect: read half, drop the connection, resume with
	// the last seen id via the query form.
	ev := getEvents(t, srv.URL, id, 0)
	first := readFrames(t, bufio.NewReader(ev.Body), int(latest)/2)
	ev.Body.Close()
	seen := first[len(first)-1].ID
	resp, err := http.Get(srv.URL + "/v1/session/" + id + "/events?last_event_id=" + strconv.FormatUint(seen, 10))
	if err != nil {
		t.Fatal(err)
	}
	rest := readFrames(t, bufio.NewReader(resp.Body), int(latest-seen))
	resp.Body.Close()
	var ids []uint64
	for _, f := range append(first, rest...) {
		ids = append(ids, f.ID)
	}
	for i, got := range ids {
		if got != uint64(i)+1 {
			t.Fatalf("stitched stream ids %v: position %d is %d, want %d", ids, i, got, i+1)
		}
	}
}

// TestSessionDiffAgainstBaseline diffs a live session snapshot against
// a cached baseline digest — the diff-layer consumer of live sessions.
func TestSessionDiffAgainstBaseline(t *testing.T) {
	trA, encA := genTrace(t, 4, 40)
	_ = trA
	s := NewServer(Config{})
	srv := httptest.NewServer(s)
	defer srv.Close()

	// Warm the cache and capture the baseline digest.
	resp, err := http.Post(srv.URL+"/v1/analyze", "application/octet-stream", bytes.NewReader(encA))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm analyze: status %d", resp.StatusCode)
	}
	digest := resp.Header.Get("Trace-Digest")
	if digest == "" {
		t.Fatal("analyze response carries no Trace-Digest")
	}

	id := openSession(t, srv.URL, "")

	// Before any snapshot: a session reference must 404, not crash.
	u := srv.URL + "/v1/diff?digest_a=" + digest + "&session_b=" + id
	if resp, err = http.Get(u); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("diff with snapshot-less session: status %d, want 404", resp.StatusCode)
	}

	trB, _ := genTrace(t, 4, 50)
	for i, c := range session.Chunks(trB, 3) {
		appendChunk(t, srv.URL, id, uint64(i+1), encodeTrace(t, c))
	}
	sess, _ := s.Sessions().Get(id)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := sess.Barrier(ctx); err != nil {
		t.Fatal(err)
	}

	if resp, err = http.Get(u); err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("diff: status %d: %s", resp.StatusCode, body)
	}
	if a, b := resp.Header.Get("Cache-Status-a"), resp.Header.Get("Cache-Status-b"); a != "hit" || b != "session" {
		t.Fatalf("Cache-Status a=%q b=%q, want hit/session", a, b)
	}
	var d struct{ AppA, AppB string }
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatal(err)
	}
	if d.AppA == "" || d.AppB == "" {
		t.Fatalf("diff result incomplete: %s", body)
	}
}

// TestSessionDrain: StartDrain must end live sessions with a final SSE
// "end" event, keep answering admission-controlled routes with 503 +
// Retry-After, and raise the foldsvc_draining gauge.
func TestSessionDrain(t *testing.T) {
	tr, enc := genTrace(t, 4, 40)
	chunks := session.Chunks(tr, 2)
	s := NewServer(Config{SessionHeartbeat: 100 * time.Millisecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	id := openSession(t, srv.URL, "")
	appendChunk(t, srv.URL, id, 1, encodeTrace(t, chunks[0]))
	sess, _ := s.Sessions().Get(id)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := sess.Barrier(ctx); err != nil {
		t.Fatal(err)
	}

	ev := getEvents(t, srv.URL, id, 0)
	defer ev.Body.Close()
	r := bufio.NewReader(ev.Body)
	if f := readFrames(t, r, 1)[0]; f.Event != "snapshot" {
		t.Fatalf("first frame %q, want snapshot", f.Event)
	}

	s.StartDrain(ctx)

	end := readFrames(t, r, 1)[0]
	if end.Event != "end" {
		t.Fatalf("post-drain frame %q, want end", end.Event)
	}
	var e struct{ Reason string }
	if err := json.Unmarshal([]byte(end.Data), &e); err != nil || e.Reason != "drain" {
		t.Fatalf("end frame data %q, want reason drain (err %v)", end.Data, err)
	}

	if v := metricValue(t, srv.URL, "foldsvc_draining"); v != 1 {
		t.Fatalf("foldsvc_draining = %v, want 1", v)
	}

	// Every admission-controlled route turns clients away with a
	// Retry-After so load balancers move on.
	for _, probe := range []struct {
		method, path string
		body         io.Reader
	}{
		{http.MethodPost, "/v1/analyze", bytes.NewReader(enc)},
		{http.MethodPost, "/v1/session", nil},
		{http.MethodPost, "/v1/session/" + id + "/append?seq=9", bytes.NewReader(encodeTrace(t, chunks[1]))},
	} {
		req, err := http.NewRequest(probe.method, srv.URL+probe.path, probe.body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s %s while draining: status %d, want 503", probe.method, probe.path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s while draining: no Retry-After header", probe.method, probe.path)
		}
	}
}

// TestSessionBudgets: the per-session byte budget and the session-count
// budget both answer 429 with a Retry-After.
func TestSessionBudgets(t *testing.T) {
	tr, enc := genTrace(t, 4, 40)
	_ = tr
	s := NewServer(Config{SessionMaxBytes: 1024, MaxSessions: 1})
	srv := httptest.NewServer(s)
	defer srv.Close()

	id := openSession(t, srv.URL, "")
	u := fmt.Sprintf("%s/v1/session/%s/append?seq=1", srv.URL, id)
	resp, err := http.Post(u, "application/octet-stream", bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget append: status %d: %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("over-budget append: no Retry-After header")
	}

	if resp, err = http.Post(srv.URL+"/v1/session", "", nil); err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second session over MaxSessions=1: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("session-count rejection: no Retry-After header")
	}
}

// TestClientSessionEvents drives the foldsvc.Client session helper end
// to end and checks that its reconnect logic resumes without gaps or
// duplicates after the server kills the connection.
func TestClientSessionEvents(t *testing.T) {
	tr, _ := genTrace(t, 4, 40)
	chunks := session.Chunks(tr, 3)
	s := NewServer(Config{SessionHeartbeat: 100 * time.Millisecond})
	srv := httptest.NewServer(s)
	defer srv.Close()

	c, err := NewClient(ClientConfig{
		BaseURL:     srv.URL,
		MaxAttempts: 8,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	cs, err := c.OpenSession(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	sess, ok := s.Sessions().Get(cs.ID)
	if !ok {
		t.Fatal("opened session not in manager")
	}

	// First chunk, then snapshot.
	if _, err := cs.Append(ctx, encodeTrace(t, chunks[0])); err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Barrier(ctx); err != nil {
		t.Fatal(err)
	}

	evCh := make(chan SessionEvent, 64)
	evctx, evcancel := context.WithCancel(ctx)
	defer evcancel()
	done := make(chan error, 1)
	go func() {
		done <- cs.Events(evctx, 0, func(ev SessionEvent) error {
			evCh <- ev
			return nil
		})
	}()

	// After the first delivered frame, sever every connection; the
	// client must reconnect with Last-Event-ID and miss nothing.
	first := <-evCh
	srv.CloseClientConnections()

	// Remaining chunks, one snapshot each, while the consumer streams.
	var latest uint64
	for i, ch := range chunks[1:] {
		if _, err := cs.Append(ctx, encodeTrace(t, ch)); err != nil {
			t.Fatalf("append %d: %v", i+2, err)
		}
		sn, err := sess.Barrier(ctx)
		if err != nil {
			t.Fatal(err)
		}
		latest = sn.ID
	}

	ids := []uint64{first.ID}
	final := first.Report
	for ids[len(ids)-1] < latest {
		select {
		case ev := <-evCh:
			ids = append(ids, ev.ID)
			final = ev.Report
		case err := <-done:
			t.Fatalf("Events ended early (%v) after ids %v", err, ids)
		case <-ctx.Done():
			t.Fatalf("timed out waiting for snapshot %d, got %v", latest, ids)
		}
	}
	evcancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Events returned %v, want context.Canceled", err)
	}

	// No duplicates, no gaps, ends at the latest snapshot.
	seen := map[uint64]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("snapshot %d delivered twice across reconnects (ids %v)", id, ids)
		}
		seen[id] = true
	}
	for i := ids[0]; i <= latest; i++ {
		if !seen[i] {
			t.Fatalf("snapshot %d skipped across reconnects (ids %v)", i, ids)
		}
	}
	if final == nil || final.Bursts == 0 {
		t.Fatal("final snapshot report is empty")
	}
}
