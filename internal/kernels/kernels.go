// Package kernels models the computational kernels a synthetic parallel
// application executes between MPI calls. A Kernel defines everything the
// simulator needs to produce one computation burst: its mean duration, how
// duration and work vary across ranks (imbalance) and instances (noise),
// the analytic internal evolution of every hardware counter (the ground
// truth folding must reconstruct), and which source region is active at
// each point of the kernel (the ground truth for call-stack folding).
package kernels

import (
	"fmt"
	"math"

	"repro/internal/counters"
	"repro/internal/trace"
)

// ImbalanceFunc returns the work multiplier for a rank: 1 means the nominal
// duration/work, 2 means twice as much. Implementations must return
// strictly positive values.
type ImbalanceFunc func(rank, ranks int) float64

// Uniform returns the balanced workload: every rank does the same work.
func Uniform() ImbalanceFunc {
	return func(rank, ranks int) float64 { return 1 }
}

// Linear returns a workload ramp: rank 0 does the nominal work and the last
// rank does (1+excess) times as much, linearly interpolated in between.
func Linear(excess float64) ImbalanceFunc {
	if excess <= -1 {
		panic(fmt.Sprintf("kernels: Linear excess %g must be > -1", excess))
	}
	return func(rank, ranks int) float64 {
		if ranks <= 1 {
			return 1
		}
		return 1 + excess*float64(rank)/float64(ranks-1)
	}
}

// Triangular returns a workload peaked at the middle rank, modelling e.g.
// a spatial decomposition where interior domains carry more particles.
// excess is the extra work fraction at the peak.
func Triangular(excess float64) ImbalanceFunc {
	if excess <= -1 {
		panic(fmt.Sprintf("kernels: Triangular excess %g must be > -1", excess))
	}
	return func(rank, ranks int) float64 {
		if ranks <= 1 {
			return 1
		}
		mid := float64(ranks-1) / 2
		d := 1 - math.Abs(float64(rank)-mid)/mid
		return 1 + excess*d
	}
}

// CounterSpec defines one counter's behaviour within a kernel instance:
// the mean total accrued per nominal instance and the internal evolution
// shape. A nil Shape means uniform accrual. Totals scale with the rank's
// imbalance multiplier (more work, proportionally more instructions).
type CounterSpec struct {
	Total int64
	Shape counters.Shape
}

// RegionSpan marks which source region is active up to normalized time
// UpTo. A kernel's spans must have strictly increasing UpTo values ending
// at 1. The spans are the ground truth for call-stack folding: a sample
// taken at progress u inside the kernel observes the active span's region
// on top of its stack.
type RegionSpan struct {
	UpTo float64
	Name string
}

// Kernel is a complete model of one computation phase.
type Kernel struct {
	// Name identifies the kernel; it is also interned as a stack region.
	Name string
	// ID is the ground-truth identity emitted in EvOracle events.
	ID int64
	// MeanDuration is the nominal (imbalance = 1, no noise) duration.
	MeanDuration trace.Time
	// NoiseCV is the coefficient of variation of the per-instance
	// multiplicative lognormal duration noise (0 = deterministic). Noise
	// stretches time without changing work, modelling OS interference.
	NoiseCV float64
	// WorkNoiseCV is the coefficient of variation of per-instance work
	// variation: it scales duration AND counter totals together,
	// modelling data-dependent iterations (e.g. varying interaction
	// counts). Unlike NoiseCV it leaves IPC unchanged.
	WorkNoiseCV float64
	// Imbalance distributes work across ranks; nil means Uniform.
	Imbalance ImbalanceFunc
	// Counters defines per-counter totals and shapes. TotCyc is ignored:
	// cycles accrue with wall time at the machine's clock rate.
	Counters [counters.NumCounters]CounterSpec
	// Regions lists the active source regions over normalized time; empty
	// means the kernel itself is the only active region.
	Regions []RegionSpan
}

// Validate checks the kernel definition is usable by the simulator.
func (k *Kernel) Validate() error {
	if k.Name == "" {
		return fmt.Errorf("kernels: kernel has no name")
	}
	if k.ID <= 0 {
		return fmt.Errorf("kernels: kernel %q needs a positive oracle ID, got %d", k.Name, k.ID)
	}
	if k.MeanDuration <= 0 {
		return fmt.Errorf("kernels: kernel %q has non-positive duration %d", k.Name, k.MeanDuration)
	}
	if k.NoiseCV < 0 {
		return fmt.Errorf("kernels: kernel %q has negative noise CV %g", k.Name, k.NoiseCV)
	}
	if k.WorkNoiseCV < 0 {
		return fmt.Errorf("kernels: kernel %q has negative work-noise CV %g", k.Name, k.WorkNoiseCV)
	}
	for c, spec := range k.Counters {
		if spec.Total < 0 {
			return fmt.Errorf("kernels: kernel %q counter %s has negative total %d",
				k.Name, counters.Counter(c), spec.Total)
		}
	}
	prev := 0.0
	for i, span := range k.Regions {
		if span.UpTo <= prev {
			return fmt.Errorf("kernels: kernel %q region %d: UpTo %g not increasing", k.Name, i, span.UpTo)
		}
		if span.Name == "" {
			return fmt.Errorf("kernels: kernel %q region %d has no name", k.Name, i)
		}
		prev = span.UpTo
	}
	if len(k.Regions) > 0 && math.Abs(prev-1) > 1e-9 {
		return fmt.Errorf("kernels: kernel %q regions end at %g, want 1", k.Name, prev)
	}
	return nil
}

// ShapeOf returns the internal evolution shape of counter c, defaulting to
// uniform accrual when none was specified.
func (k *Kernel) ShapeOf(c counters.Counter) counters.Shape {
	if s := k.Counters[c].Shape; s != nil {
		return s
	}
	return counters.Constant()
}

// TotalOf returns the nominal per-instance total of counter c.
func (k *Kernel) TotalOf(c counters.Counter) int64 { return k.Counters[c].Total }

// ImbalanceOf returns the work multiplier for a rank.
func (k *Kernel) ImbalanceOf(rank, ranks int) float64 {
	if k.Imbalance == nil {
		return 1
	}
	m := k.Imbalance(rank, ranks)
	if m <= 0 {
		panic(fmt.Sprintf("kernels: kernel %q imbalance returned %g for rank %d/%d", k.Name, m, rank, ranks))
	}
	return m
}

// RegionAt returns the source region active at normalized progress u, or
// the kernel's own name when no region spans are defined.
func (k *Kernel) RegionAt(u float64) string {
	for _, span := range k.Regions {
		if u < span.UpTo {
			return span.Name
		}
	}
	if len(k.Regions) > 0 {
		return k.Regions[len(k.Regions)-1].Name
	}
	return k.Name
}

// NoiseSigmaMu returns the lognormal parameters (mu, sigma) that produce a
// multiplicative noise factor with mean exactly 1 and coefficient of
// variation NoiseCV. A zero CV yields (0, 0), i.e. the constant factor 1.
func (k *Kernel) NoiseSigmaMu() (mu, sigma float64) {
	return lognormalParams(k.NoiseCV)
}

// WorkNoiseSigmaMu is NoiseSigmaMu for the work-variation noise.
func (k *Kernel) WorkNoiseSigmaMu() (mu, sigma float64) {
	return lognormalParams(k.WorkNoiseCV)
}

func lognormalParams(cv float64) (mu, sigma float64) {
	if cv == 0 {
		return 0, 0
	}
	s2 := math.Log(1 + cv*cv)
	return -s2 / 2, math.Sqrt(s2)
}
