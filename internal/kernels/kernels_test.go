package kernels

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/counters"
)

func validKernel() *Kernel {
	return &Kernel{
		Name:         "k",
		ID:           1,
		MeanDuration: 1000,
		NoiseCV:      0.05,
		Counters: [counters.NumCounters]CounterSpec{
			counters.TotIns: {Total: 1_000_000, Shape: counters.Linear(1, 3)},
		},
		Regions: []RegionSpan{
			{UpTo: 0.5, Name: "a"},
			{UpTo: 1, Name: "b"},
		},
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := validKernel().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := map[string]func(k *Kernel){
		"no name":       func(k *Kernel) { k.Name = "" },
		"zero id":       func(k *Kernel) { k.ID = 0 },
		"neg id":        func(k *Kernel) { k.ID = -3 },
		"zero duration": func(k *Kernel) { k.MeanDuration = 0 },
		"neg noise":     func(k *Kernel) { k.NoiseCV = -0.1 },
		"neg counter":   func(k *Kernel) { k.Counters[0].Total = -1 },
		"region not increasing": func(k *Kernel) {
			k.Regions = []RegionSpan{{UpTo: 0.5, Name: "a"}, {UpTo: 0.5, Name: "b"}}
		},
		"region unnamed": func(k *Kernel) {
			k.Regions = []RegionSpan{{UpTo: 1, Name: ""}}
		},
		"regions not ending at 1": func(k *Kernel) {
			k.Regions = []RegionSpan{{UpTo: 0.9, Name: "a"}}
		},
	}
	for name, mutate := range cases {
		k := validKernel()
		mutate(k)
		if err := k.Validate(); err == nil {
			t.Errorf("%s: Validate accepted bad kernel", name)
		}
	}
}

func TestShapeOfDefaultsToConstant(t *testing.T) {
	k := validKernel()
	s := k.ShapeOf(counters.L1DCM) // no shape set
	if got := s.Integral(0.5); got != 0.5 {
		t.Fatalf("default shape Integral(0.5) = %g, want 0.5", got)
	}
	s = k.ShapeOf(counters.TotIns)
	if got := s.Integral(0.5); got == 0.5 {
		t.Fatalf("configured shape was ignored")
	}
}

func TestTotalOf(t *testing.T) {
	k := validKernel()
	if k.TotalOf(counters.TotIns) != 1_000_000 {
		t.Fatal("TotalOf TotIns wrong")
	}
	if k.TotalOf(counters.FPOps) != 0 {
		t.Fatal("TotalOf unset counter should be 0")
	}
}

func TestRegionAt(t *testing.T) {
	k := validKernel()
	if got := k.RegionAt(0.2); got != "a" {
		t.Fatalf("RegionAt(0.2) = %q", got)
	}
	if got := k.RegionAt(0.5); got != "b" {
		t.Fatalf("RegionAt(0.5) = %q, want b (half-open spans)", got)
	}
	if got := k.RegionAt(1); got != "b" {
		t.Fatalf("RegionAt(1) = %q", got)
	}
	k.Regions = nil
	if got := k.RegionAt(0.7); got != "k" {
		t.Fatalf("RegionAt without spans = %q, want kernel name", got)
	}
}

func TestImbalanceFuncs(t *testing.T) {
	u := Uniform()
	for r := 0; r < 8; r++ {
		if u(r, 8) != 1 {
			t.Fatal("Uniform not 1")
		}
	}
	l := Linear(0.5)
	if l(0, 9) != 1 {
		t.Fatalf("Linear rank0 = %g", l(0, 9))
	}
	if got := l(8, 9); math.Abs(got-1.5) > 1e-12 {
		t.Fatalf("Linear last = %g", got)
	}
	if l(3, 1) != 1 {
		t.Fatal("Linear with 1 rank must be 1")
	}
	tr := Triangular(0.4)
	if got := tr(4, 9); math.Abs(got-1.4) > 1e-12 {
		t.Fatalf("Triangular mid = %g", got)
	}
	if got := tr(0, 9); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Triangular edge = %g", got)
	}
	if tr(0, 1) != 1 {
		t.Fatal("Triangular single rank must be 1")
	}
}

func TestImbalancePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"linear":     func() { Linear(-1) },
		"triangular": func() { Triangular(-1.5) },
		"imbalance returns 0": func() {
			k := validKernel()
			k.Imbalance = func(rank, ranks int) float64 { return 0 }
			k.ImbalanceOf(0, 4)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestImbalanceOfNilIsUniform(t *testing.T) {
	k := validKernel()
	k.Imbalance = nil
	if k.ImbalanceOf(3, 8) != 1 {
		t.Fatal("nil imbalance should be uniform")
	}
	k.Imbalance = Linear(1)
	if got := k.ImbalanceOf(7, 8); got != 2 {
		t.Fatalf("ImbalanceOf = %g, want 2", got)
	}
}

func TestNoiseSigmaMuMeanOne(t *testing.T) {
	k := validKernel()
	k.NoiseCV = 0.2
	mu, sigma := k.NoiseSigmaMu()
	rng := rand.New(rand.NewPCG(1, 2))
	var sum, sumsq float64
	const n = 200000
	for i := 0; i < n; i++ {
		x := math.Exp(mu + sigma*rng.NormFloat64())
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	cv := math.Sqrt(sumsq/n-mean*mean) / mean
	if math.Abs(mean-1) > 0.01 {
		t.Fatalf("lognormal mean = %g, want 1", mean)
	}
	if math.Abs(cv-0.2) > 0.01 {
		t.Fatalf("lognormal cv = %g, want 0.2", cv)
	}
}

func TestNoiseSigmaMuZero(t *testing.T) {
	k := validKernel()
	k.NoiseCV = 0
	mu, sigma := k.NoiseSigmaMu()
	if mu != 0 || sigma != 0 {
		t.Fatalf("zero CV gave mu=%g sigma=%g", mu, sigma)
	}
}
