package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an ordered set of label name/value pairs attached to one
// metric series, e.g. Labels{{"path", "/v1/analyze"}, {"code", "200"}}.
// Order is preserved into the rendered output.
type Labels []Label

// Label is one name/value pair of a series' label set.
type Label struct {
	// Name is the label name (must match [a-zA-Z_][a-zA-Z0-9_]*).
	Name string
	// Value is the label value; rendered escaped, so any string works.
	Value string
}

// L is shorthand for building a Labels list from alternating name/value
// strings: L("path", "/v1/analyze", "code", "200"). It panics on an odd
// argument count — label sets are static call sites, not data.
func L(nv ...string) Labels {
	if len(nv)%2 != 0 {
		panic("obs: L requires name/value pairs")
	}
	ls := make(Labels, 0, len(nv)/2)
	for i := 0; i < len(nv); i += 2 {
		ls = append(ls, Label{Name: nv[i], Value: nv[i+1]})
	}
	return ls
}

// key renders the label set into the canonical series key used both for
// lookup and for the exposition output ({} when empty).
func (ls Labels) key() string {
	if len(ls) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escaping (backslash,
// double quote, newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, `\"`+"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Counter is a monotonically increasing series. The zero value is
// usable, but counters are normally created through Registry.Counter so
// they render on /metrics.
type Counter struct {
	bits atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by v; negative v panics (counters only go
// up — use a Gauge for values that can fall).
func (c *Counter) Add(v float64) {
	if v < 0 {
		panic("obs: counter decrease")
	}
	for {
		old := c.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if c.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a series that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add increases (or, with negative v, decreases) the gauge by v.
func (g *Gauge) Add(v float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a cumulative-bucket histogram series.
type Histogram struct {
	bounds []float64 // upper bounds, ascending, +Inf implicit
	counts []atomic.Uint64
	count  atomic.Uint64
	sum    Gauge // atomic float accumulator (only ever added to)
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sum.Add(v)
}

// DefBuckets is the default histogram bucketing, in seconds — the usual
// latency spread from 1 ms to ~100 s.
var DefBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 100,
}

// metricKind discriminates the family types in the registry.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// series is one labeled instance inside a family.
type series struct {
	labels Labels
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// family is all series sharing one metric name, help string and type.
type family struct {
	name   string
	help   string
	kind   metricKind
	order  []string           // series keys in registration order
	series map[string]*series // key → series
}

// Registry holds metric families and renders them in the Prometheus
// text exposition format. The zero value is not usable; call
// NewRegistry.
type Registry struct {
	mu       sync.Mutex
	order    []string
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// lookup finds or creates the family and series for (name, labels),
// enforcing that a name is never reused with a different kind. init runs
// under the registry lock so concurrent first resolutions of one series
// initialize its payload exactly once.
func (r *Registry) lookup(name, help string, kind metricKind, labels Labels, init func(*series)) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
		r.order = append(r.order, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %s re-registered with a different type", name))
	}
	k := labels.key()
	s := f.series[k]
	if s == nil {
		s = &series{labels: labels}
		f.series[k] = s
		f.order = append(f.order, k)
	}
	if init != nil {
		init(s)
	}
	return s
}

// Counter returns the counter named name with the given label set,
// creating it on first use. Repeated calls with the same (name, labels)
// return the same underlying series, so call sites may re-resolve
// per request without duplicating output.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, kindCounter, Labels(labels), func(s *series) {
		if s.c == nil {
			s.c = &Counter{}
		}
	})
	return s.c
}

// Gauge returns the gauge named name with the given label set, creating
// it on first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.lookup(name, help, kindGauge, Labels(labels), func(s *series) {
		if s.g == nil {
			s.g = &Gauge{}
		}
	})
	return s.g
}

// GaugeFunc registers a callback gauge: fn is invoked at render time,
// so the series always exposes the live value (pool statistics,
// goroutine counts, uptime). Registering the same (name, labels) twice
// replaces the callback.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.lookup(name, help, kindGaugeFunc, labels, func(s *series) {
		s.fn = fn
	})
}

// Histogram returns the histogram named name with the given label set
// and upper bucket bounds (ascending; the +Inf bucket is implicit; nil
// selects DefBuckets), creating it on first use.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	s := r.lookup(name, help, kindHistogram, Labels(labels), func(s *series) {
		if s.h != nil {
			return
		}
		b := buckets
		if b == nil {
			b = DefBuckets
		}
		s.h = &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b))}
	})
	return s.h
}

// WritePrometheus renders every registered family in the text
// exposition format (HELP and TYPE headers followed by the series in
// registration order).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.order {
		f := r.families[name]
		typ := "counter"
		switch f.kind {
		case kindGauge, kindGaugeFunc:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
			return err
		}
		for _, k := range f.order {
			if err := writeSeries(w, f, f.series[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeSeries renders one series of f.
func writeSeries(w io.Writer, f *family, s *series) error {
	lk := s.labels.key()
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lk, formatValue(s.c.Value()))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lk, formatValue(s.g.Value()))
		return err
	case kindGaugeFunc:
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, lk, formatValue(s.fn()))
		return err
	case kindHistogram:
		h := s.h
		var cum uint64
		for i, b := range h.bounds {
			cum += h.counts[i].Load()
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
				withLE(s.labels, formatValue(b)), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name,
			withLE(s.labels, "+Inf"), h.count.Load()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, lk, formatValue(h.sum.Value())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, lk, h.count.Load())
		return err
	}
	return nil
}

// withLE renders a label key with the histogram "le" bound appended.
func withLE(ls Labels, le string) string {
	all := make(Labels, len(ls), len(ls)+1)
	copy(all, ls)
	all = append(all, Label{Name: "le", Value: le})
	return all.key()
}

// formatValue renders a sample value the way Prometheus expects:
// integral values without an exponent, everything else in Go's shortest
// round-trip form.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// Handler returns an http.Handler serving the registry in the text
// exposition format — the /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		io.WriteString(w, b.String())
	})
}

// Names returns the registered family names in registration order —
// used by the metrics-catalog test and the operations runbook
// generator to keep documentation honest.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.order))
	copy(out, r.order)
	return out
}
