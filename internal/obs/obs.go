// Package obs is the observability layer shared by the analysis daemon
// (cmd/foldsvc) and the CLIs: a dependency-free metrics registry rendered
// in the Prometheus text exposition format, structured-logging (slog)
// constructors with a uniform configuration surface, and net/http/pprof
// wiring for a non-default ServeMux.
//
// The registry is deliberately small — counters, gauges (including
// callback gauges), and cumulative histograms, each with an optional
// fixed label set — because the analysis engine only needs to expose
// request traffic, record/burst throughput, cluster counts and pool
// activity. Everything is safe for concurrent use; rendering takes a
// consistent snapshot under the registry lock.
package obs

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strings"
)

// NewLogger builds a slog.Logger writing to w at the given level, in
// logfmt-style text by default or JSON when json is set. It is the one
// logger constructor the binaries share, so every process logs in the
// same shape.
func NewLogger(w io.Writer, level slog.Level, json bool) *slog.Logger {
	opts := &slog.HandlerOptions{Level: level}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts))
	}
	return slog.New(slog.NewTextHandler(w, opts))
}

// ParseLevel resolves a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive) to a slog.Level, defaulting to Info for
// unknown strings.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(s) {
	case "debug":
		return slog.LevelDebug
	case "warn", "warning":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	default:
		return slog.LevelInfo
	}
}

// Discard returns a logger that drops every record. The analysis
// packages normalize a nil Options/Config logger to this, so library
// code can log unconditionally without nil checks and CLI runs stay
// silent unless a logger is supplied.
func Discard() *slog.Logger { return slog.New(discardHandler{}) }

// discardHandler is a slog.Handler that is never enabled.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// Or returns l unless it is nil, in which case it returns the discard
// logger — the normalization helper every package-level default uses.
func Or(l *slog.Logger) *slog.Logger {
	if l == nil {
		return Discard()
	}
	return l
}

// RegisterPprof mounts the net/http/pprof handlers under /debug/pprof/
// on mux. The stock pprof package only registers on
// http.DefaultServeMux; daemons that build their own mux (as foldsvc
// does, to keep the surface explicit) call this instead.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
