package obs

import (
	"bytes"
	"context"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeRendering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", Label{Name: "code", Value: "200"})
	c.Add(3)
	r.Counter("requests_total", "Requests.", Label{Name: "code", Value: "500"}).Inc()
	g := r.Gauge("inflight", "In flight.")
	g.Set(2)
	g.Dec()
	r.GaugeFunc("uptime", "Uptime.", nil, func() float64 { return 1.5 })

	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP requests_total Requests.",
		"# TYPE requests_total counter",
		`requests_total{code="200"} 3`,
		`requests_total{code="500"} 1`,
		"# TYPE inflight gauge",
		"inflight 1",
		"uptime 1.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSameSeriesIsShared(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "X.", Label{Name: "k", Value: "v"})
	b := r.Counter("x_total", "X.", Label{Name: "k", Value: "v"})
	if a != b {
		t.Fatal("same (name, labels) did not resolve to the same series")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("shared series does not share state")
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		"lat_seconds_sum 56.05",
		"lat_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("weird_total", "Weird.", Label{Name: "p", Value: `a"b\c` + "\n"}).Inc()
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `weird_total{p="a\"b\\c\n"} 1`) {
		t.Errorf("label not escaped:\n%s", b.String())
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c_total", "C.").Inc()
				r.Histogram("h", "H.", []float64{1}).Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if v := r.Counter("c_total", "C.").Value(); v != 8000 {
		t.Fatalf("counter = %v, want 8000", v)
	}
	var b bytes.Buffer
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `h_bucket{le="+Inf"} 8000`) {
		t.Errorf("histogram lost observations:\n%s", b.String())
	}
}

func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("one_total", "One.").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content-type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "one_total 1") {
		t.Errorf("body missing sample:\n%s", rec.Body.String())
	}
}

func TestDiscardAndOr(t *testing.T) {
	if Or(nil) == nil {
		t.Fatal("Or(nil) returned nil")
	}
	// Must not panic and must report disabled at every level.
	l := Discard()
	l.Info("dropped")
	if l.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("discard logger claims to be enabled")
	}
	real := NewLogger(&bytes.Buffer{}, slog.LevelInfo, false)
	if Or(real) != real {
		t.Fatal("Or did not pass through a non-nil logger")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]slog.Level{
		"debug": slog.LevelDebug, "INFO": slog.LevelInfo,
		"Warn": slog.LevelWarn, "error": slog.LevelError,
		"bogus": slog.LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestRegisterPprof(t *testing.T) {
	mux := http.NewServeMux()
	RegisterPprof(mux)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/cmdline", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("pprof cmdline status %d", rec.Code)
	}
}
