package online

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/trace"
)

// TestFolderSingleSampleBinMerge is the bin-merge edge case: with exactly
// one sample per instance, no single instance could ever be folded alone
// (four points are needed), so the snapshot only exists because samples
// from different instances merge into shared bins.
func TestFolderSingleSampleBinMerge(t *testing.T) {
	shape := counters.Linear(0.4, 1.6)
	stream := genStream(shape, 400, 1, 11)
	f := NewFolder(counters.TotIns, 100)
	for i := range stream {
		f.Add(&stream[i])
	}
	if f.Instances() != 400 || f.Points() != 400 {
		t.Fatalf("instances/points = %d/%d, want 400/400", f.Instances(), f.Points())
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(snap.Cumulative); i++ {
		if snap.Cumulative[i] < snap.Cumulative[i-1] {
			t.Fatalf("cumulative not monotone at bin %d: %.6f < %.6f",
				i, snap.Cumulative[i], snap.Cumulative[i-1])
		}
	}
	if d := snap.MeanAbsDiff(shape); d > 0.03 {
		t.Fatalf("single-sample fold diff = %.4f", d)
	}
}

// TestFolderSingleBinOccupied pushes bin-merge to its degenerate limit:
// every sample lands at the same normalized position, so all points merge
// into one bin and the fit has to interpolate from that bin plus the
// implicit (0,0) and (1,1) anchors.
func TestFolderSingleBinOccupied(t *testing.T) {
	f := NewFolder(counters.TotIns, 100)
	for i := 0; i < 10; i++ {
		in := folding.Instance{
			Start: trace.Time(i) * 2_000_000,
			End:   trace.Time(i)*2_000_000 + 1_000_000,
		}
		in.Totals[counters.TotIns] = 1_000_000
		var s trace.Sample
		s.Time = in.Start + 500_000 // x = 0.5 in every instance
		s.Counters[counters.TotIns] = 500_000
		in.Samples = append(in.Samples, s)
		if !f.Add(&in) {
			t.Fatalf("instance %d rejected", i)
		}
	}
	if f.Points() != 10 {
		t.Fatalf("points = %d, want 10", f.Points())
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatalf("single-bin snapshot failed: %v", err)
	}
	mid := snap.Cumulative[len(snap.Cumulative)/2]
	if mid < 0.45 || mid > 0.55 {
		t.Fatalf("cumulative at x=0.5 is %.4f, want ≈0.5", mid)
	}
	for i := 1; i < len(snap.Cumulative); i++ {
		if snap.Cumulative[i] < snap.Cumulative[i-1] {
			t.Fatalf("cumulative not monotone at bin %d", i)
		}
	}
}

// identicalBursts builds n byte-identical bursts laid out back to back so
// the training cloud of their cluster has zero extent.
func identicalBursts(n int, dur trace.Time, ins, cyc int64, clock *trace.Time) []burst.Burst {
	out := make([]burst.Burst, n)
	for i := range out {
		out[i].Start = *clock
		out[i].End = *clock + dur
		out[i].Delta[counters.TotIns] = ins
		out[i].Delta[counters.TotCyc] = cyc
		*clock += 2 * dur
	}
	return out
}

// TestClassifierZeroRadiusCentroid trains on two phases whose members are
// all identical, so each centroid's acceptance radius collapses to zero:
// an exact repeat must still classify into its phase (distance 0 is
// within a zero radius), while anything else — even between the two
// centroids — must be noise.
func TestClassifierZeroRadiusCentroid(t *testing.T) {
	var clock trace.Time
	a := identicalBursts(10, 1_000_000, 4_000_000, 2_000_000, &clock)
	b := identicalBursts(10, 8_000_000, 8_000_000, 8_000_000, &clock)
	training := append(append([]burst.Burst{}, a...), b...)

	clf, err := Train(training, cluster.Config{Eps: 0.05, MinPts: 3, UseIPC: true})
	if err != nil {
		t.Fatal(err)
	}
	if clf.Training.K != 2 {
		t.Fatalf("training found K=%d, want 2", clf.Training.K)
	}

	repeat := a[0] // identical to phase A's members
	repeat.Cluster = 0
	if got := clf.Classify(&repeat); got != training[0].Cluster {
		t.Fatalf("exact repeat classified as %d, want phase %d", got, training[0].Cluster)
	}
	// Slightly longer than phase A: outside a zero radius.
	near := a[0]
	near.End = near.Start + 1_500_000
	if got := clf.Classify(&near); got != cluster.Noise {
		t.Fatalf("perturbed burst classified as %d, want noise", got)
	}
	// Between the two centroids: within neither zero radius.
	mid := burst.Burst{Start: 0, End: 3_000_000}
	mid.Delta[counters.TotIns] = 6_000_000
	mid.Delta[counters.TotCyc] = 4_000_000
	if got := clf.Classify(&mid); got != cluster.Noise {
		t.Fatalf("midway burst classified as %d, want noise", got)
	}
}

// TestEmptyPhaseFolders pins the empty-phase behavior the streaming
// pipeline relies on: a classified phase that never receives an instance
// must yield a clean Snapshot error from the counter folder and an empty
// (but valid) call-stack view, not a panic or a bogus curve.
func TestEmptyPhaseFolders(t *testing.T) {
	f := NewFolder(counters.TotIns, 50)
	if _, err := f.Snapshot(); err == nil {
		t.Fatal("empty Folder snapshot succeeded")
	} else if !strings.Contains(err.Error(), "0 folded points") {
		t.Fatalf("empty snapshot error = %v", err)
	}

	sf := NewStackFolder(50)
	if sf.Samples() != 0 {
		t.Fatalf("empty StackFolder reports %d samples", sf.Samples())
	}
	snap := sf.Snapshot()
	if snap.Samples != 0 || len(snap.Regions) != 0 {
		t.Fatalf("empty StackFolder snapshot = %d samples, %d regions",
			snap.Samples, len(snap.Regions))
	}
}

// TestNewFolderConfig checks the config unification: the offline
// folding.Config drives the incremental folder, with zero values falling
// back to the online defaults.
func TestNewFolderConfig(t *testing.T) {
	f := NewFolderConfig(counters.L2DCM, folding.Config{Bins: 64, PruneK: 2.5})
	if f.Counter != counters.L2DCM || f.Bins != 64 || f.PruneK != 2.5 {
		t.Fatalf("configured folder = %+v", f)
	}
	f = NewFolderConfig(counters.TotIns, folding.Config{})
	if f.Bins != 100 || f.PruneK != 4 {
		t.Fatalf("default folder bins/pruneK = %d/%.1f, want 100/4", f.Bins, f.PruneK)
	}
}

// TestStackFolderMatchesFoldStacks checks the incremental call-stack
// folder reproduces the offline FoldStacks result exactly on the same
// instances — the property AnalyzeStream's batch equivalence rests on.
func TestStackFolderMatchesFoldStacks(t *testing.T) {
	stream := genStream(counters.Constant(), 120, 3, 17)
	for i := range stream {
		for j := range stream[i].Samples {
			// Alternate two regions with an instance-dependent split.
			id := uint32(1)
			if (i+j)%3 == 0 {
				id = 2
			}
			stream[i].Samples[j].Stack = []uint32{id, 7}
		}
	}
	sf := NewStackFolder(50)
	for i := range stream {
		sf.Add(&stream[i])
	}
	offline := folding.FoldStacks(stream, 50)
	if !reflect.DeepEqual(sf.Snapshot(), offline) {
		t.Fatal("incremental stack fold differs from FoldStacks")
	}
}
