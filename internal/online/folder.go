package online

import (
	"fmt"
	"math"

	"repro/internal/counters"
	"repro/internal/fit"
	"repro/internal/folding"
	"repro/internal/stats"
)

// Folder incrementally folds one counter of one phase. Each incoming
// instance's samples are normalized and accumulated into fixed bins, so
// memory stays O(bins) regardless of run length — the property that makes
// on-line folding viable where storing the full sample cloud is not.
//
// Outlier rejection uses running statistics instead of the offline
// median/MAD: instances whose duration or total deviates more than
// PruneK running standard deviations from the running mean are skipped
// (after a warmup of 8 instances).
type Folder struct {
	Counter counters.Counter
	Bins    int
	// PruneK is the rejection threshold in running standard deviations
	// (default 4; negative disables).
	PruneK float64

	sumW, sumWX, sumWY []float64
	durStats, totStats stats.Online
	instances, pruned  int
	points             int
}

// NewFolderConfig creates an incremental folder from an offline folding
// configuration, so the streaming pipeline and core.Options drive both
// folding paths with one config: Bins maps directly; a non-zero PruneK
// overrides the online default (note the semantics differ — running
// standard deviations here, median/MAD offline). Config fields without a
// streaming counterpart (Model, KernelBandwidth, segmentation) are
// ignored: the folder always follows the binned-PCHIP path.
func NewFolderConfig(c counters.Counter, cfg folding.Config) *Folder {
	f := NewFolder(c, cfg.Bins)
	if cfg.PruneK != 0 {
		f.PruneK = cfg.PruneK
	}
	return f
}

// NewFolder creates an incremental folder.
func NewFolder(c counters.Counter, bins int) *Folder {
	if bins <= 0 {
		bins = 100
	}
	return &Folder{
		Counter: c,
		Bins:    bins,
		PruneK:  4,
		sumW:    make([]float64, bins),
		sumWX:   make([]float64, bins),
		sumWY:   make([]float64, bins),
	}
}

// Add folds one instance into the accumulator. Returns false when the
// instance was rejected as an outlier.
func (f *Folder) Add(in *folding.Instance) bool {
	d := float64(in.Duration())
	tot := float64(in.Totals[f.Counter])
	if d <= 0 || tot <= 0 {
		return false
	}
	if f.PruneK >= 0 && f.durStats.N() >= 8 {
		if math.Abs(d-f.durStats.Mean()) > f.PruneK*f.durStats.StdDev()+1e-9 ||
			math.Abs(tot-f.totStats.Mean()) > f.PruneK*f.totStats.StdDev()+1e-9 {
			f.pruned++
			return false
		}
	}
	f.durStats.Add(d)
	f.totStats.Add(tot)
	f.instances++
	for _, s := range in.Samples {
		x := float64(s.Time-in.Start) / d
		y := float64(s.Counters[f.Counter]-in.Base[f.Counter]) / tot
		if x < 0 || x > 1 || math.IsNaN(y) {
			continue
		}
		if y < 0 {
			y = 0
		}
		if y > 1 {
			y = 1
		}
		b := int(x * float64(f.Bins))
		if b >= f.Bins {
			b = f.Bins - 1
		}
		f.sumW[b]++
		f.sumWX[b] += x
		f.sumWY[b] += y
		f.points++
	}
	return true
}

// Instances returns how many instances were folded; Pruned how many were
// rejected; Points how many samples were accumulated.
func (f *Folder) Instances() int { return f.instances }

// Pruned returns the number of rejected instances.
func (f *Folder) Pruned() int { return f.pruned }

// Points returns the number of accumulated samples.
func (f *Folder) Points() int { return f.points }

// Snapshot fits the current accumulated bins into a folding.Result. It can
// be called at any time during the stream; the fold sharpens as instances
// accumulate. The returned result has no Points cloud (the stream does not
// retain samples) — diagnostics that need raw positions are approximated
// from bin occupancy.
func (f *Folder) Snapshot() (*folding.Result, error) {
	if f.points < 4 {
		return nil, fmt.Errorf("online: only %d folded points", f.points)
	}
	// Bin means → isotonic projection → monotone cubic, mirroring the
	// offline ModelBinnedPCHIP path.
	var pts []fit.Point
	for b := 0; b < f.Bins; b++ {
		if f.sumW[b] == 0 {
			continue
		}
		pts = append(pts, fit.Point{
			X: f.sumWX[b] / f.sumW[b],
			Y: f.sumWY[b] / f.sumW[b],
			W: f.sumW[b],
		})
	}
	iso := fit.Isotonic(pts)
	xs := make([]float64, 0, len(pts)+2)
	ys := make([]float64, 0, len(pts)+2)
	if pts[0].X > 0 {
		xs = append(xs, 0)
		ys = append(ys, 0)
	}
	prevX := -1.0
	for i, p := range pts {
		x := p.X
		if x <= prevX {
			x = math.Nextafter(prevX, 2)
		}
		prevX = x
		xs = append(xs, x)
		ys = append(ys, iso[i])
	}
	if xs[len(xs)-1] < 1 {
		xs = append(xs, 1)
		ys = append(ys, 1)
	}
	p, err := fit.NewPCHIP(xs, ys)
	if err != nil {
		return nil, fmt.Errorf("online: %w", err)
	}

	res := &folding.Result{
		Counter:      f.Counter,
		Instances:    f.instances,
		Pruned:       f.pruned,
		MeanDuration: f.durStats.Mean(),
		MeanTotal:    f.totStats.Mean(),
	}
	res.Grid = make([]float64, f.Bins+1)
	res.Cumulative = make([]float64, f.Bins+1)
	res.Rate = make([]float64, f.Bins+1)
	scale := res.MeanTotal / res.MeanDuration
	for i := range res.Grid {
		x := float64(i) / float64(f.Bins)
		res.Grid[i] = x
		res.Cumulative[i] = clamp01(p.Eval(x))
		res.Rate[i] = p.Deriv(x) * scale
		if res.Rate[i] < 0 {
			res.Rate[i] = 0
		}
	}
	res.Cumulative[0] = 0
	res.Cumulative[f.Bins] = 1
	return res, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
