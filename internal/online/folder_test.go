package online

import (
	"math/rand/v2"
	"sort"
	"testing"

	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/trace"
)

// genStream generates instances of a phase with the given shape, one at a
// time (mirroring the folding package's generator but kept local so the
// streaming tests are self-contained).
func genStream(shape counters.Shape, n, samplesPer int, seed uint64) []folding.Instance {
	rng := rand.New(rand.NewPCG(seed, 5))
	const meanDur = 1_000_000
	const total = 10_000_000
	out := make([]folding.Instance, n)
	var clock trace.Time
	for i := range out {
		d := trace.Time(meanDur * (1 + 0.05*(2*rng.Float64()-1)))
		in := folding.Instance{Start: clock, End: clock + d}
		in.Totals[counters.TotIns] = total
		xs := make([]float64, samplesPer)
		for j := range xs {
			xs[j] = rng.Float64()
		}
		sort.Float64s(xs)
		for _, x := range xs {
			var s trace.Sample
			s.Time = in.Start + trace.Time(x*float64(d))
			s.Counters[counters.TotIns] = int64(float64(total)*shape.Integral(x) + 0.5)
			in.Samples = append(in.Samples, s)
		}
		out[i] = in
		clock += d
	}
	return out
}

func TestIncrementalFoldMatchesOffline(t *testing.T) {
	shape := counters.ExpDecay(3, 0.15)
	stream := genStream(shape, 500, 2, 9)

	f := NewFolder(counters.TotIns, 100)
	for i := range stream {
		f.Add(&stream[i])
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := snap.MeanAbsDiff(shape); d > 0.02 {
		t.Fatalf("streaming fold diff = %.4f", d)
	}

	offline, err := folding.Fold(stream, folding.Config{Counter: counters.TotIns})
	if err != nil {
		t.Fatal(err)
	}
	if d := folding.MeanAbsDiffResults(snap, offline); d > 0.01 {
		t.Fatalf("streaming vs offline diff = %.4f", d)
	}
	if f.Instances() != 500 || f.Points() != 1000 {
		t.Fatalf("instances/points = %d/%d", f.Instances(), f.Points())
	}
}

func TestSnapshotSharpensOverTime(t *testing.T) {
	shape := counters.Linear(0.4, 1.6)
	stream := genStream(shape, 400, 1, 3)
	f := NewFolder(counters.TotIns, 100)
	var early, late float64
	for i := range stream {
		f.Add(&stream[i])
		if i == 39 {
			snap, err := f.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			early = snap.MeanAbsDiff(shape)
		}
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	late = snap.MeanAbsDiff(shape)
	if late > early {
		t.Fatalf("fold did not sharpen: early %.4f late %.4f", early, late)
	}
	if late > 0.02 {
		t.Fatalf("converged streaming fold diff = %.4f", late)
	}
}

func TestFolderPrunesRunningOutliers(t *testing.T) {
	stream := genStream(counters.Constant(), 200, 2, 6)
	// Stretch every 20th instance 5×, starting after the warmup.
	for i := 20; i < len(stream); i += 20 {
		stream[i].End = stream[i].Start + 5*stream[i].Duration()
	}
	f := NewFolder(counters.TotIns, 100)
	for i := range stream {
		f.Add(&stream[i])
	}
	if f.Pruned() == 0 {
		t.Fatal("no outliers pruned")
	}
	snap, err := f.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if d := snap.MeanAbsDiff(counters.Constant()); d > 0.02 {
		t.Fatalf("pruned streaming fold diff = %.4f", d)
	}
}

func TestFolderRejectsDegenerateInstances(t *testing.T) {
	f := NewFolder(counters.TotIns, 50)
	in := folding.Instance{Start: 10, End: 10} // zero duration
	if f.Add(&in) {
		t.Fatal("zero-duration instance accepted")
	}
	in2 := folding.Instance{Start: 0, End: 100} // zero total
	if f.Add(&in2) {
		t.Fatal("zero-total instance accepted")
	}
	if _, err := f.Snapshot(); err == nil {
		t.Fatal("empty snapshot succeeded")
	}
}

func TestFolderDefaults(t *testing.T) {
	f := NewFolder(counters.L1DCM, 0)
	if f.Bins != 100 {
		t.Fatalf("default bins = %d", f.Bins)
	}
}
