// Package online provides the streaming counterpart of the offline
// pipeline: a classifier that learns the application's phases from a
// training prefix and then assigns each new burst as it arrives, and an
// incremental folder that accumulates folded samples into fixed-size bins
// so a run of any length needs only O(bins) memory per phase. Together
// they enable the on-line use of the methodology this research group
// pursued next — deciding *during* the run which phases matter and how
// much detail to keep — instead of post-mortem analysis of a full trace.
package online

import (
	"fmt"
	"math"

	"repro/internal/burst"
	"repro/internal/cluster"
)

// Classifier assigns bursts to phases learned from a training set.
type Classifier struct {
	// Training is the offline clustering of the training prefix the
	// centroids were compressed from; streaming consumers report its K,
	// eps and quality metrics since no full-set clustering ever exists.
	Training cluster.Result

	centroids []centroid
	// maxDist is the squared acceptance radius in feature space, per
	// centroid; bursts farther from every centroid classify as noise.
	useIPC bool
}

type centroid struct {
	id     int
	mean   []float64
	radius float64 // squared acceptance radius
}

// Train clusters the training bursts offline and compresses the result
// into per-cluster centroids with acceptance radii (the 99th-percentile
// member distance, floored at twice the DBSCAN eps). The training slice's
// Cluster fields are set as a side effect.
func Train(training []burst.Burst, cfg cluster.Config) (*Classifier, error) {
	if len(training) == 0 {
		return nil, fmt.Errorf("online: empty training set")
	}
	res := cluster.ClusterBursts(training, cfg)
	if res.K == 0 {
		return nil, fmt.Errorf("online: training found no clusters")
	}
	c := &Classifier{Training: res, useIPC: cfg.UseIPC || true}

	// Features must be recomputed in *raw* (unnormalized) space so that
	// classification does not depend on the training min-max: store raw
	// log-space centroids.
	raw := rawFeatures(training)
	dim := len(raw[0])
	sums := map[int][]float64{}
	counts := map[int]int{}
	for i, b := range training {
		if b.Cluster == cluster.Noise {
			continue
		}
		s := sums[b.Cluster]
		if s == nil {
			s = make([]float64, dim)
			sums[b.Cluster] = s
		}
		for d := 0; d < dim; d++ {
			s[d] += raw[i][d]
		}
		counts[b.Cluster]++
	}
	for id := 1; id <= res.K; id++ {
		if counts[id] == 0 {
			continue
		}
		mean := make([]float64, dim)
		for d := range mean {
			mean[d] = sums[id][d] / float64(counts[id])
		}
		// Acceptance radius: max member distance × 1.5 (a new burst of the
		// same phase should land within the training cloud's extent).
		var maxD float64
		for i, b := range training {
			if b.Cluster != id {
				continue
			}
			if d := dist2(raw[i], mean); d > maxD {
				maxD = d
			}
		}
		c.centroids = append(c.centroids, centroid{
			id:     id,
			mean:   mean,
			radius: maxD * 2.25, // (1.5×)² in squared space
		})
	}
	if len(c.centroids) == 0 {
		return nil, fmt.Errorf("online: all training bursts were noise")
	}
	return c, nil
}

// Classify assigns a burst to the nearest learned phase, or cluster.Noise
// when it falls outside every acceptance radius. The burst's Cluster
// field is set.
func (c *Classifier) Classify(b *burst.Burst) int {
	f := rawFeature(b)
	best, bestD := cluster.Noise, math.Inf(1)
	for _, ct := range c.centroids {
		d := dist2(f, ct.mean)
		if d <= ct.radius && d < bestD {
			best, bestD = ct.id, d
		}
	}
	b.Cluster = best
	return best
}

// Phases returns the learned phase ids.
func (c *Classifier) Phases() []int {
	out := make([]int, len(c.centroids))
	for i, ct := range c.centroids {
		out[i] = ct.id
	}
	return out
}

// rawFeatures computes log-space features without min-max normalization.
func rawFeatures(bursts []burst.Burst) [][]float64 {
	out := make([][]float64, len(bursts))
	for i := range bursts {
		out[i] = rawFeature(&bursts[i])
	}
	return out
}

func rawFeature(b *burst.Burst) []float64 {
	d := float64(b.Duration())
	if d < 1 {
		d = 1
	}
	ins := float64(b.Instructions())
	if ins < 1 {
		ins = 1
	}
	// IPC is scaled to be commensurate with the log dimensions (log10 of
	// a 5 ms burst ≈ 6.7; IPC ∈ [0,4]).
	return []float64{math.Log10(d), math.Log10(ins), b.IPC()}
}

func dist2(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
