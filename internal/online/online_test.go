package online

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/sim"
	"repro/internal/trace"
)

// streamSetup simulates the stencil app and returns the filtered bursts
// (in stream order) plus their attached samples.
func streamSetup(t *testing.T, iters int) ([]burst.Burst, [][]folding.Instance, *sim.Config) {
	t.Helper()
	app := apps.NewStencil(iters)
	cfg := apps.DefaultTraceConfig(8)
	tr, err := sim.Run(cfg, app)
	if err != nil {
		t.Fatal(err)
	}
	all, err := burst.Extract(tr)
	if err != nil {
		t.Fatal(err)
	}
	kept, _ := burst.Filter{MinDuration: 50_000}.Apply(all)
	attached := burst.AttachSamples(tr, kept)
	instances := make([][]folding.Instance, len(kept))
	for i := range kept {
		instances[i] = []folding.Instance{{
			Rank:    kept[i].Rank,
			Start:   kept[i].Start,
			End:     kept[i].End,
			Base:    kept[i].Base,
			Totals:  kept[i].Delta,
			Samples: attached[i],
		}}
	}
	return kept, instances, &cfg
}

func TestTrainThenClassifyMatchesOffline(t *testing.T) {
	kept, _, _ := streamSetup(t, 150)
	// Train on the first 20% of the stream.
	split := len(kept) / 5
	training := append([]burst.Burst(nil), kept[:split]...)
	clf, err := Train(training, cluster.Config{UseIPC: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(clf.Phases()) < 2 {
		t.Fatalf("phases learned = %d", len(clf.Phases()))
	}

	// Offline reference on the full stream.
	offline := append([]burst.Burst(nil), kept...)
	cluster.ClusterBursts(offline, cluster.Config{UseIPC: true})

	// Online classification of the remainder must agree with the offline
	// labels (up to a permutation learned from co-occurrence).
	remap := map[int]map[int]int{}
	agree, total := 0, 0
	for i := split; i < len(kept); i++ {
		b := kept[i]
		on := clf.Classify(&b)
		off := offline[i].Cluster
		if off == cluster.Noise {
			continue
		}
		if remap[on] == nil {
			remap[on] = map[int]int{}
		}
		remap[on][off]++
		total++
	}
	// Majority mapping per online label.
	for on, m := range remap {
		best, bestN := 0, 0
		for off, n := range m {
			if n > bestN {
				best, bestN = off, n
			}
		}
		agree += m[best]
		_ = on
	}
	if total == 0 {
		t.Fatal("no classified bursts")
	}
	if frac := float64(agree) / float64(total); frac < 0.97 {
		t.Fatalf("online/offline agreement = %.3f", frac)
	}
}

func TestClassifyRejectsAlienBurst(t *testing.T) {
	kept, _, _ := streamSetup(t, 60)
	clf, err := Train(kept[:len(kept)/2], cluster.Config{UseIPC: true})
	if err != nil {
		t.Fatal(err)
	}
	var alien burst.Burst
	alien.Start = 0
	alien.End = 500_000_000 // 500 ms: nothing like the training phases
	alien.Delta[counters.TotIns] = 1_000
	alien.Delta[counters.TotCyc] = 1_250_000_000
	if got := clf.Classify(&alien); got != cluster.Noise {
		t.Fatalf("alien burst classified as %d", got)
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, cluster.Config{}); err == nil {
		t.Fatal("empty training accepted")
	}
	// Fewer points than MinPts, all far apart: DBSCAN labels everything
	// noise and training must refuse.
	var bursts []burst.Burst
	for i := 0; i < 3; i++ {
		var d counters.Values
		d[counters.TotIns] = int64(1) << (10 * (i + 1))
		d[counters.TotCyc] = 1000
		bursts = append(bursts, burst.Burst{
			Start: 0, End: trace.Time(100 << (5 * i)), Delta: d,
		})
	}
	if _, err := Train(bursts, cluster.Config{MinPts: 4, UseIPC: true}); err == nil {
		t.Fatal("unclusterable training accepted")
	}
}
