package online

import (
	"reflect"
	"testing"

	"repro/internal/counters"
)

// TestFolderSnapshotPurity: Snapshot is a pure read. A live session
// publishes intermediate Reports while records keep arriving, so
// interleaving snapshots with adds must leave the folder's final state
// identical to an uninterrupted feed of the same stream.
func TestFolderSnapshotPurity(t *testing.T) {
	shape := counters.ExpDecay(3, 0.15)
	stream := genStream(shape, 200, 3, 11)

	interleaved := NewFolder(counters.TotIns, 64)
	reference := NewFolder(counters.TotIns, 64)
	for i := range stream {
		ia := interleaved.Add(&stream[i])
		ra := reference.Add(&stream[i])
		if ia != ra {
			t.Fatalf("instance %d: accept/reject diverged after a snapshot", i)
		}
		if i%10 == 0 && i > 0 {
			if _, err := interleaved.Snapshot(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if interleaved.Instances() != reference.Instances() ||
		interleaved.Pruned() != reference.Pruned() ||
		interleaved.Points() != reference.Points() {
		t.Fatalf("counters diverged: %d/%d/%d vs %d/%d/%d",
			interleaved.Instances(), interleaved.Pruned(), interleaved.Points(),
			reference.Instances(), reference.Pruned(), reference.Points())
	}
	a, err := interleaved.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	b, err := reference.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("snapshot-interleaved folder state differs from an uninterrupted feed")
	}
}

// TestFolderPrefixDeterminism: feeding a prefix gives the same snapshot
// as feeding the same prefix to a fresh folder — there is no hidden
// order- or time-dependent state beyond the instances themselves.
func TestFolderPrefixDeterminism(t *testing.T) {
	shape := counters.ExpDecay(2, 0.3)
	stream := genStream(shape, 120, 4, 7)
	for _, k := range []int{1, 10, 60, 120} {
		f1 := NewFolder(counters.TotIns, 80)
		f2 := NewFolder(counters.TotIns, 80)
		for i := 0; i < k; i++ {
			f1.Add(&stream[i])
		}
		for i := 0; i < k; i++ {
			f2.Add(&stream[i])
		}
		a, errA := f1.Snapshot()
		b, errB := f2.Snapshot()
		if (errA == nil) != (errB == nil) {
			t.Fatalf("k=%d: snapshot errors diverged: %v vs %v", k, errA, errB)
		}
		if errA != nil {
			continue
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("k=%d: identical prefixes folded to different states", k)
		}
	}
}
