package online

import (
	"repro/internal/folding"
)

// StackFolder incrementally folds call stacks: each incoming instance's
// sampled innermost frames are counted into fixed normalized-time bins,
// so the streaming pipeline can produce the folded call-stack view with
// O(bins × regions) memory instead of retaining the sample cloud. Its
// Snapshot assembles the same StackResult shape FoldStacks produces.
type StackFolder struct {
	bins   int
	counts []map[uint32]int
	total  int
}

// NewStackFolder creates an incremental call-stack folder (bins < 1
// selects the FoldStacks default of 50).
func NewStackFolder(bins int) *StackFolder {
	if bins < 1 {
		bins = 50
	}
	sf := &StackFolder{bins: bins, counts: make([]map[uint32]int, bins)}
	for i := range sf.counts {
		sf.counts[i] = make(map[uint32]int)
	}
	return sf
}

// Add folds one instance's stack samples into the bins. Samples without
// a stack are ignored, mirroring FoldStacks.
func (sf *StackFolder) Add(in *folding.Instance) {
	d := float64(in.Duration())
	if d <= 0 {
		return
	}
	for _, s := range in.Samples {
		if len(s.Stack) == 0 {
			continue
		}
		x := float64(s.Time-in.Start) / d
		b := int(x * float64(sf.bins))
		if b < 0 {
			b = 0
		}
		if b >= sf.bins {
			b = sf.bins - 1
		}
		sf.counts[b][s.Stack[0]]++
		sf.total++
	}
}

// Samples returns how many stack samples have been folded.
func (sf *StackFolder) Samples() int { return sf.total }

// Snapshot assembles the current folded call-stack view. It can be
// called at any time; the view sharpens as instances accumulate.
func (sf *StackFolder) Snapshot() *folding.StackResult {
	return folding.NewStackResult(sf.counts, sf.total)
}
