// Package parallel is the small concurrency toolkit the analysis engine
// is built on: bounded index-space fan-out, chunked reduction, and a
// reusable float64 scratch-buffer pool.
//
// Everything here is designed so that callers can keep their output
// independent of the worker count: ForEach and ForEachChunk hand each
// index (or contiguous index range) to exactly one worker, so writing
// results into slot i of a pre-sized slice and reducing sequentially in
// index order yields byte-identical output whether the loop ran on 1 or
// 64 workers. That property is what lets core.Analyze guarantee that
// parallel and sequential runs produce deep-equal Reports.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested parallelism against a loop of n iterations:
// p <= 0 selects runtime.GOMAXPROCS(0), and the result is clamped to
// [1, n] (never more workers than iterations, never fewer than one).
func Workers(p, n int) int {
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if n > 0 && p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// ForEach runs fn(i) for every i in [0, n) on at most p workers (p <= 0
// selects GOMAXPROCS). Indices are handed out dynamically, so uneven
// per-index costs balance across workers; iteration order is unspecified.
// fn must be safe for concurrent invocation on distinct indices. With
// p == 1 (or n <= 1) the loop runs inline on the calling goroutine, so
// sequential callers pay no synchronization cost.
func ForEach(n, p int, fn func(i int)) {
	p = Workers(p, n)
	if p == 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(p)
	for w := 0; w < p; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachChunk splits [0, n) into at most p contiguous chunks and runs
// fn(lo, hi) for each — row-partitioned O(n²) loops (distance matrices,
// k-dist scans) amortize per-index dispatch this way while keeping each
// row's inner arithmetic in one goroutine. With p == 1 the single chunk
// runs inline.
func ForEachChunk(n, p int, fn func(lo, hi int)) {
	p = Workers(p, n)
	if p == 1 || n <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	wg.Add(p)
	for c := 0; c < p; c++ {
		lo, hi := c*n/p, (c+1)*n/p
		go func() {
			defer wg.Done()
			if lo < hi {
				fn(lo, hi)
			}
		}()
	}
	wg.Wait()
}

// Reduce folds every index in [0, n) into per-chunk accumulators (init
// creates one, body consumes one index) and merges the chunk accumulators
// in ascending chunk order. For a fixed (n, p) the merge order is
// deterministic; for output that is identical across different p the
// merge must be order-independent (integer sums, min/max, set union) —
// floating-point sums are not, so reduce those via an indexed slice and a
// sequential pass instead.
func Reduce[A any](n, p int, init func() A, body func(acc A, i int) A, merge func(a, b A) A) A {
	p = Workers(p, n)
	if p == 1 || n <= 1 {
		acc := init()
		for i := 0; i < n; i++ {
			acc = body(acc, i)
		}
		return acc
	}
	accs := make([]A, p)
	var wg sync.WaitGroup
	wg.Add(p)
	for c := 0; c < p; c++ {
		c, lo, hi := c, c*n/p, (c+1)*n/p
		go func() {
			defer wg.Done()
			acc := init()
			for i := lo; i < hi; i++ {
				acc = body(acc, i)
			}
			accs[c] = acc
		}()
	}
	wg.Wait()
	out := accs[0]
	for _, a := range accs[1:] {
		out = merge(out, a)
	}
	return out
}

// PoolStats is a snapshot of one scratch-slice pool's cumulative
// activity: Gets and Puts count the checkout traffic, Misses the Gets
// that had to allocate because no pooled slice was large enough. A
// steady-state Miss rate near zero is what the pooled kernels are
// designed for; the observability layer exposes these as gauges.
type PoolStats struct {
	Gets, Puts, Misses uint64
}

// slicePool recycles scratch slices of one element type so hot loops
// (k-dist buffers, pruning scratch, per-rank aggregation, DBSCAN's CSR
// neighbor storage) stop re-allocating on every call.
type slicePool[T any] struct {
	p                  sync.Pool
	gets, puts, misses atomic.Uint64
}

// stats snapshots the pool's cumulative counters.
func (sp *slicePool[T]) stats() PoolStats {
	return PoolStats{Gets: sp.gets.Load(), Puts: sp.puts.Load(), Misses: sp.misses.Load()}
}

// get returns a zeroed slice of length n, reusing pooled capacity when
// possible.
func (sp *slicePool[T]) get(n int) []T {
	sp.gets.Add(1)
	var s []T
	if v := sp.p.Get(); v != nil {
		s = *(v.(*[]T))
	}
	if cap(s) < n {
		sp.misses.Add(1)
		return make([]T, n)
	}
	s = s[:n]
	var zero T
	for i := range s {
		s[i] = zero
	}
	return s
}

// put returns a slice obtained from get to the pool.
func (sp *slicePool[T]) put(s []T) {
	if cap(s) == 0 {
		return
	}
	sp.puts.Add(1)
	s = s[:0]
	sp.p.Put(&s)
}

// Pools reports a snapshot of every scratch-slice pool's cumulative
// statistics, keyed by element type name ("float64", "int", "int32",
// "int64", "uint8", "uint32"). The daemon's /metrics endpoint renders
// these as callback gauges; Gets − Puts of a pool is its current
// occupancy (slices checked out and not yet returned).
func Pools() map[string]PoolStats {
	return map[string]PoolStats{
		"float64": f64Pool.stats(),
		"int":     intPool.stats(),
		"int32":   int32Pool.stats(),
		"int64":   int64Pool.stats(),
		"uint8":   uint8Pool.stats(),
		"uint32":  uint32Pool.stats(),
	}
}

var (
	f64Pool    slicePool[float64]
	intPool    slicePool[int]
	int32Pool  slicePool[int32]
	int64Pool  slicePool[int64]
	uint8Pool  slicePool[uint8]
	uint32Pool slicePool[uint32]
)

// GetFloat64 returns a zeroed scratch slice of length n from the pool.
// Return it with PutFloat64 when done; the slice must not be retained or
// put back twice. Safe for concurrent use.
func GetFloat64(n int) []float64 { return f64Pool.get(n) }

// PutFloat64 returns a slice obtained from GetFloat64 to the pool.
func PutFloat64(s []float64) { f64Pool.put(s) }

// GetInt returns a zeroed []int scratch slice of length n from the pool;
// same contract as GetFloat64.
func GetInt(n int) []int { return intPool.get(n) }

// PutInt returns a slice obtained from GetInt to the pool.
func PutInt(s []int) { intPool.put(s) }

// GetInt32 returns a zeroed []int32 scratch slice of length n from the
// pool; same contract as GetFloat64. Index-heavy structures (neighbor
// adjacency, work queues) use int32 to halve their footprint at the
// million-point scale.
func GetInt32(n int) []int32 { return int32Pool.get(n) }

// PutInt32 returns a slice obtained from GetInt32 to the pool.
func PutInt32(s []int32) { int32Pool.put(s) }

// GetInt64 returns a zeroed []int64 scratch slice of length n from the
// pool; same contract as GetFloat64. The columnar trace blocks carve
// their timestamp, value and counter columns from this pool.
func GetInt64(n int) []int64 { return int64Pool.get(n) }

// PutInt64 returns a slice obtained from GetInt64 to the pool.
func PutInt64(s []int64) { int64Pool.put(s) }

// GetUint8 returns a zeroed []uint8 scratch slice of length n from the
// pool; same contract as GetFloat64. Backs the byte-wide columns (event
// types, counter flags) of the columnar trace blocks.
func GetUint8(n int) []uint8 { return uint8Pool.get(n) }

// PutUint8 returns a slice obtained from GetUint8 to the pool.
func PutUint8(s []uint8) { uint8Pool.put(s) }

// GetUint32 returns a zeroed []uint32 scratch slice of length n from the
// pool; same contract as GetFloat64. Backs the shared stack-frame arenas
// of the columnar trace blocks.
func GetUint32(n int) []uint32 { return uint32Pool.get(n) }

// PutUint32 returns a slice obtained from GetUint32 to the pool.
func PutUint32(s []uint32) { uint32Pool.put(s) }
