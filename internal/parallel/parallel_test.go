package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(0, 100) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Workers(-3, 100); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Workers(-3, 100) = %d", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Fatalf("Workers(8, 3) = %d, want 3 (clamped to n)", got)
	}
	if got := Workers(8, 0); got != 8 {
		t.Fatalf("Workers(8, 0) = %d, want 8", got)
	}
	if got := Workers(1, 100); got != 1 {
		t.Fatalf("Workers(1, 100) = %d, want 1", got)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{0, 1, 2, 7, 64} {
		for _, n := range []int{0, 1, 2, 5, 100, 1000} {
			hits := make([]int32, n)
			ForEach(n, p, func(i int) {
				atomic.AddInt32(&hits[i], 1)
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d visited %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForEachBoundsWorkers(t *testing.T) {
	const p = 3
	var cur, peak atomic.Int32
	var mu sync.Mutex
	ForEach(64, p, func(i int) {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		cur.Add(-1)
	})
	if peak.Load() > p {
		t.Fatalf("observed %d concurrent workers, bound is %d", peak.Load(), p)
	}
}

func TestForEachChunkPartitions(t *testing.T) {
	for _, p := range []int{0, 1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 2, 5, 17, 100} {
			hits := make([]int32, n)
			ForEachChunk(n, p, func(lo, hi int) {
				if lo >= hi {
					t.Errorf("p=%d n=%d: empty chunk [%d,%d)", p, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d covered %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestReduceIntSumInvariantAcrossP(t *testing.T) {
	const n = 1000
	want := n * (n - 1) / 2
	for _, p := range []int{0, 1, 2, 5, 16} {
		got := Reduce(n, p,
			func() int { return 0 },
			func(acc, i int) int { return acc + i },
			func(a, b int) int { return a + b })
		if got != want {
			t.Fatalf("p=%d: Reduce = %d, want %d", p, got, want)
		}
	}
}

func TestReduceEmptyAndSingle(t *testing.T) {
	if got := Reduce(0, 4, func() int { return 7 }, func(a, i int) int { return a + i }, func(a, b int) int { return a + b }); got != 7 {
		t.Fatalf("empty Reduce = %d, want init value 7", got)
	}
	if got := Reduce(1, 4, func() int { return 0 }, func(a, i int) int { return a + i + 1 }, func(a, b int) int { return a + b }); got != 1 {
		t.Fatalf("single Reduce = %d", got)
	}
}

func TestReduceUnevenChunksKeepEveryAccumulator(t *testing.T) {
	// n not divisible by p: uneven chunk bounds must still merge every
	// chunk exactly once (regression for chunk-id aliasing).
	for _, n := range []int{5, 17, 101} {
		for _, p := range []int{2, 3, 4, 7} {
			got := Reduce(n, p,
				func() int { return 0 },
				func(acc, i int) int { return acc + 1 },
				func(a, b int) int { return a + b })
			if got != n {
				t.Fatalf("n=%d p=%d: counted %d", n, p, got)
			}
		}
	}
}

func TestFloat64PoolZeroedAndReusable(t *testing.T) {
	s := GetFloat64(100)
	if len(s) != 100 {
		t.Fatalf("len = %d", len(s))
	}
	for i := range s {
		s[i] = float64(i) + 1
	}
	PutFloat64(s)
	// The recycled slice must come back zeroed at any length.
	r := GetFloat64(50)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled slice not zeroed at %d: %g", i, v)
		}
	}
	PutFloat64(r)
	// Zero-length requests and puts must not panic.
	z := GetFloat64(0)
	if len(z) != 0 {
		t.Fatalf("len = %d", len(z))
	}
	PutFloat64(z)
	PutFloat64(nil)
}

func TestFloat64PoolConcurrent(t *testing.T) {
	// Hammer the pool from many goroutines; the race detector guards the
	// rest.
	ForEach(256, 8, func(i int) {
		s := GetFloat64(i % 97)
		for j := range s {
			if s[j] != 0 {
				t.Errorf("dirty slice")
				return
			}
			s[j] = 1
		}
		PutFloat64(s)
	})
}

func TestIntPoolsZeroedAndReusable(t *testing.T) {
	// Dirty an int32 slice, recycle it, and check the pool hands back
	// zeroed storage; same for []int.
	s := GetInt32(64)
	for i := range s {
		s[i] = int32(i) + 1
	}
	PutInt32(s)
	r := GetInt32(32)
	for i, v := range r {
		if v != 0 {
			t.Fatalf("recycled int32 slice not zeroed at %d: %d", i, v)
		}
	}
	PutInt32(r)

	a := GetInt(50)
	for i := range a {
		a[i] = i + 1
	}
	PutInt(a)
	b := GetInt(25)
	for i, v := range b {
		if v != 0 {
			t.Fatalf("recycled int slice not zeroed at %d: %d", i, v)
		}
	}
	PutInt(b)

	// Zero-length requests and nil puts must not panic.
	PutInt32(GetInt32(0))
	PutInt32(nil)
	PutInt(GetInt(0))
	PutInt(nil)
}
