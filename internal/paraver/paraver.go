// Package paraver encodes traces to (and decodes them from) a simplified
// Paraver .prv-style text format, plus the companion .pcf configuration
// listing event-type and value names. The subset implemented here covers
// what the analysis pipeline needs — punctual events, multi-event sample
// records with counter snapshots and call stacks, and point-to-point
// communications — using the real format's record framing:
//
//	2:cpu:appl:task:thread:time:type:value[:type:value]...   event record
//	3:cpu:appl:task:thread:stime:stime:rcpu:rappl:rtask:rthread:rtime:rtime:size:tag
//
// Ranks map to Paraver tasks (task = rank+1, appl = 1, thread = 1,
// cpu = rank+1). Event-type numbers follow Extrae conventions where one
// exists (50000001 for MPI). Region names and generator parameters are
// carried by the .pcf file, not the .prv body; decoding a .prv alone
// recovers records and the header but not the name tables.
package paraver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/counters"
	"repro/internal/trace"
)

// Event-type numbers used in the .prv encoding.
const (
	TypeMPI       = 50000001 // value: MPIOp id, 0 = exit (Extrae convention)
	TypeRegion    = 60000019 // value: region id, 0 = exit
	TypeIteration = 2000     // value: iteration number
	TypeOracle    = 2001     // value: ground-truth kernel id, 0 = exit
	TypeCounter0  = 42000000 // counter c encoded as TypeCounter0 + c
	TypeStack0    = 30000000 // stack frame at depth d encoded as TypeStack0 + d
)

// ErrBadFormat is wrapped by all decode errors.
var ErrBadFormat = errors.New("paraver: malformed .prv data")

// Encode writes the trace in .prv-style text form.
func Encode(w io.Writer, tr *trace.Trace) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	fmt.Fprintf(bw, "#Paraver (generated):%d_ns:1(%d):1:%d\n",
		tr.Meta.Duration, tr.Meta.Ranks, tr.Meta.Ranks)

	// The .prv body must be globally time-ordered; merge the three sorted
	// streams.
	ei, si, ci := 0, 0, 0
	for ei < len(tr.Events) || si < len(tr.Samples) || ci < len(tr.Comms) {
		et, st, ct := trace.Time(1<<62), trace.Time(1<<62), trace.Time(1<<62)
		if ei < len(tr.Events) {
			et = tr.Events[ei].Time
		}
		if si < len(tr.Samples) {
			st = tr.Samples[si].Time
		}
		if ci < len(tr.Comms) {
			ct = tr.Comms[ci].SendTime
		}
		switch {
		case et <= st && et <= ct:
			e := tr.Events[ei]
			ei++
			if e.HasCounters {
				var sb strings.Builder
				fmt.Fprintf(&sb, "2:%d:1:%d:1:%d:%d:%d",
					e.Rank+1, e.Rank+1, e.Time, eventTypeNumber(e.Type), e.Value)
				for c, v := range e.Counters {
					fmt.Fprintf(&sb, ":%d:%d", TypeCounter0+c, v)
				}
				sb.WriteByte('\n')
				bw.WriteString(sb.String())
			} else {
				fmt.Fprintf(bw, "2:%d:1:%d:1:%d:%d:%d\n",
					e.Rank+1, e.Rank+1, e.Time, eventTypeNumber(e.Type), e.Value)
			}
		case st <= ct:
			s := tr.Samples[si]
			si++
			var sb strings.Builder
			fmt.Fprintf(&sb, "2:%d:1:%d:1:%d", s.Rank+1, s.Rank+1, s.Time)
			for c, v := range s.Counters {
				fmt.Fprintf(&sb, ":%d:%d", TypeCounter0+c, v)
			}
			for d, f := range s.Stack {
				fmt.Fprintf(&sb, ":%d:%d", TypeStack0+d, f)
			}
			sb.WriteByte('\n')
			bw.WriteString(sb.String())
		default:
			c := tr.Comms[ci]
			ci++
			fmt.Fprintf(bw, "3:%d:1:%d:1:%d:%d:%d:1:%d:1:%d:%d:%d:%d\n",
				c.Src+1, c.Src+1, c.SendTime, c.SendTime,
				c.Dst+1, c.Dst+1, c.RecvTime, c.RecvTime,
				c.Size, c.Tag)
		}
	}
	return bw.Flush()
}

func eventTypeNumber(t trace.EventType) int64 {
	switch t {
	case trace.EvMPI:
		return TypeMPI
	case trace.EvRegion:
		return TypeRegion
	case trace.EvIteration:
		return TypeIteration
	case trace.EvOracle:
		return TypeOracle
	}
	return 1_000_000 + int64(t)
}

func eventTypeFromNumber(n int64) (trace.EventType, bool) {
	switch n {
	case TypeMPI:
		return trace.EvMPI, true
	case TypeRegion:
		return trace.EvRegion, true
	case TypeIteration:
		return trace.EvIteration, true
	case TypeOracle:
		return trace.EvOracle, true
	}
	if n >= 1_000_000 && n < 1_000_256 {
		return trace.EventType(n - 1_000_000), true
	}
	return 0, false
}

// Decode parses a .prv-style stream produced by Encode. Region names and
// generator parameters are not present in the .prv body; the returned
// trace's metadata contains only App ("prv"), Ranks and Duration.
func Decode(r io.Reader) (*trace.Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	if !sc.Scan() {
		return nil, fmt.Errorf("%w: missing header", ErrBadFormat)
	}
	header := sc.Text()
	if !strings.HasPrefix(header, "#Paraver") {
		return nil, fmt.Errorf("%w: bad header %q", ErrBadFormat, header)
	}
	tr := &trace.Trace{Meta: trace.Metadata{
		App:     "prv",
		Regions: map[uint32]string{},
		Params:  map[string]string{},
	}}
	// Header: "#Paraver (generated):<dur>_ns:1(<ranks>):1:<ranks>"
	hp := strings.SplitN(header, ":", 3)
	if len(hp) >= 2 {
		durStr := strings.TrimSuffix(hp[1], "_ns")
		if d, err := strconv.ParseInt(durStr, 10, 64); err == nil {
			tr.Meta.Duration = trace.Time(d)
		}
	}
	if i := strings.Index(header, "("); i >= 0 {
		if j := strings.Index(header[i:], ")"); j > 1 {
			if n, err := strconv.Atoi(header[i+1 : i+j]); err == nil {
				tr.Meta.Ranks = n
			}
		}
	}
	// The leading "(generated)" also contains parens; pick the *second*
	// group if the first failed to parse as an int. Simpler: scan all
	// groups and keep the last valid one.
	tr.Meta.Ranks = lastParenInt(header, tr.Meta.Ranks)

	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Split(text, ":")
		kind := fields[0]
		switch kind {
		case "2":
			if err := decodeEventRecord(tr, fields, line); err != nil {
				return nil, err
			}
		case "3":
			if err := decodeCommRecord(tr, fields, line); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: line %d: unsupported record kind %q", ErrBadFormat, line, kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadFormat, err)
	}
	tr.Sort()
	if tr.Meta.Ranks == 0 {
		// Infer from records when the header was unparseable.
		maxRank := int32(-1)
		for _, e := range tr.Events {
			if e.Rank > maxRank {
				maxRank = e.Rank
			}
		}
		for _, s := range tr.Samples {
			if s.Rank > maxRank {
				maxRank = s.Rank
			}
		}
		tr.Meta.Ranks = int(maxRank + 1)
	}
	return tr, nil
}

func lastParenInt(s string, fallback int) int {
	res := fallback
	for i := 0; i < len(s); i++ {
		if s[i] != '(' {
			continue
		}
		j := strings.Index(s[i:], ")")
		if j < 0 {
			break
		}
		if n, err := strconv.Atoi(s[i+1 : i+j]); err == nil && n > 0 {
			res = n
		}
		i += j
	}
	return res
}

func decodeEventRecord(tr *trace.Trace, fields []string, line int) error {
	// 2:cpu:appl:task:thread:time:type:value[:type:value]...
	if len(fields) < 8 || (len(fields)-6)%2 != 0 {
		return fmt.Errorf("%w: line %d: event record has %d fields", ErrBadFormat, line, len(fields))
	}
	ints := make([]int64, len(fields)-1)
	for i, f := range fields[1:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: line %d: field %q: %v", ErrBadFormat, line, f, err)
		}
		ints[i] = v
	}
	rank := int32(ints[2] - 1) // task - 1
	t := trace.Time(ints[4])
	pairs := ints[5:]

	// Split the type/value pairs into counters, stack frames and events.
	var sample trace.Sample
	sample.Rank = rank
	sample.Time = t
	hasCounters := false
	type frame struct {
		depth int
		id    uint32
	}
	var frames []frame
	var events []trace.Event
	for i := 0; i+1 < len(pairs); i += 2 {
		typ, val := pairs[i], pairs[i+1]
		switch {
		case typ >= TypeCounter0 && typ < TypeCounter0+int64(counters.NumCounters):
			sample.Counters[typ-TypeCounter0] = val
			hasCounters = true
		case typ >= TypeStack0 && typ < TypeStack0+1024:
			frames = append(frames, frame{depth: int(typ - TypeStack0), id: uint32(val)})
		default:
			et, ok := eventTypeFromNumber(typ)
			if !ok {
				return fmt.Errorf("%w: line %d: unknown event type %d", ErrBadFormat, line, typ)
			}
			events = append(events, trace.Event{Rank: rank, Time: t, Type: et, Value: val})
		}
	}
	switch {
	case len(events) > 0:
		// A punctual event line; a probe that read counters attaches them
		// to its (single) event. Stack frames are only valid on samples.
		if len(frames) > 0 {
			return fmt.Errorf("%w: line %d: stack frames on an event record", ErrBadFormat, line)
		}
		if hasCounters {
			events[0].HasCounters = true
			events[0].Counters = sample.Counters
		}
	case hasCounters:
		sort.Slice(frames, func(i, j int) bool { return frames[i].depth < frames[j].depth })
		for _, f := range frames {
			sample.Stack = append(sample.Stack, f.id)
		}
		tr.Samples = append(tr.Samples, sample)
	case len(frames) > 0:
		return fmt.Errorf("%w: line %d: stack frames without counters", ErrBadFormat, line)
	}
	tr.Events = append(tr.Events, events...)
	return nil
}

func decodeCommRecord(tr *trace.Trace, fields []string, line int) error {
	// 3:cpu:appl:task:thread:stime:stime:rcpu:rappl:rtask:rthread:rtime:rtime:size:tag
	if len(fields) != 15 {
		return fmt.Errorf("%w: line %d: comm record has %d fields, want 15", ErrBadFormat, line, len(fields))
	}
	ints := make([]int64, len(fields)-1)
	for i, f := range fields[1:] {
		v, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return fmt.Errorf("%w: line %d: field %q: %v", ErrBadFormat, line, f, err)
		}
		ints[i] = v
	}
	tr.Comms = append(tr.Comms, trace.Comm{
		Src:      int32(ints[2] - 1),
		Dst:      int32(ints[8] - 1),
		SendTime: trace.Time(ints[4]),
		RecvTime: trace.Time(ints[10]),
		Size:     ints[12],
		Tag:      int32(ints[13]),
	})
	return nil
}

// EncodePCF writes the companion .pcf configuration: event-type names and
// value labels (MPI operations, region names, counters). Paraver uses it to
// label the trace; we emit it for fidelity and for human inspection.
func EncodePCF(w io.Writer, tr *trace.Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "DEFAULT_OPTIONS\n\nLEVEL\tTASK\nUNITS\tNANOSEC\n\n")

	fmt.Fprintf(bw, "EVENT_TYPE\n0\t%d\tMPI call\nVALUES\n", TypeMPI)
	ops := []trace.MPIOp{
		trace.MPINone, trace.MPISend, trace.MPIRecv, trace.MPISendRecv,
		trace.MPIBarrier, trace.MPIAllreduce, trace.MPIBcast, trace.MPIReduce,
		trace.MPIAlltoall, trace.MPIWaitall,
	}
	for _, op := range ops {
		fmt.Fprintf(bw, "%d\t%s\n", int64(op), op)
	}
	fmt.Fprintf(bw, "\nEVENT_TYPE\n0\t%d\tUser region\nVALUES\n0\tEnd\n", TypeRegion)
	ids := make([]uint32, 0, len(tr.Meta.Regions))
	for id := range tr.Meta.Regions {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		fmt.Fprintf(bw, "%d\t%s\n", id, tr.Meta.Regions[id])
	}
	fmt.Fprintf(bw, "\nEVENT_TYPE\n")
	for c := counters.Counter(0); c < counters.NumCounters; c++ {
		fmt.Fprintf(bw, "7\t%d\t%s\n", TypeCounter0+int(c), c)
	}
	fmt.Fprintf(bw, "\nEVENT_TYPE\n0\t%d\tIteration\n", TypeIteration)
	return bw.Flush()
}
