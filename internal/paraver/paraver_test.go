package paraver

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sampleTrace(t *testing.T) *trace.Trace {
	t.Helper()
	b := trace.NewBuilder("prvtest", 2)
	rMain := b.Region("main")
	rKern := b.Region("kernel")
	b.Event(0, 5, trace.EvIteration, 1)
	b.EventC(0, 10, trace.EvMPI, int64(trace.MPIBarrier), []int64{10, 20, 1, 0, 5})
	b.Event(1, 10, trace.EvMPI, int64(trace.MPIBarrier))
	b.EventC(0, 30, trace.EvMPI, 0, []int64{10, 60, 1, 0, 5})
	b.Event(1, 32, trace.EvMPI, 0)
	b.Sample(0, 100, []int64{1000, 2000, 30, 4, 500}, []uint32{rKern, rMain})
	b.Sample(1, 150, []int64{900, 1900, 20, 2, 400}, nil)
	b.Event(0, 200, trace.EvRegion, int64(rKern))
	b.Event(0, 300, trace.EvRegion, 0)
	b.Comm(0, 1, 400, 450, 8192, 3)
	b.Event(0, 500, trace.EvOracle, 7)
	b.Event(0, 600, trace.EvOracle, 0)
	return b.Build()
}

func TestEncodeProducesHeaderAndRecords(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if !strings.HasPrefix(lines[0], "#Paraver") {
		t.Fatalf("missing header: %q", lines[0])
	}
	// 1 header + 9 events as records... events merged: each event its own line,
	// samples one line each, comm one line.
	var ev, comm int
	for _, l := range lines[1:] {
		switch l[0] {
		case '2':
			ev++
		case '3':
			comm++
		default:
			t.Fatalf("unexpected record line %q", l)
		}
	}
	if comm != 1 {
		t.Fatalf("comm records = %d, want 1", comm)
	}
	if ev != len(tr.Events)+len(tr.Samples) {
		t.Fatalf("event records = %d, want %d", ev, len(tr.Events)+len(tr.Samples))
	}
}

func TestRoundTrip(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Meta.Ranks != tr.Meta.Ranks {
		t.Fatalf("Ranks = %d, want %d", got.Meta.Ranks, tr.Meta.Ranks)
	}
	if got.Meta.Duration != tr.Meta.Duration {
		t.Fatalf("Duration = %d, want %d", got.Meta.Duration, tr.Meta.Duration)
	}
	if !reflect.DeepEqual(got.Events, tr.Events) {
		t.Fatalf("events mismatch:\nwant %+v\ngot  %+v", tr.Events, got.Events)
	}
	if !reflect.DeepEqual(got.Samples, tr.Samples) {
		t.Fatalf("samples mismatch:\nwant %+v\ngot  %+v", tr.Samples, got.Samples)
	}
	if !reflect.DeepEqual(got.Comms, tr.Comms) {
		t.Fatalf("comms mismatch:\nwant %+v\ngot  %+v", tr.Comms, got.Comms)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no header":        "2:1:1:1:1:0:50000001:4\n",
		"bad record kind":  "#Paraver (generated):10_ns:1(1):1:1\n9:1:1:1:1:0\n",
		"odd event fields": "#Paraver (generated):10_ns:1(1):1:1\n2:1:1:1:1:0:50000001\n",
		"non-numeric":      "#Paraver (generated):10_ns:1(1):1:1\n2:1:1:1:1:zero:50000001:4\n",
		"unknown type":     "#Paraver (generated):10_ns:1(1):1:1\n2:1:1:1:1:0:77777777:4\n",
		"stack no counter": "#Paraver (generated):10_ns:1(1):1:1\n2:1:1:1:1:0:30000000:4\n",
		"short comm":       "#Paraver (generated):10_ns:1(1):1:1\n3:1:1:1:1:0:0:1:1:2:1\n",
		"bad comm field":   "#Paraver (generated):10_ns:1(1):1:1\n3:1:1:1:1:0:0:1:1:2:1:9:9:x:0\n",
	}
	for name, in := range cases {
		if _, err := Decode(strings.NewReader(in)); err == nil {
			t.Errorf("%s: Decode accepted malformed input", name)
		}
	}
}

func TestDecodeSkipsBlankAndComments(t *testing.T) {
	in := "#Paraver (generated):10_ns:1(2):1:2\n\n# a comment\n2:1:1:1:1:5:2000:1\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if len(tr.Events) != 1 || tr.Events[0].Type != trace.EvIteration || tr.Events[0].Value != 1 {
		t.Fatalf("events = %+v", tr.Events)
	}
	if tr.Meta.Ranks != 2 {
		t.Fatalf("Ranks = %d", tr.Meta.Ranks)
	}
}

func TestDecodeInfersRanksWithoutHeaderCount(t *testing.T) {
	in := "#Paraver somethingunparseable\n2:3:1:3:1:5:2000:1\n"
	tr, err := Decode(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if tr.Meta.Ranks != 3 {
		t.Fatalf("inferred Ranks = %d, want 3", tr.Meta.Ranks)
	}
}

func TestEncodePCFListsNames(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := EncodePCF(&buf, tr); err != nil {
		t.Fatalf("EncodePCF: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"MPI_Barrier", "kernel", "PAPI_TOT_INS", "EVENT_TYPE", "NANOSEC"} {
		if !strings.Contains(out, want) {
			t.Errorf("PCF output missing %q", want)
		}
	}
}

// TestDecodeRobustAgainstMutations fuzzes the decoder with random
// single-byte mutations of a valid stream: it must either succeed or fail
// cleanly, never panic, and successful decodes must keep records in range.
func TestDecodeRobustAgainstMutations(t *testing.T) {
	tr := sampleTrace(t)
	var buf bytes.Buffer
	if err := Encode(&buf, tr); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	for trial := 0; trial < 300; trial++ {
		mutated := append([]byte(nil), base...)
		pos := (trial * 131) % len(mutated)
		mutated[pos] ^= byte(1 << (trial % 8))
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d (pos %d): decoder panicked: %v", trial, pos, p)
				}
			}()
			got, err := Decode(bytes.NewReader(mutated))
			if err != nil {
				return // clean failure is fine
			}
			for _, s := range got.Samples {
				if len(s.Stack) > 1024 {
					t.Fatalf("trial %d: absurd stack depth %d", trial, len(s.Stack))
				}
			}
		}()
	}
}

func TestEventTypeNumberRoundTrip(t *testing.T) {
	for _, et := range []trace.EventType{trace.EvMPI, trace.EvRegion, trace.EvIteration, trace.EvOracle} {
		n := eventTypeNumber(et)
		got, ok := eventTypeFromNumber(n)
		if !ok || got != et {
			t.Errorf("round trip of %v via %d failed: %v %v", et, n, got, ok)
		}
	}
	if _, ok := eventTypeFromNumber(55); ok {
		t.Error("eventTypeFromNumber(55) should fail")
	}
}
