package pipeline

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"runtime"
	"slices"
	"sync"
	"time"

	"repro/internal/burst"
	"repro/internal/cluster"
	"repro/internal/counters"
	"repro/internal/folding"
	"repro/internal/online"
	"repro/internal/parallel"
	"repro/internal/profile"
	"repro/internal/structure"
	"repro/internal/trace"
)

// blockChanBuf bounds each inter-stage channel: at most this many blocks
// are in flight between two stages, which is what gives the pipeline
// backpressure and a constant working set.
const blockChanBuf = 4

// Config parameterizes an analysis run. It mirrors the analysis knobs of
// core.Options (core builds one from its Options) so the batch and
// streaming entry points are driven by a single configuration.
type Config struct {
	// MinBurstDuration filters bursts shorter than this (0 keeps all).
	MinBurstDuration trace.Time
	// Cluster configures burst clustering (exact mode) and classifier
	// training (online mode).
	Cluster cluster.Config
	// Fold configures folding; Fold.Counter is ignored (Counters below
	// selects what is folded).
	Fold folding.Config
	// Counters lists the counters folded per phase in online mode
	// (default TOT_INS, FP_OPS, L1_DCM, L2_DCM). Exact mode retains
	// attached samples, so core folds any counter set afterwards.
	Counters []counters.Counter
	// StackBins sets the call-stack folding resolution (default 50).
	StackBins int
	// MaxPhases bounds how many clusters get per-phase folding in online
	// mode (default 5).
	MaxPhases int
	// Parallelism bounds fan-out (clustering kernels, snapshot assembly);
	// 0 selects runtime.GOMAXPROCS(0).
	Parallelism int
	// NoSamples skips sample attachment and folding entirely — for tools
	// that only need bursts, clustering and structure (cmd/burstcluster,
	// cmd/trstats).
	NoSamples bool
	// Online selects the bounded-memory path: train a centroid
	// classifier on the first TrainBursts kept bursts, classify the rest
	// as they arrive, and fold samples incrementally per phase
	// (online.Folder / online.StackFolder), never retaining them. Memory
	// then scales with bursts + bins instead of total records, at the
	// cost of approximate (though typically >95%-agreeing) assignments.
	// The default exact mode buffers kept bursts and their samples and
	// defers clustering to the end of the event section, reproducing
	// batch output bit-for-bit.
	Online bool
	// TrainBursts is the online training-prefix length (default 512).
	TrainBursts int
	// BatchSize is the number of records per pipeline block (default 256).
	BatchSize int
	// Columnar routes the run through the structure-of-arrays hot path:
	// records are decoded straight into pooled trace.ColBlock columns and
	// every stage iterates columns instead of []trace.Record. Output is
	// deep-equal to the row path (locked by equivalence tests); the row
	// path remains the reference implementation. core sets this from
	// Options.Columnar, which defaults it on.
	Columnar bool
	// Partial selects the map half of the sharded analysis algebra: the
	// run extracts, filters, sorts and attaches as usual but resolves no
	// phases — clustering, classification and fallback splitting are
	// deferred to the reduce step, which sees every shard's bursts at
	// once. The Outcome then carries the mergeable state (Kept, Attached,
	// Marks, RankBursts, ProfilePartial) instead of a clustering. Partial
	// and Online are mutually exclusive; core enforces that before
	// building a Config.
	Partial bool
	// Resume marks a shard that does not start at the trace origin, so a
	// rank's first MPI event may legally be an exit (the head of a call
	// opened by the previous shard). It only affects the flat-profile
	// fragment; the burst extractor is self-synchronizing at MPI exits.
	Resume bool
	// Lenient enables degraded-mode analysis: when the clustering over the
	// kept bursts degenerates to zero clusters, a duration-quantile
	// fallback split keeps the run useful (recorded in Outcome.Warnings).
	// The decode stage also collects salvage stats from a lenient
	// trace.StreamReader source into Outcome.Decode. It does not change
	// how a strict source decodes — pass a Lenient-mode reader for that.
	Lenient bool
	// StallTimeout arms a watchdog that fails the run with an error
	// wrapping ErrStalled when no stage makes progress for this long
	// (0 disables it). Size it well above the longest barrier-stage gap —
	// clustering a huge trace moves no blocks while it computes.
	StallTimeout time.Duration
	// Logger receives live structured progress (per-stage completions at
	// debug level, clustering and training outcomes at info level). nil
	// disables logging.
	Logger *slog.Logger
}

func (c *Config) setDefaults() {
	if len(c.Counters) == 0 {
		c.Counters = []counters.Counter{
			counters.TotIns, counters.FPOps, counters.L1DCM, counters.L2DCM,
		}
	}
	if c.StackBins == 0 {
		c.StackBins = 50
	}
	if c.MaxPhases == 0 {
		c.MaxPhases = 5
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
	if c.Cluster.Parallelism == 0 {
		c.Cluster.Parallelism = c.Parallelism
	}
	if c.TrainBursts <= 0 {
		c.TrainBursts = 512
	}
	if c.Cluster.Logger == nil {
		c.Cluster.Logger = c.Logger
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
}

// RecordCounts tallies the records an analysis consumed, by kind.
type RecordCounts struct {
	Events, Samples, Comms int64
}

// PhaseFolds is one phase's incrementally-folded analysis (online mode).
type PhaseFolds struct {
	// ClusterID is the phase's cluster id from the training clustering.
	ClusterID int
	// Instances counts the burst instances routed into the folders.
	Instances int
	// Folds holds each counter's folded reconstruction; counters that
	// could not be folded are in FoldErrors instead.
	Folds      map[counters.Counter]*folding.Result
	FoldErrors map[counters.Counter]error
	// Stacks is the folded call-stack view (nil when no stack samples).
	Stacks *folding.StackResult
}

// Outcome is everything the pipeline learned from one pass over the
// record stream; core assembles a Report from it.
type Outcome struct {
	// Meta is the stream's metadata.
	Meta trace.Metadata
	// Records counts the records consumed, by kind.
	Records RecordCounts
	// Bursts is the number of bursts extracted; Kept those surviving the
	// duration filter, in global (Start, Rank) order with Cluster set.
	Bursts int
	Kept   []burst.Burst
	// CoverageKept is the fraction of burst time the filter kept.
	CoverageKept float64
	// Clustering is the clustering over the kept bursts. In online mode
	// Assign reflects the streamed classifications while K, Eps, MinPts
	// and Silhouette come from the training clustering (Features is nil —
	// no full feature matrix ever exists).
	Clustering cluster.Result
	// ClusterTimeCoverage is the fraction of kept burst time inside
	// non-noise clusters.
	ClusterTimeCoverage float64
	// Loops and SPMDScore describe the phase-sequence structure.
	Loops     []structure.Loop
	SPMDScore float64
	// Profile is the flat MPI/compute profile; ProfileErr records why it
	// is nil when profiling failed.
	Profile    *profile.Profile
	ProfileErr string
	// Iterations summarizes EvIteration markers.
	Iterations structure.IterationStats
	// KeptTime and AllTime are the burst-time sums behind CoverageKept,
	// exposed so a reduce step can recompute coverage over all shards.
	KeptTime, AllTime trace.Time
	// RankBursts counts extracted (pre-filter) bursts per rank; a reduce
	// step uses the per-shard counts to rebase Burst.Index offsets.
	RankBursts []int
	// Marks holds the raw per-rank iteration marker times behind
	// Iterations, mergeable by per-rank concatenation in shard order.
	Marks map[int32][]trace.Time
	// ProfilePartial is the mergeable flat-profile fragment (Partial mode
	// only; the merged Profile is nil then).
	ProfilePartial *profile.Partial
	// Attached holds, per kept burst, its samples (exact mode only).
	Attached [][]trace.Sample
	// OnlinePhases holds the per-phase incremental folds (online mode
	// only), ordered by cluster id.
	OnlinePhases []PhaseFolds
	// TrainErr records a failed online classifier training (the run then
	// degrades to zero phases, mirroring a batch run that finds no
	// clusters).
	TrainErr string
	// Online records which mode produced this outcome.
	Online bool
	// Stages carries the per-stage metrics of the run.
	Stages []Metrics
	// Decode summarizes what a lenient (salvage) decode dropped; nil when
	// the source was not a lenient trace.StreamReader.
	Decode *trace.DecodeStats
	// Warnings itemizes every degraded-mode concession the run made
	// (clustering fallback, online-training fallback); decode-level
	// warnings are derived from Decode by the report assembler.
	Warnings []string
}

// block is the unit of flow between stages: a pooled batch of decoded
// records plus the kept bursts extraction closed while scanning them.
// Ownership travels with the block; the final stage recycles it, so
// steady-state decoding allocates nothing.
type block struct {
	recs    []trace.Record
	bursts  []burst.Burst
	samples bool // block contains at least one sample record
}

// analysis is the shared state of one Run. Each field is written by
// exactly one stage; cross-stage visibility is ordered by the channel
// sends between them.
type analysis struct {
	cfg  Config
	meta *trace.Metadata
	pool sync.Pool

	// extract stage
	records    RecordCounts
	bursts     int
	rankBursts []int
	keptTime   trace.Time
	allTime    trace.Time
	prof       *profile.PartialBuilder
	marks      map[int32][]trace.Time

	// phase stage
	kept       []burst.Burst
	clustering cluster.Result
	classifier *online.Classifier
	trainErr   error
	finalized  bool
	warnings   []string

	// decode stage (lenient sources only)
	decode *trace.DecodeStats

	// fold stage routing, built by finalize
	byRank   [][]int // per rank: indices into kept, ascending Start
	cursor   []int
	attached [][]trace.Sample

	// online incremental folding
	phases   map[int]*phaseFold
	phaseIDs []int
	rankBuf  []instanceBuf

	// columnar path block recycling: colFree is the freelist the fold
	// stage feeds and the decode stage drains; colAll tracks every block
	// ever created (decode goroutine only) so a completed run can return
	// their arenas to the parallel pools.
	colFree    chan *cblock
	colAll     []*cblock
	stackChunk []uint32 // arena for attached-sample stack copies (exact mode)
}

// phaseFold bundles one phase's incremental folders.
type phaseFold struct {
	id        int
	folders   []*online.Folder // parallel to cfg.Counters
	stacks    *online.StackFolder
	instances int
}

// instanceBuf accumulates the open instance's samples on one rank. The
// slices are reused across instances; sample stacks are compressed to
// the innermost frame, stored in leaves and aliased one-element slices.
type instanceBuf struct {
	samples []trace.Sample
	leaves  []uint32
}

// Run drives the full analysis pipeline over a record stream and blocks
// until it completes. It is RunContext with a background context.
func Run(src trace.Source, cfg Config) (*Outcome, error) {
	return RunContext(context.Background(), src, cfg)
}

// RunContext is Run under a context: when ctx is cancelled the stages
// stop at the next block boundary, blocked senders are released, and
// the call returns ctx.Err(). This is what gives the analysis daemon
// per-request deadlines and client-disconnect cancellation; a cancelled
// run never returns a partial Outcome.
func RunContext(ctx context.Context, src trace.Source, cfg Config) (*Outcome, error) {
	cfg.setDefaults()
	meta := src.Meta()
	if err := meta.Validate(); err != nil {
		return nil, err
	}
	a := &analysis{cfg: cfg, meta: meta, marks: map[int32][]trace.Time{}}
	a.rankBursts = make([]int, meta.Ranks)
	a.prof, _ = profile.NewPartialBuilder(meta.Ranks, cfg.Resume) // ranks >= 1 was validated

	p := New()
	p.Logger = cfg.Logger
	stop := p.Watch(ctx)
	defer stop()
	if cfg.Columnar {
		a.colFree = make(chan *cblock, 4*blockChanBuf+4)
		blocks := a.decodeStageCols(p, src)
		extracted := a.extractStageCols(p, blocks)
		phased := a.phaseStageCols(p, extracted)
		a.foldStageCols(p, phased)
	} else {
		blocks := a.decodeStage(p, src)
		extracted := a.extractStage(p, blocks)
		phased := a.phaseStage(p, extracted)
		a.foldStage(p, phased)
	}
	// Armed only now: the watchdog reads the stage list, which must be
	// complete before another goroutine looks at it.
	stopStall := p.WatchStall(cfg.StallTimeout)
	defer stopStall()
	if err := p.waitOrAbandon(); err != nil {
		// A cancelled context outranks whatever secondary error the
		// cancellation provoked inside a stage (e.g. a read error wrapped
		// as ErrBadFormat), so callers can rely on errors.Is(err,
		// context.Canceled).
		if cerr := ctx.Err(); cerr != nil {
			return nil, cerr
		}
		return nil, err
	}
	out := a.outcome(p)
	// All stages have returned, so no goroutine can still touch a block:
	// hand the column arenas back to the pools. Failed runs skip this
	// (abandoned stages may still hold blocks) and let the GC collect.
	for _, cb := range a.colAll {
		cb.cols.Release()
	}
	a.colAll = nil
	return out, nil
}

func (a *analysis) getBlock() *block {
	if v := a.pool.Get(); v != nil {
		blk := v.(*block)
		blk.recs = blk.recs[:cap(blk.recs)]
		blk.bursts = blk.bursts[:0]
		blk.samples = false
		return blk
	}
	return &block{recs: make([]trace.Record, a.cfg.BatchSize)}
}

// decodeStage pumps the source into pooled record blocks.
func (a *analysis) decodeStage(p *Pipeline, src trace.Source) <-chan *block {
	out := make(chan *block, blockChanBuf)
	p.Go("decode", func(m *Metrics) error {
		defer close(out)
		for {
			blk := a.getBlock()
			n := 0
			var err error
			for n < len(blk.recs) {
				if err = src.Next(&blk.recs[n]); err != nil {
					break
				}
				n++
			}
			blk.recs = blk.recs[:n]
			m.RecordsOut += int64(n)
			if n > 0 {
				if !send(p, out, blk) {
					return nil
				}
			} else {
				a.pool.Put(blk)
			}
			if err == io.EOF {
				if sr, ok := src.(*trace.StreamReader); ok {
					m.Bytes = sr.BytesRead()
					if sr.Mode() == trace.Lenient {
						st := sr.Stats()
						a.decode = &st
					}
				}
				return nil
			}
			if err != nil {
				return err
			}
		}
	})
	return out
}

// send delivers v or aborts when the pipeline is cancelled.
func send[T any](p *Pipeline, ch chan<- T, v T) bool {
	select {
	case ch <- v:
		return true
	case <-p.quit:
		return false
	}
}

// extractStage scans each block's events through the incremental burst
// extractor, the profile builder and the iteration-marker collector, and
// forwards the block carrying the kept bursts it closed.
func (a *analysis) extractStage(p *Pipeline, in <-chan *block) <-chan *block {
	x, _ := burst.NewExtractor(a.meta.Ranks) // ranks >= 1 was validated
	return Stage(p, "extract", blockChanBuf, in, func(ctx *StageCtx[*block], blk *block) error {
		ctx.Metrics.RecordsIn += int64(len(blk.recs))
		for i := range blk.recs {
			rec := &blk.recs[i]
			switch rec.Kind {
			case trace.KindEvent:
				a.records.Events++
				e := &rec.Event
				b, ok, err := x.Add(e)
				if err != nil {
					return err
				}
				if ok {
					a.bursts++
					a.rankBursts[b.Rank]++
					d := b.Duration()
					a.allTime += d
					if d >= a.cfg.MinBurstDuration {
						a.keptTime += d
						blk.bursts = append(blk.bursts, b)
					}
				}
				a.prof.Add(e)
				if e.Type == trace.EvIteration {
					a.marks[e.Rank] = append(a.marks[e.Rank], e.Time)
				}
			case trace.KindSample:
				a.records.Samples++
				blk.samples = true
			case trace.KindComm:
				a.records.Comms++
			}
		}
		ctx.Metrics.RecordsOut += int64(len(blk.bursts))
		ctx.Emit(blk)
		return nil
	}, nil)
}

// phaseStage collects kept bursts and resolves their phases. In exact
// mode it is a barrier at the event→sample boundary: all bursts are
// known there (sections are ordered), so it sorts and clusters them
// before the first sample flows on. In online mode it trains the
// classifier on the first TrainBursts bursts mid-stream and classifies
// the rest as they arrive.
func (a *analysis) phaseStage(p *Pipeline, in <-chan *block) <-chan *block {
	name := "cluster"
	if a.cfg.Online {
		name = "classify"
	}
	return Stage(p, name, blockChanBuf, in, func(ctx *StageCtx[*block], blk *block) error {
		ctx.Metrics.RecordsIn += int64(len(blk.bursts))
		for i := range blk.bursts {
			if a.cfg.Online && a.classifier != nil {
				a.classifier.Classify(&blk.bursts[i])
			}
			a.kept = append(a.kept, blk.bursts[i])
			if a.cfg.Online && a.classifier == nil && a.trainErr == nil &&
				len(a.kept) == a.cfg.TrainBursts {
				a.train()
			}
		}
		if blk.samples && !a.finalized {
			a.finalize(ctx.Metrics)
		}
		ctx.Emit(blk)
		return nil
	}, func(ctx *StageCtx[*block]) error {
		if !a.finalized {
			a.finalize(ctx.Metrics)
		}
		return nil
	})
}

// train fits the online classifier on the current training prefix and
// classifies any bursts already collected beyond it. A failed training
// (no clusters, all noise) degrades the run to zero phases, mirroring a
// batch run whose clustering finds nothing.
func (a *analysis) train() {
	n := min(a.cfg.TrainBursts, len(a.kept))
	cl, err := online.Train(a.kept[:n], a.cfg.Cluster)
	if err != nil {
		a.trainErr = err
		if a.cfg.Logger != nil {
			a.cfg.Logger.Info("online training failed", "bursts", n, "err", err)
		}
		return
	}
	if a.cfg.Logger != nil {
		a.cfg.Logger.Info("online classifier trained", "bursts", n,
			"phases", cl.Training.K, "eps", cl.Training.Eps)
	}
	a.classifier = cl
	for i := n; i < len(a.kept); i++ {
		cl.Classify(&a.kept[i])
	}
}

// finalize runs once all bursts are known: sort them into canonical
// order, resolve the clustering, and build the per-rank routing index
// the fold stage walks.
func (a *analysis) finalize(m *Metrics) {
	a.finalized = true
	if a.cfg.Online && a.classifier == nil && len(a.kept) > 0 {
		a.train()
	}
	burst.Sort(a.kept)
	if a.cfg.Partial {
		// Map half of the sharded algebra: phases are resolved at reduce
		// time over every shard's bursts, so this run only fixes the
		// canonical order and builds the attachment routing below.
	} else if !a.cfg.Online {
		if len(a.kept) > 0 {
			a.clustering = cluster.ClusterBursts(a.kept, a.cfg.Cluster)
			if a.clustering.K == 0 && a.cfg.Lenient {
				a.fallbackClustering("clustering found no phases")
			}
		}
	} else if a.classifier != nil {
		assign := make([]int, len(a.kept))
		for i := range a.kept {
			assign[i] = a.kept[i].Cluster
		}
		t := &a.classifier.Training
		a.clustering = cluster.Result{
			Assign: assign, K: t.K, Eps: t.Eps, MinPts: t.MinPts,
			Silhouette: t.Silhouette,
		}
	} else if a.cfg.Lenient && len(a.kept) > 0 {
		// Online training failed or never had enough bursts; degrade to
		// the quantile split instead of a zero-phase report.
		a.fallbackClustering("online classifier unavailable")
	}
	if !a.cfg.Partial {
		for i := range a.kept {
			if a.kept[i].Cluster != cluster.Noise {
				m.RecordsOut++
			}
		}
	}

	a.byRank = make([][]int, a.meta.Ranks)
	for i := range a.kept {
		r := a.kept[i].Rank
		a.byRank[r] = append(a.byRank[r], i)
	}
	a.cursor = make([]int, a.meta.Ranks)
	if a.cfg.Online {
		a.phases = map[int]*phaseFold{}
		for id := 1; id <= min(a.clustering.K, a.cfg.MaxPhases); id++ {
			pf := &phaseFold{id: id, stacks: online.NewStackFolder(a.cfg.StackBins)}
			for _, c := range a.cfg.Counters {
				pf.folders = append(pf.folders, online.NewFolderConfig(c, a.cfg.Fold))
			}
			a.phases[id] = pf
			a.phaseIDs = append(a.phaseIDs, id)
		}
		a.rankBuf = make([]instanceBuf, a.meta.Ranks)
	} else if !a.cfg.NoSamples {
		a.attached = make([][]trace.Sample, len(a.kept))
	}
}

// fallbackClustering replaces a degenerate clustering with the
// duration-quantile split (lenient mode only) and records why.
func (a *analysis) fallbackClustering(why string) {
	a.clustering = cluster.QuantileFallback(a.kept, 2)
	a.warnings = append(a.warnings, fmt.Sprintf(
		"%s; fell back to a duration-quantile split (%d phases over %d bursts)",
		why, a.clustering.K, len(a.kept)))
	if a.cfg.Logger != nil {
		a.cfg.Logger.Info("clustering fallback", "why", why,
			"phases", a.clustering.K, "bursts", len(a.kept))
	}
}

// foldStage is the terminal stage: it routes each sample to its burst —
// attaching a copy in exact mode, folding it incrementally in online
// mode — and recycles the block.
func (a *analysis) foldStage(p *Pipeline, in <-chan *block) {
	name := "attach"
	if a.cfg.Online {
		name = "fold"
	}
	Sink(p, name, in, func(m *Metrics, blk *block) error {
		if !a.cfg.NoSamples {
			for i := range blk.recs {
				if blk.recs[i].Kind == trace.KindSample {
					a.routeSample(m, &blk.recs[i].Sample)
				}
			}
		}
		a.pool.Put(blk)
		return nil
	}, func(m *Metrics) error {
		if a.cfg.Online && !a.cfg.NoSamples {
			a.flushInstances(m)
		}
		return nil
	})
}

// routeSample advances the per-rank cursor to the burst containing the
// sample (bursts per rank are time-ordered and samples arrive in time
// order, so the walk never rewinds — the streaming equivalent of
// burst.AttachSamples) and attaches or folds it.
func (a *analysis) routeSample(m *Metrics, s *trace.Sample) {
	m.RecordsIn++
	r := int(s.Rank)
	if r < 0 || r >= len(a.byRank) {
		return
	}
	idx := a.byRank[r]
	cur := a.cursor[r]
	if a.cfg.Online {
		for cur < len(idx) && a.kept[idx[cur]].End <= s.Time {
			a.closeInstance(m, r, idx[cur])
			cur++
		}
		a.cursor[r] = cur
		if cur < len(idx) && s.Time >= a.kept[idx[cur]].Start {
			buf := &a.rankBuf[r]
			cp := *s
			cp.Stack = nil
			if len(s.Stack) > 0 {
				j := len(buf.leaves)
				buf.leaves = append(buf.leaves, s.Stack[0])
				cp.Stack = buf.leaves[j : j+1 : j+1]
			}
			buf.samples = append(buf.samples, cp)
		}
		return
	}
	for cur < len(idx) && a.kept[idx[cur]].End <= s.Time {
		cur++
	}
	a.cursor[r] = cur
	if cur < len(idx) && s.Time >= a.kept[idx[cur]].Start {
		cp := *s
		cp.Stack = slices.Clone(s.Stack)
		ki := idx[cur]
		a.attached[ki] = append(a.attached[ki], cp)
		m.RecordsOut++
	}
}

// closeInstance folds the finished burst instance on rank r — with
// whatever samples accumulated for it — into its phase's folders, then
// resets the rank's accumulation buffer for the next instance.
func (a *analysis) closeInstance(m *Metrics, r, ki int) {
	b := &a.kept[ki]
	if pf := a.phases[b.Cluster]; pf != nil {
		inst := folding.Instance{
			Rank: b.Rank, Start: b.Start, End: b.End,
			Base: b.Base, Totals: b.Delta,
			Samples: a.rankBuf[r].samples,
		}
		for _, f := range pf.folders {
			f.Add(&inst)
		}
		pf.stacks.Add(&inst)
		pf.instances++
		m.RecordsOut++
	}
	a.rankBuf[r].samples = a.rankBuf[r].samples[:0]
	a.rankBuf[r].leaves = a.rankBuf[r].leaves[:0]
}

// flushInstances closes every burst the sample cursor never passed
// (trailing bursts, sample-less ranks) so each kept burst contributes an
// instance exactly once, as offline folding does.
func (a *analysis) flushInstances(m *Metrics) {
	for r := range a.byRank {
		for ; a.cursor[r] < len(a.byRank[r]); a.cursor[r]++ {
			a.closeInstance(m, r, a.byRank[r][a.cursor[r]])
		}
	}
}

// outcome assembles the final Outcome after all stages returned.
func (a *analysis) outcome(p *Pipeline) *Outcome {
	out := &Outcome{
		Meta:       *a.meta,
		Records:    a.records,
		Bursts:     a.bursts,
		Kept:       a.kept,
		Clustering: a.clustering,
		Attached:   a.attached,
		Online:     a.cfg.Online,
		Iterations: structure.IterationsFromMarks(a.marks),
		Decode:     a.decode,
		Warnings:   a.warnings,
		KeptTime:   a.keptTime,
		AllTime:    a.allTime,
		RankBursts: a.rankBursts,
		Marks:      a.marks,
	}
	if a.cfg.Partial {
		out.ProfilePartial = a.prof.Partial()
	} else if prof, err := profile.Merge([]*profile.Partial{a.prof.Partial()}, a.meta.Duration); err == nil {
		out.Profile = prof
	} else {
		out.ProfileErr = err.Error()
	}
	if a.trainErr != nil {
		out.TrainErr = a.trainErr.Error()
	}
	if a.allTime > 0 {
		out.CoverageKept = float64(a.keptTime) / float64(a.allTime)
	}
	if len(a.kept) > 0 && !a.cfg.Partial {
		if len(a.clustering.Assign) == len(a.kept) {
			out.ClusterTimeCoverage = cluster.ClusterTimeCoverage(a.kept, a.clustering.Assign)
		}
		seqs := structure.Sequences(a.kept)
		out.Loops = structure.DetectLoops(seqs)
		out.SPMDScore = structure.SPMDScore(seqs)
	}
	if a.cfg.Online && len(a.phaseIDs) > 0 {
		out.OnlinePhases = make([]PhaseFolds, len(a.phaseIDs))
		// Snapshot assembly (isotonic + PCHIP fits per counter) is the only
		// post-stream work, fanned out per phase.
		parallel.ForEach(len(a.phaseIDs), a.cfg.Parallelism, func(i int) {
			pf := a.phases[a.phaseIDs[i]]
			ph := PhaseFolds{
				ClusterID:  pf.id,
				Instances:  pf.instances,
				Folds:      make(map[counters.Counter]*folding.Result),
				FoldErrors: make(map[counters.Counter]error),
			}
			for ci, c := range a.cfg.Counters {
				if res, err := pf.folders[ci].Snapshot(); err != nil {
					ph.FoldErrors[c] = err
				} else {
					ph.Folds[c] = res
				}
			}
			if pf.stacks.Samples() > 0 {
				ph.Stacks = pf.stacks.Snapshot()
			}
			out.OnlinePhases[i] = ph
		})
	}
	out.Stages = p.Metrics()
	return out
}
