package pipeline

import (
	"io"

	"repro/internal/burst"
	"repro/internal/trace"
)

// cblock is the unit of flow on the columnar path: a pooled
// structure-of-arrays record batch plus the kept bursts extraction
// closed while scanning it. Blocks are homogeneous in record kind (the
// decoder cuts them at section boundaries), so stages dispatch once per
// block instead of once per record.
type cblock struct {
	cols   *trace.ColBlock
	bursts []burst.Burst
}

// getCBlock returns a reset block from the freelist, or creates one.
// Called only by the decode goroutine, which is why colAll needs no
// lock.
func (a *analysis) getCBlock() *cblock {
	select {
	case cb := <-a.colFree:
		cb.bursts = cb.bursts[:0]
		return cb
	default:
		cb := &cblock{cols: trace.NewColBlock(a.cfg.BatchSize)}
		a.colAll = append(a.colAll, cb)
		return cb
	}
}

// putCBlock returns a block to the freelist (dropping it if the list is
// full; it is then released with the rest at the end of the run).
func (a *analysis) putCBlock(cb *cblock) {
	select {
	case a.colFree <- cb:
	default:
	}
}

// decodeStageCols pumps the source into pooled column blocks — when the
// source is a StreamReader the records decode straight into the columns
// with no intermediate Record construction at all.
func (a *analysis) decodeStageCols(p *Pipeline, src trace.Source) <-chan *cblock {
	bs := trace.NewBlockSource(src)
	out := make(chan *cblock, blockChanBuf)
	p.Go("decode", func(m *Metrics) error {
		defer close(out)
		for {
			cb := a.getCBlock()
			err := bs.NextBlock(cb.cols)
			n := cb.cols.Len()
			m.RecordsOut += int64(n)
			if n > 0 {
				if !send(p, out, cb) {
					return nil
				}
			} else {
				a.putCBlock(cb)
			}
			// Identity comparison on purpose: a decode error may *wrap* an
			// io.EOF cause (truncation inside a record) and must still abort
			// a strict run.
			if err == io.EOF {
				if sr, ok := src.(*trace.StreamReader); ok {
					m.Bytes = sr.BytesRead()
					if sr.Mode() == trace.Lenient {
						st := sr.Stats()
						a.decode = &st
					}
				}
				return nil
			}
			if err != nil {
				return err
			}
		}
	})
	return out
}

// extractStageCols is extractStage over columns: event blocks stream
// through the burst extractor, profile builder and iteration-marker
// collector; sample and comm blocks just tally. One scratch Event is
// assembled per row — the consumers copy what they keep.
func (a *analysis) extractStageCols(p *Pipeline, in <-chan *cblock) <-chan *cblock {
	x, _ := burst.NewExtractor(a.meta.Ranks) // ranks >= 1 was validated
	return Stage(p, "extract", blockChanBuf, in, func(ctx *StageCtx[*cblock], cb *cblock) error {
		cols := cb.cols
		n := cols.Len()
		ctx.Metrics.RecordsIn += int64(n)
		switch cols.Kind() {
		case trace.KindEvent:
			a.records.Events += int64(n)
			for i := 0; i < n; i++ {
				e := trace.Event{
					Rank:  cols.Ranks[i],
					Time:  trace.Time(cols.Times[i]),
					Type:  trace.EventType(cols.Types[i]),
					Value: cols.Values[i],
				}
				if cols.Flags[i] != 0 {
					e.HasCounters = true
					for c := range cols.Ctrs {
						e.Counters[c] = cols.Ctrs[c][i]
					}
				}
				b, ok, err := x.Add(&e)
				if err != nil {
					return err
				}
				if ok {
					a.bursts++
					a.rankBursts[b.Rank]++
					d := b.Duration()
					a.allTime += d
					if d >= a.cfg.MinBurstDuration {
						a.keptTime += d
						cb.bursts = append(cb.bursts, b)
					}
				}
				a.prof.Add(&e)
				if e.Type == trace.EvIteration {
					a.marks[e.Rank] = append(a.marks[e.Rank], e.Time)
				}
			}
		case trace.KindSample:
			a.records.Samples += int64(n)
		case trace.KindComm:
			a.records.Comms += int64(n)
		}
		ctx.Metrics.RecordsOut += int64(len(cb.bursts))
		ctx.Emit(cb)
		return nil
	}, nil)
}

// phaseStageCols is phaseStage over columns; blocks are homogeneous, so
// "this block carries samples" is just a kind check.
func (a *analysis) phaseStageCols(p *Pipeline, in <-chan *cblock) <-chan *cblock {
	name := "cluster"
	if a.cfg.Online {
		name = "classify"
	}
	return Stage(p, name, blockChanBuf, in, func(ctx *StageCtx[*cblock], cb *cblock) error {
		ctx.Metrics.RecordsIn += int64(len(cb.bursts))
		for i := range cb.bursts {
			if a.cfg.Online && a.classifier != nil {
				a.classifier.Classify(&cb.bursts[i])
			}
			a.kept = append(a.kept, cb.bursts[i])
			if a.cfg.Online && a.classifier == nil && a.trainErr == nil &&
				len(a.kept) == a.cfg.TrainBursts {
				a.train()
			}
		}
		if cb.cols.Kind() == trace.KindSample && !a.finalized {
			a.finalize(ctx.Metrics)
		}
		ctx.Emit(cb)
		return nil
	}, func(ctx *StageCtx[*cblock]) error {
		if !a.finalized {
			a.finalize(ctx.Metrics)
		}
		return nil
	})
}

// foldStageCols is the columnar terminal stage: sample blocks route row
// by row into attachment or incremental folding, and every block goes
// back to the freelist.
func (a *analysis) foldStageCols(p *Pipeline, in <-chan *cblock) {
	name := "attach"
	if a.cfg.Online {
		name = "fold"
	}
	Sink(p, name, in, func(m *Metrics, cb *cblock) error {
		if !a.cfg.NoSamples && cb.cols.Kind() == trace.KindSample {
			for i := 0; i < cb.cols.Len(); i++ {
				a.routeSampleCols(m, cb.cols, i)
			}
		}
		a.putCBlock(cb)
		return nil
	}, func(m *Metrics) error {
		if a.cfg.Online && !a.cfg.NoSamples {
			a.flushInstances(m)
		}
		return nil
	})
}

// routeSampleCols is routeSample reading row i of a sample block
// directly from its columns — the Sample struct is assembled only for
// the samples that actually land in a kept burst.
func (a *analysis) routeSampleCols(m *Metrics, cols *trace.ColBlock, i int) {
	m.RecordsIn++
	r := int(cols.Ranks[i])
	if r < 0 || r >= len(a.byRank) {
		return
	}
	t := trace.Time(cols.Times[i])
	idx := a.byRank[r]
	cur := a.cursor[r]
	if a.cfg.Online {
		for cur < len(idx) && a.kept[idx[cur]].End <= t {
			a.closeInstance(m, r, idx[cur])
			cur++
		}
		a.cursor[r] = cur
		if cur < len(idx) && t >= a.kept[idx[cur]].Start {
			buf := &a.rankBuf[r]
			cp := trace.Sample{Rank: cols.Ranks[i], Time: t}
			for c := range cols.Ctrs {
				cp.Counters[c] = cols.Ctrs[c][i]
			}
			if lo, hi := cols.StackOff[i], cols.StackOff[i+1]; hi > lo {
				j := len(buf.leaves)
				buf.leaves = append(buf.leaves, cols.Frames[lo])
				cp.Stack = buf.leaves[j : j+1 : j+1]
			}
			buf.samples = append(buf.samples, cp)
		}
		return
	}
	for cur < len(idx) && a.kept[idx[cur]].End <= t {
		cur++
	}
	a.cursor[r] = cur
	if cur < len(idx) && t >= a.kept[idx[cur]].Start {
		cp := trace.Sample{Rank: cols.Ranks[i], Time: t}
		for c := range cols.Ctrs {
			cp.Counters[c] = cols.Ctrs[c][i]
		}
		cp.Stack = a.stackSlice(cols.Frames[cols.StackOff[i]:cols.StackOff[i+1]])
		ki := idx[cur]
		a.attached[ki] = append(a.attached[ki], cp)
		m.RecordsOut++
	}
}

// stackSlice copies frames into a chunked append-only arena and returns
// a capacity-capped alias, replacing the per-sample slices.Clone of the
// row path. Returned slices outlive the run (they end up in the
// Report's attached samples), so chunks come from the regular heap, not
// the pools. An empty stack returns nil, matching the row decoder.
func (a *analysis) stackSlice(frames []uint32) []uint32 {
	need := len(frames)
	if need == 0 {
		return nil
	}
	if cap(a.stackChunk)-len(a.stackChunk) < need {
		size := 2 * cap(a.stackChunk)
		if size < 1024 {
			size = 1024
		}
		if size < need {
			size = need
		}
		// Previous chunks stay alive through the slices already handed out.
		a.stackChunk = make([]uint32, 0, size)
	}
	j := len(a.stackChunk)
	a.stackChunk = append(a.stackChunk, frames...)
	return a.stackChunk[j : j+need : j+need]
}
