// Package pipeline is the streaming analysis engine: a set of composable
// stages connected by bounded channels that turn a trace record stream
// (trace.Source) into the analysis outcome the core package assembles
// reports from. Batch and streaming analysis run through the exact same
// stages — batch feeds an in-memory TraceSource, streaming a decoding
// StreamReader — so there is one implementation of extraction,
// clustering, sample attachment and folding to test and to trust.
//
// The flow is decode → extract → phase (cluster or train-then-classify)
// → fold (attach samples or fold them incrementally). Stages run
// concurrently; the bounded channels give backpressure, so a fast
// decoder cannot outrun a slow analysis stage by more than a few blocks
// and the engine's working set stays constant. Record batches travel in
// pooled blocks recycled by the final stage, keeping the steady-state
// allocation rate of a streaming run near zero.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrStalled is the failure a stall watchdog injects when no stage has
// made progress for the configured timeout — typically an upload that
// went quiet without disconnecting. Errors returned by a watched
// pipeline wrap it and name the stages that were still running.
var ErrStalled = errors.New("pipeline stalled")

// Metrics records one stage's observability counters, carried into the
// Report so users can see where records and time went.
type Metrics struct {
	// Stage is the stage name ("decode", "extract", ...).
	Stage string
	// RecordsIn and RecordsOut count the logical records (events,
	// samples, comms, bursts, instances — whatever the stage consumes and
	// produces), not channel messages.
	RecordsIn, RecordsOut int64
	// Bytes is the encoded input bytes attributed to the stage (decode
	// reports the trace size when known; other stages report 0).
	Bytes int64
	// Wall is the stage's wall-clock time from start to completion. Since
	// stages run concurrently, stage walls overlap and do not sum to the
	// pipeline's elapsed time.
	Wall time.Duration
}

// Pipeline coordinates a set of concurrently-running stages: it
// propagates the first error, signals cancellation so upstream stages
// unblock from full channels, and collects per-stage metrics in spawn
// order.
type Pipeline struct {
	// Logger, when non-nil, receives a debug record per completed stage
	// (name, records in/out, wall time) — the live view of the same
	// counters the Report carries. Set it before the first Go call.
	Logger *slog.Logger

	wg    sync.WaitGroup
	once  sync.Once
	quit  chan struct{}
	errMu sync.Mutex
	err   error // guarded by errMu: a Watch goroutine can fail the
	// pipeline (cancelled context) concurrently with Wait reading the
	// result after the last stage returned.
	metrics []*Metrics

	// progress counts stage work items (blocks moved, records sunk); the
	// stall watchdog watches it tick. stages tracks which stages are
	// still running so a stall error can name the culprits.
	progress atomic.Int64
	stages   []*stageState
}

// stageState is one stage's liveness flag for the stall watchdog.
type stageState struct {
	name string
	done atomic.Bool
}

// New creates an empty pipeline.
func New() *Pipeline {
	return &Pipeline{quit: make(chan struct{})}
}

// Watch ties the pipeline to ctx: when ctx is cancelled the pipeline
// fails with ctx.Err(), which closes Quit and releases every sender
// blocked on a full channel, so the stages drain and exit promptly.
// The returned stop function releases the watcher goroutine; call it
// once the pipeline is done (typically deferred next to Wait).
func (p *Pipeline) Watch(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.fail(ctx.Err())
		case <-done:
		case <-p.quit:
		}
	}()
	return func() { close(done) }
}

// Quit is closed when any stage fails; senders select on it so a dead
// consumer cannot strand them on a full channel.
func (p *Pipeline) Quit() <-chan struct{} { return p.quit }

// fail records the first error and releases every blocked sender.
func (p *Pipeline) fail(err error) {
	p.once.Do(func() {
		p.errMu.Lock()
		p.err = err
		p.errMu.Unlock()
		close(p.quit)
	})
}

// loadErr reads the latched error under the lock.
func (p *Pipeline) loadErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	return p.err
}

// Go runs fn as a named stage. fn owns the returned Metrics for counting
// and must return promptly once Quit is closed. Stage wall time is
// measured around fn.
func (p *Pipeline) Go(name string, fn func(m *Metrics) error) {
	m := &Metrics{Stage: name}
	p.metrics = append(p.metrics, m)
	st := &stageState{name: name}
	p.stages = append(p.stages, st)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		defer st.done.Store(true)
		start := time.Now()
		err := fn(m)
		m.Wall = time.Since(start)
		if err != nil {
			p.fail(err)
		}
		if p.Logger != nil {
			p.Logger.Debug("stage done", "stage", name,
				"records_in", m.RecordsIn, "records_out", m.RecordsOut,
				"wall", m.Wall, "err", err)
		}
	}()
}

// Wait blocks until every stage has returned and reports the first
// error, if any.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	return p.loadErr()
}

// beat records one unit of stage progress for the stall watchdog.
func (p *Pipeline) beat() { p.progress.Add(1) }

// liveStages names the stages that have not yet returned.
func (p *Pipeline) liveStages() string {
	var names []string
	for _, st := range p.stages {
		if !st.done.Load() {
			names = append(names, st.name)
		}
	}
	if len(names) == 0 {
		return "unknown"
	}
	return strings.Join(names, ", ")
}

// WatchStall arms a progress watchdog: if no stage moves any work for
// timeout, the pipeline fails with an error wrapping ErrStalled that
// names the stages still running — turning a silently wedged input into
// a diagnosable failure. A timeout of 0 disables the watchdog. Arm it
// only after the last stage has been spawned (the stage list must be
// complete), and pick a timeout comfortably above the longest gap
// between work items — the barrier stages (clustering at the
// event→sample boundary) do minutes-free stretches of CPU work on huge
// traces without moving blocks. The returned stop function releases the
// watchdog goroutine; defer it next to Wait.
func (p *Pipeline) WatchStall(timeout time.Duration) (stop func()) {
	if timeout <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		period := timeout / 4
		if period < time.Millisecond {
			period = time.Millisecond
		}
		tick := time.NewTicker(period)
		defer tick.Stop()
		last := p.progress.Load()
		lastChange := time.Now()
		for {
			select {
			case <-done:
				return
			case <-p.quit:
				return
			case <-tick.C:
				if cur := p.progress.Load(); cur != last {
					last, lastChange = cur, time.Now()
					continue
				}
				if time.Since(lastChange) >= timeout {
					p.fail(fmt.Errorf("%w: no progress for %v in stage(s): %s",
						ErrStalled, timeout, p.liveStages()))
					return
				}
			}
		}
	}()
	return func() { close(done) }
}

// stallGrace is how long waitOrAbandon gives a stalled pipeline's stages
// to drain before abandoning them.
const stallGrace = 250 * time.Millisecond

// waitOrAbandon is Wait, except that a pipeline failed by the stall
// watchdog is abandoned after a short grace period instead of being
// waited on forever: the very condition the watchdog detects — a stage
// wedged in an uninterruptible read — also prevents that stage from ever
// returning. Abandoning leaks the wedged goroutine until its read
// unblocks; the alternative is hanging the caller with it.
func (p *Pipeline) waitOrAbandon() error {
	done := make(chan struct{})
	go func() {
		p.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return p.loadErr()
	case <-p.quit:
	}
	// An error is latched; the stages normally drain in microseconds.
	select {
	case <-done:
		return p.loadErr()
	case <-time.After(stallGrace):
	}
	if err := p.loadErr(); errors.Is(err, ErrStalled) {
		return err
	}
	<-done
	return p.loadErr()
}

// Metrics returns the per-stage counters in spawn order; call it only
// after Wait.
func (p *Pipeline) Metrics() []Metrics {
	out := make([]Metrics, len(p.metrics))
	for i, m := range p.metrics {
		out[i] = *m
	}
	return out
}

// Stage wires fn as a transforming stage: it consumes every item from
// in, may emit items downstream via ctx.Emit, and has flush called once
// after in is drained (barrier work — clustering, final flushes — goes
// there; flush may be nil). The output channel is bounded by buf and
// closed when the stage returns, and emission aborts cleanly when the
// pipeline is cancelled.
func Stage[In, Out any](p *Pipeline, name string, buf int, in <-chan In,
	fn func(ctx *StageCtx[Out], v In) error,
	flush func(ctx *StageCtx[Out]) error) <-chan Out {

	out := make(chan Out, buf)
	p.Go(name, func(m *Metrics) error {
		defer close(out)
		ctx := &StageCtx[Out]{p: p, out: out, Metrics: m}
		for v := range in {
			if err := fn(ctx, v); err != nil {
				return err
			}
			if ctx.stopped {
				return nil
			}
		}
		if flush != nil {
			return flush(ctx)
		}
		return nil
	})
	return out
}

// Sink is Stage with no downstream: the terminal stage of a pipeline.
func Sink[In any](p *Pipeline, name string, in <-chan In,
	fn func(m *Metrics, v In) error,
	flush func(m *Metrics) error) {

	p.Go(name, func(m *Metrics) error {
		for v := range in {
			p.beat()
			if err := fn(m, v); err != nil {
				return err
			}
		}
		if flush != nil {
			return flush(m)
		}
		return nil
	})
}

// StageCtx is the emission side handed to a stage body.
type StageCtx[Out any] struct {
	p       *Pipeline
	out     chan<- Out
	stopped bool
	// Metrics is the stage's counter block; bodies update RecordsIn and
	// RecordsOut themselves since only they know the record granularity.
	Metrics *Metrics
}

// Emit sends v downstream, blocking under backpressure. It returns false
// when the pipeline was cancelled; the stage should then return nil
// promptly (the failing stage already carries the error).
func (c *StageCtx[Out]) Emit(v Out) bool {
	select {
	case c.out <- v:
		c.p.beat()
		return true
	case <-c.p.quit:
		c.stopped = true
		return false
	}
}
