// Package pipeline is the streaming analysis engine: a set of composable
// stages connected by bounded channels that turn a trace record stream
// (trace.Source) into the analysis outcome the core package assembles
// reports from. Batch and streaming analysis run through the exact same
// stages — batch feeds an in-memory TraceSource, streaming a decoding
// StreamReader — so there is one implementation of extraction,
// clustering, sample attachment and folding to test and to trust.
//
// The flow is decode → extract → phase (cluster or train-then-classify)
// → fold (attach samples or fold them incrementally). Stages run
// concurrently; the bounded channels give backpressure, so a fast
// decoder cannot outrun a slow analysis stage by more than a few blocks
// and the engine's working set stays constant. Record batches travel in
// pooled blocks recycled by the final stage, keeping the steady-state
// allocation rate of a streaming run near zero.
package pipeline

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// Metrics records one stage's observability counters, carried into the
// Report so users can see where records and time went.
type Metrics struct {
	// Stage is the stage name ("decode", "extract", ...).
	Stage string
	// RecordsIn and RecordsOut count the logical records (events,
	// samples, comms, bursts, instances — whatever the stage consumes and
	// produces), not channel messages.
	RecordsIn, RecordsOut int64
	// Bytes is the encoded input bytes attributed to the stage (decode
	// reports the trace size when known; other stages report 0).
	Bytes int64
	// Wall is the stage's wall-clock time from start to completion. Since
	// stages run concurrently, stage walls overlap and do not sum to the
	// pipeline's elapsed time.
	Wall time.Duration
}

// Pipeline coordinates a set of concurrently-running stages: it
// propagates the first error, signals cancellation so upstream stages
// unblock from full channels, and collects per-stage metrics in spawn
// order.
type Pipeline struct {
	// Logger, when non-nil, receives a debug record per completed stage
	// (name, records in/out, wall time) — the live view of the same
	// counters the Report carries. Set it before the first Go call.
	Logger *slog.Logger

	wg      sync.WaitGroup
	once    sync.Once
	quit    chan struct{}
	err     error
	metrics []*Metrics
}

// New creates an empty pipeline.
func New() *Pipeline {
	return &Pipeline{quit: make(chan struct{})}
}

// Watch ties the pipeline to ctx: when ctx is cancelled the pipeline
// fails with ctx.Err(), which closes Quit and releases every sender
// blocked on a full channel, so the stages drain and exit promptly.
// The returned stop function releases the watcher goroutine; call it
// once the pipeline is done (typically deferred next to Wait).
func (p *Pipeline) Watch(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			p.fail(ctx.Err())
		case <-done:
		case <-p.quit:
		}
	}()
	return func() { close(done) }
}

// Quit is closed when any stage fails; senders select on it so a dead
// consumer cannot strand them on a full channel.
func (p *Pipeline) Quit() <-chan struct{} { return p.quit }

// fail records the first error and releases every blocked sender.
func (p *Pipeline) fail(err error) {
	p.once.Do(func() {
		p.err = err
		close(p.quit)
	})
}

// Go runs fn as a named stage. fn owns the returned Metrics for counting
// and must return promptly once Quit is closed. Stage wall time is
// measured around fn.
func (p *Pipeline) Go(name string, fn func(m *Metrics) error) {
	m := &Metrics{Stage: name}
	p.metrics = append(p.metrics, m)
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		start := time.Now()
		err := fn(m)
		m.Wall = time.Since(start)
		if err != nil {
			p.fail(err)
		}
		if p.Logger != nil {
			p.Logger.Debug("stage done", "stage", name,
				"records_in", m.RecordsIn, "records_out", m.RecordsOut,
				"wall", m.Wall, "err", err)
		}
	}()
}

// Wait blocks until every stage has returned and reports the first
// error, if any.
func (p *Pipeline) Wait() error {
	p.wg.Wait()
	return p.err
}

// Metrics returns the per-stage counters in spawn order; call it only
// after Wait.
func (p *Pipeline) Metrics() []Metrics {
	out := make([]Metrics, len(p.metrics))
	for i, m := range p.metrics {
		out[i] = *m
	}
	return out
}

// Stage wires fn as a transforming stage: it consumes every item from
// in, may emit items downstream via ctx.Emit, and has flush called once
// after in is drained (barrier work — clustering, final flushes — goes
// there; flush may be nil). The output channel is bounded by buf and
// closed when the stage returns, and emission aborts cleanly when the
// pipeline is cancelled.
func Stage[In, Out any](p *Pipeline, name string, buf int, in <-chan In,
	fn func(ctx *StageCtx[Out], v In) error,
	flush func(ctx *StageCtx[Out]) error) <-chan Out {

	out := make(chan Out, buf)
	p.Go(name, func(m *Metrics) error {
		defer close(out)
		ctx := &StageCtx[Out]{p: p, out: out, Metrics: m}
		for v := range in {
			if err := fn(ctx, v); err != nil {
				return err
			}
			if ctx.stopped {
				return nil
			}
		}
		if flush != nil {
			return flush(ctx)
		}
		return nil
	})
	return out
}

// Sink is Stage with no downstream: the terminal stage of a pipeline.
func Sink[In any](p *Pipeline, name string, in <-chan In,
	fn func(m *Metrics, v In) error,
	flush func(m *Metrics) error) {

	p.Go(name, func(m *Metrics) error {
		for v := range in {
			if err := fn(m, v); err != nil {
				return err
			}
		}
		if flush != nil {
			return flush(m)
		}
		return nil
	})
}

// StageCtx is the emission side handed to a stage body.
type StageCtx[Out any] struct {
	p       *Pipeline
	out     chan<- Out
	stopped bool
	// Metrics is the stage's counter block; bodies update RecordsIn and
	// RecordsOut themselves since only they know the record granularity.
	Metrics *Metrics
}

// Emit sends v downstream, blocking under backpressure. It returns false
// when the pipeline was cancelled; the stage should then return nil
// promptly (the failing stage already carries the error).
func (c *StageCtx[Out]) Emit(v Out) bool {
	select {
	case c.out <- v:
		return true
	case <-c.p.quit:
		c.stopped = true
		return false
	}
}
