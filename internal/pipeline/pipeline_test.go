package pipeline

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// source feeds 0..n-1 into a bounded channel honoring cancellation.
func source(p *Pipeline, n, buf int) <-chan int {
	out := make(chan int, buf)
	p.Go("source", func(m *Metrics) error {
		defer close(out)
		for i := 0; i < n; i++ {
			select {
			case out <- i:
				m.RecordsOut++
			case <-p.Quit():
				return nil
			}
		}
		return nil
	})
	return out
}

// TestStageChain runs a three-stage chain — source → double → sum — and
// checks values, per-stage counters, spawn-order metrics, and that flush
// runs exactly once after the input drains.
func TestStageChain(t *testing.T) {
	p := New()
	in := source(p, 100, 4)
	flushed := 0
	doubled := Stage(p, "double", 4, in,
		func(ctx *StageCtx[int], v int) error {
			ctx.Metrics.RecordsIn++
			if ctx.Emit(2 * v) {
				ctx.Metrics.RecordsOut++
			}
			return nil
		},
		func(ctx *StageCtx[int]) error { flushed++; return nil })
	sum := 0
	Sink(p, "sum", doubled,
		func(m *Metrics, v int) error { m.RecordsIn++; sum += v; return nil },
		nil)
	if err := p.Wait(); err != nil {
		t.Fatal(err)
	}
	if want := 100 * 99; sum != want {
		t.Fatalf("sum = %d, want %d", sum, want)
	}
	if flushed != 1 {
		t.Fatalf("flush ran %d times", flushed)
	}
	ms := p.Metrics()
	if len(ms) != 3 || ms[0].Stage != "source" || ms[1].Stage != "double" || ms[2].Stage != "sum" {
		t.Fatalf("metrics order = %+v", ms)
	}
	if ms[1].RecordsIn != 100 || ms[1].RecordsOut != 100 || ms[2].RecordsIn != 100 {
		t.Fatalf("counters: double %d/%d, sum in %d",
			ms[1].RecordsIn, ms[1].RecordsOut, ms[2].RecordsIn)
	}
	for _, m := range ms {
		if m.Wall <= 0 {
			t.Fatalf("stage %s has no wall time", m.Stage)
		}
	}
}

// TestSinkErrorUnblocksUpstream is the cancellation contract: when the
// terminal stage fails early, upstream stages blocked on full bounded
// channels must observe Quit and return instead of deadlocking, and Wait
// must report the sink's error.
func TestSinkErrorUnblocksUpstream(t *testing.T) {
	boom := errors.New("boom")
	p := New()
	in := source(p, 1_000_000, 1) // far more than the buffers can hold
	mid := Stage(p, "relay", 1, in,
		func(ctx *StageCtx[int], v int) error { ctx.Emit(v); return nil },
		nil)
	n := 0
	Sink(p, "fail", mid,
		func(m *Metrics, v int) error {
			n++
			if n == 3 {
				return boom
			}
			return nil
		},
		nil)

	done := make(chan error, 1)
	go func() { done <- p.Wait() }()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("Wait = %v, want boom", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pipeline deadlocked after sink error")
	}
}

// TestMidStageError checks a transforming stage's error propagates as the
// pipeline error and its downstream channel still closes, so the sink's
// range loop terminates.
func TestMidStageError(t *testing.T) {
	p := New()
	in := source(p, 50, 4)
	mid := Stage(p, "explode", 4, in,
		func(ctx *StageCtx[int], v int) error {
			if v == 10 {
				return errors.New("explode: v=10")
			}
			ctx.Emit(v)
			return nil
		},
		nil)
	Sink(p, "drain", mid, func(m *Metrics, v int) error { return nil }, nil)
	err := p.Wait()
	if err == nil || !strings.Contains(err.Error(), "explode") {
		t.Fatalf("Wait = %v", err)
	}
}

// TestFlushErrorPropagates checks barrier-work failures (clustering at
// the event→sample boundary, final instance flushes) surface like any
// stage error.
func TestFlushErrorPropagates(t *testing.T) {
	p := New()
	in := source(p, 5, 4)
	out := Stage(p, "flushfail", 4, in,
		func(ctx *StageCtx[int], v int) error { return nil },
		func(ctx *StageCtx[int]) error { return errors.New("flush failed") })
	Sink(p, "drain", out, func(m *Metrics, v int) error { return nil }, nil)
	if err := p.Wait(); err == nil || !strings.Contains(err.Error(), "flush failed") {
		t.Fatalf("Wait = %v", err)
	}
}

// TestFirstErrorWins checks only the first failure is reported even when
// several stages fail as cancellation tears the pipeline down.
func TestFirstErrorWins(t *testing.T) {
	first := errors.New("first")
	p := New()
	p.fail(first)
	p.fail(errors.New("second"))
	if err := p.Wait(); !errors.Is(err, first) {
		t.Fatalf("Wait = %v, want first", err)
	}
}
