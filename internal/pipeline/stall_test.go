package pipeline

import (
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"repro/internal/trace"
)

// stallSource blocks Next until released — the shape of an upload that
// goes quiet without disconnecting.
type stallSource struct {
	meta    trace.Metadata
	served  int
	release chan struct{}
}

func (s *stallSource) Meta() *trace.Metadata { return &s.meta }

func (s *stallSource) Next(rec *trace.Record) error {
	if s.served < 3 {
		s.served++
		rec.Kind = trace.KindEvent
		rec.Event = trace.Event{Rank: 0, Time: trace.Time(s.served), Type: trace.EvIteration, Value: int64(s.served)}
		return nil
	}
	<-s.release
	return io.EOF
}

func TestWatchStallNamesStalledStage(t *testing.T) {
	src := &stallSource{
		meta:    trace.Metadata{App: "stall", Ranks: 1, Duration: 1000},
		release: make(chan struct{}),
	}
	defer close(src.release) // unwedge the abandoned decode goroutine

	start := time.Now()
	done := make(chan error, 1)
	go func() {
		_, err := Run(src, Config{StallTimeout: 100 * time.Millisecond})
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStalled) {
			t.Fatalf("err = %v, want ErrStalled", err)
		}
		if !strings.Contains(err.Error(), "decode") {
			t.Errorf("stall error %q does not name the decode stage", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("stalled pipeline hung instead of failing")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("stall detection took %v", elapsed)
	}
}

func TestWatchStallDisabledByDefault(t *testing.T) {
	// StallTimeout 0 must not arm a watchdog; a normal run completes.
	tr := trace.NewBuilder("ok", 1)
	tr.Event(0, 0, trace.EvIteration, 1)
	tr.Event(0, 10, trace.EvMPI, int64(trace.MPIBarrier))
	tr.Event(0, 20, trace.EvMPI, 0)
	out, err := Run(trace.NewTraceSource(tr.Build()), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("nil outcome")
	}
}

func TestWatchStallNotTriggeredByProgress(t *testing.T) {
	// A slow-but-progressing source must survive a watchdog whose timeout
	// exceeds the per-record gap.
	b := trace.NewBuilder("slow", 1)
	for i := 0; i < 20; i++ {
		t0 := trace.Time(i * 100)
		b.Event(0, t0, trace.EvIteration, int64(i+1))
		b.Event(0, t0+10, trace.EvMPI, int64(trace.MPIBarrier))
		b.Event(0, t0+20, trace.EvMPI, 0)
	}
	src := &slowSource{inner: trace.NewTraceSource(b.Build()), delay: 2 * time.Millisecond}
	out, err := Run(src, Config{StallTimeout: 2 * time.Second, BatchSize: 1})
	if err != nil {
		t.Fatalf("watchdog misfired on a progressing run: %v", err)
	}
	if out.Records.Events == 0 {
		t.Fatal("no records processed")
	}
}

// slowSource delays every record to simulate a trickling input.
type slowSource struct {
	inner *trace.TraceSource
	delay time.Duration
}

func (s *slowSource) Meta() *trace.Metadata { return s.inner.Meta() }

func (s *slowSource) Next(rec *trace.Record) error {
	time.Sleep(s.delay)
	return s.inner.Next(rec)
}
