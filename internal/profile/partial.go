package profile

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/trace"
)

// RankPartial is one rank's share of a shard-local profile fragment. All
// sums are interior to the shard: spans that straddle the shard boundary
// (a leading compute span measured from virtual 0, or an MPI call still
// open when the shard ends) are described by the boundary fields and
// settled during Merge, where the neighbouring shard's state is known.
type RankPartial struct {
	// Seen reports whether the rank had any MPI event in this shard; an
	// unseen rank is an identity element for Merge.
	Seen bool
	// HasHead marks a shard whose first MPI event for this rank was an
	// exit (legal only when the builder was created with resume=true):
	// the call it closes was opened by an earlier shard, so its duration
	// and operation are owed by Merge, not by this fragment. HeadExit is
	// that exit's timestamp.
	HasHead  bool
	HeadExit trace.Time
	// FirstIsEnter / FirstEnter record that the rank's first MPI event
	// was an enter and when — Merge needs the time to report the exact
	// alternation violation a single-pass Builder would have reported.
	FirstIsEnter bool
	FirstEnter   trace.Time
	// ComputeTime, MPITime and MPICalls are the interior sums. When the
	// first event was an enter the leading compute span is measured from
	// virtual time 0; Merge re-bases it onto the previous shard's last
	// MPI-exit boundary.
	ComputeTime trace.Time
	MPITime     trace.Time
	MPICalls    int
	// LastBoundary is the last MPI-exit time seen (the start of the
	// trailing compute span the next shard or Merge must account).
	LastBoundary trace.Time
	// In, OpenOp and OpenSince describe an MPI call still open when the
	// shard ended; the next shard's head exit closes it in Merge.
	In        bool
	OpenOp    trace.MPIOp
	OpenSince trace.Time
}

// Partial is a mergeable fragment of a flat profile, produced by a
// PartialBuilder over one shard of a trace. Partials serialize to JSON
// and merge associatively in shard order via Merge.
type Partial struct {
	// Ranks holds per-rank fragments, indexed by rank.
	Ranks []RankPartial
	// Ops aggregates completed (interior) MPI calls, sorted by op for a
	// stable encoding. Calls closed by a head exit are attributed during
	// Merge instead.
	Ops []OpStats
	// Err carries a latched invariant violation; Merge refuses partials
	// with a non-empty Err, mirroring Builder.Finish.
	Err string `json:",omitempty"`
}

// PartialBuilder accumulates one shard's profile fragment, one event at
// a time. With resume=false it enforces the same invariants as Builder
// (a leading exit is an error); with resume=true a rank's leading exit
// is legal and recorded as the shard's head, to be settled by Merge.
type PartialBuilder struct {
	ranks  []RankPartial
	ops    map[trace.MPIOp]*OpStats
	resume bool
	err    error
}

// NewPartialBuilder creates a builder for one shard of a trace with the
// given rank count. resume marks a shard that does not start at the
// trace origin, so ranks may legally open with an MPI exit.
func NewPartialBuilder(ranks int, resume bool) (*PartialBuilder, error) {
	if ranks < 1 {
		return nil, fmt.Errorf("profile: trace has no ranks")
	}
	return &PartialBuilder{
		ranks:  make([]RankPartial, ranks),
		ops:    map[trace.MPIOp]*OpStats{},
		resume: resume,
	}, nil
}

// Add feeds one event (events must arrive in per-rank trace order). The
// first invariant violation is latched into the resulting Partial;
// further events are ignored after it.
func (b *PartialBuilder) Add(e *trace.Event) {
	if b.err != nil || e.Type != trace.EvMPI {
		return
	}
	if e.Rank < 0 || int(e.Rank) >= len(b.ranks) {
		b.err = fmt.Errorf("profile: event rank %d out of range", e.Rank)
		return
	}
	st := &b.ranks[e.Rank]
	if !st.Seen {
		st.Seen = true
		if e.Value != 0 {
			st.FirstIsEnter = true
			st.FirstEnter = e.Time
		} else {
			if !b.resume {
				b.err = fmt.Errorf("profile: rank %d exits MPI at %d while outside", e.Rank, e.Time)
				return
			}
			st.HasHead = true
			st.HeadExit = e.Time
			st.LastBoundary = e.Time
			return
		}
	}
	if e.Value != 0 {
		if st.In {
			b.err = fmt.Errorf("profile: rank %d enters MPI at %d while inside", e.Rank, e.Time)
			return
		}
		st.ComputeTime += e.Time - st.LastBoundary
		st.OpenOp = trace.MPIOp(e.Value)
		st.OpenSince = e.Time
		st.In = true
	} else {
		if !st.In {
			b.err = fmt.Errorf("profile: rank %d exits MPI at %d while outside", e.Rank, e.Time)
			return
		}
		d := e.Time - st.OpenSince
		st.MPITime += d
		st.MPICalls++
		o := b.ops[st.OpenOp]
		if o == nil {
			o = &OpStats{Op: st.OpenOp}
			b.ops[st.OpenOp] = o
		}
		o.Calls++
		o.Time += d
		st.LastBoundary = e.Time
		st.In = false
	}
}

// Partial snapshots the fragment built so far. The builder may keep
// accumulating afterwards; the snapshot is independent.
func (b *PartialBuilder) Partial() *Partial {
	p := &Partial{Ranks: append([]RankPartial(nil), b.ranks...)}
	for _, o := range b.ops {
		p.Ops = append(p.Ops, *o)
	}
	sort.Slice(p.Ops, func(i, j int) bool { return p.Ops[i].Op < p.Ops[j].Op })
	if b.err != nil {
		p.Err = b.err.Error()
	}
	return p
}

// Merge folds shard partials (in shard/time order) into the whole-trace
// flat profile, settling every boundary span: a head exit closes the
// previous shard's open call, a leading compute span is re-based onto
// the previous shard's last boundary, and the trailing compute span runs
// to the trace end. Merging the single partial of a resume=false builder
// is exactly Builder.Finish — same sums (all integer, so order-exact)
// and same error messages.
func Merge(parts []*Partial, duration trace.Time) (*Profile, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("profile: no partials to merge")
	}
	n := len(parts[0].Ranks)
	if n < 1 {
		return nil, fmt.Errorf("profile: trace has no ranks")
	}
	for _, part := range parts {
		if len(part.Ranks) != n {
			return nil, fmt.Errorf("profile: partial rank counts differ (%d vs %d)", len(part.Ranks), n)
		}
		if part.Err != "" {
			return nil, errors.New(part.Err)
		}
	}

	p := &Profile{Duration: duration, Ranks: make([]RankStats, n)}
	ops := map[trace.MPIOp]*OpStats{}
	addOp := func(op trace.MPIOp, calls int, d trace.Time) {
		o := ops[op]
		if o == nil {
			o = &OpStats{Op: op}
			ops[op] = o
		}
		o.Calls += calls
		o.Time += d
	}

	for r := 0; r < n; r++ {
		rs := &p.Ranks[r]
		rs.Rank = int32(r)
		var last trace.Time
		in := false
		var openOp trace.MPIOp
		var openSince trace.Time
		for _, part := range parts {
			rp := &part.Ranks[r]
			if !rp.Seen {
				continue
			}
			if rp.HasHead {
				if !in {
					return nil, fmt.Errorf("profile: rank %d exits MPI at %d while outside", r, rp.HeadExit)
				}
				d := rp.HeadExit - openSince
				rs.MPITime += d
				rs.MPICalls++
				addOp(openOp, 1, d)
				in = false
			} else {
				if in {
					return nil, fmt.Errorf("profile: rank %d enters MPI at %d while inside", r, rp.FirstEnter)
				}
				// The shard measured its leading compute span from virtual
				// 0; re-base it onto the carried boundary.
				rs.ComputeTime -= last
			}
			rs.ComputeTime += rp.ComputeTime
			rs.MPITime += rp.MPITime
			rs.MPICalls += rp.MPICalls
			last = rp.LastBoundary
			in = rp.In
			openOp = rp.OpenOp
			openSince = rp.OpenSince
		}
		if in {
			return nil, fmt.Errorf("profile: rank %d trace ends inside MPI", r)
		}
		rs.ComputeTime += duration - last
	}

	for _, part := range parts {
		for _, o := range part.Ops {
			addOp(o.Op, o.Calls, o.Time)
		}
	}
	for _, rs := range p.Ranks {
		p.TotalCompute += rs.ComputeTime
		p.TotalMPI += rs.MPITime
	}
	for _, o := range ops {
		p.Ops = append(p.Ops, *o)
	}
	sort.Slice(p.Ops, func(i, j int) bool {
		if p.Ops[i].Time != p.Ops[j].Time {
			return p.Ops[i].Time > p.Ops[j].Time
		}
		return p.Ops[i].Op < p.Ops[j].Op
	})
	return p, nil
}
