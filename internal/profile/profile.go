// Package profile computes classic flat profiles from traces: where does
// the time go, per rank and per MPI operation? The paper's methodology
// exists because these aggregate views hide everything interesting inside
// computation; the profile is still the first thing an analyst looks at,
// and the pipeline uses it to report MPI/computation ratios and rank
// balance before diving into folding.
package profile

import (
	"fmt"

	"repro/internal/trace"
)

// OpStats aggregates one MPI operation's cost.
type OpStats struct {
	Op    trace.MPIOp
	Calls int
	Time  trace.Time
}

// RankStats aggregates one rank's time split.
type RankStats struct {
	Rank        int32
	ComputeTime trace.Time
	MPITime     trace.Time
	MPICalls    int
}

// Profile is the flat view of a trace.
type Profile struct {
	// Duration is the trace's total virtual time.
	Duration trace.Time
	// Ranks holds per-rank splits, indexed by rank.
	Ranks []RankStats
	// Ops holds per-operation aggregates over all ranks, sorted by
	// descending total time.
	Ops []OpStats
	// TotalCompute and TotalMPI sum over ranks.
	TotalCompute, TotalMPI trace.Time
}

// MPIFraction returns the fraction of rank-time spent inside MPI.
func (p *Profile) MPIFraction() float64 {
	tot := p.TotalCompute + p.TotalMPI
	if tot == 0 {
		return 0
	}
	return float64(p.TotalMPI) / float64(tot)
}

// LoadBalance returns the ratio of mean to max per-rank compute time — 1
// means perfectly balanced, lower is worse. (This is the classic "LB"
// metric from the POP/BSC efficiency model.)
func (p *Profile) LoadBalance() float64 {
	var sum float64
	max := 0.0
	n := 0
	for _, r := range p.Ranks {
		c := float64(r.ComputeTime)
		sum += c
		if c > max {
			max = c
		}
		n++
	}
	if n == 0 || max == 0 {
		return 1
	}
	return (sum / float64(n)) / max
}

// Builder accumulates the flat profile incrementally, one event at a
// time, so a streaming consumer can profile a trace it never
// materializes. Compute is a thin batch wrapper over it. Builder is the
// single-shard composition of the mergeable algebra: a resume=false
// PartialBuilder whose one Partial is folded by Merge.
type Builder struct {
	pb *PartialBuilder
}

// NewBuilder creates a profile builder for the given rank count.
func NewBuilder(ranks int) (*Builder, error) {
	pb, err := NewPartialBuilder(ranks, false)
	if err != nil {
		return nil, err
	}
	return &Builder{pb: pb}, nil
}

// Add feeds one event (events must arrive in trace order). The first
// invariant violation is latched and later reported by Finish; further
// events are ignored after it.
func (b *Builder) Add(e *trace.Event) {
	b.pb.Add(e)
}

// Finish closes the profile at the trace end time, accounting trailing
// compute, and returns the assembled profile or the first error seen.
func (b *Builder) Finish(duration trace.Time) (*Profile, error) {
	return Merge([]*Partial{b.pb.Partial()}, duration)
}

// Compute builds the flat profile of a trace. The trace must be valid
// (MPI enter/exit events alternating per rank).
func Compute(tr *trace.Trace) (*Profile, error) {
	b, err := NewBuilder(tr.Meta.Ranks)
	if err != nil {
		return nil, err
	}
	for i := range tr.Events {
		b.Add(&tr.Events[i])
	}
	return b.Finish(tr.Meta.Duration)
}

// Format renders the profile as a human-readable summary.
func (p *Profile) Format() string {
	s := fmt.Sprintf("duration %.3f s | compute %.1f%% | MPI %.1f%% | load balance %.3f\n",
		float64(p.Duration)/1e9, 100*(1-p.MPIFraction()), 100*p.MPIFraction(), p.LoadBalance())
	for _, o := range p.Ops {
		s += fmt.Sprintf("  %-14s %8d calls  %10.3f ms total\n", o.Op, o.Calls, float64(o.Time)/1e6)
	}
	return s
}
