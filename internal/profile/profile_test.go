package profile

import (
	"math"
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/sim"
	"repro/internal/trace"
)

func TestComputeKnownTrace(t *testing.T) {
	b := trace.NewBuilder("p", 2)
	// rank 0: compute [0,100), barrier [100,150), compute [150,300),
	//         allreduce [300,340), trailing compute [340,400).
	b.Event(0, 100, trace.EvMPI, int64(trace.MPIBarrier))
	b.Event(0, 150, trace.EvMPI, 0)
	b.Event(0, 300, trace.EvMPI, int64(trace.MPIAllreduce))
	b.Event(0, 340, trace.EvMPI, 0)
	// rank 1: compute [0,50), barrier [50,150), compute to end.
	b.Event(1, 50, trace.EvMPI, int64(trace.MPIBarrier))
	b.Event(1, 150, trace.EvMPI, 0)
	b.Event(1, 400, trace.EvIteration, 1) // sets duration to 400
	tr := b.Build()

	p, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.Duration != 400 {
		t.Fatalf("duration = %d", p.Duration)
	}
	r0 := p.Ranks[0]
	if r0.ComputeTime != 100+150+60 || r0.MPITime != 50+40 || r0.MPICalls != 2 {
		t.Fatalf("rank0 = %+v", r0)
	}
	r1 := p.Ranks[1]
	if r1.ComputeTime != 50+250 || r1.MPITime != 100 || r1.MPICalls != 1 {
		t.Fatalf("rank1 = %+v", r1)
	}
	if p.TotalCompute != 310+300 || p.TotalMPI != 90+100 {
		t.Fatalf("totals = %d/%d", p.TotalCompute, p.TotalMPI)
	}
	// Ops sorted by time: barrier 150, allreduce 40.
	if len(p.Ops) != 2 || p.Ops[0].Op != trace.MPIBarrier || p.Ops[0].Time != 150 || p.Ops[0].Calls != 2 {
		t.Fatalf("ops = %+v", p.Ops)
	}
	if p.Ops[1].Op != trace.MPIAllreduce || p.Ops[1].Time != 40 {
		t.Fatalf("ops = %+v", p.Ops)
	}
	wantMPI := float64(190) / float64(800)
	if math.Abs(p.MPIFraction()-wantMPI) > 1e-12 {
		t.Fatalf("MPIFraction = %g, want %g", p.MPIFraction(), wantMPI)
	}
	// LB = mean(310,300)/max = 305/310.
	if math.Abs(p.LoadBalance()-305.0/310.0) > 1e-12 {
		t.Fatalf("LoadBalance = %g", p.LoadBalance())
	}
	out := p.Format()
	if !strings.Contains(out, "MPI_Barrier") || !strings.Contains(out, "load balance") {
		t.Fatalf("Format:\n%s", out)
	}
}

func TestComputeErrors(t *testing.T) {
	if _, err := Compute(&trace.Trace{}); err == nil {
		t.Fatal("no ranks accepted")
	}
	// Unbalanced MPI events.
	b := trace.NewBuilder("p", 1)
	b.Event(0, 10, trace.EvMPI, int64(trace.MPIBarrier))
	tr := b.Build()
	if _, err := Compute(tr); err == nil {
		t.Fatal("trace ending inside MPI accepted")
	}
	// Corrupt after build: double enter.
	b2 := trace.NewBuilder("p", 1)
	b2.Event(0, 10, trace.EvMPI, int64(trace.MPIBarrier))
	b2.Event(0, 20, trace.EvMPI, 0)
	tr2 := b2.Build()
	tr2.Events[1].Value = int64(trace.MPIBarrier)
	if _, err := Compute(tr2); err == nil {
		t.Fatal("double enter accepted")
	}
	tr2.Events[0].Value = 0
	tr2.Events[1].Value = 0
	if _, err := Compute(tr2); err == nil {
		t.Fatal("exit while outside accepted")
	}
}

func TestProfileOnSimulatedApps(t *testing.T) {
	for _, app := range apps.All(20) {
		cfg := apps.DefaultTraceConfig(8)
		tr, err := sim.Run(cfg, app)
		if err != nil {
			t.Fatal(err)
		}
		p, err := Compute(tr)
		if err != nil {
			t.Fatalf("%s: %v", app.Name(), err)
		}
		if p.MPIFraction() <= 0 || p.MPIFraction() >= 0.5 {
			t.Fatalf("%s: MPI fraction %.3f implausible", app.Name(), p.MPIFraction())
		}
		if lb := p.LoadBalance(); lb <= 0 || lb > 1 {
			t.Fatalf("%s: load balance %.3f out of range", app.Name(), lb)
		}
		// nbody's triangular imbalance must depress LB well below the
		// others.
		if app.Name() == "nbody" && p.LoadBalance() > 0.9 {
			t.Fatalf("nbody LB = %.3f, want < 0.9", p.LoadBalance())
		}
		if app.Name() == "stencil" && p.LoadBalance() < 0.95 {
			t.Fatalf("stencil LB = %.3f, want ≈ 1", p.LoadBalance())
		}
	}
}

func TestEmptyTraceProfile(t *testing.T) {
	b := trace.NewBuilder("e", 3)
	tr := b.Build()
	p, err := Compute(tr)
	if err != nil {
		t.Fatal(err)
	}
	if p.MPIFraction() != 0 || p.LoadBalance() != 1 {
		t.Fatalf("empty profile = %+v", p)
	}
}
