// Package report renders analysis results as aligned ASCII tables for the
// terminal and TSV files for plotting — the formats the experiment harness
// uses to regenerate every table and figure of the evaluation.
package report

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// Table is a titled, column-aligned text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// AddRow appends a row, formatting each cell with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = FormatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders floats compactly: integers without decimals, small
// magnitudes with enough precision to be useful.
func FormatFloat(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e15 && v > -1e15:
		return fmt.Sprintf("%d", int64(v))
	case v != 0 && (v < 0.01 && v > -0.01):
		return fmt.Sprintf("%.2e", v)
	default:
		return fmt.Sprintf("%.4g", v)
	}
}

// Format renders the table with aligned columns.
func (t *Table) Format() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	cols := len(t.Header)
	for _, r := range t.Rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.Header)
	for _, r := range t.Rows {
		measure(r)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	if len(t.Header) > 0 {
		writeRow(t.Header)
		for i := 0; i < cols; i++ {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(strings.Repeat("-", width[i]))
		}
		b.WriteByte('\n')
	}
	for _, r := range t.Rows {
		writeRow(r)
	}
	return b.String()
}

// WriteFile writes the formatted table to a file, creating directories as
// needed.
func (t *Table) WriteFile(path string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	return os.WriteFile(path, []byte(t.Format()), 0o644)
}

// Series is one named data series of a figure.
type Series struct {
	Name string
	X, Y []float64
}

// WriteSeriesTSV writes figure data in long format (series, x, y), one
// file per figure, ready for gnuplot/Python plotting.
func WriteSeriesTSV(path string, series []Series) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, "series\tx\ty")
	for _, s := range series {
		if len(s.X) != len(s.Y) {
			f.Close()
			return fmt.Errorf("report: series %q has %d xs but %d ys", s.Name, len(s.X), len(s.Y))
		}
		for i := range s.X {
			fmt.Fprintf(w, "%s\t%g\t%g\n", s.Name, s.X[i], s.Y[i])
		}
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WriteTSV writes a generic TSV table.
func WriteTSV(path string, header []string, rows [][]string) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	fmt.Fprintln(w, strings.Join(header, "\t"))
	for _, r := range rows {
		fmt.Fprintln(w, strings.Join(r, "\t"))
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ASCIIPlot renders a quick y-vs-x line chart in text, for terminal
// inspection of folded curves without leaving the CLI. xs must be
// ascending; ys are scaled into `height` rows over `width` columns.
func ASCIIPlot(title string, xs, ys []float64, width, height int) string {
	if width < 10 {
		width = 72
	}
	if height < 4 {
		height = 16
	}
	if len(xs) == 0 || len(xs) != len(ys) {
		return title + ": (no data)\n"
	}
	minY, maxY := ys[0], ys[0]
	for _, y := range ys {
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	if maxY == minY {
		maxY = minY + 1
	}
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	x0, x1 := xs[0], xs[len(xs)-1]
	if x1 == x0 {
		x1 = x0 + 1
	}
	for i := range xs {
		c := int((xs[i] - x0) / (x1 - x0) * float64(width-1))
		r := height - 1 - int((ys[i]-minY)/(maxY-minY)*float64(height-1))
		grid[r][c] = '*'
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s  [y: %s .. %s]\n", title, FormatFloat(minY), FormatFloat(maxY))
	for _, row := range grid {
		b.WriteString("|")
		b.Write(row)
		b.WriteString("\n")
	}
	b.WriteString("+" + strings.Repeat("-", width) + "\n")
	fmt.Fprintf(&b, " x: %s .. %s\n", FormatFloat(x0), FormatFloat(x1))
	return b.String()
}
