package report

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTableFormat(t *testing.T) {
	tb := &Table{
		Title:  "Demo",
		Header: []string{"name", "value"},
	}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 42)
	tb.AddRow("gamma-long-name", 0.001234)
	out := tb.Format()
	if !strings.Contains(out, "Demo\n====") {
		t.Fatalf("missing title underline:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + underline + header + separator + 3 rows = 7
	if len(lines) != 7 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: every data line has "  " at the same position.
	if !strings.HasPrefix(lines[4], "alpha            ") {
		t.Fatalf("misaligned row: %q", lines[4])
	}
	if !strings.Contains(out, "1.23e-03") {
		t.Fatalf("small float formatting: %s", out)
	}
	if !strings.Contains(out, "42") {
		t.Fatalf("int formatting: %s", out)
	}
}

func TestTableNoHeaderNoTitle(t *testing.T) {
	tb := &Table{}
	tb.AddRow("x", "y")
	out := tb.Format()
	if strings.Contains(out, "=") || strings.Contains(out, "-") {
		t.Fatalf("unexpected decoration:\n%s", out)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		3:       "3",
		-17:     "-17",
		3.14159: "3.142",
		0.005:   "5.00e-03",
		0:       "0",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestTableWriteFile(t *testing.T) {
	tb := &Table{Title: "T", Header: []string{"a"}}
	tb.AddRow("1")
	path := filepath.Join(t.TempDir(), "sub", "t.txt")
	if err := tb.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "T\n=") {
		t.Fatalf("file content: %s", data)
	}
}

func TestWriteSeriesTSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fig", "f.tsv")
	err := WriteSeriesTSV(path, []Series{
		{Name: "a", X: []float64{0, 1}, Y: []float64{10, 20}},
		{Name: "b", X: []float64{0.5}, Y: []float64{7}},
	})
	if err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	want := "series\tx\ty\na\t0\t10\na\t1\t20\nb\t0.5\t7\n"
	if string(data) != want {
		t.Fatalf("tsv = %q", data)
	}
}

func TestWriteSeriesTSVLengthMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.tsv")
	err := WriteSeriesTSV(path, []Series{{Name: "a", X: []float64{1}, Y: nil}})
	if err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestWriteTSV(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.tsv")
	if err := WriteTSV(path, []string{"h1", "h2"}, [][]string{{"a", "b"}}); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(path)
	if string(data) != "h1\th2\na\tb\n" {
		t.Fatalf("tsv = %q", data)
	}
}

func TestASCIIPlot(t *testing.T) {
	xs := []float64{0, 0.5, 1}
	ys := []float64{0, 1, 0}
	out := ASCIIPlot("tri", xs, ys, 20, 5)
	if !strings.Contains(out, "tri") || !strings.Contains(out, "*") {
		t.Fatalf("plot:\n%s", out)
	}
	// Degenerate inputs must not panic.
	if got := ASCIIPlot("none", nil, nil, 0, 0); !strings.Contains(got, "no data") {
		t.Fatalf("empty plot: %q", got)
	}
	flat := ASCIIPlot("flat", []float64{0, 1}, []float64{2, 2}, 0, 0)
	if !strings.Contains(flat, "*") {
		t.Fatalf("flat plot:\n%s", flat)
	}
}
