// Package rescache is a content-addressed result cache for the
// analysis service: a size-bounded, sharded-by-key, LRU in-memory
// store of serialized results (full core.Reports, per-shard
// core.Partials, cluster models) keyed by (trace digest, canonical
// options fingerprint), with an optional disk tier so warm state
// survives restarts, and singleflight request coalescing so a
// thundering herd of identical requests costs exactly one computation.
//
// Because keys are content-addressed — the digest covers every input
// byte and the fingerprint covers every result-shaping option — cached
// entries never go stale and invalidation does not exist as an
// operation. The only ways an entry leaves the cache are LRU eviction
// under the byte budget and an operator wiping the disk tier.
//
// Values are opaque byte slices (in practice: the JSON the service
// would have written). Callers must treat returned slices as
// read-only; the cache hands the same backing array to every hit.
package rescache

import (
	"context"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Config collects the cache's tunables. The zero value of every field
// selects a usable default.
type Config struct {
	// MaxBytes bounds the in-memory tier (keys + values + per-entry
	// overhead); 0 selects 256 MiB. The bound is enforced per shard
	// (MaxBytes/Shards each), so a pathological key distribution can
	// undershoot but never overshoot the total.
	MaxBytes int64
	// Shards is the lock-striping factor (default 16): entries are
	// distributed over this many independently locked LRU shards so
	// concurrent hits do not serialize on one mutex.
	Shards int
	// Dir, when non-empty, adds a persistent tier: every stored entry
	// is also written to this directory (atomic create-temp + rename,
	// named by the sha256 of its key), and in-memory misses fall back
	// to it. The disk tier is unbounded; see docs/OPERATIONS.md for
	// sizing and cleanup guidance.
	Dir string
	// Registry, when non-nil, receives the cache's metric families
	// (<ns>_cache_{hits,misses,evictions,coalesced}_total,
	// <ns>_cache_bytes, <ns>_cache_entries, <ns>_cache_hit_seconds).
	Registry *obs.Registry
	// Namespace prefixes the metric families (default "rescache");
	// foldsvc passes "foldsvc".
	Namespace string
}

// Status reports how a GetOrCompute call was satisfied; it maps
// directly onto the Cache-Status response header.
type Status int

const (
	// Miss means this call ran the computation (and, on success,
	// stored the result).
	Miss Status = iota
	// Hit means the result came from a warm tier (memory or disk).
	Hit
	// Coalesced means the call attached to another caller's in-flight
	// computation and shared its outcome.
	Coalesced
)

// String renders the status as the Cache-Status header spells it.
func (s Status) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	}
	return "miss"
}

// Result is what a GetOrCompute computation returns: the serialized
// value plus an optional veto on storing it. NoStore is for outcomes
// that are correct for this caller but not a pure function of the key
// — a coordinated Report that lost a shard, a partial whose upload
// did not match its declared digest — which must never be served to a
// future request.
type Result struct {
	// Data is the serialized value to return (and, unless NoStore,
	// cache).
	Data []byte
	// NoStore serves Data to the caller and any coalesced waiters but
	// keeps it out of the cache.
	NoStore bool
}

// Stats is a point-in-time snapshot of the cache counters, for tests
// and introspection; the obs metrics expose the same values.
type Stats struct {
	// Hits counts lookups served from memory; DiskHits from the disk
	// tier.
	Hits, DiskHits int64
	// Misses counts computations started (including ones that failed).
	Misses int64
	// Coalesced counts calls that attached to an in-flight computation.
	Coalesced int64
	// Evictions counts entries LRU-evicted under the byte budget.
	Evictions int64
	// Bytes and Entries describe the current in-memory tier.
	Bytes, Entries int64
}

// Key assembles a cache key from an entry kind ("report", "partial",
// "model"), the content digest of the trace bytes (trace.DigestBytes),
// and any extra discriminators — the canonical options fingerprint,
// shard coordinates. Every layer building keys goes through this one
// helper so key layouts cannot drift apart.
func Key(kind, digest string, extra ...string) string {
	parts := make([]string, 0, 2+len(extra))
	parts = append(parts, kind, digest)
	parts = append(parts, extra...)
	return strings.Join(parts, "|")
}

// entryOverhead approximates the fixed per-entry bookkeeping cost
// (map bucket, list pointers, headers) charged against MaxBytes.
const entryOverhead = 128

// entry is one cached value threaded on its shard's LRU list.
type entry struct {
	key        string
	val        []byte
	prev, next *entry
}

// shard is one independently locked LRU stripe.
type shard struct {
	mu      sync.Mutex
	entries map[string]*entry
	head    *entry // most recently used
	tail    *entry // least recently used
	bytes   int64
	max     int64
}

// flight is one in-progress computation that waiters can attach to.
type flight struct {
	done chan struct{}
	val  []byte
	err  error
}

// Cache is the content-addressed result cache. It is safe for
// concurrent use. Create it with New.
type Cache struct {
	cfg    Config
	shards []*shard

	mu      sync.Mutex
	flights map[string]*flight

	stHits, stDiskHits, stMisses       atomic.Int64
	stCoalesced, stEvictions           atomic.Int64
	stBytes, stEntries                 atomic.Int64
	hitsMem, hitsDisk, misses          *obs.Counter
	coalesced, evictions, diskFailures *obs.Counter
	hitSecs                            *obs.Histogram
}

// New builds a ready cache from cfg, creating the disk-tier directory
// when configured and registering the metric families.
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 20
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 16
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	if cfg.Namespace == "" {
		cfg.Namespace = "rescache"
	}
	if cfg.Dir != "" {
		// Best-effort: a failed create degrades to memory-only, surfaced
		// through the disk-failure counter at first write.
		os.MkdirAll(cfg.Dir, 0o755)
	}
	c := &Cache{cfg: cfg, flights: map[string]*flight{}}
	perShard := cfg.MaxBytes / int64(cfg.Shards)
	if perShard < 1 {
		perShard = 1
	}
	for i := 0; i < cfg.Shards; i++ {
		c.shards = append(c.shards, &shard{entries: map[string]*entry{}, max: perShard})
	}

	ns := cfg.Namespace
	reg := cfg.Registry
	c.hitsMem = reg.Counter(ns+"_cache_hits_total",
		"Cache lookups served from a warm tier, by tier.",
		obs.Label{Name: "tier", Value: "memory"})
	c.hitsDisk = reg.Counter(ns+"_cache_hits_total",
		"Cache lookups served from a warm tier, by tier.",
		obs.Label{Name: "tier", Value: "disk"})
	c.misses = reg.Counter(ns+"_cache_misses_total",
		"Cache lookups that started a fresh computation (including ones that failed).")
	c.coalesced = reg.Counter(ns+"_cache_coalesced_total",
		"Cache lookups that attached to another request's in-flight computation.")
	c.evictions = reg.Counter(ns+"_cache_evictions_total",
		"Entries LRU-evicted from the in-memory tier under the byte budget.")
	c.diskFailures = reg.Counter(ns+"_cache_disk_failures_total",
		"Disk-tier reads or writes that failed (the cache degrades to memory-only).")
	reg.GaugeFunc(ns+"_cache_bytes",
		"Bytes held by the in-memory tier (keys + values + overhead).", nil,
		func() float64 { return float64(c.stBytes.Load()) })
	reg.GaugeFunc(ns+"_cache_entries",
		"Entries held by the in-memory tier.", nil,
		func() float64 { return float64(c.stEntries.Load()) })
	c.hitSecs = reg.Histogram(ns+"_cache_hit_seconds",
		"Latency of cache lookups that hit, in seconds.", nil)
	return c
}

// shardFor picks the stripe owning key.
func (c *Cache) shardFor(key string) *shard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached value for key, consulting memory first and
// then the disk tier (promoting a disk hit into memory). The returned
// slice is shared — treat it as read-only.
func (c *Cache) Get(key string) ([]byte, bool) {
	start := time.Now()
	sh := c.shardFor(key)
	if v, ok := sh.get(key); ok {
		c.stHits.Add(1)
		c.hitsMem.Inc()
		c.hitSecs.Observe(time.Since(start).Seconds())
		return v, true
	}
	if c.cfg.Dir != "" {
		v, err := os.ReadFile(c.diskPath(key))
		if err == nil {
			c.insert(sh, key, v)
			c.stDiskHits.Add(1)
			c.hitsDisk.Inc()
			c.hitSecs.Observe(time.Since(start).Seconds())
			return v, true
		}
		if !os.IsNotExist(err) {
			c.diskFailures.Inc()
		}
	}
	return nil, false
}

// Put stores val under key in memory and, when configured, on disk.
func (c *Cache) Put(key string, val []byte) {
	c.insert(c.shardFor(key), key, val)
	if c.cfg.Dir != "" {
		c.writeDisk(key, val)
	}
}

// GetOrCompute returns the cached value for key, or runs compute to
// produce it. Concurrent calls for the same key are coalesced: exactly
// one runs compute, the rest block and share its outcome (value or
// error). The returned Status says which way this call went.
//
// Failure never poisons the cache: if compute returns an error, panics
// (converted to an error), or its context is cancelled mid-run, no
// entry is stored, every coalesced waiter receives the error, and the
// next call for the key recomputes from scratch. A waiter whose own
// ctx ends first stops waiting with its own ctx error; the leader's
// computation keeps running for the others.
func (c *Cache) GetOrCompute(ctx context.Context, key string, compute func(context.Context) (Result, error)) ([]byte, Status, error) {
	if v, ok := c.Get(key); ok {
		return v, Hit, nil
	}

	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.stCoalesced.Add(1)
		c.coalesced.Inc()
		select {
		case <-f.done:
			return f.val, Coalesced, f.err
		case <-ctx.Done():
			return nil, Coalesced, ctx.Err()
		}
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	c.stMisses.Add(1)
	c.misses.Inc()
	res, err := runProtected(ctx, compute)
	if err == nil && !res.NoStore {
		c.Put(key, res.Data)
	}
	f.val, f.err = res.Data, err

	// Deregister before release so a post-failure retry starts a fresh
	// computation instead of attaching to this finished one.
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return res.Data, Miss, err
}

// runProtected runs compute, converting a panic into an error so a
// crashing computation cannot wedge its singleflight waiters (they
// would otherwise block on a done channel nobody closes).
func runProtected(ctx context.Context, compute func(context.Context) (Result, error)) (res Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = Result{}
			err = fmt.Errorf("rescache: computation panicked: %v", r)
		}
	}()
	return compute(ctx)
}

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.stHits.Load(),
		DiskHits:  c.stDiskHits.Load(),
		Misses:    c.stMisses.Load(),
		Coalesced: c.stCoalesced.Load(),
		Evictions: c.stEvictions.Load(),
		Bytes:     c.stBytes.Load(),
		Entries:   c.stEntries.Load(),
	}
}

// insert stores into the shard and settles the global gauges and
// eviction counters from the shard's report.
func (c *Cache) insert(sh *shard, key string, val []byte) {
	deltaBytes, deltaEntries, evicted := sh.put(key, val)
	c.stBytes.Add(deltaBytes)
	c.stEntries.Add(deltaEntries)
	if evicted > 0 {
		c.stEvictions.Add(int64(evicted))
		c.evictions.Add(float64(evicted))
	}
}

// diskPath names key's disk-tier file: the sha256 of the key (keys
// embed option fingerprints that are not filename-safe), .json suffix
// because the stored values are the service's JSON bodies.
func (c *Cache) diskPath(key string) string {
	return filepath.Join(c.cfg.Dir, trace.DigestBytes([]byte(key))+".json")
}

// writeDisk persists one entry with the atomic-rename discipline: a
// reader never observes a torn file, and a crash leaves at worst an
// orphaned temp file.
func (c *Cache) writeDisk(key string, val []byte) {
	tmp, err := os.CreateTemp(c.cfg.Dir, ".rescache-*")
	if err != nil {
		c.diskFailures.Inc()
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(val)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		c.diskFailures.Inc()
		return
	}
	if err := os.Rename(name, c.diskPath(key)); err != nil {
		os.Remove(name)
		c.diskFailures.Inc()
	}
}

// cost is what an entry charges against the byte budget.
func cost(key string, val []byte) int64 {
	return int64(len(key)) + int64(len(val)) + entryOverhead
}

// get looks key up in this shard, refreshing its LRU position.
func (sh *shard) get(key string) ([]byte, bool) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	sh.moveToFront(e)
	return e.val, true
}

// put inserts (or refreshes) key and evicts from the LRU tail until
// the shard is back under budget. It reports the byte and entry deltas
// and how many entries were evicted. An entry larger than the whole
// shard budget is still admitted (everything else is evicted) — a
// result that was worth computing is worth keeping once.
func (sh *shard) put(key string, val []byte) (deltaBytes, deltaEntries int64, evicted int) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e, ok := sh.entries[key]; ok {
		deltaBytes += cost(key, val) - cost(key, e.val)
		sh.bytes += cost(key, val) - cost(key, e.val)
		e.val = val
		sh.moveToFront(e)
	} else {
		e := &entry{key: key, val: val}
		sh.entries[key] = e
		sh.pushFront(e)
		sh.bytes += cost(key, val)
		deltaBytes += cost(key, val)
		deltaEntries++
	}
	for sh.bytes > sh.max && sh.tail != nil && sh.tail.key != key {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		sh.bytes -= cost(victim.key, victim.val)
		deltaBytes -= cost(victim.key, victim.val)
		deltaEntries--
		evicted++
	}
	return deltaBytes, deltaEntries, evicted
}

// pushFront links e as the most recently used entry.
func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// unlink removes e from the LRU list.
func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

// moveToFront refreshes e's LRU position.
func (sh *shard) moveToFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
