package rescache

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestGetPutBasic(t *testing.T) {
	c := New(Config{})
	if _, ok := c.Get("report|abc|v1"); ok {
		t.Fatal("unexpected hit on empty cache")
	}
	c.Put("report|abc|v1", []byte("hello"))
	v, ok := c.Get("report|abc|v1")
	if !ok || string(v) != "hello" {
		t.Fatalf("Get = %q, %v; want hello, true", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v; want 1 hit, 1 entry", st)
	}
	if st.Bytes != int64(len("report|abc|v1")+len("hello")+entryOverhead) {
		t.Fatalf("bytes = %d; want exact cost accounting", st.Bytes)
	}
}

func TestKeyLayout(t *testing.T) {
	got := Key("partial", "deadbeef", "hash", "2", "0", "fp")
	if got != "partial|deadbeef|hash|2|0|fp" {
		t.Fatalf("Key = %q", got)
	}
}

func TestLRUEvictionBound(t *testing.T) {
	// One shard so the LRU order is global and deterministic.
	c := New(Config{MaxBytes: 4 * 1024, Shards: 1})
	val := make([]byte, 1024)
	for i := 0; i < 8; i++ {
		c.Put(fmt.Sprintf("k%d", i), val)
	}
	st := c.Stats()
	if st.Bytes > 4*1024 {
		t.Fatalf("bytes %d exceeds budget", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("expected evictions under a tight budget")
	}
	// Oldest entries must be gone, newest present.
	if _, ok := c.Get("k0"); ok {
		t.Fatal("k0 should have been evicted")
	}
	if _, ok := c.Get("k7"); !ok {
		t.Fatal("k7 (most recent) should survive")
	}
}

func TestOversizedEntryAdmitted(t *testing.T) {
	c := New(Config{MaxBytes: 1024, Shards: 1})
	big := make([]byte, 8*1024)
	c.Put("big", big)
	if _, ok := c.Get("big"); !ok {
		t.Fatal("an entry larger than the budget must still be admitted")
	}
}

func TestGetOrComputeMissThenHit(t *testing.T) {
	c := New(Config{})
	calls := 0
	compute := func(context.Context) (Result, error) {
		calls++
		return Result{Data: []byte("r")}, nil
	}
	v, st, err := c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || st != Miss || string(v) != "r" {
		t.Fatalf("first call = %q, %v, %v; want r, miss, nil", v, st, err)
	}
	v, st, err = c.GetOrCompute(context.Background(), "k", compute)
	if err != nil || st != Hit || string(v) != "r" {
		t.Fatalf("second call = %q, %v, %v; want r, hit, nil", v, st, err)
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times; want 1", calls)
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	c := New(Config{})
	release := make(chan struct{})
	var computes int
	var mu sync.Mutex
	compute := func(context.Context) (Result, error) {
		mu.Lock()
		computes++
		mu.Unlock()
		<-release
		return Result{Data: []byte("shared")}, nil
	}

	const waiters = 16
	results := make([]string, waiters)
	statuses := make([]Status, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, st, err := c.GetOrCompute(context.Background(), "k", compute)
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i], statuses[i] = string(v), st
		}(i)
	}

	// Wait until the leader is computing and all 15 followers attached.
	deadline := time.After(10 * time.Second)
	for c.Stats().Coalesced < waiters-1 {
		select {
		case <-deadline:
			t.Fatalf("followers never attached: stats %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	wg.Wait()

	if computes != 1 {
		t.Fatalf("compute ran %d times; want 1", computes)
	}
	var miss, coal int
	for i := range results {
		if results[i] != "shared" {
			t.Fatalf("waiter %d got %q", i, results[i])
		}
		switch statuses[i] {
		case Miss:
			miss++
		case Coalesced:
			coal++
		}
	}
	if miss != 1 || coal != waiters-1 {
		t.Fatalf("statuses: %d miss, %d coalesced; want 1, %d", miss, coal, waiters-1)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPanicDoesNotPoison(t *testing.T) {
	c := New(Config{})
	release := make(chan struct{})
	boom := func(context.Context) (Result, error) {
		<-release
		panic("boom")
	}

	type out struct {
		err error
		st  Status
	}
	const waiters = 4
	outs := make(chan out, waiters)
	for i := 0; i < waiters; i++ {
		go func() {
			_, st, err := c.GetOrCompute(context.Background(), "k", boom)
			outs <- out{err, st}
		}()
	}
	deadline := time.After(10 * time.Second)
	for c.Stats().Coalesced < waiters-1 {
		select {
		case <-deadline:
			t.Fatalf("followers never attached: stats %+v", c.Stats())
		case <-time.After(time.Millisecond):
		}
	}
	close(release)
	for i := 0; i < waiters; i++ {
		o := <-outs
		if o.err == nil || !strings.Contains(o.err.Error(), "panicked") {
			t.Fatalf("waiter got err=%v (status %v); want panic error", o.err, o.st)
		}
	}
	// No partial entry stored; the next request recomputes and succeeds.
	if _, ok := c.Get("k"); ok {
		t.Fatal("failed computation left a cache entry")
	}
	v, st, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (Result, error) {
		return Result{Data: []byte("ok")}, nil
	})
	if err != nil || st != Miss || string(v) != "ok" {
		t.Fatalf("recompute = %q, %v, %v; want ok, miss, nil", v, st, err)
	}
}

func TestComputeErrorSharedNotCached(t *testing.T) {
	c := New(Config{})
	sentinel := errors.New("pipeline failed")
	_, st, err := c.GetOrCompute(context.Background(), "k", func(context.Context) (Result, error) {
		return Result{}, sentinel
	})
	if !errors.Is(err, sentinel) || st != Miss {
		t.Fatalf("got %v, %v; want sentinel, miss", err, st)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("error result was cached")
	}
	if got := c.Stats().Misses; got != 1 {
		t.Fatalf("misses = %d; want 1", got)
	}
}

func TestWaiterOwnContextCancel(t *testing.T) {
	c := New(Config{})
	release := make(chan struct{})
	defer close(release)
	started := make(chan struct{})
	go c.GetOrCompute(context.Background(), "k", func(context.Context) (Result, error) {
		close(started)
		<-release
		return Result{Data: []byte("late")}, nil
	})
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompute(ctx, "k", func(context.Context) (Result, error) {
			t.Error("waiter must not compute")
			return Result{}, nil
		})
		done <- err
	}()
	deadline := time.After(10 * time.Second)
	for c.Stats().Coalesced < 1 {
		select {
		case <-deadline:
			t.Fatal("waiter never attached")
		case <-time.After(time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("waiter err = %v; want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled waiter did not return")
	}
}

func TestNoStoreServedButNotCached(t *testing.T) {
	c := New(Config{})
	calls := 0
	degraded := func(context.Context) (Result, error) {
		calls++
		return Result{Data: []byte("degraded"), NoStore: true}, nil
	}
	v, st, err := c.GetOrCompute(context.Background(), "k", degraded)
	if err != nil || st != Miss || string(v) != "degraded" {
		t.Fatalf("first = %q, %v, %v", v, st, err)
	}
	if _, ok := c.Get("k"); ok {
		t.Fatal("NoStore result was cached")
	}
	if _, st, _ := c.GetOrCompute(context.Background(), "k", degraded); st != Miss {
		t.Fatalf("second status = %v; want miss (recompute)", st)
	}
	if calls != 2 {
		t.Fatalf("compute ran %d times; want 2", calls)
	}
}

func TestDiskTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	warm := New(Config{Dir: dir})
	warm.Put("report|abc|fp", []byte("persisted"))

	// A fresh Cache (simulated restart) finds the entry on disk and
	// promotes it into memory.
	cold := New(Config{Dir: dir})
	v, ok := cold.Get("report|abc|fp")
	if !ok || string(v) != "persisted" {
		t.Fatalf("disk Get = %q, %v", v, ok)
	}
	st := cold.Stats()
	if st.DiskHits != 1 || st.Hits != 0 {
		t.Fatalf("stats = %+v; want one disk hit", st)
	}
	// Promoted: the second lookup is a memory hit.
	if _, ok := cold.Get("report|abc|fp"); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := cold.Stats(); st.Hits != 1 {
		t.Fatalf("stats = %+v; want one memory hit after promotion", st)
	}

	// Atomic-rename discipline: no temp files left behind, one
	// digest-named .json per entry.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 {
		t.Fatalf("disk tier has %d files; want 1", len(ents))
	}
	name := ents[0].Name()
	if strings.HasPrefix(name, ".rescache-") || filepath.Ext(name) != ".json" || len(name) != 64+len(".json") {
		t.Fatalf("unexpected disk-tier file name %q", name)
	}
}

func TestStatusString(t *testing.T) {
	for st, want := range map[Status]string{Miss: "miss", Hit: "hit", Coalesced: "coalesced"} {
		if st.String() != want {
			t.Fatalf("%d.String() = %q; want %q", st, st.String(), want)
		}
	}
}
