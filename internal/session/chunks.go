package session

import "repro/internal/trace"

// Chunks partitions a sorted trace into at most n append-ready pieces.
// Unlike core.Split (whose shards deliberately duplicate boundary state
// for map/reduce) or trace.Slice (which re-bases time and synthesizes
// balancing events), Chunks is record-preserving: concatenating all the
// pieces and sorting reproduces the input exactly, so a session fed the
// pieces in order accumulates the byte-identical record set.
//
// Cuts are placed only at globally MPI-quiescent instants — times where
// no rank is inside an MPI call — so every prefix union of the pieces
// passes strict validation (per-rank enter/exit stays balanced at each
// boundary). That is what makes the pieces usable as live-session
// appends: tracegen, the e2e suite and the chaos harness all stream
// traces this way. Events and samples partition by Time, comms by
// SendTime (a message may complete after its chunk's window; validation
// only bounds RecvTime by the duration, which every piece carries in
// full). If the trace has fewer quiescent instants than requested, fewer
// pieces are returned; the result always has at least one.
func Chunks(tr *trace.Trace, n int) []*trace.Trace {
	if n < 1 {
		n = 1
	}
	cuts := quiescentCuts(tr)
	if len(cuts) > n-1 {
		picked := make([]trace.Time, 0, n-1)
		for j := 1; j < n; j++ {
			c := cuts[j*len(cuts)/n]
			if len(picked) == 0 || c > picked[len(picked)-1] {
				picked = append(picked, c)
			}
		}
		cuts = picked
	}

	bounds := append(cuts, tr.Meta.Duration+1)
	out := make([]*trace.Trace, 0, len(bounds))
	var e0, s0, c0 int
	for _, hi := range bounds {
		e1 := e0
		for e1 < len(tr.Events) && tr.Events[e1].Time < hi {
			e1++
		}
		s1 := s0
		for s1 < len(tr.Samples) && tr.Samples[s1].Time < hi {
			s1++
		}
		c1 := c0
		for c1 < len(tr.Comms) && tr.Comms[c1].SendTime < hi {
			c1++
		}
		if e1 == e0 && s1 == s0 && c1 == c0 && len(out) > 0 {
			continue // empty window: nothing to carry
		}
		ch := &trace.Trace{Meta: tr.Meta}
		ch.Meta.Regions = copyMap(tr.Meta.Regions)
		ch.Meta.Params = copyMap(tr.Meta.Params)
		ch.Events = append([]trace.Event(nil), tr.Events[e0:e1]...)
		ch.Samples = append([]trace.Sample(nil), tr.Samples[s0:s1]...)
		ch.Comms = append([]trace.Comm(nil), tr.Comms[c0:c1]...)
		out = append(out, ch)
		e0, s0, c0 = e1, s1, c1
	}
	if len(out) == 0 {
		ch := &trace.Trace{Meta: tr.Meta}
		ch.Meta.Regions = copyMap(tr.Meta.Regions)
		ch.Meta.Params = copyMap(tr.Meta.Params)
		out = append(out, ch)
	}
	return out
}

// quiescentCuts lists the candidate cut times: e.Time+1 for every event
// e after which no rank is inside an MPI call and whose successor event
// is strictly later (so the cut separates records instead of splitting
// a (Time, Rank) tie across pieces).
func quiescentCuts(tr *trace.Trace) []trace.Time {
	ranks := tr.Meta.Ranks
	if ranks < 1 {
		return nil
	}
	inMPI := make([]bool, ranks)
	inside := 0
	var cuts []trace.Time
	for i, e := range tr.Events {
		if e.Type == trace.EvMPI && int(e.Rank) >= 0 && int(e.Rank) < ranks {
			entering := e.Value != 0
			if entering != inMPI[e.Rank] {
				inMPI[e.Rank] = entering
				if entering {
					inside++
				} else {
					inside--
				}
			}
		}
		if inside == 0 && i+1 < len(tr.Events) && tr.Events[i+1].Time > e.Time {
			cuts = append(cuts, e.Time+1)
		}
	}
	return cuts
}
