package session

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"
)

// The write-ahead journal gives a live session crash durability with
// the same discipline as the rescache disk tier: every accepted append
// is persisted as one numbered segment file — written to a temp file,
// fsynced, closed, and atomically renamed into place — before the
// append is acknowledged, so a segment is either completely present or
// completely absent after a kill -9. A meta.json sidecar records the
// session's identity and option query so a restarted daemon can rebuild
// the exact analysis configuration and replay the segments in order.
//
// Layout under the manager's Dir:
//
//	<dir>/<session-id>/meta.json
//	<dir>/<session-id>/seg-00000000-1.uvt   (index, client sequence)
//	<dir>/<session-id>/seg-00000001-2.uvt
//
// Segment payloads are the raw append bodies (complete UVT1 chunks),
// so replay runs the byte-identical decode the original append ran.

// journalMeta is the persisted session identity.
type journalMeta struct {
	ID      string
	Query   string
	Created time.Time
}

// segName renders a segment file name from its index and the client
// sequence number the append carried (0 when the client sent none).
func segName(idx int, clientSeq uint64) string {
	return fmt.Sprintf("seg-%08d-%d.uvt", idx, clientSeq)
}

// parseSegName inverts segName; ok is false for temp files and any
// other stray directory entry.
func parseSegName(name string) (idx int, clientSeq uint64, ok bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".uvt") {
		return 0, 0, false
	}
	body := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".uvt")
	i := strings.IndexByte(body, '-')
	if i < 0 {
		return 0, 0, false
	}
	n, err := strconv.Atoi(body[:i])
	if err != nil || n < 0 {
		return 0, 0, false
	}
	c, err := strconv.ParseUint(body[i+1:], 10, 64)
	if err != nil {
		return 0, 0, false
	}
	return n, c, true
}

// segNames lists a session directory's segment files in index order.
func segNames(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if _, _, ok := parseSegName(e.Name()); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // zero-padded indices sort numerically
	return names, nil
}

// writeFileSync durably writes data as dir/name: temp file in the same
// directory, write, fsync (timed through the fsync hook when non-nil),
// close, atomic rename, then a best-effort directory sync so the rename
// itself survives a crash.
func writeFileSync(dir, name string, data []byte, fsync func(time.Duration)) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	start := time.Now()
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if fsync != nil {
		fsync(time.Since(start))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, name)); err != nil {
		os.Remove(tmp)
		return err
	}
	syncDir(dir)
	return nil
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Errors
// are swallowed: not every platform or filesystem supports directory
// sync, and the rename itself already happened.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// writeMeta persists the session's identity file.
func writeMeta(dir string, m journalMeta) error {
	data, err := json.Marshal(m)
	if err != nil {
		return err
	}
	return writeFileSync(dir, "meta.json", data, nil)
}

// readMeta loads a session's identity file.
func readMeta(dir string) (journalMeta, error) {
	var m journalMeta
	data, err := os.ReadFile(filepath.Join(dir, "meta.json"))
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(data, &m); err != nil {
		return m, fmt.Errorf("session: meta.json does not decode: %w", err)
	}
	if m.ID == "" {
		return m, fmt.Errorf("session: meta.json carries no session id")
	}
	return m, nil
}
