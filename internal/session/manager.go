package session

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"log/slog"
	"net/url"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Metrics collects the observability handles the manager drives. Every
// field is optional; nil handles are skipped. The owning service
// registers the families (keeping the metric-name literals next to its
// other registrations, where the docs gate can see them) and passes the
// handles in.
type Metrics struct {
	// Active gauges the number of live sessions.
	Active *obs.Gauge
	// Bytes gauges the appended bytes held across live sessions.
	Bytes *obs.Gauge
	// Appends counts accepted (journaled) appends.
	Appends *obs.Counter
	// Snapshots counts published Report snapshots.
	Snapshots *obs.Counter
	// SnapshotsDropped counts snapshots coalesced away for slow
	// subscribers.
	SnapshotsDropped *obs.Counter
	// Evicted counts idle-TTL evictions.
	Evicted *obs.Counter
	// Recovered counts sessions rebuilt from journals at startup.
	Recovered *obs.Counter
	// Fsync observes journal segment fsync latency in seconds.
	Fsync *obs.Histogram
}

func incC(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

func setG(g *obs.Gauge, v float64) {
	if g != nil {
		g.Set(v)
	}
}

// Config tunes a Manager. The zero value of every field selects a
// production-reasonable default; a zero-value Config is a memory-only
// manager (no journals, no recovery).
type Config struct {
	// Dir is the journal root; "" disables journaling (sessions then die
	// with the process).
	Dir string
	// TTL evicts sessions with no appends for this long (default 15m).
	TTL time.Duration
	// MaxSessionBytes caps one session's appended bytes (default 64 MiB).
	MaxSessionBytes int64
	// MaxTotalBytes caps appended bytes across all sessions
	// (default 256 MiB).
	MaxTotalBytes int64
	// MaxSessions caps concurrently live sessions (default 64).
	MaxSessions int
	// Ring is the per-session snapshot retention (resume window) and the
	// per-subscriber queue bound (default 64).
	Ring int
	// AnalyzeSlots bounds concurrent snapshot analyses across sessions
	// (default GOMAXPROCS).
	AnalyzeSlots int
	// Options derives the analysis configuration from a session's open
	// query; it runs again on recovery, so persisted sessions rebuild
	// the exact options they opened with. nil means zero Options.
	Options func(url.Values) (core.Options, error)
	// Logger receives the manager's structured log stream.
	Logger *slog.Logger
	// Metrics receives the manager's observability handles.
	Metrics Metrics
}

// Manager owns the live sessions: admission (count and byte budgets),
// journal recovery at startup, idle-TTL eviction, and drain.
type Manager struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	slots  chan struct{}
	total  atomic.Int64

	mu       sync.Mutex
	sessions map[string]*Session
	closed   bool

	janitorDone chan struct{}
}

// NewManager applies defaults, recovers any journaled sessions under
// cfg.Dir, and starts the TTL janitor.
func NewManager(cfg Config) (*Manager, error) {
	if cfg.TTL <= 0 {
		cfg.TTL = 15 * time.Minute
	}
	if cfg.MaxSessionBytes <= 0 {
		cfg.MaxSessionBytes = 64 << 20
	}
	if cfg.MaxTotalBytes <= 0 {
		cfg.MaxTotalBytes = 256 << 20
	}
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = 64
	}
	if cfg.Ring <= 0 {
		cfg.Ring = 64
	}
	if cfg.AnalyzeSlots <= 0 {
		cfg.AnalyzeSlots = runtime.GOMAXPROCS(0)
	}
	if cfg.Logger == nil {
		cfg.Logger = obs.Discard()
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		cfg:         cfg,
		ctx:         ctx,
		cancel:      cancel,
		slots:       make(chan struct{}, cfg.AnalyzeSlots),
		sessions:    make(map[string]*Session),
		janitorDone: make(chan struct{}),
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			cancel()
			return nil, fmt.Errorf("session: journal root: %w", err)
		}
		m.recoverAll()
	}
	go m.janitor()
	return m, nil
}

// observeFsync feeds the journal fsync histogram.
func (m *Manager) observeFsync(d time.Duration) {
	if m.cfg.Metrics.Fsync != nil {
		m.cfg.Metrics.Fsync.Observe(d.Seconds())
	}
}

// reserve admits n more appended bytes against both budgets.
func (m *Manager) reserve(sessionBytes, n int64) error {
	if sessionBytes+n > m.cfg.MaxSessionBytes {
		return fmt.Errorf("%w (%d + %d > %d bytes)", ErrSessionBudget, sessionBytes, n, m.cfg.MaxSessionBytes)
	}
	for {
		cur := m.total.Load()
		if cur+n > m.cfg.MaxTotalBytes {
			return fmt.Errorf("%w (%d + %d > %d bytes)", ErrGlobalBudget, cur, n, m.cfg.MaxTotalBytes)
		}
		if m.total.CompareAndSwap(cur, cur+n) {
			setG(m.cfg.Metrics.Bytes, float64(cur+n))
			return nil
		}
	}
}

// release returns reserved bytes (failed journal write, retired
// session).
func (m *Manager) release(n int64) {
	v := m.total.Add(-n)
	setG(m.cfg.Metrics.Bytes, float64(v))
}

// newID returns a fresh 16-hex-character session id.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic("session: rand: " + err.Error())
	}
	return hex.EncodeToString(b[:])
}

// newSession constructs the in-memory session shell.
func (m *Manager) newSession(id string, query url.Values, opts core.Options) *Session {
	return &Session{
		ID:          id,
		Query:       query,
		Opts:        opts,
		Fingerprint: opts.Fingerprint(),
		Created:     time.Now(),
		m:           m,
		subs:        make(map[*Subscriber]struct{}),
		dirty:       make(chan struct{}, 1),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		lastActive:  time.Now(),
	}
}

// options resolves a session's analysis configuration from its query.
func (m *Manager) options(q url.Values) (core.Options, error) {
	if m.cfg.Options == nil {
		return core.Options{}, nil
	}
	return m.cfg.Options(q)
}

// Open creates a live session configured by query, journals its
// identity (when the manager is journaled) and starts its snapshot
// loop.
func (m *Manager) Open(query url.Values) (*Session, error) {
	opts, err := m.options(query)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return nil, ErrClosed
	}
	if len(m.sessions) >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("%w (%d live)", ErrTooManySessions, len(m.sessions))
	}
	id := newID()
	s := m.newSession(id, query, opts)
	if m.cfg.Dir != "" {
		s.dir = filepath.Join(m.cfg.Dir, id)
		if err := os.MkdirAll(s.dir, 0o755); err != nil {
			return nil, fmt.Errorf("session: journal dir: %w", err)
		}
		jm := journalMeta{ID: id, Query: query.Encode(), Created: s.Created}
		if err := writeMeta(s.dir, jm); err != nil {
			os.RemoveAll(s.dir)
			return nil, fmt.Errorf("session: journal meta: %w", err)
		}
	}
	m.sessions[id] = s
	setG(m.cfg.Metrics.Active, float64(len(m.sessions)))
	go s.loop()
	m.cfg.Logger.Info("session opened", "session", id, "fingerprint", s.Fingerprint)
	return s, nil
}

// Get returns a live session by id.
func (m *Manager) Get(id string) (*Session, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	return s, ok
}

// Sessions snapshots the live session list.
func (m *Manager) Sessions() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		out = append(out, s)
	}
	return out
}

// recoverAll scans the journal root and rebuilds every persisted
// session, replaying its segments through the normal append path. A
// session whose journal is damaged recovers the longest clean prefix
// and keeps serving, degraded; only an unreadable identity skips the
// session entirely.
func (m *Manager) recoverAll() {
	entries, err := os.ReadDir(m.cfg.Dir)
	if err != nil {
		m.cfg.Logger.Warn("session recovery scan failed", "dir", m.cfg.Dir, "err", err)
		return
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join(m.cfg.Dir, e.Name())
		s, err := m.recoverSession(e.Name(), dir)
		if err != nil {
			m.cfg.Logger.Warn("session recovery failed", "session", e.Name(), "err", err)
			continue
		}
		m.sessions[s.ID] = s
		go s.loop()
		incC(m.cfg.Metrics.Recovered)
		st := s.Status()
		m.cfg.Logger.Info("session recovered", "session", s.ID,
			"segments", st.Segments, "events", st.Events, "degraded", len(st.Warnings) > 0)
	}
	setG(m.cfg.Metrics.Active, float64(len(m.sessions)))
}

// recoverSession rebuilds one session from its journal directory.
func (m *Manager) recoverSession(id, dir string) (*Session, error) {
	jm, err := readMeta(dir)
	if err != nil {
		return nil, err
	}
	q, err := url.ParseQuery(jm.Query)
	if err != nil {
		return nil, fmt.Errorf("session: journaled query does not parse: %w", err)
	}
	opts, err := m.options(q)
	if err != nil {
		return nil, fmt.Errorf("session: journaled options: %w", err)
	}
	s := m.newSession(id, q, opts)
	s.dir = dir
	s.Created = jm.Created

	names, err := segNames(dir)
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		idx, cseq, _ := parseSegName(name)
		if idx != s.segments {
			s.warnings = append(s.warnings, fmt.Sprintf(
				"journal gap: expected segment %d, found %d; recovered %d segment(s) only",
				s.segments, idx, s.segments))
			break
		}
		data, derr := os.ReadFile(filepath.Join(dir, name))
		var trc *trace.Trace
		var dst trace.DecodeStats
		if derr == nil {
			trc, dst, derr = decodeChunk(data, opts.Lenient)
		}
		if derr != nil {
			s.warnings = append(s.warnings, fmt.Sprintf(
				"journal segment %d is unreadable (%v); recovered %d segment(s) only",
				idx, derr, s.segments))
			break
		}
		if s.haveMeta && (trc.Meta.App != s.meta.App || trc.Meta.Ranks != s.meta.Ranks) {
			s.warnings = append(s.warnings, fmt.Sprintf(
				"journal segment %d metadata mismatch; recovered %d segment(s) only",
				idx, s.segments))
			break
		}
		s.applyLocked(trc, dst, len(data), cseq)
	}
	s.warnings = core.BoundWarnings(s.warnings)
	m.total.Add(s.bytes)
	setG(m.cfg.Metrics.Bytes, float64(m.total.Load()))
	return s, nil
}

// janitor sweeps idle sessions every quarter TTL.
func (m *Manager) janitor() {
	defer close(m.janitorDone)
	interval := m.cfg.TTL / 4
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	if interval > 30*time.Second {
		interval = 30 * time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-t.C:
			m.sweep()
		}
	}
}

// sweep evicts sessions with no appends for a full TTL: subscribers
// get an "idle" end event and the journal is deleted.
func (m *Manager) sweep() {
	now := time.Now()
	m.mu.Lock()
	var evict []*Session
	for id, s := range m.sessions {
		s.mu.Lock()
		idle := now.Sub(s.lastActive) > m.cfg.TTL
		s.mu.Unlock()
		if idle {
			evict = append(evict, s)
			delete(m.sessions, id)
		}
	}
	n := len(m.sessions)
	m.mu.Unlock()
	for _, s := range evict {
		m.retire(s, "idle", true)
		incC(m.cfg.Metrics.Evicted)
		m.cfg.Logger.Info("session evicted", "session", s.ID, "reason", "idle")
	}
	if len(evict) > 0 {
		setG(m.cfg.Metrics.Active, float64(n))
	}
}

// Evict ends one session immediately and deletes its journal.
func (m *Manager) Evict(id, reason string) bool {
	m.mu.Lock()
	s, ok := m.sessions[id]
	if ok {
		delete(m.sessions, id)
	}
	n := len(m.sessions)
	m.mu.Unlock()
	if !ok {
		return false
	}
	m.retire(s, reason, true)
	incC(m.cfg.Metrics.Evicted)
	setG(m.cfg.Metrics.Active, float64(n))
	return true
}

// retire ends a session and settles its accounting. end() waits for
// any in-flight append (it holds the session lock), so after it
// returns no further journal writes can happen and the directory is
// safe to delete.
func (m *Manager) retire(s *Session, reason string, removeJournal bool) {
	s.end(reason)
	s.mu.Lock()
	b, dir := s.bytes, s.dir
	s.mu.Unlock()
	m.release(b)
	if removeJournal && dir != "" {
		os.RemoveAll(dir)
	}
}

// Close drains the manager: no new sessions, every live session ends
// with a final "drain" event to its subscribers, journals are kept on
// disk for the next start, and in-flight snapshot analyses are
// cancelled. Close waits for the snapshot loops up to ctx.
func (m *Manager) Close(ctx context.Context) {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	ss := make([]*Session, 0, len(m.sessions))
	for _, s := range m.sessions {
		ss = append(ss, s)
	}
	m.sessions = make(map[string]*Session)
	m.mu.Unlock()

	m.cancel()
	for _, s := range ss {
		s.end("drain")
	}
	for _, s := range ss {
		select {
		case <-s.done:
		case <-ctx.Done():
		}
	}
	select {
	case <-m.janitorDone:
	case <-ctx.Done():
	}
	setG(m.cfg.Metrics.Active, 0)
}

// TotalBytes reports the appended bytes currently held across live
// sessions.
func (m *Manager) TotalBytes() int64 { return m.total.Load() }
